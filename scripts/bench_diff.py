#!/usr/bin/env python3
"""Compare two perf_harness runs and flag regressions.

Usage:
    scripts/bench_diff.py OLD.json NEW.json [--threshold=0.25]

Each argument is either a dcs-bench/1 run object (what `perf_harness --out`
or `fleet_scale --out` writes) or the committed dcs-bench-trajectory/1 file
(BENCH_dcs.json), in which case a specific entry can be picked with
`FILE:LABEL`; without a label the most recent entry sharing at least one
benchmark name with the new run is used (falling back to the last entry).
The trajectory interleaves perf_harness and fleet_scale entries, so both
CI invocations resolve to the right baseline automatically:

    scripts/bench_diff.py BENCH_dcs.json BENCH_ci.json        # perf_harness
    scripts/bench_diff.py BENCH_dcs.json BENCH_fleet_ci.json  # fleet_scale

while

    scripts/bench_diff.py BENCH_dcs.json:pr5-baseline BENCH_dcs.json:pr5-optimized

compares two named entries of the history.

Prints an old-vs-new table for every benchmark present in both runs and
exits 1 if any "micro" benchmark regressed by more than the threshold
(default 25%).  "e2e" wall-clock rows are advisory: printed, never gating.
"""

import json
import sys


def load_run(spec, prefer_names=None):
    path, _, label = spec.partition(":")
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") == "dcs-bench/1":
        return doc
    if doc.get("schema") == "dcs-bench-trajectory/1":
        entries = doc.get("entries", [])
        if not entries:
            sys.exit(f"{path}: trajectory file has no entries")
        if label:
            for entry in entries:
                if entry.get("label") == label:
                    return entry
            sys.exit(f"{path}: no entry labelled {label!r}")
        # No label: prefer the most recent entry that overlaps the other
        # run's benchmark names, so a trajectory interleaving perf_harness
        # and fleet_scale entries resolves each diff to its own baseline.
        if prefer_names:
            for entry in reversed(entries):
                names = {b["name"] for b in entry.get("benchmarks", [])}
                if names & prefer_names:
                    return entry
        return entries[-1]
    sys.exit(f"{path}: unrecognised schema {doc.get('schema')!r}")


def main(argv):
    threshold = 0.25
    args = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            args.append(arg)
    if len(args) != 2:
        sys.exit(__doc__)

    new_run = load_run(args[1])
    old_run = load_run(args[0], prefer_names={b["name"] for b in new_run["benchmarks"]})
    old_by_name = {b["name"]: b for b in old_run["benchmarks"]}

    print(f"old: {old_run.get('label')}  ({old_run.get('host', {}).get('cpu')})")
    print(f"new: {new_run.get('label')}  ({new_run.get('host', {}).get('cpu')})")
    print(f"{'benchmark':<34}{'old':>14}{'new':>14}{'delta':>10}  unit")

    regressions = []
    for bench in new_run["benchmarks"]:
        name = bench["name"]
        old = old_by_name.get(name)
        if old is None:
            print(f"{name:<34}{'-':>14}{bench['median']:>14.3f}{'new':>10}  {bench['unit']}")
            continue
        old_median, new_median = old["median"], bench["median"]
        if old_median == 0:
            continue
        # Positive ratio = improvement, respecting the benchmark's direction.
        if bench.get("higher_is_better", True):
            ratio = new_median / old_median
        else:
            ratio = old_median / new_median
        delta = (ratio - 1.0) * 100.0
        marker = ""
        if ratio < 1.0 - threshold:
            if bench.get("kind", "micro") == "micro":
                regressions.append((name, delta))
                marker = "  << REGRESSION"
            else:
                marker = "  (advisory)"
        print(
            f"{name:<34}{old_median:>14.3f}{new_median:>14.3f}{delta:>+9.1f}%"
            f"  {bench['unit']}{marker}"
        )

    if regressions:
        print(f"\n{len(regressions)} microbenchmark(s) regressed more than "
              f"{threshold * 100:.0f}%:")
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1f}%")
        return 1
    print("\nno gating regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
