#include "src/workload/apps.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(AppsTest, AllAppNamesResolve) {
  DeadlineMonitor deadlines;
  for (const std::string& name : AllAppNames()) {
    const AppBundle bundle = MakeApp(name, &deadlines, 1);
    EXPECT_EQ(bundle.name, name);
    EXPECT_FALSE(bundle.tasks.empty()) << name;
    EXPECT_GT(bundle.duration, SimTime::Seconds(30)) << name;
  }
}

TEST(AppsTest, UnknownAppThrows) {
  DeadlineMonitor deadlines;
  EXPECT_THROW(MakeApp("doom", &deadlines, 1), std::invalid_argument);
  EXPECT_THROW(MakeApp("", &deadlines, 1), std::invalid_argument);
}

TEST(AppsTest, MpegHasVideoAndAudioTasks) {
  DeadlineMonitor deadlines;
  const AppBundle bundle = MakeMpegApp(&deadlines, 1);
  ASSERT_EQ(bundle.tasks.size(), 2u);
  EXPECT_STREQ(bundle.tasks[0]->Name(), "mpeg_video");
  EXPECT_STREQ(bundle.tasks[1]->Name(), "mpeg_audio");
  EXPECT_EQ(bundle.duration, SimTime::Seconds(60));
}

TEST(AppsTest, JavaAppsIncludePollingTask) {
  DeadlineMonitor deadlines;
  for (const char* name : {"web", "chess", "editor"}) {
    const AppBundle bundle = MakeApp(name, &deadlines, 1);
    bool has_poll = false;
    for (const auto& task : bundle.tasks) {
      has_poll |= std::string(task->Name()) == "java_poll";
    }
    EXPECT_TRUE(has_poll) << name;
  }
}

TEST(AppsTest, MpegRunsDirectlyOnLinuxWithoutJvm) {
  DeadlineMonitor deadlines;
  const AppBundle bundle = MakeMpegApp(&deadlines, 1);
  for (const auto& task : bundle.tasks) {
    EXPECT_STRNE(task->Name(), "java_poll");
  }
}

TEST(AppsTest, DurationsMatchPaperTraces) {
  DeadlineMonitor deadlines;
  // 60 s MPEG, ~190 s Web, ~218 s Chess, ~70 s TalkingEditor.
  EXPECT_EQ(MakeMpegApp(&deadlines, 1).duration, SimTime::Seconds(60));
  const SimTime web = MakeWebApp(&deadlines, 1).duration;
  EXPECT_GT(web, SimTime::Seconds(120));
  EXPECT_LT(web, SimTime::Seconds(210));
  const SimTime chess = MakeChessApp(&deadlines, 1).duration;
  EXPECT_GT(chess, SimTime::Seconds(140));
  EXPECT_LT(chess, SimTime::Seconds(230));
  const SimTime editor = MakeTalkingEditorApp(&deadlines, 1).duration;
  EXPECT_GT(editor, SimTime::Seconds(60));
  EXPECT_LT(editor, SimTime::Seconds(100));
}

TEST(AppsTest, EveryAppMeetsConstraintsAt132MHz) {
  // "Each application was able to run at 132MHz and still meet any user
  // interaction constraints."
  for (const std::string& name : AllAppNames()) {
    WorkloadHarness h(5, 7);
    AppBundle bundle = MakeApp(name, &h.deadlines, 7);
    const SimTime duration = bundle.duration;
    for (auto& task : bundle.tasks) {
      h.Add(std::move(task));
    }
    h.Run(duration + SimTime::Seconds(5));
    EXPECT_EQ(h.deadlines.TotalMissed(), 0) << name;
    EXPECT_GT(h.deadlines.TotalEvents(), 0) << name;
  }
}

}  // namespace
}  // namespace dcs
