#include "src/workload/mpeg.h"

#include <gtest/gtest.h>

#include "tests/workload/harness.h"

namespace dcs {
namespace {

MpegConfig ShortClip(double seconds = 10.0) {
  MpegConfig config;
  config.duration = SimTime::FromSecondsF(seconds);
  return config;
}

TEST(MpegVideoTest, DecodesExpectedFrameCount) {
  WorkloadHarness h;
  auto video = std::make_unique<MpegVideoWorkload>(ShortClip(10.0), &h.deadlines);
  MpegVideoWorkload* raw = video.get();
  h.Add(std::move(video));
  h.Run(SimTime::Seconds(12));
  EXPECT_EQ(raw->frames_decoded(), 150);  // 15 fps * 10 s
  EXPECT_EQ(h.deadlines.Stats("video_frame").total, 150);
}

TEST(MpegVideoTest, NoMissesAtTopSpeed) {
  WorkloadHarness h;
  h.Add(std::make_unique<MpegVideoWorkload>(ShortClip(), &h.deadlines));
  h.Run(SimTime::Seconds(12));
  EXPECT_EQ(h.deadlines.Stats("video_frame").missed, 0);
}

TEST(MpegVideoTest, NoMissesAt132MHz) {
  // "Our measurements showed that the MPEG application can run at 132MHz
  // without dropping frames."
  WorkloadHarness h(5);
  h.Add(std::make_unique<MpegVideoWorkload>(ShortClip(20.0), &h.deadlines));
  h.Run(SimTime::Seconds(22));
  EXPECT_EQ(h.deadlines.Stats("video_frame").missed, 0);
}

TEST(MpegVideoTest, MissesBelow118MHz) {
  WorkloadHarness h(3);  // 103.2 MHz
  h.Add(std::make_unique<MpegVideoWorkload>(ShortClip(20.0), &h.deadlines));
  h.Run(SimTime::Seconds(25));
  EXPECT_GT(h.deadlines.Stats("video_frame").missed, 10);
}

TEST(MpegVideoTest, UtilizationHigherAtLowerClock) {
  WorkloadHarness fast(10);
  WorkloadHarness slow(5);
  fast.Add(std::make_unique<MpegVideoWorkload>(ShortClip(), nullptr));
  slow.Add(std::make_unique<MpegVideoWorkload>(ShortClip(), nullptr));
  fast.Run(SimTime::Seconds(10));
  slow.Run(SimTime::Seconds(10));
  EXPECT_GT(slow.MeanUtilization(10), fast.MeanUtilization(10) + 0.1);
}

TEST(MpegVideoTest, SpinSleepHeuristicKeepsQuantaBimodal) {
  // Per the paper, quanta are mostly either saturated (decode/spin) or idle
  // (sleep): at 206 MHz most quanta should be > 90% or < 10% busy.
  WorkloadHarness h;
  h.Add(std::make_unique<MpegVideoWorkload>(ShortClip(), nullptr));
  h.Run(SimTime::Seconds(10));
  const TraceSeries* util = h.kernel->sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  int extreme = 0;
  int total = 0;
  for (std::size_t i = 5; i < util->size(); ++i) {
    const double u = util->points()[i].value;
    if (u > 0.9 || u < 0.1) {
      ++extreme;
    }
    ++total;
  }
  EXPECT_GT(static_cast<double>(extreme) / total, 0.6);
}

TEST(MpegVideoTest, WorksWithoutDeadlineMonitor) {
  WorkloadHarness h;
  h.Add(std::make_unique<MpegVideoWorkload>(ShortClip(2.0), nullptr));
  h.Run(SimTime::Seconds(4));
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
}

TEST(MpegAudioTest, RefillsOnSchedule) {
  WorkloadHarness h;
  h.Add(std::make_unique<MpegAudioWorkload>(ShortClip(10.0), &h.deadlines));
  h.Run(SimTime::Seconds(12));
  EXPECT_EQ(h.deadlines.Stats("audio").total, 100);  // one per 100 ms
  EXPECT_EQ(h.deadlines.Stats("audio").missed, 0);
}

TEST(MpegAudioTest, TogglesAudioPeripheral) {
  WorkloadHarness h;
  h.Add(std::make_unique<MpegAudioWorkload>(ShortClip(1.0), &h.deadlines));
  EXPECT_FALSE(h.itsy->peripherals().audio_on);
  h.Run(SimTime::Millis(500));
  EXPECT_TRUE(h.itsy->peripherals().audio_on);
  h.Run(SimTime::Seconds(2));
  EXPECT_FALSE(h.itsy->peripherals().audio_on);
}

TEST(MpegAppTest, VideoAndAudioTogetherMeetDeadlinesAt132) {
  WorkloadHarness h(5);
  const MpegConfig config = ShortClip(20.0);
  h.Add(std::make_unique<MpegVideoWorkload>(config, &h.deadlines));
  h.Add(std::make_unique<MpegAudioWorkload>(config, &h.deadlines));
  h.Run(SimTime::Seconds(23));
  EXPECT_EQ(h.deadlines.TotalMissed(), 0)
      << "video misses: " << h.deadlines.Stats("video_frame").missed
      << ", audio misses: " << h.deadlines.Stats("audio").missed;
}

TEST(MpegAppTest, SeedsVaryFrameCosts) {
  WorkloadHarness a(10, 1);
  WorkloadHarness b(10, 99);
  a.Add(std::make_unique<MpegVideoWorkload>(ShortClip(5.0), nullptr));
  b.Add(std::make_unique<MpegVideoWorkload>(ShortClip(5.0), nullptr));
  a.Run(SimTime::Seconds(6));
  b.Run(SimTime::Seconds(6));
  EXPECT_NE(a.kernel->total_busy(), b.kernel->total_busy());
}

TEST(MpegVideoTest, IFramesCostMoreOnAverage) {
  // Indirect check through the config: the GOP factors put I well above B.
  const MpegConfig config;
  EXPECT_GT(config.i_factor, config.p_factor);
  EXPECT_GT(config.p_factor, config.b_factor);
  // Average of the IBBPBBPBB pattern stays ~1 so mean_decode_ms is the mean.
  const double avg =
      (config.i_factor + 2 * config.p_factor + 6 * config.b_factor) / 9.0;
  EXPECT_NEAR(avg, 1.0, 0.05);
}

}  // namespace
}  // namespace dcs
