#include "src/workload/java_vm.h"

#include <gtest/gtest.h>

#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(JavaPollWorkloadTest, SteadyPollingUtilizationAtTopSpeed) {
  // ~1 ms of work every 30 ms at 206.4 MHz -> ~3.3% utilization.
  WorkloadHarness h;
  h.Add(std::make_unique<JavaPollWorkload>());
  h.Run(SimTime::Seconds(3));
  EXPECT_NEAR(h.MeanUtilization(10), 0.033, 0.015);
}

TEST(JavaPollWorkloadTest, PollsCostMoreAtLowClock) {
  // The same poll takes ~3.4x the cycles-time at 59 MHz: utilization rises.
  WorkloadHarness slow(0);
  slow.Add(std::make_unique<JavaPollWorkload>());
  slow.Run(SimTime::Seconds(3));
  EXPECT_GT(slow.MeanUtilization(10), 0.08);
  EXPECT_LT(slow.MeanUtilization(10), 0.20);
}

TEST(JavaPollWorkloadTest, RunsForever) {
  WorkloadHarness h;
  h.Add(std::make_unique<JavaPollWorkload>());
  h.Run(SimTime::Seconds(10));
  EXPECT_EQ(h.kernel->LiveTasks(), 1u);
}

TEST(JavaPollWorkloadTest, PeriodicityVisibleInUtilizationTrace) {
  // With a 30 ms period and 10 ms quanta, polls land in every third quantum
  // (the paper: "This periodic polling adds additional variation to the
  // clock setting algorithms").
  WorkloadHarness h;
  h.Add(std::make_unique<JavaPollWorkload>());
  h.Run(SimTime::Seconds(2));
  const TraceSeries* util = h.kernel->sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  int busy_quanta = 0;
  for (std::size_t i = 5; i < util->size(); ++i) {
    if (util->points()[i].value > 0.05) {
      ++busy_quanta;
    }
  }
  // Roughly one busy quantum in three.
  const double fraction = static_cast<double>(busy_quanta) /
                          static_cast<double>(util->size() - 5);
  EXPECT_NEAR(fraction, 1.0 / 3.0, 0.12);
}

TEST(JavaPollWorkloadTest, CustomPeriodAndCost) {
  WorkloadHarness h;
  h.Add(std::make_unique<JavaPollWorkload>(SimTime::Millis(10), 5.0));
  h.Run(SimTime::Seconds(2));
  // 5 ms of work every 10 ms -> ~50%.
  EXPECT_NEAR(h.MeanUtilization(10), 0.5, 0.08);
}

}  // namespace
}  // namespace dcs
