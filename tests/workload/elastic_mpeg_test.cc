// Tests for the Pering-style elastic MPEG playback mode.

#include <gtest/gtest.h>

#include "src/workload/mpeg.h"
#include "tests/workload/harness.h"

namespace dcs {
namespace {

MpegConfig ElasticClip(double seconds) {
  MpegConfig config;
  config.duration = SimTime::FromSecondsF(seconds);
  config.elastic = true;
  return config;
}

TEST(ElasticMpegTest, NoDropsWhenFast) {
  WorkloadHarness h(10);
  auto video = std::make_unique<MpegVideoWorkload>(ElasticClip(10.0), &h.deadlines);
  MpegVideoWorkload* raw = video.get();
  h.Add(std::move(video));
  h.Run(SimTime::Seconds(12));
  EXPECT_EQ(raw->frames_dropped(), 0);
  EXPECT_EQ(raw->frames_decoded(), 150);
}

TEST(ElasticMpegTest, DropsFramesWhenTooSlow) {
  WorkloadHarness h(0);  // 59 MHz: decode takes ~2 frame periods
  auto video = std::make_unique<MpegVideoWorkload>(ElasticClip(10.0), &h.deadlines);
  MpegVideoWorkload* raw = video.get();
  h.Add(std::move(video));
  h.Run(SimTime::Seconds(15));
  EXPECT_GT(raw->frames_dropped(), 40);
  EXPECT_LT(raw->frames_dropped(), 150);
  EXPECT_EQ(raw->frames_decoded(), 150);  // index advanced over the whole clip
}

TEST(ElasticMpegTest, StaysRealtimeUnlikeInelastic) {
  // Elastic playback bounds lateness (it sheds load); inelastic playback
  // accumulates it without bound at 59 MHz.
  WorkloadHarness elastic_h(0);
  auto elastic = std::make_unique<MpegVideoWorkload>(ElasticClip(10.0), &elastic_h.deadlines);
  elastic_h.Add(std::move(elastic));
  elastic_h.Run(SimTime::Seconds(20));

  WorkloadHarness inelastic_h(0);
  MpegConfig inelastic_config;
  inelastic_config.duration = SimTime::Seconds(10);
  auto inelastic =
      std::make_unique<MpegVideoWorkload>(inelastic_config, &inelastic_h.deadlines);
  inelastic_h.Add(std::move(inelastic));
  inelastic_h.Run(SimTime::Seconds(30));

  const SimTime elastic_worst = elastic_h.deadlines.Stats("video_frame").worst_lateness;
  const SimTime inelastic_worst =
      inelastic_h.deadlines.Stats("video_frame").worst_lateness;
  EXPECT_LT(elastic_worst, SimTime::Millis(300));
  EXPECT_GT(inelastic_worst, SimTime::Seconds(1));
}

TEST(ElasticMpegTest, DeliveredPlusDroppedCoversTheClip) {
  WorkloadHarness h(2);  // 88.5 MHz: some drops
  auto video = std::make_unique<MpegVideoWorkload>(ElasticClip(10.0), &h.deadlines);
  MpegVideoWorkload* raw = video.get();
  h.Add(std::move(video));
  h.Run(SimTime::Seconds(15));
  EXPECT_EQ(raw->frames_delivered() + raw->frames_dropped(), raw->frames_decoded());
  EXPECT_EQ(h.deadlines.Stats("video_frame").total, raw->frames_delivered());
}

TEST(ElasticMpegTest, HigherClockDeliversMoreFrames) {
  int delivered_slow = 0;
  int delivered_fast = 0;
  {
    WorkloadHarness h(0);
    auto video = std::make_unique<MpegVideoWorkload>(ElasticClip(10.0), nullptr);
    MpegVideoWorkload* raw = video.get();
    h.Add(std::move(video));
    h.Run(SimTime::Seconds(15));
    delivered_slow = raw->frames_delivered();
  }
  {
    WorkloadHarness h(4);
    auto video = std::make_unique<MpegVideoWorkload>(ElasticClip(10.0), nullptr);
    MpegVideoWorkload* raw = video.get();
    h.Add(std::move(video));
    h.Run(SimTime::Seconds(15));
    delivered_fast = raw->frames_delivered();
  }
  EXPECT_GT(delivered_fast, delivered_slow + 20);
}

TEST(ElasticMpegTest, InelasticDefaultNeverDrops) {
  WorkloadHarness h(0);
  MpegConfig config;
  config.duration = SimTime::Seconds(5);
  auto video = std::make_unique<MpegVideoWorkload>(config, nullptr);
  MpegVideoWorkload* raw = video.get();
  h.Add(std::move(video));
  h.Run(SimTime::Seconds(20));
  EXPECT_EQ(raw->frames_dropped(), 0);
}

}  // namespace
}  // namespace dcs
