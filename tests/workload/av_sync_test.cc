// Tests for the A/V synchronisation tracking — the paper's literal failure
// symptom: "the MPEG audio and video became unsynchronized".

#include <gtest/gtest.h>

#include "src/exp/experiment.h"
#include "src/workload/apps.h"
#include "src/workload/mpeg.h"
#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(AvSyncTrackerTest, DriftArithmetic) {
  AvSyncTracker tracker;
  EXPECT_EQ(tracker.Drift(), SimTime::Zero());
  tracker.PublishAudio(SimTime::Seconds(2));
  tracker.PublishVideo(SimTime::Seconds(1));
  EXPECT_EQ(tracker.Drift(), SimTime::Seconds(1));  // video lags
  tracker.PublishVideo(SimTime::Seconds(3));
  EXPECT_EQ(tracker.Drift(), SimTime::Zero() - SimTime::Seconds(1));
}

void RunMpegBundle(WorkloadHarness& h, double seconds) {
  MpegConfig config;
  config.duration = SimTime::FromSecondsF(seconds);
  AppBundle bundle = MakeMpegApp(config, &h.deadlines, 5);
  for (auto& task : bundle.tasks) {
    h.Add(std::move(task));
  }
  h.Run(SimTime::FromSecondsF(seconds + 3.0));
}

TEST(AvSyncTest, StaysSynchronizedAt132MHz) {
  WorkloadHarness h(5);
  RunMpegBundle(h, 15.0);
  const auto stats = h.deadlines.Stats("av_sync");
  EXPECT_GT(stats.total, 200);
  EXPECT_EQ(stats.missed, 0);
}

TEST(AvSyncTest, StaysSynchronizedAtTopSpeed) {
  WorkloadHarness h(10);
  RunMpegBundle(h, 15.0);
  EXPECT_EQ(h.deadlines.Stats("av_sync").missed, 0);
}

TEST(AvSyncTest, DesynchronizesAtLowClock) {
  // At 59 MHz decode cannot keep up: video falls behind the audio clock and
  // the 100 ms sync tolerance is blown — the paper's observed failure.
  WorkloadHarness h(0);
  RunMpegBundle(h, 15.0);
  const auto stats = h.deadlines.Stats("av_sync");
  EXPECT_GT(stats.missed, 50);
  EXPECT_GT(stats.worst_lateness, SimTime::Seconds(1));
}

TEST(AvSyncTest, SyncStreamOnlyExistsForBundledApp) {
  // Constructing the video task alone (no tracker) reports no av_sync
  // events.
  WorkloadHarness h(10);
  MpegConfig config;
  config.duration = SimTime::Seconds(3);
  h.Add(std::make_unique<MpegVideoWorkload>(config, &h.deadlines));
  h.Run(SimTime::Seconds(5));
  EXPECT_EQ(h.deadlines.Stats("av_sync").total, 0);
  EXPECT_GT(h.deadlines.Stats("video_frame").total, 0);
}

TEST(AvSyncTest, ExperimentExposesSyncStream) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 5;
  config.duration = SimTime::Seconds(10);
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.streams.contains("av_sync"));
  EXPECT_EQ(result.streams.at("av_sync").missed, 0);
}

}  // namespace
}  // namespace dcs
