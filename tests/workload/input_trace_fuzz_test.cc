// Fuzz/robustness suite for the InputTrace CSV v2 parser.  A recorded trace
// is an input to a deterministic experiment, so the parser's contract is
// strict: any malformed document must raise std::invalid_argument naming the
// offending line — never crash, never silently drop rows, never return a
// half-parsed trace — and any document it does accept must round-trip
// through WriteCsv/ReadCsv exactly.

#include "src/workload/input_trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/sim/rng.h"

namespace dcs {
namespace {

// Field-level building blocks the mutator assembles into rows.
std::string RandomToken(Rng& rng, const std::string& alphabet, int max_len) {
  std::string token;
  const int length = static_cast<int>(rng.UniformInt(0, max_len));
  for (int i = 0; i < length; ++i) {
    token += alphabet[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(alphabet.size()) - 1))];
  }
  return token;
}

std::string RandomKind(Rng& rng) {
  // Printable salad including the CSV metacharacters the writer must quote.
  return RandomToken(rng, "abcxyz,\"@ #.0189-+", 12);
}

std::string RandomNumberishField(Rng& rng) {
  switch (rng.UniformInt(0, 6)) {
    case 0:
      return std::to_string(rng.UniformInt(0, 5'000'000));
    case 1:
      return std::to_string(rng.UniformInt(0, 5'000)) + "." +
             std::to_string(rng.UniformInt(0, 999));
    case 2:
      return "-" + std::to_string(rng.UniformInt(0, 5'000));
    case 3:
      return RandomToken(rng, "0123456789.eE+-x", 10);
    case 4:
      return "";
    case 5:
      return "1e" + std::to_string(rng.UniformInt(-400, 400));
    default:
      return RandomToken(rng, "abc 0123456789", 8);
  }
}

// One random document line: mostly structurally-plausible rows, sprinkled
// with comments, blanks, and outright byte salad.
std::string RandomLine(Rng& rng, std::int64_t* last_time_us) {
  switch (rng.UniformInt(0, 9)) {
    case 0:
      return "# " + RandomToken(rng, "abc,\"123", 10);
    case 1:
      return "";
    case 2:  // well-formed row with a non-decreasing time
      *last_time_us += rng.UniformInt(0, 1000);
      return std::to_string(*last_time_us) + "," + RandomKind(rng) + "," +
             std::to_string(rng.UniformInt(-100, 100));
    case 3:  // unterminated or malformed quoting
      return std::to_string(*last_time_us) + ",\"" + RandomToken(rng, "abc\"", 6) + "," +
             RandomNumberishField(rng);
    case 4:  // wrong arity
      return RandomNumberishField(rng) + "," + RandomKind(rng);
    default:
      return RandomNumberishField(rng) + "," + RandomKind(rng) + "," +
             RandomNumberishField(rng) + RandomToken(rng, ",x", 4);
  }
}

void ExpectExactRoundTrip(const InputTrace& trace, const std::string& context) {
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace reloaded = InputTrace::ReadCsv(ss);
  ASSERT_EQ(reloaded.size(), trace.size()) << context;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(reloaded.events()[i], trace.events()[i]) << context << " event " << i;
  }
}

TEST(InputTraceFuzzTest, MalformedDocumentsNeverCrashAndAcceptedOnesAreValid) {
  Rng rng(0xC5F);
  for (int trial = 0; trial < 2000; ++trial) {
    std::ostringstream doc;
    if (rng.NextDouble() < 0.85) {
      doc << "time_us,kind,magnitude\n";
    } else {
      doc << RandomToken(rng, "time_us,kind magnitude\"#", 24) << "\n";
    }
    std::int64_t last_time_us = 0;
    const int rows = static_cast<int>(rng.UniformInt(0, 8));
    for (int i = 0; i < rows; ++i) {
      doc << RandomLine(rng, &last_time_us) << "\n";
    }

    std::istringstream is(doc.str());
    InputTrace trace;
    try {
      trace = InputTrace::ReadCsv(is);
    } catch (const std::invalid_argument&) {
      continue;  // rejected cleanly — the only permitted failure mode
    }
    // Accepted: the trace must satisfy every documented invariant and
    // round-trip exactly.
    SimTime previous;
    for (const InputEvent& event : trace.events()) {
      EXPECT_GE(event.at, SimTime::Zero()) << "trial " << trial;
      EXPECT_GE(event.at, previous) << "trial " << trial;
      previous = event.at;
    }
    ExpectExactRoundTrip(trace, "trial " + std::to_string(trial));
  }
}

TEST(InputTraceFuzzTest, ErrorsNameThePhysicalLineOfTheBadRow) {
  // Pad the document with a random mix of comments, blanks, and valid rows,
  // then plant one known-bad row: the exception must cite its 1-based
  // physical line number (comments and blanks still count as lines).
  Rng rng(0xBADC5F);
  for (int trial = 0; trial < 200; ++trial) {
    std::ostringstream doc;
    doc << "time_us,kind,magnitude\n";
    int line = 1;
    std::int64_t time_us = 0;
    const int padding = static_cast<int>(rng.UniformInt(0, 10));
    for (int i = 0; i < padding; ++i) {
      switch (rng.UniformInt(0, 2)) {
        case 0:
          doc << "# comment\n";
          break;
        case 1:
          doc << "\n";
          break;
        default:
          time_us += rng.UniformInt(1, 500);
          doc << time_us << ",tap,1.0\n";
          break;
      }
      ++line;
    }
    const int bad_line = ++line;
    switch (rng.UniformInt(0, 3)) {
      case 0:
        doc << "not,a\n";
        break;
      case 1:
        doc << "-10,tap,1.0\n";
        break;
      case 2:
        doc << time_us << ",tap,nope\n";
        break;
      default:
        doc << time_us << ",\"open,1.0\n";
        break;
    }
    std::istringstream is(doc.str());
    try {
      InputTrace::ReadCsv(is);
      FAIL() << "expected std::invalid_argument at line " << bad_line << "\n" << doc.str();
    } catch (const std::invalid_argument& e) {
      const std::string needle = "line " + std::to_string(bad_line);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "wanted '" << needle << "' in: " << e.what();
    }
  }
}

TEST(InputTraceFuzzTest, RandomValidTracesRoundTripExactly) {
  // Property: Record -> WriteCsv -> ReadCsv is the identity for any trace
  // the API can build — nanosecond times (including duplicates), kinds full
  // of CSV metacharacters, and magnitudes across the double range.
  Rng rng(0x707);
  for (int trial = 0; trial < 200; ++trial) {
    InputTrace trace;
    std::int64_t ns = 0;
    const int events = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < events; ++i) {
      ns += rng.UniformInt(0, 3'000'000);  // duplicates when the gap is 0
      double magnitude;
      switch (rng.UniformInt(0, 4)) {
        case 0:
          magnitude = rng.Uniform(-1e6, 1e6);
          break;
        case 1:
          magnitude = rng.Uniform(0.0, 1.0) * 1e-300;  // subnormal territory
          break;
        case 2:
          magnitude = rng.Uniform(-1.0, 1.0) * 1e300;
          break;
        case 3:
          magnitude = 0.0;
          break;
        default:
          magnitude = 1.0 / 3.0;
          break;
      }
      trace.Record(SimTime::Nanos(ns), RandomKind(rng), magnitude);
    }
    ExpectExactRoundTrip(trace, "trial " + std::to_string(trial));
  }
}

TEST(InputTraceFuzzTest, TruncatedDocumentsFailCleanly) {
  // Chop a valid document at every byte offset: each prefix must either
  // raise invalid_argument (the cut landed mid-row and left it malformed) or
  // parse into a prefix of the original events.  The one lossy case is a cut
  // inside the final magnitude ("1.5" cut to "1."), which still parses — so
  // the last event is only held to its time and kind.
  InputTrace trace;
  trace.Record(SimTime::Millis(1), "tap", 1.5);
  trace.Record(SimTime::Millis(2), "load,heavy", -2.0);
  trace.Record(SimTime::Millis(3), "say \"hi\"", 0.25);
  std::stringstream full;
  trace.WriteCsv(full);
  const std::string doc = full.str();
  for (std::size_t cut = 0; cut <= doc.size(); ++cut) {
    std::istringstream is(doc.substr(0, cut));
    try {
      const InputTrace parsed = InputTrace::ReadCsv(is);
      ASSERT_LE(parsed.size(), trace.size()) << "cut " << cut;
      for (std::size_t i = 0; i + 1 < parsed.size(); ++i) {
        EXPECT_EQ(parsed.events()[i], trace.events()[i]) << "cut " << cut;
      }
      if (!parsed.empty()) {
        const std::size_t last = parsed.size() - 1;
        EXPECT_EQ(parsed.events()[last].at, trace.events()[last].at) << "cut " << cut;
        EXPECT_EQ(parsed.events()[last].kind, trace.events()[last].kind) << "cut " << cut;
      }
    } catch (const std::invalid_argument&) {
      // Fine: the cut landed mid-row.
    }
  }
}

}  // namespace
}  // namespace dcs
