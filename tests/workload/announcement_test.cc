// Verifies that every application workload announces its compute deadlines
// through Action::ComputeBy (the section 6 extension hook) and that the
// announcements are meaningful (future deadlines, matching the app's natural
// cadence).

#include <gtest/gtest.h>

#include "src/workload/apps.h"
#include "tests/workload/harness.h"

namespace dcs {
namespace {

// Samples the kernel's deadline registry every quantum while the app runs.
struct RegistryProbe {
  int samples = 0;
  int samples_with_pending = 0;
  int future_deadlines = 0;
  int total_pending = 0;
};

RegistryProbe ProbeApp(const std::string& app, double seconds, int step = 10) {
  WorkloadHarness h(step, 3);
  AppBundle bundle = MakeApp(app, &h.deadlines, 3);
  for (auto& task : bundle.tasks) {
    h.Add(std::move(task));
  }
  RegistryProbe probe;
  // Poll the registry at 10 ms intervals via simulator events.
  const int polls = static_cast<int>(seconds * 100.0);
  for (int i = 1; i <= polls; ++i) {
    h.sim.At(SimTime::Millis(10 * i), [&probe, &h] {
      const auto pending = h.kernel->PendingDeadlines();
      ++probe.samples;
      if (!pending.empty()) {
        ++probe.samples_with_pending;
      }
      for (const auto& item : pending) {
        ++probe.total_pending;
        if (item.deadline > h.sim.Now()) {
          ++probe.future_deadlines;
        }
      }
    });
  }
  h.Run(SimTime::FromSecondsF(seconds + 0.5));
  return probe;
}

TEST(AnnouncementTest, MpegAnnouncesDuringMostQuanta) {
  const RegistryProbe probe = ProbeApp("mpeg", 10.0);
  // Decode occupies most of each frame period, and every decode announces.
  EXPECT_GT(probe.samples_with_pending, probe.samples / 2);
  EXPECT_GT(probe.total_pending, 100);
}

TEST(AnnouncementTest, MpegDeadlinesAreMostlyInTheFuture) {
  const RegistryProbe probe = ProbeApp("mpeg", 10.0);
  // At 206.4 MHz decode always finishes well before its display time, so
  // pending announcements should essentially never be overdue.
  EXPECT_GT(probe.future_deadlines, probe.total_pending * 9 / 10);
}

TEST(AnnouncementTest, InteractiveAppsAnnounceTheirBursts) {
  for (const char* app : {"web", "chess", "editor"}) {
    const RegistryProbe probe = ProbeApp(app, 30.0);
    EXPECT_GT(probe.total_pending, 0) << app;
  }
}

TEST(AnnouncementTest, RegistryEmptiesWhenAppsExit) {
  WorkloadHarness h(10, 3);
  MpegConfig config;
  config.duration = SimTime::Seconds(2);
  AppBundle bundle = MakeMpegApp(config, &h.deadlines, 3);
  for (auto& task : bundle.tasks) {
    h.Add(std::move(task));
  }
  h.Run(SimTime::Seconds(5));
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
  EXPECT_TRUE(h.kernel->PendingDeadlines().empty());
}

}  // namespace
}  // namespace dcs
