#include "src/workload/server.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/workload/apps.h"
#include "tests/workload/harness.h"

namespace dcs {
namespace {

ServerConfig QuickConfig() {
  ServerConfig config;
  config.rate_rps = 50.0;
  config.duration = SimTime::Seconds(5);
  config.slo = SimTime::Millis(100);
  return config;
}

TEST(ServerTraceTest, ArrivalProcessNamesRoundTrip) {
  for (const auto process : {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
                             ArrivalProcess::kSelfSimilar}) {
    EXPECT_EQ(ArrivalProcessFromName(ArrivalProcessName(process)), process);
  }
  EXPECT_THROW(ArrivalProcessFromName("fractal"), std::invalid_argument);
}

TEST(ServerTraceTest, TraceIsSeededDeterministic) {
  const ServerConfig config = QuickConfig();
  const InputTrace a = MakeServerRequestTrace(config, 7);
  const InputTrace b = MakeServerRequestTrace(config, 7);
  const InputTrace c = MakeServerRequestTrace(config, 8);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.events(), b.events());
  EXPECT_NE(a.events(), c.events());
}

// Differential test against queueing theory: Poisson arrivals at rate λ have
// exponential inter-arrival gaps with mean 1/λ.  With n ≈ λT samples the
// sample mean's standard error is (1/λ)/√n, so a 5% tolerance is > 5σ.
TEST(ServerTraceTest, PoissonInterArrivalsMatchAnalyticMean) {
  ServerConfig config;
  config.rate_rps = 200.0;
  config.duration = SimTime::Seconds(60);
  const InputTrace trace = MakeServerRequestTrace(config, 11);
  ASSERT_GT(trace.size(), 10000u);
  double sum_gap_s = 0.0;
  for (std::size_t i = 1; i < trace.size(); ++i) {
    sum_gap_s += (trace.events()[i].at - trace.events()[i - 1].at).ToSeconds();
  }
  const double mean_gap = sum_gap_s / static_cast<double>(trace.size() - 1);
  const double analytic = 1.0 / config.rate_rps;
  EXPECT_NEAR(mean_gap, analytic, 0.05 * analytic);
}

TEST(ServerTraceTest, AllProcessesHoldTheConfiguredMeanRate) {
  for (const auto process : {ArrivalProcess::kPoisson, ArrivalProcess::kBursty,
                             ArrivalProcess::kSelfSimilar}) {
    ServerConfig config;
    config.arrivals = process;
    config.rate_rps = 100.0;
    config.duration = SimTime::Seconds(120);
    const InputTrace trace = MakeServerRequestTrace(config, 13);
    const double realized =
        static_cast<double>(trace.size()) / config.duration.ToSeconds();
    // Bursty/self-similar traffic has far higher count variance than
    // Poisson; 20% is loose enough for the heavy-tailed construction while
    // still catching a mis-solved per-state rate (those come out 2x off).
    EXPECT_NEAR(realized, config.rate_rps, 0.20 * config.rate_rps)
        << ArrivalProcessName(process);
  }
}

TEST(ServerTraceTest, BurstyTraceIsBurstier) {
  // Coefficient of variation of inter-arrival gaps: 1 for Poisson,
  // noticeably above 1 for the MMPP.
  auto gap_cv = [](const InputTrace& trace) {
    double sum = 0.0;
    double sum_sq = 0.0;
    const auto n = static_cast<double>(trace.size() - 1);
    for (std::size_t i = 1; i < trace.size(); ++i) {
      const double gap = (trace.events()[i].at - trace.events()[i - 1].at).ToSeconds();
      sum += gap;
      sum_sq += gap * gap;
    }
    const double mean = sum / n;
    return std::sqrt(sum_sq / n - mean * mean) / mean;
  };
  ServerConfig config;
  config.rate_rps = 100.0;
  config.duration = SimTime::Seconds(120);
  const double poisson_cv = gap_cv(MakeServerRequestTrace(config, 17));
  config.arrivals = ArrivalProcess::kBursty;
  const double bursty_cv = gap_cv(MakeServerRequestTrace(config, 17));
  EXPECT_NEAR(poisson_cv, 1.0, 0.1);
  EXPECT_GT(bursty_cv, poisson_cv + 0.2);
}

TEST(ServerTraceTest, RequestTraceSurvivesCsvRoundTrip) {
  const InputTrace trace = MakeServerRequestTrace(QuickConfig(), 7);
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  ASSERT_EQ(loaded.size(), trace.size());
  EXPECT_EQ(loaded.events(), trace.events());
}

TEST(ServerWorkloadTest, ServesEveryRequestWithinSloAtFullSpeed) {
  const ServerConfig config = QuickConfig();
  const InputTrace trace = MakeServerRequestTrace(config, 7);
  WorkloadHarness h(ClockTable::MaxStep(), 7);
  h.Add(std::make_unique<ServerWorkload>(trace, config, &h.deadlines));
  h.Run(config.duration + SimTime::Seconds(2));
  const auto stats = h.deadlines.Stats("requests");
  EXPECT_EQ(stats.total, static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(stats.missed, 0);
  // Every completion lands in the latency histogram.
  EXPECT_EQ(stats.latency_us.count(), trace.size());
  EXPECT_GT(stats.latency_us.mean(), 0.0);
}

TEST(ServerWorkloadTest, ReplayedCsvTraceProducesIdenticalOutcome) {
  // The trace-ingestion path: write the generated trace to CSV, read it
  // back, and replay — stats must match the direct run exactly.
  const ServerConfig config = QuickConfig();
  const InputTrace trace = MakeServerRequestTrace(config, 7);
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace replay = InputTrace::ReadCsv(ss);

  WorkloadHarness direct(5, 7);
  direct.Add(std::make_unique<ServerWorkload>(trace, config, &direct.deadlines));
  direct.Run(config.duration + SimTime::Seconds(2));
  WorkloadHarness replayed(5, 7);
  replayed.Add(std::make_unique<ServerWorkload>(replay, config, &replayed.deadlines));
  replayed.Run(config.duration + SimTime::Seconds(2));

  const auto a = direct.deadlines.Stats("requests");
  const auto b = replayed.deadlines.Stats("requests");
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.missed, b.missed);
  EXPECT_EQ(a.worst_lateness, b.worst_lateness);
  EXPECT_EQ(a.latency_us.sum(), b.latency_us.sum());
}

TEST(ServerWorkloadTest, ArrivalKindScalesConfiguredMeanDemand) {
  // "arrival" events carry a demand multiplier instead of explicit µs.
  ServerConfig config = QuickConfig();
  config.service_ms_at_top = 4.0;
  InputTrace trace;
  trace.Record(SimTime::Millis(100), "arrival", 2.0);  // 8 ms at top
  WorkloadHarness h(ClockTable::MaxStep(), 7);
  h.Add(std::make_unique<ServerWorkload>(trace, config, &h.deadlines));
  h.Run(SimTime::Seconds(1));
  const auto stats = h.deadlines.Stats("requests");
  ASSERT_EQ(stats.total, 1);
  // Latency is at least the 8 ms service time (memory stretch adds more).
  EXPECT_GE(stats.latency_us.min(), 8000.0);
}

TEST(ServerWorkloadTest, RejectsForeignEventKinds) {
  InputTrace trace;
  trace.Record(SimTime::Millis(1), "scroll", 1.0);
  EXPECT_THROW(ServerWorkload(trace, ServerConfig{}, nullptr), std::invalid_argument);
}

TEST(ServerAppTest, BundleDrainsQueueAfterArrivalWindow) {
  DeadlineMonitor deadlines;
  const AppBundle bundle = MakeServerApp(QuickConfig(), &deadlines, 7);
  EXPECT_EQ(bundle.name, "server");
  EXPECT_EQ(bundle.tasks.size(), 1u);
  EXPECT_GT(bundle.duration, QuickConfig().duration);
}

// --- ServerConfig validation (strict, InputTrace-v2 style) ------------------

TEST(ServerConfigValidationTest, RejectsNonPositiveCoreParameters) {
  ServerConfig config = QuickConfig();
  config.rate_rps = 0.0;
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.duration = SimTime::Zero();
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.slo = SimTime::Zero();
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.service_ms_at_top = -1.0;
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
}

TEST(ServerConfigValidationTest, RejectsBadStreams) {
  ServerConfig config = QuickConfig();
  config.streams = {{"gold", 1.0, 1.0}, {"gold", 2.0, 1.0}};  // duplicate name
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config.streams = {{"", 1.0, 1.0}};  // empty name
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config.streams = {{"gold", 1.0, 0.0}};  // non-positive weight
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config.streams = {{"gold", 1.0, 1.0}, {"bronze", 0.5, 2.0}};
  EXPECT_NO_THROW(ValidateServerConfig(config));
}

TEST(ServerConfigValidationTest, RejectsBadAdmissionParameters) {
  ServerConfig config = QuickConfig();
  config.admission.utilization_bound = 0.0;
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.admission.decrease_factor = 1.0;  // must strictly decrease
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.admission.min_bound = 0.5;
  config.admission.max_bound = 0.25;  // inverted range
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.admission.feedback_window = 0;
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
  config = QuickConfig();
  config.admission.demand_ewma_weight = 1.5;  // weight in (0, 1]
  EXPECT_THROW(ValidateServerConfig(config), std::invalid_argument);
}

TEST(ServerConfigValidationTest, ConstructorsValidate) {
  ServerConfig config = QuickConfig();
  config.rate_rps = -3.0;
  EXPECT_THROW(MakeServerRequestTrace(config, 7), std::invalid_argument);
  InputTrace trace;
  trace.Record(SimTime::Millis(1), "arrival", 1.0);
  EXPECT_THROW(ServerWorkload(trace, config, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace dcs
