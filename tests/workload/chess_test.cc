#include "src/workload/chess.h"

#include <gtest/gtest.h>

#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(ChessTraceTest, CoversAbout218Seconds) {
  const InputTrace trace = MakeChessGameTrace(1);
  EXPECT_GT(trace.Duration(), SimTime::Seconds(120));
  EXPECT_LT(trace.Duration(), SimTime::Seconds(218));
}

TEST(ChessTraceTest, BookMovesAreFastReplies) {
  const InputTrace trace = MakeChessGameTrace(1);
  ASSERT_GE(trace.size(), 6u);
  // Early moves have near-zero search budgets; later moves search seconds.
  EXPECT_LT(trace.events()[0].magnitude, 0.1);
  EXPECT_GT(trace.events()[5].magnitude, 1.0);
}

TEST(ChessWorkloadTest, CompletesGameAtTopSpeed) {
  WorkloadHarness h;
  InputTrace trace = MakeChessGameTrace(4);
  const std::size_t moves = trace.size();
  h.Add(std::make_unique<ChessWorkload>(std::move(trace), ChessConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(230));
  EXPECT_EQ(h.deadlines.Stats("interactive").total, static_cast<std::int64_t>(moves));
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
}

TEST(ChessWorkloadTest, SearchSaturatesCpu) {
  // Figure 4(c): "utilization reaches 100% when Crafty is planning moves".
  WorkloadHarness h;
  h.Add(std::make_unique<ChessWorkload>(MakeChessGameTrace(4), ChessConfig{}, nullptr));
  h.Run(SimTime::Seconds(230));
  const TraceSeries* util = h.kernel->sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  int saturated = 0;
  for (const TracePoint& p : util->points()) {
    if (p.value > 0.99) {
      ++saturated;
    }
  }
  // Several seconds worth of saturated quanta (search budgets).
  EXPECT_GT(saturated, 300);
}

TEST(ChessWorkloadTest, SearchTimeIndependentOfClock) {
  // Crafty is time-budgeted: busy time is the same at 59 MHz as at 206 MHz.
  WorkloadHarness fast(10);
  WorkloadHarness slow(0);
  fast.Add(std::make_unique<ChessWorkload>(MakeChessGameTrace(4), ChessConfig{}, nullptr));
  slow.Add(std::make_unique<ChessWorkload>(MakeChessGameTrace(4), ChessConfig{}, nullptr));
  fast.Run(SimTime::Seconds(230));
  slow.Run(SimTime::Seconds(230));
  // Spin-dominated busy time: within ~15% (UI bursts do stretch).
  EXPECT_NEAR(slow.kernel->total_busy().ToSeconds(), fast.kernel->total_busy().ToSeconds(),
              0.15 * fast.kernel->total_busy().ToSeconds());
}

TEST(ChessWorkloadTest, InteractiveDeadlinesMetEvenAt59MHz) {
  // UI bursts are small; chess tolerates low clock speeds (the energy win
  // for slow clocks on this app is real — searches just explore less).
  WorkloadHarness h(0);
  h.Add(std::make_unique<ChessWorkload>(MakeChessGameTrace(4), ChessConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(240));
  EXPECT_EQ(h.deadlines.Stats("interactive").missed, 0);
}

TEST(ChessWorkloadTest, ThinkTimeIsIdle) {
  WorkloadHarness h;
  h.Add(std::make_unique<ChessWorkload>(MakeChessGameTrace(4), ChessConfig{}, nullptr));
  h.Run(SimTime::Seconds(230));
  // Overall duty cycle is well below 100%: user think time dominates.
  EXPECT_LT(h.MeanUtilization(10), 0.6);
  EXPECT_GT(h.MeanUtilization(10), 0.15);
}

}  // namespace
}  // namespace dcs
