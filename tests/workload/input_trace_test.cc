#include "src/workload/input_trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace dcs {
namespace {

TEST(InputTraceTest, RecordAndRead) {
  InputTrace trace;
  trace.Record(SimTime::Seconds(1), "tap", 1.0);
  trace.Record(SimTime::Seconds(2), "scroll", 0.5);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].kind, "tap");
  EXPECT_EQ(trace.events()[1].at, SimTime::Seconds(2));
  EXPECT_DOUBLE_EQ(trace.events()[1].magnitude, 0.5);
}

TEST(InputTraceTest, DurationIsLastEventTime) {
  InputTrace trace;
  EXPECT_EQ(trace.Duration(), SimTime::Zero());
  trace.Record(SimTime::Seconds(3), "tap");
  trace.Record(SimTime::Seconds(7), "tap");
  EXPECT_EQ(trace.Duration(), SimTime::Seconds(7));
}

TEST(InputTraceTest, CsvRoundTrip) {
  InputTrace trace;
  trace.Record(SimTime::Millis(1500), "load", 1.7);
  trace.Record(SimTime::Millis(2500), "scroll", 1.0);
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].at, SimTime::Millis(1500));
  EXPECT_EQ(loaded.events()[0].kind, "load");
  EXPECT_DOUBLE_EQ(loaded.events()[0].magnitude, 1.7);
  EXPECT_EQ(loaded.events()[1].kind, "scroll");
}

TEST(InputTraceTest, CsvRoundTripIsExact) {
  // Nanosecond-resolution times and "ugly" doubles must survive the trip —
  // replayed traces feed deterministic experiments, so lossy serialization
  // would silently change results.
  InputTrace trace;
  trace.Record(SimTime::Nanos(1234567), "arrival", 1.0 / 3.0);
  trace.Record(SimTime::Nanos(9876543210), "service_us", 0.1234567890123456);
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0], trace.events()[0]);
  EXPECT_EQ(loaded.events()[1], trace.events()[1]);
}

TEST(InputTraceTest, KindWithCommaSurvivesRoundTrip) {
  InputTrace trace;
  trace.Record(SimTime::Millis(1), "load,heavy", 2.0);
  trace.Record(SimTime::Millis(2), "say \"hi\"", 1.0);
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].kind, "load,heavy");
  EXPECT_EQ(loaded.events()[1].kind, "say \"hi\"");
  EXPECT_DOUBLE_EQ(loaded.events()[0].magnitude, 2.0);
}

TEST(InputTraceTest, ReadCsvRejectsMalformedRows) {
  {
    std::stringstream ss("time_us,kind,magnitude\n1000,tap,1.0\nbroken row\n");
    EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
  }
  {  // missing field
    std::stringstream ss("time_us,kind,magnitude\n1000,tap\n");
    EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
  }
  {  // extra field
    std::stringstream ss("time_us,kind,magnitude\n1000,tap,1.0,extra\n");
    EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
  }
  {  // unparsable time
    std::stringstream ss("time_us,kind,magnitude\nsoon,tap,1.0\n");
    EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
  }
  {  // trailing garbage on a number
    std::stringstream ss("time_us,kind,magnitude\n1000,tap,1.0x\n");
    EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
  }
  {  // negative time
    std::stringstream ss("time_us,kind,magnitude\n-5,tap,1.0\n");
    EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
  }
}

TEST(InputTraceTest, ReadCsvRejectsOutOfOrderTimestamps) {
  std::stringstream ss("time_us,kind,magnitude\n2000,tap,1.0\n1000,tap,1.0\n");
  EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
}

TEST(InputTraceTest, ReadCsvRequiresHeader) {
  std::stringstream ss("1000,tap,1.0\n");
  EXPECT_THROW(InputTrace::ReadCsv(ss), std::invalid_argument);
}

TEST(InputTraceTest, ReadCsvErrorNamesTheLine) {
  std::stringstream ss("time_us,kind,magnitude\n1000,tap,1.0\n# comment\n\nbad\n");
  try {
    InputTrace::ReadCsv(ss);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos) << e.what();
  }
}

TEST(InputTraceTest, ReadCsvSkipsCommentsAndBlankLines) {
  std::stringstream ss(
      "# recorded 2026-08-08\ntime_us,kind,magnitude\n\n1000,tap,1.0\n# mid\n2000,tap,2.0\n");
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  EXPECT_EQ(loaded.size(), 2u);
}

TEST(InputTraceTest, ReplayJitterPreservesOrderAndCount) {
  InputTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.Record(SimTime::Millis(10 * i), "tap", 1.0);
  }
  Rng rng(5);
  const InputTrace jittered = trace.WithReplayJitter(rng, SimTime::Millis(2));
  ASSERT_EQ(jittered.size(), trace.size());
  SimTime previous;
  for (const InputEvent& event : jittered.events()) {
    EXPECT_GE(event.at, previous);
    previous = event.at;
  }
}

TEST(InputTraceTest, ReplayJitterBoundedByMillisecondAccuracy) {
  // The paper's replay rig is millisecond-accurate; default jitter is 0.5 ms.
  InputTrace trace;
  for (int i = 1; i <= 50; ++i) {
    trace.Record(SimTime::Seconds(i), "tap", 1.0);
  }
  Rng rng(9);
  const InputTrace jittered = trace.WithReplayJitter(rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const SimTime delta = jittered.events()[i].at - trace.events()[i].at;
    EXPECT_LE(delta.nanos(), 500000);
    EXPECT_GE(delta.nanos(), -500000);
  }
}

TEST(InputTraceTest, ReplayJitterActuallyPerturbs) {
  InputTrace trace;
  for (int i = 1; i <= 20; ++i) {
    trace.Record(SimTime::Seconds(i), "tap", 1.0);
  }
  Rng rng(11);
  const InputTrace jittered = trace.WithReplayJitter(rng);
  bool any_moved = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    any_moved |= (jittered.events()[i].at != trace.events()[i].at);
  }
  EXPECT_TRUE(any_moved);
}

TEST(InputTraceTest, JitterNeverProducesNegativeTimes) {
  InputTrace trace;
  trace.Record(SimTime::Micros(100), "tap", 1.0);
  Rng rng(13);
  const InputTrace jittered = trace.WithReplayJitter(rng, SimTime::Millis(10));
  EXPECT_GE(jittered.events()[0].at, SimTime::Zero());
}

TEST(InputTraceTest, JitterClampsFirstEventNearZeroAcrossManySeeds) {
  // First event well inside the jitter window of t=0: roughly half the draws
  // go negative before clamping.  Every emitted time must be >= 0 and the
  // trace must stay ordered for every seed.
  InputTrace trace;
  trace.Record(SimTime::Micros(10), "tap", 1.0);
  trace.Record(SimTime::Micros(20), "tap", 1.0);
  trace.Record(SimTime::Micros(30), "tap", 1.0);
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    const InputTrace jittered = trace.WithReplayJitter(rng, SimTime::Millis(1));
    SimTime previous;
    for (const InputEvent& event : jittered.events()) {
      EXPECT_GE(event.at, SimTime::Zero()) << "seed " << seed;
      EXPECT_GE(event.at, previous) << "seed " << seed;
      previous = event.at;
    }
  }
}

TEST(InputTraceTest, JitterKeepsEqualTimeEventsInRecordedOrder) {
  // Simultaneous events (a tap and its page-load, say) must not swap: each
  // event is only ever clamped up to the previous emitted time, never past
  // it, so record order is preserved for every seed.
  InputTrace trace;
  trace.Record(SimTime::Zero(), "first", 1.0);
  trace.Record(SimTime::Zero(), "second", 2.0);
  trace.Record(SimTime::Zero(), "third", 3.0);
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    Rng rng(seed);
    const InputTrace jittered = trace.WithReplayJitter(rng, SimTime::Millis(1));
    ASSERT_EQ(jittered.size(), 3u);
    EXPECT_EQ(jittered.events()[0].kind, "first") << "seed " << seed;
    EXPECT_EQ(jittered.events()[1].kind, "second") << "seed " << seed;
    EXPECT_EQ(jittered.events()[2].kind, "third") << "seed " << seed;
    EXPECT_LE(jittered.events()[0].at, jittered.events()[1].at) << "seed " << seed;
    EXPECT_LE(jittered.events()[1].at, jittered.events()[2].at) << "seed " << seed;
  }
}

TEST(InputTraceTest, NegativeJitterThrows) {
  InputTrace trace;
  trace.Record(SimTime::Millis(1), "tap", 1.0);
  Rng rng(3);
  EXPECT_THROW(trace.WithReplayJitter(rng, SimTime::Millis(-1)), std::invalid_argument);
}

}  // namespace
}  // namespace dcs
