#include "src/workload/input_trace.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcs {
namespace {

TEST(InputTraceTest, RecordAndRead) {
  InputTrace trace;
  trace.Record(SimTime::Seconds(1), "tap", 1.0);
  trace.Record(SimTime::Seconds(2), "scroll", 0.5);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].kind, "tap");
  EXPECT_EQ(trace.events()[1].at, SimTime::Seconds(2));
  EXPECT_DOUBLE_EQ(trace.events()[1].magnitude, 0.5);
}

TEST(InputTraceTest, DurationIsLastEventTime) {
  InputTrace trace;
  EXPECT_EQ(trace.Duration(), SimTime::Zero());
  trace.Record(SimTime::Seconds(3), "tap");
  trace.Record(SimTime::Seconds(7), "tap");
  EXPECT_EQ(trace.Duration(), SimTime::Seconds(7));
}

TEST(InputTraceTest, CsvRoundTrip) {
  InputTrace trace;
  trace.Record(SimTime::Millis(1500), "load", 1.7);
  trace.Record(SimTime::Millis(2500), "scroll", 1.0);
  std::stringstream ss;
  trace.WriteCsv(ss);
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.events()[0].at, SimTime::Millis(1500));
  EXPECT_EQ(loaded.events()[0].kind, "load");
  EXPECT_DOUBLE_EQ(loaded.events()[0].magnitude, 1.7);
  EXPECT_EQ(loaded.events()[1].kind, "scroll");
}

TEST(InputTraceTest, ReadCsvSkipsMalformedRows) {
  std::stringstream ss("time_us,kind,magnitude\n1000,tap,1.0\nbroken row\n2000,tap,2.0\n");
  const InputTrace loaded = InputTrace::ReadCsv(ss);
  EXPECT_EQ(loaded.size(), 2u);
}

TEST(InputTraceTest, ReplayJitterPreservesOrderAndCount) {
  InputTrace trace;
  for (int i = 0; i < 100; ++i) {
    trace.Record(SimTime::Millis(10 * i), "tap", 1.0);
  }
  Rng rng(5);
  const InputTrace jittered = trace.WithReplayJitter(rng, SimTime::Millis(2));
  ASSERT_EQ(jittered.size(), trace.size());
  SimTime previous;
  for (const InputEvent& event : jittered.events()) {
    EXPECT_GE(event.at, previous);
    previous = event.at;
  }
}

TEST(InputTraceTest, ReplayJitterBoundedByMillisecondAccuracy) {
  // The paper's replay rig is millisecond-accurate; default jitter is 0.5 ms.
  InputTrace trace;
  for (int i = 1; i <= 50; ++i) {
    trace.Record(SimTime::Seconds(i), "tap", 1.0);
  }
  Rng rng(9);
  const InputTrace jittered = trace.WithReplayJitter(rng);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const SimTime delta = jittered.events()[i].at - trace.events()[i].at;
    EXPECT_LE(delta.nanos(), 500000);
    EXPECT_GE(delta.nanos(), -500000);
  }
}

TEST(InputTraceTest, ReplayJitterActuallyPerturbs) {
  InputTrace trace;
  for (int i = 1; i <= 20; ++i) {
    trace.Record(SimTime::Seconds(i), "tap", 1.0);
  }
  Rng rng(11);
  const InputTrace jittered = trace.WithReplayJitter(rng);
  bool any_moved = false;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    any_moved |= (jittered.events()[i].at != trace.events()[i].at);
  }
  EXPECT_TRUE(any_moved);
}

TEST(InputTraceTest, JitterNeverProducesNegativeTimes) {
  InputTrace trace;
  trace.Record(SimTime::Micros(100), "tap", 1.0);
  Rng rng(13);
  const InputTrace jittered = trace.WithReplayJitter(rng, SimTime::Millis(10));
  EXPECT_GE(jittered.events()[0].at, SimTime::Zero());
}

}  // namespace
}  // namespace dcs
