// Property test: all three server arrival grammars hold the configured
// long-run mean rate.  The per-seed realized rate is noisy (deliberately so
// for the bursty and self-similar constructions), but the mean across many
// seeds must converge on rate_rps — a mis-solved per-state rate (the classic
// bug: forgetting the dwell-fraction weighting) shows up as a 2x bias that
// no amount of averaging hides.  The MMPP calm-rate solve is also checked
// analytically via MmppCalmRateRps.

#include "src/workload/server.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/workload/input_trace.h"

namespace dcs {
namespace {

constexpr int kSeeds = 32;

// Realized arrival rate over the configured window for one seed.
double RealizedRate(const ServerConfig& config, std::uint64_t seed) {
  const InputTrace trace = MakeServerRequestTrace(config, seed);
  return static_cast<double>(trace.size()) / config.duration.ToSeconds();
}

struct GrammarTolerance {
  ArrivalProcess process;
  // Per-seed deviation bound (loose: single windows of bursty traffic are
  // allowed to run hot or cold) and cross-seed mean bound (tight: the
  // standard error shrinks by sqrt(kSeeds), so a biased per-state rate is
  // many sigma out).
  double per_seed;
  double mean;
};

class ArrivalRatePropertyTest : public ::testing::TestWithParam<GrammarTolerance> {};

TEST_P(ArrivalRatePropertyTest, MeanRateHoldsAcrossSeeds) {
  const GrammarTolerance tol = GetParam();
  ServerConfig config;
  config.arrivals = tol.process;
  config.rate_rps = 100.0;
  config.duration = SimTime::Seconds(60);

  double sum = 0.0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const double rate = RealizedRate(config, static_cast<std::uint64_t>(seed));
    EXPECT_NEAR(rate, config.rate_rps, tol.per_seed * config.rate_rps)
        << ArrivalProcessName(tol.process) << " seed " << seed;
    sum += rate;
  }
  const double mean = sum / kSeeds;
  EXPECT_NEAR(mean, config.rate_rps, tol.mean * config.rate_rps)
      << ArrivalProcessName(tol.process);
}

std::string GrammarName(const ::testing::TestParamInfo<GrammarTolerance>& info) {
  return ArrivalProcessName(info.param.process);
}

INSTANTIATE_TEST_SUITE_P(
    AllGrammars, ArrivalRatePropertyTest,
    ::testing::Values(GrammarTolerance{ArrivalProcess::kPoisson, 0.10, 0.02},
                      GrammarTolerance{ArrivalProcess::kBursty, 0.30, 0.05},
                      GrammarTolerance{ArrivalProcess::kSelfSimilar, 0.50, 0.10}),
    GrammarName);

TEST(ArrivalRatePropertyTest, RateHoldsAtOtherOfferedLoads) {
  // The solve must be linear in rate_rps, not tuned to the default.
  for (const double rate : {20.0, 250.0}) {
    ServerConfig config;
    config.arrivals = ArrivalProcess::kBursty;
    config.rate_rps = rate;
    config.duration = SimTime::Seconds(60);
    double sum = 0.0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      sum += RealizedRate(config, static_cast<std::uint64_t>(seed));
    }
    EXPECT_NEAR(sum / kSeeds, rate, 0.06 * rate) << "rate " << rate;
  }
}

// -- analytic checks on the MMPP calm-rate solve --

TEST(MmppCalmRateTest, SolveSatisfiesTheStationaryMeanEquation) {
  // f_calm * r_calm + f_burst * factor * r_calm == rate_rps, exactly.
  ServerConfig config;
  config.burst_rate_factor = 4.0;
  config.calm_dwell_mean = SimTime::Seconds(2);
  config.burst_dwell_mean = SimTime::Millis(500);
  const double r_calm = MmppCalmRateRps(config);
  const double calm = config.calm_dwell_mean.ToSeconds();
  const double burst = config.burst_dwell_mean.ToSeconds();
  const double f_calm = calm / (calm + burst);
  const double f_burst = 1.0 - f_calm;
  EXPECT_NEAR(f_calm * r_calm + f_burst * config.burst_rate_factor * r_calm,
              config.rate_rps, 1e-9 * config.rate_rps);
}

TEST(MmppCalmRateTest, DefaultConfigSolvesToClosedForm) {
  // Defaults: f_calm = 2 / 2.5 = 0.8, factor = 4, so
  // r_calm = 100 / (0.8 + 0.2 * 4) = 62.5.
  EXPECT_DOUBLE_EQ(MmppCalmRateRps(ServerConfig{}), 62.5);
}

TEST(MmppCalmRateTest, UnitFactorDegeneratesToPoissonRate) {
  ServerConfig config;
  config.burst_rate_factor = 1.0;
  EXPECT_DOUBLE_EQ(MmppCalmRateRps(config), config.rate_rps);
}

TEST(MmppCalmRateTest, CalmRateBracketsTheMean) {
  // With factor > 1 the calm state must run below the mean and the burst
  // state above it; more burst dwell pulls the calm rate further down.
  ServerConfig config;
  const double r_calm = MmppCalmRateRps(config);
  EXPECT_LT(r_calm, config.rate_rps);
  EXPECT_GT(r_calm * config.burst_rate_factor, config.rate_rps);

  ServerConfig burstier = config;
  burstier.burst_dwell_mean = SimTime::Seconds(2);
  EXPECT_LT(MmppCalmRateRps(burstier), r_calm);
}

}  // namespace
}  // namespace dcs
