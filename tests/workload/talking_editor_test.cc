#include "src/workload/talking_editor.h"

#include <gtest/gtest.h>

#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(TalkingEditorTraceTest, CoversAbout70Seconds) {
  const InputTrace trace = MakeTalkingEditorTrace(1);
  EXPECT_GT(trace.Duration(), SimTime::Seconds(40));
  EXPECT_LT(trace.Duration(), SimTime::Seconds(70));
}

TEST(TalkingEditorTraceTest, TwoSpeakPhases) {
  const InputTrace trace = MakeTalkingEditorTrace(1);
  int speaks = 0;
  int uis = 0;
  for (const InputEvent& event : trace.events()) {
    if (event.kind == "speak") {
      ++speaks;
    } else if (event.kind == "ui") {
      ++uis;
    }
  }
  EXPECT_EQ(speaks, 2);
  EXPECT_GE(uis, 6);
}

TEST(TalkingEditorTest, CompletesSessionAtTopSpeed) {
  WorkloadHarness h;
  h.Add(std::make_unique<TalkingEditorWorkload>(MakeTalkingEditorTrace(3),
                                                TalkingEditorConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(120));
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
  // 10 + 7 sentences reported on the speech stream.
  EXPECT_EQ(h.deadlines.Stats("speech").total, 17);
  EXPECT_EQ(h.deadlines.Stats("speech").missed, 0);
}

TEST(TalkingEditorTest, NoSpeechGapsAt132MHz) {
  WorkloadHarness h(5);
  h.Add(std::make_unique<TalkingEditorWorkload>(MakeTalkingEditorTrace(3),
                                                TalkingEditorConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(140));
  EXPECT_EQ(h.deadlines.Stats("speech").missed, 0);
}

TEST(TalkingEditorTest, SpeechGapsAt59MHz) {
  // Synthesis takes ~3.1 s per 2.8 s sentence at 59 MHz: underruns.
  WorkloadHarness h(0);
  h.Add(std::make_unique<TalkingEditorWorkload>(MakeTalkingEditorTrace(3),
                                                TalkingEditorConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(180));
  EXPECT_GT(h.deadlines.Stats("speech").missed, 3);
}

TEST(TalkingEditorTest, AudioOnDuringSpeech) {
  WorkloadHarness h;
  h.Add(std::make_unique<TalkingEditorWorkload>(MakeTalkingEditorTrace(3),
                                                TalkingEditorConfig{}, nullptr));
  // Before the first speak event: audio off.
  h.Run(SimTime::Seconds(2));
  EXPECT_FALSE(h.itsy->peripherals().audio_on);
  // Mid-way through the first reading phase: audio on.
  h.Run(SimTime::Seconds(18));
  EXPECT_TRUE(h.itsy->peripherals().audio_on);
  // Long after the session: audio off again.
  h.Run(SimTime::Seconds(120));
  EXPECT_FALSE(h.itsy->peripherals().audio_on);
}

TEST(TalkingEditorTest, BurstyThenLongComputePattern) {
  // Figure 3(d)/4(d): UI bursts early, long synthesis bursts later.
  WorkloadHarness h;
  h.Add(std::make_unique<TalkingEditorWorkload>(MakeTalkingEditorTrace(3),
                                                TalkingEditorConfig{}, nullptr));
  h.Run(SimTime::Seconds(110));
  const TraceSeries* util = h.kernel->sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  // Utilization in the first 8 seconds (dialog phase) is low on average;
  // during the reading phase long saturated stretches appear.
  double early_mean = 0.0;
  int early_n = 0;
  int late_saturated = 0;
  for (const TracePoint& p : util->points()) {
    if (p.at < SimTime::Seconds(8)) {
      early_mean += p.value;
      ++early_n;
    } else if (p.value > 0.95) {
      ++late_saturated;
    }
  }
  early_mean /= early_n;
  EXPECT_LT(early_mean, 0.5);
  EXPECT_GT(late_saturated, 100);
}

}  // namespace
}  // namespace dcs
