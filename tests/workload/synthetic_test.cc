#include "src/workload/synthetic.h"

#include <gtest/gtest.h>

#include "src/workload/demand.h"
#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(RectangleWaveSamplesTest, PatternShape) {
  const auto samples = RectangleWaveSamples(9, 1, 20);
  ASSERT_EQ(samples.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(samples[static_cast<std::size_t>(i)], i % 10 < 9 ? 1.0 : 0.0) << i;
  }
}

TEST(RectangleWaveSamplesTest, AllBusyWhenNoIdle) {
  const auto samples = RectangleWaveSamples(5, 0, 10);
  for (const double s : samples) {
    EXPECT_EQ(s, 1.0);
  }
}

TEST(RectangleWaveWorkloadTest, ProducesExpectedUtilizationPattern) {
  WorkloadHarness h;
  h.Add(std::make_unique<RectangleWaveWorkload>(9, 1));
  h.Run(SimTime::Seconds(2));
  const TraceSeries* util = h.kernel->sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  // Mean utilization ~0.9.
  EXPECT_NEAR(h.MeanUtilization(10), 0.9, 0.03);
}

TEST(RectangleWaveWorkloadTest, FiniteCyclesExit) {
  WorkloadHarness h;
  h.Add(std::make_unique<RectangleWaveWorkload>(2, 1, SimTime::Millis(10), 3));
  h.Run(SimTime::Seconds(2));
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
}

TEST(RectangleWaveWorkloadTest, UtilizationIndependentOfClockStep) {
  // Spin-based busy phases take the same wall time at any frequency.
  WorkloadHarness fast(10);
  WorkloadHarness slow(0);
  fast.Add(std::make_unique<RectangleWaveWorkload>(5, 5));
  slow.Add(std::make_unique<RectangleWaveWorkload>(5, 5));
  fast.Run(SimTime::Seconds(2));
  slow.Run(SimTime::Seconds(2));
  EXPECT_NEAR(fast.MeanUtilization(10), slow.MeanUtilization(10), 0.01);
}

TEST(ConstantUtilizationWorkloadTest, MatchesTarget) {
  for (const double target : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WorkloadHarness h;
    h.Add(std::make_unique<ConstantUtilizationWorkload>(target));
    h.Run(SimTime::Seconds(1));
    EXPECT_NEAR(h.MeanUtilization(5), target, 0.05) << "target " << target;
  }
}

TEST(ComputeOnceWorkloadTest, CompletesAndExits) {
  WorkloadHarness h;
  auto workload = std::make_unique<ComputeOnceWorkload>(1e6);
  ComputeOnceWorkload* raw = workload.get();
  h.Add(std::move(workload));
  h.Run(SimTime::Seconds(1));
  EXPECT_TRUE(raw->done());
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
}

TEST(ComputeOnceWorkloadTest, MemoryProfileSlowsExecution) {
  WorkloadHarness h1;
  WorkloadHarness h2;
  auto plain = std::make_unique<ComputeOnceWorkload>(50e6);
  auto heavy = std::make_unique<ComputeOnceWorkload>(50e6, MemoryProfile{25.0, 10.0});
  ComputeOnceWorkload* plain_raw = plain.get();
  ComputeOnceWorkload* heavy_raw = heavy.get();
  h1.Add(std::move(plain));
  h2.Add(std::move(heavy));
  h1.Run(SimTime::Seconds(2));
  h2.Run(SimTime::Seconds(2));
  ASSERT_TRUE(plain_raw->done());
  ASSERT_TRUE(heavy_raw->done());
  EXPECT_GT(heavy_raw->completed_at(), plain_raw->completed_at() * 18 / 10);
}

TEST(PoissonBurstWorkloadTest, GeneratesIntermittentLoad) {
  WorkloadHarness h;
  h.Add(std::make_unique<PoissonBurstWorkload>(SimTime::Millis(50), 20.0));
  h.Run(SimTime::Seconds(5));
  const double util = h.MeanUtilization(10);
  // Bursts of ~20 ms every ~50 ms idle: utilization meaningfully between
  // 0 and 1.
  EXPECT_GT(util, 0.1);
  EXPECT_LT(util, 0.9);
}

TEST(PoissonBurstWorkloadTest, DifferentSeedsDifferentTimelines) {
  WorkloadHarness a(10, 1);
  WorkloadHarness b(10, 2);
  a.Add(std::make_unique<PoissonBurstWorkload>(SimTime::Millis(50), 20.0));
  b.Add(std::make_unique<PoissonBurstWorkload>(SimTime::Millis(50), 20.0));
  a.Run(SimTime::Seconds(2));
  b.Run(SimTime::Seconds(2));
  const TraceSeries* ua = a.kernel->sink().Find("utilization");
  const TraceSeries* ub = b.kernel->sink().Find("utilization");
  ASSERT_NE(ua, nullptr);
  ASSERT_NE(ub, nullptr);
  int differing = 0;
  for (std::size_t i = 0; i < std::min(ua->size(), ub->size()); ++i) {
    if (ua->points()[i].value != ub->points()[i].value) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 10);
}

TEST(DemandHelpersTest, RoundTrip) {
  const MemoryProfile p{20.0, 8.0};
  const double cycles = BaseCyclesForMsAtTop(10.0, p);
  EXPECT_NEAR(MsForBaseCycles(cycles, ClockTable::MaxStep(), p), 10.0, 1e-9);
  // At a lower step the same demand takes longer.
  EXPECT_GT(MsForBaseCycles(cycles, 0, p), 10.0);
}

}  // namespace
}  // namespace dcs
