#include "src/workload/web.h"

#include <gtest/gtest.h>

#include "tests/workload/harness.h"

namespace dcs {
namespace {

TEST(WebTraceTest, CoversAbout190Seconds) {
  const InputTrace trace = MakeWebBrowseTrace(1);
  EXPECT_GT(trace.Duration(), SimTime::Seconds(120));
  EXPECT_LT(trace.Duration(), SimTime::Seconds(200));
}

TEST(WebTraceTest, ContainsLoadsAndScrolls) {
  const InputTrace trace = MakeWebBrowseTrace(2);
  int loads = 0;
  int scrolls = 0;
  for (const InputEvent& event : trace.events()) {
    if (event.kind == "load") {
      ++loads;
    } else if (event.kind == "scroll") {
      ++scrolls;
    }
  }
  EXPECT_EQ(loads, 3);  // article, menu, TN-56
  EXPECT_GE(scrolls, 12);
}

TEST(WebTraceTest, SeedChangesTiming) {
  const InputTrace a = MakeWebBrowseTrace(1);
  const InputTrace b = MakeWebBrowseTrace(2);
  ASSERT_FALSE(a.empty());
  EXPECT_NE(a.events()[1].at, b.events()[1].at);
}

TEST(WebWorkloadTest, AllEventsHandledAtTopSpeed) {
  WorkloadHarness h;
  InputTrace trace = MakeWebBrowseTrace(3);
  const std::size_t events = trace.size();
  h.Add(std::make_unique<WebWorkload>(std::move(trace), WebConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(200));
  EXPECT_EQ(h.deadlines.Stats("interactive").total, static_cast<std::int64_t>(events));
  EXPECT_EQ(h.deadlines.Stats("interactive").missed, 0);
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
}

TEST(WebWorkloadTest, MeetsDeadlinesAt132MHz) {
  WorkloadHarness h(5);
  h.Add(std::make_unique<WebWorkload>(MakeWebBrowseTrace(3), WebConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(200));
  EXPECT_EQ(h.deadlines.Stats("interactive").missed, 0);
}

TEST(WebWorkloadTest, MissesDeadlinesAt59MHz) {
  WorkloadHarness h(0);
  h.Add(std::make_unique<WebWorkload>(MakeWebBrowseTrace(3), WebConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(220));
  EXPECT_GT(h.deadlines.Stats("interactive").missed, 5);
}

TEST(WebWorkloadTest, MostlyIdleWorkload) {
  // Figure 3(b): web browsing is dominated by reading time.
  WorkloadHarness h;
  h.Add(std::make_unique<WebWorkload>(MakeWebBrowseTrace(3), WebConfig{}, nullptr));
  h.Run(SimTime::Seconds(200));
  EXPECT_LT(h.MeanUtilization(10), 0.15);
}

TEST(WebWorkloadTest, HeavyPagesCostMore) {
  // Run only the two big loads by constructing a custom trace.
  InputTrace light;
  light.Record(SimTime::Seconds(1), "load", 0.5);
  InputTrace heavy;
  heavy.Record(SimTime::Seconds(1), "load", 2.0);
  WorkloadHarness h1;
  WorkloadHarness h2;
  h1.Add(std::make_unique<WebWorkload>(std::move(light), WebConfig{}, nullptr));
  h2.Add(std::make_unique<WebWorkload>(std::move(heavy), WebConfig{}, nullptr));
  h1.Run(SimTime::Seconds(10));
  h2.Run(SimTime::Seconds(10));
  EXPECT_GT(h2.kernel->total_busy().ToSeconds(),
            2.5 * h1.kernel->total_busy().ToSeconds());
}

TEST(WebWorkloadTest, EmptyTraceExitsImmediately) {
  WorkloadHarness h;
  h.Add(std::make_unique<WebWorkload>(InputTrace{}, WebConfig{}, &h.deadlines));
  h.Run(SimTime::Seconds(1));
  EXPECT_EQ(h.kernel->LiveTasks(), 0u);
  EXPECT_EQ(h.deadlines.TotalEvents(), 0);
}

}  // namespace
}  // namespace dcs
