// Overload-control suite: the admission gate's schedulability tests, the
// feedback bound adaptation, brownout/battery degraded-mode shedding, and
// the end-to-end properties the ISSUE demands — `none` leaves no footprint,
// `feedback` rescues the deadline governor at 320 req/s, shed decisions are
// byte-identical across sweep thread counts, and the energy ledger still
// conserves when rejected work is attributed.

#include "src/workload/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/exp/experiment.h"
#include "src/exp/journal.h"
#include "src/exp/sweep.h"
#include "src/hw/battery.h"
#include "src/workload/server.h"

namespace dcs {
namespace {

TEST(AdmissionPolicyTest, NamesRoundTrip) {
  for (const auto policy : {AdmissionPolicy::kNone, AdmissionPolicy::kStaticU,
                            AdmissionPolicy::kFeedback}) {
    EXPECT_EQ(AdmissionPolicyFromName(AdmissionPolicyName(policy)), policy);
  }
  EXPECT_THROW(AdmissionPolicyFromName("magic"), std::invalid_argument);
}

AdmissionController MakeController(const AdmissionConfig& config,
                                   std::vector<double> class_values = {1.0}) {
  // 500 req/s hint seeds the inter-arrival EWMA at 2000 us.
  return AdmissionController(config, SimTime::Millis(50), 500.0, MemoryProfile{},
                             std::move(class_values));
}

TEST(AdmissionControllerTest, UtilizationTestRejectsOfferedLoadOverBound) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kStaticU;
  config.utilization_bound = 0.85;
  AdmissionController gate = MakeController(config);
  // First arrival seeds demand at 2000 us against the 2000 us inter-arrival
  // hint: offered utilization 1.0 > 0.85 -- rejected before any queue forms.
  const SimTime t = SimTime::Millis(1);
  EXPECT_EQ(gate.Consider(t, t, 2000.0, 0.0, 0),
            AdmissionController::Outcome::kRejectedOverload);
  EXPECT_EQ(gate.rejected_overload(), 1u);
  EXPECT_GT(gate.rejected_work_fs_us(), 0.0);
}

TEST(AdmissionControllerTest, AdmitsOfferedLoadUnderBound) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kStaticU;
  AdmissionController gate = MakeController(config);
  const SimTime t = SimTime::Millis(1);
  EXPECT_EQ(gate.Consider(t, t, 500.0, 0.0, 0), AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(gate.admitted(), 1u);
  EXPECT_EQ(gate.rejected_overload(), 0u);
}

TEST(AdmissionControllerTest, BacklogTestRejectsQueueThatCannotDrainInSlack) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kStaticU;
  AdmissionController gate = MakeController(config);
  // Offered utilization is fine (500/2000), but 60 ms of queued work ahead
  // of a 50 ms SLO cannot finish even at full speed.
  const SimTime t = SimTime::Millis(1);
  EXPECT_EQ(gate.Consider(t, t, 500.0, 60000.0, 0),
            AdmissionController::Outcome::kRejectedOverload);
}

TEST(AdmissionControllerTest, SpeedEwmaTracksSuppliedStep) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kStaticU;
  AdmissionController gate = MakeController(config);
  EXPECT_DOUBLE_EQ(gate.speed_ewma(), 1.0);
  SupplySample sample;
  sample.at = SimTime::Millis(10);
  sample.utilization = 1.0;
  sample.step = 0;
  sample.max_step = ClockTable::MaxStep();
  for (int i = 0; i < 200; ++i) {
    gate.OnQuantum(sample);
  }
  // Converges toward the bottom step's speed ratio, well below full speed.
  EXPECT_LT(gate.speed_ewma(), 0.5);
  EXPECT_GT(gate.speed_ewma(), 0.0);
}

TEST(AdmissionControllerTest, FeedbackBoundAdaptsAimd) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kFeedback;
  config.feedback_window = 4;
  AdmissionController gate = MakeController(config);
  const double start = gate.bound();
  for (int i = 0; i < config.feedback_window; ++i) {
    gate.ObserveOutcome(true);
  }
  const double after_bad = gate.bound();
  EXPECT_NEAR(after_bad, start * config.decrease_factor, 1e-12);
  for (int i = 0; i < config.feedback_window; ++i) {
    gate.ObserveOutcome(false);
  }
  EXPECT_NEAR(gate.bound(), after_bad + config.increase_step, 1e-12);
}

TEST(AdmissionControllerTest, StaticUBoundIgnoresOutcomes) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kStaticU;
  config.feedback_window = 2;
  AdmissionController gate = MakeController(config);
  for (int i = 0; i < 10; ++i) {
    gate.ObserveOutcome(true);
  }
  EXPECT_DOUBLE_EQ(gate.bound(), config.utilization_bound);
}

TEST(AdmissionControllerTest, BrownoutShedsLowestValueClassFirst) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kFeedback;
  AdmissionController gate = MakeController(config, {3.0, 2.0, 1.0});
  SupplySample sample;
  sample.at = SimTime::Millis(10);
  sample.utilization = 0.5;
  sample.step = ClockTable::MaxStep();
  sample.max_step = ClockTable::MaxStep();
  sample.brownouts = 1;
  gate.OnQuantum(sample);
  ASSERT_TRUE(gate.degraded());
  EXPECT_EQ(gate.shed_level(), 1);

  const SimTime t = SimTime::Millis(11);
  // Class 2 (value 1.0) is shed outright; class 0 (value 3.0) still passes
  // the schedulability tests.
  EXPECT_EQ(gate.Consider(t, t, 100.0, 0.0, 2),
            AdmissionController::Outcome::kRejectedShed);
  EXPECT_EQ(gate.Consider(t, t, 100.0, 0.0, 0), AdmissionController::Outcome::kAdmitted);
  EXPECT_EQ(gate.rejected_shed(), 1u);

  // A second brownout inside the hold window sheds deeper -- but never the
  // top class: the level caps at distinct-values - 1.
  sample.at = SimTime::Millis(20);
  sample.brownouts = 2;
  gate.OnQuantum(sample);
  EXPECT_EQ(gate.shed_level(), 2);
  EXPECT_EQ(gate.Consider(sample.at, sample.at, 100.0, 0.0, 1),
            AdmissionController::Outcome::kRejectedShed);
  EXPECT_EQ(gate.Consider(sample.at, sample.at, 100.0, 0.0, 0),
            AdmissionController::Outcome::kAdmitted);
  sample.at = SimTime::Millis(30);
  sample.brownouts = 3;
  gate.OnQuantum(sample);
  EXPECT_EQ(gate.shed_level(), 2);

  // The hold expires with a healthy battery: degraded mode lifts.
  sample.at = sample.at + config.brownout_shed_hold + SimTime::Millis(1);
  gate.OnQuantum(sample);
  EXPECT_FALSE(gate.degraded());
  EXPECT_EQ(gate.shed_level(), 0);
}

TEST(AdmissionControllerTest, BatterySagHoldsDegradedMode) {
  AdmissionConfig config;
  config.policy = AdmissionPolicy::kFeedback;
  AdmissionController gate = MakeController(config, {2.0, 1.0});
  SupplySample sample;
  sample.at = SimTime::Millis(10);
  sample.utilization = 0.5;
  sample.step = ClockTable::MaxStep();
  sample.max_step = ClockTable::MaxStep();
  sample.battery_dod = config.battery_shed_dod + 0.01;
  gate.OnQuantum(sample);
  ASSERT_TRUE(gate.degraded());
  EXPECT_EQ(gate.shed_level(), 1);
  EXPECT_EQ(gate.Consider(sample.at, sample.at, 100.0, 0.0, 1),
            AdmissionController::Outcome::kRejectedShed);

  // Recovery (a fresh rail) lifts it.
  sample.at = SimTime::Millis(20);
  sample.battery_dod = 0.0;
  gate.OnQuantum(sample);
  EXPECT_FALSE(gate.degraded());
}

// --- End-to-end properties over RunExperiment -------------------------------

ServerConfig OverloadScenario() {
  ServerConfig config;
  config.rate_rps = 320.0;
  config.duration = SimTime::Seconds(6);
  config.slo = SimTime::Millis(50);
  return config;
}

TEST(AdmissionEndToEndTest, NonePolicyLeavesNoFootprint) {
  ExperimentConfig config;
  config.app = "server";
  config.server = OverloadScenario();
  config.governor = "deadline-vs";
  config.seed = 7;
  const ExperimentResult result = RunExperiment(config);
  const auto it = result.streams.find("requests");
  ASSERT_NE(it, result.streams.end());
  EXPECT_EQ(it->second.rejected, 0);
  EXPECT_EQ(it->second.shed, 0);
  // No admission instruments exist: the controller was never constructed,
  // so the tick path and metrics registry are byte-identical to the
  // pre-admission server (the golden and competitive-ratio suites rely on
  // this).
  EXPECT_EQ(result.metrics.FindCounter("admission.considered"), nullptr);
  EXPECT_EQ(result.metrics.FindGauge("admission.bound"), nullptr);
}

// The ISSUE's acceptance criterion: at 320 req/s -- where the deadline
// governor posts ~99% violations open-loop -- feedback admission must keep
// the violation rate among *admitted* requests under 5%.
TEST(AdmissionEndToEndTest, FeedbackRescuesDeadlineGovernorAtOverload) {
  ExperimentConfig config;
  config.app = "server";
  ServerConfig scenario = OverloadScenario();
  scenario.admission.policy = AdmissionPolicy::kFeedback;
  config.server = scenario;
  config.governor = "deadline-vs";
  config.seed = 7;
  const ExperimentResult result = RunExperiment(config);
  const auto it = result.streams.find("requests");
  ASSERT_NE(it, result.streams.end());
  const DeadlineMonitor::StreamStats& stats = it->second;
  ASSERT_GT(stats.total, 0);
  EXPECT_GT(stats.rejected, 0);
  EXPECT_LT(stats.MissRate(), 0.05);
  // The rejection counters surfaced through the metrics registry agree
  // with the monitor.
  const MetricsCounter* rejected = result.metrics.FindCounter("admission.rejected_overload");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(static_cast<std::int64_t>(rejected->value()), stats.rejected);
}

ExperimentConfig BrownoutSheddingCell(const std::string& governor) {
  ServerConfig scenario;
  scenario.rate_rps = 160.0;
  scenario.duration = SimTime::Seconds(6);
  scenario.slo = SimTime::Millis(50);
  scenario.admission.policy = AdmissionPolicy::kFeedback;
  scenario.streams = {{"gold", 3.0, 1.0}, {"silver", 2.0, 2.0}, {"bronze", 1.0, 3.0}};
  ExperimentConfig config;
  config.app = "server";
  config.server = scenario;
  config.governor = governor;
  config.seed = 7;
  BatteryParams battery;
  battery.peukert_capacity = battery.peukert_capacity / 2000.0;
  config.itsy.battery = battery;
  config.faults = "brownout=1,seed=13";
  return config;
}

// Shed decisions derive only from simulated state, so a brownout-shedding
// sweep must serialize byte-identically whether it ran on 1 worker or 4.
TEST(AdmissionEndToEndTest, SheddingIsByteIdenticalAcrossThreadCounts) {
  const std::vector<ExperimentConfig> configs = {BrownoutSheddingCell("PAST-peg-peg-93-98-vs"),
                                                 BrownoutSheddingCell("deadline-vs")};
  SweepOptions one;
  one.threads = 1;
  SweepOptions four;
  four.threads = 4;
  const std::vector<ExperimentResult> a = RunSweep(configs, one);
  const std::vector<ExperimentResult> b = RunSweep(configs, four);
  ASSERT_EQ(a.size(), b.size());
  bool any_shed = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ByteWriter wa;
    ByteWriter wb;
    SerializeResult(a[i], &wa);
    SerializeResult(b[i], &wb);
    EXPECT_EQ(wa.bytes(), wb.bytes()) << configs[i].governor;
    const auto bronze = a[i].streams.find("bronze");
    ASSERT_NE(bronze, a[i].streams.end());
    any_shed = any_shed || bronze->second.shed > 0;
  }
  // The storm actually drove degraded mode: somebody shed.
  EXPECT_TRUE(any_shed);
}

// Rejected work costs no simulated joules, so attributing it must not break
// ledger conservation; and the brownout storm that drives shedding must not
// trip the invariant checker.
TEST(AdmissionEndToEndTest, EnergyLedgerConservesWithRejectedWorkAttributed) {
  ExperimentConfig config = BrownoutSheddingCell("PAST-peg-peg-93-98-vs");
  config.capture_obs = true;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.obs.captured);
  EXPECT_TRUE(result.faults.enabled);
  EXPECT_EQ(result.faults.invariant_violations, 0u);

  const ObsCapture& obs = result.obs;
  const double window_joules = obs.power.EnergyJoules(obs.window_begin, obs.window_end);
  double attributed = 0.0;
  for (const auto& [pid, joules] : obs.energy.joules_by_pid) {
    attributed += joules;
  }
  EXPECT_NEAR(obs.energy.total_joules, window_joules, 1e-12);
  EXPECT_NEAR(attributed + obs.energy.unattributed_joules, window_joules, 1e-9);

  // The rejected demand is surfaced for the energy report ...
  const MetricsGauge* rejected_work = result.metrics.FindGauge("admission.rejected_work_fs_us");
  ASSERT_NE(rejected_work, nullptr);
  EXPECT_GT(rejected_work->value(), 0.0);
  // ... along with the experiment-level rejection counters.
  const MetricsCounter* exp_rejected = result.metrics.FindCounter("exp.rejected_requests");
  ASSERT_NE(exp_rejected, nullptr);
  std::int64_t monitor_rejected = 0;
  for (const auto& [name, stats] : result.streams) {
    monitor_rejected += stats.rejected;
  }
  EXPECT_EQ(static_cast<std::int64_t>(exp_rejected->value()), monitor_rejected);
}

}  // namespace
}  // namespace dcs
