// Shared fixture for workload tests: runs workloads on a real kernel+Itsy at
// a chosen fixed clock step and exposes the deadline monitor and traces.

#ifndef TESTS_WORKLOAD_HARNESS_H_
#define TESTS_WORKLOAD_HARNESS_H_

#include <memory>

#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/deadline_monitor.h"

namespace dcs {

class WorkloadHarness {
 public:
  explicit WorkloadHarness(int step = ClockTable::MaxStep(), std::uint64_t seed = 1) {
    ItsyConfig config;
    config.initial_step = step;
    itsy = std::make_unique<Itsy>(sim, config);
    KernelConfig kernel_config;
    kernel_config.rng_seed = seed;
    kernel = std::make_unique<Kernel>(sim, *itsy, kernel_config);
  }

  Pid Add(std::unique_ptr<Workload> workload) { return kernel->AddTask(std::move(workload)); }

  void Run(SimTime duration) {
    if (!started_) {
      kernel->Start();
      started_ = true;
    }
    sim.RunUntil(sim.Now() + duration);
  }

  double MeanUtilization(std::size_t skip = 0) const {
    const TraceSeries* util = kernel->sink().Find("utilization");
    if (util == nullptr || util->size() <= skip) {
      return 0.0;
    }
    double sum = 0.0;
    for (std::size_t i = skip; i < util->size(); ++i) {
      sum += util->points()[i].value;
    }
    return sum / static_cast<double>(util->size() - skip);
  }

  Simulator sim;
  std::unique_ptr<Itsy> itsy;
  std::unique_ptr<Kernel> kernel;
  DeadlineMonitor deadlines;

 private:
  bool started_ = false;
};

}  // namespace dcs

#endif  // TESTS_WORKLOAD_HARNESS_H_
