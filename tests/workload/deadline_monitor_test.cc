#include "src/workload/deadline_monitor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace dcs {
namespace {

TEST(DeadlineMonitorTest, StartsEmpty) {
  DeadlineMonitor monitor;
  EXPECT_EQ(monitor.TotalEvents(), 0);
  EXPECT_EQ(monitor.TotalMissed(), 0);
  EXPECT_FALSE(monitor.AnyMissed());
  EXPECT_TRUE(monitor.Streams().empty());
}

TEST(DeadlineMonitorTest, OnTimeEventIsNotAMiss) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(90));
  EXPECT_EQ(monitor.TotalEvents(), 1);
  EXPECT_EQ(monitor.TotalMissed(), 0);
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Zero());
}

TEST(DeadlineMonitorTest, LateEventIsAMiss) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(150));
  EXPECT_EQ(monitor.TotalMissed(), 1);
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Millis(50));
  EXPECT_TRUE(monitor.AnyMissed());
}

TEST(DeadlineMonitorTest, ToleranceAbsorbsSmallLateness) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(120), SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 0);
  // Miss counting and lateness share the deadline+tolerance threshold: a
  // tolerated event accumulates no lateness.
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Zero());
  EXPECT_EQ(monitor.Stats("video").total_lateness, SimTime::Zero());
}

TEST(DeadlineMonitorTest, LatenessMeasuredPastTolerance) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(150), SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 1);
  // 150ms completion vs the 130ms tolerated deadline: 20ms past threshold.
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Millis(20));
  EXPECT_EQ(monitor.Stats("video").total_lateness, SimTime::Millis(20));
}

TEST(DeadlineMonitorTest, OverrunTracksTheBareDeadline) {
  DeadlineMonitor monitor;
  // Tolerated event: no miss, no lateness, but a 20ms overrun past the bare
  // deadline — the margin-erosion signal.
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(120), SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 0);
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Zero());
  EXPECT_EQ(monitor.Stats("video").worst_overrun, SimTime::Millis(20));
  // Early event leaves the overrun untouched.
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(80), SimTime::Millis(30));
  EXPECT_EQ(monitor.Stats("video").worst_overrun, SimTime::Millis(20));
  EXPECT_EQ(monitor.WorstOverrun(), SimTime::Millis(20));
}

TEST(DeadlineMonitorTest, ExactlyAtToleranceBoundaryIsNotAMiss) {
  DeadlineMonitor monitor;
  monitor.Report("s", SimTime::Millis(100), SimTime::Millis(130), SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 0);
  monitor.Report("s", SimTime::Millis(100), SimTime::Millis(130) + SimTime::Nanos(1),
                 SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 1);
}

TEST(DeadlineMonitorTest, StreamsTrackedSeparately) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(10), SimTime::Millis(20));
  monitor.Report("audio", SimTime::Millis(10), SimTime::Millis(5));
  EXPECT_EQ(monitor.Stats("video").missed, 1);
  EXPECT_EQ(monitor.Stats("audio").missed, 0);
  EXPECT_EQ(monitor.Streams().size(), 2u);
  EXPECT_EQ(monitor.TotalEvents(), 2);
}

TEST(DeadlineMonitorTest, MissRatePerStream) {
  DeadlineMonitor monitor;
  for (int i = 0; i < 8; ++i) {
    monitor.Report("s", SimTime::Millis(10), SimTime::Millis(i < 2 ? 20 : 5));
  }
  EXPECT_DOUBLE_EQ(monitor.Stats("s").MissRate(), 0.25);
}

TEST(DeadlineMonitorTest, WorstLatenessAcrossStreams) {
  DeadlineMonitor monitor;
  monitor.Report("a", SimTime::Millis(10), SimTime::Millis(14));
  monitor.Report("b", SimTime::Millis(10), SimTime::Millis(35));
  EXPECT_EQ(monitor.WorstLateness(), SimTime::Millis(25));
}

TEST(DeadlineMonitorTest, TotalLatenessAccumulates) {
  DeadlineMonitor monitor;
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(13));
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(17));
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(5));  // early: no lateness
  EXPECT_EQ(monitor.Stats("s").total_lateness, SimTime::Millis(10));
}

TEST(DeadlineMonitorTest, UnknownStreamHasZeroStats) {
  DeadlineMonitor monitor;
  const auto stats = monitor.Stats("nothing");
  EXPECT_EQ(stats.total, 0);
  EXPECT_EQ(stats.missed, 0);
  EXPECT_DOUBLE_EQ(stats.MissRate(), 0.0);
}

TEST(DeadlineMonitorTest, ReportRequestRecordsLatencyHistogram) {
  DeadlineMonitor monitor;
  // Arrival at 10ms, SLO 50ms, completion at 30ms: on time, 20ms latency.
  monitor.ReportRequest("rpc", SimTime::Millis(10), SimTime::Millis(50), SimTime::Millis(30));
  // Arrival at 100ms, completion at 180ms: 30ms past the SLO, 80ms latency.
  monitor.ReportRequest("rpc", SimTime::Millis(100), SimTime::Millis(50), SimTime::Millis(180));
  const auto stats = monitor.Stats("rpc");
  EXPECT_EQ(stats.total, 2);
  EXPECT_EQ(stats.missed, 1);
  EXPECT_EQ(stats.worst_lateness, SimTime::Millis(30));
  ASSERT_EQ(stats.latency_us.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.latency_us.min(), 20000.0);
  EXPECT_DOUBLE_EQ(stats.latency_us.max(), 80000.0);
  EXPECT_DOUBLE_EQ(stats.latency_us.mean(), 50000.0);
}

TEST(DeadlineMonitorTest, ReportRequestToleranceExtendsSlo) {
  DeadlineMonitor monitor;
  monitor.ReportRequest("rpc", SimTime::Zero(), SimTime::Millis(50), SimTime::Millis(60),
                        SimTime::Millis(15));
  EXPECT_EQ(monitor.TotalMissed(), 0);
  EXPECT_EQ(monitor.Stats("rpc").worst_lateness, SimTime::Zero());
}

TEST(DeadlineMonitorTest, BareReportLeavesLatencyHistogramEmpty) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(90));
  EXPECT_EQ(monitor.Stats("video").latency_us.count(), 0u);
}

TEST(DeadlineMonitorTest, ClearResets) {
  DeadlineMonitor monitor;
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(20));
  monitor.Clear();
  EXPECT_EQ(monitor.TotalEvents(), 0);
  EXPECT_TRUE(monitor.Streams().empty());
}

TEST(DeadlineMonitorTest, RejectedOnlyStreamDegradesToZeroesNotNaN) {
  DeadlineMonitor monitor;
  monitor.ReportRejected("bronze");
  monitor.ReportRejected("bronze", /*shed=*/true);
  const auto stats = monitor.Stats("bronze");
  EXPECT_EQ(stats.total, 0);
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.shed, 1);
  // Zero admitted requests: rates and percentiles degrade to 0, never NaN.
  EXPECT_EQ(stats.MissRate(), 0.0);
  EXPECT_EQ(stats.RejectRate(), 1.0);
  EXPECT_EQ(stats.latency_us.count(), 0u);
  EXPECT_EQ(stats.latency_us.ApproxQuantile(0.99), 0.0);
  // The stream is visible even though it never completed a request.
  EXPECT_EQ(monitor.Streams(), std::vector<std::string>{"bronze"});
  EXPECT_EQ(monitor.TotalRejected(), 2);
  EXPECT_EQ(monitor.TotalShed(), 1);
  EXPECT_EQ(monitor.TotalEvents(), 0);
}

TEST(DeadlineMonitorTest, EmptyStreamStatsAreAllZero) {
  DeadlineMonitor monitor;
  const auto stats = monitor.Stats("never-reported");
  EXPECT_EQ(stats.MissRate(), 0.0);
  EXPECT_EQ(stats.RejectRate(), 0.0);
  EXPECT_EQ(stats.latency_us.ApproxQuantile(0.5), 0.0);
}

}  // namespace
}  // namespace dcs
