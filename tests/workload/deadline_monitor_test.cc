#include "src/workload/deadline_monitor.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(DeadlineMonitorTest, StartsEmpty) {
  DeadlineMonitor monitor;
  EXPECT_EQ(monitor.TotalEvents(), 0);
  EXPECT_EQ(monitor.TotalMissed(), 0);
  EXPECT_FALSE(monitor.AnyMissed());
  EXPECT_TRUE(monitor.Streams().empty());
}

TEST(DeadlineMonitorTest, OnTimeEventIsNotAMiss) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(90));
  EXPECT_EQ(monitor.TotalEvents(), 1);
  EXPECT_EQ(monitor.TotalMissed(), 0);
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Zero());
}

TEST(DeadlineMonitorTest, LateEventIsAMiss) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(150));
  EXPECT_EQ(monitor.TotalMissed(), 1);
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Millis(50));
  EXPECT_TRUE(monitor.AnyMissed());
}

TEST(DeadlineMonitorTest, ToleranceAbsorbsSmallLateness) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(100), SimTime::Millis(120), SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 0);
  // Lateness still recorded even though within tolerance.
  EXPECT_EQ(monitor.Stats("video").worst_lateness, SimTime::Millis(20));
}

TEST(DeadlineMonitorTest, ExactlyAtToleranceBoundaryIsNotAMiss) {
  DeadlineMonitor monitor;
  monitor.Report("s", SimTime::Millis(100), SimTime::Millis(130), SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 0);
  monitor.Report("s", SimTime::Millis(100), SimTime::Millis(130) + SimTime::Nanos(1),
                 SimTime::Millis(30));
  EXPECT_EQ(monitor.TotalMissed(), 1);
}

TEST(DeadlineMonitorTest, StreamsTrackedSeparately) {
  DeadlineMonitor monitor;
  monitor.Report("video", SimTime::Millis(10), SimTime::Millis(20));
  monitor.Report("audio", SimTime::Millis(10), SimTime::Millis(5));
  EXPECT_EQ(monitor.Stats("video").missed, 1);
  EXPECT_EQ(monitor.Stats("audio").missed, 0);
  EXPECT_EQ(monitor.Streams().size(), 2u);
  EXPECT_EQ(monitor.TotalEvents(), 2);
}

TEST(DeadlineMonitorTest, MissRatePerStream) {
  DeadlineMonitor monitor;
  for (int i = 0; i < 8; ++i) {
    monitor.Report("s", SimTime::Millis(10), SimTime::Millis(i < 2 ? 20 : 5));
  }
  EXPECT_DOUBLE_EQ(monitor.Stats("s").MissRate(), 0.25);
}

TEST(DeadlineMonitorTest, WorstLatenessAcrossStreams) {
  DeadlineMonitor monitor;
  monitor.Report("a", SimTime::Millis(10), SimTime::Millis(14));
  monitor.Report("b", SimTime::Millis(10), SimTime::Millis(35));
  EXPECT_EQ(monitor.WorstLateness(), SimTime::Millis(25));
}

TEST(DeadlineMonitorTest, TotalLatenessAccumulates) {
  DeadlineMonitor monitor;
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(13));
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(17));
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(5));  // early: no lateness
  EXPECT_EQ(monitor.Stats("s").total_lateness, SimTime::Millis(10));
}

TEST(DeadlineMonitorTest, UnknownStreamHasZeroStats) {
  DeadlineMonitor monitor;
  const auto stats = monitor.Stats("nothing");
  EXPECT_EQ(stats.total, 0);
  EXPECT_EQ(stats.missed, 0);
  EXPECT_DOUBLE_EQ(stats.MissRate(), 0.0);
}

TEST(DeadlineMonitorTest, ClearResets) {
  DeadlineMonitor monitor;
  monitor.Report("s", SimTime::Millis(10), SimTime::Millis(20));
  monitor.Clear();
  EXPECT_EQ(monitor.TotalEvents(), 0);
  EXPECT_TRUE(monitor.Streams().empty());
}

}  // namespace
}  // namespace dcs
