// Determinism sweep: identical configurations must produce bit-identical
// results for every governor in the registry.  This is what makes the
// repeated-run confidence intervals meaningful and the benches reproducible;
// it would catch unordered-container iteration, uninitialised state, or
// accidental wall-clock dependencies anywhere in the stack.

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/core/governor_registry.h"
#include "src/exp/experiment.h"

namespace dcs {
namespace {

class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, IdenticalRunsProduceIdenticalResults) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = GetParam();
  config.seed = 19;
  config.duration = SimTime::Seconds(8);

  const ExperimentResult a = RunExperiment(config);
  const ExperimentResult b = RunExperiment(config);

  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.exact_energy_joules, b.exact_energy_joules);
  EXPECT_EQ(a.clock_changes, b.clock_changes);
  EXPECT_EQ(a.voltage_transitions, b.voltage_transitions);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.deadline_events, b.deadline_events);
  EXPECT_EQ(a.worst_lateness, b.worst_lateness);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.total_stall, b.total_stall);
  for (int step = 0; step < kNumClockSteps; ++step) {
    EXPECT_EQ(a.step_residency[static_cast<std::size_t>(step)],
              b.step_residency[static_cast<std::size_t>(step)])
        << "step " << step;
  }
  // The recorded series are identical point for point.
  const TraceSeries* ua = a.sink.Find("utilization");
  const TraceSeries* ub = b.sink.Find("utilization");
  ASSERT_NE(ua, nullptr);
  ASSERT_NE(ub, nullptr);
  ASSERT_EQ(ua->size(), ub->size());
  for (std::size_t i = 0; i < ua->size(); ++i) {
    EXPECT_EQ(ua->points()[i], ub->points()[i]) << "quantum " << i;
  }
}

std::string SpecName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllGovernors, DeterminismTest,
    ::testing::Values("none", "fixed-206.4", "fixed-132.7@1.23", "PAST-peg-peg-93-98",
                      "PAST-peg-peg-93-98-vs", "AVG9-one-one-50-70", "WIN10-peg-peg-93-98",
                      "PAST-double-double-50-70", "cycles4", "satrate4", "deadline",
                      "deadline-vs", "ondemand", "schedutil", "flat-75",
                      "LS-peg-peg-93-98", "CYCLE10-peg-peg-93-98", "PEAK-peg-peg-93-98"),
    SpecName);

TEST(DeterminismTest, DifferentAppsAlsoDeterministic) {
  for (const char* app : {"web", "chess", "editor"}) {
    ExperimentConfig config;
    config.app = app;
    config.governor = "deadline";
    config.seed = 19;
    config.duration = SimTime::Seconds(10);
    const ExperimentResult a = RunExperiment(config);
    const ExperimentResult b = RunExperiment(config);
    EXPECT_EQ(a.energy_joules, b.energy_joules) << app;
    EXPECT_EQ(a.clock_changes, b.clock_changes) << app;
  }
}

}  // namespace
}  // namespace dcs
