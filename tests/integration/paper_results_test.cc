// End-to-end assertions of the paper's headline quantitative results
// (shape, not absolute numbers): Table 2's energy ordering, Figure 9's
// plateau, section 2.1's battery lifetimes and section 5.4's switch costs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <map>

#include "src/exp/experiment.h"
#include "src/exp/repeat.h"
#include "src/hw/battery.h"
#include "src/hw/memory_model.h"

namespace dcs {
namespace {

ExperimentConfig Mpeg(const std::string& governor, double seconds = 60.0) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = 11;
  config.duration = SimTime::FromSecondsF(seconds);
  return config;
}

class Table2Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rows_ = new std::map<std::string, ExperimentResult>;
    for (const char* spec : {"fixed-206.4", "fixed-132.7", "fixed-132.7@1.23",
                             "PAST-peg-peg-93-98", "PAST-peg-peg-93-98-vs"}) {
      rows_->emplace(spec, RunExperiment(Mpeg(spec)));
    }
  }
  static void TearDownTestSuite() {
    delete rows_;
    rows_ = nullptr;
  }
  static const ExperimentResult& Row(const std::string& spec) { return rows_->at(spec); }

 private:
  static std::map<std::string, ExperimentResult>* rows_;
};

std::map<std::string, ExperimentResult>* Table2Test::rows_ = nullptr;

TEST_F(Table2Test, EnergiesInPaperBallpark) {
  // Paper: ~86 / ~80 / ~74 J for the three constant-speed rows.
  EXPECT_NEAR(Row("fixed-206.4").energy_joules, 86.0, 5.0);
  EXPECT_NEAR(Row("fixed-132.7").energy_joules, 80.3, 5.0);
  EXPECT_NEAR(Row("fixed-132.7@1.23").energy_joules, 74.1, 5.0);
}

TEST_F(Table2Test, ConstantSpeedOrdering) {
  // 206.4/1.5 > 132.7/1.5 > 132.7/1.23 — slower and lower-voltage wins.
  EXPECT_GT(Row("fixed-206.4").energy_joules, Row("fixed-132.7").energy_joules);
  EXPECT_GT(Row("fixed-132.7").energy_joules, Row("fixed-132.7@1.23").energy_joules);
}

TEST_F(Table2Test, VoltageDropSavesSeveralPercentSystemEnergy) {
  const double reduction = 1.0 - Row("fixed-132.7@1.23").energy_joules /
                                     Row("fixed-132.7").energy_joules;
  // Paper: ~8%.
  EXPECT_GT(reduction, 0.04);
  EXPECT_LT(reduction, 0.12);
}

TEST_F(Table2Test, BestPolicySavesSmallButRealEnergy) {
  // "a small but significant amount of energy": PAST-peg-peg-93/98 lands
  // between the 206.4 baseline and the (unreachable without app knowledge)
  // optimal fixed speed.
  const double baseline = Row("fixed-206.4").energy_joules;
  const double best = Row("PAST-peg-peg-93-98").energy_joules;
  const double optimal = Row("fixed-132.7").energy_joules;
  EXPECT_LT(best, baseline);
  EXPECT_GT(best, optimal);
}

TEST_F(Table2Test, BestPolicyNeverMissesDeadlines) {
  EXPECT_EQ(Row("PAST-peg-peg-93-98").deadline_misses, 0);
  EXPECT_EQ(Row("PAST-peg-peg-93-98-vs").deadline_misses, 0);
}

TEST_F(Table2Test, ConstantSpeedsMeetDeadlinesDownTo132) {
  EXPECT_EQ(Row("fixed-206.4").deadline_misses, 0);
  EXPECT_EQ(Row("fixed-132.7").deadline_misses, 0);
  EXPECT_EQ(Row("fixed-132.7@1.23").deadline_misses, 0);
}

TEST_F(Table2Test, VoltageScalingAddsLittleOnThisPlatform) {
  // "Allowing the processor to scale the voltage when the clock speed drops
  // below 162.2MHz results in no statistical decrease" — tiny effect.
  const double no_vs = Row("PAST-peg-peg-93-98").energy_joules;
  const double vs = Row("PAST-peg-peg-93-98-vs").energy_joules;
  EXPECT_LE(vs, no_vs);
  EXPECT_LT(no_vs - vs, 0.02 * no_vs);
}

TEST_F(Table2Test, BestPolicyChangesClockFrequently) {
  // Figure 8: "changes clock settings frequently" — hundreds of changes in
  // 60 s, pinned to the extremes.
  const ExperimentResult& row = Row("PAST-peg-peg-93-98");
  EXPECT_GT(row.clock_changes, 300);
  // Residency concentrates at the bottom and top steps.
  const double extremes = row.step_residency[0] + row.step_residency[10];
  EXPECT_GT(extremes, 0.95);
}

TEST_F(Table2Test, SwitchOverheadUnderTwoPercent) {
  // Section 5.4: clock/voltage switching costs < 2% of the run.
  const ExperimentResult& row = Row("PAST-peg-peg-93-98");
  EXPECT_LT(row.total_stall.ToSeconds(), 0.02 * row.duration.ToSeconds());
}

TEST(Figure9Test, UtilizationPlateauBetween162And177) {
  double util[kNumClockSteps] = {};
  for (int step = 5; step <= 10; ++step) {
    char spec[32];
    std::snprintf(spec, sizeof(spec), "fixed-%.1f", ClockTable::FrequencyMhz(step));
    util[step] = RunExperiment(Mpeg(spec, 30.0)).avg_utilization;
  }
  // Overall: utilization falls as frequency rises (~91% down to ~76%).
  EXPECT_GT(util[5], 0.85);
  EXPECT_LT(util[10], 0.80);
  // The plateau: moving 162.2 -> 176.9 changes utilization by < 2 points,
  // while neighbouring transitions move it by > 2 points.
  EXPECT_LT(std::abs(util[7] - util[8]), 0.02);
  EXPECT_GT(util[6] - util[7], 0.02);
  EXPECT_GT(util[8] - util[9], 0.02);
}

TEST(BatteryLifetimeTest, PaperSection21Endpoints) {
  // Idle Itsy: ~2 h at 206 MHz, ~18 h at 59 MHz on the same cells.
  Battery battery;
  const double watts_206 = 1.029;
  const double watts_59 = watts_206 / 3.5;
  EXPECT_NEAR(battery.LifetimeHoursAtConstantPower(watts_206), 2.0, 0.2);
  EXPECT_NEAR(battery.LifetimeHoursAtConstantPower(watts_59), 18.0, 1.5);
}

TEST(SwitchOverheadTest, PaperSection54Numbers) {
  // 200 us per clock change — 11.8k cycles at 59 MHz, 41.3k at 206.4 MHz
  // (the paper rounds to 40,000 and 11,200 at "200MHz").
  EXPECT_EQ(kClockSwitchStall, SimTime::Micros(200));
  const double cycles_59 = kClockSwitchStall.ToSeconds() * ClockTable::FrequencyHz(0);
  const double cycles_206 = kClockSwitchStall.ToSeconds() * ClockTable::FrequencyHz(10);
  EXPECT_NEAR(cycles_59, 11796.5, 1.0);
  EXPECT_NEAR(cycles_206, 41287.7, 1.0);
  EXPECT_EQ(kVoltageDownSettle, SimTime::Micros(250));
  // "the time needed for clock and voltage changes are less than 2% of the
  // scheduling interval" (200 us / 10 ms = 2%, 250 us = 2.5%).
  EXPECT_LE(kClockSwitchStall.ToSeconds() / 0.010, 0.02);
  EXPECT_LE(kVoltageDownSettle.ToSeconds() / 0.010, 0.025);
}

TEST(RepeatabilityTest, ConfidenceIntervalUnderPaperBound) {
  ExperimentConfig config = Mpeg("fixed-206.4", 20.0);
  const RepeatedResult result = RunRepeated(config, 5);
  EXPECT_LT(result.energy.ci_percent(), 0.7);
}

}  // namespace
}  // namespace dcs
