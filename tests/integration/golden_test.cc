// Golden stdout regression tests: runs the paper-table benches end to end
// and byte-compares their stdout against the captures in tests/golden/.
//
// The benches keep stdout deterministic by construction — every printed
// number derives from simulated state, progress and obs diagnostics go to
// stderr — so the comparison is exact, not fuzzy.  The sweep-driven benches
// are re-run here with --threads=2 while the captures were taken with
// --threads=1, which regression-tests the engine's thread-count invariance
// at the same time.
//
// After an intentional output change, regenerate with:
//
//   cmake --build build -j
//   tests/golden/update.sh build
//   git diff tests/golden/       # review like any other code change
//
// Directories default to the build/source trees (baked in at configure
// time) and can be overridden with DCS_BENCH_DIR / DCS_GOLDEN_DIR.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace dcs {
namespace {

#ifndef DCS_BENCH_DIR
#define DCS_BENCH_DIR "bench"
#endif
#ifndef DCS_GOLDEN_DIR
#define DCS_GOLDEN_DIR "tests/golden"
#endif

std::string DirFromEnv(const char* env_name, const char* fallback) {
  const char* env = std::getenv(env_name);
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

std::string BenchDir() { return DirFromEnv("DCS_BENCH_DIR", DCS_BENCH_DIR); }
std::string GoldenDir() { return DirFromEnv("DCS_GOLDEN_DIR", DCS_GOLDEN_DIR); }

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Runs `command` through the shell and captures its stdout byte-for-byte.
// Fails the current test if the command cannot be started or exits non-zero.
std::string RunAndCapture(const std::string& command) {
  std::string captured;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << command;
    return captured;
  }
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    captured.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  EXPECT_EQ(status, 0) << "non-zero exit from: " << command;
  return captured;
}

// Points at the first differing line so a golden mismatch reads like a diff
// hunk instead of two multi-kilobyte blobs.
void ExpectSameText(const std::string& expected, const std::string& actual,
                    const std::string& what) {
  if (expected == actual) {
    return;
  }
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  int line = 0;
  for (;;) {
    ++line;
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    if (!have_want && !have_got) {
      break;
    }
    if (!have_want || !have_got || want_line != got_line) {
      ADD_FAILURE() << what << " differs at line " << line << "\n  golden: "
                    << (have_want ? want_line : "<end of file>")
                    << "\n  actual: " << (have_got ? got_line : "<end of output>")
                    << "\nIf the change is intentional, regenerate with "
                       "tests/golden/update.sh and review the diff.";
      return;
    }
  }
  ADD_FAILURE() << what << " differs (line split/trailing bytes)";
}

void ExpectGolden(const std::string& bench, const std::string& args) {
  const std::string golden_path = GoldenDir() + "/" + bench + ".txt";
  std::string expected;
  ASSERT_TRUE(ReadFile(golden_path, &expected))
      << "missing golden capture " << golden_path
      << " — generate it with tests/golden/update.sh";
  const std::string command =
      BenchDir() + "/" + bench + (args.empty() ? "" : " " + args) + " 2>/dev/null";
  const std::string actual = RunAndCapture(command);
  ExpectSameText(expected, actual, bench + " stdout");
}

TEST(GoldenTest, Tab1Avg9Actions) { ExpectGolden("tab1_avg9_actions", ""); }

TEST(GoldenTest, Fig8BestPolicyTrace) {
  ExpectGolden("fig8_best_policy_trace", "--threads=2");
}

TEST(GoldenTest, Fig9UtilizationVsFreq) {
  ExpectGolden("fig9_utilization_vs_freq", "--threads=2");
}

TEST(GoldenTest, Tab2EnergySummary) {
  ExpectGolden("tab2_energy_summary", "--threads=2");
}

// The fault-injection differential against the recorded captures: an
// explicit `--faults=none` must reproduce the pre-fault goldens byte for
// byte, proving the inactive plan leaves the simulation untouched.
TEST(GoldenTest, Fig9WithExplicitNoFaults) {
  ExpectGolden("fig9_utilization_vs_freq", "--threads=2 --faults=none");
}

TEST(GoldenTest, Tab2WithExplicitNoFaults) {
  ExpectGolden("tab2_energy_summary", "--threads=2 --faults=none");
}

// The open-loop server sweep: the capture is taken with --threads=1; the
// --threads=4 rerun proves the latency-percentile plumbing (histogram merge
// order, queue drain, deadline accounting) is thread-count invariant too.
TEST(GoldenTest, ServerSloQuick) { ExpectGolden("server_slo", "--quick --threads=1"); }

TEST(GoldenTest, ServerSloQuickThreadInvariant) {
  ExpectGolden("server_slo", "--quick --threads=4");
}

// The competitive-ratio sweep: every governor scored against the offline
// optimum on the quick grid.  A zero exit (enforced by RunAndCapture) means
// every ratio held >= 1.0; the byte-compare pins the ratios themselves.
TEST(GoldenTest, CompetitiveRatioQuick) {
  ExpectGolden("competitive_ratio", "--quick --threads=1");
}

TEST(GoldenTest, CompetitiveRatioQuickThreadInvariant) {
  ExpectGolden("competitive_ratio", "--quick --threads=4");
}

// ---------------------------------------------------------------------------
// Artifact byte-identity: beyond stdout, the exported observability files
// (--trace-out / --metrics-out) must be byte-for-byte reproducible.  The
// metrics JSON is compared directly against a committed golden; the Chrome
// traces are large, so only their sha256 digests are committed
// (tests/golden/obs_artifacts.sha256) and recomputed here.

std::string Sha256Of(const std::string& path) {
  const std::string out = RunAndCapture("sha256sum " + path);
  const std::size_t space = out.find(' ');
  return space == std::string::npos ? out : out.substr(0, space);
}

// Parses "hash  name" lines from obs_artifacts.sha256 into (name -> hash).
std::string GoldenShaFor(const std::string& artifact_name) {
  std::string listing;
  if (!ReadFile(GoldenDir() + "/obs_artifacts.sha256", &listing)) {
    ADD_FAILURE() << "missing " << GoldenDir() << "/obs_artifacts.sha256";
    return "";
  }
  std::istringstream lines(listing);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) {
      continue;
    }
    std::string name = line.substr(space);
    name.erase(0, name.find_first_not_of(" \t"));
    if (name == artifact_name) {
      return line.substr(0, space);
    }
  }
  ADD_FAILURE() << artifact_name << " not listed in obs_artifacts.sha256";
  return "";
}

void ExpectArtifactsGolden(const std::string& bench, const std::string& artifact,
                           const std::string& args) {
  const std::string dir = ::testing::TempDir();
  const std::string trace_path = dir + "/" + artifact + ".trace.json";
  const std::string metrics_path = dir + "/" + artifact + ".metrics.json";
  const std::string command = BenchDir() + "/" + bench + " " + args +
                              " --trace-out=" + trace_path +
                              " --metrics-out=" + metrics_path +
                              " > /dev/null 2>/dev/null";
  RunAndCapture(command);

  std::string golden_metrics;
  ASSERT_TRUE(ReadFile(GoldenDir() + "/" + artifact + ".metrics.json", &golden_metrics))
      << "missing golden metrics for " << artifact;
  std::string actual_metrics;
  ASSERT_TRUE(ReadFile(metrics_path, &actual_metrics))
      << bench << " did not write " << metrics_path;
  ExpectSameText(golden_metrics, actual_metrics, artifact + ".metrics.json");

  const std::string want_sha = GoldenShaFor(artifact + ".trace.json");
  if (!want_sha.empty()) {
    EXPECT_EQ(Sha256Of(trace_path), want_sha)
        << artifact << ".trace.json changed — if intentional, regenerate "
           "with tests/golden/update.sh and review the diff";
  }
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(GoldenTest, Fig8ArtifactsByteIdentical) {
  ExpectArtifactsGolden("fig8_best_policy_trace", "fig8_past_peg_peg", "--threads=1");
}

TEST(GoldenTest, Tab2ArtifactsByteIdentical) {
  ExpectArtifactsGolden("tab2_energy_summary", "tab2_energy_summary", "--threads=1");
}

// Thread-count invariance extends to the artifacts, not just stdout.
TEST(GoldenTest, Tab2ArtifactsThreadInvariant) {
  ExpectArtifactsGolden("tab2_energy_summary", "tab2_energy_summary", "--threads=2");
}

// The server sweep's --metrics-out carries the latency_us.requests histogram
// (p50/p95/p99/p999); both thread counts must reproduce the committed JSON.
TEST(GoldenTest, ServerSloArtifactsByteIdentical) {
  ExpectArtifactsGolden("server_slo", "server_slo_quick", "--quick --threads=1");
}

TEST(GoldenTest, ServerSloArtifactsThreadInvariant) {
  ExpectArtifactsGolden("server_slo", "server_slo_quick", "--quick --threads=4");
}

}  // namespace
}  // namespace dcs
