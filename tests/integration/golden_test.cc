// Golden stdout regression tests: runs the paper-table benches end to end
// and byte-compares their stdout against the captures in tests/golden/.
//
// The benches keep stdout deterministic by construction — every printed
// number derives from simulated state, progress and obs diagnostics go to
// stderr — so the comparison is exact, not fuzzy.  The sweep-driven benches
// are re-run here with --threads=2 while the captures were taken with
// --threads=1, which regression-tests the engine's thread-count invariance
// at the same time.
//
// After an intentional output change, regenerate with:
//
//   cmake --build build -j
//   tests/golden/update.sh build
//   git diff tests/golden/       # review like any other code change
//
// Directories default to the build/source trees (baked in at configure
// time) and can be overridden with DCS_BENCH_DIR / DCS_GOLDEN_DIR.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace dcs {
namespace {

#ifndef DCS_BENCH_DIR
#define DCS_BENCH_DIR "bench"
#endif
#ifndef DCS_GOLDEN_DIR
#define DCS_GOLDEN_DIR "tests/golden"
#endif

std::string DirFromEnv(const char* env_name, const char* fallback) {
  const char* env = std::getenv(env_name);
  return env != nullptr && env[0] != '\0' ? env : fallback;
}

std::string BenchDir() { return DirFromEnv("DCS_BENCH_DIR", DCS_BENCH_DIR); }
std::string GoldenDir() { return DirFromEnv("DCS_GOLDEN_DIR", DCS_GOLDEN_DIR); }

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// Runs `command` through the shell and captures its stdout byte-for-byte.
// Fails the current test if the command cannot be started or exits non-zero.
std::string RunAndCapture(const std::string& command) {
  std::string captured;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << command;
    return captured;
  }
  char buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), pipe)) > 0) {
    captured.append(buffer, n);
  }
  const int status = ::pclose(pipe);
  EXPECT_EQ(status, 0) << "non-zero exit from: " << command;
  return captured;
}

// Points at the first differing line so a golden mismatch reads like a diff
// hunk instead of two multi-kilobyte blobs.
void ExpectSameText(const std::string& expected, const std::string& actual,
                    const std::string& what) {
  if (expected == actual) {
    return;
  }
  std::istringstream want(expected);
  std::istringstream got(actual);
  std::string want_line;
  std::string got_line;
  int line = 0;
  for (;;) {
    ++line;
    const bool have_want = static_cast<bool>(std::getline(want, want_line));
    const bool have_got = static_cast<bool>(std::getline(got, got_line));
    if (!have_want && !have_got) {
      break;
    }
    if (!have_want || !have_got || want_line != got_line) {
      ADD_FAILURE() << what << " differs at line " << line << "\n  golden: "
                    << (have_want ? want_line : "<end of file>")
                    << "\n  actual: " << (have_got ? got_line : "<end of output>")
                    << "\nIf the change is intentional, regenerate with "
                       "tests/golden/update.sh and review the diff.";
      return;
    }
  }
  ADD_FAILURE() << what << " differs (line split/trailing bytes)";
}

void ExpectGolden(const std::string& bench, const std::string& args) {
  const std::string golden_path = GoldenDir() + "/" + bench + ".txt";
  std::string expected;
  ASSERT_TRUE(ReadFile(golden_path, &expected))
      << "missing golden capture " << golden_path
      << " — generate it with tests/golden/update.sh";
  const std::string command =
      BenchDir() + "/" + bench + (args.empty() ? "" : " " + args) + " 2>/dev/null";
  const std::string actual = RunAndCapture(command);
  ExpectSameText(expected, actual, bench + " stdout");
}

TEST(GoldenTest, Tab1Avg9Actions) { ExpectGolden("tab1_avg9_actions", ""); }

TEST(GoldenTest, Fig9UtilizationVsFreq) {
  ExpectGolden("fig9_utilization_vs_freq", "--threads=2");
}

TEST(GoldenTest, Tab2EnergySummary) {
  ExpectGolden("tab2_energy_summary", "--threads=2");
}

// The fault-injection differential against the recorded captures: an
// explicit `--faults=none` must reproduce the pre-fault goldens byte for
// byte, proving the inactive plan leaves the simulation untouched.
TEST(GoldenTest, Fig9WithExplicitNoFaults) {
  ExpectGolden("fig9_utilization_vs_freq", "--threads=2 --faults=none");
}

TEST(GoldenTest, Tab2WithExplicitNoFaults) {
  ExpectGolden("tab2_energy_summary", "--threads=2 --faults=none");
}

}  // namespace
}  // namespace dcs
