// Tests for the ablation knobs: configurable clock-change stall, MPEG pacing
// modes and memory-profile overrides.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/exp/experiment.h"
#include "src/hw/memory_model.h"

namespace dcs {
namespace {

ExperimentConfig BaseMpeg(const char* governor) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = 17;
  config.duration = SimTime::Seconds(20);
  return config;
}

TEST(SwitchCostAblationTest, ZeroCostSwitchingHasNoStall) {
  ExperimentConfig config = BaseMpeg("PAST-peg-peg-93-98");
  config.itsy.clock_switch_stall = SimTime::Zero();
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.clock_changes, 100);
  EXPECT_EQ(result.total_stall, SimTime::Zero());
}

TEST(SwitchCostAblationTest, PastPegDegradesGracefullyWithExpensiveSwitches) {
  // PAST-peg-peg leaves slack (it pegs to the top on any busy quantum), so
  // even very expensive switches only erode deadline margins — an emergent
  // robustness of the paper's best policy.  worst_overrun measures how close
  // completions get to the bare deadline; worst_lateness stays zero on both
  // runs because nothing escapes the tolerance window.
  ExperimentConfig config = BaseMpeg("PAST-peg-peg-93-98");
  const ExperimentResult cheap = RunExperiment(config);
  config.itsy.clock_switch_stall = SimTime::Millis(10);
  const ExperimentResult expensive = RunExperiment(config);
  EXPECT_EQ(cheap.deadline_misses, 0);
  EXPECT_EQ(expensive.deadline_misses, 0);
  EXPECT_EQ(expensive.worst_lateness, SimTime::Zero());
  EXPECT_GT(expensive.worst_overrun, cheap.worst_overrun);
  EXPECT_GT(expensive.avg_utilization, cheap.avg_utilization + 0.05);
}

TEST(SwitchCostAblationTest, ExpensiveSwitchingBreaksZeroSlackPolicies) {
  // The deadline governor runs with almost no slack by design, so
  // millisecond-class switch stalls push announced work past its deadline.
  ExperimentConfig config = BaseMpeg("deadline");
  const ExperimentResult cheap = RunExperiment(config);
  config.itsy.clock_switch_stall = SimTime::Millis(5);
  const ExperimentResult expensive = RunExperiment(config);
  EXPECT_EQ(cheap.deadline_misses, 0);
  EXPECT_GT(expensive.deadline_misses, 0);
}

TEST(SwitchCostAblationTest, StallScalesWithConfiguredCost) {
  ExperimentConfig config = BaseMpeg("PAST-peg-peg-93-98");
  config.itsy.clock_switch_stall = SimTime::Micros(400);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.total_stall, SimTime::Micros(400) * result.clock_changes);
}

TEST(MpegPacingAblationTest, SleepOnlyLowersUtilizationAt206) {
  ExperimentConfig hybrid = BaseMpeg("fixed-206.4");
  MpegConfig sleep_only;
  sleep_only.pacing = MpegPacing::kSleepOnly;
  ExperimentConfig sleepy = BaseMpeg("fixed-206.4");
  sleepy.mpeg = sleep_only;
  const double hybrid_util = RunExperiment(hybrid).avg_utilization;
  const double sleepy_util = RunExperiment(sleepy).avg_utilization;
  EXPECT_LT(sleepy_util, hybrid_util - 0.05);
}

TEST(MpegPacingAblationTest, SpinOnlySaturates) {
  MpegConfig spin_only;
  spin_only.pacing = MpegPacing::kSpinOnly;
  ExperimentConfig config = BaseMpeg("fixed-206.4");
  config.mpeg = spin_only;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.avg_utilization, 0.95);
  EXPECT_EQ(result.deadline_misses, 0);  // spinning still hits display times
}

TEST(MpegPacingAblationTest, SpinLoopCostsEnergyAtHighClock) {
  MpegConfig sleep_only;
  sleep_only.pacing = MpegPacing::kSleepOnly;
  ExperimentConfig hybrid = BaseMpeg("fixed-206.4");
  ExperimentConfig sleepy = BaseMpeg("fixed-206.4");
  sleepy.mpeg = sleep_only;
  EXPECT_GT(RunExperiment(hybrid).energy_joules, RunExperiment(sleepy).energy_joules);
}

TEST(MpegPacingAblationTest, SleepOnlyStillMeetsDeadlines) {
  MpegConfig sleep_only;
  sleep_only.pacing = MpegPacing::kSleepOnly;
  for (const char* governor : {"fixed-206.4", "fixed-132.7"}) {
    ExperimentConfig config = BaseMpeg(governor);
    config.mpeg = sleep_only;
    EXPECT_EQ(RunExperiment(config).deadline_misses, 0) << governor;
  }
}

TEST(MemoryProfileAblationTest, FlatProfileRemovesPlateau) {
  // With a flat profile the utilization change from 162.2 to 176.9 MHz is a
  // normal-sized step instead of the Table 3 plateau.
  auto util_at = [](int step, bool flat) {
    char spec[32];
    std::snprintf(spec, sizeof(spec), "fixed-%.1f", ClockTable::FrequencyMhz(step));
    ExperimentConfig config;
    config.app = "mpeg";
    config.governor = spec;
    config.seed = 17;
    config.duration = SimTime::Seconds(15);
    if (flat) {
      MpegConfig mpeg;
      mpeg.video_profile = MemoryProfile{};
      mpeg.audio_profile = MemoryProfile{};
      mpeg.mean_decode_ms_at_top = 36.0;  // refit so 132.7 stays feasible
      config.mpeg = mpeg;
    }
    return RunExperiment(config).avg_utilization;
  };
  const double real_delta = util_at(7, false) - util_at(8, false);
  const double flat_delta = util_at(7, true) - util_at(8, true);
  EXPECT_LT(real_delta, 0.02);
  EXPECT_GT(flat_delta, 0.03);
}

TEST(QuantumAblationTest, LongQuantaMissMpegDeadlines) {
  ExperimentConfig config = BaseMpeg("PAST-peg-peg-93-98");
  config.kernel.quantum = SimTime::Millis(100);
  const ExperimentResult slow = RunExperiment(config);
  config.kernel.quantum = SimTime::Millis(10);
  const ExperimentResult normal = RunExperiment(config);
  EXPECT_EQ(normal.deadline_misses, 0);
  EXPECT_GT(slow.deadline_misses + slow.worst_lateness.nanos(),
            normal.deadline_misses + normal.worst_lateness.nanos());
}

}  // namespace
}  // namespace dcs
