// End-to-end reproduction of section 5.3's qualitative findings about the
// interval schedulers: lag-induced deadline misses, threshold sensitivity,
// minimal savings when tuned safe, and the failure of the naive
// busy-cycle-averaging policy.

#include <gtest/gtest.h>

#include "src/exp/experiment.h"

namespace dcs {
namespace {

ExperimentResult RunMpeg(const std::string& governor, double seconds = 30.0) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = 13;
  config.duration = SimTime::FromSecondsF(seconds);
  return RunExperiment(config);
}

TEST(GovernorBehaviorTest, NaiveCycleCountingMissesBadly) {
  // Figure 5: "exceptionally poor responsiveness" — the policy parks the
  // clock at the floor and MPEG falls hopelessly behind.
  const ExperimentResult result = RunMpeg("cycles4");
  EXPECT_GT(result.deadline_misses, 100);
  EXPECT_GT(result.worst_lateness, SimTime::Seconds(1));
}

TEST(GovernorBehaviorTest, Avg9WithTightThresholdsMissesFromLag) {
  // AVG9's 120 ms reaction lag makes tight thresholds (93/98) miss frames:
  // the clock is still slow when a burst arrives.
  const ExperimentResult result = RunMpeg("AVG9-peg-peg-93-98");
  EXPECT_GT(result.deadline_misses, 20);
}

TEST(GovernorBehaviorTest, Avg9WithLooseThresholdsSavesAlmostNothing) {
  // "The AVG_N policy can be easily designed to ensure that very few
  // deadlines will be missed, but this results in minimal energy savings."
  const ExperimentResult avg = RunMpeg("AVG9-one-one-50-70");
  const ExperimentResult baseline = RunMpeg("fixed-206.4");
  EXPECT_LE(avg.deadline_misses, 2);
  EXPECT_NEAR(avg.energy_joules, baseline.energy_joules, 0.01 * baseline.energy_joules);
}

TEST(GovernorBehaviorTest, HundredMsAveragingMissesDeadlines) {
  // "averaging over such a long period of time caused us to miss our
  // 'deadline'": WIN10 is the 100 ms sliding average.
  const ExperimentResult result = RunMpeg("WIN10-peg-peg-93-98");
  EXPECT_GT(result.deadline_misses, 2);
}

TEST(GovernorBehaviorTest, PastPegPegMeetsDeadlinesOnEveryApp) {
  // The paper's best policy "never misses any deadline (across all the
  // applications)".
  for (const char* app : {"mpeg", "web", "chess", "editor"}) {
    ExperimentConfig config;
    config.app = app;
    config.governor = "PAST-peg-peg-93-98";
    config.seed = 13;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_EQ(result.deadline_misses, 0) << app;
    EXPECT_GT(result.deadline_events, 0) << app;
  }
}

TEST(GovernorBehaviorTest, PastPegPegSavesEnergyOnEveryApp) {
  for (const char* app : {"mpeg", "web", "chess", "editor"}) {
    ExperimentConfig config;
    config.app = app;
    config.seed = 13;
    config.governor = "PAST-peg-peg-93-98";
    const double with_policy = RunExperiment(config).energy_joules;
    config.governor = "fixed-206.4";
    const double baseline = RunExperiment(config).energy_joules;
    EXPECT_LT(with_policy, baseline) << app;
  }
}

TEST(GovernorBehaviorTest, ThresholdSensitivityForLaggyPredictors) {
  // "the specific values are very sensitive to application behavior": with
  // AVG9, tight thresholds slash energy but miss deadlines; loose ones are
  // safe but save nothing.
  const ExperimentResult tight = RunMpeg("AVG9-peg-peg-93-98");
  const ExperimentResult loose = RunMpeg("AVG9-one-one-50-70");
  EXPECT_GT(tight.deadline_misses, loose.deadline_misses);
  EXPECT_LT(tight.energy_joules, loose.energy_joules);
}

TEST(GovernorBehaviorTest, PastIsThresholdInsensitiveOnBimodalLoad) {
  // MPEG's quanta are bimodal (saturated or idle), so PAST's observed
  // utilization rarely lands between any sensible threshold pair: 50/70 and
  // 93/98 yield the same schedule.  This is why the paper reports "most of
  // them resulted in equivalent (and poor) behavior".
  const ExperimentResult tight = RunMpeg("PAST-peg-peg-93-98");
  const ExperimentResult loose = RunMpeg("PAST-peg-peg-50-70");
  EXPECT_EQ(tight.clock_changes, loose.clock_changes);
  EXPECT_NEAR(tight.energy_joules, loose.energy_joules, 0.01 * tight.energy_joules);
}

TEST(GovernorBehaviorTest, OneStepPoliciesChangeClockMoreOften) {
  const ExperimentResult one = RunMpeg("PAST-one-one-93-98");
  const ExperimentResult peg = RunMpeg("PAST-peg-peg-93-98");
  EXPECT_GT(one.clock_changes, peg.clock_changes);
}

TEST(GovernorBehaviorTest, OndemandBehavesLikePegUp) {
  // ondemand's burst-to-max mirrors PAST-peg up-scaling; both stay safe on
  // MPEG with comparable energy.
  const ExperimentResult ondemand = RunMpeg("ondemand");
  const ExperimentResult past = RunMpeg("PAST-peg-peg-93-98");
  EXPECT_EQ(ondemand.deadline_misses, 0);
  EXPECT_NEAR(ondemand.energy_joules, past.energy_joules, 0.05 * past.energy_joules);
}

TEST(GovernorBehaviorTest, SchedutilSafeOnMpeg) {
  const ExperimentResult result = RunMpeg("schedutil");
  EXPECT_EQ(result.deadline_misses, 0);
}

TEST(GovernorBehaviorTest, ModernGovernorsStillLeaveEnergyOnTable) {
  // Even today's heuristics cannot reach the app-aware optimum (fixed
  // 132.7 MHz) on MPEG — the paper's conclusion outlived its hardware.
  const double optimal = RunMpeg("fixed-132.7").energy_joules;
  for (const char* spec : {"ondemand", "schedutil"}) {
    const ExperimentResult result = RunMpeg(spec);
    EXPECT_GT(result.energy_joules, optimal) << spec;
  }
}

TEST(GovernorBehaviorTest, ParameterTuningDoesNotTransferBetweenApps) {
  // "these tuned parameters will probably not work for other applications":
  // thresholds that save the most on chess differ from mpeg's safe choice.
  ExperimentConfig chess;
  chess.app = "chess";
  chess.seed = 13;
  chess.duration = SimTime::Seconds(60);
  chess.governor = "PAST-peg-peg-50-70";
  const double chess_loose = RunExperiment(chess).energy_joules;
  chess.governor = "PAST-peg-peg-93-98";
  const double chess_tight = RunExperiment(chess).energy_joules;
  // Chess tolerates (and profits from) looser thresholds...
  EXPECT_LT(chess_loose, chess_tight * 1.02);
  // ...while on MPEG loose thresholds would be the risky choice whenever
  // the predictor lags (shown in the AVG9 tests above).
}

}  // namespace
}  // namespace dcs
