// Randomised robustness suite: seeded random workloads (arbitrary action
// sequences, including adversarial ones) run under every governor family
// while global invariants are checked.  Anything that crashes, hangs, or
// breaks an invariant here is a kernel/substrate bug regardless of whether a
// "sensible" workload would ever do it.

#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "src/core/governor_registry.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"

namespace dcs {
namespace {

// Emits a random but seeded stream of actions, including edge cases:
// zero-cycle computes, sleeps into the past, spins of zero length, yields
// and occasional deadline announcements.
class RandomWorkload final : public Workload {
 public:
  RandomWorkload(int max_actions, MemoryProfile profile)
      : max_actions_(max_actions), profile_(profile) {}

  const char* Name() const override { return "fuzz"; }
  MemoryProfile Profile() const override { return profile_; }

  Action Next(const WorkloadContext& ctx) override {
    if (actions_emitted_++ >= max_actions_) {
      return Action::Exit();
    }
    Rng& rng = *ctx.rng;
    switch (rng.UniformInt(0, 9)) {
      case 0:
      case 1:
      case 2: {
        const double cycles = rng.Uniform(0.0, 5e6);  // includes ~zero work
        if (rng.Bernoulli(0.3)) {
          // Announce with a deadline that may already be unmeetable.
          const SimTime deadline =
              ctx.now + SimTime::FromSecondsF(rng.Uniform(-0.01, 0.2));
          return Action::ComputeBy(cycles, deadline);
        }
        return Action::Compute(cycles);
      }
      case 3:
      case 4: {
        // Sleep, sometimes into the past.
        const double delta = rng.Uniform(-0.005, 0.05);
        return Action::SleepUntil(ctx.now + SimTime::FromSecondsF(delta),
                                  rng.Bernoulli(0.5));
      }
      case 5:
      case 6: {
        const double delta = rng.Uniform(0.0, 0.02);
        return Action::SpinUntil(ctx.now + SimTime::FromSecondsF(delta));
      }
      case 7:
      case 8:
        return Action::Yield();
      default:
        // A short think pause keeps exits rare but time moving.
        return Action::SleepUntil(ctx.now + SimTime::Millis(3), false);
    }
  }

 private:
  int max_actions_;
  MemoryProfile profile_;
  int actions_emitted_ = 0;
};

struct FuzzCase {
  std::uint64_t seed;
  std::string governor;
};

class FuzzTest : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzTest, InvariantsHoldUnderRandomWorkloads) {
  const FuzzCase& fuzz = GetParam();
  Simulator sim;
  Itsy itsy(sim);
  KernelConfig kernel_config;
  kernel_config.rng_seed = fuzz.seed;
  Kernel kernel(sim, itsy, kernel_config);

  std::string error;
  auto governor = MakeGovernor(fuzz.governor, &error);
  ASSERT_TRUE(governor != nullptr || error.empty()) << error;
  if (governor != nullptr) {
    kernel.InstallPolicy(governor.get());
  }

  Rng shape_rng(fuzz.seed * 7919);
  const int tasks = static_cast<int>(shape_rng.UniformInt(1, 4));
  for (int i = 0; i < tasks; ++i) {
    const MemoryProfile profile{shape_rng.Uniform(0.0, 30.0), shape_rng.Uniform(0.0, 12.0)};
    kernel.AddTask(std::make_unique<RandomWorkload>(
        static_cast<int>(shape_rng.UniformInt(50, 400)), profile));
  }

  const SimTime horizon = SimTime::Seconds(5);
  kernel.Start();
  sim.RunUntil(horizon);

  // --- Invariants -----------------------------------------------------------
  // 1. Time is conserved: busy + idle covers the horizon.
  const double covered = kernel.total_busy().ToSeconds() + kernel.total_idle().ToSeconds();
  EXPECT_NEAR(covered, horizon.ToSeconds(), 0.03);

  // 2. Step residency partitions the horizon.
  double residency = 0.0;
  for (const SimTime& t : kernel.step_residency()) {
    residency += t.ToSeconds();
  }
  EXPECT_NEAR(residency, horizon.ToSeconds(), 0.03);

  // 3. Recorded utilization is a valid fraction each quantum.
  const TraceSeries* util = kernel.sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_NEAR(static_cast<double>(util->size()), 500.0, 2.0);
  for (const TracePoint& p : util->points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0);
  }

  // 4. The power tape is time-ordered with non-negative power, and energy is
  //    additive across a split.
  const PowerTape& tape = itsy.tape();
  SimTime last_start = SimTime::Zero() - SimTime::Seconds(1);
  for (const PowerTape::Segment& segment : tape.segments()) {
    EXPECT_GT(segment.start, last_start);
    EXPECT_GE(segment.watts, 0.0);
    last_start = segment.start;
  }
  const double whole = tape.EnergyJoules(SimTime::Zero(), horizon);
  const double halves = tape.EnergyJoules(SimTime::Zero(), horizon / 2) +
                        tape.EnergyJoules(horizon / 2, horizon);
  EXPECT_NEAR(whole, halves, 1e-9);

  // 5. Stall bookkeeping matches the switch count.
  EXPECT_EQ(itsy.total_stall(), kClockSwitchStall * itsy.clock_changes());

  // 6. Voltage safety: the rail is never low while the clock is fast.
  EXPECT_TRUE(VoltageRegulator::StepAllowedAt(itsy.voltage(), itsy.step()));

  // 7. Per-task CPU time is non-negative and bounded by the horizon.
  for (Pid pid = 1; pid <= tasks; ++pid) {
    Task* task = kernel.FindTask(pid);
    ASSERT_NE(task, nullptr);
    EXPECT_GE(task->cpu_time().ToSeconds(), 0.0);
    EXPECT_LE(task->cpu_time().ToSeconds(), horizon.ToSeconds() + 0.01);
  }
}

std::vector<FuzzCase> MakeFuzzCases() {
  std::vector<FuzzCase> cases;
  const char* governors[] = {"none",
                             "PAST-peg-peg-93-98",
                             "AVG9-one-one-50-70",
                             "cycles4",
                             "satrate4",
                             "deadline",
                             "ondemand",
                             "schedutil",
                             "flat-75",
                             "CYCLE10-peg-peg-93-98"};
  std::uint64_t seed = 1;
  for (const char* governor : governors) {
    for (int i = 0; i < 3; ++i) {
      cases.push_back(FuzzCase{seed++, governor});
    }
  }
  return cases;
}

std::string FuzzCaseName(const ::testing::TestParamInfo<FuzzCase>& info) {
  std::string name = info.param.governor + "_seed" + std::to_string(info.param.seed);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzTest, ::testing::ValuesIn(MakeFuzzCases()),
                         FuzzCaseName);

// Two tasks that do nothing but yield to each other: simulated time must
// still advance (the yield cost prevents an instantaneous livelock).
class YieldLoopWorkload final : public Workload {
 public:
  const char* Name() const override { return "yield_loop"; }
  Action Next(const WorkloadContext&) override { return Action::Yield(); }
};

TEST(FuzzEdgeCases, MutualYieldLoopDoesNotLivelock) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<YieldLoopWorkload>());
  kernel.AddTask(std::make_unique<YieldLoopWorkload>());
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(sim.Now(), SimTime::Millis(100));
  // Both tasks alive, CPU fully busy with switch overhead.
  EXPECT_EQ(kernel.LiveTasks(), 2u);
  EXPECT_GT(kernel.last_utilization(), 0.99);
}

TEST(FuzzEdgeCases, SoloYieldLoopIsBoundedByInstantActionGuard) {
  // A single yielding task has nothing to yield to; the kernel treats it as
  // an instantaneous action and the guard limits it.  (It would assert in a
  // debug build after 100k instant actions; in release the guard just keeps
  // the loop finite per quantum.)  We merely check a near-variant: yield
  // mixed with tiny sleeps cannot wedge the simulation.
  class MostlySleepWorkload final : public Workload {
   public:
    const char* Name() const override { return "yield_sleep"; }
    Action Next(const WorkloadContext& ctx) override {
      toggle_ = !toggle_;
      if (toggle_) {
        return Action::Yield();
      }
      return Action::SleepUntil(ctx.now + SimTime::Micros(100), false);
    }

   private:
    bool toggle_ = false;
  };
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<MostlySleepWorkload>());
  kernel.Start();
  sim.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(sim.Now(), SimTime::Millis(50));
}

TEST(FuzzEdgeCases, BatteryRunsEmptyMidRunWithoutDisruption) {
  Simulator sim;
  ItsyConfig config;
  BatteryParams battery;
  battery.peukert_capacity = 0.00008;  // tiny battery: empties within seconds
  config.battery = battery;
  Itsy itsy(sim, config);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<RandomWorkload>(200, MemoryProfile{10.0, 4.0}));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(5));
  itsy.SyncBattery();
  ASSERT_NE(itsy.battery(), nullptr);
  EXPECT_TRUE(itsy.battery()->Empty());
  // The simulation itself kept running (the Itsy was on external power).
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
}

TEST(FuzzEdgeCases, TinySchedLogNeverOverflows) {
  Simulator sim;
  Itsy itsy(sim);
  KernelConfig config;
  config.sched_log_capacity = 8;
  Kernel kernel(sim, itsy, config);
  kernel.AddTask(std::make_unique<RandomWorkload>(300, MemoryProfile{}));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(3));
  EXPECT_LE(kernel.sched_log().Snapshot().size(), 8u);
  EXPECT_TRUE(kernel.sched_log().Wrapped());
}

}  // namespace
}  // namespace dcs
