// End-to-end reproduction of the paper's stability analysis (section 5.3,
// Figures 6 and 7, Table 1): AVG_N oscillates on a periodic workload even
// when started at the ideal clock speed, through the *whole* stack — a real
// kernel, a spin/sleep rectangle-wave task, and an AVG_N interval governor.

#include <gtest/gtest.h>

#include "src/analysis/filters.h"
#include "src/analysis/utilization.h"
#include "src/core/interval_governor.h"
#include "src/exp/experiment.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

// Runs a 9-busy/1-idle rectangle wave under an AVG_N-one-one governor and
// returns the recorded clock-frequency series.
struct WaveRun {
  int clock_changes = 0;
  std::vector<double> weighted;  // governor's W per quantum
  std::vector<double> freq_mhz_series;
};

WaveRun RunWave(int n, double lo, double hi, int start_step, double seconds) {
  Simulator sim;
  ItsyConfig itsy_config;
  itsy_config.initial_step = start_step;
  Itsy itsy(sim, itsy_config);
  Kernel kernel(sim, itsy);
  IntervalGovernorConfig config;
  config.thresholds = Thresholds{lo, hi};
  IntervalGovernor governor(std::make_unique<AvgNPredictor>(n), MakeSpeedPolicy("one"),
                            MakeSpeedPolicy("one"), config);

  // Wrap the governor to record its weighted utilization each quantum.
  class Recorder final : public ClockPolicy {
   public:
    Recorder(IntervalGovernor& inner, WaveRun& out) : inner_(inner), out_(out) {}
    const char* Name() const override { return inner_.Name(); }
    std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override {
      auto request = inner_.OnQuantum(sample);
      out_.weighted.push_back(inner_.weighted_utilization());
      return request;
    }

   private:
    IntervalGovernor& inner_;
    WaveRun& out_;
  };

  WaveRun out;
  Recorder recorder(governor, out);
  kernel.InstallPolicy(&recorder);
  kernel.AddTask(std::make_unique<RectangleWaveWorkload>(9, 1));
  kernel.Start();
  sim.RunUntil(SimTime::FromSecondsF(seconds));
  out.clock_changes = itsy.clock_changes();
  const TraceSeries* freq = kernel.sink().Find("freq_mhz");
  if (freq != nullptr) {
    out.freq_mhz_series = SeriesValues(*freq);
  }
  return out;
}

TEST(StabilityTest, Figure7WeightedUtilizationOscillates) {
  // Offline replication of Figure 7: AVG3 on the rectangle wave oscillates
  // "over a surprisingly wide range".
  const auto wave = RectangleWaveSamples(9, 1, 800);
  const auto filtered = AvgNFilter(wave, 3);
  const OscillationStats stats = AnalyzeOscillation(filtered, 200);
  EXPECT_GT(stats.amplitude, 0.15);
  EXPECT_EQ(stats.period % 10, 0);
}

TEST(StabilityTest, GovernorOscillatesEvenWhenStartedAtIdealSpeed) {
  // "even if the system is started out at the ideal clock speed, AVG_N
  // smoothing will still result in undesirable oscillation."  AVG3 on the
  // 9-busy/1-idle wave oscillates between W ~0.73 and ~0.98; any hysteresis
  // band inside that range (here 80/90) keeps tripping both thresholds, so
  // the clock never stops moving.
  const WaveRun run = RunWave(3, 0.80, 0.90, /*start_step=*/9, 20.0);
  EXPECT_GT(run.clock_changes, 100);
}

TEST(StabilityTest, GovernorWeightedUtilizationKeepsOscillating) {
  const WaveRun run = RunWave(3, 0.80, 0.90, 9, 20.0);
  ASSERT_GT(run.weighted.size(), 500u);
  const OscillationStats stats =
      AnalyzeOscillation(std::span<const double>(run.weighted).subspan(500));
  EXPECT_GT(stats.amplitude, 0.1);
}

TEST(StabilityTest, LargerNOscillatesLessButLagsMore) {
  // The Fourier argument: larger N attenuates high frequencies more (smaller
  // amplitude) at the cost of a longer reaction lag.
  const auto wave = RectangleWaveSamples(9, 1, 3000);
  const auto avg1 = AvgNFilter(wave, 1);
  const auto avg9 = AvgNFilter(wave, 9);
  const double amp1 = AnalyzeOscillation(avg1, 1000).amplitude;
  const double amp9 = AnalyzeOscillation(avg9, 1000).amplitude;
  EXPECT_GT(amp1, amp9);
  EXPECT_GT(amp9, 0.0);

  // Lag: quanta for W to cross 0.7 from idle.
  auto lag = [](int n) {
    AvgNPredictor predictor(n);
    int quanta = 0;
    while (predictor.Update(1.0) <= 0.7 && quanta < 1000) {
      ++quanta;
    }
    return quanta;
  };
  EXPECT_LT(lag(1), lag(9));
}

TEST(StabilityTest, PureAverageNoBetterThanWeighted) {
  // "our simulations indicated that that policy would perform no better
  // than the weighted averaging policy."
  const auto wave = RectangleWaveSamples(9, 1, 3000);
  const auto sliding = SlidingAverageFilter(wave, 4);
  const double amplitude = AnalyzeOscillation(sliding, 1000).amplitude;
  EXPECT_GT(amplitude, 0.1);  // oscillates too
}

TEST(StabilityTest, PureAverageWithMatchedWindowStillFailsOffPeriod) {
  // A sliding window equal to the wave period is flat...
  const auto wave10 = RectangleWaveSamples(9, 1, 2000);
  const auto matched = SlidingAverageFilter(wave10, 10);
  EXPECT_LT(AnalyzeOscillation(matched, 500).amplitude, 1e-9);
  // ...but "simple averaging suffers from the same problems ... if you do
  // not average the appropriate period": a 7-sample window oscillates.
  const auto mismatched = SlidingAverageFilter(wave10, 7);
  EXPECT_GT(AnalyzeOscillation(mismatched, 500).amplitude, 0.1);
}

TEST(StabilityTest, MpegInducesSameOscillationUnderAvg3) {
  // The paper: "our experimental results with the MPEG player on the Itsy
  // also exhibit this oscillation because that application exhibits the same
  // step-function resource demands exhibited by our example."
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "AVG3-one-one-50-85";
  config.seed = 13;
  config.duration = SimTime::Seconds(30);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.clock_changes, 100);
}

}  // namespace
}  // namespace dcs
