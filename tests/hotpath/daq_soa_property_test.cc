// SoA-vs-scalar differential property suite for the DAQ.
//
// The batched sampling pipeline (Daq::SampleBatched) restructures the
// per-sample loop into contiguous-array passes for the auto-vectoriser; its
// contract is *bitwise* equality with the retained scalar reference
// (DaqConfig::reference_sampling).  This suite hammers that contract across
// randomized power tapes, every noise/rate/resolution combination the
// experiments use, window edge cases, and fault-injected sample drops.

#include "src/daq/daq.h"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/hw/power_tape.h"
#include "src/sim/arena.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace dcs {
namespace {

// A tape with `segments` random power levels at randomly jittered times.
PowerTape RandomTape(std::uint64_t seed, int segments) {
  Rng rng(seed);
  PowerTape tape;
  SimTime t = SimTime::Micros(rng.UniformInt(0, 500));
  for (int i = 0; i < segments; ++i) {
    tape.Set(t, rng.Uniform(0.0, 3.0));
    t = t + SimTime::Micros(rng.UniformInt(1, 4000));
  }
  return tape;
}

// Runs both pipelines over the same window and asserts bitwise equality.
void ExpectBitwiseEqual(const DaqConfig& config, const PowerTape& tape, SimTime begin,
                        SimTime end, const std::string& label) {
  DaqConfig scalar_config = config;
  scalar_config.reference_sampling = true;
  DaqConfig batched_config = config;
  batched_config.reference_sampling = false;

  Daq scalar(scalar_config);
  Daq batched(batched_config);
  const std::span<const double> a = scalar.SampleWindow(tape, begin, end);
  const std::span<const double> b = batched.SampleWindow(tape, begin, end);

  ASSERT_EQ(a.size(), b.size()) << label;
  if (!a.empty()) {
    // memcmp, not ==: the contract is bit-for-bit, not merely value-equal.
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0)
        << label << ": batched pipeline diverged from the scalar reference";
  }
}

TEST(DaqSoaPropertyTest, BatchedMatchesScalarAcrossConfigGrid) {
  const double noise_grid[] = {0.0, 0.5, 1.0, 3.0};
  const double rate_grid[] = {1000.0, 5000.0, 44100.0};
  const int bits_grid[] = {8, 12, 16};
  int case_index = 0;
  for (const double noise : noise_grid) {
    for (const double rate : rate_grid) {
      for (const int bits : bits_grid) {
        DaqConfig config;
        config.noise_lsb = noise;
        config.sample_hz = rate;
        config.adc_bits = bits;
        config.seed = 0x0DA05EEDULL + static_cast<std::uint64_t>(case_index);
        const PowerTape tape =
            RandomTape(1000 + static_cast<std::uint64_t>(case_index), 200);
        ExpectBitwiseEqual(config, tape, SimTime::Millis(1), SimTime::Millis(400),
                           "noise=" + std::to_string(noise) + " hz=" + std::to_string(rate) +
                               " bits=" + std::to_string(bits));
        ++case_index;
      }
    }
  }
}

TEST(DaqSoaPropertyTest, BatchedMatchesScalarOnRandomTapes) {
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    Rng rng(0xC0FFEE00 + trial);
    DaqConfig config;
    config.sample_hz = rng.Uniform(500.0, 20000.0);
    config.noise_lsb = rng.Uniform(0.0, 4.0);
    config.adc_bits = static_cast<int>(rng.UniformInt(6, 16));
    config.seed = rng.Next();
    const PowerTape tape = RandomTape(rng.Next(), static_cast<int>(rng.UniformInt(1, 400)));
    const SimTime begin = SimTime::Micros(rng.UniformInt(0, 2000));
    const SimTime end = begin + SimTime::Micros(rng.UniformInt(1, 300000));
    ExpectBitwiseEqual(config, tape, begin, end, "trial " + std::to_string(trial));
  }
}

TEST(DaqSoaPropertyTest, WindowEdgeCases) {
  const PowerTape tape = RandomTape(7, 50);
  DaqConfig config;
  // Empty window.
  ExpectBitwiseEqual(config, tape, SimTime::Millis(5), SimTime::Millis(5), "empty");
  // Window entirely before the first segment (cursor returns 0.0).
  ExpectBitwiseEqual(config, tape, SimTime::Nanos(0), SimTime::Micros(400), "pre-tape");
  // Window extending far past the last segment.
  ExpectBitwiseEqual(config, tape, SimTime::Millis(10), SimTime::Seconds(2), "post-tape");
  // Exactly one sample; exactly one batch; one past a batch boundary.
  const double period_us = 200.0;  // 5 kHz
  ExpectBitwiseEqual(config, tape, SimTime::Millis(1),
                     SimTime::Millis(1) + SimTime::FromMicrosF(period_us * 1.5), "1 sample");
  ExpectBitwiseEqual(config, tape, SimTime::Millis(1),
                     SimTime::Millis(1) + SimTime::FromMicrosF(period_us * 2048), "1 batch");
  ExpectBitwiseEqual(config, tape, SimTime::Millis(1),
                     SimTime::Millis(1) + SimTime::FromMicrosF(period_us * 2049.5),
                     "batch + 1");
  // Zero-noise and zero-range (sigma==0 on one channel only) variants.
  DaqConfig no_shunt_noise;
  no_shunt_noise.shunt_range_volts = 0.0;
  ExpectBitwiseEqual(no_shunt_noise, tape, SimTime::Millis(1), SimTime::Millis(200),
                     "shunt sigma 0");
  DaqConfig no_supply_noise;
  no_supply_noise.supply_range_volts = 0.0;
  ExpectBitwiseEqual(no_supply_noise, tape, SimTime::Millis(1), SimTime::Millis(200),
                     "supply sigma 0");
}

TEST(DaqSoaPropertyTest, BatchedMatchesScalarUnderFaultDrops) {
  for (const char* spec : {"daq-drop=0.05", "daq-drop=0.5", "storm=0.3"}) {
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;

    const PowerTape tape = RandomTape(21, 300);
    DaqConfig config;
    config.reference_sampling = true;
    Daq scalar(config);
    config.reference_sampling = false;
    Daq batched(config);

    // Each pipeline gets its own injector at the same seed: the drop stream
    // is isolated per fault class, so both see identical drop decisions.
    FaultInjector scalar_faults(plan, /*seed=*/11);
    FaultInjector batched_faults(plan, /*seed=*/11);
    scalar.BindFaults(&scalar_faults);
    batched.BindFaults(&batched_faults);

    const std::span<const double> a =
        scalar.SampleWindow(tape, SimTime::Millis(1), SimTime::Millis(500));
    const std::span<const double> b =
        batched.SampleWindow(tape, SimTime::Millis(1), SimTime::Millis(500));
    ASSERT_EQ(a.size(), b.size()) << spec;
    ASSERT_FALSE(a.empty()) << spec;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(double)), 0) << spec;
    EXPECT_EQ(scalar.dropped_samples(), batched.dropped_samples()) << spec;
    if (std::string(spec) == "daq-drop=0.5") {
      EXPECT_GT(batched.dropped_samples(), 0u) << "drop plan never triggered";
    }
  }
}

TEST(DaqSoaPropertyTest, WrapperAndArenaBindingPreserveSamples) {
  const PowerTape tape = RandomTape(33, 100);
  const SimTime begin = SimTime::Millis(2);
  const SimTime end = SimTime::Millis(300);

  DaqConfig config;
  Daq window_daq(config);
  const std::span<const double> window = window_daq.SampleWindow(tape, begin, end);
  const std::vector<double> window_copy(window.begin(), window.end());

  // SamplePowerWatts is the compatibility wrapper over the same pipeline.
  Daq wrapper_daq(config);
  const std::vector<double> wrapped = wrapper_daq.SamplePowerWatts(tape, begin, end);
  ASSERT_EQ(wrapped.size(), window_copy.size());
  EXPECT_EQ(std::memcmp(wrapped.data(), window_copy.data(),
                        wrapped.size() * sizeof(double)),
            0);

  // Arena-backed sampling is byte-identical to heap-backed sampling.
  Arena arena;
  Daq arena_daq(config, &arena);
  const std::span<const double> arena_samples = arena_daq.SampleWindow(tape, begin, end);
  ASSERT_EQ(arena_samples.size(), window_copy.size());
  EXPECT_EQ(std::memcmp(arena_samples.data(), window_copy.data(),
                        arena_samples.size() * sizeof(double)),
            0);

  // MeasureEnergyJoules integrates the same samples.
  Daq energy_daq(config);
  EXPECT_EQ(energy_daq.MeasureEnergyJoules(tape, begin, end),
            window_daq.EnergyJoules(window_copy));
}

}  // namespace
}  // namespace dcs
