// Allocation steady-state harness: after the first job warms a worker's
// arena, subsequent jobs must not touch the global heap on the simulation
// hot path.  Two layers:
//
//  1. A strict zero-allocation check over the core stack (Simulator, Itsy,
//     Kernel, Daq) built directly against an arena: from kernel start
//     through the run and the DAQ sampling pass, jobs after the first
//     perform literally zero heap allocations.
//  2. A sweep-level check through the production SweepRunner path: per-job
//     heap allocations drop after the first job and are *identical* between
//     later jobs (the remaining allocations are result bookkeeping, which
//     identical configs repeat exactly).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/governor_registry.h"
#include "src/daq/daq.h"
#include "src/exp/device_sim.h"
#include "src/exp/experiment.h"
#include "src/exp/sweep.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/arena.h"
#include "src/sim/simulator.h"
#include "tests/support/alloc_counter.h"

namespace dcs {
namespace {

TEST(AllocSteadyStateTest, WarmCoreStackRunsHeapFree) {
  if (!testing::AllocCounterAvailable()) {
    GTEST_SKIP() << "alloc counter unavailable under sanitizers";
  }

  Arena arena;
  // Governor built once and reinstalled per job, as a long-lived worker
  // would; the dispatch record comes from the registry like production.
  GovernorHandle governor = MakeGovernorDispatch("PAST-peg-peg-93-98");
  ASSERT_NE(governor.governor, nullptr);

  const SimTime duration = SimTime::Seconds(1);
  std::uint64_t delta[3] = {0, 0, 0};
  for (int job = 0; job < 3; ++job) {
    arena.Reset();
    governor.governor->Reset();

    // Per-job setup (object construction, trace reservation) may allocate;
    // the zero-allocation contract covers the run itself.
    Simulator sim(&arena);
    ItsyConfig itsy_config;
    Itsy itsy(sim, itsy_config, &arena);
    KernelConfig kernel_config;
    Kernel kernel(sim, itsy, kernel_config, &arena);
    kernel.InstallPolicy(governor.dispatch);
    kernel.ReserveTraces(
        static_cast<std::size_t>(duration.nanos() / kernel_config.quantum.nanos()));
    Daq daq(DaqConfig{}, &arena);

    const std::uint64_t before = testing::ThreadAllocCount();
    kernel.Start();
    sim.RunUntil(duration);
    itsy.SyncBattery();
    const std::span<const double> samples =
        daq.SampleWindow(itsy.tape(), SimTime::Nanos(0), duration);
    const double joules = daq.EnergyJoules(samples);
    delta[job] = testing::ThreadAllocCount() - before;

    EXPECT_GT(kernel.quanta_elapsed(), 0u) << "job " << job << " never ticked";
    EXPECT_GT(joules, 0.0) << "job " << job << " measured no energy";
  }

  // Job 0 may allocate (arena blocks come from the heap); warmed jobs not.
  EXPECT_EQ(delta[1], 0u) << "second job allocated on the hot path";
  EXPECT_EQ(delta[2], 0u) << "third job allocated on the hot path";
}

TEST(AllocSteadyStateTest, SweepWorkerReachesAllocationSteadyState) {
  if (!testing::AllocCounterAvailable()) {
    GTEST_SKIP() << "alloc counter unavailable under sanitizers";
  }

  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 5;
  config.duration = SimTime::Seconds(1);
  const std::vector<ExperimentConfig> grid(3, config);

  SweepOptions options;
  options.threads = 1;  // jobs run on this thread, so the counters see them
  SweepRunner runner(options);

  std::vector<std::uint64_t> counts;
  counts.reserve(8);
  SweepJobHooks hooks;
  hooks.on_result = [&](int, const SweepJobResult&) {
    counts.push_back(testing::ThreadAllocCount());
  };

  const std::uint64_t base = testing::ThreadAllocCount();
  const std::vector<SweepJobResult> results = runner.Run(grid, hooks);
  ASSERT_EQ(results.size(), 3u);
  for (const SweepJobResult& r : results) {
    ASSERT_TRUE(r.ok()) << r.error;
  }
  ASSERT_EQ(counts.size(), 3u);

  const std::uint64_t first = counts[0] - base;
  const std::uint64_t second = counts[1] - counts[0];
  const std::uint64_t third = counts[2] - counts[1];
  // The first job warms the arena (its blocks are heap allocations) and
  // whatever lazy one-time state the stack keeps; later jobs only pay the
  // result-bookkeeping allocations, which identical configs repeat exactly.
  EXPECT_LT(second, first) << "arena warm-up did not reduce per-job allocations";
  EXPECT_EQ(third, second) << "steady-state jobs differ in allocation count";
}

TEST(AllocSteadyStateTest, FleetDeviceCycleRunsHeapFree) {
  if (!testing::AllocCounterAvailable()) {
    GTEST_SKIP() << "alloc counter unavailable under sanitizers";
  }

  // The fleet worker's inner loop: one DeviceSim cycled through many devices
  // by restoring a shared warmup image, forking the RNG streams and running
  // the tail.  After the first cycle grows containers to their steady-state
  // capacity, a device cycle must be a zero-heap-allocation operation — this
  // is what makes snapshot-clone forking memcpy-speed.
  Arena arena;
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 5;
  config.duration = SimTime::Seconds(1);
  config.itsy.battery = BatteryParams{};
  config.arena = &arena;

  DeviceSim dev(config);
  dev.Start();
  dev.RunUntil(SimTime::Millis(500));
  SnapshotWriter image;
  dev.SaveState(&image);

  std::uint64_t delta[3] = {0, 0, 0};
  for (int cycle = 0; cycle < 3; ++cycle) {
    const std::uint64_t before = testing::ThreadAllocCount();
    SnapshotReader reader(image);
    dev.LoadState(&reader);
    dev.kernel().ForkRngs(static_cast<std::uint64_t>(cycle));
    dev.RunUntil(dev.duration());
    delta[cycle] = testing::ThreadAllocCount() - before;
    ASSERT_TRUE(reader.ok()) << "cycle " << cycle << " failed to restore";
  }

  // Cycle 0 may allocate (containers grow to the tail's high-water mark);
  // warmed cycles must not touch the heap at all.
  EXPECT_EQ(delta[1], 0u) << "second device cycle allocated";
  EXPECT_EQ(delta[2], 0u) << "third device cycle allocated";
}

}  // namespace
}  // namespace dcs
