// Static-dispatch differential suite.
//
// The kernel ticks the installed governor through a function pointer built
// by the registry from the governor's concrete type (PolicyDispatch::For),
// replacing the per-quantum virtual call.  Devirtualisation must be purely
// mechanical: this suite drives the entire governor slate through both
// dispatch paths — the retained legacy vtable path
// (ExperimentConfig::legacy_policy_dispatch) and the static thunk — and
// asserts the runs are observably identical down to the scheduler log, with
// and without an active fault plan.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "src/core/governor_registry.h"
#include "src/exp/experiment.h"

namespace dcs {
namespace {

ExperimentResult RunWithDispatch(const std::string& spec, const std::string& faults,
                                 bool legacy) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = spec;
  config.seed = 23;
  config.duration = SimTime::Seconds(2);
  config.capture_obs = true;
  config.faults = faults;
  config.legacy_policy_dispatch = legacy;
  return RunExperiment(config);
}

void ExpectIdenticalRuns(const ExperimentResult& legacy, const ExperimentResult& fast,
                         const std::string& label) {
  // Scheduler log: the finest-grained observable — every context switch and
  // clock change with microsecond timestamps must match entry for entry.
  ASSERT_TRUE(legacy.obs.captured) << label;
  ASSERT_TRUE(fast.obs.captured) << label;
  ASSERT_EQ(legacy.obs.sched.size(), fast.obs.sched.size()) << label;
  for (std::size_t i = 0; i < legacy.obs.sched.size(); ++i) {
    ASSERT_EQ(legacy.obs.sched[i].time_us, fast.obs.sched[i].time_us)
        << label << " entry " << i;
    ASSERT_EQ(legacy.obs.sched[i].pid, fast.obs.sched[i].pid) << label << " entry " << i;
    ASSERT_EQ(legacy.obs.sched[i].clock_step, fast.obs.sched[i].clock_step)
        << label << " entry " << i;
  }

  // Energy and scheduling metrics, bit for bit (EXPECT_EQ, not NEAR).
  EXPECT_EQ(legacy.energy_joules, fast.energy_joules) << label;
  EXPECT_EQ(legacy.exact_energy_joules, fast.exact_energy_joules) << label;
  EXPECT_EQ(legacy.average_watts, fast.average_watts) << label;
  EXPECT_EQ(legacy.avg_utilization, fast.avg_utilization) << label;
  EXPECT_EQ(legacy.quanta, fast.quanta) << label;
  EXPECT_EQ(legacy.clock_changes, fast.clock_changes) << label;
  EXPECT_EQ(legacy.voltage_transitions, fast.voltage_transitions) << label;
  EXPECT_EQ(legacy.total_stall, fast.total_stall) << label;
  EXPECT_EQ(legacy.step_residency, fast.step_residency) << label;
  EXPECT_EQ(legacy.governor, fast.governor) << label;

  // Deadline outcomes.
  EXPECT_EQ(legacy.deadline_events, fast.deadline_events) << label;
  EXPECT_EQ(legacy.deadline_misses, fast.deadline_misses) << label;
  EXPECT_EQ(legacy.worst_lateness, fast.worst_lateness) << label;

  // Fault-path bookkeeping (all zero on unfaulted runs).
  EXPECT_EQ(legacy.faults.enabled, fast.faults.enabled) << label;
  EXPECT_EQ(legacy.faults.injected_total, fast.faults.injected_total) << label;
  EXPECT_EQ(legacy.faults.transition_retries, fast.faults.transition_retries) << label;
  EXPECT_EQ(legacy.faults.brownouts, fast.faults.brownouts) << label;
  EXPECT_EQ(legacy.faults.dropped_samples, fast.faults.dropped_samples) << label;
  EXPECT_EQ(legacy.faults.invariant_violations, fast.faults.invariant_violations) << label;
}

class DispatchEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DispatchEquivalenceTest, StaticAndVirtualDispatchAreByteIdentical) {
  const std::string spec = GetParam();
  for (const std::string faults : {std::string(), std::string("storm=0.3")}) {
    const ExperimentResult legacy = RunWithDispatch(spec, faults, /*legacy=*/true);
    const ExperimentResult fast = RunWithDispatch(spec, faults, /*legacy=*/false);
    ExpectIdenticalRuns(legacy, fast,
                        spec + (faults.empty() ? " [no faults]" : " [" + faults + "]"));
  }
}

std::string SpecName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, DispatchEquivalenceTest,
                         ::testing::ValuesIn(AllGovernorSpecs()), SpecName);

}  // namespace
}  // namespace dcs
