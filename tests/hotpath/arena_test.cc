// The per-run bump arena: alignment, block reuse across Reset(), geometric
// growth, and the allocator's escape-to-heap semantics that the whole
// arena-binding scheme (experiment/sweep) depends on.

#include "src/sim/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>

#include "tests/support/alloc_counter.h"

namespace dcs {
namespace {

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  void* a = arena.Allocate(24, 8);
  void* b = arena.Allocate(1, 1);
  void* c = arena.Allocate(64, 64);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
  // Writing each region in full must not trample the others.
  std::memset(a, 0xAA, 24);
  std::memset(b, 0xBB, 1);
  std::memset(c, 0xCC, 64);
  EXPECT_EQ(static_cast<unsigned char*>(a)[23], 0xAA);
  EXPECT_EQ(static_cast<unsigned char*>(b)[0], 0xBB);
  EXPECT_EQ(static_cast<unsigned char*>(c)[63], 0xCC);
  EXPECT_GE(arena.allocated_bytes(), 24u + 1u + 64u);
}

TEST(ArenaTest, ResetRetainsBlocksAndReusesStorage) {
  Arena arena(/*first_block_bytes=*/256);
  void* first = arena.Allocate(128, 16);
  const std::size_t blocks_after_warmup = arena.blocks();
  ASSERT_GE(blocks_after_warmup, 1u);

  arena.Reset();
  EXPECT_EQ(arena.allocated_bytes(), 0u);
  EXPECT_EQ(arena.blocks(), blocks_after_warmup) << "Reset must retain blocks";

  // Same request after Reset lands on the same storage: the whole point.
  void* again = arena.Allocate(128, 16);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.blocks(), blocks_after_warmup);
  EXPECT_EQ(arena.resets(), 1u);
}

TEST(ArenaTest, SteadyStateCycleIsHeapAllocationFree) {
  if (!testing::AllocCounterAvailable()) {
    GTEST_SKIP() << "alloc counter unavailable under sanitizers";
  }
  Arena arena(/*first_block_bytes=*/1024);
  // Warm-up cycle allocates blocks from the heap.
  for (int i = 0; i < 8; ++i) {
    arena.Allocate(512, 16);
  }
  arena.Reset();
  const std::uint64_t before = testing::ThreadAllocCount();
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 8; ++i) {
      arena.Allocate(512, 16);
    }
    arena.Reset();
  }
  EXPECT_EQ(testing::ThreadAllocCount(), before)
      << "warmed arena cycles must not touch the heap";
}

TEST(ArenaTest, GrowsGeometricallyAndServesOversizedRequests) {
  Arena arena(/*first_block_bytes=*/64);
  arena.Allocate(64, 8);
  // An oversized request gets its own block rather than failing.
  void* big = arena.Allocate(1 << 20, 32);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big) % 32, 0u);
  EXPECT_GE(arena.capacity_bytes(), (std::size_t{1} << 20) + 64u);
  // Growth is geometric: a long run of small allocations needs few blocks.
  Arena small(/*first_block_bytes=*/64);
  for (int i = 0; i < 10000; ++i) {
    small.Allocate(64, 8);
  }
  EXPECT_LE(small.blocks(), 20u);
}

TEST(ArenaVectorTest, BindsToArenaAndCopiesEscapeToHeap) {
  Arena arena;
  ArenaVector<int> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) {
    v.push_back(i);
  }
  EXPECT_EQ(v.get_allocator().arena(), &arena);
  EXPECT_GT(arena.allocated_bytes(), 0u);

  // Copy construction must select a heap allocator: copies escape jobs.
  ArenaVector<int> copy = v;
  EXPECT_EQ(copy.get_allocator().arena(), nullptr);
  EXPECT_EQ(copy.size(), v.size());
  EXPECT_EQ(copy[999], 999);

  // Copy assignment into a default (heap) vector must stay heap-backed:
  // allocators compare unequal and do not propagate on copy assignment.
  ArenaVector<int> assigned;
  assigned = v;
  EXPECT_EQ(assigned.get_allocator().arena(), nullptr);
  EXPECT_EQ(assigned[500], 500);
}

TEST(ArenaVectorTest, HeapModeAllocatorBehavesLikeStdAllocator) {
  ArenaVector<double> v;  // default allocator: heap mode
  EXPECT_EQ(v.get_allocator().arena(), nullptr);
  for (int i = 0; i < 100; ++i) {
    v.push_back(i * 0.5);
  }
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v[42], 21.0);
  EXPECT_TRUE(ArenaAllocator<double>() == ArenaAllocator<double>());
  Arena arena;
  EXPECT_TRUE(ArenaAllocator<double>(&arena) != ArenaAllocator<double>());
}

}  // namespace
}  // namespace dcs
