#include "src/daq/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(StatsTest, EmptySample) {
  const Summary s = Summarize({});
  EXPECT_EQ(s.n, 0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.ci95_half, 0.0);
}

TEST(StatsTest, SingleSampleZeroWidthInterval) {
  const std::vector<double> one = {5.0};
  const Summary s = Summarize(one);
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(StatsTest, KnownValues) {
  const std::vector<double> data = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summarize(data);
  EXPECT_EQ(s.n, 8);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_NEAR(s.stddev, 2.138, 0.001);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  // t(7, 0.975) = 2.365 -> half width = 2.365 * 2.138 / sqrt(8) = 1.788.
  EXPECT_NEAR(s.ci95_half, 1.788, 0.005);
}

TEST(StatsTest, CiBoundsAndPercent) {
  const std::vector<double> data = {10.0, 12.0, 11.0, 9.0, 13.0};
  const Summary s = Summarize(data);
  EXPECT_NEAR(s.ci_low(), s.mean - s.ci95_half, 1e-12);
  EXPECT_NEAR(s.ci_high(), s.mean + s.ci95_half, 1e-12);
  EXPECT_NEAR(s.ci_percent(), 100.0 * s.ci95_half / s.mean, 1e-12);
}

TEST(StatsTest, ConstantSampleZeroWidth) {
  const std::vector<double> data(10, 3.3);
  const Summary s = Summarize(data);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_half, 0.0);
}

TEST(TCritical95Test, KnownValues) {
  EXPECT_NEAR(TCritical95(1), 12.706, 1e-3);
  EXPECT_NEAR(TCritical95(4), 2.776, 1e-3);
  EXPECT_NEAR(TCritical95(9), 2.262, 1e-3);
  EXPECT_NEAR(TCritical95(30), 2.042, 1e-3);
  EXPECT_NEAR(TCritical95(1000), 1.960, 1e-3);
}

TEST(TCritical95Test, MonotoneDecreasing) {
  double prev = TCritical95(1);
  for (int df = 2; df <= 200; ++df) {
    const double t = TCritical95(df);
    EXPECT_LE(t, prev + 1e-12) << "df " << df;
    prev = t;
  }
  EXPECT_GE(prev, 1.959);
}

TEST(TCritical95Test, InvalidDfIsZero) { EXPECT_EQ(TCritical95(0), 0.0); }

TEST(TCritical95Test, MatchesStandardTableAcrossAnchors) {
  // Two-sided 95% critical values straight from the standard t-table.
  const struct {
    int df;
    double t;
  } anchors[] = {{2, 4.303},  {3, 3.182},  {5, 2.571},   {7, 2.365}, {10, 2.228},
                 {15, 2.131}, {20, 2.086}, {25, 2.060},  {29, 2.045}, {40, 2.021},
                 {60, 2.000}, {120, 1.980}};
  for (const auto& anchor : anchors) {
    EXPECT_NEAR(TCritical95(anchor.df), anchor.t, 1e-3) << "df " << anchor.df;
  }
  // Interpolated region stays between its anchors.
  EXPECT_GT(TCritical95(50), TCritical95(60));
  EXPECT_LT(TCritical95(50), TCritical95(40));
}

TEST(StatsTest, CiHalfWidthUsesTCriticalExactly) {
  // n = 2: mean 2, sample stddev sqrt(2), so the half-width collapses to
  // t(1) itself: 12.706 * sqrt(2) / sqrt(2).
  const std::vector<double> pair = {1.0, 3.0};
  const Summary s2 = Summarize(pair);
  EXPECT_NEAR(s2.ci95_half, 12.706, 1e-9);

  // n = 5: {9,10,11,12,13} has mean 11, stddev sqrt(2.5); half-width =
  // t(4) * sqrt(2.5) / sqrt(5) = 2.776 * 0.7071... = 1.96293...
  const std::vector<double> five = {9.0, 10.0, 11.0, 12.0, 13.0};
  const Summary s5 = Summarize(five);
  EXPECT_DOUBLE_EQ(s5.mean, 11.0);
  EXPECT_NEAR(s5.ci95_half, 2.776 * std::sqrt(2.5) / std::sqrt(5.0), 1e-9);
}

TEST(StatsTest, CoverageSanity) {
  // The 95% CI should contain the true mean in most repeated experiments.
  Rng rng(17);
  int contained = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample;
    for (int i = 0; i < 10; ++i) {
      sample.push_back(rng.Gaussian(100.0, 5.0));
    }
    const Summary s = Summarize(sample);
    if (s.ci_low() <= 100.0 && 100.0 <= s.ci_high()) {
      ++contained;
    }
  }
  EXPECT_NEAR(static_cast<double>(contained) / trials, 0.95, 0.04);
}

}  // namespace
}  // namespace dcs
