#include "src/daq/daq.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/daq/stats.h"
#include "src/fault/fault_injector.h"
#include "src/sim/rng.h"

namespace dcs {
namespace {

PowerTape ConstantTape(double watts) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), watts);
  return tape;
}

TEST(DaqTest, SampleCountMatchesRateAndWindow) {
  Daq daq;
  const PowerTape tape = ConstantTape(1.0);
  const auto samples = daq.SamplePowerWatts(tape, SimTime::Zero(), SimTime::Seconds(2));
  EXPECT_EQ(samples.size(), 10000u);  // 5000 Hz * 2 s
}

TEST(DaqTest, SamplePeriodIs200Microseconds) {
  Daq daq;
  EXPECT_EQ(daq.SamplePeriod(), SimTime::Micros(200));
}

TEST(DaqTest, MeasuresConstantPowerAccurately) {
  Daq daq;
  const PowerTape tape = ConstantTape(1.4);
  const auto samples = daq.SamplePowerWatts(tape, SimTime::Zero(), SimTime::Seconds(1));
  const double avg = daq.AverageWatts(samples);
  // ADC quantisation + noise keep the error well under 1%.
  EXPECT_NEAR(avg, 1.4, 0.014);
}

TEST(DaqTest, EnergyIsRectangleRule) {
  Daq daq;
  const PowerTape tape = ConstantTape(2.0);
  const double joules = daq.MeasureEnergyJoules(tape, SimTime::Zero(), SimTime::Seconds(3));
  EXPECT_NEAR(joules, 6.0, 0.06);
}

TEST(DaqTest, EnergyTracksStepChanges) {
  Daq daq;
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 3.0);
  const double joules = daq.MeasureEnergyJoules(tape, SimTime::Zero(), SimTime::Seconds(2));
  EXPECT_NEAR(joules, 4.0, 0.05);
}

TEST(DaqTest, MeasurementCloseToGroundTruthOnRealisticTape) {
  Daq daq;
  PowerTape tape;
  // Alternate busy/idle segments like an MPEG run.
  for (int i = 0; i < 100; ++i) {
    tape.Set(SimTime::Millis(20 * i), i % 2 == 0 ? 1.43 : 0.74);
  }
  const SimTime end = SimTime::Millis(2000);
  const double measured = daq.MeasureEnergyJoules(tape, SimTime::Zero(), end);
  const double exact = tape.EnergyJoules(SimTime::Zero(), end);
  EXPECT_NEAR(measured, exact, exact * 0.01);
}

TEST(DaqTest, EmptyWindowYieldsNothing) {
  Daq daq;
  const PowerTape tape = ConstantTape(1.0);
  EXPECT_TRUE(daq.SamplePowerWatts(tape, SimTime::Seconds(1), SimTime::Seconds(1)).empty());
  EXPECT_TRUE(daq.SamplePowerWatts(tape, SimTime::Seconds(2), SimTime::Seconds(1)).empty());
  EXPECT_EQ(daq.AverageWatts({}), 0.0);
}

TEST(DaqTest, NoiseDisabledGivesQuantisationOnlyError) {
  DaqConfig config;
  config.noise_lsb = 0.0;
  Daq daq(config);
  const PowerTape tape = ConstantTape(1.0);
  const auto samples = daq.SamplePowerWatts(tape, SimTime::Zero(), SimTime::Millis(100));
  // All samples identical (pure quantisation).
  for (const double s : samples) {
    EXPECT_DOUBLE_EQ(s, samples[0]);
  }
  EXPECT_NEAR(samples[0], 1.0, 0.002);
}

TEST(DaqTest, SixteenBitQuantisationVisible) {
  DaqConfig config;
  config.noise_lsb = 0.0;
  Daq daq(config);
  // Shunt LSB = 2*0.1/65536 V -> current LSB ~152.6 uA -> power LSB ~0.47 mW.
  const PowerTape a = ConstantTape(1.0);
  const PowerTape b = ConstantTape(1.0001);  // less than one LSB away
  const auto sa = daq.SamplePowerWatts(a, SimTime::Zero(), SimTime::Millis(1));
  const auto sb = daq.SamplePowerWatts(b, SimTime::Zero(), SimTime::Millis(1));
  EXPECT_DOUBLE_EQ(sa[0], sb[0]);
}

TEST(DaqTest, RepeatedRunsTightConfidenceInterval) {
  // The paper: "we found the 95% confidence interval of the energy to be
  // less than 0.7% of the mean energy."
  PowerTape tape;
  for (int i = 0; i < 50; ++i) {
    tape.Set(SimTime::Millis(40 * i), i % 2 == 0 ? 1.4 : 0.8);
  }
  std::vector<double> energies;
  for (int run = 0; run < 8; ++run) {
    DaqConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(run);
    Daq daq(config);
    energies.push_back(daq.MeasureEnergyJoules(tape, SimTime::Zero(), SimTime::Seconds(2)));
  }
  const Summary s = Summarize(energies);
  EXPECT_LT(s.ci_percent(), 0.7);
}

// Property sweep: measurement error grows with configured ADC noise but
// stays within the analytic bound (noise averages as 1/sqrt(n) over the
// window, quantisation adds at most one LSB of bias).
class DaqNoisePropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(DaqNoisePropertyTest, AverageErrorBounded) {
  DaqConfig config;
  config.noise_lsb = GetParam();
  config.seed = 77;
  Daq daq(config);
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.3);
  const auto samples = daq.SamplePowerWatts(tape, SimTime::Zero(), SimTime::Seconds(1));
  const double avg = daq.AverageWatts(samples);
  // Single-sample noise sigma: noise_lsb LSBs on the shunt channel; one LSB
  // of shunt voltage is ~0.47 mW of power.  Averaged over 5000 samples, even
  // a generous 6-sigma bound is tiny; add one LSB for quantisation bias.
  const double per_sample_mw = 0.48 * (GetParam() + 1.0);
  const double bound_w = (6.0 * per_sample_mw / std::sqrt(5000.0) + 0.48) * 1e-3;
  EXPECT_NEAR(avg, 1.3, bound_w) << "noise " << GetParam() << " LSB";
}

TEST_P(DaqNoisePropertyTest, EnergyMatchesAverageTimesTime) {
  DaqConfig config;
  config.noise_lsb = GetParam();
  Daq daq(config);
  PowerTape tape;
  tape.Set(SimTime::Zero(), 0.9);
  const auto samples = daq.SamplePowerWatts(tape, SimTime::Zero(), SimTime::Seconds(2));
  EXPECT_NEAR(daq.EnergyJoules(samples), daq.AverageWatts(samples) * 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(NoiseSweep, DaqNoisePropertyTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 4.0));

TEST(DaqTest, FastPathMatchesFaultPathWhenNothingDrops) {
  // SamplePowerWatts takes a branch-free fast path when no fault injector is
  // bound.  A bound injector whose drop probability is zero must produce the
  // exact same bytes — the fast path is an optimisation, not a behaviour.
  Rng rng(0xFA57);
  PowerTape tape;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < 300; ++i) {
    tape.Set(t, rng.Uniform(0.1, 2.5));
    t += SimTime::Micros(rng.UniformInt(100, 9'000));
  }
  Daq fast;
  FaultPlan plan;  // all probabilities zero: DropSample() never fires
  FaultInjector injector(plan);
  Daq faulted;
  faulted.BindFaults(&injector);
  const auto a = fast.SamplePowerWatts(tape, SimTime::Zero(), t);
  const auto b = faulted.SamplePowerWatts(tape, SimTime::Zero(), t);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "sample " << i;
  }
  EXPECT_EQ(faulted.dropped_samples(), 0u);
}

TEST(DaqTest, ZeroNoiseSamplingMatchesQuantisedTape) {
  // With noise off, each sample is the tape's instantaneous power pushed
  // through the two ADC quantisers — recompute that pipeline per sample with
  // plain WattsAt and demand bitwise equality with the cursor-driven loop.
  Rng rng(0xFA58);
  PowerTape tape;
  SimTime t = SimTime::Zero();
  for (int i = 0; i < 200; ++i) {
    tape.Set(t, rng.Uniform(0.1, 2.5));
    t += SimTime::Micros(rng.UniformInt(100, 9'000));
  }
  DaqConfig config;
  config.noise_lsb = 0.0;
  Daq daq(config);
  const auto samples = daq.SamplePowerWatts(tape, SimTime::Zero(), t);
  const double steps = std::pow(2.0, config.adc_bits);
  const double shunt_lsb = 2.0 * config.shunt_range_volts / steps;
  const double supply_lsb = config.supply_range_volts / steps;
  const double period_s = 1.0 / config.sample_hz;
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const SimTime at = SimTime::Zero() + SimTime::FromSecondsF(i * period_s);
    const double watts = tape.WattsAt(at);
    const double shunt_v =
        std::round(watts / config.supply_volts * config.shunt_ohms / shunt_lsb) * shunt_lsb;
    const double supply_v = std::round(config.supply_volts / supply_lsb) * supply_lsb;
    ASSERT_EQ(samples[i], shunt_v / config.shunt_ohms * supply_v) << "sample " << i;
  }
}

TEST(GpioTriggerTest, LatchesWindowsFromEdges) {
  Gpio gpio;
  GpioTrigger trigger(5);
  trigger.Attach(gpio);
  gpio.Toggle(5, SimTime::Seconds(1));
  EXPECT_TRUE(trigger.open_window_start().has_value());
  gpio.Toggle(5, SimTime::Seconds(4));
  ASSERT_EQ(trigger.windows().size(), 1u);
  EXPECT_EQ(trigger.windows()[0].first, SimTime::Seconds(1));
  EXPECT_EQ(trigger.windows()[0].second, SimTime::Seconds(4));
  EXPECT_FALSE(trigger.open_window_start().has_value());
}

TEST(GpioTriggerTest, IgnoresOtherPins) {
  Gpio gpio;
  GpioTrigger trigger(5);
  trigger.Attach(gpio);
  gpio.Toggle(3, SimTime::Seconds(1));
  EXPECT_FALSE(trigger.open_window_start().has_value());
}

TEST(GpioTriggerTest, MultipleWindows) {
  Gpio gpio;
  GpioTrigger trigger(5);
  trigger.Attach(gpio);
  for (int i = 0; i < 6; ++i) {
    gpio.Toggle(5, SimTime::Seconds(i));
  }
  EXPECT_EQ(trigger.windows().size(), 3u);
}

}  // namespace
}  // namespace dcs
