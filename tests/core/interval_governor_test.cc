#include "src/core/interval_governor.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

UtilizationSample Sample(double utilization, int step,
                         CoreVoltage voltage = CoreVoltage::kHigh) {
  UtilizationSample s;
  s.utilization = utilization;
  s.step = step;
  s.voltage = voltage;
  return s;
}

std::unique_ptr<IntervalGovernor> MakeGov(
    std::unique_ptr<UtilizationPredictor> predictor, const char* up, const char* down,
    double lo, double hi, bool voltage_scaling = false) {
  IntervalGovernorConfig config;
  config.thresholds = Thresholds{lo, hi};
  config.voltage_scaling = voltage_scaling;
  return std::make_unique<IntervalGovernor>(std::move(predictor), MakeSpeedPolicy(up),
                                            MakeSpeedPolicy(down), config);
}

TEST(IntervalGovernorTest, NameEncodesConfiguration) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "peg", "peg", 0.93, 0.98);
  EXPECT_STREQ(gov->Name(), "PAST-peg-peg-93/98");
  auto gov_vs = MakeGov(std::make_unique<AvgNPredictor>(9), "one", "double", 0.50, 0.70,
                        true);
  EXPECT_STREQ(gov_vs->Name(), "AVG9-one-double-50/70-vs");
}

TEST(IntervalGovernorTest, HighUtilizationScalesUp) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "one", "one", 0.50, 0.70);
  const auto request = gov->OnQuantum(Sample(0.9, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 6);
  EXPECT_EQ(gov->scale_ups(), 1);
}

TEST(IntervalGovernorTest, LowUtilizationScalesDown) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "one", "one", 0.50, 0.70);
  const auto request = gov->OnQuantum(Sample(0.2, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 4);
  EXPECT_EQ(gov->scale_downs(), 1);
}

TEST(IntervalGovernorTest, HysteresisBandHoldsSteady) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "one", "one", 0.50, 0.70);
  EXPECT_FALSE(gov->OnQuantum(Sample(0.6, 5)).has_value());
  EXPECT_FALSE(gov->OnQuantum(Sample(0.50, 5)).has_value());  // at the edge: no change
  EXPECT_FALSE(gov->OnQuantum(Sample(0.70, 5)).has_value());
}

TEST(IntervalGovernorTest, PegJumpsToExtremes) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "peg", "peg", 0.93, 0.98);
  EXPECT_EQ(gov->OnQuantum(Sample(1.0, 4))->step, 10);
  EXPECT_EQ(gov->OnQuantum(Sample(0.5, 4))->step, 0);
}

TEST(IntervalGovernorTest, NoRequestAtBoundarySteps) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "one", "one", 0.50, 0.70);
  EXPECT_FALSE(gov->OnQuantum(Sample(1.0, 10)).has_value());  // already at max
  EXPECT_FALSE(gov->OnQuantum(Sample(0.0, 0)).has_value());   // already at min
}

TEST(IntervalGovernorTest, Avg9LagDelaysScaleUp) {
  // From idle, AVG9 with a 70% threshold takes 12 quanta to scale up.
  auto gov = MakeGov(std::make_unique<AvgNPredictor>(9), "one", "one", 0.50, 0.70);
  int quanta = 0;
  while (!gov->OnQuantum(Sample(1.0, 10)).has_value() && quanta < 100) {
    ++quanta;
  }
  // The sample's step is 10 (max) so up-requests are invisible; use a mid
  // step instead to detect the first up decision.
  gov->Reset();
  quanta = 0;
  std::optional<SpeedRequest> request;
  do {
    request = gov->OnQuantum(Sample(1.0, 5));
    ++quanta;
  } while ((!request.has_value() || request->step <= 5) && quanta < 100);
  EXPECT_EQ(quanta, 12);
}

TEST(IntervalGovernorTest, VoltageScalingFollowsStep) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "peg", "peg", 0.50, 0.70, true);
  // Scale down from the top: step 0 <= 7, so the rail drops too.
  const auto down = gov->OnQuantum(Sample(0.2, 10));
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->step, 0);
  ASSERT_TRUE(down->voltage.has_value());
  EXPECT_EQ(*down->voltage, CoreVoltage::kLow);
  // Scale up from a low-voltage state: rail must come back to high.
  const auto up = gov->OnQuantum(Sample(1.0, 0, CoreVoltage::kLow));
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->step, 10);
  ASSERT_TRUE(up->voltage.has_value());
  EXPECT_EQ(*up->voltage, CoreVoltage::kHigh);
}

TEST(IntervalGovernorTest, VoltageRequestEvenWithoutStepChange) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "peg", "peg", 0.50, 0.70, true);
  // In the hysteresis band at a slow step but still on the high rail: the
  // governor asks for the low rail.
  const auto request = gov->OnQuantum(Sample(0.6, 3, CoreVoltage::kHigh));
  ASSERT_TRUE(request.has_value());
  EXPECT_FALSE(request->step.has_value());
  ASSERT_TRUE(request->voltage.has_value());
  EXPECT_EQ(*request->voltage, CoreVoltage::kLow);
}

TEST(IntervalGovernorTest, NoVoltageScalingWhenDisabled) {
  auto gov = MakeGov(std::make_unique<PastPredictor>(), "peg", "peg", 0.50, 0.70, false);
  const auto request = gov->OnQuantum(Sample(0.2, 10));
  ASSERT_TRUE(request.has_value());
  EXPECT_FALSE(request->voltage.has_value());
}

TEST(IntervalGovernorTest, ResetClearsPredictorAndCounters) {
  auto gov = MakeGov(std::make_unique<AvgNPredictor>(9), "peg", "peg", 0.50, 0.70);
  for (int i = 0; i < 20; ++i) {
    gov->OnQuantum(Sample(1.0, 5));
  }
  EXPECT_GT(gov->weighted_utilization(), 0.5);
  gov->Reset();
  EXPECT_DOUBLE_EQ(gov->weighted_utilization(), 0.0);
  EXPECT_EQ(gov->scale_ups(), 0);
  EXPECT_EQ(gov->scale_downs(), 0);
}

TEST(IntervalGovernorTest, RespectsConfiguredStepRange) {
  IntervalGovernorConfig config;
  config.thresholds = Thresholds{0.50, 0.70};
  config.min_step = 3;
  config.max_step = 8;
  IntervalGovernor gov(std::make_unique<PastPredictor>(), MakeSpeedPolicy("peg"),
                       MakeSpeedPolicy("peg"), config);
  EXPECT_EQ(gov.OnQuantum(Sample(1.0, 5))->step, 8);
  EXPECT_EQ(gov.OnQuantum(Sample(0.1, 5))->step, 3);
}

TEST(IntervalGovernorTest, MakePastPegPegMatchesPaperBestPolicy) {
  auto gov = MakePastPegPeg(0.93, 0.98, false);
  EXPECT_STREQ(gov->Name(), "PAST-peg-peg-93/98");
  // >98% scales up, <93% scales down, between: no change.
  EXPECT_EQ(gov->OnQuantum(Sample(0.99, 5))->step, 10);
  EXPECT_EQ(gov->OnQuantum(Sample(0.92, 5))->step, 0);
  EXPECT_FALSE(gov->OnQuantum(Sample(0.95, 5)).has_value());
}

// Table 1 shape: AVG9 with 70%/50% thresholds on 15 active + 5 idle quanta,
// starting from an idle system at the bottom step, produces exactly the
// paper's annotations: 5 "Scale up" rows and 1 "Scale down" row.
TEST(IntervalGovernorTest, PaperTable1ScaleAnnotations) {
  auto gov = MakeGov(std::make_unique<AvgNPredictor>(9), "one", "one", 0.50, 0.70);
  int step = 0;  // idle system starts at the bottom, so early W < 50% is moot
  auto feed = [&](double u) {
    const auto request = gov->OnQuantum(Sample(u, step));
    if (request.has_value() && request->step.has_value()) {
      step = *request->step;
    }
  };
  for (int i = 0; i < 15; ++i) {
    feed(1.0);
  }
  EXPECT_EQ(gov->scale_ups(), 4);  // W crosses 0.70 at quantum 12 of 15
  for (int i = 0; i < 5; ++i) {
    feed(0.0);
  }
  // The first idle quantum still has W = 71.5% > 70% (the lag the paper
  // highlights), so one more scale-up fires before W sinks below 50%.
  EXPECT_EQ(gov->scale_ups(), 5);
  EXPECT_EQ(gov->scale_downs(), 1);
}

}  // namespace
}  // namespace dcs
