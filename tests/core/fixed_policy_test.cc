#include "src/core/fixed_policy.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

UtilizationSample Sample(int step, CoreVoltage voltage = CoreVoltage::kHigh) {
  UtilizationSample s;
  s.step = step;
  s.voltage = voltage;
  return s;
}

TEST(FixedPolicyTest, RequestsTargetOnce) {
  FixedPolicy policy(5);
  const auto first = policy.OnQuantum(Sample(10));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->step, 5);
  // Once at the target, stays silent.
  EXPECT_FALSE(policy.OnQuantum(Sample(5)).has_value());
}

TEST(FixedPolicyTest, ReassertsIfStateDrifts) {
  FixedPolicy policy(5);
  policy.OnQuantum(Sample(10));
  // Something else changed the clock: the policy pins it back.
  const auto again = policy.OnQuantum(Sample(7));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->step, 5);
}

TEST(FixedPolicyTest, AlreadyAtTargetNeverRequests) {
  FixedPolicy policy(10);
  EXPECT_FALSE(policy.OnQuantum(Sample(10)).has_value());
}

TEST(FixedPolicyTest, VoltageRequestIncluded) {
  FixedPolicy policy(5, CoreVoltage::kLow);
  const auto request = policy.OnQuantum(Sample(10, CoreVoltage::kHigh));
  ASSERT_TRUE(request.has_value());
  ASSERT_TRUE(request->voltage.has_value());
  EXPECT_EQ(*request->voltage, CoreVoltage::kLow);
}

TEST(FixedPolicyTest, StepClamped) {
  EXPECT_EQ(FixedPolicy(99).step(), 10);
  EXPECT_EQ(FixedPolicy(-1).step(), 0);
}

TEST(FixedPolicyTest, NameIncludesFrequencyAndVoltage) {
  FixedPolicy policy(5, CoreVoltage::kLow);
  EXPECT_STREQ(policy.Name(), "fixed-132.7MHz-1.23V");
}

TEST(FixedPolicyTest, ResetReapplies) {
  FixedPolicy policy(5);
  policy.OnQuantum(Sample(10));
  policy.Reset();
  EXPECT_TRUE(policy.OnQuantum(Sample(10)).has_value());
}

}  // namespace
}  // namespace dcs
