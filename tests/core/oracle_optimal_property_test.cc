// Property suite for the offline-optimal schedule (RunOfflineOptimal).
//
// The solver claims: among all schedules that (a) never execute work before
// it arrives, (b) finish each interval's work within D quanta, and (c) fit
// inside a quantum, its schedule minimizes convex energy.  Random traces
// probe that claim from four directions — the output is feasible, conserves
// work, collapses to run-in-place at D=1, and no feasibility-preserving
// perturbation (random mass moved between two intervals, the "±ε jitter
// repaired to feasibility" probe) ever lowers the energy.

#include "src/core/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/sim/rng.h"

namespace dcs {
namespace {

constexpr double kQ = 0.01;  // 10 ms quantum, matching the kernel default

struct RandomCase {
  std::vector<double> work;
  int deadline_quanta = 1;
};

RandomCase DrawCase(Rng& rng) {
  RandomCase c;
  const int n = static_cast<int>(rng.UniformInt(1, 24));
  c.deadline_quanta = static_cast<int>(rng.UniformInt(1, n + 4));
  c.work.resize(static_cast<std::size_t>(n));
  for (double& w : c.work) {
    const double r = rng.NextDouble();
    // Mix of idle intervals, saturated intervals, and partial load.
    w = r < 0.2 ? 0.0 : r < 0.3 ? kQ : rng.NextDouble() * kQ;
  }
  return c;
}

std::vector<double> Cumulative(const std::vector<double>& per_interval) {
  std::vector<double> cum(per_interval.size() + 1, 0.0);
  for (std::size_t t = 0; t < per_interval.size(); ++t) {
    cum[t + 1] = cum[t] + per_interval[t];
  }
  return cum;
}

double AboveIdleJoules(const EnergyModel& model, const std::vector<double>& work) {
  double joules = 0.0;
  for (const double w : work) {
    joules += kQ * model.AboveIdleWatts(w / kQ);
  }
  return joules;
}

TEST(OracleOptimalPropertyTest, ScheduleIsFeasibleAndConservesWork) {
  const EnergyModel model = MakeItsyEnergyModel();
  Rng rng(0x0971);
  for (int trial = 0; trial < 500; ++trial) {
    const RandomCase c = DrawCase(rng);
    const OfflineOptimalResult res = RunOfflineOptimal(c.work, kQ, c.deadline_quanta, model);
    ASSERT_EQ(res.work.size(), c.work.size()) << "trial " << trial;

    const std::vector<double> cum = Cumulative(c.work);
    const std::vector<double> sched = Cumulative(res.work);
    const std::size_t n = c.work.size();
    for (std::size_t k = 0; k <= n; ++k) {
      // Arrival causality: never ahead of the work that exists.
      EXPECT_LE(sched[k], cum[k] + 1e-9) << "trial " << trial << " k " << k;
      // Deadline: work from interval t is finished by t + D.
      const double floor =
          k >= static_cast<std::size_t>(c.deadline_quanta)
              ? cum[k - static_cast<std::size_t>(c.deadline_quanta) + 1]
              : 0.0;
      EXPECT_GE(sched[k], floor - 1e-9) << "trial " << trial << " k " << k;
    }
    // All work done by the end, and every interval fits in its quantum.
    EXPECT_NEAR(sched[n], cum[n], 1e-9) << "trial " << trial;
    for (const double w : res.work) {
      EXPECT_GE(w, -1e-12) << "trial " << trial;
      EXPECT_LE(w, kQ + 1e-9) << "trial " << trial;
    }
    EXPECT_NEAR(res.peak_speed, *std::max_element(res.work.begin(), res.work.end()) / kQ,
                1e-9)
        << "trial " << trial;
  }
}

TEST(OracleOptimalPropertyTest, DeadlineOneCollapsesToRunInPlace) {
  // D=1 leaves no slack: the only feasible schedule is the input itself.
  const EnergyModel model = MakeItsyEnergyModel();
  Rng rng(0x0972);
  for (int trial = 0; trial < 200; ++trial) {
    RandomCase c = DrawCase(rng);
    const OfflineOptimalResult res = RunOfflineOptimal(c.work, kQ, 1, model);
    for (std::size_t t = 0; t < c.work.size(); ++t) {
      EXPECT_NEAR(res.work[t], c.work[t], 1e-9) << "trial " << trial << " t " << t;
    }
  }
}

TEST(OracleOptimalPropertyTest, EnergyDecomposesIntoIdleFloorPlusHullCost) {
  const EnergyModel model = MakeItsyEnergyModel();
  Rng rng(0x0973);
  for (int trial = 0; trial < 200; ++trial) {
    const RandomCase c = DrawCase(rng);
    const OfflineOptimalResult res = RunOfflineOptimal(c.work, kQ, c.deadline_quanta, model);
    EXPECT_NEAR(res.above_idle_joules, AboveIdleJoules(model, res.work), 1e-9);
    EXPECT_NEAR(res.energy_joules,
                res.above_idle_joules +
                    static_cast<double>(c.work.size()) * kQ * model.idle_watts,
                1e-9);
  }
}

TEST(OracleOptimalPropertyTest, ReplicatingTheTraceNeverBeatsTheSolver) {
  // The identity schedule (run each interval's work in place) is feasible
  // for every D >= 1, so it upper-bounds the optimum.
  const EnergyModel model = MakeItsyEnergyModel();
  Rng rng(0x0974);
  for (int trial = 0; trial < 300; ++trial) {
    const RandomCase c = DrawCase(rng);
    const OfflineOptimalResult res = RunOfflineOptimal(c.work, kQ, c.deadline_quanta, model);
    EXPECT_LE(res.above_idle_joules, AboveIdleJoules(model, c.work) + 1e-9)
        << "trial " << trial;
  }
}

TEST(OracleOptimalPropertyTest, ConstantSpeedWinsWheneverItIsFeasible) {
  // When the flat schedule (total work spread evenly) respects arrival
  // causality, Jensen says nothing beats it — the solver must match or beat
  // its energy.
  const EnergyModel model = MakeItsyEnergyModel();
  Rng rng(0x0975);
  int exercised = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const RandomCase c = DrawCase(rng);
    const std::size_t n = c.work.size();
    if (c.deadline_quanta < static_cast<int>(n)) {
      continue;  // flat schedule could miss a deadline; not the case under test
    }
    const std::vector<double> cum = Cumulative(c.work);
    const double flat = cum[n] / static_cast<double>(n);
    bool feasible = true;
    for (std::size_t k = 1; k <= n; ++k) {
      if (static_cast<double>(k) * flat > cum[k] + 1e-12) {
        feasible = false;
        break;
      }
    }
    if (!feasible) {
      continue;
    }
    ++exercised;
    const OfflineOptimalResult res = RunOfflineOptimal(c.work, kQ, c.deadline_quanta, model);
    const std::vector<double> constant(n, flat);
    EXPECT_LE(res.above_idle_joules, AboveIdleJoules(model, constant) + 1e-9)
        << "trial " << trial;
  }
  EXPECT_GT(exercised, 20);  // the guard must not vacuously skip everything
}

TEST(OracleOptimalPropertyTest, FeasiblePerturbationsNeverLowerEnergy) {
  // Local optimality probe: move a random amount of work between two
  // intervals of the solver's schedule, capped so the cumulative profile
  // stays inside the feasibility corridor, and check the energy never drops.
  // Over enough trials this walks the whole neighbourhood of the returned
  // schedule; a single counterexample disproves optimality.
  const EnergyModel model = MakeItsyEnergyModel();
  Rng rng(0x0976);
  for (int trial = 0; trial < 400; ++trial) {
    const RandomCase c = DrawCase(rng);
    const std::size_t n = c.work.size();
    if (n < 2) {
      continue;
    }
    const OfflineOptimalResult res = RunOfflineOptimal(c.work, kQ, c.deadline_quanta, model);
    const std::vector<double> cum = Cumulative(c.work);
    const std::vector<double> sched = Cumulative(res.work);
    std::vector<double> lower(n + 1, 0.0);
    for (std::size_t k = 0; k <= n; ++k) {
      lower[k] = k >= static_cast<std::size_t>(c.deadline_quanta)
                     ? cum[k - static_cast<std::size_t>(c.deadline_quanta) + 1]
                     : 0.0;
    }
    lower[n] = cum[n];
    const double base = res.above_idle_joules;

    for (int rep = 0; rep < 60; ++rep) {
      std::size_t i = static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(n) - 1));
      std::size_t j = static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(n) - 1));
      if (i == j) {
        continue;
      }
      if (i > j) {
        std::swap(i, j);
      }
      // delta > 0 moves work earlier (from j to i), raising the cumulative
      // profile over (i, j]; delta < 0 moves it later, lowering it.  Cap
      // each direction by the quantum limits and the corridor slack.
      double up_cap = std::min(kQ - res.work[i], res.work[j]);
      double down_cap = std::min(res.work[i], kQ - res.work[j]);
      for (std::size_t k = i + 1; k <= j; ++k) {
        up_cap = std::min(up_cap, cum[k] - sched[k]);
        down_cap = std::min(down_cap, sched[k] - lower[k]);
      }
      const double delta = rng.NextDouble() < 0.5 ? up_cap * rng.NextDouble()
                                                  : -down_cap * rng.NextDouble();
      if (std::fabs(delta) < 1e-15) {
        continue;
      }
      std::vector<double> perturbed = res.work;
      perturbed[i] += delta;
      perturbed[j] -= delta;
      EXPECT_GE(AboveIdleJoules(model, perturbed), base - 1e-10)
          << "trial " << trial << " rep " << rep << " i " << i << " j " << j
          << " delta " << delta;
    }
  }
}

TEST(OracleOptimalPropertyTest, InvalidArgumentsThrow) {
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work{0.001, 0.002};
  EXPECT_THROW(RunOfflineOptimal(work, 0.0, 5, model), std::invalid_argument);
  EXPECT_THROW(RunOfflineOptimal(work, -kQ, 5, model), std::invalid_argument);
  EXPECT_THROW(RunOfflineOptimal(work, kQ, 0, model), std::invalid_argument);
  EXPECT_THROW(RunOfflineOptimal(work, kQ, 5, EnergyModel{}), std::invalid_argument);
}

TEST(OracleOptimalPropertyTest, EmptyTraceCostsOnlyIdle) {
  const EnergyModel model = MakeItsyEnergyModel();
  const OfflineOptimalResult res = RunOfflineOptimal({}, kQ, 5, model);
  EXPECT_TRUE(res.work.empty());
  EXPECT_DOUBLE_EQ(res.above_idle_joules, 0.0);
  EXPECT_DOUBLE_EQ(res.energy_joules, 0.0);
  EXPECT_DOUBLE_EQ(res.peak_speed, 0.0);
}

}  // namespace
}  // namespace dcs
