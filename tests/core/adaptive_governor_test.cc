// Unit tests for the multiplicative-weights adaptive governor: the expert
// pool, the weight update (concentration, floor, renormalization), the mixed
// prediction, and the speed decision built on it.

#include "src/core/adaptive_governor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>

namespace dcs {
namespace {

// Feeds `quanta` samples of a fixed utilization with ideal hardware (every
// requested step applied); returns the final step.
int StepAfter(AdaptiveGovernor& governor, int start_step, double utilization, int quanta) {
  int step = start_step;
  for (int q = 0; q < quanta; ++q) {
    UtilizationSample sample;
    sample.utilization = utilization;
    sample.step = step;
    sample.quantum_index = static_cast<std::uint64_t>(q);
    if (const auto request = governor.OnQuantum(sample); request && request->step) {
      step = *request->step;
    }
  }
  return step;
}

double WeightSum(const AdaptiveGovernor& governor) {
  return std::accumulate(governor.weights().begin(), governor.weights().end(), 0.0);
}

TEST(AdaptiveGovernorTest, NameEncodesLearningRateAndRail) {
  EXPECT_STREQ(AdaptiveGovernor().Name(), "adaptive-2.0");
  AdaptiveGovernorConfig config;
  config.eta = 0.5;
  config.voltage_scaling = true;
  EXPECT_STREQ(AdaptiveGovernor(config).Name(), "adaptive-0.5-vs");
}

TEST(AdaptiveGovernorTest, PoolStartsUniformOverSixExperts) {
  AdaptiveGovernor governor;
  EXPECT_EQ(governor.ExpertNames().size(), 6u);
  ASSERT_EQ(governor.weights().size(), 6u);
  for (const double w : governor.weights()) {
    EXPECT_DOUBLE_EQ(w, 1.0 / 6.0);
  }
}

TEST(AdaptiveGovernorTest, WeightsStayNormalizedAndFloored) {
  AdaptiveGovernor governor;
  for (int q = 0; q < 200; ++q) {
    UtilizationSample sample;
    sample.utilization = (q % 2 == 0) ? 1.0 : 0.0;  // worst case for PAST
    sample.step = 5;
    (void)governor.OnQuantum(sample);
    EXPECT_NEAR(WeightSum(governor), 1.0, 1e-9) << "quantum " << q;
    for (const double w : governor.weights()) {
      EXPECT_GT(w, 0.0) << "quantum " << q;
    }
  }
}

std::size_t ExpertIndex(const AdaptiveGovernor& governor, const std::string& name) {
  const auto names = governor.ExpertNames();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return i;
    }
  }
  ADD_FAILURE() << "no expert named " << name;
  return 0;
}

TEST(AdaptiveGovernorTest, FastAlternationBuriesThePastPredictor) {
  // A square wave flipping 1.0 / 0.0 every quantum: PAST is wrong by 1.0
  // every single quantum (the classic oscillation failure), while the
  // smoothing experts hover near 0.5 and lose only half as much.  The
  // learner must push PAST to the bottom of the pool and concentrate weight
  // on a smoother.
  AdaptiveGovernor governor;
  for (int q = 0; q < 200; ++q) {
    UtilizationSample sample;
    sample.utilization = (q % 2 == 0) ? 1.0 : 0.0;
    sample.step = 5;
    (void)governor.OnQuantum(sample);
  }
  const auto& weights = governor.weights();
  const double past = weights[ExpertIndex(governor, "PAST")];
  EXPECT_LT(past, 0.05);
  EXPECT_LE(past, *std::min_element(weights.begin(), weights.end()) + 1e-12);
  EXPECT_GT(*std::max_element(weights.begin(), weights.end()), 0.3);
}

TEST(AdaptiveGovernorTest, SlowPhasesCrownThePastPredictor) {
  // Long flat phases (4 quanta high, 4 low): PAST is exact except at the
  // two transitions per period, while every averager smears the edges — the
  // learner must move most of the weight onto PAST.
  AdaptiveGovernor governor;
  for (int q = 0; q < 400; ++q) {
    UtilizationSample sample;
    sample.utilization = (q % 8 < 4) ? 1.0 : 0.0;
    sample.step = 5;
    (void)governor.OnQuantum(sample);
  }
  const auto& weights = governor.weights();
  const double past = weights[ExpertIndex(governor, "PAST")];
  EXPECT_GE(past, *std::max_element(weights.begin(), weights.end()) - 1e-12);
  EXPECT_GT(past, 0.5);
}

TEST(AdaptiveGovernorTest, MixedPredictionTracksConstantLoad) {
  AdaptiveGovernor governor;
  for (int q = 0; q < 50; ++q) {
    UtilizationSample sample;
    sample.utilization = 0.5;
    sample.step = 5;
    (void)governor.OnQuantum(sample);
  }
  EXPECT_NEAR(governor.mixed_prediction(), 0.5, 0.05);
}

TEST(AdaptiveGovernorTest, SaturationEscapeClimbsToTopStep) {
  AdaptiveGovernor governor;
  EXPECT_EQ(StepAfter(governor, ClockTable::MinStep(), 1.0, 15), ClockTable::MaxStep());
}

TEST(AdaptiveGovernorTest, IdleSinksToFloorStepAndGoesQuiet) {
  AdaptiveGovernor governor;
  const int step = StepAfter(governor, ClockTable::MaxStep(), 0.0, 40);
  EXPECT_EQ(step, ClockTable::MinStep());
  UtilizationSample sample;
  sample.utilization = 0.0;
  sample.step = step;
  EXPECT_EQ(governor.OnQuantum(sample), std::nullopt);
}

TEST(AdaptiveGovernorTest, IdenticalStreamsProduceIdenticalDecisions) {
  // Pure arithmetic, no RNG: two instances fed the same samples must agree
  // on every weight and every request.
  AdaptiveGovernor a;
  AdaptiveGovernor b;
  int step_a = 5;
  int step_b = 5;
  for (int q = 0; q < 100; ++q) {
    const double u = (q * 37 % 100) / 100.0;
    UtilizationSample sample;
    sample.utilization = u;
    sample.step = step_a;
    const auto ra = a.OnQuantum(sample);
    sample.step = step_b;
    const auto rb = b.OnQuantum(sample);
    ASSERT_EQ(ra.has_value(), rb.has_value()) << "quantum " << q;
    if (ra && ra->step) {
      step_a = *ra->step;
    }
    if (rb && rb->step) {
      step_b = *rb->step;
    }
    EXPECT_EQ(step_a, step_b) << "quantum " << q;
    ASSERT_EQ(a.weights().size(), b.weights().size());
    for (std::size_t i = 0; i < a.weights().size(); ++i) {
      EXPECT_EQ(a.weights()[i], b.weights()[i]) << "quantum " << q << " expert " << i;
    }
  }
}

TEST(AdaptiveGovernorTest, ResetRestoresTheUniformPool) {
  AdaptiveGovernor governor;
  (void)StepAfter(governor, 5, 1.0, 50);
  governor.Reset();
  for (const double w : governor.weights()) {
    EXPECT_DOUBLE_EQ(w, 1.0 / 6.0);
  }
  EXPECT_DOUBLE_EQ(governor.mixed_prediction(), 0.0);
}

TEST(AdaptiveGovernorTest, VoltageScalingRequestsTheLowRailAtSafeSteps) {
  AdaptiveGovernorConfig config;
  config.voltage_scaling = true;
  AdaptiveGovernor governor(config);
  UtilizationSample sample;
  sample.step = ClockTable::MaxStep();
  sample.voltage = CoreVoltage::kHigh;
  sample.utilization = 0.0;
  bool asked_low = false;
  for (int q = 0; q < 40 && !asked_low; ++q) {
    if (const auto request = governor.OnQuantum(sample)) {
      if (request->step) {
        sample.step = *request->step;
      }
      if (request->voltage) {
        EXPECT_LE(sample.step, kMaxStepAtLowVoltage);
        EXPECT_EQ(*request->voltage, CoreVoltage::kLow);
        asked_low = true;
      }
    }
  }
  EXPECT_TRUE(asked_low);
}

}  // namespace
}  // namespace dcs
