// Unit tests for the offline-optimal energy bound: the Itsy energy hull
// (MakeItsyEnergyModel / AboveIdleWatts) and hand-checkable cases of the
// taut-string schedule (RunOfflineOptimal).  The randomized optimality
// probes live in oracle_optimal_property_test.cc.

#include "src/core/oracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/hw/power_model.h"
#include "src/hw/voltage_regulator.h"

namespace dcs {
namespace {

constexpr double kQ = 0.01;

TEST(EnergyModelTest, ItsyHullIsWellFormed) {
  const EnergyModel model = MakeItsyEnergyModel();
  EXPECT_GT(model.idle_watts, 0.0);
  ASSERT_FALSE(model.speeds.empty());
  ASSERT_EQ(model.speeds.size(), model.watts_above_idle.size());
  // Vertices strictly increase in speed and cost, topping out at full speed.
  for (std::size_t i = 0; i < model.speeds.size(); ++i) {
    EXPECT_GT(model.speeds[i], 0.0);
    EXPECT_GT(model.watts_above_idle[i], 0.0);
    if (i > 0) {
      EXPECT_GT(model.speeds[i], model.speeds[i - 1]);
      EXPECT_GT(model.watts_above_idle[i], model.watts_above_idle[i - 1]);
    }
  }
  EXPECT_DOUBLE_EQ(model.speeds.back(), 1.0);
  // Convexity: marginal W per unit speed is non-decreasing along the hull
  // (origin -> v0 -> v1 -> ...).
  double prev_slope = model.watts_above_idle[0] / model.speeds[0];
  for (std::size_t i = 1; i < model.speeds.size(); ++i) {
    const double slope = (model.watts_above_idle[i] - model.watts_above_idle[i - 1]) /
                         (model.speeds[i] - model.speeds[i - 1]);
    EXPECT_GE(slope, prev_slope - 1e-12);
    prev_slope = slope;
  }
}

TEST(EnergyModelTest, AboveIdleWattsInterpolatesTheHull) {
  const EnergyModel model = MakeItsyEnergyModel();
  EXPECT_DOUBLE_EQ(model.AboveIdleWatts(0.0), 0.0);
  // Exact at each vertex.
  for (std::size_t i = 0; i < model.speeds.size(); ++i) {
    EXPECT_NEAR(model.AboveIdleWatts(model.speeds[i]), model.watts_above_idle[i], 1e-12);
  }
  // Linear on the first segment (origin to the first vertex).
  const double mid = 0.5 * model.speeds[0];
  EXPECT_NEAR(model.AboveIdleWatts(mid), 0.5 * model.watts_above_idle[0], 1e-12);
  // Monotone, and clamped above full speed.
  double prev = 0.0;
  for (double s = 0.0; s <= 1.2; s += 0.01) {
    const double w = model.AboveIdleWatts(s);
    EXPECT_GE(w, prev - 1e-12) << "speed " << s;
    prev = w;
  }
  EXPECT_DOUBLE_EQ(model.AboveIdleWatts(1.5), model.watts_above_idle.back());
  EXPECT_DOUBLE_EQ(model.AboveIdleWatts(-0.5), 0.0);
}

TEST(EnergyModelTest, HullNeverExceedsTheDiscreteBusyPoints) {
  // The hull is a LOWER bound on the real table: at every step's relative
  // speed, interpolated cost <= cheapest legal busy cost above idle.
  const EnergyModel model = MakeItsyEnergyModel();
  const PowerModelParams params;
  const PowerModel power(params);
  PeripheralState periph;  // display on, audio off — the bench convention
  const double top = ClockTable::FrequencyMhz(ClockTable::MaxStep());
  for (int step = 0; step < kNumClockSteps; ++step) {
    double busy = power.SystemWatts(ExecState::kBusy, step,
                                    VoltageVolts(CoreVoltage::kHigh), periph);
    if (VoltageRegulator::StepAllowedAt(CoreVoltage::kLow, step)) {
      busy = std::min(busy, power.SystemWatts(ExecState::kBusy, step,
                                              VoltageVolts(CoreVoltage::kLow), periph));
    }
    const double speed = ClockTable::FrequencyMhz(step) / top;
    EXPECT_LE(model.AboveIdleWatts(speed), busy - model.idle_watts + 1e-9)
        << "step " << step;
  }
}

TEST(OfflineOptimalTest, SmoothsAFullQuantumOverTheSlackWindow) {
  // One pegged quantum then an idle one, D=2: the optimum halves the speed
  // and runs flat across both.
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work{kQ, 0.0};
  const OfflineOptimalResult res = RunOfflineOptimal(work, kQ, 2, model);
  ASSERT_EQ(res.work.size(), 2u);
  EXPECT_NEAR(res.work[0], kQ / 2, 1e-12);
  EXPECT_NEAR(res.work[1], kQ / 2, 1e-12);
  EXPECT_NEAR(res.peak_speed, 0.5, 1e-12);
  EXPECT_LT(res.above_idle_joules,
            kQ * model.AboveIdleWatts(1.0) - 1e-6);  // strictly beats run-in-place
}

TEST(OfflineOptimalTest, ArrivalCausalityForbidsSmoothingForward) {
  // Work arriving in the second interval cannot be started in the first, no
  // matter how much deadline slack exists.
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work{0.0, kQ};
  const OfflineOptimalResult res = RunOfflineOptimal(work, kQ, 25, model);
  ASSERT_EQ(res.work.size(), 2u);
  EXPECT_NEAR(res.work[0], 0.0, 1e-12);
  EXPECT_NEAR(res.work[1], kQ, 1e-12);
}

TEST(OfflineOptimalTest, ConstantLoadStaysConstant) {
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work(8, 0.4 * kQ);
  const OfflineOptimalResult res = RunOfflineOptimal(work, kQ, 5, model);
  for (const double w : res.work) {
    EXPECT_NEAR(w, 0.4 * kQ, 1e-12);
  }
}

TEST(OfflineOptimalTest, WiderWindowNeverCostsMore) {
  // A larger D strictly enlarges the feasible set, so the optimum is
  // monotone non-increasing in D.
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work{kQ, 0.2 * kQ, 0.0, 0.9 * kQ, 0.0, 0.0, 0.5 * kQ, 0.1 * kQ};
  double prev = 1e300;
  for (const int window : {1, 2, 5, 25}) {
    const OfflineOptimalResult res = RunOfflineOptimal(work, kQ, window, model);
    EXPECT_LE(res.above_idle_joules, prev + 1e-12) << "D=" << window;
    prev = res.above_idle_joules;
  }
}

TEST(OfflineOptimalTest, OverfullIntervalsAreClampedToTheQuantum) {
  // Tick jitter can make a recorded interval claim more full-speed work than
  // a quantum holds; the bound must clamp rather than demand speed > 1.
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work{1.7 * kQ, 0.0};
  const OfflineOptimalResult res = RunOfflineOptimal(work, kQ, 1, model);
  EXPECT_NEAR(res.work[0], kQ, 1e-12);
  EXPECT_LE(res.peak_speed, 1.0 + 1e-12);
}

TEST(OfflineOptimalTest, DeterministicAcrossCalls) {
  const EnergyModel model = MakeItsyEnergyModel();
  const std::vector<double> work{0.3 * kQ, kQ, 0.0, 0.7 * kQ, 0.1 * kQ};
  const OfflineOptimalResult a = RunOfflineOptimal(work, kQ, 3, model);
  const OfflineOptimalResult b = RunOfflineOptimal(work, kQ, 3, model);
  EXPECT_EQ(a.work, b.work);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
}

}  // namespace
}  // namespace dcs
