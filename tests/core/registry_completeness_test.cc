// Registry completeness: the governor slate, the family taxonomy, and the
// factory must stay mutually consistent.  Sweeps, fault storms, and the
// competitive-ratio bench all iterate AllGovernorSpecs(), so a governor that
// is registered but missing from the slate silently vanishes from every
// cross-cutting study — this suite is what makes that a test failure instead.

#include "src/core/governor_registry.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/exp/experiment.h"

namespace dcs {
namespace {

TEST(RegistryCompletenessTest, SlateHasNoDuplicatesAndCoversTheFullRoster) {
  const std::vector<std::string> slate = AllGovernorSpecs();
  const std::set<std::string> unique(slate.begin(), slate.end());
  EXPECT_EQ(unique.size(), slate.size()) << "duplicate spec in AllGovernorSpecs()";
  // 18 specs through PR 6 plus the feedback and adaptive governors; grows
  // monotonically as policies are added.
  EXPECT_GE(slate.size(), 20u);
}

TEST(RegistryCompletenessTest, EverySlateSpecConstructsAndClassifies) {
  for (const std::string& spec : AllGovernorSpecs()) {
    std::string error;
    auto governor = MakeGovernor(spec, &error);
    if (spec == "none") {
      EXPECT_EQ(governor, nullptr);
      EXPECT_TRUE(error.empty()) << spec << ": " << error;
    } else {
      EXPECT_NE(governor, nullptr) << spec << ": " << error;
    }
    EXPECT_FALSE(GovernorFamilyOf(spec).empty()) << spec << " has no family";
  }
}

TEST(RegistryCompletenessTest, EveryFamilyIsRepresentedInTheSlate) {
  // Each taxonomy row must (a) name a family some slate spec maps to, and
  // (b) carry an example spec that parses and classifies into that family.
  std::set<std::string> slate_families;
  for (const std::string& spec : AllGovernorSpecs()) {
    slate_families.insert(GovernorFamilyOf(spec));
  }
  std::set<std::string> taxonomy_families;
  for (const GovernorFamily& row : GovernorFamilies()) {
    EXPECT_FALSE(row.family.empty());
    EXPECT_TRUE(taxonomy_families.insert(row.family).second)
        << "duplicate family " << row.family;
    EXPECT_EQ(GovernorFamilyOf(row.example_spec), row.family)
        << row.example_spec << " does not classify into " << row.family;
    std::string error;
    auto governor = MakeGovernor(row.example_spec, &error);
    if (row.example_spec != "none") {
      EXPECT_NE(governor, nullptr) << row.example_spec << ": " << error;
    }
    EXPECT_TRUE(slate_families.count(row.family))
        << "family " << row.family << " has no spec in AllGovernorSpecs()";
  }
  // And conversely: no slate spec belongs to a family the taxonomy forgot.
  for (const std::string& family : slate_families) {
    EXPECT_TRUE(taxonomy_families.count(family))
        << "slate family " << family << " missing from GovernorFamilies()";
  }
}

TEST(RegistryCompletenessTest, EverySlateSpecBuildsAStaticDispatchHandle) {
  // The kernel ticks governors through the registry-built PolicyDispatch
  // thunk (not the vtable), so every constructible spec must come with a
  // dispatch record that aliases its governor; a branch that forgets to wrap
  // its concrete type would tick as a silent no-op.
  for (const std::string& spec : AllGovernorSpecs()) {
    std::string error;
    GovernorHandle handle = MakeGovernorDispatch(spec, &error);
    if (spec == "none") {
      EXPECT_EQ(handle.governor, nullptr);
      EXPECT_EQ(handle.dispatch.policy, nullptr);
      EXPECT_EQ(handle.dispatch.on_quantum, nullptr);
      EXPECT_TRUE(error.empty()) << spec << ": " << error;
      continue;
    }
    ASSERT_NE(handle.governor, nullptr) << spec << ": " << error;
    EXPECT_EQ(handle.dispatch.policy, handle.governor.get())
        << spec << ": dispatch must alias the governor it was built from";
    EXPECT_NE(handle.dispatch.on_quantum, nullptr) << spec;
  }
  // MakeGovernor stays the thin wrapper: same construction, no dispatch.
  std::string error;
  EXPECT_EQ(MakeGovernorDispatch("warpdrive", &error).governor, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(RegistryCompletenessTest, UnknownSpecsClassifyAsUnknown) {
  EXPECT_EQ(GovernorFamilyOf("warpdrive"), "");
  EXPECT_EQ(GovernorFamilyOf("FOO-one-one-50-70"), "");
}

TEST(RegistryCompletenessTest, EverySpecRerunsToByteIdenticalSchedLog) {
  // The scheduler-activity log is the finest-grained observable a run
  // produces (microsecond timestamps, per-decision); two runs of the same
  // config must reproduce it entry for entry for every registered governor,
  // or the obs exports and golden digests stop being comparable.
  for (const std::string& spec : AllGovernorSpecs()) {
    ExperimentConfig config;
    config.app = "mpeg";
    config.governor = spec;
    config.seed = 23;
    config.duration = SimTime::Seconds(2);
    config.capture_obs = true;

    const ExperimentResult a = RunExperiment(config);
    const ExperimentResult b = RunExperiment(config);
    ASSERT_TRUE(a.obs.captured) << spec;
    ASSERT_TRUE(b.obs.captured) << spec;
    ASSERT_FALSE(a.obs.sched.empty()) << spec;
    ASSERT_EQ(a.obs.sched.size(), b.obs.sched.size()) << spec;
    for (std::size_t i = 0; i < a.obs.sched.size(); ++i) {
      EXPECT_EQ(a.obs.sched[i].time_us, b.obs.sched[i].time_us) << spec << " entry " << i;
      EXPECT_EQ(a.obs.sched[i].pid, b.obs.sched[i].pid) << spec << " entry " << i;
      EXPECT_EQ(a.obs.sched[i].clock_step, b.obs.sched[i].clock_step)
          << spec << " entry " << i;
    }
    EXPECT_EQ(a.exact_energy_joules, b.exact_energy_joules) << spec;
  }
}

}  // namespace
}  // namespace dcs
