#include "src/core/replay_policy.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/utilization.h"
#include "src/core/oracle.h"
#include "src/exp/experiment.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/apps.h"

namespace dcs {
namespace {

UtilizationSample Sample(int step) {
  UtilizationSample s;
  s.step = step;
  return s;
}

TEST(ScheduleReplayPolicyTest, FollowsScheduleInOrder) {
  ScheduleReplayPolicy policy({3, 5, 5, 0});
  EXPECT_EQ(policy.OnQuantum(Sample(10))->step, 3);
  EXPECT_EQ(policy.OnQuantum(Sample(3))->step, 5);
  EXPECT_FALSE(policy.OnQuantum(Sample(5)).has_value());  // already at 5
  EXPECT_EQ(policy.OnQuantum(Sample(5))->step, 0);
}

TEST(ScheduleReplayPolicyTest, HoldsLastStepAfterScheduleEnds) {
  ScheduleReplayPolicy policy({7});
  policy.OnQuantum(Sample(10));
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(policy.OnQuantum(Sample(7)).has_value());
  }
  EXPECT_EQ(policy.OnQuantum(Sample(10))->step, 7);  // re-pins if drifted
}

TEST(ScheduleReplayPolicyTest, EmptyScheduleIsInert) {
  ScheduleReplayPolicy policy({});
  EXPECT_FALSE(policy.OnQuantum(Sample(10)).has_value());
}

TEST(ScheduleReplayPolicyTest, ClampsOutOfRangeSteps) {
  ScheduleReplayPolicy policy({-3, 42});
  EXPECT_EQ(policy.OnQuantum(Sample(5))->step, 0);
  EXPECT_EQ(policy.OnQuantum(Sample(0))->step, 10);
}

TEST(ScheduleReplayPolicyTest, ResetRestartsSchedule) {
  ScheduleReplayPolicy policy({2, 9});
  policy.OnQuantum(Sample(10));
  policy.OnQuantum(Sample(2));
  policy.Reset();
  EXPECT_EQ(policy.OnQuantum(Sample(10))->step, 2);
}

TEST(StepsFromRelativeSpeedsTest, MapsToCoveringSteps) {
  const double floor_fraction =
      ClockTable::FrequencyMhz(0) / ClockTable::FrequencyMhz(10);
  const auto steps = StepsFromRelativeSpeeds({1.0, 0.5, floor_fraction, 0.0});
  ASSERT_EQ(steps.size(), 4u);
  EXPECT_EQ(steps[0], 10);
  EXPECT_EQ(steps[1], 3);  // 103.2 MHz covers 50% of 206.4 (103.2192 >= 103.1968)
  EXPECT_EQ(steps[2], 0);
  EXPECT_EQ(steps[3], 0);
}

// The headline demonstration: an oracle schedule derived from one run
// misses deadlines when replayed against a jittered re-run, while it is
// safe against the exact run it was derived from.
TEST(OracleReplayTest, TraceDerivedScheduleBreaksUnderJitter) {
  // 1. Record a utilization trace of MPEG at full speed with seed A.
  ExperimentConfig record;
  record.app = "mpeg";
  record.governor = "fixed-206.4";
  record.seed = 51;
  record.duration = SimTime::Seconds(20);
  const ExperimentResult recorded = RunExperiment(record);
  const TraceSeries* util = recorded.sink.Find("utilization");
  ASSERT_NE(util, nullptr);
  const std::vector<double> trace = SeriesValues(*util);

  // 2. Aggregate to the 100 ms intervals the early trace studies favoured
  //    (at 10 ms our traces are bimodal and the oracle degenerates to
  //    peg-like schedules), then derive FUTURE's clairvoyant schedule.
  std::vector<double> intervals;
  for (std::size_t i = 0; i + 10 <= trace.size(); i += 10) {
    double sum = 0.0;
    for (std::size_t j = i; j < i + 10; ++j) {
      sum += trace[j];
    }
    intervals.push_back(sum / 10.0);
  }
  const OracleResult oracle = RunFutureOracle(intervals, 59.0 / 206.4);
  // Expand each 100 ms decision back to ten 10 ms quanta.
  std::vector<int> schedule;
  for (const int step : StepsFromRelativeSpeeds(oracle.speeds)) {
    for (int k = 0; k < 10; ++k) {
      schedule.push_back(step);
    }
  }

  // 3. Replay the schedule on the live system, with the recorded seed and
  //    with a jittered one.
  auto run_with_schedule = [&](std::uint64_t seed) {
    Simulator sim;
    Itsy itsy(sim);
    KernelConfig kernel_config;
    // Match RunExperiment's seed derivation so "same seed" means the same
    // workload realisation as the recording.
    kernel_config.rng_seed = 1 ^ seed * 0x9e3779b97f4a7c15ULL;
    Kernel kernel(sim, itsy, kernel_config);
    ScheduleReplayPolicy policy(schedule);
    kernel.InstallPolicy(&policy);
    DeadlineMonitor deadlines;
    MpegConfig mpeg;
    mpeg.duration = SimTime::Seconds(20);
    AppBundle bundle = MakeMpegApp(mpeg, &deadlines, seed);
    for (auto& task : bundle.tasks) {
      kernel.AddTask(std::move(task));
    }
    kernel.Start();
    sim.RunUntil(SimTime::Seconds(22));
    struct Outcome {
      double energy;
      std::int64_t misses;
    };
    return Outcome{itsy.tape().EnergyJoules(SimTime::Zero(), SimTime::Seconds(20)),
                   deadlines.TotalMissed()};
  };

  // On its own trace and under its own idealised energy model (quadratic
  // speed-energy, zero idle power, no switch costs), FUTURE promises a
  // double-digit saving with no missed intervals — the optimistic result
  // the early simulation papers reported.
  EXPECT_DOUBLE_EQ(oracle.missed_fraction, 0.0);
  EXPECT_GT(oracle.SavingsPercent(), 10.0);

  // On the live system the promise evaporates.  Deadlines survive (mapping
  // continuous speeds onto the 11 discrete steps rounds *up*, adding slack
  // the oracle never modelled) but the energy claim does not: peripherals
  // and nap power don't scale with the clock, busy time stretches into what
  // would have been cheap idle time, and there is no continuous voltage to
  // track the frequency down.  This is the paper's §3 critique quantified:
  // "neither Govil nor Weiser" modelled idle power or real platform costs,
  // so their predicted savings were "not born out by experimentation".
  const auto same = run_with_schedule(51);
  const auto jittered = run_with_schedule(52);
  EXPECT_EQ(same.misses, 0);
  EXPECT_EQ(jittered.misses, 0);
  const double realized_saving =
      100.0 * (1.0 - same.energy / recorded.energy_joules);
  EXPECT_LT(realized_saving, oracle.SavingsPercent() / 4.0);
}

}  // namespace
}  // namespace dcs
