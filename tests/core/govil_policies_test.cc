#include "src/core/govil_policies.h"

#include <gtest/gtest.h>

#include "src/core/governor_registry.h"
#include "src/sim/rng.h"
#include "src/exp/experiment.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

UtilizationSample Sample(double utilization, int step) {
  UtilizationSample s;
  s.utilization = utilization;
  s.step = step;
  return s;
}

// --- FLAT -------------------------------------------------------------------

TEST(FlatGovernorTest, AimsAtTargetUtilization) {
  FlatGovernor governor;  // target 0.75
  // 30% busy at 206.4 MHz -> demand 61.9 MHz -> /0.75 = 82.6 -> step 2
  // (88.5 MHz).
  const auto request = governor.OnQuantum(Sample(0.3, 10));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 2);
}

TEST(FlatGovernorTest, SaturationBumpsOneStep) {
  FlatGovernor governor;
  const auto request = governor.OnQuantum(Sample(1.0, 4));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 5);
}

TEST(FlatGovernorTest, SettlesWhenOnTarget) {
  FlatGovernor governor;
  // 75% busy at step 5: demand = 0.75 * 132.7 = 99.5 -> /0.75 = 132.7 ->
  // step 5 again -> no request.
  EXPECT_FALSE(governor.OnQuantum(Sample(0.75, 5)).has_value());
}

TEST(FlatGovernorTest, NameAndRegistry) {
  EXPECT_STREQ(FlatGovernor().Name(), "flat-75");
  std::string error;
  EXPECT_NE(MakeGovernor("flat-80", &error), nullptr) << error;
  EXPECT_EQ(MakeGovernor("flat-0", &error), nullptr);
  EXPECT_EQ(MakeGovernor("flat-abc", &error), nullptr);
}

// --- LONG_SHORT ---------------------------------------------------------------

TEST(LongShortPredictorTest, BlendsShortAndLongAverages) {
  LongShortPredictor predictor(2, 4);
  predictor.Update(0.0);
  predictor.Update(0.0);
  predictor.Update(1.0);
  const double w = predictor.Update(1.0);
  // short avg (last 2) = 1.0, long avg (last 4) = 0.5 -> (3*1 + 0.5)/4.
  EXPECT_DOUBLE_EQ(w, (3.0 * 1.0 + 0.5) / 4.0);
}

TEST(LongShortPredictorTest, RespondsFasterThanLongWindowAlone) {
  LongShortPredictor ls(3, 12);
  SlidingWindowPredictor win(12);
  // Prime both with a long idle history, then step to busy: LONG_SHORT's
  // short-window term crosses 0.7 within ~3 quanta, the pure 12-wide window
  // needs ~9.
  for (int i = 0; i < 12; ++i) {
    ls.Update(0.0);
    win.Update(0.0);
  }
  int ls_quanta = 0;
  while (ls.Update(1.0) <= 0.7 && ls_quanta < 50) {
    ++ls_quanta;
  }
  int win_quanta = 0;
  while (win.Update(1.0) <= 0.7 && win_quanta < 50) {
    ++win_quanta;
  }
  EXPECT_LT(ls_quanta, win_quanta);
  EXPECT_LE(ls_quanta, 4);
}

TEST(LongShortPredictorTest, StaysInUnitInterval) {
  LongShortPredictor predictor;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double w = predictor.Update(rng.NextDouble() * 1.5 - 0.25);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(LongShortPredictorTest, CloneAndReset) {
  LongShortPredictor predictor;
  predictor.Update(0.8);
  auto clone = predictor.Clone();
  EXPECT_DOUBLE_EQ(clone->Current(), predictor.Current());
  predictor.Reset();
  EXPECT_DOUBLE_EQ(predictor.Current(), 0.0);
}

// --- CYCLE ----------------------------------------------------------------------

TEST(CyclePredictorTest, LocksOntoPeriodicInput) {
  CyclePredictor predictor(10);
  const auto wave = RectangleWaveSamples(9, 1, 60);
  double last = 0.0;
  for (const double u : wave) {
    last = predictor.Update(u);
  }
  EXPECT_TRUE(predictor.cycle_matched());
  // After 60 samples of a period-10 wave, position 60 is phase 0 (busy):
  // the prediction is the value one cycle back at the same phase = 1.0.
  EXPECT_DOUBLE_EQ(last, 1.0);
}

TEST(CyclePredictorTest, PredictsIdlePhaseCorrectly) {
  CyclePredictor predictor(10);
  const auto wave = RectangleWaveSamples(9, 1, 59);
  double last = 0.0;
  for (const double u : wave) {
    last = predictor.Update(u);
  }
  // Position 59 is phase 9 (idle): prediction = 0.0.  This is the win over
  // every averaging predictor: CYCLE anticipates the idle quantum.
  EXPECT_TRUE(predictor.cycle_matched());
  EXPECT_DOUBLE_EQ(last, 0.0);
}

TEST(CyclePredictorTest, FallsBackOnAperiodicInput) {
  CyclePredictor predictor(10, 0.05);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    predictor.Update(rng.NextDouble());
  }
  EXPECT_FALSE(predictor.cycle_matched());
}

TEST(CyclePredictorTest, WrongCycleLengthDoesNotMatch) {
  CyclePredictor predictor(7, 0.05);  // wave period is 10
  const auto wave = RectangleWaveSamples(9, 1, 100);
  for (const double u : wave) {
    predictor.Update(u);
  }
  EXPECT_FALSE(predictor.cycle_matched());
}

// --- PEAK ----------------------------------------------------------------------

TEST(PeakPredictorTest, RisingEdgePredictsFallBack) {
  PeakPredictor predictor;
  predictor.Update(0.2);
  EXPECT_DOUBLE_EQ(predictor.Update(0.8), 0.2);
}

TEST(PeakPredictorTest, FallingEdgePredictsFurtherFall) {
  PeakPredictor predictor;
  predictor.Update(0.8);
  EXPECT_DOUBLE_EQ(predictor.Update(0.6), 0.4);
}

TEST(PeakPredictorTest, FlatInputPredictsItself) {
  PeakPredictor predictor;
  predictor.Update(0.5);
  EXPECT_DOUBLE_EQ(predictor.Update(0.5), 0.5);
}

TEST(PeakPredictorTest, ClampedAtZero) {
  PeakPredictor predictor;
  predictor.Update(0.9);
  EXPECT_DOUBLE_EQ(predictor.Update(0.1), 0.0);
}

// --- Registry & end-to-end --------------------------------------------------------

TEST(GovilRegistryTest, PredictorSpecsParse) {
  std::string error;
  EXPECT_NE(MakeGovernor("LS-one-one-50-70", &error), nullptr) << error;
  EXPECT_NE(MakeGovernor("PEAK-peg-peg-93-98", &error), nullptr) << error;
  EXPECT_NE(MakeGovernor("CYCLE10-one-one-50-70", &error), nullptr) << error;
  EXPECT_EQ(MakeGovernor("CYCLE1-one-one-50-70", &error), nullptr);
}

TEST(GovilEndToEndTest, AllPoliciesRunSafelyOrFailVisibly) {
  // None of the Govil policies should crash or hang; record their outcomes.
  for (const char* spec :
       {"flat-75", "LS-peg-peg-93-98", "PEAK-peg-peg-93-98", "CYCLE7-peg-peg-93-98"}) {
    ExperimentConfig config;
    config.app = "mpeg";
    config.governor = spec;
    config.seed = 23;
    config.duration = SimTime::Seconds(15);
    const ExperimentResult result = RunExperiment(config);
    EXPECT_GT(result.energy_joules, 0.0) << spec;
    EXPECT_GT(result.deadline_events, 100) << spec;
  }
}

TEST(GovilEndToEndTest, FlatIsSafeAndSavesOnMpeg) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "flat-75";
  config.seed = 23;
  config.duration = SimTime::Seconds(30);
  const ExperimentResult flat = RunExperiment(config);
  config.governor = "fixed-206.4";
  const ExperimentResult baseline = RunExperiment(config);
  EXPECT_EQ(flat.deadline_misses, 0);
  EXPECT_LT(flat.energy_joules, baseline.energy_joules);
}

}  // namespace
}  // namespace dcs
