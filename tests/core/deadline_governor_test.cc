#include "src/core/deadline_governor.h"

#include <gtest/gtest.h>

#include "src/exp/experiment.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

// A workload announcing one compute action with a deadline, then exiting.
class AnnouncingWorkload final : public Workload {
 public:
  AnnouncingWorkload(double cycles, SimTime deadline, MemoryProfile profile = {})
      : cycles_(cycles), deadline_(deadline), profile_(profile) {}
  const char* Name() const override { return "announcer"; }
  MemoryProfile Profile() const override { return profile_; }
  Action Next(const WorkloadContext& ctx) override {
    if (!started_) {
      started_ = true;
      return Action::ComputeBy(cycles_, deadline_);
    }
    completed_at_ = ctx.now;
    return Action::Exit();
  }
  SimTime completed_at() const { return completed_at_; }

 private:
  double cycles_;
  SimTime deadline_;
  MemoryProfile profile_;
  bool started_ = false;
  SimTime completed_at_;
};

TEST(KernelDeadlineRegistryTest, AnnouncedWorkVisible) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<AnnouncingWorkload>(100e6, SimTime::Seconds(2)));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(15));
  const auto pending = kernel.PendingDeadlines();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].deadline, SimTime::Seconds(2));
  EXPECT_GT(pending[0].remaining_cycles, 0.0);
  EXPECT_LT(pending[0].remaining_cycles, 100e6);  // some progress made
}

TEST(KernelDeadlineRegistryTest, UnannouncedComputeInvisible) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<ComputeOnceWorkload>(100e6));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(15));
  EXPECT_TRUE(kernel.PendingDeadlines().empty());
}

TEST(KernelDeadlineRegistryTest, CompletedWorkDisappears) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<AnnouncingWorkload>(1e6, SimTime::Seconds(1)));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(200));
  EXPECT_TRUE(kernel.PendingDeadlines().empty());
}

TEST(DeadlineGovernorTest, FloorsWithoutAnnouncements) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  DeadlineGovernor governor;
  kernel.InstallPolicy(&governor);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(itsy.step(), 0);
}

TEST(DeadlineGovernorTest, PicksSlowestFeasibleStep) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  DeadlineGovernor governor;
  kernel.InstallPolicy(&governor);
  // 103.2e6 pure-compute cycles due in 1 s: needs ~103.2e6/0.85 = 121 MHz
  // initially (step 5); because the density cap makes it run slightly ahead
  // of schedule, the governor may relax one step as slack accrues — but it
  // must neither race at the top nor sit at the floor.
  kernel.AddTask(std::make_unique<AnnouncingWorkload>(103.2e6, SimTime::Seconds(1)));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(itsy.step(), 5);  // the initial feasibility decision
  sim.RunUntil(SimTime::Millis(500));
  EXPECT_GE(itsy.step(), 3);
  EXPECT_LE(itsy.step(), 5);
}

TEST(DeadlineGovernorTest, OverdueWorkPegsToTop) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  DeadlineGovernor governor;
  kernel.InstallPolicy(&governor);
  // Far more work than any step can deliver by the deadline.
  kernel.AddTask(std::make_unique<AnnouncingWorkload>(500e6, SimTime::Millis(100)));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(itsy.step(), 10);
}

TEST(DeadlineGovernorTest, AccountsForMemoryProfile) {
  // Same cycles and deadline, but a memory-heavy profile needs a faster step.
  Simulator sim_light;
  Itsy itsy_light(sim_light);
  Kernel kernel_light(sim_light, itsy_light);
  DeadlineGovernor gov_light;
  kernel_light.InstallPolicy(&gov_light);
  kernel_light.AddTask(std::make_unique<AnnouncingWorkload>(60e6, SimTime::Seconds(1)));
  kernel_light.Start();
  sim_light.RunUntil(SimTime::Millis(100));

  Simulator sim_heavy;
  Itsy itsy_heavy(sim_heavy);
  Kernel kernel_heavy(sim_heavy, itsy_heavy);
  DeadlineGovernor gov_heavy;
  kernel_heavy.InstallPolicy(&gov_heavy);
  kernel_heavy.AddTask(std::make_unique<AnnouncingWorkload>(
      60e6, SimTime::Seconds(1), MemoryProfile{25.0, 10.0}));
  kernel_heavy.Start();
  sim_heavy.RunUntil(SimTime::Millis(100));

  EXPECT_GT(itsy_heavy.step(), itsy_light.step());
}

TEST(DeadlineGovernorTest, MeetsAnnouncedDeadlineJustInTime) {
  // "energy scheduling would prefer for the deadline to be met as late as
  // possible": the work finishes before, but not far before, its deadline.
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  DeadlineGovernor governor;
  kernel.InstallPolicy(&governor);
  auto workload = std::make_unique<AnnouncingWorkload>(80e6, SimTime::Seconds(1));
  AnnouncingWorkload* raw = workload.get();
  kernel.AddTask(std::move(workload));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(2));
  ASSERT_GT(raw->completed_at(), SimTime::Zero());
  EXPECT_LE(raw->completed_at(), SimTime::Seconds(1));
  EXPECT_GT(raw->completed_at(), SimTime::FromSecondsF(0.55));  // stretched, not raced
}

TEST(DeadlineGovernorTest, VoltageScalingFollowsChosenStep) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  DeadlineGovernorConfig config;
  config.voltage_scaling = true;
  DeadlineGovernor governor(config);
  kernel.InstallPolicy(&governor);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  // Idle: floor step at the low rail.
  EXPECT_EQ(itsy.step(), 0);
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kLow);
}

TEST(DeadlineGovernorTest, NameEncodesCap) {
  EXPECT_STREQ(DeadlineGovernor().Name(), "deadline-85");
  DeadlineGovernorConfig config;
  config.density_cap = 0.7;
  config.voltage_scaling = true;
  EXPECT_STREQ(DeadlineGovernor(config).Name(), "deadline-70-vs");
}

TEST(DeadlineGovernorTest, NoKernelInstalledIsInert) {
  DeadlineGovernor governor;
  UtilizationSample sample;
  sample.step = 5;
  EXPECT_FALSE(governor.OnQuantum(sample).has_value());
}

TEST(DeadlineGovernorIntegrationTest, BeatsObliviousBestOnMpeg) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "deadline";
  config.seed = 5;
  config.duration = SimTime::Seconds(30);
  const ExperimentResult informed = RunExperiment(config);
  config.governor = "PAST-peg-peg-93-98";
  const ExperimentResult oblivious = RunExperiment(config);
  EXPECT_EQ(informed.deadline_misses, 0);
  EXPECT_LT(informed.energy_joules, oblivious.energy_joules);
}

TEST(DeadlineGovernorIntegrationTest, MeetsEveryDeadlineOnEveryApp) {
  for (const char* app : {"mpeg", "web", "chess", "editor"}) {
    ExperimentConfig config;
    config.app = app;
    config.governor = "deadline-vs";
    config.seed = 5;
    const ExperimentResult result = RunExperiment(config);
    EXPECT_EQ(result.deadline_misses, 0) << app;
    EXPECT_GT(result.deadline_events, 0) << app;
  }
}

}  // namespace
}  // namespace dcs
