#include "src/core/governor_registry.h"

#include <gtest/gtest.h>

#include "src/core/fixed_policy.h"
#include "src/core/interval_governor.h"
#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(GovernorRegistryTest, NoneAndEmptyReturnNullWithoutError) {
  std::string error = "sentinel";
  EXPECT_EQ(MakeGovernor("none", &error), nullptr);
  EXPECT_TRUE(error.empty());
  EXPECT_EQ(MakeGovernor("", &error), nullptr);
  EXPECT_TRUE(error.empty());
}

TEST(GovernorRegistryTest, FixedSpecs) {
  std::string error;
  auto policy = MakeGovernor("fixed-206.4", &error);
  ASSERT_NE(policy, nullptr) << error;
  EXPECT_STREQ(policy->Name(), "fixed-206.4MHz-1.50V");

  auto low = MakeGovernor("fixed-132.7@1.23", &error);
  ASSERT_NE(low, nullptr) << error;
  EXPECT_STREQ(low->Name(), "fixed-132.7MHz-1.23V");
}

TEST(GovernorRegistryTest, FixedSnapToNearestStep) {
  std::string error;
  auto policy = MakeGovernor("fixed-130", &error);
  ASSERT_NE(policy, nullptr) << error;
  EXPECT_STREQ(policy->Name(), "fixed-132.7MHz-1.50V");
}

TEST(GovernorRegistryTest, FixedUnsafeVoltageRejected) {
  std::string error;
  EXPECT_EQ(MakeGovernor("fixed-206.4@1.23", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(GovernorRegistryTest, FixedBadFrequencyRejected) {
  std::string error;
  EXPECT_EQ(MakeGovernor("fixed-abc", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(GovernorRegistryTest, IntervalSpecs) {
  std::string error;
  auto past = MakeGovernor("PAST-peg-peg-93-98", &error);
  ASSERT_NE(past, nullptr) << error;
  EXPECT_STREQ(past->Name(), "PAST-peg-peg-93/98");

  auto avg = MakeGovernor("AVG9-one-double-50-70-vs", &error);
  ASSERT_NE(avg, nullptr) << error;
  EXPECT_STREQ(avg->Name(), "AVG9-one-double-50/70-vs");

  auto win = MakeGovernor("WIN10-one-one-50-70", &error);
  ASSERT_NE(win, nullptr) << error;
  EXPECT_STREQ(win->Name(), "WIN10-one-one-50/70");
}

TEST(GovernorRegistryTest, SpecsAreCaseInsensitive) {
  std::string error;
  EXPECT_NE(MakeGovernor("past-PEG-Peg-93-98", &error), nullptr) << error;
  EXPECT_NE(MakeGovernor("ONDEMAND", &error), nullptr) << error;
}

TEST(GovernorRegistryTest, BadPredictorRejected) {
  std::string error;
  EXPECT_EQ(MakeGovernor("FOO-one-one-50-70", &error), nullptr);
  EXPECT_NE(error.find("predictor"), std::string::npos);
}

TEST(GovernorRegistryTest, BadSpeedPolicyRejected) {
  std::string error;
  EXPECT_EQ(MakeGovernor("PAST-one-warp-50-70", &error), nullptr);
  EXPECT_NE(error.find("speed policy"), std::string::npos);
}

TEST(GovernorRegistryTest, BadThresholdsRejected) {
  std::string error;
  EXPECT_EQ(MakeGovernor("PAST-one-one-90-50", &error), nullptr);  // lo > hi
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(MakeGovernor("PAST-one-one-50-170", &error), nullptr);  // > 100
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(MakeGovernor("PAST-one-one-xx-70", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(GovernorRegistryTest, WrongArityRejected) {
  std::string error;
  EXPECT_EQ(MakeGovernor("PAST-one-one-50", &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(GovernorRegistryTest, CyclesSpecs) {
  std::string error;
  auto policy = MakeGovernor("cycles4", &error);
  ASSERT_NE(policy, nullptr) << error;
  EXPECT_STREQ(policy->Name(), "cycles4");
  EXPECT_EQ(MakeGovernor("cycles0", &error), nullptr);
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(MakeGovernor("cyclesx", &error), nullptr);
}

TEST(GovernorRegistryTest, ModernGovernors) {
  std::string error;
  EXPECT_NE(MakeGovernor("ondemand", &error), nullptr);
  EXPECT_NE(MakeGovernor("schedutil", &error), nullptr);
}

TEST(GovernorRegistryTest, NullErrorPointerIsSafe) {
  EXPECT_EQ(MakeGovernor("garbage-spec"), nullptr);
  EXPECT_NE(MakeGovernor("ondemand"), nullptr);
}

TEST(GovernorRegistryTest, RandomSpecStringsNeverCrash) {
  // Registry robustness: arbitrary byte salad must either parse or fail
  // cleanly with an error message — never crash or return a half-built
  // governor.
  Rng rng(0xF00D);
  const std::string alphabet = "abcdefgPASTWINCYLE0123456789-@./%";
  for (int trial = 0; trial < 2000; ++trial) {
    std::string spec;
    const int length = static_cast<int>(rng.UniformInt(0, 24));
    for (int i = 0; i < length; ++i) {
      spec += alphabet[static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<int>(alphabet.size()) - 1))];
    }
    std::string error;
    auto governor = MakeGovernor(spec, &error);
    if (governor != nullptr) {
      // Whatever parsed must behave like a policy.
      UtilizationSample sample;
      sample.step = 5;
      sample.utilization = 0.5;
      (void)governor->OnQuantum(sample);
      EXPECT_NE(governor->Name(), nullptr);
    }
  }
}

TEST(GovernorRegistryTest, PaperSpecsAllParse) {
  for (const std::string& spec : PaperGovernorSpecs()) {
    std::string error;
    EXPECT_NE(MakeGovernor(spec, &error), nullptr) << spec << ": " << error;
  }
}

}  // namespace
}  // namespace dcs
