// Unit tests for the feedback (PID) governor: loop convergence, saturation
// escape, anti-windup after a stuck transition, the deadline observer, and
// the -vs rail behaviour.

#include "src/core/feedback_governor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

// Drives the governor as the kernel would, modelling ideal hardware: every
// requested step is applied before the next quantum.  Returns the step in
// effect after `quanta` samples of constant utilization.
int StepAfter(FeedbackGovernor& governor, int start_step, double utilization, int quanta) {
  int step = start_step;
  for (int q = 0; q < quanta; ++q) {
    UtilizationSample sample;
    sample.utilization = utilization;
    sample.step = step;
    sample.quantum_index = static_cast<std::uint64_t>(q);
    if (const auto request = governor.OnQuantum(sample); request && request->step) {
      step = *request->step;
    }
  }
  return step;
}

TEST(FeedbackGovernorTest, NameEncodesGainsAndRail) {
  EXPECT_STREQ(FeedbackGovernor().Name(), "pid-0.50-0.40-0.05");
  FeedbackGovernorConfig config;
  config.kp = 1.0;
  config.ki = 0.25;
  config.kd = 0.0;
  config.voltage_scaling = true;
  EXPECT_STREQ(FeedbackGovernor(config).Name(), "pid-1.00-0.25-0.00-vs");
}

TEST(FeedbackGovernorTest, SaturationEscapeClimbsToTopStep) {
  // A pegged quantum censors demand; the multiplicative escape must still
  // walk the clock to the top in a handful of quanta.
  FeedbackGovernor governor;
  EXPECT_EQ(StepAfter(governor, ClockTable::MinStep(), 1.0, 12), ClockTable::MaxStep());
}

TEST(FeedbackGovernorTest, IdleDecaysToFloorStepAndGoesQuiet) {
  FeedbackGovernor governor;
  const int step = StepAfter(governor, ClockTable::MaxStep(), 0.0, 30);
  EXPECT_EQ(step, ClockTable::MinStep());
  // Pinned at the floor with zero demand: no further requests.
  UtilizationSample sample;
  sample.utilization = 0.0;
  sample.step = step;
  EXPECT_EQ(governor.OnQuantum(sample), std::nullopt);
}

TEST(FeedbackGovernorTest, SettlesNearTheUtilizationSetpoint) {
  // Constant demand of 40% of full speed.  The loop should settle on a step
  // where utilization = demand/speed lands near target_utilization (0.85),
  // quantized to the table: speed in [demand, demand/0.6].
  FeedbackGovernor governor;
  const double demand = 0.4;
  int step = ClockTable::MaxStep();
  for (int q = 0; q < 80; ++q) {
    const double speed =
        ClockTable::FrequencyMhz(step) / ClockTable::FrequencyMhz(ClockTable::MaxStep());
    UtilizationSample sample;
    sample.utilization = std::clamp(demand / speed, 0.0, 1.0);
    sample.step = step;
    if (const auto request = governor.OnQuantum(sample); request && request->step) {
      step = *request->step;
    }
  }
  const double final_speed =
      ClockTable::FrequencyMhz(step) / ClockTable::FrequencyMhz(ClockTable::MaxStep());
  EXPECT_GE(final_speed, demand);         // keeping up
  EXPECT_LE(final_speed, demand / 0.60);  // not wildly over-provisioned
}

TEST(FeedbackGovernorTest, NoWindupWhileTransitionsAreStuck) {
  // Hardware pinned at a middle step (as under transition-fault injection)
  // while the workload pegs: the command saturates but must not accumulate.
  // When demand vanishes the governor has to ask for a *lower* step within a
  // couple of quanta — a wound-up integrator would keep asking for the top.
  FeedbackGovernor governor;
  const int stuck = 5;
  UtilizationSample sample;
  sample.step = stuck;
  sample.utilization = 1.0;
  for (int q = 0; q < 40; ++q) {
    (void)governor.OnQuantum(sample);
  }
  EXPECT_LE(governor.last_command(), 1.0);
  sample.utilization = 0.0;
  bool asked_down = false;
  for (int q = 0; q < 3 && !asked_down; ++q) {
    const auto request = governor.OnQuantum(sample);
    asked_down = request && request->step && *request->step < stuck;
  }
  EXPECT_TRUE(asked_down);
}

TEST(FeedbackGovernorTest, ResetRestoresInitialState) {
  FeedbackGovernor governor;
  (void)StepAfter(governor, ClockTable::MaxStep(), 0.0, 10);
  EXPECT_LT(governor.last_command(), 1.0);
  governor.Reset();
  EXPECT_DOUBLE_EQ(governor.last_command(), 1.0);
}

TEST(FeedbackGovernorTest, VoltageScalingTracksTheChosenStep) {
  FeedbackGovernorConfig config;
  config.voltage_scaling = true;
  FeedbackGovernor governor(config);
  // Idle at the top step on the high rail: the governor steps down and,
  // once the chosen step is rail-safe, requests the low rail.
  UtilizationSample sample;
  sample.step = ClockTable::MaxStep();
  sample.voltage = CoreVoltage::kHigh;
  bool asked_low = false;
  for (int q = 0; q < 30 && !asked_low; ++q) {
    if (const auto request = governor.OnQuantum(sample)) {
      if (request->step) {
        sample.step = *request->step;
      }
      if (request->voltage) {
        EXPECT_LE(sample.step, kMaxStepAtLowVoltage);
        EXPECT_EQ(*request->voltage, CoreVoltage::kLow);
        asked_low = true;
      }
    }
  }
  EXPECT_TRUE(asked_low);
}

// A workload announcing one compute action with a deadline, then exiting.
class AnnouncingWorkload final : public Workload {
 public:
  AnnouncingWorkload(double cycles, SimTime deadline) : cycles_(cycles), deadline_(deadline) {}
  const char* Name() const override { return "announcer"; }
  Action Next(const WorkloadContext& /*ctx*/) override {
    if (!started_) {
      started_ = true;
      return Action::ComputeBy(cycles_, deadline_);
    }
    return Action::Exit();
  }

 private:
  double cycles_;
  SimTime deadline_;
  bool started_ = false;
};

TEST(FeedbackGovernorTest, DeadlineObserverRaisesSpeedAboveUtilizationAlone) {
  // A mostly-idle quantum stream would let the loop sink toward the floor;
  // an announced deadline whose required density exceeds the current speed
  // must pull the command up even though utilization stays low.
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  // ~80 Mcycles due in 500 ms: needs well over half the top step's rate.
  kernel.AddTask(std::make_unique<AnnouncingWorkload>(80e6, SimTime::Millis(500)));
  FeedbackGovernor governor;
  kernel.InstallPolicy(&governor);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  // The loop saw the pending deadline and commanded high speed.
  EXPECT_GT(governor.last_command(), 0.5);
  EXPECT_GE(itsy.cpu().step(),
            ClockTable::StepForAtLeastMhz(
                0.5 * ClockTable::FrequencyMhz(ClockTable::MaxStep())));
}

}  // namespace
}  // namespace dcs
