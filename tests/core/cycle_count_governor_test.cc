#include "src/core/cycle_count_governor.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

UtilizationSample Sample(double utilization, int step) {
  UtilizationSample s;
  s.utilization = utilization;
  s.step = step;
  return s;
}

TEST(CycleCountGovernorTest, FigureFiveGoingIdle) {
  // Figure 5(a): from four fully-busy quanta at 206 MHz, idle quanta drag
  // the busy-cycle average down fast; after four idle quanta the clock is at
  // the bottom.
  CycleCountGovernor gov(4);
  // Prime with busy quanta at the top step.
  for (int i = 0; i < 4; ++i) {
    gov.OnQuantum(Sample(1.0, 10));
  }
  EXPECT_NEAR(gov.AverageBusyMhz(), 206.4, 0.1);
  // First idle quantum: average (206*3 + 0)/4 = 154.8 -> step for >= 154.8
  // is 162.2 MHz (step 7), exactly the paper's "Avg = 154.5, Speed = 162.5"
  // modulo its rounded arithmetic.
  auto request = gov.OnQuantum(Sample(0.0, 10));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 7);
  // Keep idling: two more zeros bring the average to ~51.6 -> floor.
  gov.OnQuantum(Sample(0.0, *request->step));
  request = gov.OnQuantum(Sample(0.0, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 0);
}

TEST(CycleCountGovernorTest, FigureFiveSpeedingUpStallsAtTheFloor) {
  // Figure 5(b): from idle at 59 MHz, busy quanta only add 59 MHz-equivalents
  // each — "the total number of non-idle instructions across the four
  // scheduling intervals grows very slowly".  With no headroom the policy is
  // in fact *pinned* at the floor: a saturated 59 MHz quantum only ever
  // justifies 59 MHz.  The paper's trace shows exactly this (Avg = 44.25,
  // Speed = 59 after four busy quanta).
  CycleCountGovernor gov(4);
  for (int i = 0; i < 4; ++i) {
    gov.OnQuantum(Sample(0.0, 0));
  }
  int step = 0;
  for (int i = 0; i < 20; ++i) {
    const auto request = gov.OnQuantum(Sample(1.0, step));
    if (request.has_value()) {
      step = *request->step;
    }
  }
  EXPECT_EQ(step, 0);
}

TEST(CycleCountGovernorTest, AsymmetryDownFasterThanUp) {
  // The paper's core complaint: scaling down takes ~3 quanta, scaling up
  // from the floor takes far longer.
  CycleCountGovernor down(4);
  for (int i = 0; i < 4; ++i) {
    down.OnQuantum(Sample(1.0, 10));
  }
  int down_quanta = 0;
  int step = 10;
  while (step > 0 && down_quanta < 50) {
    const auto request = down.OnQuantum(Sample(0.0, step));
    if (request.has_value()) {
      step = *request->step;
    }
    ++down_quanta;
  }

  CycleCountGovernor up(4);
  for (int i = 0; i < 4; ++i) {
    up.OnQuantum(Sample(0.0, 0));
  }
  int up_quanta = 0;
  step = 0;
  while (step < 10 && up_quanta < 50) {
    const auto request = up.OnQuantum(Sample(1.0, step));
    if (request.has_value()) {
      step = *request->step;
    }
    ++up_quanta;
  }
  EXPECT_LT(down_quanta, up_quanta);
}

TEST(CycleCountGovernorTest, SteadyStateNoRequest) {
  CycleCountGovernor gov(4);
  // At 59 MHz fully busy, the step for "at least 59 busy MHz" is 0 after the
  // window fills with (utilization 1.0, 59 MHz) samples... which is already
  // the current step, so no request.
  gov.OnQuantum(Sample(1.0, 0));
  gov.OnQuantum(Sample(1.0, 0));
  gov.OnQuantum(Sample(1.0, 0));
  const auto request = gov.OnQuantum(Sample(1.0, 0));
  // Step for >= 58.9824 MHz is step 0 -> no change.
  EXPECT_FALSE(request.has_value());
}

TEST(CycleCountGovernorTest, HeadroomRequestsFasterStep) {
  CycleCountGovernor gov(1, /*headroom=*/1.5);
  // One quantum fully busy at 132.7 -> target 199 MHz -> step 9 (206.4 is
  // step 10; 191.7 < 199 so the chosen step is 10).
  const auto request = gov.OnQuantum(Sample(1.0, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(*request->step, 10);
}

TEST(CycleCountGovernorTest, ResetForgetsWindow) {
  CycleCountGovernor gov(4);
  for (int i = 0; i < 4; ++i) {
    gov.OnQuantum(Sample(1.0, 10));
  }
  gov.Reset();
  EXPECT_DOUBLE_EQ(gov.AverageBusyMhz(), 0.0);
}

TEST(CycleCountGovernorTest, NameIncludesWindow) {
  EXPECT_STREQ(CycleCountGovernor(4).Name(), "cycles4");
}

}  // namespace
}  // namespace dcs
