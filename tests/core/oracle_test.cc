#include "src/core/oracle.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/workload/synthetic.h"

namespace dcs {
namespace {

constexpr double kMinSpeed = 59.0 / 206.4;

TEST(OptOracleTest, ConstantSpeedEqualsMeanWork) {
  const std::vector<double> work = {0.5, 0.5, 0.5, 0.5};
  const OracleResult result = RunOptOracle(work, kMinSpeed);
  ASSERT_EQ(result.speeds.size(), 4u);
  for (const double s : result.speeds) {
    EXPECT_DOUBLE_EQ(s, 0.5);
  }
  EXPECT_DOUBLE_EQ(result.total_excess, 0.0);
}

TEST(OptOracleTest, StretchesBurstyWorkAcrossIdle) {
  // 1.0 then 0.0 repeatedly: OPT runs at 0.5 throughout.
  const std::vector<double> work = {1.0, 0.0, 1.0, 0.0};
  const OracleResult result = RunOptOracle(work, kMinSpeed);
  EXPECT_DOUBLE_EQ(result.speeds[0], 0.5);
  // Work carries over within the trace (excess exists mid-trace) but the
  // energy is the quadratic optimum.
  EXPECT_DOUBLE_EQ(result.energy, 4.0 * 0.5 * 0.5 * 0.5 * 2.0);  // 2 busy units at s=0.5
}

TEST(OptOracleTest, RespectsMinimumSpeed) {
  const std::vector<double> work = {0.01, 0.01};
  const OracleResult result = RunOptOracle(work, kMinSpeed);
  for (const double s : result.speeds) {
    EXPECT_DOUBLE_EQ(s, kMinSpeed);
  }
}

TEST(OptOracleTest, SavesEnergyVersusFullSpeed) {
  const std::vector<double> work = {0.3, 0.7, 0.1, 0.5};
  const OracleResult result = RunOptOracle(work, kMinSpeed);
  EXPECT_LT(result.energy, result.full_speed_energy);
  EXPECT_GT(result.SavingsPercent(), 0.0);
}

TEST(FutureOracleTest, ExactlyFinishesEachInterval) {
  const std::vector<double> work = {0.3, 0.8, 0.2};
  const OracleResult result = RunFutureOracle(work, 0.05);
  EXPECT_DOUBLE_EQ(result.speeds[0], 0.3);
  EXPECT_DOUBLE_EQ(result.speeds[1], 0.8);
  EXPECT_DOUBLE_EQ(result.speeds[2], 0.2);
  EXPECT_DOUBLE_EQ(result.total_excess, 0.0);
  EXPECT_DOUBLE_EQ(result.missed_fraction, 0.0);
}

TEST(FutureOracleTest, CarryOverWhenWorkExceedsCapacity) {
  // Work 1.0 arriving twice cannot be compressed; FUTURE never misses when
  // work fits, but saturated intervals carry nothing here (w <= 1).
  const std::vector<double> work = {1.0, 1.0};
  const OracleResult result = RunFutureOracle(work, 0.05);
  EXPECT_DOUBLE_EQ(result.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(result.total_excess, 0.0);
}

TEST(FutureOracleTest, BeatsFullSpeedOnPartialUtilization) {
  // Saturated intervals cannot be compressed, but partially busy ones can:
  // at speed w the whole interval runs busy with quadratically less energy.
  std::vector<double> work;
  for (int i = 0; i < 50; ++i) {
    work.push_back(i % 2 == 0 ? 0.7 : 0.3);
  }
  const OracleResult result = RunFutureOracle(work, kMinSpeed);
  EXPECT_LT(result.energy, result.full_speed_energy);
  EXPECT_DOUBLE_EQ(result.missed_fraction, 0.0);
}

TEST(FutureOracleTest, SaturatedWaveSavesNothing) {
  // The 9-busy/1-idle wave of section 5.3 alternates saturated and empty
  // intervals; with per-interval deadlines there is nothing to stretch.
  const auto wave = RectangleWaveSamples(9, 1, 100);
  const OracleResult result = RunFutureOracle(wave, kMinSpeed);
  EXPECT_DOUBLE_EQ(result.energy, result.full_speed_energy);
}

TEST(WeiserPastOracleTest, FirstIntervalFullSpeed) {
  const std::vector<double> work = {0.2, 0.2};
  const OracleResult result = RunWeiserPastOracle(work, 0.05);
  EXPECT_DOUBLE_EQ(result.speeds[0], 1.0);
}

TEST(WeiserPastOracleTest, LagsOneIntervalBehind) {
  const std::vector<double> work = {0.2, 0.9, 0.2, 0.2};
  const OracleResult result = RunWeiserPastOracle(work, 0.05);
  // Speed for interval 1 reflects interval 0's work (0.2), so the 0.9 burst
  // overruns and carries excess into interval 2.
  EXPECT_DOUBLE_EQ(result.speeds[1], 0.2);
  EXPECT_GT(result.total_excess, 0.0);
  EXPECT_GT(result.missed_fraction, 0.0);
}

TEST(WeiserPastOracleTest, CatchesUpViaExcessKnowledge) {
  const std::vector<double> work = {0.2, 0.9, 0.0, 0.0};
  const OracleResult result = RunWeiserPastOracle(work, 0.05);
  // Interval 2's speed covers the excess pushed out of interval 1
  // (0.9 + 0.2 pending - 0.2 done = 0.9 pending -> speed 0.9).
  EXPECT_NEAR(result.speeds[2], 0.9, 1e-12);
}

TEST(OracleComparisonTest, OptNeverWorseThanFuture) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> work;
    for (int i = 0; i < 50; ++i) {
      work.push_back(rng.NextDouble());
    }
    const double opt = RunOptOracle(work, kMinSpeed).energy;
    const double future = RunFutureOracle(work, kMinSpeed).energy;
    EXPECT_LE(opt, future + 1e-9) << "trial " << trial;
  }
}

TEST(OracleComparisonTest, OptNeverMissesFutureNeverMisses) {
  const auto wave = RectangleWaveSamples(3, 2, 60);
  EXPECT_DOUBLE_EQ(RunFutureOracle(wave, kMinSpeed).missed_fraction, 0.0);
  // OPT may carry work *within* the trace but finishes it overall; its
  // total excess at the final interval is ~0.
  const OracleResult opt = RunOptOracle(wave, kMinSpeed);
  ASSERT_FALSE(opt.speeds.empty());
}

TEST(OracleEdgeCases, EmptyTrace) {
  const std::vector<double> empty;
  EXPECT_EQ(RunOptOracle(empty, kMinSpeed).energy, 0.0);
  EXPECT_EQ(RunFutureOracle(empty, kMinSpeed).missed_fraction, 0.0);
  EXPECT_TRUE(RunWeiserPastOracle(empty, kMinSpeed).speeds.empty());
}

TEST(OracleEdgeCases, OutOfRangeWorkClamped) {
  const std::vector<double> work = {2.0, -1.0};
  const OracleResult result = RunFutureOracle(work, kMinSpeed);
  EXPECT_DOUBLE_EQ(result.speeds[0], 1.0);
  EXPECT_DOUBLE_EQ(result.speeds[1], kMinSpeed);
}

TEST(OracleEdgeCases, SavingsPercentZeroWhenNoWork) {
  const std::vector<double> work = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(RunOptOracle(work, kMinSpeed).SavingsPercent(), 0.0);
}

}  // namespace
}  // namespace dcs
