#include "src/core/predictor.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/rng.h"
#include <vector>

namespace dcs {
namespace {

TEST(PastPredictorTest, ReturnsLastUtilization) {
  PastPredictor past;
  EXPECT_DOUBLE_EQ(past.Update(0.3), 0.3);
  EXPECT_DOUBLE_EQ(past.Update(0.9), 0.9);
  EXPECT_DOUBLE_EQ(past.Current(), 0.9);
}

TEST(PastPredictorTest, ClampsInput) {
  PastPredictor past;
  EXPECT_DOUBLE_EQ(past.Update(1.7), 1.0);
  EXPECT_DOUBLE_EQ(past.Update(-0.2), 0.0);
}

TEST(PastPredictorTest, ResetClears) {
  PastPredictor past;
  past.Update(0.8);
  past.Reset();
  EXPECT_DOUBLE_EQ(past.Current(), 0.0);
}

TEST(PastPredictorTest, NameAndClone) {
  PastPredictor past;
  EXPECT_EQ(past.Name(), "PAST");
  past.Update(0.4);
  auto clone = past.Clone();
  EXPECT_DOUBLE_EQ(clone->Current(), 0.4);
}

TEST(AvgNPredictorTest, Avg0EquivalentToPast) {
  AvgNPredictor avg0(0);
  PastPredictor past;
  for (double u : {0.1, 0.9, 0.4, 1.0, 0.0}) {
    EXPECT_DOUBLE_EQ(avg0.Update(u), past.Update(u));
  }
}

TEST(AvgNPredictorTest, RecursionMatchesDefinition) {
  // W_t = (N*W + U)/(N+1).
  AvgNPredictor avg(3);
  double w = 0.0;
  for (double u : {1.0, 0.5, 0.25, 0.75}) {
    w = (3 * w + u) / 4;
    EXPECT_DOUBLE_EQ(avg.Update(u), w);
  }
}

TEST(AvgNPredictorTest, PaperTable1Sequence) {
  // Table 1 of the paper: AVG9 fed 15 active quanta then idle quanta,
  // values printed as <W * 10^4>.
  AvgNPredictor avg(9);
  const std::vector<int> active_expected = {1000, 1900, 2710, 3439, 4095, 4686,
                                            5217, 5695, 6126, 6513, 6862, 7176,
                                            7458, 7712, 7941};
  for (const int expected : active_expected) {
    const double w = avg.Update(1.0);
    EXPECT_EQ(static_cast<int>(std::floor(w * 10000.0 + 0.5)), expected);
  }
  const std::vector<int> idle_expected = {7147, 6432, 5789, 5210, 4689};
  for (const int expected : idle_expected) {
    const double w = avg.Update(0.0);
    EXPECT_EQ(static_cast<int>(std::floor(w * 10000.0 + 0.5)), expected);
  }
}

TEST(AvgNPredictorTest, ReachabilityLag) {
  // "Starting from an idle state, the clock will not scale to 206MHz for
  // 120 ms (12 quanta)" with AVG9 and a 70% threshold.
  AvgNPredictor avg(9);
  int quanta = 0;
  while (avg.Update(1.0) <= 0.70) {
    ++quanta;
  }
  EXPECT_EQ(quanta + 1, 12);
}

TEST(AvgNPredictorTest, AsymmetricDriftAtThreshold) {
  // Table 1's observation: at W ~= 70%, one fully active quantum raises W to
  // 73% but one idle quantum lowers it to 63% — a downward bias.
  AvgNPredictor up(9);
  AvgNPredictor down(9);
  // Prime both to exactly 0.70.
  for (int i = 0; i < 1000; ++i) {
    up.Update(0.70);
    down.Update(0.70);
  }
  EXPECT_NEAR(up.Update(1.0), 0.73, 0.001);
  EXPECT_NEAR(down.Update(0.0), 0.63, 0.001);
}

TEST(AvgNPredictorTest, StaysInUnitInterval) {
  AvgNPredictor avg(5);
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double w = avg.Update(rng.NextDouble() * 2.0 - 0.5);  // deliberately out of range
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(AvgNPredictorTest, ConvergesToConstantInput) {
  AvgNPredictor avg(9);
  for (int i = 0; i < 500; ++i) {
    avg.Update(0.42);
  }
  EXPECT_NEAR(avg.Current(), 0.42, 1e-6);
}

TEST(AvgNPredictorTest, CloneIsIndependent) {
  AvgNPredictor avg(4);
  avg.Update(0.8);
  auto clone = avg.Clone();
  avg.Update(0.0);
  EXPECT_NE(clone->Current(), avg.Current());
}

TEST(AvgNPredictorTest, NameIncludesN) {
  EXPECT_EQ(AvgNPredictor(9).Name(), "AVG9");
  EXPECT_EQ(AvgNPredictor(0).Name(), "AVG0");
}

TEST(SlidingWindowPredictorTest, MeanOfWindow) {
  SlidingWindowPredictor win(3);
  EXPECT_DOUBLE_EQ(win.Update(0.3), 0.3);
  EXPECT_DOUBLE_EQ(win.Update(0.6), 0.45);
  EXPECT_DOUBLE_EQ(win.Update(0.9), 0.6);
  EXPECT_DOUBLE_EQ(win.Update(0.0), 0.5);  // 0.6, 0.9, 0.0
}

TEST(SlidingWindowPredictorTest, ForgetsOldSamplesCompletely) {
  SlidingWindowPredictor win(2);
  win.Update(1.0);
  win.Update(0.0);
  win.Update(0.0);
  EXPECT_DOUBLE_EQ(win.Current(), 0.0);
}

TEST(SlidingWindowPredictorTest, ResetAndName) {
  SlidingWindowPredictor win(10);
  EXPECT_EQ(win.Name(), "WIN10");
  win.Update(1.0);
  win.Reset();
  EXPECT_DOUBLE_EQ(win.Current(), 0.0);
}

// Property sweep: every predictor maps [0,1] inputs to [0,1] outputs and
// converges on constant input.
class PredictorPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<UtilizationPredictor> Make() const {
    const int id = GetParam();
    if (id == 0) {
      return std::make_unique<PastPredictor>();
    }
    if (id <= 10) {
      return std::make_unique<AvgNPredictor>(id);
    }
    return std::make_unique<SlidingWindowPredictor>(id - 10);
  }
};

TEST_P(PredictorPropertyTest, OutputsInUnitInterval) {
  auto predictor = Make();
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 2000; ++i) {
    const double w = predictor->Update(rng.NextDouble());
    ASSERT_GE(w, 0.0);
    ASSERT_LE(w, 1.0);
  }
}

TEST_P(PredictorPropertyTest, ConvergesOnConstantInput) {
  auto predictor = Make();
  for (int i = 0; i < 2000; ++i) {
    predictor->Update(0.37);
  }
  EXPECT_NEAR(predictor->Current(), 0.37, 1e-3);
}

TEST_P(PredictorPropertyTest, CloneMatchesOriginal) {
  auto predictor = Make();
  Rng rng(GetParam() + 200);
  for (int i = 0; i < 50; ++i) {
    predictor->Update(rng.NextDouble());
  }
  auto clone = predictor->Clone();
  EXPECT_DOUBLE_EQ(clone->Current(), predictor->Current());
  // Both evolve identically afterwards.
  for (int i = 0; i < 50; ++i) {
    const double u = rng.NextDouble();
    EXPECT_DOUBLE_EQ(clone->Update(u), predictor->Update(u));
  }
}

TEST_P(PredictorPropertyTest, ResetRoundTripMatchesFreshInstance) {
  // Update -> Reset() must return the predictor to its factory state: the
  // replayed sequence produces exactly the outputs of a never-used instance.
  auto used = Make();
  auto fresh = Make();
  Rng rng(GetParam() + 300);
  for (int i = 0; i < 100; ++i) {
    used->Update(rng.NextDouble());
  }
  used->Reset();
  EXPECT_DOUBLE_EQ(used->Current(), 0.0);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.NextDouble();
    EXPECT_DOUBLE_EQ(used->Update(u), fresh->Update(u));
  }
}

TEST_P(PredictorPropertyTest, CloneResetRoundTrip) {
  // Clone() -> Reset() on the clone leaves the original untouched, and the
  // reset clone behaves like a fresh instance (sweeps rely on both when
  // cloning a configured prototype per job).
  auto original = Make();
  Rng rng(GetParam() + 400);
  for (int i = 0; i < 60; ++i) {
    original->Update(rng.NextDouble());
  }
  const double before = original->Current();
  auto clone = original->Clone();
  clone->Reset();
  EXPECT_DOUBLE_EQ(original->Current(), before);
  EXPECT_DOUBLE_EQ(clone->Current(), 0.0);
  EXPECT_EQ(clone->Name(), original->Name());
  auto fresh = Make();
  for (int i = 0; i < 60; ++i) {
    const double u = rng.NextDouble();
    EXPECT_DOUBLE_EQ(clone->Update(u), fresh->Update(u));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPredictors, PredictorPropertyTest, ::testing::Range(0, 16));

TEST(AvgNPredictorTest, Avg0TracksPastThroughCloneAndReset) {
  // AVG_0 degenerates to PAST, and the equivalence survives Clone()/Reset().
  AvgNPredictor avg0(0);
  PastPredictor past;
  for (double u : {0.2, 0.8, 0.5}) {
    EXPECT_DOUBLE_EQ(avg0.Update(u), past.Update(u));
  }
  auto avg0_clone = avg0.Clone();
  auto past_clone = past.Clone();
  EXPECT_DOUBLE_EQ(avg0_clone->Current(), past_clone->Current());
  for (double u : {1.0, 0.0, 0.66}) {
    EXPECT_DOUBLE_EQ(avg0_clone->Update(u), past_clone->Update(u));
  }
  avg0.Reset();
  past.Reset();
  for (double u : {0.9, 0.1}) {
    EXPECT_DOUBLE_EQ(avg0.Update(u), past.Update(u));
  }
}

}  // namespace
}  // namespace dcs
