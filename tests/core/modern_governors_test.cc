#include "src/core/modern_governors.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

UtilizationSample Sample(double utilization, int step) {
  UtilizationSample s;
  s.utilization = utilization;
  s.step = step;
  return s;
}

TEST(OndemandGovernorTest, BurstsToMaxAboveThreshold) {
  OndemandGovernor gov;
  const auto request = gov.OnQuantum(Sample(0.95, 3));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 10);
}

TEST(OndemandGovernorTest, ProportionalTargetBelowThreshold) {
  OndemandGovernor gov;
  // util 0.4 at 206.4 MHz: target = 206.3936 * 0.4 / 0.8 = 103.197 -> step 3
  // (103.2192 MHz just covers it).
  const auto request = gov.OnQuantum(Sample(0.4, 10));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 3);
}

TEST(OndemandGovernorTest, NoRequestWhenAlreadyRight) {
  OndemandGovernor gov;
  EXPECT_FALSE(gov.OnQuantum(Sample(0.79, 10)).has_value());
}

TEST(OndemandGovernorTest, SamplingWindowUsesMaxUtilization) {
  OndemandConfig config;
  config.sampling_quanta = 3;
  OndemandGovernor gov(config);
  EXPECT_FALSE(gov.OnQuantum(Sample(0.2, 5)).has_value());
  EXPECT_FALSE(gov.OnQuantum(Sample(0.95, 5)).has_value());
  // Decision quantum: the 0.95 spike dominates -> burst to max.
  const auto request = gov.OnQuantum(Sample(0.1, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 10);
}

TEST(OndemandGovernorTest, ResetRestartsWindow) {
  OndemandConfig config;
  config.sampling_quanta = 2;
  OndemandGovernor gov(config);
  gov.OnQuantum(Sample(1.0, 5));
  gov.Reset();
  // After reset the window restarts; one more sample is not enough.
  EXPECT_FALSE(gov.OnQuantum(Sample(1.0, 5)).has_value());
}

TEST(OndemandGovernorTest, RespectsStepBounds) {
  OndemandConfig config;
  config.min_step = 2;
  config.max_step = 8;
  OndemandGovernor gov(config);
  auto request = gov.OnQuantum(Sample(0.99, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 8);
  request = gov.OnQuantum(Sample(0.01, 8));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 2);
}

TEST(SchedutilGovernorTest, TargetsHeadroomTimesUtilization) {
  SchedutilConfig config;
  config.smoothing = 0.0;  // no filter: direct mapping
  SchedutilGovernor gov(config);
  // Fully busy at 132.7: scaled util = 132.7/206.4 = 0.643; target =
  // 1.25 * 0.643 * 206.4 = 165.9 -> step 8 (176.9).
  const auto request = gov.OnQuantum(Sample(1.0, 5));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 8);
}

TEST(SchedutilGovernorTest, ConvergesUpwardUnderSaturation) {
  SchedutilConfig config;
  config.smoothing = 0.0;
  SchedutilGovernor gov(config);
  int step = 0;
  for (int i = 0; i < 10; ++i) {
    const auto request = gov.OnQuantum(Sample(1.0, step));
    if (request.has_value()) {
      step = *request->step;
    }
  }
  EXPECT_EQ(step, 10);
}

TEST(SchedutilGovernorTest, IdleDecaysToFloor) {
  SchedutilConfig config;
  config.smoothing = 0.5;
  SchedutilGovernor gov(config);
  int step = 10;
  for (int i = 0; i < 30; ++i) {
    const auto request = gov.OnQuantum(Sample(0.0, step));
    if (request.has_value()) {
      step = *request->step;
    }
  }
  EXPECT_EQ(step, 0);
}

TEST(SchedutilGovernorTest, SmoothingDampsSingleSpike) {
  SchedutilConfig config;
  config.smoothing = 0.9;
  SchedutilGovernor gov(config);
  // One spike from idle barely moves the smoothed utilization.
  gov.OnQuantum(Sample(0.0, 5));
  const auto request = gov.OnQuantum(Sample(1.0, 5));
  EXPECT_LT(gov.scaled_utilization(), 0.1);
  if (request.has_value()) {
    EXPECT_LT(*request->step, 5);
  }
}

TEST(SchedutilGovernorTest, RateLimitBlocksBackToBackChanges) {
  SchedutilConfig config;
  config.smoothing = 0.0;
  config.rate_limit_quanta = 5;
  SchedutilGovernor gov(config);
  int changes = 0;
  for (int i = 0; i < 10; ++i) {
    if (gov.OnQuantum(Sample(1.0, 0)).has_value()) {
      ++changes;
    }
  }
  EXPECT_LE(changes, 2);
}

TEST(SchedutilGovernorTest, ResetClearsState) {
  SchedutilGovernor gov;
  gov.OnQuantum(Sample(1.0, 10));
  gov.Reset();
  EXPECT_DOUBLE_EQ(gov.scaled_utilization(), 0.0);
}

TEST(ModernGovernorNames, AreStable) {
  EXPECT_STREQ(OndemandGovernor().Name(), "ondemand");
  EXPECT_STREQ(SchedutilGovernor().Name(), "schedutil");
}

}  // namespace
}  // namespace dcs
