#include "src/core/speed_policy.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

constexpr int kMin = 0;
constexpr int kMax = 10;

TEST(OneStepPolicyTest, IncrementsAndDecrements) {
  OneStepPolicy one;
  EXPECT_EQ(one.Next(5, ScaleDirection::kUp, kMin, kMax), 6);
  EXPECT_EQ(one.Next(5, ScaleDirection::kDown, kMin, kMax), 4);
}

TEST(OneStepPolicyTest, ClampsAtBounds) {
  OneStepPolicy one;
  EXPECT_EQ(one.Next(10, ScaleDirection::kUp, kMin, kMax), 10);
  EXPECT_EQ(one.Next(0, ScaleDirection::kDown, kMin, kMax), 0);
}

TEST(OneStepPolicyTest, RespectsNarrowedRange) {
  OneStepPolicy one;
  EXPECT_EQ(one.Next(7, ScaleDirection::kUp, 3, 7), 7);
  EXPECT_EQ(one.Next(3, ScaleDirection::kDown, 3, 7), 3);
}

TEST(DoubleStepPolicyTest, DoublesAfterIncrement) {
  // "Since the lowest clock step on the Itsy is zero, we increment the clock
  // index value before doubling it."
  DoubleStepPolicy dbl;
  EXPECT_EQ(dbl.Next(0, ScaleDirection::kUp, kMin, kMax), 2);
  EXPECT_EQ(dbl.Next(2, ScaleDirection::kUp, kMin, kMax), 6);
  EXPECT_EQ(dbl.Next(4, ScaleDirection::kUp, kMin, kMax), 10);
}

TEST(DoubleStepPolicyTest, UpEscapesStepZero) {
  DoubleStepPolicy dbl;
  EXPECT_GT(dbl.Next(0, ScaleDirection::kUp, kMin, kMax), 0);
}

TEST(DoubleStepPolicyTest, UpSaturates) {
  DoubleStepPolicy dbl;
  EXPECT_EQ(dbl.Next(6, ScaleDirection::kUp, kMin, kMax), 10);
  EXPECT_EQ(dbl.Next(10, ScaleDirection::kUp, kMin, kMax), 10);
}

TEST(DoubleStepPolicyTest, DownHalves) {
  DoubleStepPolicy dbl;
  EXPECT_EQ(dbl.Next(10, ScaleDirection::kDown, kMin, kMax), 5);
  EXPECT_EQ(dbl.Next(5, ScaleDirection::kDown, kMin, kMax), 2);
  EXPECT_EQ(dbl.Next(1, ScaleDirection::kDown, kMin, kMax), 0);
  EXPECT_EQ(dbl.Next(0, ScaleDirection::kDown, kMin, kMax), 0);
}

TEST(PegStepPolicyTest, PegsToExtremes) {
  PegStepPolicy peg;
  for (int step = 0; step <= 10; ++step) {
    EXPECT_EQ(peg.Next(step, ScaleDirection::kUp, kMin, kMax), kMax);
    EXPECT_EQ(peg.Next(step, ScaleDirection::kDown, kMin, kMax), kMin);
  }
}

TEST(PegStepPolicyTest, PegsToConfiguredRange) {
  PegStepPolicy peg;
  EXPECT_EQ(peg.Next(5, ScaleDirection::kUp, 2, 8), 8);
  EXPECT_EQ(peg.Next(5, ScaleDirection::kDown, 2, 8), 2);
}

TEST(SpeedPolicyFactoryTest, KnownNames) {
  EXPECT_NE(MakeSpeedPolicy("one"), nullptr);
  EXPECT_NE(MakeSpeedPolicy("double"), nullptr);
  EXPECT_NE(MakeSpeedPolicy("peg"), nullptr);
  EXPECT_EQ(MakeSpeedPolicy("warp"), nullptr);
  EXPECT_EQ(MakeSpeedPolicy(""), nullptr);
}

TEST(SpeedPolicyFactoryTest, NamesRoundTrip) {
  for (const char* name : {"one", "double", "peg"}) {
    EXPECT_EQ(MakeSpeedPolicy(name)->Name(), name);
  }
}

TEST(SpeedPolicyCloneTest, ClonesPreserveBehaviour) {
  for (const char* name : {"one", "double", "peg"}) {
    auto policy = MakeSpeedPolicy(name);
    auto clone = policy->Clone();
    for (int step = 0; step <= 10; ++step) {
      EXPECT_EQ(policy->Next(step, ScaleDirection::kUp, kMin, kMax),
                clone->Next(step, ScaleDirection::kUp, kMin, kMax));
      EXPECT_EQ(policy->Next(step, ScaleDirection::kDown, kMin, kMax),
                clone->Next(step, ScaleDirection::kDown, kMin, kMax));
    }
  }
}

// Property: every policy's output is within bounds and moves (weakly) in the
// requested direction.
class SpeedPolicyPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SpeedPolicyPropertyTest, MovesWeaklyInDirectionWithinBounds) {
  auto policy = MakeSpeedPolicy(GetParam());
  ASSERT_NE(policy, nullptr);
  for (int step = 0; step <= 10; ++step) {
    const int up = policy->Next(step, ScaleDirection::kUp, kMin, kMax);
    const int down = policy->Next(step, ScaleDirection::kDown, kMin, kMax);
    EXPECT_GE(up, kMin);
    EXPECT_LE(up, kMax);
    EXPECT_GE(down, kMin);
    EXPECT_LE(down, kMax);
    EXPECT_GE(up, step == kMax ? kMax : step);
    EXPECT_LE(down, step == kMin ? kMin : step);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SpeedPolicyPropertyTest,
                         ::testing::Values("one", "double", "peg"));

}  // namespace
}  // namespace dcs
