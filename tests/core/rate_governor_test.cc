#include "src/core/rate_governor.h"

#include <gtest/gtest.h>

#include "src/exp/experiment.h"

namespace dcs {
namespace {

UtilizationSample Sample(double utilization, int step) {
  UtilizationSample s;
  s.utilization = utilization;
  s.step = step;
  return s;
}

TEST(SaturationAwareGovernorTest, EscapesTheFigure5Ceiling) {
  // The naive cycle counter is pinned at the floor under saturation; the
  // saturation-aware repair pegs up immediately.
  SaturationAwareGovernor governor;
  const auto request = governor.OnQuantum(Sample(1.0, 0));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 10);
}

TEST(SaturationAwareGovernorTest, TracksRateWhenUnsaturated) {
  SaturationAwareGovernor governor;
  // Four quanta at 50% of 206.4 MHz: demand ~103.2 MHz, * 1.15 headroom =
  // 118.7 -> step 5 (132.7 MHz covers it; 118.0 is step 4, just below).
  std::optional<SpeedRequest> request;
  for (int i = 0; i < 4; ++i) {
    request = governor.OnQuantum(Sample(0.5, 10));
  }
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 5);
}

TEST(SaturationAwareGovernorTest, SaturationFlushesStaleWindow) {
  SaturationAwareGovernor governor;
  for (int i = 0; i < 4; ++i) {
    governor.OnQuantum(Sample(0.2, 0));  // slow & mostly idle
  }
  governor.OnQuantum(Sample(1.0, 0));  // saturation escape
  EXPECT_DOUBLE_EQ(governor.AverageBusyMhz(), 0.0);
}

TEST(SaturationAwareGovernorTest, IdleDropsToFloor) {
  SaturationAwareGovernor governor;
  int step = 10;
  for (int i = 0; i < 8; ++i) {
    const auto request = governor.OnQuantum(Sample(0.0, step));
    if (request.has_value()) {
      step = *request->step;
    }
  }
  EXPECT_EQ(step, 0);
}

TEST(SaturationAwareGovernorTest, ConfigurableEscapeStep) {
  RateGovernorConfig config;
  config.escape_steps = 2;
  SaturationAwareGovernor governor(config);
  const auto request = governor.OnQuantum(Sample(1.0, 3));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->step, 5);
}

TEST(SaturationAwareGovernorTest, ResetAndName) {
  SaturationAwareGovernor governor;
  EXPECT_STREQ(governor.Name(), "satrate4");
  governor.OnQuantum(Sample(0.5, 10));
  governor.Reset();
  EXPECT_DOUBLE_EQ(governor.AverageBusyMhz(), 0.0);
}

TEST(SaturationAwareGovernorIntegrationTest, SafeWhereCyclesPolicyFails) {
  // Head-to-head with the naive policy on MPEG: the repair eliminates the
  // catastrophic misses.
  ExperimentConfig config;
  config.app = "mpeg";
  config.seed = 9;
  config.duration = SimTime::Seconds(30);
  config.governor = "satrate4";
  const ExperimentResult fixed = RunExperiment(config);
  config.governor = "cycles4";
  const ExperimentResult naive = RunExperiment(config);
  EXPECT_EQ(fixed.deadline_misses, 0);
  EXPECT_GT(naive.deadline_misses, 100);
}

TEST(SaturationAwareGovernorIntegrationTest, SavesEnergyVersusTopSpeed) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.seed = 9;
  config.duration = SimTime::Seconds(30);
  config.governor = "satrate4";
  const ExperimentResult fixed = RunExperiment(config);
  config.governor = "fixed-206.4";
  const ExperimentResult baseline = RunExperiment(config);
  EXPECT_LT(fixed.energy_joules, baseline.energy_joules);
}

}  // namespace
}  // namespace dcs
