#include "src/core/martin_bound.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

const PeripheralState kDisplayOn{true, false};

TEST(MartinBoundTest, CurveCoversAllSteps) {
  const auto curve = ComputeMartinCurve(PowerModel{}, Battery{}, MemoryProfile{}, kDisplayOn);
  for (int step = 0; step < kNumClockSteps; ++step) {
    EXPECT_EQ(curve[static_cast<std::size_t>(step)].step, step);
    EXPECT_GT(curve[static_cast<std::size_t>(step)].busy_watts, 0.0);
    EXPECT_GT(curve[static_cast<std::size_t>(step)].lifetime_hours, 0.0);
    EXPECT_GT(curve[static_cast<std::size_t>(step)].computations_per_discharge, 0.0);
  }
}

TEST(MartinBoundTest, InteriorMaximumExists) {
  // On the Itsy models the optimum is neither the floor nor the ceiling —
  // Martin's whole point.
  const int bound = MartinLowerBoundStep(PowerModel{}, Battery{}, MemoryProfile{}, kDisplayOn);
  EXPECT_GT(bound, 0);
  EXPECT_LT(bound, kNumClockSteps - 1);
}

TEST(MartinBoundTest, BoundSitsAtTheLowVoltageCeiling) {
  // The 1.23 V rail is the dominant lever: the last step that can use it
  // (162.2 MHz) maximises computations per discharge for the default models.
  const int bound = MartinLowerBoundStep(PowerModel{}, Battery{}, MemoryProfile{}, kDisplayOn);
  EXPECT_EQ(bound, kMaxStepAtLowVoltage);
}

TEST(MartinBoundTest, LifetimeDecreasesWithStepPower) {
  const auto curve = ComputeMartinCurve(PowerModel{}, Battery{}, MemoryProfile{}, kDisplayOn);
  for (int step = 1; step < kNumClockSteps; ++step) {
    EXPECT_GE(curve[static_cast<std::size_t>(step - 1)].lifetime_hours,
              curve[static_cast<std::size_t>(step)].lifetime_hours);
  }
}

TEST(MartinBoundTest, MemoryBoundWorkloadsGetFewerComputations) {
  const auto compute = ComputeMartinCurve(PowerModel{}, Battery{}, MemoryProfile{}, kDisplayOn);
  const auto memory =
      ComputeMartinCurve(PowerModel{}, Battery{}, MemoryProfile{25.0, 10.0}, kDisplayOn);
  for (int step = 0; step < kNumClockSteps; ++step) {
    EXPECT_LT(memory[static_cast<std::size_t>(step)].computations_per_discharge,
              compute[static_cast<std::size_t>(step)].computations_per_discharge);
  }
}

TEST(MartinBoundTest, IdealPlatformPrefersSlowest) {
  // With an ideal battery and a purely dynamic power model (no static
  // residue, no peripherals), slower is always more efficient per cycle:
  // the bound falls to step 0.
  PowerModelParams params;
  params.core_static_busy_mw = 0.0;
  params.peripherals_mw = 0.0;
  params.peripherals_display_off_mw = 0.0;
  params.audio_mw = 0.0;
  BatteryParams battery_params;
  battery_params.peukert_exponent = 1.0;
  const int bound = MartinLowerBoundStep(PowerModel{params}, Battery{battery_params},
                                         MemoryProfile{}, PeripheralState{false, false});
  EXPECT_EQ(bound, 0);
}

TEST(MartinBoundTest, VoltageDiscontinuityVisibleInPower) {
  // Crossing the 1.23 V ceiling (step 7 -> 8) jumps busy power by more than
  // a normal step-to-step increment.
  const auto curve = ComputeMartinCurve(PowerModel{}, Battery{}, MemoryProfile{}, kDisplayOn);
  const double jump = curve[8].busy_watts - curve[7].busy_watts;
  const double normal = curve[7].busy_watts - curve[6].busy_watts;
  EXPECT_GT(jump, 2.0 * normal);
}

}  // namespace
}  // namespace dcs
