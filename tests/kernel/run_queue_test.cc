#include "src/kernel/run_queue.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(RunQueueTest, StartsEmpty) {
  RunQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(RunQueueTest, FifoOrder) {
  RunQueue q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 3);
  EXPECT_TRUE(q.Empty());
}

TEST(RunQueueTest, RoundRobinRotation) {
  RunQueue q;
  q.Push(1);
  q.Push(2);
  const Pid first = q.Pop();
  q.Push(first);  // preempted task goes to the back
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), 1);
}

TEST(RunQueueTest, Contains) {
  RunQueue q;
  q.Push(5);
  EXPECT_TRUE(q.Contains(5));
  EXPECT_FALSE(q.Contains(6));
}

TEST(RunQueueTest, RemoveMiddle) {
  RunQueue q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_TRUE(q.Remove(2));
  EXPECT_FALSE(q.Contains(2));
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 3);
}

TEST(RunQueueTest, RemoveAbsentReturnsFalse) {
  RunQueue q;
  q.Push(1);
  EXPECT_FALSE(q.Remove(9));
  EXPECT_EQ(q.Size(), 1u);
}

}  // namespace
}  // namespace dcs
