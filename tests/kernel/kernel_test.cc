#include "src/kernel/kernel.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/hw/itsy.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

// Records every utilization sample; optionally replays scripted requests.
class RecordingPolicy final : public ClockPolicy {
 public:
  const char* Name() const override { return "recording"; }

  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override {
    samples.push_back(sample);
    if (next_request.has_value()) {
      SpeedRequest r = *next_request;
      next_request.reset();
      return r;
    }
    return std::nullopt;
  }

  std::vector<UtilizationSample> samples;
  std::optional<SpeedRequest> next_request;
};

class KernelTest : public ::testing::Test {
 protected:
  Simulator sim;
  Itsy itsy{sim};
  Kernel kernel{sim, itsy};
};

TEST_F(KernelTest, IdleSystemNapsWithOnlyTickOverhead) {
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(itsy.exec_state(), ExecState::kNap);
  // Utilization floor = 6 us overhead per 10 ms quantum = 0.06%.
  EXPECT_NEAR(kernel.last_utilization(), 0.0006, 1e-4);
  EXPECT_EQ(kernel.quanta_elapsed(), 100u);
}

TEST_F(KernelTest, ConstantUtilizationIsAccounted) {
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(0.5));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(2));
  const TraceSeries* util = kernel.sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  // Skip the first few quanta (phase alignment), then expect ~50%.
  double sum = 0.0;
  int n = 0;
  for (std::size_t i = 10; i < util->size(); ++i) {
    sum += util->points()[i].value;
    ++n;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.05);
}

TEST_F(KernelTest, FullySpinningTaskSaturatesUtilization) {
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(500));
  EXPECT_NEAR(kernel.last_utilization(), 1.0, 1e-6);
  EXPECT_EQ(itsy.exec_state(), ExecState::kBusy);
}

TEST_F(KernelTest, ComputeWorkCompletesAtExpectedWallTime) {
  // 206.4e6 base cycles of pure compute at 206.4 MHz = 1.0 s of CPU time.
  auto workload = std::make_unique<ComputeOnceWorkload>(206.4e6);
  ComputeOnceWorkload* raw = workload.get();
  kernel.AddTask(std::move(workload));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(2));
  ASSERT_TRUE(raw->done());
  // Tick overhead stretches wall time by ~0.06%.
  const double seconds = raw->completed_at().ToSeconds();
  EXPECT_GT(seconds, 1.0);
  EXPECT_LT(seconds, 1.01);
}

TEST_F(KernelTest, WorkRunsSlowerAtLowClockStep) {
  ItsyConfig config;
  config.initial_step = 0;  // 59 MHz
  Simulator slow_sim;
  Itsy slow_itsy(slow_sim, config);
  Kernel slow_kernel(slow_sim, slow_itsy);
  auto workload = std::make_unique<ComputeOnceWorkload>(59.0e6);
  ComputeOnceWorkload* raw = workload.get();
  slow_kernel.AddTask(std::move(workload));
  slow_kernel.Start();
  slow_sim.RunUntil(SimTime::Seconds(3));
  ASSERT_TRUE(raw->done());
  // 59.0e6 nominal-MHz-cycles at 58.9824 MHz is just over 1 second.
  EXPECT_NEAR(raw->completed_at().ToSeconds(), 1.0, 0.01);
}

TEST_F(KernelTest, RoundRobinSharesCpuEqually) {
  const Pid a = kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  const Pid b = kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(2));
  const SimTime ta = kernel.FindTask(a)->cpu_time();
  const SimTime tb = kernel.FindTask(b)->cpu_time();
  EXPECT_NEAR(ta.ToSeconds(), tb.ToSeconds(), 0.05);
  EXPECT_NEAR(ta.ToSeconds() + tb.ToSeconds(), 2.0, 0.05);
}

TEST_F(KernelTest, PolicyReceivesOneSamplePerQuantum) {
  RecordingPolicy policy;
  kernel.InstallPolicy(&policy);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  ASSERT_EQ(policy.samples.size(), 10u);
  for (std::size_t i = 0; i < policy.samples.size(); ++i) {
    EXPECT_EQ(policy.samples[i].quantum_index, i);
    EXPECT_EQ(policy.samples[i].step, 10);
    EXPECT_EQ(policy.samples[i].voltage, CoreVoltage::kHigh);
    EXPECT_EQ(policy.samples[i].quantum_end - policy.samples[i].quantum_start,
              SimTime::Millis(10));
  }
}

TEST_F(KernelTest, PolicyStepRequestChangesClockAndRecordsSeries) {
  RecordingPolicy policy;
  SpeedRequest request;
  request.step = 0;
  policy.next_request = request;
  kernel.InstallPolicy(&policy);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(itsy.step(), 0);
  EXPECT_EQ(itsy.clock_changes(), 1);
  EXPECT_EQ(itsy.total_stall(), SimTime::Micros(200));
  const TraceSeries* freq = kernel.sink().Find("freq_mhz");
  ASSERT_NE(freq, nullptr);
  // Initial point plus the change.
  ASSERT_EQ(freq->size(), 2u);
  EXPECT_NEAR(freq->points()[1].value, 59.0, 0.1);
}

TEST_F(KernelTest, UnsafeVoltageRequestRefused) {
  RecordingPolicy policy;
  SpeedRequest request;
  request.voltage = CoreVoltage::kLow;  // at 206.4 MHz: must be refused
  policy.next_request = request;
  kernel.InstallPolicy(&policy);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(30));
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kHigh);
}

TEST_F(KernelTest, StepAndVoltageRequestTogetherApplyInSafeOrder) {
  RecordingPolicy policy;
  SpeedRequest request;
  request.step = 5;
  request.voltage = CoreVoltage::kLow;
  policy.next_request = request;
  kernel.InstallPolicy(&policy);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(30));
  EXPECT_EQ(itsy.step(), 5);
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kLow);
}

TEST_F(KernelTest, JiffyAlignRoundsUpToTickBoundary) {
  kernel.Start();
  EXPECT_EQ(kernel.JiffyAlign(SimTime::Millis(3)), SimTime::Millis(10));
  EXPECT_EQ(kernel.JiffyAlign(SimTime::Millis(10)), SimTime::Millis(10));
  EXPECT_EQ(kernel.JiffyAlign(SimTime::Millis(10) + SimTime::Nanos(1)),
            SimTime::Millis(20));
  EXPECT_EQ(kernel.JiffyAlign(SimTime::Zero()), SimTime::Zero());
}

TEST_F(KernelTest, JiffyRoundedSleepWakesOnTickBoundary) {
  // A 9-busy/1-idle rectangle wave sleeps with jiffy=false; instead test the
  // Java poller which uses jiffy-rounded sleeps: every wake lands on a 10 ms
  // boundary.  We detect wake times through the scheduler log.
  kernel.AddTask(std::make_unique<RectangleWaveWorkload>(1, 2));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(200));
  // The task alternates 10 ms spinning / 20 ms sleeping; utilization over
  // any 30 ms window is ~1/3.
  const TraceSeries* util = kernel.sink().Find("utilization");
  ASSERT_NE(util, nullptr);
  double sum = 0.0;
  for (const TracePoint& p : util->points()) {
    sum += p.value;
  }
  EXPECT_NEAR(sum / static_cast<double>(util->size()), 1.0 / 3.0, 0.05);
}

TEST_F(KernelTest, GetTimeOfDayHasTimerGranularity) {
  kernel.Start();
  sim.RunUntil(SimTime::Millis(7));
  const SimTime t = kernel.GetTimeOfDay();
  EXPECT_LE(t, sim.Now());
  EXPECT_LT((sim.Now() - t).nanos(), 272);
  EXPECT_EQ(t.nanos() % 271, 0);
}

TEST_F(KernelTest, SchedLogRecordsDispatches) {
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  const auto entries = kernel.sched_log().Snapshot();
  ASSERT_GE(entries.size(), 10u);
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.pid, 1);
    EXPECT_EQ(entry.clock_step, 10);
  }
}

TEST_F(KernelTest, IdleDispatchLogsPidZero) {
  kernel.Start();
  sim.RunUntil(SimTime::Millis(50));
  const auto entries = kernel.sched_log().Snapshot();
  ASSERT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.pid, kIdlePid);
  }
}

TEST_F(KernelTest, AddTaskWhileIdleDispatchesImmediately) {
  kernel.Start();
  sim.RunUntil(SimTime::Millis(55));
  EXPECT_EQ(itsy.exec_state(), ExecState::kNap);
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  EXPECT_EQ(itsy.exec_state(), ExecState::kBusy);
}

TEST_F(KernelTest, ExitedTaskFreesCpu) {
  auto workload = std::make_unique<ComputeOnceWorkload>(1e6);
  kernel.AddTask(std::move(workload));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(kernel.LiveTasks(), 0u);
  EXPECT_EQ(itsy.exec_state(), ExecState::kNap);
}

TEST_F(KernelTest, BusyPlusIdleCoversWallClock) {
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(0.3));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  const double covered = kernel.total_busy().ToSeconds() + kernel.total_idle().ToSeconds();
  EXPECT_NEAR(covered, 1.0, 0.02);
}

TEST_F(KernelTest, StepResidencySumsToWallClock) {
  RecordingPolicy policy;
  SpeedRequest request;
  request.step = 3;
  policy.next_request = request;
  kernel.InstallPolicy(&policy);
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(0.7));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  double total = 0.0;
  for (const SimTime& t : kernel.step_residency()) {
    total += t.ToSeconds();
  }
  EXPECT_NEAR(total, 1.0, 0.02);
  // Nearly all of it at step 3 after the first quantum.
  EXPECT_GT(kernel.step_residency()[3].ToSeconds(), 0.97);
}

TEST_F(KernelTest, MidComputePreemptionPreservesWork) {
  // Two tasks: one long compute, one spinner.  The compute still finishes
  // with the correct *CPU time* despite interleaving.
  auto workload = std::make_unique<ComputeOnceWorkload>(206.4e6 / 2);  // 0.5 s at top
  ComputeOnceWorkload* raw = workload.get();
  const Pid pid = kernel.AddTask(std::move(workload));
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(3));
  ASSERT_TRUE(raw->done());
  // Wall time roughly doubles (fair share), CPU time stays ~0.5 s.
  EXPECT_NEAR(kernel.FindTask(pid)->cpu_time().ToSeconds(), 0.5, 0.02);
  EXPECT_GT(raw->completed_at().ToSeconds(), 0.9);
}

TEST_F(KernelTest, ClockChangeMidComputeStretchesCompletion) {
  RecordingPolicy policy;
  kernel.InstallPolicy(&policy);
  auto workload = std::make_unique<ComputeOnceWorkload>(206.4e6);  // 1 s at top
  ComputeOnceWorkload* raw = workload.get();
  kernel.AddTask(std::move(workload));
  // Drop to 59 MHz at the first quantum boundary.
  SpeedRequest request;
  request.step = 0;
  policy.next_request = request;
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(5));
  ASSERT_TRUE(raw->done());
  // ~10 ms at full speed, the rest at 1/3.5 speed: expect ~3.47 s total.
  EXPECT_GT(raw->completed_at().ToSeconds(), 3.3);
  EXPECT_LT(raw->completed_at().ToSeconds(), 3.6);
}

TEST_F(KernelTest, PolicySeesSpinAsBusy) {
  RecordingPolicy policy;
  kernel.InstallPolicy(&policy);
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  ASSERT_FALSE(policy.samples.empty());
  for (std::size_t i = 1; i < policy.samples.size(); ++i) {
    EXPECT_GT(policy.samples[i].utilization, 0.99);
  }
}

TEST_F(KernelTest, RemovePolicyStopsCallbacks) {
  RecordingPolicy policy;
  kernel.InstallPolicy(&policy);
  kernel.Start();
  sim.RunUntil(SimTime::Millis(30));
  const std::size_t count = policy.samples.size();
  kernel.RemovePolicy();
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(policy.samples.size(), count);
}

TEST_F(KernelTest, FindTaskUnknownPidIsNull) {
  EXPECT_EQ(kernel.FindTask(77), nullptr);
}

}  // namespace
}  // namespace dcs
