// Scheduling edge cases and interaction tests beyond kernel_test.cc:
// wake-ups during stall gaps, policy churn mid-run, fairness with many
// tasks, jiffy-alignment properties across quantum configurations, and the
// yield cost.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

// Requests a given step once, at a chosen quantum index.
class OneShotStepPolicy final : public ClockPolicy {
 public:
  OneShotStepPolicy(std::uint64_t at_quantum, int step)
      : at_quantum_(at_quantum), step_(step) {}
  const char* Name() const override { return "oneshot"; }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override {
    if (sample.quantum_index != at_quantum_) {
      return std::nullopt;
    }
    SpeedRequest request;
    request.step = step_;
    return request;
  }

 private:
  std::uint64_t at_quantum_;
  int step_;
};

TEST(SchedulingTest, WakeDuringStallGapIsDeferredNotLost) {
  Simulator sim;
  ItsyConfig itsy_config;
  itsy_config.clock_switch_stall = SimTime::Millis(5);  // long stall
  Itsy itsy(sim, itsy_config);
  Kernel kernel(sim, itsy);
  // Task sleeps until exactly 30.002 ms — inside the stall that the policy
  // triggers at the 30 ms tick.
  class SleepIntoStall final : public Workload {
   public:
    const char* Name() const override { return "sleeper"; }
    Action Next(const WorkloadContext& ctx) override {
      if (!slept_) {
        slept_ = true;
        return Action::SleepUntil(SimTime::Millis(30) + SimTime::Micros(2), false);
      }
      if (!spun_) {
        spun_ = true;
        return Action::SpinUntil(ctx.now + SimTime::Millis(20));
      }
      return Action::Exit();
    }
    bool spun_ = false;

   private:
    bool slept_ = false;
  };
  auto workload = std::make_unique<SleepIntoStall>();
  SleepIntoStall* raw = workload.get();
  OneShotStepPolicy policy(2, 0);  // change clock at the 30 ms tick
  kernel.InstallPolicy(&policy);
  kernel.AddTask(std::move(workload));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_TRUE(raw->spun_);
  EXPECT_EQ(kernel.LiveTasks(), 0u);
}

TEST(SchedulingTest, InstallAndRemovePolicyMidRun) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(50));
  EXPECT_EQ(itsy.step(), 10);
  OneShotStepPolicy policy(7, 3);
  kernel.InstallPolicy(&policy);
  sim.RunUntil(SimTime::Millis(100));
  EXPECT_EQ(itsy.step(), 3);
  kernel.RemovePolicy();
  sim.RunUntil(SimTime::Millis(200));
  EXPECT_EQ(itsy.step(), 3);  // sticks at the last setting
}

TEST(SchedulingTest, FairnessAcrossFourSpinners) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  std::vector<Pid> pids;
  for (int i = 0; i < 4; ++i) {
    pids.push_back(kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0)));
  }
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(4));
  for (const Pid pid : pids) {
    EXPECT_NEAR(kernel.FindTask(pid)->cpu_time().ToSeconds(), 1.0, 0.05) << pid;
  }
}

TEST(SchedulingTest, MixedLoadFairShareForSpinners) {
  // One 30% task plus two full spinners: the light task gets what it asks
  // for; the spinners split the rest.
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  const Pid light = kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(0.3));
  const Pid heavy_a = kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  const Pid heavy_b = kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(6));
  const double light_s = kernel.FindTask(light)->cpu_time().ToSeconds();
  const double heavy_a_s = kernel.FindTask(heavy_a)->cpu_time().ToSeconds();
  const double heavy_b_s = kernel.FindTask(heavy_b)->cpu_time().ToSeconds();
  // The spinners share equally.
  EXPECT_NEAR(heavy_a_s, heavy_b_s, 0.3);
  // Everyone together covers the wall clock.
  EXPECT_NEAR(light_s + heavy_a_s + heavy_b_s, 6.0, 0.1);
  // The light task cannot get more than its duty cycle asks for; under
  // contention its spin windows are time-based so it gets at most ~its
  // request, and the heavies dominate.
  EXPECT_LT(light_s, 2.0);
}

TEST(SchedulingTest, YieldCostChargesBusyTime) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  class YieldLoop final : public Workload {
   public:
    const char* Name() const override { return "yield_loop"; }
    Action Next(const WorkloadContext&) override { return Action::Yield(); }
  };
  kernel.AddTask(std::make_unique<YieldLoop>());
  kernel.AddTask(std::make_unique<YieldLoop>());
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  // ~500k yields/s at 2 us each: the whole second is busy switching.
  EXPECT_NEAR(kernel.total_busy().ToSeconds(), 1.0, 0.02);
}

TEST(SchedulingTest, DispatchCountsTrackQuanta) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  const Pid pid = kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  // A solo spinner is re-dispatched once per tick (plus the initial one).
  EXPECT_NEAR(static_cast<double>(kernel.FindTask(pid)->dispatches()), 101.0, 3.0);
}

TEST(SchedulingTest, CustomQuantumChangesTickRate) {
  Simulator sim;
  Itsy itsy(sim);
  KernelConfig config;
  config.quantum = SimTime::Millis(50);
  Kernel kernel(sim, itsy, config);
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  EXPECT_EQ(kernel.quanta_elapsed(), 20u);
}

TEST(SchedulingTest, JiffyAlignPropertyAcrossQuanta) {
  for (const int quantum_ms : {5, 10, 20}) {
    Simulator sim;
    Itsy itsy(sim);
    KernelConfig config;
    config.quantum = SimTime::Millis(quantum_ms);
    Kernel kernel(sim, itsy, config);
    kernel.Start();
    Rng rng(static_cast<std::uint64_t>(quantum_ms));
    for (int i = 0; i < 200; ++i) {
      const SimTime t = SimTime::Nanos(rng.UniformInt(0, 2000000000));
      const SimTime aligned = kernel.JiffyAlign(t);
      EXPECT_GE(aligned, t);
      EXPECT_LT(aligned - t, config.quantum);
      EXPECT_EQ(aligned.nanos() % config.quantum.nanos(), 0);
    }
  }
}

TEST(SchedulingTest, TickOverheadConfigurable) {
  Simulator sim;
  Itsy itsy(sim);
  KernelConfig config;
  config.tick_overhead = SimTime::Micros(100);  // 1% of the quantum
  Kernel kernel(sim, itsy, config);
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(1));
  EXPECT_NEAR(kernel.last_utilization(), 0.01, 1e-3);
}

TEST(SchedulingTest, ManyTasksAllMakeProgress) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  std::vector<ComputeOnceWorkload*> raw;
  for (int i = 0; i < 16; ++i) {
    auto workload = std::make_unique<ComputeOnceWorkload>(10e6);
    raw.push_back(workload.get());
    kernel.AddTask(std::move(workload));
  }
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(3));
  for (const ComputeOnceWorkload* w : raw) {
    EXPECT_TRUE(w->done());
  }
  EXPECT_EQ(kernel.LiveTasks(), 0u);
}

TEST(SchedulingTest, LateAddedTaskGetsScheduledPromptly) {
  Simulator sim;
  Itsy itsy(sim);
  Kernel kernel(sim, itsy);
  kernel.AddTask(std::make_unique<ConstantUtilizationWorkload>(1.0));
  kernel.Start();
  sim.RunUntil(SimTime::Millis(500));
  auto workload = std::make_unique<ComputeOnceWorkload>(1e6);
  ComputeOnceWorkload* raw = workload.get();
  kernel.AddTask(std::move(workload));
  sim.RunUntil(SimTime::Millis(600));
  EXPECT_TRUE(raw->done());
}

}  // namespace
}  // namespace dcs
