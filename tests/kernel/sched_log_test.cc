#include "src/kernel/sched_log.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(SchedLogTest, RecordsEntries) {
  SchedLog log(16);
  log.Record(SimTime::Millis(10), 1, 5);
  log.Record(SimTime::Millis(20), 0, 5);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].time_us, 10000);
  EXPECT_EQ(entries[0].pid, 1);
  EXPECT_EQ(entries[0].clock_step, 5);
  EXPECT_EQ(entries[1].pid, 0);
}

TEST(SchedLogTest, MicrosecondResolution) {
  SchedLog log(4);
  log.Record(SimTime::Nanos(1234567), 1, 0);
  EXPECT_EQ(log.Snapshot()[0].time_us, 1234);
}

TEST(SchedLogTest, RingBufferOverwritesOldest) {
  // "Due to kernel memory limitations, we could only capture a subset of the
  // process behavior."
  SchedLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(SimTime::Millis(i), i, 0);
  }
  EXPECT_TRUE(log.Wrapped());
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].pid, 6);  // oldest surviving
  EXPECT_EQ(entries[3].pid, 9);
  EXPECT_EQ(log.total_recorded(), 10u);
}

TEST(SchedLogTest, DisabledLogRecordsNothing) {
  SchedLog log(4);
  log.set_enabled(false);
  log.Record(SimTime::Millis(1), 1, 0);
  EXPECT_TRUE(log.Snapshot().empty());
  log.set_enabled(true);
  log.Record(SimTime::Millis(2), 2, 0);
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST(SchedLogTest, ClearResets) {
  SchedLog log(4);
  log.Record(SimTime::Millis(1), 1, 0);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(SchedLogTest, ZeroCapacityIsSafe) {
  SchedLog log(0);
  log.Record(SimTime::Millis(1), 1, 0);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(SchedLogTest, SnapshotBeforeWrapPreservesOrder) {
  SchedLog log(8);
  for (int i = 0; i < 5; ++i) {
    log.Record(SimTime::Millis(i), i, 0);
  }
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].pid, i);
  }
}

TEST(SchedLogTest, ExactCapacityIsFullButNotWrapped) {
  SchedLog log(4);
  for (int i = 0; i < 4; ++i) {
    log.Record(SimTime::Millis(i), i, 0);
  }
  // total_recorded == capacity means nothing has been lost yet.
  EXPECT_EQ(log.total_recorded(), 4u);
  EXPECT_FALSE(log.Wrapped());
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].pid, i);
  }
  // One more record crosses the line: now wrapped, oldest entry gone.
  log.Record(SimTime::Millis(4), 4, 0);
  EXPECT_TRUE(log.Wrapped());
  EXPECT_EQ(log.total_recorded(), 5u);
  EXPECT_EQ(log.Snapshot().front().pid, 1);
}

TEST(SchedLogTest, SnapshotIsChronologicalAtEveryWrapPhase) {
  // The ring's write cursor can be anywhere when Snapshot is taken; the
  // result must be oldest-first regardless of the cursor position.
  for (int records = 1; records <= 13; ++records) {
    SchedLog log(5);
    for (int i = 0; i < records; ++i) {
      log.Record(SimTime::Millis(i), i, 0);
    }
    const auto entries = log.Snapshot();
    const int expected = records < 5 ? records : 5;
    ASSERT_EQ(entries.size(), static_cast<std::size_t>(expected)) << records;
    for (std::size_t k = 0; k + 1 < entries.size(); ++k) {
      EXPECT_LT(entries[k].time_us, entries[k + 1].time_us) << records;
    }
    EXPECT_EQ(entries.back().pid, records - 1) << records;
    EXPECT_EQ(entries.front().pid, records - expected) << records;
  }
}

TEST(SchedLogTest, ClearThenRecordStartsAFreshLog) {
  SchedLog log(4);
  for (int i = 0; i < 9; ++i) {  // wrap it first
    log.Record(SimTime::Millis(i), i, 0);
  }
  ASSERT_TRUE(log.Wrapped());
  log.Clear();
  EXPECT_FALSE(log.Wrapped());
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_EQ(log.capacity(), 4u);
  log.Record(SimTime::Millis(100), 42, 3);
  log.Record(SimTime::Millis(101), 43, 3);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].pid, 42);  // no stale pre-Clear entries resurface
  EXPECT_EQ(entries[1].pid, 43);
  EXPECT_FALSE(log.Wrapped());
}

}  // namespace
}  // namespace dcs
