#include "src/kernel/sched_log.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(SchedLogTest, RecordsEntries) {
  SchedLog log(16);
  log.Record(SimTime::Millis(10), 1, 5);
  log.Record(SimTime::Millis(20), 0, 5);
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].time_us, 10000);
  EXPECT_EQ(entries[0].pid, 1);
  EXPECT_EQ(entries[0].clock_step, 5);
  EXPECT_EQ(entries[1].pid, 0);
}

TEST(SchedLogTest, MicrosecondResolution) {
  SchedLog log(4);
  log.Record(SimTime::Nanos(1234567), 1, 0);
  EXPECT_EQ(log.Snapshot()[0].time_us, 1234);
}

TEST(SchedLogTest, RingBufferOverwritesOldest) {
  // "Due to kernel memory limitations, we could only capture a subset of the
  // process behavior."
  SchedLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(SimTime::Millis(i), i, 0);
  }
  EXPECT_TRUE(log.Wrapped());
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].pid, 6);  // oldest surviving
  EXPECT_EQ(entries[3].pid, 9);
  EXPECT_EQ(log.total_recorded(), 10u);
}

TEST(SchedLogTest, DisabledLogRecordsNothing) {
  SchedLog log(4);
  log.set_enabled(false);
  log.Record(SimTime::Millis(1), 1, 0);
  EXPECT_TRUE(log.Snapshot().empty());
  log.set_enabled(true);
  log.Record(SimTime::Millis(2), 2, 0);
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST(SchedLogTest, ClearResets) {
  SchedLog log(4);
  log.Record(SimTime::Millis(1), 1, 0);
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(SchedLogTest, ZeroCapacityIsSafe) {
  SchedLog log(0);
  log.Record(SimTime::Millis(1), 1, 0);
  EXPECT_TRUE(log.Snapshot().empty());
}

TEST(SchedLogTest, SnapshotBeforeWrapPreservesOrder) {
  SchedLog log(8);
  for (int i = 0; i < 5; ++i) {
    log.Record(SimTime::Millis(i), i, 0);
  }
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(entries[static_cast<std::size_t>(i)].pid, i);
  }
}

}  // namespace
}  // namespace dcs
