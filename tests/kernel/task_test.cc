#include "src/kernel/task.h"

#include <gtest/gtest.h>

#include "src/workload/synthetic.h"

namespace dcs {
namespace {

std::unique_ptr<Task> MakeTask(Pid pid = 1) {
  return std::make_unique<Task>(pid, std::make_unique<ComputeOnceWorkload>(1000.0),
                                Rng(1));
}

TEST(TaskTest, InitialState) {
  auto task = MakeTask(3);
  EXPECT_EQ(task->pid(), 3);
  EXPECT_EQ(task->state(), TaskState::kRunnable);
  EXPECT_STREQ(task->name(), "compute_once");
  EXPECT_EQ(task->cpu_time(), SimTime::Zero());
  EXPECT_EQ(task->dispatches(), 0u);
  EXPECT_EQ(task->wake_event(), kInvalidEventId);
}

TEST(TaskTest, SetActionTracksRemainingCycles) {
  auto task = MakeTask();
  task->set_action(Action::Compute(5000.0));
  EXPECT_DOUBLE_EQ(task->remaining_cycles(), 5000.0);
  task->set_action(Action::Yield());
  EXPECT_DOUBLE_EQ(task->remaining_cycles(), 0.0);
}

TEST(TaskTest, ConsumeCyclesSaturatesAtZero) {
  auto task = MakeTask();
  task->set_action(Action::Compute(100.0));
  task->ConsumeCycles(40.0);
  EXPECT_DOUBLE_EQ(task->remaining_cycles(), 60.0);
  task->ConsumeCycles(100.0);
  EXPECT_DOUBLE_EQ(task->remaining_cycles(), 0.0);
}

TEST(TaskTest, CpuTimeAccumulates) {
  auto task = MakeTask();
  task->AddCpuTime(SimTime::Millis(3));
  task->AddCpuTime(SimTime::Millis(4));
  EXPECT_EQ(task->cpu_time(), SimTime::Millis(7));
}

TEST(TaskTest, StateTransitions) {
  auto task = MakeTask();
  task->set_state(TaskState::kSleeping);
  EXPECT_EQ(task->state(), TaskState::kSleeping);
  task->set_state(TaskState::kExited);
  EXPECT_EQ(task->state(), TaskState::kExited);
}

TEST(TaskTest, ProfileComesFromWorkload) {
  auto task = std::make_unique<Task>(
      1, std::make_unique<ComputeOnceWorkload>(1.0, MemoryProfile{12.0, 3.0}), Rng(1));
  EXPECT_DOUBLE_EQ(task->profile().word_refs_per_kilocycle, 12.0);
  EXPECT_DOUBLE_EQ(task->profile().line_fills_per_kilocycle, 3.0);
}

TEST(ActionTest, FactoriesSetFields) {
  const Action c = Action::Compute(42.0);
  EXPECT_EQ(c.kind, Action::Kind::kCompute);
  EXPECT_DOUBLE_EQ(c.base_cycles, 42.0);

  const Action s = Action::SleepUntil(SimTime::Millis(3), false);
  EXPECT_EQ(s.kind, Action::Kind::kSleepUntil);
  EXPECT_EQ(s.until, SimTime::Millis(3));
  EXPECT_FALSE(s.jiffy_rounded);

  const Action sp = Action::SpinUntil(SimTime::Millis(9));
  EXPECT_EQ(sp.kind, Action::Kind::kSpinUntil);
  EXPECT_EQ(sp.until, SimTime::Millis(9));

  EXPECT_EQ(Action::Yield().kind, Action::Kind::kYield);
  EXPECT_EQ(Action::Exit().kind, Action::Kind::kExit);
}

}  // namespace
}  // namespace dcs
