#include "src/obs/metrics.h"

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace dcs {
namespace {

TEST(MetricsCounterTest, StartsAtZeroAndAccumulates) {
  MetricsCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(MetricsGaugeTest, SetOverwrites) {
  MetricsGauge g;
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.samples(), 0u);
  g.Set(3.5);
  g.Set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
  EXPECT_EQ(g.samples(), 1u);
}

TEST(MetricsGaugeTest, MergeAverages) {
  MetricsGauge a;
  MetricsGauge b;
  a.Set(10.0);
  b.Set(20.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.samples(), 2u);
  EXPECT_DOUBLE_EQ(a.value(), 15.0);
  // Merging an unset gauge leaves the mean unchanged.
  MetricsGauge empty;
  a.MergeFrom(empty);
  EXPECT_DOUBLE_EQ(a.value(), 15.0);
}

TEST(LogHistogramTest, BucketBoundaries) {
  // Bucket 0 is (-inf, 1); bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(LogHistogram::BucketOf(-5.0), 0);
  EXPECT_EQ(LogHistogram::BucketOf(0.0), 0);
  EXPECT_EQ(LogHistogram::BucketOf(0.999), 0);
  EXPECT_EQ(LogHistogram::BucketOf(1.0), 1);
  EXPECT_EQ(LogHistogram::BucketOf(1.999), 1);
  EXPECT_EQ(LogHistogram::BucketOf(2.0), 2);
  EXPECT_EQ(LogHistogram::BucketOf(3.0), 2);
  EXPECT_EQ(LogHistogram::BucketOf(4.0), 3);
  EXPECT_EQ(LogHistogram::BucketOf(1024.0), 11);
  EXPECT_EQ(LogHistogram::BucketOf(std::numeric_limits<double>::max()),
            LogHistogram::kBuckets - 1);
  EXPECT_EQ(LogHistogram::BucketOf(std::numeric_limits<double>::quiet_NaN()), 0);
  // Upper bound is the exclusive end of the bucket.
  EXPECT_EQ(LogHistogram::BucketUpperBound(1), 2.0);
  EXPECT_EQ(LogHistogram::BucketUpperBound(11), 2048.0);
  for (double v : {0.5, 1.0, 3.7, 100.0, 1e6}) {
    const int b = LogHistogram::BucketOf(v);
    EXPECT_LT(v, LogHistogram::BucketUpperBound(b)) << v;
    if (b > 0) {
      EXPECT_GE(v, LogHistogram::BucketUpperBound(b - 1)) << v;
    }
  }
}

TEST(LogHistogramTest, SummaryStatistics) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.ApproxQuantile(0.5), 0.0);
  h.Observe(10.0);
  h.Observe(2.0);
  h.Observe(30.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 42.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0);
  EXPECT_EQ(h.min(), 2.0);
  EXPECT_EQ(h.max(), 30.0);
}

TEST(LogHistogramTest, ApproxQuantileReturnsBucketUpperBound) {
  LogHistogram h;
  for (int i = 0; i < 90; ++i) {
    h.Observe(3.0);  // bucket [2, 4)
  }
  for (int i = 0; i < 10; ++i) {
    h.Observe(1000.0);  // bucket [512, 1024)
  }
  EXPECT_EQ(h.ApproxQuantile(0.5), 4.0);
  EXPECT_EQ(h.ApproxQuantile(0.89), 4.0);
  EXPECT_EQ(h.ApproxQuantile(0.99), 1024.0);
}

TEST(LogHistogramTest, ApproxQuantileGuardsNanAndEmpty) {
  LogHistogram h;
  // Empty histogram: every quantile is 0, including a NaN q from a caller
  // dividing by a zero count.
  EXPECT_EQ(h.ApproxQuantile(0.99), 0.0);
  EXPECT_EQ(h.ApproxQuantile(std::nan("")), 0.0);
  h.Observe(8.0);
  // NaN q on a populated histogram degrades to p0, not UB.
  EXPECT_EQ(h.ApproxQuantile(std::nan("")), h.ApproxQuantile(0.0));
  EXPECT_EQ(h.ApproxQuantile(2.0), h.ApproxQuantile(1.0));  // clamped
}

TEST(LogHistogramTest, MergeAddsCountsAndExtremes) {
  LogHistogram a;
  LogHistogram b;
  a.Observe(2.0);
  b.Observe(100.0);
  b.Observe(0.5);
  a.MergeFrom(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.sum(), 102.5);
  EXPECT_EQ(a.min(), 0.5);
  EXPECT_EQ(a.max(), 100.0);
  // Merging an empty histogram must not disturb min/max.
  LogHistogram empty;
  a.MergeFrom(empty);
  EXPECT_EQ(a.min(), 0.5);
  EXPECT_EQ(a.max(), 100.0);
}

TEST(MetricsRegistryTest, LookupCreatesAndFindDoesNot) {
  MetricsRegistry r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.FindCounter("a"), nullptr);
  r.Counter("a").Inc(3);
  r.Gauge("g").Set(1.5);
  r.Histogram("h").Observe(7.0);
  EXPECT_FALSE(r.empty());
  ASSERT_NE(r.FindCounter("a"), nullptr);
  EXPECT_EQ(r.FindCounter("a")->value(), 3u);
  ASSERT_NE(r.FindGauge("g"), nullptr);
  ASSERT_NE(r.FindHistogram("h"), nullptr);
  EXPECT_EQ(r.FindCounter("missing"), nullptr);
  EXPECT_EQ(r.FindGauge("missing"), nullptr);
  EXPECT_EQ(r.FindHistogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, MergeSemantics) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.Counter("c").Inc(1);
  b.Counter("c").Inc(2);
  b.Counter("only_b").Inc(5);
  a.Gauge("g").Set(2.0);
  b.Gauge("g").Set(4.0);
  a.Histogram("h").Observe(1.0);
  b.Histogram("h").Observe(3.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.FindCounter("c")->value(), 3u);       // counters add
  EXPECT_EQ(a.FindCounter("only_b")->value(), 5u);  // missing names appear
  EXPECT_DOUBLE_EQ(a.FindGauge("g")->value(), 3.0);  // gauges average
  EXPECT_EQ(a.FindHistogram("h")->count(), 2u);      // histograms add
}

TEST(MetricsRegistryTest, WriteJsonIsValidAndDeterministic) {
  MetricsRegistry r;
  r.Counter("kernel.quanta").Inc(100);
  r.Gauge("exp.energy_joules").Set(85.25);
  r.Histogram("kernel.quantum_busy_us").Observe(5000.0);
  std::ostringstream a;
  std::ostringstream b;
  r.WriteJson(a);
  r.WriteJson(b);
  EXPECT_EQ(a.str(), b.str());
  const std::string json = a.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"kernel.quanta\":100"), std::string::npos);
  EXPECT_NE(json.find("\"exp.energy_joules\":85.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsRegistryTest, WriteTextOneLinePerInstrument) {
  MetricsRegistry r;
  r.Counter("a.count").Inc(2);
  r.Gauge("b.level").Set(0.5);
  std::ostringstream os;
  r.WriteText(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("b.level"), std::string::npos);
}

TEST(JsonNumberTest, RoundTripsAndSanitises) {
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(0.25), "0.25");
  EXPECT_EQ(JsonNumber(-3.0), "-3");
  EXPECT_EQ(JsonNumber(206.4), "206.4");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
  // Shortest round-trip: parsing the text must recover the double exactly.
  for (double v : {1.0 / 3.0, 85.59, 1e-9, 123456.789}) {
    EXPECT_EQ(std::stod(JsonNumber(v)), v);
  }
}

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

}  // namespace
}  // namespace dcs
