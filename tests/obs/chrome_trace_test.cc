#include "src/obs/chrome_trace.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/sim/time.h"

namespace dcs {
namespace {

std::string Render(const ChromeTraceWriter& writer) {
  std::ostringstream os;
  writer.Write(os);
  return os.str();
}

TEST(ChromeTraceTest, EmptyTraceIsValidEnvelope) {
  ChromeTraceWriter writer;
  EXPECT_EQ(writer.event_count(), 0u);
  EXPECT_EQ(Render(writer), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n]}\n");
}

TEST(ChromeTraceTest, MetadataEvents) {
  ChromeTraceWriter writer;
  writer.SetProcessName(1, "mpeg/PAST");
  writer.SetProcessSortIndex(1, 1);
  writer.SetThreadName(1, 2, "2:mpeg_video");
  writer.SetThreadSortIndex(1, 2, 2);
  EXPECT_EQ(writer.event_count(), 4u);
  const std::string out = Render(writer);
  EXPECT_NE(out.find("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
                     "\"args\":{\"name\":\"mpeg/PAST\"}}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\","
                     "\"args\":{\"name\":\"2:mpeg_video\"}}"),
            std::string::npos);
  EXPECT_NE(out.find("\"args\":{\"sort_index\":2}"), std::string::npos);
}

TEST(ChromeTraceTest, CompleteSliceCarriesMicrosecondTimes) {
  ChromeTraceWriter writer;
  // 1.5 us start, 2.25 us duration — the nanosecond remainder must survive
  // as fractional microseconds.
  writer.AddComplete(1, 7, "task", SimTime::Nanos(1500), SimTime::Nanos(2250), "sched");
  const std::string out = Render(writer);
  EXPECT_NE(out.find("{\"ph\":\"X\",\"pid\":1,\"tid\":7,\"name\":\"task\","
                     "\"cat\":\"sched\",\"ts\":1.5,\"dur\":2.25}"),
            std::string::npos);
}

TEST(ChromeTraceTest, InstantAndCounterEvents) {
  ChromeTraceWriter writer;
  writer.AddInstant(1, 0, "clock -> 206.4 MHz", SimTime::Micros(10), "governor");
  writer.AddCounter(1, "power_w", SimTime::Micros(20), 0.925);
  const std::string out = Render(writer);
  EXPECT_NE(out.find("{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"name\":\"clock -> 206.4 MHz\","
                     "\"cat\":\"governor\",\"ts\":10,\"s\":\"t\"}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"ph\":\"C\",\"pid\":1,\"name\":\"power_w\",\"ts\":20,"
                     "\"args\":{\"value\":0.925}}"),
            std::string::npos);
}

TEST(ChromeTraceTest, EventsKeepInsertionOrderAndRenderDeterministically) {
  auto build = [] {
    ChromeTraceWriter writer;
    writer.SetProcessName(1, "p");
    writer.AddCounter(1, "c", SimTime::Micros(5), 1.0);
    writer.AddComplete(1, 1, "slice", SimTime::Micros(1), SimTime::Micros(2));
    writer.AddInstant(1, 1, "mark", SimTime::Micros(9));
    return writer;
  };
  const std::string a = Render(build());
  const std::string b = Render(build());
  EXPECT_EQ(a, b);
  // Insertion order: counter first, slice second, even though the slice's
  // timestamp is earlier — the format does not require sorted events.
  EXPECT_LT(a.find("\"ph\":\"C\""), a.find("\"ph\":\"X\""));
}

TEST(ChromeTraceTest, EscapesNamesIntoValidJson) {
  ChromeTraceWriter writer;
  writer.AddInstant(1, 0, "quote\" backslash\\ newline\n", SimTime::Micros(0));
  const std::string out = Render(writer);
  EXPECT_NE(out.find("quote\\\" backslash\\\\ newline\\n"), std::string::npos);
}

}  // namespace
}  // namespace dcs
