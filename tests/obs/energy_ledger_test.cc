#include "src/obs/energy_ledger.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"
#include "src/exp/experiment.h"
#include "src/hw/power_tape.h"
#include "src/kernel/sched_log.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace dcs {
namespace {

SchedLogEntry Entry(std::int64_t time_us, Pid pid, int step) {
  SchedLogEntry e;
  e.time_us = time_us;
  e.pid = pid;
  e.clock_step = step;
  return e;
}

double SumAttributed(const EnergyAttribution& a) {
  double sum = 0.0;
  for (const auto& [pid, joules] : a.joules_by_pid) {
    sum += joules;
  }
  return sum;
}

TEST(EnergyLedgerTest, EmptyWindowYieldsNothing) {
  PowerTape tape;
  tape.Set(SimTime::Micros(0), 1.0);
  const EnergyAttribution a =
      EnergyLedger::Attribute(tape, {}, SimTime::Seconds(2), SimTime::Seconds(1));
  EXPECT_EQ(a.total_joules, 0.0);
  EXPECT_TRUE(a.joules_by_pid.empty());
}

TEST(EnergyLedgerTest, SplitsEnergyAtScheduleBoundaries) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(0), 1.0);  // 1 W for the whole window
  const std::vector<SchedLogEntry> sched = {
      Entry(0, 1, 10),          // pid 1 from 0 s
      Entry(4'000'000, 2, 10),  // pid 2 from 4 s
  };
  const EnergyAttribution a =
      EnergyLedger::Attribute(tape, sched, SimTime::Seconds(0), SimTime::Seconds(10));
  EXPECT_NEAR(a.total_joules, 10.0, 1e-12);
  EXPECT_NEAR(a.joules_by_pid.at(1), 4.0, 1e-12);
  EXPECT_NEAR(a.joules_by_pid.at(2), 6.0, 1e-12);
  EXPECT_EQ(a.held_by_pid.at(1), SimTime::Seconds(4));
  EXPECT_EQ(a.held_by_pid.at(2), SimTime::Seconds(6));
  EXPECT_NEAR(a.joules_by_step[10], 10.0, 1e-12);
  EXPECT_EQ(a.unattributed_joules, 0.0);
}

TEST(EnergyLedgerTest, PredecessorEntryOwnsWindowHead) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(0), 2.0);
  // Entry at 1 s, window starts at 3 s: pid 5 owns [3 s, 8 s).
  const std::vector<SchedLogEntry> sched = {Entry(1'000'000, 5, 3)};
  const EnergyAttribution a =
      EnergyLedger::Attribute(tape, sched, SimTime::Seconds(3), SimTime::Seconds(8));
  EXPECT_NEAR(a.joules_by_pid.at(5), 10.0, 1e-12);
  EXPECT_EQ(a.unattributed_joules, 0.0);
  EXPECT_NEAR(a.joules_by_step[3], 10.0, 1e-12);
}

TEST(EnergyLedgerTest, WrappedLogHeadIsUnattributedNotGuessed) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(0), 1.0);
  // First surviving entry is 2 s into a [0 s, 10 s) window (the log wrapped):
  // the 2 J before it must be reported as unattributed.
  const std::vector<SchedLogEntry> sched = {Entry(2'000'000, 7, 0)};
  const EnergyAttribution a =
      EnergyLedger::Attribute(tape, sched, SimTime::Seconds(0), SimTime::Seconds(10));
  EXPECT_NEAR(a.unattributed_joules, 2.0, 1e-12);
  EXPECT_NEAR(a.joules_by_pid.at(7), 8.0, 1e-12);
  EXPECT_NEAR(a.attributed_joules + a.unattributed_joules, a.total_joules, 1e-12);
}

TEST(EnergyLedgerTest, EmptyLogIsFullyUnattributed) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(0), 0.5);
  const EnergyAttribution a =
      EnergyLedger::Attribute(tape, {}, SimTime::Seconds(0), SimTime::Seconds(4));
  EXPECT_NEAR(a.unattributed_joules, 2.0, 1e-12);
  EXPECT_EQ(a.attributed_joules, 0.0);
  EXPECT_TRUE(a.joules_by_pid.empty());
}

// Conservation property: under random power segments and random schedule
// boundaries, per-pid joules plus the unattributed head always reproduce the
// tape's whole-window integral to 1e-9.
TEST(EnergyLedgerTest, ConservationUnderRandomSequences) {
  Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    PowerTape tape;
    SimTime t = SimTime::Micros(0);
    for (int i = 0; i < 200; ++i) {
      tape.Set(t, rng.Uniform(0.05, 2.5));
      t += SimTime::Micros(rng.UniformInt(1, 20'000));
    }
    std::vector<SchedLogEntry> sched;
    std::int64_t at_us = rng.UniformInt(0, 1000);
    for (int i = 0; i < 100; ++i) {
      sched.push_back(Entry(at_us, static_cast<Pid>(rng.UniformInt(0, 5)),
                            static_cast<int>(rng.UniformInt(0, kNumClockSteps - 1))));
      at_us += rng.UniformInt(1, 30'000);
    }
    const SimTime begin = SimTime::Micros(rng.UniformInt(0, 500'000));
    const SimTime end = begin + SimTime::Micros(rng.UniformInt(1, 3'000'000));
    const EnergyAttribution a = EnergyLedger::Attribute(tape, sched, begin, end);
    EXPECT_NEAR(SumAttributed(a), a.attributed_joules, 1e-12);
    EXPECT_NEAR(a.attributed_joules + a.unattributed_joules, a.total_joules, 1e-9)
        << "trial " << trial;
    double step_sum = 0.0;
    for (double j : a.joules_by_step) {
      step_sum += j;
    }
    EXPECT_NEAR(step_sum, a.attributed_joules, 1e-9) << "trial " << trial;
  }
}

// The acceptance criterion end to end: a real captured experiment's per-task
// joules sum back to PowerTape::EnergyJoules over the measurement window
// within 1e-9.
TEST(EnergyLedgerTest, RealExperimentAttributionConserves) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 11;
  config.duration = SimTime::Seconds(5);
  config.capture_obs = true;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.obs.captured);
  const ObsCapture& obs = result.obs;
  const EnergyAttribution& a = obs.energy;
  const double window_joules = obs.power.EnergyJoules(obs.window_begin, obs.window_end);
  EXPECT_NEAR(a.total_joules, window_joules, 1e-12);
  EXPECT_NEAR(SumAttributed(a) + a.unattributed_joules, window_joules, 1e-9);
  // The experiment's own exact energy is the same window integral.
  EXPECT_NEAR(a.total_joules, result.exact_energy_joules, 1e-9);
  // The busy MPEG tasks and the idle loop all held the CPU at some point.
  EXPECT_GE(a.joules_by_pid.size(), 2u);
  EXPECT_TRUE(a.joules_by_pid.count(kIdlePid));
}

}  // namespace
}  // namespace dcs
