#include "src/exp/obs_export.h"

#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/exp/experiment.h"
#include "src/exp/sweep.h"

namespace dcs {
namespace {

std::vector<ExperimentConfig> SmallGrid() {
  std::vector<ExperimentConfig> configs;
  for (const char* governor : {"fixed-206.4", "PAST-peg-peg-93-98", "AVG9-peg-peg-93-98"}) {
    ExperimentConfig config;
    config.app = "mpeg";
    config.governor = governor;
    config.seed = 3;
    config.duration = SimTime::Seconds(2);
    config.capture_obs = true;
    configs.push_back(config);
  }
  return configs;
}

std::string RenderTrace(const std::vector<ExperimentResult>& results) {
  std::ostringstream os;
  WriteChromeTrace(results, os);
  return os.str();
}

std::string RenderMetrics(const std::vector<ExperimentResult>& results) {
  std::ostringstream os;
  AggregateMetrics(results).WriteJson(os);
  return os.str();
}

TEST(ObsExportTest, ExperimentLabelIsAppSlashGovernor) {
  ExperimentResult result;
  result.app = "mpeg";
  result.governor = "PAST-peg-peg-93-98";
  EXPECT_EQ(ExperimentLabel(result), "mpeg/PAST-peg-peg-93-98");
}

TEST(ObsExportTest, CapturedRunRendersSchedulerPowerAndGovernorTracks) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 3;
  config.duration = SimTime::Seconds(2);
  config.capture_obs = true;
  const ExperimentResult result = RunExperiment(config);
  ASSERT_TRUE(result.obs.captured);

  ChromeTraceWriter writer;
  AppendExperimentTrace(writer, 1, result);
  EXPECT_GT(writer.event_count(), 100u);
  std::ostringstream os;
  writer.Write(os);
  const std::string trace = os.str();
  EXPECT_NE(trace.find("\"process_name\""), std::string::npos);
  // The label carries the governor's canonical name, not the config spec.
  EXPECT_NE(trace.find("mpeg/PAST-peg-peg-93/98"), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"idle\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);  // scheduler slices
  EXPECT_NE(trace.find("\"power_w\""), std::string::npos);   // power counter
  EXPECT_NE(trace.find("\"freq_mhz\""), std::string::npos);  // recorded series
  EXPECT_NE(trace.find("clock -> "), std::string::npos);     // governor markers
}

TEST(ObsExportTest, UncapturedRunStillRendersSeriesCounters) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 3;
  config.duration = SimTime::Seconds(2);
  const ExperimentResult result = RunExperiment(config);
  EXPECT_FALSE(result.obs.captured);
  ChromeTraceWriter writer;
  AppendExperimentTrace(writer, 1, result);
  std::ostringstream os;
  writer.Write(os);
  const std::string trace = os.str();
  EXPECT_EQ(trace.find("\"ph\":\"X\""), std::string::npos);  // no sched capture
  EXPECT_NE(trace.find("\"freq_mhz\""), std::string::npos);
}

// The acceptance criterion: trace and metrics renderings are byte-identical
// whether the sweep ran on one thread or several.
TEST(ObsExportTest, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<ExperimentConfig> grid = SmallGrid();
  const std::vector<ExperimentResult> a = RunSweep(grid, serial);
  const std::vector<ExperimentResult> b = RunSweep(grid, parallel);
  EXPECT_EQ(RenderTrace(a), RenderTrace(b));
  EXPECT_EQ(RenderMetrics(a), RenderMetrics(b));
}

TEST(ObsExportTest, AggregateMetricsCountsJobsAndMerges) {
  SweepOptions options;
  options.threads = 2;
  const std::vector<ExperimentResult> results = RunSweep(SmallGrid(), options);
  const MetricsRegistry aggregate = AggregateMetrics(results);
  ASSERT_NE(aggregate.FindCounter("sweep.jobs"), nullptr);
  EXPECT_EQ(aggregate.FindCounter("sweep.jobs")->value(), results.size());
  // Counters sum across the runs.
  const MetricsCounter* quanta = aggregate.FindCounter("kernel.quanta");
  ASSERT_NE(quanta, nullptr);
  std::uint64_t expected = 0;
  for (const ExperimentResult& r : results) {
    expected += r.metrics.FindCounter("kernel.quanta")->value();
  }
  EXPECT_EQ(quanta->value(), expected);
  // Gauges average: the aggregate energy gauge is the mean of the runs'.
  const MetricsGauge* energy = aggregate.FindGauge("exp.energy_joules");
  ASSERT_NE(energy, nullptr);
  EXPECT_EQ(energy->samples(), results.size());
}

TEST(ObsExportTest, ExportIsNoOpWithoutFlagsAndFailsOnBadPath) {
  const std::vector<ExperimentResult> results;
  SweepOptions options;
  EXPECT_FALSE(options.WantsObsExport());
  EXPECT_TRUE(ExportObsArtifacts(options, results));

  options.trace_out = "/nonexistent-dir/trace.json";
  EXPECT_TRUE(options.WantsObsExport());
  EXPECT_TRUE(options.WantsObsCapture());
  std::string error;
  EXPECT_FALSE(ExportObsArtifacts(options, results, &error));
  EXPECT_NE(error.find("/nonexistent-dir/trace.json"), std::string::npos);
}

TEST(ObsExportTest, SweepOptionsParseObsFlags) {
  const char* argv[] = {"bench", "--trace-out=/tmp/t.json", "--metrics-out", "/tmp/m.json",
                        "--threads=2"};
  const SweepOptions options =
      SweepOptionsFromArgs(static_cast<int>(std::size(argv)), const_cast<char**>(argv));
  EXPECT_EQ(options.trace_out, "/tmp/t.json");
  EXPECT_EQ(options.metrics_out, "/tmp/m.json");
  EXPECT_EQ(options.threads, 2);
  EXPECT_TRUE(options.WantsObsExport());
}

}  // namespace
}  // namespace dcs
