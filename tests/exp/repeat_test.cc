#include "src/exp/repeat.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

ExperimentConfig ShortMpeg() {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "fixed-206.4";
  config.seed = 100;
  config.duration = SimTime::Seconds(6);
  return config;
}

TEST(RepeatTest, RunsRequestedRepetitions) {
  const RepeatedResult result = RunRepeated(ShortMpeg(), 4);
  EXPECT_EQ(result.runs.size(), 4u);
  EXPECT_EQ(result.energy.n, 4);
}

TEST(RepeatTest, SeedsVaryAcrossRuns) {
  const RepeatedResult result = RunRepeated(ShortMpeg(), 3);
  EXPECT_NE(result.runs[0].energy_joules, result.runs[1].energy_joules);
  EXPECT_NE(result.runs[1].energy_joules, result.runs[2].energy_joules);
}

TEST(RepeatTest, ConfidenceIntervalTightLikePaper) {
  // "we found the 95% confidence interval of the energy to be less than
  // 0.7% of the mean energy" — ours should be in the same ballpark.
  const RepeatedResult result = RunRepeated(ShortMpeg(), 6);
  EXPECT_LT(result.energy.ci_percent(), 0.7);
  EXPECT_GT(result.energy.mean, 0.0);
}

TEST(RepeatTest, AggregatesDeadlinesAcrossRuns) {
  ExperimentConfig config = ShortMpeg();
  config.governor = "fixed-103.2";  // misses frames
  const RepeatedResult result = RunRepeated(config, 3);
  EXPECT_GT(result.total_deadline_misses, 0);
  EXPECT_GT(result.total_deadline_events, 0);
  EXPECT_FALSE(result.MetAllDeadlines());
  EXPECT_GT(result.worst_lateness, SimTime::Zero());
}

TEST(RepeatTest, MeansAveragedOverRuns) {
  const RepeatedResult result = RunRepeated(ShortMpeg(), 3);
  double util_sum = 0.0;
  for (const ExperimentResult& run : result.runs) {
    util_sum += run.avg_utilization;
  }
  EXPECT_NEAR(result.mean_utilization, util_sum / 3.0, 1e-12);
}

TEST(RepeatTest, ZeroRepetitionsIsEmpty) {
  const RepeatedResult result = RunRepeated(ShortMpeg(), 0);
  EXPECT_TRUE(result.runs.empty());
  EXPECT_EQ(result.energy.n, 0);
  EXPECT_TRUE(result.MetAllDeadlines());
}

}  // namespace
}  // namespace dcs
