#include "src/exp/campaign.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/sweep.h"
#include "tests/fault/fingerprint.h"

namespace dcs {
namespace {

namespace fs = std::filesystem;

ExperimentConfig ShortMpeg(std::uint64_t seed, const std::string& governor = "fixed-206.4") {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = seed;
  config.duration = SimTime::Seconds(2);
  return config;
}

std::vector<std::string> Fingerprints(const std::vector<SweepJobResult>& jobs) {
  std::vector<std::string> fps;
  for (const SweepJobResult& job : jobs) {
    fps.push_back(job.ok() ? Fingerprint(*job.result) : "error:" + job.error);
  }
  return fps;
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("dcs_campaign_") + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    journal_ = (dir_ / "campaign.journal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  SweepOptions ResumeOptions(int threads = 2) const {
    SweepOptions options;
    options.threads = threads;
    options.campaign.resume = journal_;
    return options;
  }

  fs::path dir_;
  std::string journal_;
};

TEST_F(CampaignTest, SecondRunReplaysEverySlotByteIdentically) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2, "PAST-peg-peg-93-98"),
                                              ShortMpeg(3, "AVG9-one-one-50-70")};
  CampaignRunner first(ResumeOptions());
  const auto first_jobs = first.Run(grid);
  EXPECT_FALSE(first.report().resumed);
  EXPECT_EQ(first.report().executed, 3);
  EXPECT_EQ(first.report().replayed, 0);

  CampaignRunner second(ResumeOptions());
  const auto second_jobs = second.Run(grid);
  EXPECT_TRUE(second.report().resumed);
  EXPECT_EQ(second.report().executed, 0);
  EXPECT_EQ(second.report().replayed, 3);
  // Replayed slots must be indistinguishable from computed ones: same
  // hexfloat fingerprint over every reported number and series.
  EXPECT_EQ(Fingerprints(second_jobs), Fingerprints(first_jobs));
}

TEST_F(CampaignTest, ResumeIsByteIdenticalAcrossThreadCounts) {
  std::vector<ExperimentConfig> grid;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    grid.push_back(ShortMpeg(seed, seed % 2 == 0 ? "PAST-peg-peg-93-98" : "fixed-132.7"));
  }
  // Journal written serially, resumed with four workers — and vice versa a
  // fresh four-worker campaign must agree with both.
  CampaignRunner serial(ResumeOptions(1));
  const auto serial_jobs = serial.Run(grid);
  CampaignRunner resumed(ResumeOptions(4));
  const auto resumed_jobs = resumed.Run(grid);
  EXPECT_EQ(resumed.report().replayed, 5);

  SweepOptions fresh_options;
  fresh_options.threads = 4;
  fresh_options.campaign.resume = (dir_ / "fresh.journal").string();
  CampaignRunner fresh(fresh_options);
  const auto fresh_jobs = fresh.Run(grid);
  EXPECT_EQ(fresh.report().executed, 5);

  EXPECT_EQ(Fingerprints(resumed_jobs), Fingerprints(serial_jobs));
  EXPECT_EQ(Fingerprints(fresh_jobs), Fingerprints(serial_jobs));
}

TEST_F(CampaignTest, PartialJournalRunsOnlyTheRemainder) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2), ShortMpeg(3)};
  // Seed the journal with a completed campaign over a one-job prefix...
  // no — the grid fingerprint must match, so instead journal two of three
  // slots by hand.
  CampaignRunner full(ResumeOptions());
  const auto full_jobs = full.Run(grid);

  // Rewrite the journal holding only slots 0 and 2.
  const JournalReadResult complete = ReadJournal(journal_);
  ASSERT_TRUE(complete.readable);
  std::string error;
  auto writer = JournalWriter::Create(journal_, &error);
  ASSERT_NE(writer, nullptr) << error;
  ASSERT_TRUE(writer->AppendHeader(complete.segments[0].header, &error)) << error;
  for (const JournalRecord& record : complete.segments[0].records) {
    if (record.slot != 1) {
      ASSERT_TRUE(writer->AppendRecord(record, &error)) << error;
    }
  }
  writer.reset();

  CampaignRunner partial(ResumeOptions());
  const auto partial_jobs = partial.Run(grid);
  EXPECT_TRUE(partial.report().resumed);
  EXPECT_EQ(partial.report().replayed, 2);
  EXPECT_EQ(partial.report().executed, 1);
  EXPECT_EQ(Fingerprints(partial_jobs), Fingerprints(full_jobs));
}

TEST_F(CampaignTest, FingerprintMismatchForcesAFreshRun) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2)};
  CampaignRunner first(ResumeOptions());
  first.Run(grid);

  // Same journal path, different grid: nothing may replay.
  const std::vector<ExperimentConfig> other = {ShortMpeg(7), ShortMpeg(8)};
  CampaignRunner second(ResumeOptions());
  const auto jobs = second.Run(other);
  EXPECT_FALSE(second.report().resumed);
  EXPECT_TRUE(second.report().journal_mismatch);
  EXPECT_EQ(second.report().executed, 2);
  ASSERT_TRUE(jobs[0].ok());
  EXPECT_EQ(Fingerprint(*jobs[0].result), Fingerprint(RunExperiment(other[0])));
}

TEST_F(CampaignTest, HangingJobIsQuarantinedWhileOthersSucceed) {
  // The hang must keep the *simulation* busy (the watchdog cancels between
  // events), so the MPEG app decodes for ~28 hours of simulated time with a
  // full fault storm (invariant sweep every quantum) — wall seconds per
  // attempt even on a fast machine, ~25x the watchdog budget here.
  ExperimentConfig hang = ShortMpeg(2);
  hang.mpeg = MpegConfig{};
  hang.mpeg->duration = SimTime::Seconds(100000);
  hang.duration = SimTime::Seconds(100000);
  hang.faults = "storm=1.0,seed=3";
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), hang, ShortMpeg(3)};

  SweepOptions options;
  options.threads = 2;
  options.campaign.job_timeout = 0.2;
  options.campaign.max_retries = 1;
  options.campaign.retry_backoff_ms = 1.0;
  options.campaign.quarantine_out = (dir_ / "quarantine.json").string();
  CampaignRunner runner(options);
  const auto jobs = runner.Run(grid);

  ASSERT_TRUE(jobs[0].ok()) << jobs[0].error;
  ASSERT_TRUE(jobs[2].ok()) << jobs[2].error;
  ASSERT_FALSE(jobs[1].ok());
  EXPECT_NE(jobs[1].error.find("watchdog timeout"), std::string::npos) << jobs[1].error;

  ASSERT_EQ(runner.report().quarantined.size(), 1u);
  const QuarantineEntry& entry = runner.report().quarantined[0];
  EXPECT_EQ(entry.slot, 1);
  EXPECT_EQ(entry.attempts, 2);  // first attempt + one retry, both timed out
  EXPECT_EQ(entry.seed, 2u);

  std::ifstream in(options.campaign.quarantine_out);
  ASSERT_TRUE(in.good());
  std::ostringstream json;
  json << in.rdbuf();
  EXPECT_NE(json.str().find("\"slot\":1"), std::string::npos) << json.str();
  EXPECT_NE(json.str().find("watchdog timeout"), std::string::npos) << json.str();
}

TEST_F(CampaignTest, InvalidConfigSkipsRetriesAndIsQuarantined) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1),
                                              ShortMpeg(2, "definitely-not-a-spec")};
  SweepOptions options;
  options.threads = 1;
  options.campaign.max_retries = 3;
  options.campaign.quarantine_out = (dir_ / "quarantine.json").string();
  CampaignRunner runner(options);
  const auto jobs = runner.Run(grid);

  EXPECT_TRUE(jobs[0].ok());
  EXPECT_FALSE(jobs[1].ok());
  ASSERT_EQ(runner.report().quarantined.size(), 1u);
  // A deterministic rejection (unknown governor) must not burn the retry
  // budget: one attempt, straight to quarantine.
  EXPECT_EQ(runner.report().quarantined[0].attempts, 1);
  EXPECT_EQ(runner.report().retries, 0u);
}

TEST_F(CampaignTest, QuarantinedSlotReplaysAsQuarantinedOnResume) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1),
                                              ShortMpeg(2, "definitely-not-a-spec")};
  SweepOptions options = ResumeOptions(1);
  options.campaign.max_retries = 0;
  CampaignRunner first(options);
  first.Run(grid);
  ASSERT_EQ(first.report().quarantined.size(), 1u);

  CampaignRunner second(options);
  const auto jobs = second.Run(grid);
  // The journal remembers the quarantine: nothing re-runs, and the slot is
  // still reported as quarantined with its original error.
  EXPECT_EQ(second.report().executed, 0);
  EXPECT_EQ(second.report().replayed, 2);
  ASSERT_EQ(second.report().quarantined.size(), 1u);
  EXPECT_FALSE(jobs[1].ok());
  EXPECT_NE(jobs[1].error.find("definitely-not-a-spec"), std::string::npos);
}

TEST_F(CampaignTest, RunSweepRoutesThroughTheCampaignAndNamesTheQuarantine) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1),
                                              ShortMpeg(2, "definitely-not-a-spec")};
  SweepOptions options;
  options.threads = 1;
  options.campaign.quarantine_out = (dir_ / "quarantine.json").string();
  try {
    RunSweep(grid, options);
    FAIL() << "expected RunSweep to throw for the quarantined job";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("quarantine"), std::string::npos) << e.what();
  }
  EXPECT_TRUE(fs::exists(options.campaign.quarantine_out));
}

TEST(RenderQuarantineJsonTest, EscapesAndStructuresEntries) {
  QuarantineEntry entry;
  entry.slot = 4;
  entry.app = "mpeg";
  entry.governor = "bad\"spec";
  entry.seed = 9;
  entry.attempts = 3;
  entry.error = "line\nbreak";
  const std::string json = RenderQuarantineJson(0x1234, 8, {entry});
  EXPECT_NE(json.find("\"jobs\":8"), std::string::npos) << json;
  EXPECT_NE(json.find("\"slot\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("bad\\\"spec"), std::string::npos) << json;
  EXPECT_NE(json.find("line\\nbreak"), std::string::npos) << json;
  EXPECT_NE(RenderQuarantineJson(0, 0, {}).find("\"quarantined\":[]"), std::string::npos);
}

}  // namespace
}  // namespace dcs
