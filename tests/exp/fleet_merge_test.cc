// Fleet aggregation properties.
//
// 1. Pure merge algebra: shard-wise LogHistogram / counter merges are
//    order-invariant and exactly equal the unsharded aggregate, provided
//    observations are integer-valued (the fleet layer rounds once per
//    device).  Random integer observations split into random shards, merged
//    forwards, backwards and tree-wise, must match the direct aggregate
//    field for field.
//
// 2. End-to-end: the same FleetSpec run with different shard sizes and
//    thread counts renders byte-identical fleet reports — device
//    trajectories are a pure function of (cell image, device id), never the
//    shard layout.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "src/exp/fleet.h"
#include "src/obs/metrics.h"
#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(FleetMergeAlgebraTest, ShardedHistogramMergesEqualUnshardedExactly) {
  Rng rng(42);
  // Integer-valued observations spanning the histogram's full bucket range.
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const int magnitude = static_cast<int>(rng.UniformInt(0, 40));
    values.push_back(static_cast<double>(rng.UniformInt(0, (std::int64_t{1} << magnitude))));
  }

  LogHistogram direct;
  for (const double v : values) {
    direct.Observe(v);
  }

  // Split into uneven shards.
  std::vector<LogHistogram> shards;
  std::size_t i = 0;
  while (i < values.size()) {
    const std::size_t take = static_cast<std::size_t>(rng.UniformInt(1, 137));
    LogHistogram shard;
    for (std::size_t j = i; j < std::min(i + take, values.size()); ++j) {
      shard.Observe(values[j]);
    }
    shards.push_back(shard);
    i += take;
  }

  const auto expect_equal = [&](const LogHistogram& merged, const char* label) {
    EXPECT_EQ(merged.count(), direct.count()) << label;
    EXPECT_EQ(merged.sum(), direct.sum()) << label;  // exact: integer-valued
    EXPECT_EQ(merged.min(), direct.min()) << label;
    EXPECT_EQ(merged.max(), direct.max()) << label;
    EXPECT_EQ(merged.buckets(), direct.buckets()) << label;
  };

  LogHistogram forward;
  for (const LogHistogram& s : shards) {
    forward.MergeFrom(s);
  }
  expect_equal(forward, "forward merge");

  LogHistogram backward;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.MergeFrom(*it);
  }
  expect_equal(backward, "backward merge");

  // Tree-wise: pairwise reduce until one remains.
  std::vector<LogHistogram> level = shards;
  while (level.size() > 1) {
    std::vector<LogHistogram> next;
    for (std::size_t k = 0; k + 1 < level.size(); k += 2) {
      LogHistogram pair = level[k];
      pair.MergeFrom(level[k + 1]);
      next.push_back(pair);
    }
    if (level.size() % 2 == 1) {
      next.push_back(level.back());
    }
    level = next;
  }
  expect_equal(level[0], "tree merge");
}

TEST(FleetMergeAlgebraTest, RegistryCounterMergeIsOrderInvariant) {
  Rng rng(7);
  std::vector<MetricsRegistry> shards(17);
  for (MetricsRegistry& shard : shards) {
    shard.Counter("fleet.devices").Inc(rng.Next() % 1000);
    shard.Counter("fleet.energy_uj").Inc(rng.Next() % (std::uint64_t{1} << 40));
    shard.Histogram("fleet.device_energy_uj")
        .Observe(static_cast<double>(rng.Next() % (std::uint64_t{1} << 24)));
  }

  MetricsRegistry forward;
  for (const MetricsRegistry& s : shards) {
    forward.MergeFrom(s);
  }
  MetricsRegistry backward;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    backward.MergeFrom(*it);
  }

  std::ostringstream a;
  std::ostringstream b;
  forward.WriteJson(a);
  backward.WriteJson(b);
  EXPECT_EQ(a.str(), b.str());
}

FleetSpec SmallFleet() {
  FleetSpec spec;
  spec.devices = 24;
  spec.shard_devices = 8;
  spec.seed = 5;
  spec.base.app = "mpeg";
  spec.base.governor = "PAST-peg-peg-93-98";
  spec.base.itsy.battery = BatteryParams{};
  spec.warmup = SimTime::Millis(500);
  spec.duration = SimTime::Seconds(1);
  spec.jitter.battery_capacity = 0.1;
  return spec;
}

std::string RunFleetJson(FleetSpec spec, int threads) {
  SweepOptions options;
  options.threads = threads;
  FleetRunner runner(std::move(spec), options);
  return RenderFleetJson(runner.Run());
}

TEST(FleetByteIdentityTest, ReportIdenticalAcrossShardSizes) {
  const std::string whole = RunFleetJson(SmallFleet(), 1);

  FleetSpec tiny_shards = SmallFleet();
  tiny_shards.shard_devices = 3;
  EXPECT_EQ(RunFleetJson(std::move(tiny_shards), 1), whole);

  FleetSpec one_shard = SmallFleet();
  one_shard.shard_devices = 24;
  EXPECT_EQ(RunFleetJson(std::move(one_shard), 1), whole);
}

TEST(FleetByteIdentityTest, ReportIdenticalAcrossThreadCounts) {
  const std::string serial = RunFleetJson(SmallFleet(), 1);
  EXPECT_EQ(RunFleetJson(SmallFleet(), 4), serial);
}

TEST(FleetResumeTest, JournaledRerunReplaysEveryShardByteIdentically) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("dcs_fleet_resume_" + std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string journal = (dir / "fleet.journal").string();

  SweepOptions options;
  options.threads = 2;
  options.campaign.resume = journal;

  FleetRunner first(SmallFleet(), options);
  const std::string fresh = RenderFleetJson(first.Run());
  EXPECT_EQ(first.campaign_report().replayed, 0);

  FleetRunner second(SmallFleet(), options);
  const std::string resumed = RenderFleetJson(second.Run());
  EXPECT_EQ(resumed, fresh);
  EXPECT_EQ(second.campaign_report().replayed, static_cast<int>(second.shards().size()));
  EXPECT_EQ(second.campaign_report().executed, 0);

  // A different fleet must not replay from this journal.
  FleetSpec other = SmallFleet();
  other.seed = 6;
  FleetRunner third(other, options);
  third.Run();
  EXPECT_EQ(third.campaign_report().replayed, 0);
  EXPECT_TRUE(third.campaign_report().journal_mismatch);

  fs::remove_all(dir);
}

TEST(FleetPlanTest, CellsPartitionDevicesAndShardsPartitionCells) {
  FleetSpec spec = SmallFleet();
  spec.devices = 1000;
  spec.shard_devices = 64;
  spec.apps = {{"mpeg", 2.0}, {"web", 1.0}, {"server", 1.0}};
  spec.jitter.arrival_rate = 0.2;
  spec.jitter.arrival_variants = 3;
  SweepOptions options;
  FleetRunner runner(spec, options);
  runner.Plan();

  // Cells: mpeg, web, and three server arrival variants.
  ASSERT_EQ(runner.cells().size(), 5u);
  std::uint64_t next = 0;
  std::uint64_t total = 0;
  for (const FleetCell& cell : runner.cells()) {
    EXPECT_EQ(cell.first_device, next);
    next += cell.count;
    total += cell.count;
  }
  EXPECT_EQ(total, spec.devices);

  // Shards tile each cell contiguously and never span cells.
  std::uint64_t shard_total = 0;
  for (const FleetShard& shard : runner.shards()) {
    const FleetCell& cell = runner.cells()[static_cast<std::size_t>(shard.cell)];
    EXPECT_GE(shard.first_device, cell.first_device);
    EXPECT_LE(shard.first_device + shard.count, cell.first_device + cell.count);
    EXPECT_LE(shard.count, spec.shard_devices);
    shard_total += shard.count;
  }
  EXPECT_EQ(shard_total, spec.devices);
}

TEST(FleetPlanTest, BadSpecsAreRejected) {
  SweepOptions options;
  {
    FleetSpec spec = SmallFleet();
    spec.devices = 0;
    EXPECT_THROW(FleetRunner(spec, options).Plan(), std::invalid_argument);
  }
  {
    FleetSpec spec = SmallFleet();
    spec.warmup = spec.duration;
    EXPECT_THROW(FleetRunner(spec, options).Plan(), std::invalid_argument);
  }
  {
    FleetSpec spec = SmallFleet();
    spec.apps = {{"mpeg", 0.0}};
    EXPECT_THROW(FleetRunner(spec, options).Plan(), std::invalid_argument);
  }
}

}  // namespace
}  // namespace dcs
