#include "src/exp/sweep.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/exp/repeat.h"

namespace dcs {
namespace {

ExperimentConfig ShortMpeg(std::uint64_t seed, const std::string& governor = "fixed-206.4") {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = seed;
  config.duration = SimTime::Seconds(2);
  return config;
}

// Field-by-field bit equality of the result surface the benches report.
void ExpectIdentical(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.app, b.app);
  EXPECT_EQ(a.governor, b.governor);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.exact_energy_joules, b.exact_energy_joules);
  EXPECT_EQ(a.average_watts, b.average_watts);
  EXPECT_EQ(a.avg_utilization, b.avg_utilization);
  EXPECT_EQ(a.quanta, b.quanta);
  EXPECT_EQ(a.clock_changes, b.clock_changes);
  EXPECT_EQ(a.voltage_transitions, b.voltage_transitions);
  EXPECT_EQ(a.total_stall, b.total_stall);
  EXPECT_EQ(a.step_residency, b.step_residency);
  EXPECT_EQ(a.task_cpu_seconds, b.task_cpu_seconds);
  EXPECT_EQ(a.deadline_events, b.deadline_events);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
  EXPECT_EQ(a.worst_lateness, b.worst_lateness);
  const TraceSeries* ua = a.sink.Find("utilization");
  const TraceSeries* ub = b.sink.Find("utilization");
  ASSERT_NE(ua, nullptr);
  ASSERT_NE(ub, nullptr);
  ASSERT_EQ(ua->size(), ub->size());
  for (std::size_t i = 0; i < ua->size(); ++i) {
    EXPECT_EQ(ua->points()[i], ub->points()[i]) << "quantum " << i;
  }
}

TEST(SweepRunnerTest, EmptyGridYieldsNoResults) {
  SweepRunner runner;
  EXPECT_TRUE(runner.Run({}).empty());
  EXPECT_EQ(runner.metrics().jobs, 0);
}

TEST(SweepRunnerTest, EmptyGridResetsMetricsFromPreviousRun) {
  // Regression: an empty grid after a real one must not report the previous
  // call's wall clock, failure count or throughput.
  SweepRunner runner;
  runner.Run({ShortMpeg(1), ShortMpeg(2, "definitely-not-a-spec")});
  ASSERT_GT(runner.metrics().wall_seconds, 0.0);
  ASSERT_EQ(runner.metrics().failed, 1);

  EXPECT_TRUE(runner.Run({}).empty());
  const SweepMetrics& m = runner.metrics();
  EXPECT_EQ(m.jobs, 0);
  EXPECT_EQ(m.failed, 0);
  EXPECT_EQ(m.wall_seconds, 0.0);
  EXPECT_EQ(m.simulated_seconds, 0.0);
  EXPECT_EQ(m.sim_seconds_per_second, 0.0);
}

TEST(SweepRunnerTest, ResultsAreIndexedByJobOrder) {
  const std::vector<ExperimentConfig> configs = {
      ShortMpeg(1, "fixed-206.4"), ShortMpeg(2, "fixed-132.7"),
      ShortMpeg(3, "PAST-peg-peg-93-98")};
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  const std::vector<SweepJobResult> jobs = runner.Run(configs);
  ASSERT_EQ(jobs.size(), 3u);
  // Each slot must hold exactly the result a serial RunExperiment of that
  // slot's config produces (ExpectIdentical compares the governor name too,
  // so a swapped slot would show up immediately).
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_TRUE(jobs[i].ok()) << jobs[i].error;
    ExpectIdentical(*jobs[i].result, RunExperiment(configs[i]));
  }
}

TEST(SweepRunnerTest, BitIdenticalAcrossThreadCounts) {
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    configs.push_back(ShortMpeg(seed, seed % 2 == 0 ? "PAST-peg-peg-93-98" : "AVG9-one-one-50-70"));
  }
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<ExperimentResult> a = RunSweep(configs, serial);
  const std::vector<ExperimentResult> b = RunSweep(configs, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ExpectIdentical(a[i], b[i]);
  }
}

TEST(SweepRunnerTest, BadConfigFailsOnlyItsJob) {
  std::vector<ExperimentConfig> configs = {ShortMpeg(1), ShortMpeg(2, "definitely-not-a-spec"),
                                           ShortMpeg(3)};
  SweepOptions options;
  options.threads = 2;
  SweepRunner runner(options);
  const std::vector<SweepJobResult> jobs = runner.Run(configs);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_TRUE(jobs[0].ok());
  EXPECT_FALSE(jobs[1].ok());
  EXPECT_NE(jobs[1].error.find("definitely-not-a-spec"), std::string::npos) << jobs[1].error;
  EXPECT_TRUE(jobs[2].ok());
  EXPECT_EQ(runner.metrics().failed, 1);
}

TEST(SweepRunnerTest, RunSweepThrowsOnFirstFailedJob) {
  const std::vector<ExperimentConfig> configs = {ShortMpeg(1),
                                                 ShortMpeg(2, "definitely-not-a-spec")};
  EXPECT_THROW(RunSweep(configs), std::runtime_error);
}

TEST(SweepRunnerTest, MetricsTrackJobsAndSimulatedSeconds) {
  const std::vector<ExperimentConfig> configs = {ShortMpeg(1), ShortMpeg(2)};
  SweepRunner runner;
  runner.Run(configs);
  const SweepMetrics& m = runner.metrics();
  EXPECT_EQ(m.jobs, 2);
  EXPECT_EQ(m.failed, 0);
  EXPECT_GE(m.threads, 1);
  EXPECT_LE(m.threads, 2);  // never more workers than jobs
  EXPECT_GT(m.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(m.simulated_seconds, 4.0);
  EXPECT_GT(m.sim_seconds_per_second, 0.0);
}

TEST(SweepRunnerTest, ThreadsResolveToHardwareWhenUnset) {
  SweepRunner runner;
  EXPECT_GE(runner.threads(), 1);
  SweepOptions options;
  options.threads = 3;
  EXPECT_EQ(SweepRunner(options).threads(), 3);
}

TEST(SweepOptionsFromArgsTest, ParsesThreadsAndProgress) {
  char prog[] = "bench";
  char threads_eq[] = "--threads=6";
  char progress[] = "--progress";
  char* argv1[] = {prog, threads_eq, progress};
  SweepOptions options = SweepOptionsFromArgs(3, argv1);
  EXPECT_EQ(options.threads, 6);
  EXPECT_TRUE(options.progress);

  char threads_flag[] = "--threads";
  char four[] = "4";
  char* argv2[] = {prog, threads_flag, four};
  options = SweepOptionsFromArgs(3, argv2);
  EXPECT_EQ(options.threads, 4);
  EXPECT_FALSE(options.progress);

  char* argv3[] = {prog};
  options = SweepOptionsFromArgs(1, argv3);
  EXPECT_EQ(options.threads, 0);
}

TEST(SweepOptionsFromArgsTest, ParsesCampaignFlags) {
  char prog[] = "bench";
  char resume[] = "--resume=run.journal";
  char timeout[] = "--job-timeout=2.5";
  char retries[] = "--max-retries=5";
  char quarantine[] = "--quarantine-out=bad.json";
  char* argv1[] = {prog, resume, timeout, retries, quarantine};
  SweepOptions options = SweepOptionsFromArgs(5, argv1);
  EXPECT_EQ(options.campaign.resume, "run.journal");
  EXPECT_DOUBLE_EQ(options.campaign.job_timeout, 2.5);
  EXPECT_EQ(options.campaign.max_retries, 5);
  EXPECT_EQ(options.campaign.quarantine_out, "bad.json");
  EXPECT_TRUE(options.campaign.Enabled());
  EXPECT_EQ(options.campaign.QuarantinePath(), "bad.json");

  // Space-separated form, negative values clamped, defaults otherwise.
  char resume_flag[] = "--resume";
  char journal[] = "j.bin";
  char bad_timeout[] = "--job-timeout=-1";
  char* argv2[] = {prog, resume_flag, journal, bad_timeout};
  options = SweepOptionsFromArgs(4, argv2);
  EXPECT_EQ(options.campaign.resume, "j.bin");
  EXPECT_EQ(options.campaign.job_timeout, 0.0);
  EXPECT_EQ(options.campaign.QuarantinePath(), "j.bin.quarantine.json");

  char* argv3[] = {prog};
  options = SweepOptionsFromArgs(1, argv3);
  EXPECT_FALSE(options.campaign.Enabled());
  EXPECT_EQ(options.campaign.QuarantinePath(), "");
  EXPECT_EQ(options.campaign.max_retries, 2);
}

TEST(RunRepeatedParallelTest, BitIdenticalToSerial) {
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const RepeatedResult a = RunRepeated(ShortMpeg(100), 5, serial);
  const RepeatedResult b = RunRepeated(ShortMpeg(100), 5, parallel);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    ExpectIdentical(a.runs[i], b.runs[i]);
  }
  EXPECT_EQ(a.energy.mean, b.energy.mean);
  EXPECT_EQ(a.energy.stddev, b.energy.stddev);
  EXPECT_EQ(a.energy.ci95_half, b.energy.ci95_half);
  EXPECT_EQ(a.total_deadline_misses, b.total_deadline_misses);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
  EXPECT_EQ(a.mean_clock_changes, b.mean_clock_changes);
}

TEST(SweepRunnerTest, ParallelSpeedupOnMulticoreHost) {
  // The acceptance bar: a 32-repetition sweep at least 2x faster on >= 4
  // cores.  Skipped on smaller hosts (CI runs it on 4-core runners).
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads, have "
                 << std::thread::hardware_concurrency();
  }
  std::vector<ExperimentConfig> configs;
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    configs.push_back(ShortMpeg(seed));
  }
  SweepOptions serial;
  serial.threads = 1;
  SweepRunner serial_runner(serial);
  serial_runner.Run(configs);
  const double serial_wall = serial_runner.metrics().wall_seconds;

  SweepOptions parallel;
  parallel.threads = 4;
  SweepRunner parallel_runner(parallel);
  parallel_runner.Run(configs);
  const double parallel_wall = parallel_runner.metrics().wall_seconds;

  EXPECT_GE(serial_wall / parallel_wall, 2.0)
      << "serial " << serial_wall << "s vs parallel " << parallel_wall << "s";
}

}  // namespace
}  // namespace dcs
