#include "src/exp/artifacts.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unistd.h>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dcs {
namespace {

namespace fs = std::filesystem;

ExperimentResult ShortRun() {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 3;
  config.duration = SimTime::Seconds(3);
  return RunExperiment(config);
}

class ArtifactsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // ctest runs each test in its own process, possibly in parallel: the
    // directory must be unique per test to avoid cross-test clobbering.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("dcs_artifacts_") + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(ArtifactsTest, WritesSeriesAndSummary) {
  const ExperimentResult result = ShortRun();
  ASSERT_TRUE(WriteArtifacts(dir_.string(), "tab2/run one", result));
  // Tag sanitised; one file per recorded series plus the summary.
  EXPECT_TRUE(fs::exists(dir_ / "tab2_run_one.utilization.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "tab2_run_one.freq_mhz.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "tab2_run_one.summary.csv"));
}

TEST_F(ArtifactsTest, SummaryContentsRoundTrip) {
  const ExperimentResult result = ShortRun();
  ASSERT_TRUE(WriteArtifacts(dir_.string(), "t", result));
  std::ifstream in(dir_ / "t.summary.csv");
  std::string header;
  std::string row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_NE(header.find("energy_j"), std::string::npos);
  EXPECT_NE(row.find("mpeg,PAST-peg-peg-93/98,3"), std::string::npos);
}

TEST_F(ArtifactsTest, SeriesCsvHasOneRowPerQuantum) {
  const ExperimentResult result = ShortRun();
  ASSERT_TRUE(WriteArtifacts(dir_.string(), "t", result));
  std::ifstream in(dir_ / "t.utilization.csv");
  int lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    ++lines;
  }
  // Header + ~300 quanta of a 3 s run.
  EXPECT_NEAR(static_cast<double>(lines), 301.0, 3.0);
}

TEST_F(ArtifactsTest, CreatesNestedDirectories) {
  const ExperimentResult result = ShortRun();
  const fs::path nested = dir_ / "a" / "b";
  EXPECT_TRUE(WriteArtifacts(nested.string(), "t", result));
  EXPECT_TRUE(fs::exists(nested / "t.summary.csv"));
}

TEST_F(ArtifactsTest, FailureSurfacesTheFailingPath) {
  const ExperimentResult result = ShortRun();
  // A file already occupies the destination *directory* path: creating the
  // directory fails before any CSV is attempted, and the error names it.
  fs::create_directories(dir_);
  const fs::path blocked = dir_ / "occupied";
  std::ofstream(blocked).put('\n');
  std::string error;
  EXPECT_FALSE(WriteArtifacts(blocked.string(), "t", result, &error));
  EXPECT_NE(error.find("occupied"), std::string::npos) << error;
}

TEST_F(ArtifactsTest, FailedExportLeavesNoPartialFiles) {
  const ExperimentResult result = ShortRun();
  ASSERT_TRUE(WriteArtifacts(dir_.string(), "t", result));
  // Every artifact is published via temp+rename, so the directory holds only
  // complete CSVs — no .tmp leftovers even right after a write.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".csv") << entry.path();
  }
}

TEST_F(ArtifactsTest, MaybeWriteSkipsWithoutEnvVar) {
  unsetenv("DCS_ARTIFACTS");
  const ExperimentResult result = ShortRun();
  EXPECT_TRUE(MaybeWriteArtifacts("t", result));
  EXPECT_FALSE(fs::exists(dir_ / "t.summary.csv"));
}

TEST_F(ArtifactsTest, MaybeWriteHonoursEnvVar) {
  setenv("DCS_ARTIFACTS", dir_.string().c_str(), 1);
  const ExperimentResult result = ShortRun();
  EXPECT_TRUE(MaybeWriteArtifacts("env_tag", result));
  unsetenv("DCS_ARTIFACTS");
  EXPECT_TRUE(fs::exists(dir_ / "env_tag.summary.csv"));
}

}  // namespace
}  // namespace dcs
