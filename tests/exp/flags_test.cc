#include "src/exp/flags.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/exp/sweep.h"

namespace dcs {
namespace {

// argv builder: gtest argv must be mutable char*, so keep storage alive.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "bench");
    for (std::string& s : storage_) {
      ptrs_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagSetTest, ParsesBothValueSpellings) {
  int threads = 0;
  std::string out;
  bool quick = false;
  FlagSet flags;
  flags.Int("threads", &threads);
  flags.String("out", &out);
  flags.Switch("quick", &quick);
  Argv a({"--threads=4", "--out", "report.json", "--quick"});
  std::string error;
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), &error)) << error;
  EXPECT_EQ(threads, 4);
  EXPECT_EQ(out, "report.json");
  EXPECT_TRUE(quick);
}

TEST(FlagSetTest, DefaultsSurviveWhenFlagAbsent) {
  int threads = 7;
  FlagSet flags;
  flags.Int("threads", &threads);
  Argv a({});
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), nullptr));
  EXPECT_EQ(threads, 7);
}

TEST(FlagSetTest, DuplicateFlagFailsInsteadOfLastWriteWins) {
  int threads = 0;
  FlagSet flags;
  flags.Int("threads", &threads);
  Argv a({"--threads=2", "--threads=8"});
  std::string error;
  EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
  EXPECT_EQ(error, "duplicate flag '--threads'");
}

TEST(FlagSetTest, AliasConflictNamesBothSpellings) {
  std::string out;
  FlagSet flags;
  flags.String("report-out", &out);
  flags.Alias("out", "report-out");
  Argv a({"--report-out=a.json", "--out=b.json"});
  std::string error;
  EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
  EXPECT_EQ(error, "'--out' conflicts with '--report-out'");
}

TEST(FlagSetTest, AliasWritesTheSharedTarget) {
  std::string out;
  FlagSet flags;
  flags.String("report-out", &out);
  flags.Alias("out", "report-out");
  Argv a({"--out=b.json"});
  std::string error;
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), &error)) << error;
  EXPECT_EQ(out, "b.json");
}

TEST(FlagSetTest, RejectsUnparsableNumbers) {
  int threads = 0;
  double timeout = 0.0;
  FlagSet flags;
  flags.Int("threads", &threads);
  flags.Double("job-timeout", &timeout);
  std::string error;
  {
    Argv a({"--threads=4abc"});
    EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
    EXPECT_EQ(error, "'--threads' needs an integer, got '4abc'");
  }
  {
    Argv a({"--job-timeout="});
    EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
    EXPECT_EQ(error, "'--job-timeout' needs a number, got ''");
  }
}

TEST(FlagSetTest, MissingValueIsAnError) {
  int threads = 0;
  FlagSet flags;
  flags.Int("threads", &threads);
  Argv a({"--threads"});
  std::string error;
  EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
  EXPECT_EQ(error, "'--threads' needs a value");
}

TEST(FlagSetTest, SwitchRejectsValue) {
  bool progress = false;
  FlagSet flags;
  flags.Switch("progress", &progress);
  Argv a({"--progress=yes"});
  std::string error;
  EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
  EXPECT_EQ(error, "'--progress' takes no value");
}

TEST(FlagSetTest, StrictModeRejectsTypos) {
  int threads = 0;
  FlagSet flags;
  flags.Int("threads", &threads);
  Argv a({"--thread=4"});
  std::string error;
  EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
  EXPECT_EQ(error, "unknown flag '--thread'");
}

TEST(FlagSetTest, AllowUnknownSkipsForeignFlags) {
  int threads = 0;
  FlagSet flags;
  flags.Int("threads", &threads);
  Argv a({"--quick", "--threads=3", "positional"});
  std::string error;
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), &error, /*allow_unknown=*/true)) << error;
  EXPECT_EQ(threads, 3);
}

TEST(FlagSetTest, ReparseClearsSeenState) {
  int threads = 0;
  FlagSet flags;
  flags.Int("threads", &threads);
  Argv a({"--threads=2"});
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), nullptr));
  // A second parse of the same argv must not report a duplicate.
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), nullptr));
  EXPECT_EQ(threads, 2);
}

TEST(RegisterSweepFlagsTest, CoversSharedSweepSurface) {
  SweepOptions options;
  FlagSet flags;
  RegisterSweepFlags(flags, &options);
  Argv a({"--threads=4", "--progress", "--metrics-out=m.json", "--faults=none",
          "--resume=r.journal", "--job-timeout=1.5", "--max-retries=3",
          "--quarantine-out=q.json", "--trace-out=t.json"});
  std::string error;
  ASSERT_TRUE(flags.Parse(a.argc(), a.argv(), &error)) << error;
  EXPECT_EQ(options.threads, 4);
  EXPECT_TRUE(options.progress);
  EXPECT_EQ(options.metrics_out, "m.json");
  EXPECT_EQ(options.faults, "none");
  EXPECT_EQ(options.campaign.resume, "r.journal");
  EXPECT_DOUBLE_EQ(options.campaign.job_timeout, 1.5);
  EXPECT_EQ(options.campaign.max_retries, 3);
  EXPECT_EQ(options.campaign.quarantine_out, "q.json");
  EXPECT_EQ(options.trace_out, "t.json");
  EXPECT_TRUE(options.campaign.Enabled());
}

TEST(RegisterSweepFlagsTest, DuplicateThreadsAcrossSpellingsFails) {
  SweepOptions options;
  FlagSet flags;
  RegisterSweepFlags(flags, &options);
  Argv a({"--threads", "2", "--threads=8"});
  std::string error;
  EXPECT_FALSE(flags.Parse(a.argc(), a.argv(), &error));
  EXPECT_EQ(error, "duplicate flag '--threads'");
}

}  // namespace
}  // namespace dcs
