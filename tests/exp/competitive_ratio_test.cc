// The competitive-ratio acceptance suite (ctest label: ratio).  For every
// governor in the registry slate, a run's ground-truth energy must be at
// least the offline optimum for the work it executed — ratio >= 1.0, with no
// tolerance beyond floating-point noise.  A sub-1.0 ratio means either the
// lower bound is wrong (solver bug) or the work trace overstates what ran
// (accounting bug); both are release blockers for the bench.

#include "src/exp/competitive.h"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "src/core/governor_registry.h"
#include "src/exp/experiment.h"

namespace dcs {
namespace {

constexpr double kTolerance = 1e-9;

ExperimentConfig SmallConfig(const std::string& app, const std::string& governor) {
  ExperimentConfig config;
  config.app = app;
  config.governor = governor;
  config.seed = 7;
  config.duration = SimTime::Seconds(2);
  if (app == "server") {
    ServerConfig scenario;
    scenario.duration = *config.duration;
    config.server = scenario;
  }
  return config;
}

class CompetitiveRatioTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CompetitiveRatioTest, RatioAtLeastOneOnEveryAppAndWindow) {
  const EnergyModel model = MakeItsyEnergyModel(ItsyConfig{}.power);
  const double quantum_seconds = KernelConfig{}.quantum.ToSeconds();
  for (const char* app : {"mpeg", "server"}) {
    const ExperimentResult result = RunExperiment(SmallConfig(app, GetParam()));
    const std::vector<double> work = WorkTraceFromResult(result);
    ASSERT_FALSE(work.empty()) << app;
    double prev_opt = 1e300;
    for (const int window : {1, 5, 25}) {
      const CompetitiveScore score =
          ScoreCompetitive(result, window, model, quantum_seconds);
      EXPECT_GE(score.ratio, 1.0 - kTolerance)
          << GetParam() << " on " << app << " D=" << window;
      EXPECT_GT(score.optimal_joules, 0.0) << app << " D=" << window;
      EXPECT_EQ(score.run_joules, result.exact_energy_joules) << app;
      EXPECT_GT(score.total_work_seconds, 0.0) << app;
      EXPECT_LE(score.opt_peak_speed, 1.0 + kTolerance) << app << " D=" << window;
      // More slack can only help the offline schedule.
      EXPECT_LE(score.optimal_joules, prev_opt + 1e-12) << app << " D=" << window;
      prev_opt = score.optimal_joules;
    }
  }
}

std::string SpecName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, CompetitiveRatioTest,
                         ::testing::ValuesIn(AllGovernorSpecs()), SpecName);

TEST(CompetitiveScoreTest, WorkTraceMatchesRecordedQuantaAndFitsTheQuantum) {
  const ExperimentResult result = RunExperiment(SmallConfig("mpeg", "PAST-peg-peg-93-98"));
  const std::vector<double> work = WorkTraceFromResult(result);
  ASSERT_FALSE(work.empty());
  const double quantum_seconds = KernelConfig{}.quantum.ToSeconds();
  double total = 0.0;
  for (const double w : work) {
    EXPECT_GE(w, 0.0);
    // Tick jitter may stretch a quantum slightly; 2x is far beyond it.
    EXPECT_LE(w, 2.0 * quantum_seconds);
    total += w;
  }
  EXPECT_GT(total, 0.0);
}

TEST(CompetitiveScoreTest, ScoringIsAPureFunctionOfTheResult) {
  const ExperimentResult result = RunExperiment(SmallConfig("mpeg", "deadline"));
  const EnergyModel model = MakeItsyEnergyModel(ItsyConfig{}.power);
  const double quantum_seconds = KernelConfig{}.quantum.ToSeconds();
  const CompetitiveScore a = ScoreCompetitive(result, 5, model, quantum_seconds);
  const CompetitiveScore b = ScoreCompetitive(result, 5, model, quantum_seconds);
  EXPECT_EQ(a.ratio, b.ratio);
  EXPECT_EQ(a.optimal_joules, b.optimal_joules);
  EXPECT_EQ(a.opt_peak_speed, b.opt_peak_speed);
}

TEST(CompetitiveScoreTest, StampWritesTheMetricsGauges) {
  ExperimentResult result = RunExperiment(SmallConfig("mpeg", "ondemand"));
  const EnergyModel model = MakeItsyEnergyModel(ItsyConfig{}.power);
  const CompetitiveScore score =
      ScoreCompetitive(result, 5, model, KernelConfig{}.quantum.ToSeconds());
  StampCompetitiveMetrics(result, 5, score);
  EXPECT_DOUBLE_EQ(result.metrics.Gauge("ratio.d5").value(), score.ratio);
  EXPECT_DOUBLE_EQ(result.metrics.Gauge("ratio.d5.opt_joules").value(), score.optimal_joules);
  EXPECT_DOUBLE_EQ(result.metrics.Gauge("ratio.d5.opt_peak_speed").value(),
                   score.opt_peak_speed);
}

TEST(CompetitiveScoreTest, FaultedRunsStillScoreAtLeastOne) {
  // Fault injection perturbs transitions and the DAQ, but the power tape and
  // the recorded work stay consistent, so the bound must still hold.
  ExperimentConfig config = SmallConfig("mpeg", "pid-vs");
  config.faults = "storm=0.35,seed=11";
  const ExperimentResult result = RunExperiment(config);
  const EnergyModel model = MakeItsyEnergyModel(ItsyConfig{}.power);
  const CompetitiveScore score =
      ScoreCompetitive(result, 5, model, KernelConfig{}.quantum.ToSeconds());
  EXPECT_GE(score.ratio, 1.0 - kTolerance);
}

}  // namespace
}  // namespace dcs
