#include "src/exp/experiment.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

ExperimentConfig ShortMpeg(const std::string& governor, std::uint64_t seed = 7) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = seed;
  config.duration = SimTime::Seconds(10);
  return config;
}

TEST(ExperimentTest, ProducesPlausibleEnergyAndPower) {
  const ExperimentResult result = RunExperiment(ShortMpeg("fixed-206.4"));
  EXPECT_GT(result.energy_joules, 5.0);
  EXPECT_LT(result.energy_joules, 30.0);
  EXPECT_NEAR(result.average_watts, result.energy_joules / 10.0, 0.01);
  EXPECT_GT(result.avg_utilization, 0.4);
  EXPECT_LT(result.avg_utilization, 1.0);
}

TEST(ExperimentTest, DaqMeasurementTracksGroundTruth) {
  const ExperimentResult result = RunExperiment(ShortMpeg("fixed-206.4"));
  EXPECT_NEAR(result.energy_joules, result.exact_energy_joules,
              result.exact_energy_joules * 0.01);
}

TEST(ExperimentTest, GovernorNameRecorded) {
  EXPECT_EQ(RunExperiment(ShortMpeg("PAST-peg-peg-93-98")).governor, "PAST-peg-peg-93/98");
  EXPECT_EQ(RunExperiment(ShortMpeg("none")).governor, "none");
}

TEST(ExperimentTest, NoGovernorStaysAtInitialStep) {
  ExperimentConfig config = ShortMpeg("none");
  config.itsy.initial_step = 5;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_EQ(result.clock_changes, 0);
  EXPECT_NEAR(result.step_residency[5], 1.0, 0.01);
}

TEST(ExperimentTest, StepResidencySumsToOne) {
  const ExperimentResult result = RunExperiment(ShortMpeg("PAST-peg-peg-93-98"));
  double total = 0.0;
  for (const double r : result.step_residency) {
    total += r;
  }
  EXPECT_NEAR(total, 1.0, 0.01);
}

TEST(ExperimentTest, DeterministicForSameSeed) {
  const ExperimentResult a = RunExperiment(ShortMpeg("PAST-peg-peg-93-98", 3));
  const ExperimentResult b = RunExperiment(ShortMpeg("PAST-peg-peg-93-98", 3));
  EXPECT_DOUBLE_EQ(a.energy_joules, b.energy_joules);
  EXPECT_EQ(a.clock_changes, b.clock_changes);
  EXPECT_EQ(a.deadline_misses, b.deadline_misses);
}

TEST(ExperimentTest, SeedChangesOutcomeSlightly) {
  const ExperimentResult a = RunExperiment(ShortMpeg("fixed-206.4", 3));
  const ExperimentResult b = RunExperiment(ShortMpeg("fixed-206.4", 4));
  EXPECT_NE(a.energy_joules, b.energy_joules);
  // ... but not by much: same workload, different jitter.
  EXPECT_NEAR(a.energy_joules, b.energy_joules, a.energy_joules * 0.05);
}

TEST(ExperimentTest, RecordsUtilizationAndFrequencySeries) {
  const ExperimentResult result = RunExperiment(ShortMpeg("PAST-peg-peg-93-98"));
  const TraceSeries* util = result.sink.Find("utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_NEAR(static_cast<double>(util->size()), 1000.0, 5.0);  // 10 s of 10 ms quanta
  const TraceSeries* freq = result.sink.Find("freq_mhz");
  ASSERT_NE(freq, nullptr);
  EXPECT_GT(freq->size(), 10u);  // peg-peg flaps
}

TEST(ExperimentTest, DeadlineStreamsExposed) {
  const ExperimentResult result = RunExperiment(ShortMpeg("fixed-206.4"));
  ASSERT_TRUE(result.streams.contains("video_frame"));
  ASSERT_TRUE(result.streams.contains("audio"));
  EXPECT_GT(result.streams.at("video_frame").total, 100);
  EXPECT_TRUE(result.MetAllDeadlines());
}

TEST(ExperimentTest, VoltageScalingGovernorTransitionsRail) {
  const ExperimentResult result = RunExperiment(ShortMpeg("PAST-peg-peg-93-98-vs"));
  EXPECT_GT(result.voltage_transitions, 10);
}

TEST(ExperimentTest, StallTimeTracksClockChanges) {
  const ExperimentResult result = RunExperiment(ShortMpeg("PAST-peg-peg-93-98"));
  EXPECT_EQ(result.total_stall, SimTime::Micros(200) * result.clock_changes);
}

TEST(ExperimentTest, AllAppsRunUnderAllPaperGovernors) {
  for (const char* app : {"mpeg", "web", "chess", "editor"}) {
    ExperimentConfig config;
    config.app = app;
    config.governor = "PAST-peg-peg-93-98";
    config.seed = 5;
    config.duration = SimTime::Seconds(8);
    const ExperimentResult result = RunExperiment(config);
    EXPECT_GT(result.energy_joules, 0.0) << app;
    EXPECT_EQ(result.app, app);
  }
}

}  // namespace
}  // namespace dcs
