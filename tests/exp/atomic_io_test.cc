#include "src/exp/atomic_io.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace dcs {
namespace {

namespace fs = std::filesystem;

std::string ReadAll(const fs::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

class AtomicIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("dcs_atomic_io_") + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Number of directory entries, including any leftover temp files.
  std::size_t EntryCount() const {
    std::size_t n = 0;
    for ([[maybe_unused]] const auto& entry : fs::directory_iterator(dir_)) {
      ++n;
    }
    return n;
  }

  fs::path dir_;
};

TEST(Crc32Test, MatchesTheStandardCheckValue) {
  // The IEEE 802.3 / zlib check vector.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, ChunkedEqualsOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32(data);
  std::uint32_t chunked = 0;
  for (char c : data) {
    chunked = Crc32(&c, 1, chunked);
  }
  EXPECT_EQ(chunked, whole);
}

TEST_F(AtomicIoTest, WritesContentAndLeavesNoTempFile) {
  const fs::path path = dir_ / "out.txt";
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path.string(), std::string("hello\n"), &error)) << error;
  EXPECT_EQ(ReadAll(path), "hello\n");
  EXPECT_EQ(EntryCount(), 1u);
}

TEST_F(AtomicIoTest, FailedWritePreservesOldFileAndNamesThePath) {
  const fs::path path = dir_ / "missing_subdir" / "out.txt";
  std::string error;
  // The destination directory doesn't exist: the temp-file create fails and
  // the error must say which path was involved.
  EXPECT_FALSE(AtomicWriteFile(path.string(), std::string("x"), &error));
  EXPECT_NE(error.find("missing_subdir"), std::string::npos) << error;
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(AtomicIoTest, RenderFailureLeavesNoStalePartialFile) {
  const fs::path path = dir_ / "report.txt";
  ASSERT_TRUE(AtomicWriteFile(path.string(), std::string("previous good content\n")));
  std::string error;
  // A writer that fails its stream mid-render must not replace (or truncate)
  // the published file, and must not leave a temp file behind.
  const bool ok = AtomicWriteFile(
      path.string(),
      [](std::ostream& os) {
        os << "partial";
        os.setstate(std::ios::failbit);
      },
      &error);
  EXPECT_FALSE(ok);
  EXPECT_NE(error.find(path.string()), std::string::npos) << error;
  EXPECT_EQ(ReadAll(path), "previous good content\n");
  EXPECT_EQ(EntryCount(), 1u);
}

TEST_F(AtomicIoTest, OverwriteReplacesWholeFile) {
  const fs::path path = dir_ / "out.txt";
  ASSERT_TRUE(AtomicWriteFile(path.string(), std::string("a much longer first version\n")));
  ASSERT_TRUE(AtomicWriteFile(path.string(), std::string("v2\n")));
  EXPECT_EQ(ReadAll(path), "v2\n");
}

TEST_F(AtomicIoTest, TrailingCrcRoundTrips) {
  const fs::path path = dir_ / "report.txt";
  AtomicWriteOptions options;
  options.trailing_crc = true;
  ASSERT_TRUE(AtomicWriteFile(
      path.string(), [](std::ostream& os) { os << "line one\nline two\n"; }, nullptr,
      options));
  const std::string content = ReadAll(path);
  EXPECT_TRUE(VerifyTrailingCrc(content)) << content;

  // Any corruption or truncation of the body must be detected.
  std::string corrupted = content;
  corrupted[0] ^= 0x01;
  EXPECT_FALSE(VerifyTrailingCrc(corrupted));
  EXPECT_FALSE(VerifyTrailingCrc(content.substr(1)));
  EXPECT_FALSE(VerifyTrailingCrc("no trailer at all\n"));
  EXPECT_FALSE(VerifyTrailingCrc(""));
}

}  // namespace
}  // namespace dcs
