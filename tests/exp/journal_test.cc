#include "src/exp/journal.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "tests/fault/fingerprint.h"

namespace dcs {
namespace {

namespace fs = std::filesystem;

ExperimentConfig ShortMpeg(std::uint64_t seed, const std::string& governor = "fixed-206.4") {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = seed;
  config.duration = SimTime::Seconds(2);
  return config;
}

std::string MetricsJson(const ExperimentResult& r) {
  std::ostringstream os;
  r.metrics.WriteJson(os);
  return os.str();
}

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::temp_directory_path() /
           (std::string("dcs_journal_") + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    path_ = (dir_ / "campaign.journal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Writes one header + two records (slot 0 ok with a real result, slot 2
  // failed/quarantined) and returns the serialized result's fingerprint.
  std::string WriteSampleJournal(const std::vector<ExperimentConfig>& grid) {
    const ExperimentResult result = RunExperiment(grid[0]);
    std::string error;
    auto writer = JournalWriter::Create(path_, &error);
    EXPECT_NE(writer, nullptr) << error;
    JournalHeader header;
    header.grid_fingerprint = GridFingerprint(grid);
    header.jobs = static_cast<std::uint32_t>(grid.size());
    header.label = "test";
    EXPECT_TRUE(writer->AppendHeader(header, &error)) << error;

    JournalRecord ok_record;
    ok_record.slot = 0;
    ok_record.config_fingerprint = ConfigFingerprint(grid[0]);
    ok_record.ok = true;
    ok_record.result = result;
    EXPECT_TRUE(writer->AppendRecord(ok_record, &error)) << error;

    JournalRecord bad_record;
    bad_record.slot = 2;
    bad_record.config_fingerprint = ConfigFingerprint(grid[2]);
    bad_record.ok = false;
    bad_record.quarantined = true;
    bad_record.attempts = 3;
    bad_record.error = "watchdog timeout";
    EXPECT_TRUE(writer->AppendRecord(bad_record, &error)) << error;
    return Fingerprint(result);
  }

  fs::path dir_;
  std::string path_;
};

TEST(ByteStreamTest, RoundTripsEveryFieldType) {
  ByteWriter w;
  w.U8(7);
  w.U32(0xDEADBEEFu);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.F64(3.25);
  w.Time(SimTime::Micros(1500));
  w.Str("hello");
  w.Str("");

  ByteReader r(w.bytes());
  EXPECT_EQ(r.U8(), 7);
  EXPECT_EQ(r.U32(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64(), -42);
  EXPECT_EQ(r.F64(), 3.25);
  EXPECT_EQ(r.Time(), SimTime::Micros(1500));
  EXPECT_EQ(r.Str(), "hello");
  EXPECT_EQ(r.Str(), "");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteStreamTest, ReadingPastTheEndLatchesNotOk) {
  ByteWriter w;
  w.U32(1);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.U32(), 1u);
  EXPECT_EQ(r.U64(), 0u);  // past the end: zero value, ok() latched false
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.Str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(ConfigFingerprintTest, SensitiveToEverySimulationRelevantField) {
  const ExperimentConfig base = ShortMpeg(1);
  EXPECT_EQ(ConfigFingerprint(base), ConfigFingerprint(ShortMpeg(1)));

  ExperimentConfig changed = base;
  changed.seed = 2;
  EXPECT_NE(ConfigFingerprint(changed), ConfigFingerprint(base));
  changed = base;
  changed.governor = "PAST-peg-peg-93-98";
  EXPECT_NE(ConfigFingerprint(changed), ConfigFingerprint(base));
  changed = base;
  changed.duration = SimTime::Seconds(3);
  EXPECT_NE(ConfigFingerprint(changed), ConfigFingerprint(base));
  changed = base;
  changed.faults = "storm=0.4,seed=11";
  EXPECT_NE(ConfigFingerprint(changed), ConfigFingerprint(base));
  changed = base;
  changed.kernel.quantum = changed.kernel.quantum * 2;
  EXPECT_NE(ConfigFingerprint(changed), ConfigFingerprint(base));
}

TEST(ConfigFingerprintTest, IgnoresHowNotWhatFields) {
  // The cancel token and capture flag change how a job runs, never what it
  // computes — a resumed campaign with a watchdog must still match a journal
  // written without one.
  const ExperimentConfig base = ShortMpeg(1);
  ExperimentConfig with_harness_knobs = base;
  std::atomic<bool> cancel{false};
  with_harness_knobs.cancel = &cancel;
  EXPECT_EQ(ConfigFingerprint(with_harness_knobs), ConfigFingerprint(base));
}

TEST(GridFingerprintTest, OrderAndSizeSensitive) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2)};
  const std::vector<ExperimentConfig> swapped = {ShortMpeg(2), ShortMpeg(1)};
  const std::vector<ExperimentConfig> prefix = {ShortMpeg(1)};
  EXPECT_EQ(GridFingerprint(grid), GridFingerprint({ShortMpeg(1), ShortMpeg(2)}));
  EXPECT_NE(GridFingerprint(grid), GridFingerprint(swapped));
  EXPECT_NE(GridFingerprint(grid), GridFingerprint(prefix));
}

TEST(ResultSerializationTest, RoundTripsByteIdentically) {
  ExperimentConfig config = ShortMpeg(5, "PAST-peg-peg-93-98");
  config.faults = "storm=0.3,seed=11";  // exercises the FaultReport fields too
  const ExperimentResult original = RunExperiment(config);

  ByteWriter w;
  SerializeResult(original, &w);
  ByteReader r(w.bytes());
  ExperimentResult restored;
  ASSERT_TRUE(DeserializeResult(&r, &restored));

  // The test fingerprint covers every reported number in hexfloat, and the
  // metrics JSON covers the full registry.
  EXPECT_EQ(Fingerprint(restored), Fingerprint(original));
  EXPECT_EQ(MetricsJson(restored), MetricsJson(original));
  ASSERT_EQ(restored.streams.size(), original.streams.size());
}

TEST(ResultSerializationTest, RejectsTruncatedPayload) {
  const ExperimentResult original = RunExperiment(ShortMpeg(1));
  ByteWriter w;
  SerializeResult(original, &w);
  const std::string whole = w.bytes();
  const std::string torn = whole.substr(0, whole.size() / 2);
  ByteReader r(torn);
  ExperimentResult restored;
  EXPECT_FALSE(DeserializeResult(&r, &restored));
}

TEST_F(JournalTest, WriteReadRoundTrip) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2), ShortMpeg(3)};
  const std::string expected_fp = WriteSampleJournal(grid);

  const JournalReadResult journal = ReadJournal(path_);
  EXPECT_TRUE(journal.readable);
  EXPECT_FALSE(journal.truncated);
  EXPECT_TRUE(journal.violations.empty());
  ASSERT_EQ(journal.segments.size(), 1u);
  const JournalSegment& segment = journal.segments[0];
  EXPECT_EQ(segment.header.grid_fingerprint, GridFingerprint(grid));
  EXPECT_EQ(segment.header.jobs, 3u);
  EXPECT_EQ(segment.header.label, "test");
  ASSERT_EQ(segment.records.size(), 2u);

  const JournalRecord& ok_record = segment.records[0];
  EXPECT_TRUE(ok_record.ok);
  EXPECT_EQ(ok_record.slot, 0u);
  EXPECT_EQ(Fingerprint(ok_record.result), expected_fp);

  const JournalRecord& bad_record = segment.records[1];
  EXPECT_FALSE(bad_record.ok);
  EXPECT_TRUE(bad_record.quarantined);
  EXPECT_EQ(bad_record.slot, 2u);
  EXPECT_EQ(bad_record.attempts, 3u);
  EXPECT_EQ(bad_record.error, "watchdog timeout");

  const auto matching = journal.MatchingRecords(GridFingerprint(grid), 3);
  EXPECT_EQ(matching.size(), 2u);
  EXPECT_TRUE(journal.MatchingRecords(GridFingerprint(grid) ^ 1, 3).empty());
  EXPECT_TRUE(journal.MatchingRecords(GridFingerprint(grid), 4).empty());
}

TEST_F(JournalTest, TruncatedMidFrameKeepsThePrefixAndResumesCleanly) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2), ShortMpeg(3)};
  WriteSampleJournal(grid);
  const JournalReadResult intact = ReadJournal(path_);
  ASSERT_TRUE(intact.readable);
  ASSERT_EQ(intact.segments[0].records.size(), 2u);

  // Chop the file mid-way through the last frame — the torn-append state a
  // SIGKILL leaves behind.
  const auto full_size = fs::file_size(path_);
  fs::resize_file(path_, full_size - 7);

  const JournalReadResult torn = ReadJournal(path_);
  EXPECT_TRUE(torn.readable);
  EXPECT_TRUE(torn.truncated);
  ASSERT_EQ(torn.segments.size(), 1u);
  ASSERT_EQ(torn.segments[0].records.size(), 1u);  // the ok record survives
  EXPECT_LT(torn.valid_bytes, full_size - 7);

  // Appending through the writer truncates the torn tail first; the re-added
  // record must parse cleanly afterwards.
  std::string error;
  auto writer = JournalWriter::Append(path_, torn.valid_bytes, &error);
  ASSERT_NE(writer, nullptr) << error;
  JournalRecord record;
  record.slot = 1;
  record.config_fingerprint = ConfigFingerprint(grid[1]);
  record.ok = false;
  record.error = "retry later";
  ASSERT_TRUE(writer->AppendRecord(record, &error)) << error;

  const JournalReadResult repaired = ReadJournal(path_);
  EXPECT_TRUE(repaired.readable);
  EXPECT_FALSE(repaired.truncated);
  ASSERT_EQ(repaired.segments.size(), 1u);
  ASSERT_EQ(repaired.segments[0].records.size(), 2u);
  EXPECT_EQ(repaired.segments[0].records[1].slot, 1u);
  EXPECT_EQ(repaired.segments[0].records[1].error, "retry later");
}

TEST_F(JournalTest, CorruptedFrameDropsTheTailWithAViolation) {
  const std::vector<ExperimentConfig> grid = {ShortMpeg(1), ShortMpeg(2), ShortMpeg(3)};
  WriteSampleJournal(grid);

  // Flip one byte near the end of the file: inside the last frame's payload,
  // so its CRC no longer matches.
  std::fstream file(path_, std::ios::in | std::ios::out | std::ios::binary);
  file.seekg(-3, std::ios::end);
  char byte = 0;
  file.get(byte);
  file.seekp(-3, std::ios::end);
  file.put(static_cast<char>(byte ^ 0x5A));
  file.close();

  const JournalReadResult corrupt = ReadJournal(path_);
  EXPECT_TRUE(corrupt.readable);
  EXPECT_TRUE(corrupt.truncated);
  ASSERT_EQ(corrupt.segments.size(), 1u);
  EXPECT_EQ(corrupt.segments[0].records.size(), 1u);
  EXPECT_FALSE(corrupt.violations.empty());
}

TEST_F(JournalTest, MissingFileIsNotReadable) {
  const JournalReadResult journal = ReadJournal((dir_ / "nope.journal").string());
  EXPECT_FALSE(journal.readable);
  EXPECT_TRUE(journal.segments.empty());
  EXPECT_EQ(journal.valid_bytes, 0u);
}

TEST_F(JournalTest, RecordBeforeAnyHeaderIsAStructuralViolation) {
  std::string error;
  auto writer = JournalWriter::Create(path_, &error);
  ASSERT_NE(writer, nullptr) << error;
  JournalRecord record;
  record.slot = 0;
  record.ok = false;
  record.error = "orphan";
  ASSERT_TRUE(writer->AppendRecord(record, &error)) << error;

  const JournalReadResult journal = ReadJournal(path_);
  EXPECT_FALSE(journal.violations.empty());
  EXPECT_TRUE(journal.segments.empty());
}

TEST_F(JournalTest, MultipleSegmentsKeyedByGridFingerprint) {
  // One journal, two grids — the multi-RunSweep-per-process case (e.g. the
  // Table 2 bench runs five separate grids against one --resume path).
  const std::vector<ExperimentConfig> grid_a = {ShortMpeg(1)};
  const std::vector<ExperimentConfig> grid_b = {ShortMpeg(9), ShortMpeg(10)};
  std::string error;
  auto writer = JournalWriter::Create(path_, &error);
  ASSERT_NE(writer, nullptr) << error;
  for (const auto* grid : {&grid_a, &grid_b}) {
    JournalHeader header;
    header.grid_fingerprint = GridFingerprint(*grid);
    header.jobs = static_cast<std::uint32_t>(grid->size());
    ASSERT_TRUE(writer->AppendHeader(header, &error)) << error;
    JournalRecord record;
    record.slot = 0;
    record.config_fingerprint = ConfigFingerprint((*grid)[0]);
    record.ok = false;
    record.error = "placeholder";
    ASSERT_TRUE(writer->AppendRecord(record, &error)) << error;
  }

  const JournalReadResult journal = ReadJournal(path_);
  ASSERT_EQ(journal.segments.size(), 2u);
  EXPECT_EQ(journal.MatchingRecords(GridFingerprint(grid_a), 1).size(), 1u);
  EXPECT_EQ(journal.MatchingRecords(GridFingerprint(grid_b), 2).size(), 1u);
  EXPECT_TRUE(journal.MatchingRecords(GridFingerprint(grid_a), 2).empty());
}

}  // namespace
}  // namespace dcs
