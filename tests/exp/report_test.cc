#include "src/exp/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcs {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22    |"), std::string::npos);
  EXPECT_NE(out.find("+-------------+-------+"), std::string::npos);
}

TEST(TextTableTest, EmptyTableStillPrintsHeader) {
  TextTable table({"col"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("col"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n3,4\n");
}

TEST(TextTableTest, FixedFormatting) {
  EXPECT_EQ(TextTable::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::Fixed(3.0, 0), "3");
  EXPECT_EQ(TextTable::Fixed(-1.005, 1), "-1.0");
}

TEST(TextTableTest, PercentFormatting) {
  EXPECT_EQ(TextTable::Percent(0.756), "75.6%");
  EXPECT_EQ(TextTable::Percent(1.0, 0), "100%");
}

TEST(PrintHeadingTest, Format) {
  std::ostringstream os;
  PrintHeading(os, "Table 2");
  EXPECT_EQ(os.str(), "\n=== Table 2 ===\n\n");
}

}  // namespace
}  // namespace dcs
