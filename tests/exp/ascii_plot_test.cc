#include "src/exp/ascii_plot.h"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

namespace dcs {
namespace {

TEST(AsciiPlotTest, RendersGridWithMarks) {
  std::vector<double> y = {0.0, 0.5, 1.0, 0.5, 0.0};
  std::ostringstream os;
  PlotOptions options;
  options.width = 20;
  options.height = 5;
  options.title = "wave";
  AsciiPlot(os, y, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("wave"), std::string::npos);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("0.000"), std::string::npos);
}

TEST(AsciiPlotTest, EmptyDataHandled) {
  std::ostringstream os;
  AsciiPlot(os, std::vector<double>{}, PlotOptions{});
  EXPECT_EQ(os.str(), "(no data)\n");
}

TEST(AsciiPlotTest, ConstantSignalDoesNotDivideByZero) {
  std::vector<double> y(10, 2.0);
  std::ostringstream os;
  AsciiPlot(os, y, PlotOptions{});
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlotTest, FixedRangeClampsOutliers) {
  std::vector<double> y = {0.5, 100.0, 0.5};
  std::ostringstream os;
  PlotOptions options;
  options.y_min = 0.0;
  options.y_max = 1.0;
  options.height = 4;
  AsciiPlot(os, y, options);
  EXPECT_NE(os.str().find("1.000"), std::string::npos);
  EXPECT_EQ(os.str().find("100"), std::string::npos);
}

TEST(AsciiPlotTest, SeriesOverloadUsesSeconds) {
  TraceSeries series("power");
  series.Append(SimTime::Seconds(0), 1.0);
  series.Append(SimTime::Seconds(10), 2.0);
  std::ostringstream os;
  PlotOptions options;
  options.x_label = "seconds";
  AsciiPlot(os, series, options);
  EXPECT_NE(os.str().find("seconds"), std::string::npos);
  EXPECT_NE(os.str().find("10"), std::string::npos);
}

TEST(AsciiPlotTest, MismatchedXySizesRejected) {
  std::vector<double> x = {1.0, 2.0};
  std::vector<double> y = {1.0};
  std::ostringstream os;
  AsciiPlot(os, x, y, PlotOptions{});
  EXPECT_EQ(os.str(), "(no data)\n");
}

}  // namespace
}  // namespace dcs
