// Snapshot determinism: forking a device from a mid-run image must be
// indistinguishable from never having stopped.  For every registered
// governor spec, with and without fault injection, three paths must produce
// byte-identical serialized results (journal.h SerializeResult covers every
// field of ExperimentResult, including the full metrics registry):
//
//   straight:  build -> run to the horizon -> Finish
//   rewind:    build -> run past the snapshot point to the horizon ->
//              LoadState back to the snapshot -> run again -> Finish
//              (the fleet worker's in-place device-cycling path)
//   fresh:     build a second stack from the same config -> LoadState the
//              image -> run -> Finish (the clone-onto-new-worker path)
//
// The rewind path is the stronger check: the stack is "dirty" with a
// completed run's state, so any component whose LoadState merges instead of
// overwrites shows up as a diff here.

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "src/core/governor_registry.h"
#include "src/exp/device_sim.h"
#include "src/exp/experiment.h"
#include "src/exp/journal.h"
#include "src/sim/snapshot.h"

namespace dcs {
namespace {

std::string ResultBytes(const ExperimentResult& result) {
  ByteWriter w;
  SerializeResult(result, &w);
  return w.Take();
}

ExperimentConfig BaseConfig(const std::string& governor, const std::string& faults) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = governor;
  config.seed = 7;
  config.duration = SimTime::Seconds(2);
  config.faults = faults;
  // Battery engaged so the image also covers charge state and death times.
  config.itsy.battery = BatteryParams{};
  return config;
}

class FleetSnapshotTest : public ::testing::TestWithParam<std::string> {};

void ExpectSnapshotPathsIdentical(const ExperimentConfig& config) {
  const SimTime snap_at = SimTime::Millis(900);

  // Straight run: the reference bytes.
  DeviceSim straight(config);
  const std::string expected = ResultBytes(straight.Run());

  // Image at the snapshot point.
  DeviceSim source(config);
  source.Start();
  source.RunUntil(snap_at);
  SnapshotWriter image;
  source.SaveState(&image);

  // Rewind: run the source to completion first, then load the image back
  // into the same (dirty) stack and re-run the tail.
  source.RunUntil(source.duration());
  SnapshotReader rewind_reader(image);
  source.LoadState(&rewind_reader);
  ASSERT_TRUE(rewind_reader.ok()) << "image failed to restore in place";
  ASSERT_TRUE(rewind_reader.AtEnd()) << "image has trailing bytes";
  source.RunUntil(source.duration());
  EXPECT_EQ(ResultBytes(source.Finish()), expected) << "rewound run diverged";

  // Fresh: clone the image onto a brand-new stack built from the config.
  DeviceSim clone(config);
  SnapshotReader clone_reader(image);
  clone.LoadState(&clone_reader);
  ASSERT_TRUE(clone_reader.ok()) << "image failed to restore onto fresh stack";
  clone.RunUntil(clone.duration());
  EXPECT_EQ(ResultBytes(clone.Finish()), expected) << "cloned run diverged";
}

TEST_P(FleetSnapshotTest, FaultFreeRunSurvivesSnapshotRoundTrip) {
  ExpectSnapshotPathsIdentical(BaseConfig(GetParam(), ""));
}

TEST_P(FleetSnapshotTest, FaultedRunSurvivesSnapshotRoundTrip) {
  ExpectSnapshotPathsIdentical(BaseConfig(GetParam(), "storm=0.3"));
}

std::string SpecToTestName(const ::testing::TestParamInfo<std::string>& info) {
  std::string name = info.param;
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, FleetSnapshotTest,
                         ::testing::ValuesIn(AllGovernorSpecs()), SpecToTestName);

// The server app exercises the snapshot paths the MPEG bundle does not:
// open-loop arrivals, the admission gate's metrics binding, and per-request
// latency histograms in the deadline monitor.
TEST(FleetSnapshotServerTest, ServerAppSurvivesSnapshotRoundTrip) {
  ExperimentConfig config;
  config.app = "server";
  config.governor = "pid-vs";
  config.seed = 11;
  config.duration = SimTime::Seconds(2);
  config.server.emplace();
  config.server->rate_rps = 150.0;
  config.server->duration = SimTime::Seconds(2);
  config.itsy.battery = BatteryParams{};
  ExpectSnapshotPathsIdentical(config);
}

}  // namespace
}  // namespace dcs
