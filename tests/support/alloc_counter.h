// Per-thread heap-allocation counting for the hotpath suite.
//
// Linking tests/support/alloc_counter.cc into a test binary replaces the
// global operator new/delete family with counting forwarders to malloc/free.
// The counters are thread-local, so a test measures exactly the allocations
// its own thread performs — sweep workers, gtest internals on other threads,
// and background machinery never pollute a measurement.
//
// Under ASan/TSan/MSan the sanitizer runtime owns the allocator and
// intercepting operator new would fight it, so the overrides compile away;
// tests must check AllocCounterAvailable() and GTEST_SKIP() when false.

#ifndef TESTS_SUPPORT_ALLOC_COUNTER_H_
#define TESTS_SUPPORT_ALLOC_COUNTER_H_

#include <cstdint>

namespace dcs::testing {

// True when the counting operator new/delete overrides are compiled in
// (i.e. not building under a sanitizer).
bool AllocCounterAvailable();

// Number of heap allocations (all operator new forms) performed by the
// calling thread since it started.  Monotone; measure deltas.
std::uint64_t ThreadAllocCount();

// Number of heap deallocations performed by the calling thread.
std::uint64_t ThreadDeallocCount();

}  // namespace dcs::testing

#endif  // TESTS_SUPPORT_ALLOC_COUNTER_H_
