#include "tests/support/alloc_counter.h"

#include <cstdlib>
#include <new>

// Sanitizers interpose on malloc/free and operator new themselves; replacing
// the global operators underneath them corrupts their bookkeeping.  Detect
// every spelling (GCC defines __SANITIZE_*, Clang exposes __has_feature).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DCS_ALLOC_COUNTER_DISABLED 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DCS_ALLOC_COUNTER_DISABLED 1
#endif
#endif

namespace {

// Plain PODs with constant initialization: safe to touch from the very first
// allocation, before any dynamic initializer has run.
thread_local std::uint64_t tl_allocs = 0;
thread_local std::uint64_t tl_deallocs = 0;

}  // namespace

namespace dcs::testing {

bool AllocCounterAvailable() {
#if defined(DCS_ALLOC_COUNTER_DISABLED)
  return false;
#else
  return true;
#endif
}

std::uint64_t ThreadAllocCount() { return tl_allocs; }
std::uint64_t ThreadDeallocCount() { return tl_deallocs; }

}  // namespace dcs::testing

#if !defined(DCS_ALLOC_COUNTER_DISABLED)

namespace {

void* CountedAlloc(std::size_t size) {
  ++tl_allocs;
  return std::malloc(size == 0 ? 1 : size);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  ++tl_allocs;
  if (align < sizeof(void*)) {
    align = sizeof(void*);
  }
  void* p = nullptr;
  if (posix_memalign(&p, align, size == 0 ? align : size) != 0) {
    return nullptr;
  }
  return p;
}

void CountedFree(void* p) noexcept {
  if (p != nullptr) {
    ++tl_deallocs;
    std::free(p);
  }
}

}  // namespace

// Throwing forms.
void* operator new(std::size_t size) {
  void* p = CountedAlloc(size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  void* p = CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

// Nothrow forms.
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return CountedAlloc(size);
}
void* operator new(std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align, const std::nothrow_t&) noexcept {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

// Deletes (plain, sized, aligned, nothrow) — all funnel into free.
void operator delete(void* p) noexcept { CountedFree(p); }
void operator delete[](void* p) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { CountedFree(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { CountedFree(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { CountedFree(p); }
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  CountedFree(p);
}
void operator delete[](void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  CountedFree(p);
}

#endif  // !DCS_ALLOC_COUNTER_DISABLED
