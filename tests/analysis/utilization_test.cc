#include "src/analysis/utilization.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/analysis/filters.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

TraceSeries MakeSeries(const std::vector<double>& values) {
  TraceSeries s("test");
  for (std::size_t i = 0; i < values.size(); ++i) {
    s.Append(SimTime::Millis(10 * static_cast<std::int64_t>(i)), values[i]);
  }
  return s;
}

TEST(MovingAverageSeriesTest, SmoothsPerQuantumSamples) {
  const TraceSeries s = MakeSeries({1.0, 0.0, 1.0, 0.0, 1.0, 0.0});
  const TraceSeries out = MovingAverageSeries(s, 2);
  ASSERT_EQ(out.size(), s.size());
  EXPECT_DOUBLE_EQ(out.points()[0].value, 1.0);
  for (std::size_t i = 1; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out.points()[i].value, 0.5);
  }
}

TEST(MovingAverageSeriesTest, TimestampsPreserved) {
  const TraceSeries s = MakeSeries({0.2, 0.4, 0.6});
  const TraceSeries out = MovingAverageSeries(s, 3);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(out.points()[i].at, s.points()[i].at);
  }
}

TEST(MovingAverageSeriesTest, Window10TurnsQuantaIntoHundredMsView) {
  // Figure 3 -> Figure 4: 10 ms samples smoothed with a 10-wide window.
  std::vector<double> wave = RectangleWaveSamples(9, 1, 100);
  const TraceSeries s = MakeSeries(wave);
  const TraceSeries out = MovingAverageSeries(s, 10);
  // Steady state: each window holds one full period -> exactly 0.9.
  for (std::size_t i = 20; i < out.size(); ++i) {
    EXPECT_NEAR(out.points()[i].value, 0.9, 1e-12);
  }
}

TEST(SeriesValuesTest, ExtractsValues) {
  const TraceSeries s = MakeSeries({0.1, 0.2, 0.3});
  EXPECT_EQ(SeriesValues(s), (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(AnalyzeOscillationTest, ConstantSignalHasNoAmplitude) {
  const std::vector<double> flat(100, 0.5);
  const OscillationStats stats = AnalyzeOscillation(flat);
  EXPECT_DOUBLE_EQ(stats.amplitude, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean, 0.5);
  EXPECT_EQ(stats.period, 0);
}

TEST(AnalyzeOscillationTest, DetectsSineWavePeriod) {
  std::vector<double> sine;
  for (int i = 0; i < 400; ++i) {
    sine.push_back(std::sin(2.0 * M_PI * i / 20.0));
  }
  const OscillationStats stats = AnalyzeOscillation(sine);
  EXPECT_NEAR(stats.amplitude, 2.0, 0.01);
  EXPECT_EQ(stats.period, 20);
}

TEST(AnalyzeOscillationTest, FilteredRectangleWaveOscillatesAtWavePeriod) {
  // Figure 7: AVG3 on a 9-busy/1-idle wave keeps the 10-sample period.
  const auto wave = RectangleWaveSamples(9, 1, 800);
  const auto filtered = AvgNFilter(wave, 3);
  const OscillationStats stats = AnalyzeOscillation(filtered, 100);
  EXPECT_EQ(stats.period % 10, 0);
  EXPECT_GT(stats.amplitude, 0.15);  // "a surprisingly wide range"
  EXPECT_NEAR(stats.mean, 0.9, 0.02);
}

TEST(AnalyzeOscillationTest, SkipIgnoresWarmup) {
  std::vector<double> signal(50, 0.0);
  signal.insert(signal.end(), 50, 1.0);
  const OscillationStats all = AnalyzeOscillation(signal, 0);
  const OscillationStats tail = AnalyzeOscillation(signal, 50);
  EXPECT_DOUBLE_EQ(all.amplitude, 1.0);
  EXPECT_DOUBLE_EQ(tail.amplitude, 0.0);
}

TEST(AnalyzeOscillationTest, EmptyAfterSkipIsZeroed) {
  const std::vector<double> tiny = {1.0};
  const OscillationStats stats = AnalyzeOscillation(tiny, 5);
  EXPECT_EQ(stats.amplitude, 0.0);
}

TEST(SettlesWithinTest, DetectsSettling) {
  std::vector<double> signal;
  for (int i = 0; i < 50; ++i) {
    signal.push_back(i % 2 == 0 ? 0.2 : 0.9);  // oscillating prefix
  }
  signal.insert(signal.end(), 50, 0.6);  // settled tail
  EXPECT_TRUE(SettlesWithin(signal, 0.5, 0.7, 40));
  EXPECT_FALSE(SettlesWithin(signal, 0.5, 0.7, 60));  // tail reaches prefix
}

TEST(SettlesWithinTest, EdgeCases) {
  const std::vector<double> signal = {0.5, 0.5};
  EXPECT_FALSE(SettlesWithin(signal, 0.0, 1.0, 0));   // zero tail: vacuous -> false
  EXPECT_FALSE(SettlesWithin(signal, 0.0, 1.0, 10));  // tail longer than signal
  EXPECT_TRUE(SettlesWithin(signal, 0.4, 0.6, 2));
}

TEST(SettlesWithinTest, AvgNOnRectangleWaveNeverSettlesInHysteresisBand) {
  // The integration of section 5.3's claim with Pering's 50/70 thresholds:
  // AVG_N output keeps leaving the [0.5, 0.7] band.  (At a 0.9 duty cycle
  // the mean itself is outside the band, and even a band centred on the
  // mean fails for small N.)
  const auto wave = RectangleWaveSamples(9, 1, 2000);
  for (int n = 0; n <= 10; ++n) {
    const auto filtered = AvgNFilter(wave, n);
    EXPECT_FALSE(SettlesWithin(filtered, 0.5, 0.7, 500)) << "AVG" << n;
  }
  const auto avg3 = AvgNFilter(wave, 3);
  EXPECT_FALSE(SettlesWithin(avg3, 0.85, 0.95, 500));
}

}  // namespace
}  // namespace dcs
