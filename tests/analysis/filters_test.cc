#include "src/analysis/filters.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/core/predictor.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

TEST(AvgNFilterTest, MatchesPredictorExactly) {
  const auto wave = RectangleWaveSamples(9, 1, 100);
  const auto filtered = AvgNFilter(wave, 3);
  AvgNPredictor predictor(3);
  ASSERT_EQ(filtered.size(), wave.size());
  for (std::size_t i = 0; i < wave.size(); ++i) {
    EXPECT_DOUBLE_EQ(filtered[i], predictor.Update(wave[i]));
  }
}

TEST(AvgNFilterTest, InitialConditionRespected) {
  const std::vector<double> input = {0.0};
  const auto filtered = AvgNFilter(input, 9, /*initial=*/1.0);
  EXPECT_DOUBLE_EQ(filtered[0], 0.9);
}

TEST(AvgNFilterTest, N0IsIdentity) {
  const std::vector<double> input = {0.2, 0.8, 0.5};
  const auto filtered = AvgNFilter(input, 0);
  EXPECT_EQ(filtered, input);
}

TEST(AvgNFilterTest, EquivalentToKernelConvolution) {
  // The recursive form equals convolution with the decaying exponential
  // kernel w_k = (1/(N+1)) (N/(N+1))^k (for zero initial condition).
  const auto wave = RectangleWaveSamples(5, 3, 64);
  const int n = 4;
  const auto recursive = AvgNFilter(wave, n);
  const auto kernel = AvgNKernel(n, 64);
  const auto convolved = ConvolveCausal(wave, kernel);
  ASSERT_EQ(recursive.size(), convolved.size());
  for (std::size_t i = 0; i < recursive.size(); ++i) {
    EXPECT_NEAR(recursive[i], convolved[i], 1e-9) << i;
  }
}

TEST(AvgNKernelTest, WeightsSumTowardOne) {
  const auto kernel = AvgNKernel(9, 400);
  const double sum = std::accumulate(kernel.begin(), kernel.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AvgNKernelTest, GeometricDecay) {
  const auto kernel = AvgNKernel(4, 10);
  for (std::size_t k = 1; k < kernel.size(); ++k) {
    EXPECT_NEAR(kernel[k] / kernel[k - 1], 0.8, 1e-12);
  }
  EXPECT_DOUBLE_EQ(kernel[0], 0.2);
}

TEST(SlidingAverageFilterTest, WarmupUsesAvailableSamples) {
  const std::vector<double> input = {1.0, 0.0, 1.0, 0.0};
  const auto out = SlidingAverageFilter(input, 4);
  EXPECT_DOUBLE_EQ(out[0], 1.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_NEAR(out[2], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[3], 0.5);
}

TEST(SlidingAverageFilterTest, SteadyStateMean) {
  const auto wave = RectangleWaveSamples(9, 1, 200);
  const auto out = SlidingAverageFilter(wave, 10);
  // After warm-up every window covers one full period: exactly 0.9.
  for (std::size_t i = 20; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], 0.9, 1e-12);
  }
}

TEST(ConvolveCausalTest, IdentityKernel) {
  const std::vector<double> signal = {1.0, 2.0, 3.0};
  const std::vector<double> kernel = {1.0};
  EXPECT_EQ(ConvolveCausal(signal, kernel), signal);
}

TEST(ConvolveCausalTest, DelayKernel) {
  const std::vector<double> signal = {1.0, 2.0, 3.0};
  const std::vector<double> kernel = {0.0, 1.0};
  const auto out = ConvolveCausal(signal, kernel);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_DOUBLE_EQ(out[2], 2.0);
}

TEST(ConvolveCausalTest, LinearInSignal) {
  const auto wave = RectangleWaveSamples(3, 2, 32);
  std::vector<double> doubled(wave);
  for (double& x : doubled) {
    x *= 2.0;
  }
  const auto kernel = AvgNKernel(5, 32);
  const auto a = ConvolveCausal(wave, kernel);
  const auto b = ConvolveCausal(doubled, kernel);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(b[i], 2.0 * a[i], 1e-12);
  }
}

TEST(DecayingExponentialTest, Shape) {
  const auto exp_samples = DecayingExponential(0.5, 5);
  ASSERT_EQ(exp_samples.size(), 5u);
  EXPECT_DOUBLE_EQ(exp_samples[0], 1.0);
  for (std::size_t i = 1; i < exp_samples.size(); ++i) {
    EXPECT_NEAR(exp_samples[i] / exp_samples[i - 1], std::exp(-0.5), 1e-12);
  }
}

// Property sweep over N: the filter is a contraction into [min, max] of the
// input and lags behind step changes.
class AvgNPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AvgNPropertyTest, OutputWithinInputEnvelope) {
  const int n = GetParam();
  const auto wave = RectangleWaveSamples(7, 3, 300);
  const auto out = AvgNFilter(wave, n);
  for (const double w : out) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST_P(AvgNPropertyTest, NeverSettlesOnPeriodicInput) {
  // Section 5.3's theorem-in-practice: for any N, the filtered rectangle
  // wave keeps oscillating (amplitude bounded away from zero).
  const int n = GetParam();
  const auto wave = RectangleWaveSamples(9, 1, 2000);
  const auto out = AvgNFilter(wave, n);
  double lo = 1.0;
  double hi = 0.0;
  for (std::size_t i = 1000; i < out.size(); ++i) {
    lo = std::min(lo, out[i]);
    hi = std::max(hi, out[i]);
  }
  EXPECT_GT(hi - lo, 0.01) << "AVG" << n << " settled, contradicting the paper";
}

INSTANTIATE_TEST_SUITE_P(Sweep, AvgNPropertyTest, ::testing::Range(0, 11));

}  // namespace
}  // namespace dcs
