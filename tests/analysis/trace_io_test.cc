#include "src/analysis/trace_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <vector>

#include "src/workload/synthetic.h"

namespace dcs {
namespace {

TEST(TraceIoTest, RoundTripThroughStream) {
  const std::vector<double> trace = {0.0, 0.25, 0.5, 1.0};
  std::stringstream ss;
  WriteUtilizationTrace(ss, trace, "test trace");
  const std::vector<double> loaded = ReadUtilizationTrace(ss);
  EXPECT_EQ(loaded, trace);
}

TEST(TraceIoTest, CommentsAndBlanksSkipped) {
  std::stringstream ss("# header\n0.5\n\n# mid comment\n0.75 # trailing\n");
  const std::vector<double> loaded = ReadUtilizationTrace(ss);
  EXPECT_EQ(loaded, (std::vector<double>{0.5, 0.75}));
}

TEST(TraceIoTest, MultipleValuesPerLine) {
  std::stringstream ss("0.1 0.2 0.3\n0.4\n");
  EXPECT_EQ(ReadUtilizationTrace(ss).size(), 4u);
}

TEST(TraceIoTest, OutOfRangeValuesClamped) {
  std::stringstream ss("-0.5\n1.7\n");
  const std::vector<double> loaded = ReadUtilizationTrace(ss);
  EXPECT_EQ(loaded, (std::vector<double>{0.0, 1.0}));
}

TEST(TraceIoTest, MalformedLinesSkipped) {
  std::stringstream ss("0.5\nnot-a-number\n0.25\n");
  const std::vector<double> loaded = ReadUtilizationTrace(ss);
  // Parsing stops at the malformed token on that line but other lines load.
  ASSERT_GE(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.front(), 0.5);
  EXPECT_DOUBLE_EQ(loaded.back(), 0.25);
}

TEST(TraceIoTest, FileRoundTrip) {
  const auto wave = RectangleWaveSamples(9, 1, 100);
  const std::string path =
      (std::filesystem::temp_directory_path() / "dcs_trace_io_test.txt").string();
  ASSERT_TRUE(SaveUtilizationTrace(path, wave, "rect wave"));
  const std::vector<double> loaded = LoadUtilizationTrace(path);
  EXPECT_EQ(loaded, wave);
  std::filesystem::remove(path);
}

TEST(TraceIoTest, MissingFileLoadsEmpty) {
  EXPECT_TRUE(LoadUtilizationTrace("/nonexistent/path/trace.txt").empty());
}

TEST(TraceIoTest, UnwritablePathFails) {
  const auto wave = RectangleWaveSamples(2, 1, 5);
  EXPECT_FALSE(SaveUtilizationTrace("/nonexistent/dir/trace.txt", wave));
}

}  // namespace
}  // namespace dcs
