#include "src/analysis/step_response.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/govil_policies.h"

namespace dcs {
namespace {

TEST(StepResponseTest, PastRisesAndFallsInOneQuantum) {
  PastPredictor past;
  EXPECT_EQ(RiseTimeQuanta(past, 0.7), 1);
  EXPECT_EQ(FallTimeQuanta(past, 0.5, /*prime_quanta=*/10), 1);
}

TEST(StepResponseTest, Avg9RiseTimeMatchesTable1) {
  // "Starting from an idle state, the clock will not scale to 206MHz for
  // 120 ms (12 quanta)."
  AvgNPredictor avg9(9);
  EXPECT_EQ(RiseTimeQuanta(avg9, 0.7), 12);
}

TEST(StepResponseTest, Avg9FallTimeMatchesTable1) {
  // Table 1's idle tail: primed with exactly its 15 active quanta
  // (W = 0.7941), W sinks below 50% on the 5th idle quantum
  // (7941 -> 7147 -> 6432 -> 5789 -> 5210 -> 4689).
  AvgNPredictor avg9(9);
  EXPECT_EQ(FallTimeQuanta(avg9, 0.5, /*prime_quanta=*/15), 5);
}

TEST(StepResponseTest, Avg9FallsSlowerFromFullSaturation) {
  // From W ~= 1.0 the same crossing takes 7 idle quanta — history depth
  // matters, which is exactly why tuned thresholds do not transfer.
  AvgNPredictor avg9(9);
  EXPECT_EQ(FallTimeQuanta(avg9, 0.5, /*prime_quanta=*/100), 7);
}

TEST(StepResponseTest, RiseTimeGrowsWithN) {
  int previous = 0;
  for (int n = 0; n <= 10; ++n) {
    AvgNPredictor avg(n);
    const int rise = RiseTimeQuanta(avg, 0.7);
    EXPECT_GE(rise, previous) << "N=" << n;
    previous = rise;
  }
  EXPECT_GT(previous, 10);  // AVG10 is slower than a full 100 ms
}

TEST(StepResponseTest, WindowRiseTimeIsCeilOfThresholdTimesWindow) {
  // A W-wide window crosses threshold t after ceil(t*W) saturated quanta
  // when primed with idle history.
  for (int window : {4, 10, 20}) {
    SlidingWindowPredictor win(window);
    const int rise = RiseTimeQuanta(win, 0.7, /*prime_quanta=*/window);
    EXPECT_EQ(rise, static_cast<int>(std::ceil(0.7 * window)) +
                        (0.7 * window == std::floor(0.7 * window) ? 1 : 0))
        << "window " << window;
  }
}

TEST(StepResponseTest, LongShortRisesFasterThanPureLongWindow) {
  LongShortPredictor ls(3, 12);
  SlidingWindowPredictor win(12);
  EXPECT_LT(RiseTimeQuanta(ls, 0.7, 12), RiseTimeQuanta(win, 0.7, 12));
}

TEST(StepResponseTest, NeverCrossingReturnsLimit) {
  // A threshold above 1 can never be crossed.
  PastPredictor past;
  EXPECT_EQ(RiseTimeQuanta(past, 1.5, 0, 50), 50);
}

TEST(StepResponseTest, ResetsPredictorFirst) {
  AvgNPredictor avg(9);
  for (int i = 0; i < 100; ++i) {
    avg.Update(1.0);  // saturate
  }
  // RiseTimeQuanta resets, so the rise time is the cold-start one.
  EXPECT_EQ(RiseTimeQuanta(avg, 0.7), 12);
}

}  // namespace
}  // namespace dcs
