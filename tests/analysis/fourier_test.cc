#include "src/analysis/fourier.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/analysis/filters.h"
#include "src/sim/rng.h"
#include "src/workload/synthetic.h"

namespace dcs {
namespace {

TEST(DftTest, ConstantSignalIsDcOnly) {
  const std::vector<double> input(8, 1.0);
  const auto spectrum = Dft(input);
  EXPECT_NEAR(std::abs(spectrum[0]), 8.0, 1e-9);
  for (std::size_t k = 1; k < spectrum.size(); ++k) {
    EXPECT_NEAR(std::abs(spectrum[k]), 0.0, 1e-9);
  }
}

TEST(DftTest, PureToneLandsInOneBin) {
  const std::size_t n = 32;
  std::vector<double> input(n);
  for (std::size_t t = 0; t < n; ++t) {
    input[t] = std::cos(2.0 * M_PI * 4.0 * t / n);
  }
  const auto spectrum = Dft(input);
  EXPECT_NEAR(std::abs(spectrum[4]), n / 2.0, 1e-9);
  EXPECT_NEAR(std::abs(spectrum[5]), 0.0, 1e-9);
}

TEST(FftTest, MatchesDft) {
  Rng rng(3);
  std::vector<double> input(64);
  for (double& x : input) {
    x = rng.NextDouble();
  }
  const auto fft = Fft(input);
  const auto dft = Dft(input);
  ASSERT_EQ(fft.size(), dft.size());
  for (std::size_t k = 0; k < fft.size(); ++k) {
    EXPECT_NEAR(std::abs(fft[k] - dft[k]), 0.0, 1e-9) << k;
  }
}

TEST(FftTest, RoundTripThroughInverse) {
  Rng rng(7);
  std::vector<double> input(128);
  for (double& x : input) {
    x = rng.NextDouble() * 4.0 - 2.0;
  }
  const auto spectrum = Fft(input);
  const auto back = InverseFftReal(spectrum);
  ASSERT_EQ(back.size(), input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    EXPECT_NEAR(back[i], input[i], 1e-9);
  }
}

TEST(FftTest, ParsevalEnergyConservation) {
  Rng rng(11);
  std::vector<double> input(256);
  double time_energy = 0.0;
  for (double& x : input) {
    x = rng.Gaussian(0.0, 1.0);
    time_energy += x * x;
  }
  const auto spectrum = Fft(input);
  double freq_energy = 0.0;
  for (const auto& bin : spectrum) {
    freq_energy += std::norm(bin);
  }
  EXPECT_NEAR(freq_energy / static_cast<double>(input.size()), time_energy, 1e-6);
}

TEST(NextPowerOfTwoTest, Values) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(800), 1024u);
}

TEST(DecayingExpFtTest, MatchesClosedForm) {
  // |X(w)| = 1/sqrt(w^2 + lambda^2) — the curve of Figure 6.
  EXPECT_DOUBLE_EQ(DecayingExpFtMagnitude(2.0, 0.0), 0.5);
  EXPECT_NEAR(DecayingExpFtMagnitude(3.0, 4.0), 0.2, 1e-12);
}

TEST(DecayingExpFtTest, AttenuatesButNeverEliminates) {
  // The paper's key qualitative point: higher frequencies are attenuated but
  // the magnitude never reaches zero.
  const double lambda = 1.0;
  double prev = DecayingExpFtMagnitude(lambda, 0.0);
  for (double w = 0.5; w <= 15.0; w += 0.5) {
    const double mag = DecayingExpFtMagnitude(lambda, w);
    EXPECT_LT(mag, prev);
    EXPECT_GT(mag, 0.0);
    prev = mag;
  }
}

TEST(DecayingExpFtTest, SmallerLambdaAttenuatesMore) {
  // "As lambda gets smaller the higher frequencies are attenuated to a
  // greater degree" — relative to the DC gain.
  const double w = 5.0;
  const double small_lambda = 0.5;
  const double large_lambda = 4.0;
  const double rel_small = DecayingExpFtMagnitude(small_lambda, w) /
                           DecayingExpFtMagnitude(small_lambda, 0.0);
  const double rel_large = DecayingExpFtMagnitude(large_lambda, w) /
                           DecayingExpFtMagnitude(large_lambda, 0.0);
  EXPECT_LT(rel_small, rel_large);
}

TEST(DecayingExpFtTest, DiscreteSpectrumTracksContinuousCurve) {
  // Numerically: the FFT magnitude of sampled e^{-lambda t} follows the
  // 1/sqrt(w^2+lambda^2) envelope at low frequencies.
  const double lambda = 0.3;
  const auto samples = DecayingExponential(lambda, 1024);
  const auto spectrum = MagnitudeSpectrum(samples);
  // Compare the ratio of DC to the bin at w = 2*pi*k/N for a few k.
  const double dc = spectrum[0];
  for (const std::size_t k : {4u, 8u, 16u}) {
    const double w = 2.0 * M_PI * static_cast<double>(k) / 1024.0;
    const double expected_ratio =
        DecayingExpFtMagnitude(lambda, w) / DecayingExpFtMagnitude(lambda, 0.0);
    EXPECT_NEAR(spectrum[k] / dc, expected_ratio, 0.05) << k;
  }
}

TEST(MagnitudeSpectrumTest, PadsNonPowerOfTwo) {
  const std::vector<double> input(100, 1.0);
  const auto spectrum = MagnitudeSpectrum(input);
  EXPECT_EQ(spectrum.size(), 65u);  // padded to 128 -> one-sided 0..64
}

TEST(RectangleWaveSpectrumTest, HasStrongHarmonics) {
  // "A rectangular wave has many high frequency components" (section 5.3).
  const auto wave = RectangleWaveSamples(9, 1, 1024);
  const auto spectrum = MagnitudeSpectrum(wave);
  // Fundamental at bin 1024/10 ~= 102 and harmonics at multiples.
  const std::size_t fundamental = 1024 / 10;
  double background = 0.0;
  for (std::size_t k = 5; k < fundamental - 5; ++k) {
    background = std::max(background, spectrum[k]);
  }
  EXPECT_GT(spectrum[fundamental], 3.0 * background);
  EXPECT_GT(spectrum[2 * fundamental], background);
}

}  // namespace
}  // namespace dcs
