#include "src/sim/trace_sink.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(TraceSeriesTest, AppendAndRead) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(1), 0.5);
  s.Append(SimTime::Millis(2), 0.7);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.points()[0].value, 0.5);
  EXPECT_EQ(s.points()[1].at, SimTime::Millis(2));
}

TEST(TraceSeriesTest, ValueAtSampleAndHold) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(10), 1.0);
  s.Append(SimTime::Millis(20), 2.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(5), -1.0), -1.0);  // before first
  EXPECT_EQ(s.ValueAt(SimTime::Millis(10)), 1.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(15)), 1.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(20)), 2.0);
  EXPECT_EQ(s.ValueAt(SimTime::Seconds(9)), 2.0);
}

TEST(TraceSeriesTest, MinMax) {
  TraceSeries s("test");
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
  s.Append(SimTime::Millis(1), 3.0);
  s.Append(SimTime::Millis(2), -1.0);
  s.Append(SimTime::Millis(3), 2.0);
  EXPECT_EQ(s.Min(), -1.0);
  EXPECT_EQ(s.Max(), 3.0);
}

TEST(TraceSeriesTest, TimeWeightedMeanOverWindow) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(0), 1.0);
  s.Append(SimTime::Millis(10), 3.0);
  // [0,10): 1.0, [10,20): 3.0 -> mean over [0,20) is 2.0.
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Zero(), SimTime::Millis(20)), 2.0);
  // Partial windows weight proportionally: [5,15) = 5ms@1 + 5ms@3 = 2.0.
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Millis(5), SimTime::Millis(15)), 2.0);
}

TEST(TraceSeriesTest, TimeWeightedMeanExtendsFirstValueBackwards) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(10), 4.0);
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Zero(), SimTime::Millis(20)), 4.0);
}

TEST(TraceSeriesTest, TimeWeightedMeanEmptyWindowIsZero) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(1), 5.0);
  EXPECT_EQ(s.TimeWeightedMean(SimTime::Millis(3), SimTime::Millis(3)), 0.0);
}

// The documented difference between the two read paths: before the first
// sample, ValueAt reports the caller's fallback while TimeWeightedMean
// extends the first value backwards.  A window wholly before the first
// sample therefore averages to the first value, not to the fallback/zero.
TEST(TraceSeriesTest, WindowBeforeFirstSampleAveragesToFirstValueNotFallback) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(100), 7.0);
  s.Append(SimTime::Millis(200), 9.0);
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Millis(10), SimTime::Millis(50)), 7.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(10), -1.0), -1.0);
  // Straddling windows weight the backward extension like a real segment:
  // [50,150) = 50ms@7 (extension) + 50ms@7 (sample) -> 7; [150,250) =
  // 50ms@7 + 50ms@9 -> 8.
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Millis(50), SimTime::Millis(150)), 7.0);
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Millis(150), SimTime::Millis(250)), 8.0);
}

// Brute-force cross-check of the documented semantics: integrate the
// sample-and-hold step function (first value extended backwards) on a fine
// grid and compare, for random series and random windows including ones
// starting before the first sample and ending after the last.
TEST(TraceSeriesTest, TimeWeightedMeanMatchesBruteForceIntegration) {
  Rng rng(0x7317);
  for (int trial = 0; trial < 25; ++trial) {
    TraceSeries s("test");
    SimTime at = SimTime::Micros(rng.UniformInt(100, 2'000));
    const int n = static_cast<int>(rng.UniformInt(1, 12));
    for (int i = 0; i < n; ++i) {
      s.Append(at, rng.Uniform(-2.0, 2.0));
      // Occasionally repeat a timestamp: equal-time samples are legal.
      at += SimTime::Micros(rng.NextDouble() < 0.2 ? 0 : rng.UniformInt(1, 3'000));
    }
    const std::int64_t last_us = s.points().back().at.micros();
    const SimTime begin = SimTime::Micros(rng.UniformInt(0, last_us + 1'000));
    const SimTime end = begin + SimTime::Micros(rng.UniformInt(1, last_us + 2'000));

    // Riemann sum at 1 us steps of the held value; before the first sample
    // the held value is the first sample's (per the header contract).
    double sum = 0.0;
    std::int64_t steps = 0;
    for (SimTime t = begin; t < end; t += SimTime::Micros(1)) {
      sum += s.ValueAt(t, s.points().front().value);
      ++steps;
    }
    const double brute = sum / static_cast<double>(steps);
    EXPECT_NEAR(s.TimeWeightedMean(begin, end), brute, 1e-9) << "trial " << trial;
  }
}

TEST(TraceSeriesTest, RebucketAveragesPerInterval) {
  TraceSeries s("test");
  // Two samples in bucket 0, one in bucket 2 (bucket 1 empty).
  s.Append(SimTime::Millis(1), 1.0);
  s.Append(SimTime::Millis(9), 3.0);
  s.Append(SimTime::Millis(25), 10.0);
  const TraceSeries out = s.Rebucket(SimTime::Millis(10));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out.points()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(out.points()[1].value, 2.0);  // empty bucket repeats
  EXPECT_DOUBLE_EQ(out.points()[2].value, 10.0);
}

TEST(TraceSinkTest, SeriesCreatedOnFirstUse) {
  TraceSink sink;
  EXPECT_EQ(sink.Find("util"), nullptr);
  sink.Series("util").Append(SimTime::Millis(1), 0.5);
  ASSERT_NE(sink.Find("util"), nullptr);
  EXPECT_EQ(sink.Find("util")->size(), 1u);
}

TEST(TraceSinkTest, NamesSorted) {
  TraceSink sink;
  sink.Series("zeta");
  sink.Series("alpha");
  const auto names = sink.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(TraceSinkTest, WriteCsv) {
  TraceSink sink;
  sink.Series("p").Append(SimTime::Micros(100), 1.5);
  sink.Series("p").Append(SimTime::Micros(300), 2.5);
  std::ostringstream os;
  sink.WriteCsv("p", os);
  EXPECT_EQ(os.str(), "time_us,value\n100,1.5\n300,2.5\n");
}

TEST(TraceSinkTest, WriteCsvUnknownSeriesHeaderOnly) {
  TraceSink sink;
  std::ostringstream os;
  sink.WriteCsv("missing", os);
  EXPECT_EQ(os.str(), "time_us,value\n");
}

}  // namespace
}  // namespace dcs
