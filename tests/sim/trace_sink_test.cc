#include "src/sim/trace_sink.h"

#include <gtest/gtest.h>

#include <sstream>

namespace dcs {
namespace {

TEST(TraceSeriesTest, AppendAndRead) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(1), 0.5);
  s.Append(SimTime::Millis(2), 0.7);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.points()[0].value, 0.5);
  EXPECT_EQ(s.points()[1].at, SimTime::Millis(2));
}

TEST(TraceSeriesTest, ValueAtSampleAndHold) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(10), 1.0);
  s.Append(SimTime::Millis(20), 2.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(5), -1.0), -1.0);  // before first
  EXPECT_EQ(s.ValueAt(SimTime::Millis(10)), 1.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(15)), 1.0);
  EXPECT_EQ(s.ValueAt(SimTime::Millis(20)), 2.0);
  EXPECT_EQ(s.ValueAt(SimTime::Seconds(9)), 2.0);
}

TEST(TraceSeriesTest, MinMax) {
  TraceSeries s("test");
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Max(), 0.0);
  s.Append(SimTime::Millis(1), 3.0);
  s.Append(SimTime::Millis(2), -1.0);
  s.Append(SimTime::Millis(3), 2.0);
  EXPECT_EQ(s.Min(), -1.0);
  EXPECT_EQ(s.Max(), 3.0);
}

TEST(TraceSeriesTest, TimeWeightedMeanOverWindow) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(0), 1.0);
  s.Append(SimTime::Millis(10), 3.0);
  // [0,10): 1.0, [10,20): 3.0 -> mean over [0,20) is 2.0.
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Zero(), SimTime::Millis(20)), 2.0);
  // Partial windows weight proportionally: [5,15) = 5ms@1 + 5ms@3 = 2.0.
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Millis(5), SimTime::Millis(15)), 2.0);
}

TEST(TraceSeriesTest, TimeWeightedMeanExtendsFirstValueBackwards) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(10), 4.0);
  EXPECT_DOUBLE_EQ(s.TimeWeightedMean(SimTime::Zero(), SimTime::Millis(20)), 4.0);
}

TEST(TraceSeriesTest, TimeWeightedMeanEmptyWindowIsZero) {
  TraceSeries s("test");
  s.Append(SimTime::Millis(1), 5.0);
  EXPECT_EQ(s.TimeWeightedMean(SimTime::Millis(3), SimTime::Millis(3)), 0.0);
}

TEST(TraceSeriesTest, RebucketAveragesPerInterval) {
  TraceSeries s("test");
  // Two samples in bucket 0, one in bucket 2 (bucket 1 empty).
  s.Append(SimTime::Millis(1), 1.0);
  s.Append(SimTime::Millis(9), 3.0);
  s.Append(SimTime::Millis(25), 10.0);
  const TraceSeries out = s.Rebucket(SimTime::Millis(10));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out.points()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(out.points()[1].value, 2.0);  // empty bucket repeats
  EXPECT_DOUBLE_EQ(out.points()[2].value, 10.0);
}

TEST(TraceSinkTest, SeriesCreatedOnFirstUse) {
  TraceSink sink;
  EXPECT_EQ(sink.Find("util"), nullptr);
  sink.Series("util").Append(SimTime::Millis(1), 0.5);
  ASSERT_NE(sink.Find("util"), nullptr);
  EXPECT_EQ(sink.Find("util")->size(), 1u);
}

TEST(TraceSinkTest, NamesSorted) {
  TraceSink sink;
  sink.Series("zeta");
  sink.Series("alpha");
  const auto names = sink.Names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

TEST(TraceSinkTest, WriteCsv) {
  TraceSink sink;
  sink.Series("p").Append(SimTime::Micros(100), 1.5);
  sink.Series("p").Append(SimTime::Micros(300), 2.5);
  std::ostringstream os;
  sink.WriteCsv("p", os);
  EXPECT_EQ(os.str(), "time_us,value\n100,1.5\n300,2.5\n");
}

TEST(TraceSinkTest, WriteCsvUnknownSeriesHeaderOnly) {
  TraceSink sink;
  std::ostringstream os;
  sink.WriteCsv("missing", os);
  EXPECT_EQ(os.str(), "time_us,value\n");
}

}  // namespace
}  // namespace dcs
