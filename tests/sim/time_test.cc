#include "src/sim/time.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(SimTimeTest, DefaultIsZero) {
  SimTime t;
  EXPECT_EQ(t.nanos(), 0);
  EXPECT_TRUE(t.IsZero());
  EXPECT_FALSE(t.IsNegative());
}

TEST(SimTimeTest, NamedConstructorsScaleCorrectly) {
  EXPECT_EQ(SimTime::Nanos(7).nanos(), 7);
  EXPECT_EQ(SimTime::Micros(3).nanos(), 3000);
  EXPECT_EQ(SimTime::Millis(2).nanos(), 2000000);
  EXPECT_EQ(SimTime::Seconds(1).nanos(), 1000000000);
}

TEST(SimTimeTest, FromSecondsFRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::FromSecondsF(1e-9).nanos(), 1);
  EXPECT_EQ(SimTime::FromSecondsF(1.4e-9).nanos(), 1);
  EXPECT_EQ(SimTime::FromSecondsF(1.6e-9).nanos(), 2);
  EXPECT_EQ(SimTime::FromSecondsF(-1.6e-9).nanos(), -2);
}

TEST(SimTimeTest, FromMicrosF) {
  EXPECT_EQ(SimTime::FromMicrosF(200.0).nanos(), 200000);
  EXPECT_EQ(SimTime::FromMicrosF(0.5).nanos(), 500);
}

TEST(SimTimeTest, ConversionAccessors) {
  const SimTime t = SimTime::Millis(1500);
  EXPECT_EQ(t.micros(), 1500000);
  EXPECT_EQ(t.millis(), 1500);
  EXPECT_DOUBLE_EQ(t.ToSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(t.ToMicrosF(), 1.5e6);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::Millis(10);
  const SimTime b = SimTime::Millis(4);
  EXPECT_EQ((a + b).millis(), 14);
  EXPECT_EQ((a - b).millis(), 6);
  EXPECT_EQ((a * 3).millis(), 30);
  EXPECT_EQ((3 * a).millis(), 30);
  EXPECT_EQ((a / 2).millis(), 5);
  EXPECT_EQ(a / b, 2);
  EXPECT_EQ((a % b).millis(), 2);
}

TEST(SimTimeTest, CompoundAssignment) {
  SimTime t = SimTime::Millis(1);
  t += SimTime::Millis(2);
  EXPECT_EQ(t.millis(), 3);
  t -= SimTime::Millis(1);
  EXPECT_EQ(t.millis(), 2);
}

TEST(SimTimeTest, Ordering) {
  EXPECT_LT(SimTime::Micros(1), SimTime::Micros(2));
  EXPECT_LE(SimTime::Micros(2), SimTime::Micros(2));
  EXPECT_GT(SimTime::Millis(1), SimTime::Micros(999));
  EXPECT_EQ(SimTime::Seconds(1), SimTime::Millis(1000));
}

TEST(SimTimeTest, MaxIsLargerThanAnyExperimentHorizon) {
  EXPECT_GT(SimTime::Max(), SimTime::Seconds(1000000));
}

TEST(SimTimeTest, ToStringPicksUnits) {
  EXPECT_EQ(SimTime::Seconds(3).ToString(), "3.000s");
  EXPECT_EQ(SimTime::Millis(12).ToString(), "12.000ms");
  EXPECT_EQ(SimTime::Micros(200).ToString(), "200.000us");
  EXPECT_EQ(SimTime::Nanos(5).ToString(), "5ns");
}

TEST(SimTimeTest, NegativeDurationsRender) {
  EXPECT_EQ((SimTime::Zero() - SimTime::Seconds(2)).ToString(), "-2.000s");
  EXPECT_TRUE((SimTime::Zero() - SimTime::Nanos(1)).IsNegative());
}

}  // namespace
}  // namespace dcs
