#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace dcs {
namespace {

TEST(SimulatorTest, TimeStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), SimTime::Zero());
}

TEST(SimulatorTest, RunAdvancesTimeToEventInstants) {
  Simulator sim;
  std::vector<std::int64_t> seen;
  sim.At(SimTime::Millis(10), [&] { seen.push_back(sim.Now().millis()); });
  sim.At(SimTime::Millis(5), [&] { seen.push_back(sim.Now().millis()); });
  sim.Run();
  EXPECT_EQ(seen, (std::vector<std::int64_t>{5, 10}));
  EXPECT_EQ(sim.Now(), SimTime::Millis(10));
}

TEST(SimulatorTest, AfterSchedulesRelativeToNow) {
  Simulator sim;
  SimTime fired;
  sim.At(SimTime::Millis(3), [&] {
    sim.After(SimTime::Millis(4), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, SimTime::Millis(7));
}

TEST(SimulatorTest, SchedulingInThePastFiresAtNow) {
  Simulator sim;
  SimTime fired;
  sim.At(SimTime::Millis(10), [&] {
    sim.At(SimTime::Millis(2), [&] { fired = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fired, SimTime::Millis(10));
}

TEST(SimulatorTest, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(5), [&] { ++fired; });
  sim.At(SimTime::Millis(15), [&] { ++fired; });
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Millis(10));
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, RunUntilIncludesEventsExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.At(SimTime::Millis(10), [&] { fired = true; });
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_TRUE(fired);
}

TEST(SimulatorTest, StepExecutesExactlyOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(1), [&] { ++fired; });
  sim.At(SimTime::Millis(2), [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.At(SimTime::Millis(1), [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulatorTest, RequestStopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(1), [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.At(SimTime::Millis(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

TEST(SimulatorTest, StopBeforeRunIsStickyUntilObserved) {
  // Regression: Run() used to clear stop_requested_ on entry, silently
  // losing a Stop() issued before the loop started.
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(1), [&] { ++fired; });
  sim.RequestStop();
  EXPECT_TRUE(sim.StopRequested());
  sim.Run();
  EXPECT_EQ(fired, 0);  // the pending stop halted the run before any event
  EXPECT_FALSE(sim.StopRequested());  // ...and was consumed by it
  sim.Run();
  EXPECT_EQ(fired, 1);  // the next run proceeds normally
}

TEST(SimulatorTest, StopBeforeRunUntilIsStickyAndHoldsClock) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(5), [&] { ++fired; });
  sim.RequestStop();
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(sim.Now(), SimTime::Zero());  // a stopped run does not jump the clock
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), SimTime::Millis(10));
}

TEST(SimulatorTest, StopThatEndedARunDoesNotLeakIntoTheNext) {
  Simulator sim;
  int fired = 0;
  sim.At(SimTime::Millis(1), [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.At(SimTime::Millis(2), [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(sim.StopRequested());
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) {
    sim.At(SimTime::Millis(i), [] {});
  }
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(SimulatorTest, CascadingEventsRunToCompletion) {
  Simulator sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      sim.After(SimTime::Micros(1), chain);
    }
  };
  sim.After(SimTime::Micros(1), chain);
  sim.Run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.Now(), SimTime::Micros(100));
}

TEST(SimulatorTest, RunUntilWithEmptyQueueJustAdvancesTime) {
  Simulator sim;
  sim.RunUntil(SimTime::Seconds(5));
  EXPECT_EQ(sim.Now(), SimTime::Seconds(5));
}

}  // namespace
}  // namespace dcs
