#include "src/sim/logger.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

class LoggerTest : public ::testing::Test {
 protected:
  void TearDown() override { Logger::SetLevel(LogLevel::kNone); }
};

TEST_F(LoggerTest, DefaultLevelIsNone) { EXPECT_EQ(Logger::Level(), LogLevel::kNone); }

TEST_F(LoggerTest, SetLevelRoundTrips) {
  Logger::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(Logger::Level(), LogLevel::kDebug);
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::Level(), LogLevel::kError);
}

TEST_F(LoggerTest, FilteredMessagesAreCheap) {
  // With logging off, Log() must be callable from hot paths without crashing
  // regardless of format arguments.
  Logger::SetLevel(LogLevel::kNone);
  for (int i = 0; i < 1000; ++i) {
    DCS_LOG_DEBUG("quantum %d utilization %f", i, 0.5);
  }
  SUCCEED();
}

TEST_F(LoggerTest, EnabledMessagesDoNotCrash) {
  // Output goes to stderr; we only verify the formatting path executes for
  // every level and argument mix.
  Logger::SetLevel(LogLevel::kDebug);
  DCS_LOG_ERROR("error %s %d", "text", 1);
  DCS_LOG_INFO("info %f", 2.5);
  DCS_LOG_DEBUG("debug");
  SUCCEED();
}

TEST_F(LoggerTest, LevelOrderingFilters) {
  Logger::SetLevel(LogLevel::kError);
  // Info and debug are above the error level numerically and must be
  // dropped without evaluating the stream (no way to observe directly here
  // beyond not crashing, but the ordering contract matters to callers).
  EXPECT_LT(static_cast<int>(LogLevel::kError), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kDebug));
}

}  // namespace
}  // namespace dcs
