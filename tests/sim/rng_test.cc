#include "src/sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cmath>
#include <vector>

namespace dcs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedIsWellMixed) {
  Rng rng(0);
  // splitmix64 seeding means even seed 0 should not produce degenerate output.
  EXPECT_NE(rng.Next(), 0u);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusively) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.UniformInt(0, 9);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 9);
    saw_lo |= (x == 0);
    saw_hi |= (x == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(42, 42), 42);
  }
}

TEST(RngTest, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = rng.UniformInt(-5, -1);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, -1);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Uniform(2.5, 3.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 3.5);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(23);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Gaussian(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanAndPositivity) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Exponential(3.0);
    ASSERT_GT(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RngTest, TruncatedGaussianStaysInBounds) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.TruncatedGaussian(1.0, 0.5, 0.7, 1.4);
    EXPECT_GE(x, 0.7);
    EXPECT_LE(x, 1.4);
  }
}

TEST(RngTest, TruncatedGaussianImpossibleBoundsClamps) {
  Rng rng(37);
  // Mean far outside [100, 101]: rejection always fails, so it clamps.
  const double x = rng.TruncatedGaussian(0.0, 0.01, 100.0, 101.0);
  EXPECT_GE(x, 100.0);
  EXPECT_LE(x, 101.0);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForksAreMutuallyDecorrelated) {
  Rng parent(43);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const std::vector<int> original = v;
  bool changed = false;
  for (int i = 0; i < 10 && !changed; ++i) {
    rng.Shuffle(v);
    changed = (v != original);
  }
  EXPECT_TRUE(changed);
}

TEST(RngForkTest, NumberedForksAreDeterministic) {
  const Rng base(123);
  Rng a = base.Fork(7);
  Rng b = base.Fork(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngForkTest, DeviceStreamsNeverCollide) {
  // The fleet layer keys per-device divergence off Fork(device_id); a
  // collision would make two devices identical twins.  Over a large block
  // of consecutive ids (the fleet's exact usage pattern) every stream's
  // opening draw must be unique, and distinct from the parent's.
  const Rng base(42);
  std::vector<std::uint64_t> first_draws;
  first_draws.reserve(100001);
  for (std::uint64_t id = 0; id < 100000; ++id) {
    first_draws.push_back(base.Fork(id).Next());
  }
  Rng parent = base;
  first_draws.push_back(parent.Next());
  std::sort(first_draws.begin(), first_draws.end());
  EXPECT_EQ(std::adjacent_find(first_draws.begin(), first_draws.end()), first_draws.end())
      << "two forked streams opened with the same draw";
}

TEST(RngForkTest, AdjacentStreamsAreDecorrelated) {
  // seed+i style derivation correlates neighbouring streams; the splitmix
  // scrambler behind Fork must not.  Crude independence check: across many
  // adjacent stream pairs, the fraction of agreeing bits stays near 1/2.
  const Rng base(9);
  std::int64_t agreeing_bits = 0;
  std::int64_t total_bits = 0;
  for (std::uint64_t id = 0; id < 2000; ++id) {
    Rng lo = base.Fork(id);
    Rng hi = base.Fork(id + 1);
    for (int draw = 0; draw < 4; ++draw) {
      const std::uint64_t same = ~(lo.Next() ^ hi.Next());
      agreeing_bits += std::popcount(same);
      total_bits += 64;
    }
  }
  const double agreement = static_cast<double>(agreeing_bits) / static_cast<double>(total_bits);
  EXPECT_NEAR(agreement, 0.5, 0.01);
}

TEST(RngForkTest, ForkedStreamDivergesFromParentSequence) {
  Rng parent(77);
  Rng child = parent.Fork(0);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() != child.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

}  // namespace
}  // namespace dcs
