#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, PushPopSingle) {
  EventQueue q;
  bool fired = false;
  q.Push(SimTime::Millis(5), [&] { fired = true; });
  ASSERT_FALSE(q.Empty());
  EXPECT_EQ(q.NextTime(), SimTime::Millis(5));
  auto entry = q.Pop();
  EXPECT_EQ(entry.at, SimTime::Millis(5));
  entry.fn();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(SimTime::Millis(30), [] {});
  q.Push(SimTime::Millis(10), [] {});
  q.Push(SimTime::Millis(20), [] {});
  EXPECT_EQ(q.Pop().at, SimTime::Millis(10));
  EXPECT_EQ(q.Pop().at, SimTime::Millis(20));
  EXPECT_EQ(q.Pop().at, SimTime::Millis(30));
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = SimTime::Millis(1);
  q.Push(t, [&] { order.push_back(1); });
  q.Push(t, [&] { order.push_back(2); });
  q.Push(t, [&] { order.push_back(3); });
  while (!q.Empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelPendingEvent) {
  EventQueue q;
  const EventId id = q.Push(SimTime::Millis(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  // Double-cancel reports false.
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelledEventSkippedByPop) {
  EventQueue q;
  bool fired_a = false;
  bool fired_b = false;
  const EventId a = q.Push(SimTime::Millis(1), [&] { fired_a = true; });
  q.Push(SimTime::Millis(2), [&] { fired_b = true; });
  q.Cancel(a);
  ASSERT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.NextTime(), SimTime::Millis(2));
  q.Pop().fn();
  EXPECT_FALSE(fired_a);
  EXPECT_TRUE(fired_b);
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(999));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
}

TEST(EventQueueTest, IdsAreUniqueAndNeverReused) {
  EventQueue q;
  const EventId a = q.Push(SimTime::Millis(1), [] {});
  q.Pop();
  const EventId b = q.Push(SimTime::Millis(1), [] {});
  EXPECT_NE(a, b);
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.Push(SimTime::Millis(1), [] {});
  q.Push(SimTime::Millis(2), [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, ClearRemovesEverything) {
  EventQueue q;
  q.Push(SimTime::Millis(1), [] {});
  q.Push(SimTime::Millis(2), [] {});
  q.Clear();
  EXPECT_TRUE(q.Empty());
  // Queue is reusable after Clear.
  q.Push(SimTime::Millis(3), [] {});
  EXPECT_EQ(q.NextTime(), SimTime::Millis(3));
}

TEST(EventQueueTest, ClearedQueueOrdersTiesLikeAFreshOne) {
  // Regression: Clear() used to leave next_seq_ running, so the FIFO
  // tie-break state of a cleared queue diverged from a fresh queue's — a
  // reproducibility hazard for back-to-back runs reusing a simulator.  Replay
  // the same schedule on both and demand identical pop order.
  auto replay = [](EventQueue& q) {
    std::vector<int> order;
    const SimTime t = SimTime::Millis(4);
    for (int i = 0; i < 5; ++i) {
      q.Push(t, [&order, i] { order.push_back(i); });
    }
    q.Push(SimTime::Millis(2), [&order] { order.push_back(99); });
    while (!q.Empty()) {
      q.Pop().fn();
    }
    return order;
  };

  EventQueue fresh;
  const std::vector<int> fresh_order = replay(fresh);

  EventQueue reused;
  reused.Push(SimTime::Millis(1), [] {});
  reused.Push(SimTime::Millis(1), [] {});
  reused.Pop();
  reused.Clear();
  const std::vector<int> reused_order = replay(reused);

  EXPECT_EQ(reused_order, fresh_order);
  EXPECT_EQ(fresh_order, (std::vector<int>{99, 0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, IdsStayUniqueAcrossClear) {
  // Clear() resets tie-break state but must not recycle EventIds: a stale id
  // from before the Clear() may still be held by a caller and must not
  // cancel a new event.
  EventQueue q;
  const EventId before = q.Push(SimTime::Millis(1), [] {});
  q.Clear();
  const EventId after = q.Push(SimTime::Millis(1), [] {});
  EXPECT_NE(before, after);
  EXPECT_FALSE(q.Cancel(before));
  EXPECT_TRUE(q.Cancel(after));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.Push(SimTime::Micros(i * 7 % 500), [] {});
  }
  SimTime last;
  while (!q.Empty()) {
    const SimTime t = q.Pop().at;
    EXPECT_GE(t, last);
    last = t;
  }
}

TEST(EventQueueTest, MillionCancelsKeepDeadEntriesBounded) {
  // Regression for the unbounded-heap hazard: a workload that cancels almost
  // everything it schedules (timeouts that rarely fire) used to leave one
  // lazily-deleted heap entry per cancel, so the heap grew without bound.
  // MaybeCompact promises dead <= 2 * live + slack at all times.
  EventQueue q;
  Rng rng(0xC0FFEEu);
  std::vector<EventId> pending;
  std::size_t cancelled = 0;
  std::size_t max_dead = 0;
  while (cancelled < 1'000'000) {
    // Keep ~64 live events and cancel everything else before it fires.
    while (pending.size() < 64) {
      pending.push_back(
          q.Push(SimTime::Micros(rng.UniformInt(0, 1'000'000)), [] {}));
    }
    // Force the staged entries into the heap so the cancels below exercise
    // the lazy-delete path, not the staging swap-erase.
    (void)q.NextTime();
    for (int i = 0; i < 48; ++i) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(pending.size()) - 1));
      ASSERT_TRUE(q.Cancel(pending[victim]));
      pending[victim] = pending.back();
      pending.pop_back();
      ++cancelled;
    }
    max_dead = std::max(max_dead, q.dead_entries());
    ASSERT_LE(q.dead_entries(), 2 * q.Size() + 64)
        << "after " << cancelled << " cancels";
  }
  EXPECT_LE(max_dead, 2 * 64 + 64);
  EXPECT_EQ(q.Size(), pending.size());
}

// Reference model for the differential test: a sorted vector ordered by
// (time, push sequence), the queue's documented pop order.
struct RefModel {
  struct Ev {
    SimTime at;
    std::uint64_t seq;
    EventId id;
    int payload;
  };
  std::vector<Ev> events;  // kept sorted by (at, seq)
  std::uint64_t next_seq = 0;

  void Push(SimTime at, EventId id, int payload) {
    const Ev ev{at, next_seq++, id, payload};
    const auto pos = std::upper_bound(
        events.begin(), events.end(), ev, [](const Ev& a, const Ev& b) {
          return a.at != b.at ? a.at < b.at : a.seq < b.seq;
        });
    events.insert(pos, ev);
  }
  bool Cancel(EventId id) {
    const auto it = std::find_if(events.begin(), events.end(),
                                 [id](const Ev& e) { return e.id == id; });
    if (it == events.end()) {
      return false;
    }
    events.erase(it);
    return true;
  }
  Ev Pop() {
    const Ev front = events.front();
    events.erase(events.begin());
    return front;
  }
  void Clear() {
    events.clear();
    next_seq = 0;  // a cleared queue ties like a fresh one
  }
};

TEST(EventQueueTest, RandomizedDifferentialAgainstSortedVector) {
  // Drives random push/cancel/pop/Clear interleavings against the reference
  // model above and demands identical observable behaviour: sizes, pop order
  // (including FIFO tie-breaks — times are drawn from a tiny range so ties
  // are common), which callback fired, and cancel return values for live,
  // popped, cancelled, and pre-Clear ids.
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    EventQueue q;
    RefModel ref;
    Rng rng(seed);
    std::vector<EventId> stale;  // ids no longer live: must all Cancel()==false
    std::vector<int> fired;
    int next_payload = 0;
    for (int step = 0; step < 20'000; ++step) {
      const std::int64_t r = rng.UniformInt(0, 99);
      if (r < 45 || ref.events.empty()) {
        const SimTime at = SimTime::Micros(rng.UniformInt(0, 15));
        const int payload = next_payload++;
        const EventId id =
            q.Push(at, [&fired, payload] { fired.push_back(payload); });
        ref.Push(at, id, payload);
      } else if (r < 70) {
        const std::size_t victim = static_cast<std::size_t>(
            rng.UniformInt(0, static_cast<std::int64_t>(ref.events.size()) - 1));
        const EventId id = ref.events[victim].id;
        ASSERT_TRUE(ref.Cancel(id));
        ASSERT_TRUE(q.Cancel(id)) << "step " << step << " seed " << seed;
        stale.push_back(id);
      } else if (r < 95) {
        const RefModel::Ev want = ref.Pop();
        ASSERT_EQ(q.NextTime(), want.at) << "step " << step << " seed " << seed;
        auto entry = q.Pop();
        ASSERT_EQ(entry.at, want.at) << "step " << step << " seed " << seed;
        ASSERT_EQ(entry.id, want.id) << "step " << step << " seed " << seed;
        fired.clear();
        entry.fn();
        ASSERT_EQ(fired, std::vector<int>{want.payload});
        stale.push_back(entry.id);
      } else if (r < 98) {
        if (!stale.empty()) {
          const std::size_t i = static_cast<std::size_t>(rng.UniformInt(
              0, static_cast<std::int64_t>(stale.size()) - 1));
          EXPECT_FALSE(q.Cancel(stale[i]));
        }
      } else {
        for (const RefModel::Ev& ev : ref.events) {
          stale.push_back(ev.id);
        }
        ref.Clear();
        q.Clear();
      }
      ASSERT_EQ(q.Size(), ref.events.size());
      ASSERT_EQ(q.Empty(), ref.events.empty());
    }
    // Drain: the remaining pops must come out in exact reference order.
    while (!ref.events.empty()) {
      const RefModel::Ev want = ref.Pop();
      auto entry = q.Pop();
      ASSERT_EQ(entry.at, want.at);
      ASSERT_EQ(entry.id, want.id);
    }
    EXPECT_TRUE(q.Empty());
  }
}

TEST(EventQueueTest, CancelWhileStagedThenReuseSlot) {
  // A push cancelled before any Pop/NextTime never reaches the heap; the
  // freed slot is immediately reused by the next push.  The stale id must
  // keep failing even though the slot is live again.
  EventQueue q;
  const EventId a = q.Push(SimTime::Millis(1), [] {});
  const EventId b = q.Push(SimTime::Millis(2), [] {});
  ASSERT_TRUE(q.Cancel(b));
  ASSERT_TRUE(q.Cancel(a));
  const EventId c = q.Push(SimTime::Millis(3), [] {});
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_FALSE(q.Cancel(b));
  EXPECT_EQ(q.dead_entries(), 0u);
  EXPECT_EQ(q.Pop().id, c);
  EXPECT_TRUE(q.Empty());
}

}  // namespace
}  // namespace dcs
