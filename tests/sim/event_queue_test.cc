#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcs {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
}

TEST(EventQueueTest, PushPopSingle) {
  EventQueue q;
  bool fired = false;
  q.Push(SimTime::Millis(5), [&] { fired = true; });
  ASSERT_FALSE(q.Empty());
  EXPECT_EQ(q.NextTime(), SimTime::Millis(5));
  auto entry = q.Pop();
  EXPECT_EQ(entry.at, SimTime::Millis(5));
  entry.fn();
  EXPECT_TRUE(fired);
  EXPECT_TRUE(q.Empty());
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  q.Push(SimTime::Millis(30), [] {});
  q.Push(SimTime::Millis(10), [] {});
  q.Push(SimTime::Millis(20), [] {});
  EXPECT_EQ(q.Pop().at, SimTime::Millis(10));
  EXPECT_EQ(q.Pop().at, SimTime::Millis(20));
  EXPECT_EQ(q.Pop().at, SimTime::Millis(30));
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  const SimTime t = SimTime::Millis(1);
  q.Push(t, [&] { order.push_back(1); });
  q.Push(t, [&] { order.push_back(2); });
  q.Push(t, [&] { order.push_back(3); });
  while (!q.Empty()) {
    q.Pop().fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, CancelPendingEvent) {
  EventQueue q;
  const EventId id = q.Push(SimTime::Millis(1), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  // Double-cancel reports false.
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelledEventSkippedByPop) {
  EventQueue q;
  bool fired_a = false;
  bool fired_b = false;
  const EventId a = q.Push(SimTime::Millis(1), [&] { fired_a = true; });
  q.Push(SimTime::Millis(2), [&] { fired_b = true; });
  q.Cancel(a);
  ASSERT_EQ(q.Size(), 1u);
  EXPECT_EQ(q.NextTime(), SimTime::Millis(2));
  q.Pop().fn();
  EXPECT_FALSE(fired_a);
  EXPECT_TRUE(fired_b);
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(999));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
}

TEST(EventQueueTest, IdsAreUniqueAndNeverReused) {
  EventQueue q;
  const EventId a = q.Push(SimTime::Millis(1), [] {});
  q.Pop();
  const EventId b = q.Push(SimTime::Millis(1), [] {});
  EXPECT_NE(a, b);
}

TEST(EventQueueTest, SizeCountsOnlyLiveEvents) {
  EventQueue q;
  const EventId a = q.Push(SimTime::Millis(1), [] {});
  q.Push(SimTime::Millis(2), [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueueTest, ClearRemovesEverything) {
  EventQueue q;
  q.Push(SimTime::Millis(1), [] {});
  q.Push(SimTime::Millis(2), [] {});
  q.Clear();
  EXPECT_TRUE(q.Empty());
  // Queue is reusable after Clear.
  q.Push(SimTime::Millis(3), [] {});
  EXPECT_EQ(q.NextTime(), SimTime::Millis(3));
}

TEST(EventQueueTest, ClearedQueueOrdersTiesLikeAFreshOne) {
  // Regression: Clear() used to leave next_seq_ running, so the FIFO
  // tie-break state of a cleared queue diverged from a fresh queue's — a
  // reproducibility hazard for back-to-back runs reusing a simulator.  Replay
  // the same schedule on both and demand identical pop order.
  auto replay = [](EventQueue& q) {
    std::vector<int> order;
    const SimTime t = SimTime::Millis(4);
    for (int i = 0; i < 5; ++i) {
      q.Push(t, [&order, i] { order.push_back(i); });
    }
    q.Push(SimTime::Millis(2), [&order] { order.push_back(99); });
    while (!q.Empty()) {
      q.Pop().fn();
    }
    return order;
  };

  EventQueue fresh;
  const std::vector<int> fresh_order = replay(fresh);

  EventQueue reused;
  reused.Push(SimTime::Millis(1), [] {});
  reused.Push(SimTime::Millis(1), [] {});
  reused.Pop();
  reused.Clear();
  const std::vector<int> reused_order = replay(reused);

  EXPECT_EQ(reused_order, fresh_order);
  EXPECT_EQ(fresh_order, (std::vector<int>{99, 0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, IdsStayUniqueAcrossClear) {
  // Clear() resets tie-break state but must not recycle EventIds: a stale id
  // from before the Clear() may still be held by a caller and must not
  // cancel a new event.
  EventQueue q;
  const EventId before = q.Push(SimTime::Millis(1), [] {});
  q.Clear();
  const EventId after = q.Push(SimTime::Millis(1), [] {});
  EXPECT_NE(before, after);
  EXPECT_FALSE(q.Cancel(before));
  EXPECT_TRUE(q.Cancel(after));
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.Push(SimTime::Micros(i * 7 % 500), [] {});
  }
  SimTime last;
  while (!q.Empty()) {
    const SimTime t = q.Pop().at;
    EXPECT_GE(t, last);
    last = t;
  }
}

}  // namespace
}  // namespace dcs
