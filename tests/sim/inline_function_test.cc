#include "src/sim/inline_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

namespace dcs {
namespace {

TEST(InlineFunctionTest, DefaultIsEmpty) {
  InlineFunction<int(), 48> f;
  EXPECT_FALSE(static_cast<bool>(f));
  InlineFunction<int(), 48> g = nullptr;
  EXPECT_FALSE(static_cast<bool>(g));
}

TEST(InlineFunctionTest, InvokesSmallCaptureInline) {
  int x = 41;
  InlineFunction<int(), 48> f([&x] { return x + 1; });
  ASSERT_TRUE(static_cast<bool>(f));
  EXPECT_EQ(f(), 42);
  x = 99;
  EXPECT_EQ(f(), 100);
}

TEST(InlineFunctionTest, ForwardsArgumentsAndReturn) {
  InlineFunction<int(int, int), 48> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(2, 3), 5);
}

TEST(InlineFunctionTest, FourWordCaptureStaysCallable) {
  // The event-queue hot path stores captures past std::function's 16-byte
  // SBO but within the 48 inline bytes; they must round-trip through moves.
  std::uint64_t a = 1, b = 2, c = 3, d = 4;
  InlineFunction<std::uint64_t(), 48> f(
      [a, b, c, d] { return a * 1000 + b * 100 + c * 10 + d; });
  InlineFunction<std::uint64_t(), 48> g = std::move(f);
  EXPECT_FALSE(static_cast<bool>(f));  // moved-from is empty
  EXPECT_EQ(g(), 1234u);
}

TEST(InlineFunctionTest, HeapFallbackForNonTriviallyCopyable) {
  // A shared_ptr capture is not trivially copyable, so it is heap-boxed.
  // The box must be destroyed exactly once: on Reset, reassignment, or
  // destruction — proven by the refcount returning to 1.
  auto token = std::make_shared<int>(7);
  {
    InlineFunction<int(), 48> f([token] { return *token; });
    EXPECT_EQ(token.use_count(), 2);
    EXPECT_EQ(f(), 7);
    InlineFunction<int(), 48> g = std::move(f);
    EXPECT_EQ(token.use_count(), 2);  // move transfers, never copies the box
    EXPECT_EQ(g(), 7);
    g = nullptr;
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFunctionTest, OversizeCaptureFallsBackToHeap) {
  struct Big {
    char bytes[96] = {};
    int value = 5;
  };
  Big big;
  big.value = 11;
  InlineFunction<int(), 48> f([big] { return big.value; });
  EXPECT_EQ(f(), 11);
  InlineFunction<int(), 48> g = std::move(f);
  EXPECT_EQ(g(), 11);
}

TEST(InlineFunctionTest, MoveAssignDestroysPreviousTarget) {
  auto old_token = std::make_shared<int>(1);
  auto new_token = std::make_shared<int>(2);
  InlineFunction<int(), 48> f([old_token] { return *old_token; });
  InlineFunction<int(), 48> g([new_token] { return *new_token; });
  f = std::move(g);
  EXPECT_EQ(old_token.use_count(), 1);  // old target destroyed
  EXPECT_EQ(new_token.use_count(), 2);
  EXPECT_EQ(f(), 2);
}

TEST(InlineFunctionTest, EmplaceReplacesTarget) {
  InlineFunction<int(), 48> f([] { return 1; });
  f.Emplace([] { return 2; });
  EXPECT_EQ(f(), 2);
}

TEST(InlineFunctionTest, SelfMoveAssignIsSafe) {
  InlineFunction<int(), 48> f([] { return 3; });
  InlineFunction<int(), 48>& alias = f;
  f = std::move(alias);
  // Self-move leaves the object valid; it may be empty or keep its target.
  if (static_cast<bool>(f)) {
    EXPECT_EQ(f(), 3);
  }
}

TEST(InlineFunctionTest, MutableLambdaKeepsStatePerInstance) {
  InlineFunction<int(), 48> counter([n = 0]() mutable { return ++n; });
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
  InlineFunction<int(), 48> moved = std::move(counter);
  EXPECT_EQ(moved(), 3);  // state travels with the move
}

}  // namespace
}  // namespace dcs
