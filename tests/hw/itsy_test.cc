#include "src/hw/itsy.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"

namespace dcs {
namespace {

TEST(ItsyTest, DefaultsToTopStepHighVoltageNapping) {
  Simulator sim;
  Itsy itsy(sim);
  EXPECT_EQ(itsy.step(), 10);
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kHigh);
  EXPECT_EQ(itsy.exec_state(), ExecState::kNap);
  EXPECT_FALSE(itsy.tape().empty());
}

TEST(ItsyTest, ClockChangeUpdatesStepAndStalls) {
  Simulator sim;
  Itsy itsy(sim);
  const SimTime stall_end = itsy.SetClockStep(0);
  EXPECT_EQ(itsy.step(), 0);
  EXPECT_EQ(stall_end, SimTime::Micros(200));
  EXPECT_TRUE(itsy.Stalled());
  EXPECT_EQ(itsy.exec_state(), ExecState::kStalled);
}

TEST(ItsyTest, NoOpClockChangeHasNoStall) {
  Simulator sim;
  Itsy itsy(sim);
  EXPECT_EQ(itsy.SetClockStep(10), sim.Now());
  EXPECT_EQ(itsy.clock_changes(), 0);
}

TEST(ItsyTest, RaisingClockAboveLowVoltageCeilingRaisesRailFirst) {
  Simulator sim;
  ItsyConfig config;
  config.initial_step = 5;
  config.initial_voltage = CoreVoltage::kLow;
  Itsy itsy(sim, config);
  ASSERT_EQ(itsy.voltage(), CoreVoltage::kLow);
  itsy.SetClockStep(10);
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kHigh);
  EXPECT_EQ(itsy.step(), 10);
}

TEST(ItsyTest, LoweringVoltageRefusedAtFastStep) {
  Simulator sim;
  Itsy itsy(sim);  // 206.4 MHz
  EXPECT_FALSE(itsy.SetVoltage(CoreVoltage::kLow));
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kHigh);
}

TEST(ItsyTest, LoweringVoltageAllowedAtSafeStep) {
  Simulator sim;
  ItsyConfig config;
  config.initial_step = 7;  // 162.2 MHz
  Itsy itsy(sim, config);
  EXPECT_TRUE(itsy.SetVoltage(CoreVoltage::kLow));
  EXPECT_EQ(itsy.voltage(), CoreVoltage::kLow);
}

TEST(ItsyTest, PowerTapeTracksExecState) {
  Simulator sim;
  Itsy itsy(sim);
  const double nap = itsy.CurrentSystemWatts();
  sim.RunUntil(SimTime::Millis(1));
  itsy.SetExecState(ExecState::kBusy);
  const double busy = itsy.CurrentSystemWatts();
  EXPECT_GT(busy, nap);
  EXPECT_EQ(itsy.tape().WattsAt(SimTime::Micros(500)), nap);
  EXPECT_EQ(itsy.tape().WattsAt(SimTime::Millis(1)), busy);
}

TEST(ItsyTest, AudioTogglesPower) {
  Simulator sim;
  Itsy itsy(sim);
  const double before = itsy.CurrentSystemWatts();
  itsy.SetAudio(true);
  EXPECT_GT(itsy.CurrentSystemWatts(), before);
  itsy.SetAudio(false);
  EXPECT_DOUBLE_EQ(itsy.CurrentSystemWatts(), before);
}

TEST(ItsyTest, DisplayOffReducesPower) {
  Simulator sim;
  Itsy itsy(sim);
  const double on = itsy.CurrentSystemWatts();
  itsy.SetDisplay(false);
  EXPECT_LT(itsy.CurrentSystemWatts(), on);
}

TEST(ItsyTest, LowerStepLowersBusyPower) {
  Simulator sim;
  Itsy itsy(sim);
  itsy.SetExecState(ExecState::kBusy);
  sim.RunUntil(SimTime::Millis(1));
  const double fast = itsy.CurrentSystemWatts();
  itsy.SetClockStep(0);
  sim.RunUntil(SimTime::Millis(2));
  itsy.SetExecState(ExecState::kBusy);
  EXPECT_LT(itsy.CurrentSystemWatts(), fast);
}

TEST(ItsyTest, BatteryDrainsWithTime) {
  Simulator sim;
  ItsyConfig config;
  config.battery = BatteryParams{};
  Itsy itsy(sim, config);
  ASSERT_NE(itsy.battery(), nullptr);
  itsy.SetExecState(ExecState::kBusy);
  sim.RunUntil(SimTime::Seconds(600));
  itsy.SyncBattery();
  EXPECT_GT(itsy.battery()->DepthOfDischarge(), 0.0);
  EXPECT_FALSE(itsy.battery()->Empty());
}

TEST(ItsyTest, NoBatteryByDefault) {
  Simulator sim;
  Itsy itsy(sim);
  EXPECT_EQ(itsy.battery(), nullptr);
  itsy.SyncBattery();  // must be harmless
}

TEST(ItsyTest, VoltageTransitionCountVisible) {
  Simulator sim;
  ItsyConfig config;
  config.initial_step = 5;
  Itsy itsy(sim, config);
  itsy.SetVoltage(CoreVoltage::kLow);
  itsy.SetVoltage(CoreVoltage::kHigh);
  EXPECT_EQ(itsy.voltage_transitions(), 2);
}

}  // namespace
}  // namespace dcs
