#include "src/hw/gpio.h"

#include <gtest/gtest.h>

#include <vector>

namespace dcs {
namespace {

TEST(GpioTest, PinsStartLow) {
  Gpio gpio;
  for (int pin = 0; pin < kNumGpioPins; ++pin) {
    EXPECT_FALSE(gpio.Level(pin));
  }
}

TEST(GpioTest, WriteSetsLevel) {
  Gpio gpio;
  gpio.Write(3, true, SimTime::Millis(1));
  EXPECT_TRUE(gpio.Level(3));
  EXPECT_FALSE(gpio.Level(4));
}

TEST(GpioTest, ObserverFiresOnTransitionsOnly) {
  Gpio gpio;
  int edges = 0;
  gpio.Observe([&](int, SimTime, bool) { ++edges; });
  gpio.Write(1, true, SimTime::Millis(1));
  gpio.Write(1, true, SimTime::Millis(2));  // no transition
  gpio.Write(1, false, SimTime::Millis(3));
  EXPECT_EQ(edges, 2);
}

TEST(GpioTest, ObserverSeesPinTimeAndLevel) {
  Gpio gpio;
  std::vector<std::tuple<int, std::int64_t, bool>> seen;
  gpio.Observe([&](int pin, SimTime at, bool level) {
    seen.emplace_back(pin, at.millis(), level);
  });
  gpio.Write(7, true, SimTime::Millis(5));
  gpio.Write(7, false, SimTime::Millis(9));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], std::make_tuple(7, std::int64_t{5}, true));
  EXPECT_EQ(seen[1], std::make_tuple(7, std::int64_t{9}, false));
}

TEST(GpioTest, ToggleInverts) {
  Gpio gpio;
  gpio.Toggle(2, SimTime::Millis(1));
  EXPECT_TRUE(gpio.Level(2));
  gpio.Toggle(2, SimTime::Millis(2));
  EXPECT_FALSE(gpio.Level(2));
}

TEST(GpioTest, MultipleObserversAllFire) {
  Gpio gpio;
  int a = 0;
  int b = 0;
  gpio.Observe([&](int, SimTime, bool) { ++a; });
  gpio.Observe([&](int, SimTime, bool) { ++b; });
  gpio.Toggle(0, SimTime::Zero());
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

}  // namespace
}  // namespace dcs
