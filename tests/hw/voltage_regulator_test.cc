#include "src/hw/voltage_regulator.h"

#include <gtest/gtest.h>

#include "src/hw/clock_table.h"

namespace dcs {
namespace {

TEST(VoltageRegulatorTest, StartsHighAndStable) {
  VoltageRegulator reg;
  EXPECT_EQ(reg.target(), CoreVoltage::kHigh);
  EXPECT_TRUE(reg.IsStable(SimTime::Zero()));
  EXPECT_DOUBLE_EQ(reg.VoltsAt(SimTime::Zero()), 1.50);
}

TEST(VoltageRegulatorTest, VoltageVolts) {
  EXPECT_DOUBLE_EQ(VoltageVolts(CoreVoltage::kHigh), 1.50);
  EXPECT_DOUBLE_EQ(VoltageVolts(CoreVoltage::kLow), 1.23);
}

TEST(VoltageRegulatorTest, DownwardTransitionTakes250us) {
  VoltageRegulator reg;
  const SimTime now = SimTime::Millis(10);
  const SimTime settle = reg.Request(CoreVoltage::kLow, now);
  EXPECT_EQ(settle, now + SimTime::Micros(250));
  EXPECT_FALSE(reg.IsStable(now + SimTime::Micros(100)));
  EXPECT_TRUE(reg.IsStable(settle));
}

TEST(VoltageRegulatorTest, UpwardTransitionInstantaneous) {
  VoltageRegulator reg;
  reg.Request(CoreVoltage::kLow, SimTime::Zero());
  const SimTime now = SimTime::Millis(1);
  const SimTime settle = reg.Request(CoreVoltage::kHigh, now);
  EXPECT_EQ(settle, now);
  EXPECT_TRUE(reg.IsStable(now));
}

TEST(VoltageRegulatorTest, RerequestingCurrentTargetIsNoOp) {
  VoltageRegulator reg;
  reg.Request(CoreVoltage::kLow, SimTime::Zero());
  EXPECT_EQ(reg.transitions(), 1);
  reg.Request(CoreVoltage::kLow, SimTime::Millis(5));
  EXPECT_EQ(reg.transitions(), 1);
}

TEST(VoltageRegulatorTest, SettleCurveDecaysAndUndershoots) {
  // "the voltage slowly reduces, drops below 1.23V and then rapidly
  // settles" (paper section 5.4).
  VoltageRegulator reg;
  reg.Request(CoreVoltage::kLow, SimTime::Zero());
  const double early = reg.VoltsAt(SimTime::Micros(20));
  const double mid = reg.VoltsAt(SimTime::Micros(120));
  EXPECT_GT(early, mid);
  EXPECT_GT(early, 1.23);
  EXPECT_LT(early, 1.50);
  // Undershoot near 80% of the settle interval.
  const double undershoot = reg.VoltsAt(SimTime::Micros(200));
  EXPECT_LT(undershoot, 1.23);
  // Settled exactly at the target afterwards.
  EXPECT_DOUBLE_EQ(reg.VoltsAt(SimTime::Micros(250)), 1.23);
}

TEST(VoltageRegulatorTest, StepSafetyRule) {
  // 1.23 V is safe only up to 162.2 MHz (step 7).
  for (int step = 0; step <= kMaxStepAtLowVoltage; ++step) {
    EXPECT_TRUE(VoltageRegulator::StepAllowedAt(CoreVoltage::kLow, step));
  }
  for (int step = kMaxStepAtLowVoltage + 1; step < kNumClockSteps; ++step) {
    EXPECT_FALSE(VoltageRegulator::StepAllowedAt(CoreVoltage::kLow, step));
  }
  for (int step = 0; step < kNumClockSteps; ++step) {
    EXPECT_TRUE(VoltageRegulator::StepAllowedAt(CoreVoltage::kHigh, step));
  }
}

TEST(VoltageRegulatorTest, MaxLowVoltageStepIs162MHz) {
  EXPECT_NEAR(ClockTable::FrequencyMhz(kMaxStepAtLowVoltage), 162.2, 0.1);
}

TEST(VoltageRegulatorTest, TransitionCountTracksBothDirections) {
  VoltageRegulator reg;
  reg.Request(CoreVoltage::kLow, SimTime::Zero());
  reg.Request(CoreVoltage::kHigh, SimTime::Millis(1));
  reg.Request(CoreVoltage::kLow, SimTime::Millis(2));
  EXPECT_EQ(reg.transitions(), 3);
}

}  // namespace
}  // namespace dcs
