#include "src/hw/battery.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dcs {
namespace {

// The paper's calibration points (section 2.1): an idle Itsy at 206 MHz
// drains two AAA cells in ~2 h; at 59 MHz the same cells last ~18 h.
constexpr double kIdleWatts206 = 1.029;
constexpr double kIdleWatts59 = kIdleWatts206 / 3.5;

TEST(BatteryTest, StartsFull) {
  Battery battery;
  EXPECT_EQ(battery.DepthOfDischarge(), 0.0);
  EXPECT_FALSE(battery.Empty());
}

TEST(BatteryTest, PaperLifetimeAt206MHz) {
  Battery battery;
  EXPECT_NEAR(battery.LifetimeHoursAtConstantPower(kIdleWatts206), 2.0, 0.1);
}

TEST(BatteryTest, PaperLifetimeAt59MHz) {
  // 9x the lifetime for a 3.5x power reduction — the rate-capacity effect.
  Battery battery;
  EXPECT_NEAR(battery.LifetimeHoursAtConstantPower(kIdleWatts59), 18.0, 1.0);
}

TEST(BatteryTest, LifetimeRatioExceedsPowerRatio) {
  Battery battery;
  const double ratio = battery.LifetimeHoursAtConstantPower(kIdleWatts59) /
                       battery.LifetimeHoursAtConstantPower(kIdleWatts206);
  EXPECT_GT(ratio, 3.5);  // super-linear: the whole point of section 2.1
  EXPECT_NEAR(ratio, 9.0, 0.5);
}

TEST(BatteryTest, DrainIntegratesToClosedFormLifetime) {
  Battery battery;
  const double hours = battery.LifetimeHoursAtConstantPower(kIdleWatts206);
  // Integrate in 1-minute segments until the predicted lifetime.
  const int minutes = static_cast<int>(hours * 60.0);
  for (int i = 0; i < minutes; ++i) {
    battery.Drain(kIdleWatts206, SimTime::Seconds(60));
  }
  EXPECT_NEAR(battery.DepthOfDischarge(), 1.0, 0.02);
}

TEST(BatteryTest, EmptyAfterOverdrain) {
  Battery battery;
  battery.Drain(kIdleWatts206, SimTime::Seconds(3 * 3600));
  EXPECT_TRUE(battery.Empty());
}

TEST(BatteryTest, HigherPowerDrainsDisproportionately) {
  Battery a;
  Battery b;
  a.Drain(1.0, SimTime::Seconds(3600));
  b.Drain(2.0, SimTime::Seconds(1800));  // same energy, higher rate
  EXPECT_GT(b.DepthOfDischarge(), a.DepthOfDischarge());
}

TEST(BatteryTest, ZeroOrNegativeInputsAreIgnored) {
  Battery battery;
  battery.Drain(-1.0, SimTime::Seconds(10));
  battery.Drain(1.0, SimTime::Zero());
  EXPECT_EQ(battery.DepthOfDischarge(), 0.0);
}

TEST(BatteryTest, PulsedDischargeBeatsContinuousHighRate) {
  // Chiasserini & Rao: interspersing high-power bursts with rest periods
  // recovers part of the rate-induced loss.
  Battery pulsed;
  Battery continuous;
  const double burst_watts = 2.0;
  // Continuous: 1 hour at 2 W.
  continuous.Drain(burst_watts, SimTime::Seconds(3600));
  // Pulsed: 60 bursts of 1 minute at 2 W with 4-minute rests (same active
  // energy).
  for (int i = 0; i < 60; ++i) {
    pulsed.Drain(burst_watts, SimTime::Seconds(60));
    pulsed.Drain(0.0, SimTime::Seconds(240));
  }
  EXPECT_LT(pulsed.DepthOfDischarge(), continuous.DepthOfDischarge());
}

TEST(BatteryTest, RecoverablePoolFillsOnHighRate) {
  Battery battery;
  battery.Drain(3.0, SimTime::Seconds(600));
  EXPECT_GT(battery.RecoverablePool(), 0.0);
}

TEST(BatteryTest, RecoveryDrainsPool) {
  Battery battery;
  battery.Drain(3.0, SimTime::Seconds(600));
  const double pool_before = battery.RecoverablePool();
  const double depth_before = battery.DepthOfDischarge();
  battery.Drain(0.0, SimTime::Seconds(3600));
  EXPECT_LT(battery.RecoverablePool(), pool_before);
  EXPECT_LT(battery.DepthOfDischarge(), depth_before);
}

TEST(BatteryTest, ResetRestoresFullCharge) {
  Battery battery;
  battery.Drain(2.0, SimTime::Seconds(3600));
  battery.Reset();
  EXPECT_EQ(battery.DepthOfDischarge(), 0.0);
  EXPECT_EQ(battery.RecoverablePool(), 0.0);
}

TEST(BatteryTest, ZeroPowerLastsForever) {
  Battery battery;
  EXPECT_TRUE(std::isinf(battery.LifetimeHoursAtConstantPower(0.0)));
}

TEST(BatteryTest, IdealBatteryHasLinearLifetime) {
  BatteryParams params;
  params.peukert_exponent = 1.0;
  Battery battery(params);
  const double t1 = battery.LifetimeHoursAtConstantPower(1.0);
  const double t2 = battery.LifetimeHoursAtConstantPower(2.0);
  EXPECT_NEAR(t1 / t2, 2.0, 1e-9);
}

}  // namespace
}  // namespace dcs
