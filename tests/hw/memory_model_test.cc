#include "src/hw/memory_model.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

// Table 3, verbatim.
constexpr int kWord[kNumClockSteps] = {11, 11, 11, 11, 13, 14, 14, 15, 18, 19, 20};
constexpr int kLine[kNumClockSteps] = {39, 39, 39, 39, 41, 42, 49, 50, 60, 61, 69};

TEST(MemoryModelTest, Table3WordCycles) {
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_EQ(MemoryModel::WordAccessCycles(k), kWord[k]) << "step " << k;
  }
}

TEST(MemoryModelTest, Table3LineCycles) {
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_EQ(MemoryModel::LineFillCycles(k), kLine[k]) << "step " << k;
  }
}

TEST(MemoryModelTest, CyclesNonDecreasingWithFrequency) {
  for (int k = 1; k < kNumClockSteps; ++k) {
    EXPECT_GE(MemoryModel::WordAccessCycles(k), MemoryModel::WordAccessCycles(k - 1));
    EXPECT_GE(MemoryModel::LineFillCycles(k), MemoryModel::LineFillCycles(k - 1));
  }
}

TEST(MemoryModelTest, PureComputeMixFactorIsOne) {
  const MemoryProfile none;
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_DOUBLE_EQ(MemoryModel::MixFactor(k, none), 1.0);
  }
}

TEST(MemoryModelTest, MixFactorGrowsWithMemoryIntensity) {
  const MemoryProfile light{5.0, 2.0};
  const MemoryProfile heavy{25.0, 10.0};
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_GT(MemoryModel::MixFactor(k, heavy), MemoryModel::MixFactor(k, light));
    EXPECT_GT(MemoryModel::MixFactor(k, light), 1.0);
  }
}

TEST(MemoryModelTest, MixFactorClosedForm) {
  const MemoryProfile p{20.0, 8.0};
  // Step 5 (132.7 MHz): 1 + 20*14/1000 + 8*42/1000 = 1.616.
  EXPECT_DOUBLE_EQ(MemoryModel::MixFactor(5, p), 1.616);
  // Step 10: 1 + 20*20/1000 + 8*69/1000 = 1.952.
  EXPECT_DOUBLE_EQ(MemoryModel::MixFactor(10, p), 1.952);
}

TEST(MemoryModelTest, PureComputeThroughputScalesLinearly) {
  const MemoryProfile none;
  // Exact PLL multiplier ratio: (16 + 4*10) / 16 = 3.5.
  EXPECT_NEAR(MemoryModel::EffectiveBaseHz(10, none) / MemoryModel::EffectiveBaseHz(0, none),
              3.5, 1e-9);
}

TEST(MemoryModelTest, MemoryBoundThroughputScalesSublinearly) {
  const MemoryProfile heavy{25.0, 10.0};
  const double ratio =
      MemoryModel::EffectiveBaseHz(10, heavy) / MemoryModel::EffectiveBaseHz(0, heavy);
  EXPECT_LT(ratio, 3.5);
  EXPECT_GT(ratio, 1.0);
}

TEST(MemoryModelTest, Figure9PlateauBetween162And177) {
  // For the MPEG profile, the throughput gain from step 7 -> 8 nearly
  // vanishes (the paper's plateau), while neighbouring transitions gain
  // several percent.
  const MemoryProfile mpeg{20.0, 8.0};
  const double gain_7_8 =
      MemoryModel::EffectiveBaseHz(8, mpeg) / MemoryModel::EffectiveBaseHz(7, mpeg);
  const double gain_6_7 =
      MemoryModel::EffectiveBaseHz(7, mpeg) / MemoryModel::EffectiveBaseHz(6, mpeg);
  const double gain_8_9 =
      MemoryModel::EffectiveBaseHz(9, mpeg) / MemoryModel::EffectiveBaseHz(8, mpeg);
  EXPECT_LT(gain_7_8, 1.02);
  EXPECT_GT(gain_6_7, 1.04);
  EXPECT_GT(gain_8_9, 1.04);
}

TEST(MemoryModelTest, WallTimeForWorkRoundTrip) {
  const MemoryProfile p{15.0, 6.0};
  for (int k = 0; k < kNumClockSteps; ++k) {
    const double cycles = 1e6;
    const SimTime wall = MemoryModel::WallTimeForWork(cycles, k, p);
    EXPECT_NEAR(MemoryModel::WorkCompletedIn(wall, k, p), cycles, cycles * 1e-6);
  }
}

TEST(MemoryModelTest, WallTimeMonotoneDecreasingInStep) {
  const MemoryProfile p{10.0, 4.0};
  for (int k = 1; k < kNumClockSteps; ++k) {
    EXPECT_LE(MemoryModel::WallTimeForWork(1e7, k, p),
              MemoryModel::WallTimeForWork(1e7, k - 1, p));
  }
}

TEST(MemoryModelTest, ZeroWorkTakesZeroTime) {
  EXPECT_EQ(MemoryModel::WallTimeForWork(0.0, 5, {}), SimTime::Zero());
}

TEST(MemoryModelTest, WorkCompletedInNonPositiveTimeIsZero) {
  EXPECT_EQ(MemoryModel::WorkCompletedIn(SimTime::Zero(), 5, {}), 0.0);
  EXPECT_EQ(MemoryModel::WorkCompletedIn(SimTime::Zero() - SimTime::Millis(1), 5, {}), 0.0);
}

// Property sweep: for every step and a grid of profiles, time(work)/work is
// consistent with EffectiveBaseHz.
class MemoryModelPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MemoryModelPropertyTest, EffectiveHzConsistency) {
  const int step = GetParam();
  for (double refs : {0.0, 5.0, 20.0, 50.0}) {
    for (double fills : {0.0, 2.0, 8.0, 20.0}) {
      const MemoryProfile p{refs, fills};
      const double hz = MemoryModel::EffectiveBaseHz(step, p);
      const SimTime wall = MemoryModel::WallTimeForWork(hz, step, p);  // 1 second of work
      EXPECT_NEAR(wall.ToSeconds(), 1.0, 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSteps, MemoryModelPropertyTest,
                         ::testing::Range(0, kNumClockSteps));

}  // namespace
}  // namespace dcs
