#include "src/hw/power_tape.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(PowerTapeTest, EmptyTape) {
  PowerTape tape;
  EXPECT_TRUE(tape.empty());
  EXPECT_EQ(tape.WattsAt(SimTime::Millis(5)), 0.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(1)), 0.0);
}

TEST(PowerTapeTest, SingleSegmentExtendsForever) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Zero()), 2.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(100)), 2.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(3)), 6.0);
}

TEST(PowerTapeTest, BeforeFirstSegmentIsZeroPower) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 5.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Millis(500)), 0.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2)), 5.0);
}

TEST(PowerTapeTest, PiecewiseEnergyIntegration) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 3.0);
  tape.Set(SimTime::Seconds(2), 0.5);
  // [0,1): 1 J, [1,2): 3 J, [2,4): 1 J -> 5 J.
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(4)), 5.0);
}

TEST(PowerTapeTest, EnergyOverPartialWindow) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  tape.Set(SimTime::Seconds(10), 4.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Seconds(9), SimTime::Seconds(11)), 6.0);
}

TEST(PowerTapeTest, AverageWatts) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 2.0);
  EXPECT_DOUBLE_EQ(tape.AverageWatts(SimTime::Zero(), SimTime::Seconds(2)), 1.5);
}

TEST(PowerTapeTest, EqualPowerSegmentsMerge) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 1.0);
  EXPECT_EQ(tape.segments().size(), 1u);
}

TEST(PowerTapeTest, SameInstantUpdatesCollapse) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(2), 3.0);
  ASSERT_EQ(tape.segments().size(), 2u);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(2)), 3.0);
}

TEST(PowerTapeTest, SameInstantCollapseCanRemergeWithPrevious) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(2), 1.0);  // back to the previous power
  EXPECT_EQ(tape.segments().size(), 1u);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(3)), 1.0);
}

TEST(PowerTapeTest, EmptyOrInvertedWindowHasZeroEnergy) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Seconds(2), SimTime::Seconds(2)), 0.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Seconds(3), SimTime::Seconds(1)), 0.0);
  EXPECT_EQ(tape.AverageWatts(SimTime::Seconds(3), SimTime::Seconds(1)), 0.0);
}

TEST(PowerTapeTest, EnergyAdditiveOverAdjacentWindows) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.3);
  tape.Set(SimTime::Millis(700), 0.4);
  tape.Set(SimTime::Millis(1400), 2.2);
  const double whole = tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2));
  const double first = tape.EnergyJoules(SimTime::Zero(), SimTime::Millis(900));
  const double second = tape.EnergyJoules(SimTime::Millis(900), SimTime::Seconds(2));
  EXPECT_NEAR(whole, first + second, 1e-12);
}

}  // namespace
}  // namespace dcs
