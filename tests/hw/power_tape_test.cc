#include "src/hw/power_tape.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/daq/daq.h"
#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(PowerTapeTest, EmptyTape) {
  PowerTape tape;
  EXPECT_TRUE(tape.empty());
  EXPECT_EQ(tape.WattsAt(SimTime::Millis(5)), 0.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(1)), 0.0);
}

TEST(PowerTapeTest, SingleSegmentExtendsForever) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Zero()), 2.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(100)), 2.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(3)), 6.0);
}

TEST(PowerTapeTest, BeforeFirstSegmentIsZeroPower) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 5.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Millis(500)), 0.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2)), 5.0);
}

TEST(PowerTapeTest, PiecewiseEnergyIntegration) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 3.0);
  tape.Set(SimTime::Seconds(2), 0.5);
  // [0,1): 1 J, [1,2): 3 J, [2,4): 1 J -> 5 J.
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(4)), 5.0);
}

TEST(PowerTapeTest, EnergyOverPartialWindow) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  tape.Set(SimTime::Seconds(10), 4.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Seconds(9), SimTime::Seconds(11)), 6.0);
}

TEST(PowerTapeTest, AverageWatts) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 2.0);
  EXPECT_DOUBLE_EQ(tape.AverageWatts(SimTime::Zero(), SimTime::Seconds(2)), 1.5);
}

TEST(PowerTapeTest, EqualPowerSegmentsMerge) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 1.0);
  EXPECT_EQ(tape.segments().size(), 1u);
}

TEST(PowerTapeTest, SameInstantUpdatesCollapse) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(2), 3.0);
  ASSERT_EQ(tape.segments().size(), 2u);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(2)), 3.0);
}

TEST(PowerTapeTest, SameInstantCollapseCanRemergeWithPrevious) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(2), 1.0);  // back to the previous power
  EXPECT_EQ(tape.segments().size(), 1u);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(3)), 1.0);
}

TEST(PowerTapeTest, EmptyOrInvertedWindowHasZeroEnergy) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Seconds(2), SimTime::Seconds(2)), 0.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Seconds(3), SimTime::Seconds(1)), 0.0);
  EXPECT_EQ(tape.AverageWatts(SimTime::Seconds(3), SimTime::Seconds(1)), 0.0);
}

TEST(PowerTapeTest, EnergyAdditiveOverAdjacentWindows) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.3);
  tape.Set(SimTime::Millis(700), 0.4);
  tape.Set(SimTime::Millis(1400), 2.2);
  const double whole = tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2));
  const double first = tape.EnergyJoules(SimTime::Zero(), SimTime::Millis(900));
  const double second = tape.EnergyJoules(SimTime::Millis(900), SimTime::Seconds(2));
  EXPECT_NEAR(whole, first + second, 1e-12);
}

// Builds a random but reproducible tape: `count` Set calls at strictly
// increasing times, occasionally repeating the previous power so the
// merge path is exercised too.  Returns the final time.
SimTime BuildRandomTape(Rng& rng, PowerTape* tape, int count) {
  SimTime t = SimTime::Micros(rng.UniformInt(0, 100));
  double watts = rng.Uniform(0.1, 3.0);
  for (int i = 0; i < count; ++i) {
    if (rng.NextDouble() < 0.2) {
      // Keep the previous power: the tape must merge, not grow.
      tape->Set(t, watts);
    } else {
      watts = rng.Uniform(0.1, 3.0);
      tape->Set(t, watts);
    }
    t += SimTime::Micros(rng.UniformInt(1, 5'000));
  }
  return t;
}

// Property: over any window, EnergyJoules equals the sum of each stored
// segment's own integral (watts x clipped duration), for random tapes.
TEST(PowerTapePropertyTest, EnergyIsSumOfSegmentIntegrals) {
  Rng rng(0xDC5);
  for (int trial = 0; trial < 40; ++trial) {
    PowerTape tape;
    const SimTime last = BuildRandomTape(rng, &tape, 150);
    const SimTime begin = SimTime::Micros(rng.UniformInt(0, last.micros()));
    const SimTime end = begin + SimTime::Micros(rng.UniformInt(1, 2 * last.micros() + 1));
    const auto& segments = tape.segments();
    double manual = 0.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const SimTime seg_begin = std::max(segments[i].start, begin);
      const SimTime seg_end =
          std::min(i + 1 < segments.size() ? segments[i + 1].start : end, end);
      if (seg_end > seg_begin) {
        manual += segments[i].watts * (seg_end - seg_begin).ToSeconds();
      }
    }
    EXPECT_NEAR(tape.EnergyJoules(begin, end), manual, 1e-9) << "trial " << trial;
  }
}

// Property: re-stating the current power is a no-op — the merged tape has
// the same energy, watts and average over every probe window as if the
// redundant Set calls never happened.
TEST(PowerTapePropertyTest, RedundantSetsDoNotChangeTheRecord) {
  Rng rng(0xDC6);
  for (int trial = 0; trial < 20; ++trial) {
    PowerTape merged;
    PowerTape reference;
    SimTime t = SimTime::Micros(0);
    double watts = rng.Uniform(0.1, 3.0);
    for (int i = 0; i < 100; ++i) {
      watts = rng.NextDouble() < 0.5 ? rng.Uniform(0.1, 3.0) : watts;
      merged.Set(t, watts);
      reference.Set(t, watts);
      // Echo the same power at a later instant into `merged` only.
      t += SimTime::Micros(rng.UniformInt(1, 2'000));
      merged.Set(t, watts);
      t += SimTime::Micros(rng.UniformInt(1, 2'000));
    }
    EXPECT_LE(merged.segments().size(), reference.segments().size());
    for (int probe = 0; probe < 20; ++probe) {
      const SimTime a = SimTime::Micros(rng.UniformInt(0, t.micros()));
      const SimTime b = SimTime::Micros(rng.UniformInt(0, t.micros()));
      EXPECT_NEAR(merged.EnergyJoules(std::min(a, b), std::max(a, b)),
                  reference.EnergyJoules(std::min(a, b), std::max(a, b)), 1e-9);
      EXPECT_EQ(merged.WattsAt(a), reference.WattsAt(a));
    }
  }
}

// The paper's 5 kHz DAQ pipeline, fed by random tapes with noise disabled,
// converges on the tape's analytic energy as the sample rate rises: the
// rectangle-rule error shrinks roughly linearly with the sample period.
TEST(PowerTapePropertyTest, DaqSamplingConvergesOnAnalyticEnergy) {
  Rng rng(0xDC7);
  for (int trial = 0; trial < 5; ++trial) {
    PowerTape tape;
    // Segment lengths ~2.5 ms on average, a realistic quantum-scale load.
    SimTime t = SimTime::Micros(0);
    for (int i = 0; i < 400; ++i) {
      tape.Set(t, rng.Uniform(0.1, 2.0));
      t += SimTime::Micros(rng.UniformInt(500, 5'000));
    }
    const SimTime begin = SimTime::Zero();
    const SimTime end = t;
    const double exact = tape.EnergyJoules(begin, end);
    ASSERT_GT(exact, 0.0);

    double previous_error = 0.0;
    bool first = true;
    for (const double hz : {5'000.0, 50'000.0, 500'000.0}) {
      DaqConfig config;
      config.sample_hz = hz;
      config.noise_lsb = 0.0;  // isolate the sampling error from ADC noise
      Daq daq(config);
      const double measured = daq.MeasureEnergyJoules(tape, begin, end);
      const double error = std::abs(measured - exact) / exact;
      if (first) {
        // The paper's 5 kHz rig lands within a few percent on quantum-scale
        // power activity (ADC quantisation included).
        EXPECT_LT(error, 0.05) << "trial " << trial;
        first = false;
      } else {
        // Each 10x rate increase must not make the estimate worse; at the
        // top rate the residual floor is ADC quantisation, not sampling.
        EXPECT_LT(error, std::max(previous_error, 2e-3)) << "hz=" << hz;
      }
      previous_error = error;
    }
    EXPECT_LT(previous_error, 2e-3);
  }
}

}  // namespace
}  // namespace dcs
