#include "src/hw/power_tape.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/daq/daq.h"
#include "src/sim/rng.h"

namespace dcs {
namespace {

TEST(PowerTapeTest, EmptyTape) {
  PowerTape tape;
  EXPECT_TRUE(tape.empty());
  EXPECT_EQ(tape.WattsAt(SimTime::Millis(5)), 0.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(1)), 0.0);
}

TEST(PowerTapeTest, SingleSegmentExtendsForever) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Zero()), 2.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(100)), 2.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(3)), 6.0);
}

TEST(PowerTapeTest, BeforeFirstSegmentIsZeroPower) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 5.0);
  EXPECT_EQ(tape.WattsAt(SimTime::Millis(500)), 0.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2)), 5.0);
}

TEST(PowerTapeTest, PiecewiseEnergyIntegration) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 3.0);
  tape.Set(SimTime::Seconds(2), 0.5);
  // [0,1): 1 J, [1,2): 3 J, [2,4): 1 J -> 5 J.
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(4)), 5.0);
}

TEST(PowerTapeTest, EnergyOverPartialWindow) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  tape.Set(SimTime::Seconds(10), 4.0);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Seconds(9), SimTime::Seconds(11)), 6.0);
}

TEST(PowerTapeTest, AverageWatts) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 2.0);
  EXPECT_DOUBLE_EQ(tape.AverageWatts(SimTime::Zero(), SimTime::Seconds(2)), 1.5);
}

TEST(PowerTapeTest, EqualPowerSegmentsMerge) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.0);
  tape.Set(SimTime::Seconds(1), 1.0);
  EXPECT_EQ(tape.segments().size(), 1u);
}

TEST(PowerTapeTest, SameInstantUpdatesCollapse) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(2), 3.0);
  ASSERT_EQ(tape.segments().size(), 2u);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(2)), 3.0);
}

TEST(PowerTapeTest, SameInstantCollapseCanRemergeWithPrevious) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(2), 1.0);  // back to the previous power
  EXPECT_EQ(tape.segments().size(), 1u);
  EXPECT_EQ(tape.WattsAt(SimTime::Seconds(3)), 1.0);
}

TEST(PowerTapeTest, EmptyOrInvertedWindowHasZeroEnergy) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 2.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Seconds(2), SimTime::Seconds(2)), 0.0);
  EXPECT_EQ(tape.EnergyJoules(SimTime::Seconds(3), SimTime::Seconds(1)), 0.0);
  EXPECT_EQ(tape.AverageWatts(SimTime::Seconds(3), SimTime::Seconds(1)), 0.0);
}

TEST(PowerTapeTest, EnergyAdditiveOverAdjacentWindows) {
  PowerTape tape;
  tape.Set(SimTime::Zero(), 1.3);
  tape.Set(SimTime::Millis(700), 0.4);
  tape.Set(SimTime::Millis(1400), 2.2);
  const double whole = tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2));
  const double first = tape.EnergyJoules(SimTime::Zero(), SimTime::Millis(900));
  const double second = tape.EnergyJoules(SimTime::Millis(900), SimTime::Seconds(2));
  EXPECT_NEAR(whole, first + second, 1e-12);
}

// Builds a random but reproducible tape: `count` Set calls at strictly
// increasing times, occasionally repeating the previous power so the
// merge path is exercised too.  Returns the final time.
SimTime BuildRandomTape(Rng& rng, PowerTape* tape, int count) {
  SimTime t = SimTime::Micros(rng.UniformInt(0, 100));
  double watts = rng.Uniform(0.1, 3.0);
  for (int i = 0; i < count; ++i) {
    if (rng.NextDouble() < 0.2) {
      // Keep the previous power: the tape must merge, not grow.
      tape->Set(t, watts);
    } else {
      watts = rng.Uniform(0.1, 3.0);
      tape->Set(t, watts);
    }
    t += SimTime::Micros(rng.UniformInt(1, 5'000));
  }
  return t;
}

// Property: over any window, EnergyJoules equals the sum of each stored
// segment's own integral (watts x clipped duration), for random tapes.
TEST(PowerTapePropertyTest, EnergyIsSumOfSegmentIntegrals) {
  Rng rng(0xDC5);
  for (int trial = 0; trial < 40; ++trial) {
    PowerTape tape;
    const SimTime last = BuildRandomTape(rng, &tape, 150);
    const SimTime begin = SimTime::Micros(rng.UniformInt(0, last.micros()));
    const SimTime end = begin + SimTime::Micros(rng.UniformInt(1, 2 * last.micros() + 1));
    const auto& segments = tape.segments();
    double manual = 0.0;
    for (std::size_t i = 0; i < segments.size(); ++i) {
      const SimTime seg_begin = std::max(segments[i].start, begin);
      const SimTime seg_end =
          std::min(i + 1 < segments.size() ? segments[i + 1].start : end, end);
      if (seg_end > seg_begin) {
        manual += segments[i].watts * (seg_end - seg_begin).ToSeconds();
      }
    }
    EXPECT_NEAR(tape.EnergyJoules(begin, end), manual, 1e-9) << "trial " << trial;
  }
}

// Property: re-stating the current power is a no-op — the merged tape has
// the same energy, watts and average over every probe window as if the
// redundant Set calls never happened.
TEST(PowerTapePropertyTest, RedundantSetsDoNotChangeTheRecord) {
  Rng rng(0xDC6);
  for (int trial = 0; trial < 20; ++trial) {
    PowerTape merged;
    PowerTape reference;
    SimTime t = SimTime::Micros(0);
    double watts = rng.Uniform(0.1, 3.0);
    for (int i = 0; i < 100; ++i) {
      watts = rng.NextDouble() < 0.5 ? rng.Uniform(0.1, 3.0) : watts;
      merged.Set(t, watts);
      reference.Set(t, watts);
      // Echo the same power at a later instant into `merged` only.
      t += SimTime::Micros(rng.UniformInt(1, 2'000));
      merged.Set(t, watts);
      t += SimTime::Micros(rng.UniformInt(1, 2'000));
    }
    EXPECT_LE(merged.segments().size(), reference.segments().size());
    for (int probe = 0; probe < 20; ++probe) {
      const SimTime a = SimTime::Micros(rng.UniformInt(0, t.micros()));
      const SimTime b = SimTime::Micros(rng.UniformInt(0, t.micros()));
      EXPECT_NEAR(merged.EnergyJoules(std::min(a, b), std::max(a, b)),
                  reference.EnergyJoules(std::min(a, b), std::max(a, b)), 1e-9);
      EXPECT_EQ(merged.WattsAt(a), reference.WattsAt(a));
    }
  }
}

// The pre-prefix-array implementation of EnergyJoules: a full scan over
// every stored segment.  The prefix-based version promises bitwise-identical
// results (it performs the same additions in the same order), so the
// differential below asserts exact equality, not a tolerance.
double NaiveScanEnergy(const PowerTape& tape, SimTime begin, SimTime end) {
  const auto& segments = tape.segments();
  if (segments.empty() || end <= begin) {
    return 0.0;
  }
  double joules = 0.0;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SimTime seg_begin = std::max(segments[i].start, begin);
    const SimTime seg_end =
        std::min(i + 1 < segments.size() ? segments[i + 1].start : end, end);
    if (seg_end > seg_begin) {
      joules += segments[i].watts * (seg_end - seg_begin).ToSeconds();
    }
  }
  return joules;
}

// Builds a tape that exercises every Set() edge: merges, same-instant
// overwrites (collapse), and collapses that re-merge with the previous
// segment (the prefix_ pop_back path).
SimTime BuildCollapsingTape(Rng& rng, PowerTape* tape, int count) {
  SimTime t = SimTime::Micros(rng.UniformInt(0, 50));
  double watts = rng.Uniform(0.1, 3.0);
  tape->Set(t, watts);
  for (int i = 0; i < count; ++i) {
    const double roll = rng.NextDouble();
    if (roll < 0.25) {
      // Same-instant overwrite, possibly back to the previous power.
      const double prev = tape->segments().size() >= 2
                              ? tape->segments()[tape->segments().size() - 2].watts
                              : watts;
      watts = rng.NextDouble() < 0.4 ? prev : rng.Uniform(0.1, 3.0);
      tape->Set(t, watts);
    } else {
      t += SimTime::Micros(rng.UniformInt(1, 4'000));
      watts = roll < 0.45 ? watts : rng.Uniform(0.1, 3.0);
      tape->Set(t, watts);
    }
  }
  return t;
}

TEST(PowerTapePropertyTest, PrefixEnergyBitwiseMatchesNaiveScan) {
  Rng rng(0xDC8);
  for (int trial = 0; trial < 60; ++trial) {
    PowerTape tape;
    const SimTime last = BuildCollapsingTape(rng, &tape, 120);
    // Probe windows of every shape: from before the tape, starting exactly
    // at the first segment, mid-tape, and past the end.
    const SimTime first = tape.segments().front().start;
    for (int probe = 0; probe < 30; ++probe) {
      const SimTime a = SimTime::Micros(rng.UniformInt(0, last.micros() + 2'000));
      const SimTime b = SimTime::Micros(rng.UniformInt(0, last.micros() + 2'000));
      const SimTime begin = std::min(a, b);
      const SimTime end = std::max(a, b);
      EXPECT_EQ(tape.EnergyJoules(begin, end), NaiveScanEnergy(tape, begin, end))
          << "trial " << trial << " probe " << probe;
      if (end > begin) {
        EXPECT_EQ(tape.AverageWatts(begin, end),
                  NaiveScanEnergy(tape, begin, end) / (end - begin).ToSeconds());
      }
    }
    EXPECT_EQ(tape.EnergyJoules(SimTime::Zero(), last),
              NaiveScanEnergy(tape, SimTime::Zero(), last));
    EXPECT_EQ(tape.EnergyJoules(first, last), NaiveScanEnergy(tape, first, last));
    EXPECT_EQ(tape.EnergyJoules(first, first + SimTime::Micros(1)),
              NaiveScanEnergy(tape, first, first + SimTime::Micros(1)));
  }
}

TEST(PowerTapeTest, PrefixSurvivesSameInstantCollapseAndRemerge) {
  // Deterministic walk through the collapse edge cases, checking the energy
  // record after each mutation (a stale prefix entry would corrupt it).
  PowerTape tape;
  tape.Set(SimTime::Seconds(0), 1.0);
  tape.Set(SimTime::Seconds(1), 2.0);
  tape.Set(SimTime::Seconds(1), 3.0);  // collapse: overwrite open segment
  EXPECT_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2)),
            NaiveScanEnergy(tape, SimTime::Zero(), SimTime::Seconds(2)));
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2)), 4.0);
  tape.Set(SimTime::Seconds(1), 1.0);  // collapse + re-merge with segment 0
  ASSERT_EQ(tape.segments().size(), 1u);
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(2)), 2.0);
  tape.Set(SimTime::Seconds(3), 5.0);  // append after the pop_back path
  EXPECT_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(4)),
            NaiveScanEnergy(tape, SimTime::Zero(), SimTime::Seconds(4)));
  EXPECT_DOUBLE_EQ(tape.EnergyJoules(SimTime::Zero(), SimTime::Seconds(4)), 8.0);
}

TEST(PowerTapeTest, CursorMatchesWattsAtOnSequentialReads) {
  Rng rng(0xDC9);
  PowerTape tape;
  const SimTime last = BuildRandomTape(rng, &tape, 200);
  PowerTape::Cursor cursor(tape);
  SimTime t = SimTime::Zero();
  while (t < last + SimTime::Millis(1)) {
    EXPECT_EQ(cursor.WattsAt(t), tape.WattsAt(t)) << "t=" << t.micros();
    t += SimTime::Micros(rng.UniformInt(0, 700));
  }
}

TEST(PowerTapeTest, CursorResyncsOnBackwardsQueryAndSeesAppends) {
  PowerTape tape;
  tape.Set(SimTime::Seconds(1), 1.0);
  tape.Set(SimTime::Seconds(2), 2.0);
  tape.Set(SimTime::Seconds(3), 3.0);
  PowerTape::Cursor cursor(tape);
  EXPECT_EQ(cursor.WattsAt(SimTime::Millis(500)), 0.0);  // before first
  EXPECT_EQ(cursor.WattsAt(SimTime::Seconds(3)), 3.0);
  EXPECT_EQ(cursor.WattsAt(SimTime::Millis(1'500)), 1.0);  // backwards re-sync
  EXPECT_EQ(cursor.WattsAt(SimTime::Millis(2'500)), 2.0);
  tape.Set(SimTime::Seconds(4), 4.0);  // appended after cursor creation
  EXPECT_EQ(cursor.WattsAt(SimTime::Seconds(5)), 4.0);
  EXPECT_EQ(cursor.WattsAt(SimTime::Millis(100)), 0.0);  // backwards to before first
  EXPECT_EQ(cursor.WattsAt(SimTime::Seconds(2)), 2.0);
}

// The paper's 5 kHz DAQ pipeline, fed by random tapes with noise disabled,
// converges on the tape's analytic energy as the sample rate rises: the
// rectangle-rule error shrinks roughly linearly with the sample period.
TEST(PowerTapePropertyTest, DaqSamplingConvergesOnAnalyticEnergy) {
  Rng rng(0xDC7);
  for (int trial = 0; trial < 5; ++trial) {
    PowerTape tape;
    // Segment lengths ~2.5 ms on average, a realistic quantum-scale load.
    SimTime t = SimTime::Micros(0);
    for (int i = 0; i < 400; ++i) {
      tape.Set(t, rng.Uniform(0.1, 2.0));
      t += SimTime::Micros(rng.UniformInt(500, 5'000));
    }
    const SimTime begin = SimTime::Zero();
    const SimTime end = t;
    const double exact = tape.EnergyJoules(begin, end);
    ASSERT_GT(exact, 0.0);

    double previous_error = 0.0;
    bool first = true;
    for (const double hz : {5'000.0, 50'000.0, 500'000.0}) {
      DaqConfig config;
      config.sample_hz = hz;
      config.noise_lsb = 0.0;  // isolate the sampling error from ADC noise
      Daq daq(config);
      const double measured = daq.MeasureEnergyJoules(tape, begin, end);
      const double error = std::abs(measured - exact) / exact;
      if (first) {
        // The paper's 5 kHz rig lands within a few percent on quantum-scale
        // power activity (ADC quantisation included).
        EXPECT_LT(error, 0.05) << "trial " << trial;
        first = false;
      } else {
        // Each 10x rate increase must not make the estimate worse; at the
        // top rate the residual floor is ADC quantisation, not sampling.
        EXPECT_LT(error, std::max(previous_error, 2e-3)) << "hz=" << hz;
      }
      previous_error = error;
    }
    EXPECT_LT(previous_error, 2e-3);
  }
}

}  // namespace
}  // namespace dcs
