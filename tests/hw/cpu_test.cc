#include "src/hw/cpu.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(CpuTest, StartsAtRequestedStepNapping) {
  Cpu cpu(5);
  EXPECT_EQ(cpu.step(), 5);
  EXPECT_EQ(cpu.state(), ExecState::kNap);
  EXPECT_FALSE(cpu.Stalled(SimTime::Zero()));
}

TEST(CpuTest, DefaultStartsAtTopStep) {
  Cpu cpu;
  EXPECT_EQ(cpu.step(), ClockTable::MaxStep());
  EXPECT_NEAR(cpu.frequency_mhz(), 206.4, 0.1);
}

TEST(CpuTest, InitialStepClamped) {
  EXPECT_EQ(Cpu(-2).step(), 0);
  EXPECT_EQ(Cpu(99).step(), 10);
}

TEST(CpuTest, ClockChangeStallsFor200us) {
  Cpu cpu(10);
  const SimTime now = SimTime::Millis(50);
  const SimTime stall_end = cpu.BeginClockChange(0, now);
  EXPECT_EQ(stall_end, now + SimTime::Micros(200));
  EXPECT_EQ(cpu.step(), 0);
  EXPECT_EQ(cpu.state(), ExecState::kStalled);
  EXPECT_TRUE(cpu.Stalled(now + SimTime::Micros(199)));
  EXPECT_FALSE(cpu.Stalled(stall_end));
}

TEST(CpuTest, StallIndependentOfDistance) {
  // "Clock scaling took approximately 200 microseconds, independent of the
  // starting or target speed."
  Cpu a(10);
  Cpu b(10);
  const SimTime now = SimTime::Zero();
  EXPECT_EQ(a.BeginClockChange(9, now) - now, b.BeginClockChange(0, now) - now);
}

TEST(CpuTest, NoOpChangeReturnsNowWithoutStall) {
  Cpu cpu(4);
  const SimTime now = SimTime::Millis(1);
  EXPECT_EQ(cpu.BeginClockChange(4, now), now);
  EXPECT_EQ(cpu.clock_changes(), 0);
  EXPECT_NE(cpu.state(), ExecState::kStalled);
}

TEST(CpuTest, ChangeCountsAndTotalStallAccumulate) {
  Cpu cpu(10);
  cpu.BeginClockChange(0, SimTime::Millis(0));
  cpu.BeginClockChange(10, SimTime::Millis(10));
  cpu.BeginClockChange(5, SimTime::Millis(20));
  EXPECT_EQ(cpu.clock_changes(), 3);
  EXPECT_EQ(cpu.total_stall(), SimTime::Micros(600));
}

TEST(CpuTest, TargetStepClamped) {
  Cpu cpu(5);
  cpu.BeginClockChange(42, SimTime::Zero());
  EXPECT_EQ(cpu.step(), 10);
}

TEST(CpuTest, SetStateTransitions) {
  Cpu cpu(5);
  cpu.SetState(ExecState::kBusy);
  EXPECT_EQ(cpu.state(), ExecState::kBusy);
  cpu.SetState(ExecState::kNap);
  EXPECT_EQ(cpu.state(), ExecState::kNap);
}

}  // namespace
}  // namespace dcs
