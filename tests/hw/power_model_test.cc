#include "src/hw/power_model.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

constexpr double kHighV = 1.50;
constexpr double kLowV = 1.23;

TEST(PowerModelTest, BusyPowerIncreasesWithFrequency) {
  PowerModel model;
  for (int k = 1; k < kNumClockSteps; ++k) {
    EXPECT_GT(model.ProcessorWatts(ExecState::kBusy, k, kHighV),
              model.ProcessorWatts(ExecState::kBusy, k - 1, kHighV));
  }
}

TEST(PowerModelTest, BusyPowerIncreasesWithVoltage) {
  PowerModel model;
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_GT(model.ProcessorWatts(ExecState::kBusy, k, kHighV),
              model.ProcessorWatts(ExecState::kBusy, k, kLowV));
  }
}

TEST(PowerModelTest, VoltageDropYieldsRoughly15PercentProcessorReduction) {
  // "our measurements indicate the voltage reduction yields about a 15%
  // reduction in the power consumed by the processor" (paper section 2.3).
  PowerModel model;
  const double high = model.ProcessorWatts(ExecState::kBusy, 5, kHighV);
  const double low = model.ProcessorWatts(ExecState::kBusy, 5, kLowV);
  const double reduction = 1.0 - low / high;
  EXPECT_GT(reduction, 0.10);
  EXPECT_LT(reduction, 0.20);
}

TEST(PowerModelTest, PowerIsNonLinearInFrequency) {
  // Martin's observation (cited by the paper): halving frequency does not
  // halve processor power, because of the static residue.
  PowerModel model;
  const double full = model.ProcessorWatts(ExecState::kBusy, 10, kHighV);
  const double half_freq = model.ProcessorWatts(ExecState::kBusy, 3, kHighV);  // 103.2 MHz
  EXPECT_GT(half_freq, full * 0.5);
}

TEST(PowerModelTest, NapDrawsMuchLessThanBusy) {
  PowerModel model;
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_LT(model.ProcessorWatts(ExecState::kNap, k, kHighV),
              0.35 * model.ProcessorWatts(ExecState::kBusy, k, kHighV));
  }
}

TEST(PowerModelTest, NapPowerScalesWithFrequency) {
  // Nap stalls the pipeline but the clock tree keeps toggling.
  PowerModel model;
  EXPECT_GT(model.ProcessorWatts(ExecState::kNap, 10, kHighV),
            2.0 * model.ProcessorWatts(ExecState::kNap, 0, kHighV));
}

TEST(PowerModelTest, StallPowerIsFlat) {
  PowerModel model;
  EXPECT_DOUBLE_EQ(model.ProcessorWatts(ExecState::kStalled, 0, kHighV),
                   model.ProcessorWatts(ExecState::kStalled, 10, kLowV));
}

TEST(PowerModelTest, SystemAddsPeripheralRail) {
  PowerModel model;
  const PeripheralState display_only{true, false};
  const double system = model.SystemWatts(ExecState::kBusy, 10, kHighV, display_only);
  const double proc = model.ProcessorWatts(ExecState::kBusy, 10, kHighV);
  EXPECT_NEAR(system - proc, model.params().peripherals_mw * 1e-3, 1e-9);
}

TEST(PowerModelTest, AudioAddsItsDraw) {
  PowerModel model;
  const double with_audio =
      model.SystemWatts(ExecState::kNap, 5, kHighV, PeripheralState{true, true});
  const double without =
      model.SystemWatts(ExecState::kNap, 5, kHighV, PeripheralState{true, false});
  EXPECT_NEAR(with_audio - without, model.params().audio_mw * 1e-3, 1e-9);
}

TEST(PowerModelTest, DisplayOffUsesReducedRail) {
  PowerModel model;
  const double on = model.SystemWatts(ExecState::kNap, 5, kHighV, PeripheralState{true, false});
  const double off =
      model.SystemWatts(ExecState::kNap, 5, kHighV, PeripheralState{false, false});
  EXPECT_GT(on, off);
}

TEST(PowerModelTest, BusScaledPeripheralsGrowWithFrequency) {
  PowerModelParams params;
  params.peripherals_bus_mw_per_mhz = 4.0;
  PowerModel model(params);
  const PeripheralState periph{false, false};
  // Subtract the processor's own frequency-dependent draw so only the
  // bus-scaled peripheral term remains.
  const double slow = model.SystemWatts(ExecState::kNap, 0, kHighV, periph) -
                      model.ProcessorWatts(ExecState::kNap, 0, kHighV);
  const double fast = model.SystemWatts(ExecState::kNap, 10, kHighV, periph) -
                      model.ProcessorWatts(ExecState::kNap, 10, kHighV);
  EXPECT_NEAR(fast - slow,
              4.0 * (ClockTable::FrequencyMhz(10) - ClockTable::FrequencyMhz(0)) * 1e-3,
              1e-9);
}

TEST(PowerModelTest, Table2CalibrationBusyPowerAt206) {
  // The calibration puts busy processor power at 206.4/1.5 V near 790 mW
  // (see DESIGN.md); guard the constant against accidental drift.
  PowerModel model;
  EXPECT_NEAR(model.ProcessorWatts(ExecState::kBusy, 10, kHighV), 0.79, 0.05);
}

}  // namespace
}  // namespace dcs
