#include "src/hw/clock_table.h"

#include <gtest/gtest.h>

namespace dcs {
namespace {

// The paper's Table 3 lists these frequencies (MHz) for the SA-1100.
constexpr double kPaperFrequencies[kNumClockSteps] = {
    59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2, 176.9, 191.7, 206.4};

TEST(ClockTableTest, ElevenSteps) { EXPECT_EQ(kNumClockSteps, 11); }

TEST(ClockTableTest, MatchesPaperFrequenciesToTenthMhz) {
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_NEAR(ClockTable::FrequencyMhz(k), kPaperFrequencies[k], 0.06)
        << "step " << k;
  }
}

TEST(ClockTableTest, FrequenciesDerivedFromCrystal) {
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_DOUBLE_EQ(ClockTable::FrequencyMhz(k), (16 + 4 * k) * kCrystalMhz);
  }
}

TEST(ClockTableTest, FrequenciesStrictlyIncreasing) {
  for (int k = 1; k < kNumClockSteps; ++k) {
    EXPECT_GT(ClockTable::FrequencyMhz(k), ClockTable::FrequencyMhz(k - 1));
  }
}

TEST(ClockTableTest, ClampBounds) {
  EXPECT_EQ(ClockTable::Clamp(-3), 0);
  EXPECT_EQ(ClockTable::Clamp(0), 0);
  EXPECT_EQ(ClockTable::Clamp(10), 10);
  EXPECT_EQ(ClockTable::Clamp(42), 10);
}

TEST(ClockTableTest, OutOfRangeStepsClampInFrequencyLookups) {
  EXPECT_DOUBLE_EQ(ClockTable::FrequencyMhz(-1), ClockTable::FrequencyMhz(0));
  EXPECT_DOUBLE_EQ(ClockTable::FrequencyMhz(99), ClockTable::FrequencyMhz(10));
}

TEST(ClockTableTest, StepForAtLeastMhzExactAndBetween) {
  EXPECT_EQ(ClockTable::StepForAtLeastMhz(58.9), 0);  // step 0 is 58.9824 MHz
  EXPECT_EQ(ClockTable::StepForAtLeastMhz(60.0), 1);
  EXPECT_EQ(ClockTable::StepForAtLeastMhz(132.0), 5);
  EXPECT_EQ(ClockTable::StepForAtLeastMhz(132.8), 6);
  EXPECT_EQ(ClockTable::StepForAtLeastMhz(0.0), 0);
}

TEST(ClockTableTest, StepForAtLeastMhzSaturatesAtTop) {
  EXPECT_EQ(ClockTable::StepForAtLeastMhz(500.0), 10);
}

TEST(ClockTableTest, NearestStep) {
  EXPECT_EQ(ClockTable::NearestStep(59.0), 0);
  EXPECT_EQ(ClockTable::NearestStep(65.0), 0);
  EXPECT_EQ(ClockTable::NearestStep(67.0), 1);
  EXPECT_EQ(ClockTable::NearestStep(206.4), 10);
  EXPECT_EQ(ClockTable::NearestStep(1000.0), 10);
}

TEST(ClockTableTest, FrequencyHz) {
  EXPECT_DOUBLE_EQ(ClockTable::FrequencyHz(10), ClockTable::FrequencyMhz(10) * 1e6);
}

TEST(ClockTableTest, SwitchStallIs200Microseconds) {
  EXPECT_EQ(kClockSwitchStall, SimTime::Micros(200));
}

TEST(ClockTableTest, FrequenciesArrayMatchesLookups) {
  const auto& freqs = ClockTable::Frequencies();
  for (int k = 0; k < kNumClockSteps; ++k) {
    EXPECT_DOUBLE_EQ(freqs[static_cast<std::size_t>(k)], ClockTable::FrequencyMhz(k));
  }
}

}  // namespace
}  // namespace dcs
