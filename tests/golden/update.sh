#!/bin/sh
# Regenerates the golden stdout captures checked by
# tests/integration/golden_test.cc.
#
# Usage:  tests/golden/update.sh [BUILD_DIR]     (default: build)
#
# Run it from the repository root after an intentional output change, then
# review the diff like any other code change:
#
#   cmake --build build -j
#   tests/golden/update.sh build
#   git diff tests/golden/
#
# The benches write progress to stderr only, and every number in their stdout
# derives from simulated state, so the captures are byte-identical for any
# --threads value (golden_test.cc re-runs them with --threads=2 to prove it).
set -eu

build_dir="${1:-build}"
golden_dir="$(cd "$(dirname "$0")" && pwd)"

for bench in tab1_avg9_actions tab2_energy_summary fig9_utilization_vs_freq; do
  binary="$build_dir/bench/$bench"
  if [ ! -x "$binary" ]; then
    echo "error: $binary not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  echo "regenerating $bench.txt" >&2
  "$binary" --threads=1 > "$golden_dir/$bench.txt"
done
echo "done — review with: git diff tests/golden/" >&2
