#!/bin/sh
# Regenerates the golden stdout captures checked by
# tests/integration/golden_test.cc.
#
# Usage:  tests/golden/update.sh [BUILD_DIR]     (default: build)
#
# Run it from the repository root after an intentional output change, then
# review the diff like any other code change:
#
#   cmake --build build -j
#   tests/golden/update.sh build
#   git diff tests/golden/
#
# The benches write progress to stderr only, and every number in their stdout
# derives from simulated state, so the captures are byte-identical for any
# --threads value (golden_test.cc re-runs them with --threads=2 to prove it).
#
# Perf PRs: goldens are the spec.  A change that only optimises the hot path
# (vectorised sampling, dispatch mechanics, allocators) must leave every file
# in this directory byte-identical — running this script must produce an
# empty `git diff tests/golden/`.  If an "optimisation" changes a golden, it
# changed observable behaviour: fix the optimisation, do not regenerate.
set -eu

build_dir="${1:-build}"
golden_dir="$(cd "$(dirname "$0")" && pwd)"

for bench in tab1_avg9_actions tab2_energy_summary fig9_utilization_vs_freq \
             fig8_best_policy_trace server_slo competitive_ratio; do
  binary="$build_dir/bench/$bench"
  if [ ! -x "$binary" ]; then
    echo "error: $binary not built (run: cmake --build $build_dir -j)" >&2
    exit 1
  fi
  extra_args=""
  case "$bench" in
    server_slo|competitive_ratio) extra_args="--quick" ;;
  esac
  echo "regenerating $bench.txt" >&2
  "$binary" --threads=1 $extra_args > "$golden_dir/$bench.txt"
done

# Observability artifacts: commit the metrics JSON verbatim; the Chrome
# traces are large, so only their digests go into obs_artifacts.sha256.
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
: > "$golden_dir/obs_artifacts.sha256"
regen_artifacts() {
  bench="$1"
  artifact="$2"
  shift 2
  echo "regenerating $artifact artifacts" >&2
  "$build_dir/bench/$bench" --threads=1 "$@" \
      --trace-out="$tmp_dir/$artifact.trace.json" \
      --metrics-out="$golden_dir/$artifact.metrics.json" > /dev/null
  (cd "$tmp_dir" && sha256sum "$artifact.trace.json") >> "$golden_dir/obs_artifacts.sha256"
}
regen_artifacts fig8_best_policy_trace fig8_past_peg_peg
regen_artifacts tab2_energy_summary tab2_energy_summary
regen_artifacts server_slo server_slo_quick --quick
echo "done — review with: git diff tests/golden/" >&2
