// Satellite differential tests: a zero-fault plan must be invisible.
//
// Two layers:
//   1. Component level — the same hardware/kernel stack run twice, once with
//      no injector and once with a zero-probability injector bound to the
//      Itsy, the kernel and the DAQ.  Every observable (power tape energy,
//      DAQ sample vector, recorded series, event counts) must be
//      byte-identical: the zero plan routed *through* the injector may not
//      perturb a single draw or event.
//   2. Experiment level — `faults` specs "", "none" and "seed=123" (a seed
//      with no probabilities is still inactive) all produce identical
//      ExperimentResults across the four app bundles.

#include <ios>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/governor_registry.h"
#include "src/daq/daq.h"
#include "src/exp/experiment.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/apps.h"
#include "src/workload/deadline_monitor.h"
#include "tests/fault/fingerprint.h"

namespace dcs {
namespace {

constexpr std::uint64_t kSeed = 7;

// Runs a 3-second MPEG experiment stack by hand and fingerprints everything
// observable.  With `bind_zero_injector`, a FaultPlan{} injector is bound to
// all three consumers (Itsy, Kernel, Daq) exactly as RunExperiment would
// bind an active one.
std::string RunStack(bool bind_zero_injector) {
  Simulator sim;
  Itsy itsy(sim, ItsyConfig{});
  KernelConfig kernel_config;
  kernel_config.rng_seed ^= kSeed * 0x9e3779b97f4a7c15ULL;
  Kernel kernel(sim, itsy, kernel_config);

  std::string error;
  std::unique_ptr<ClockPolicy> governor = MakeGovernor("PAST-peg-peg-93-98-vs", &error);
  EXPECT_NE(governor, nullptr) << error;
  kernel.InstallPolicy(governor.get());

  std::optional<FaultInjector> injector;
  if (bind_zero_injector) {
    injector.emplace(FaultPlan{}, kSeed);
    itsy.BindFaults(&*injector);
    kernel.BindFaults(&*injector);
  }

  DeadlineMonitor deadlines;
  AppBundle bundle = MakeApp("mpeg", &deadlines, kSeed);
  for (auto& task : bundle.tasks) {
    kernel.AddTask(std::move(task));
  }
  kernel.Start();
  sim.RunUntil(SimTime::Seconds(3));
  itsy.SyncBattery();

  DaqConfig daq_config;
  daq_config.seed ^= kSeed * 0x9e3779b97f4a7c15ULL;
  Daq daq(daq_config);
  if (injector) {
    daq.BindFaults(&*injector);
  }
  const std::vector<double> samples =
      daq.SamplePowerWatts(itsy.tape(), SimTime::Zero(), sim.Now());

  if (injector) {
    EXPECT_EQ(injector->injected_total(), 0u);
    EXPECT_EQ(daq.dropped_samples(), 0u);
    EXPECT_EQ(kernel.transition_retries(), 0u);
    EXPECT_EQ(itsy.brownouts(), 0);
  }

  std::ostringstream os;
  os << std::hexfloat;
  os << itsy.tape().EnergyJoules(SimTime::Zero(), sim.Now()) << '|'
     << daq.EnergyJoules(samples) << '|' << itsy.clock_changes() << '|'
     << itsy.voltage_transitions() << '|' << itsy.total_stall().nanos() << '|'
     << kernel.quanta_elapsed() << '|' << sim.events_executed() << '|'
     << sim.events_cancelled() << '|' << deadlines.TotalEvents() << '|'
     << deadlines.TotalMissed() << '\n';
  for (const double w : samples) {
    os << w << ',';
  }
  os << '\n';
  for (const char* series : {"utilization", "freq_mhz", "core_volts"}) {
    os << series << ':';
    const TraceSeries* s = kernel.sink().Find(series);
    if (s != nullptr) {
      for (const TracePoint& p : s->points()) {
        os << p.at.nanos() << '@' << p.value << ',';
      }
    }
    os << '\n';
  }
  return os.str();
}

TEST(FaultDifferentialTest, ZeroPlanThroughInjectorMatchesNoInjector) {
  const std::string without = RunStack(/*bind_zero_injector=*/false);
  const std::string with = RunStack(/*bind_zero_injector=*/true);
  EXPECT_EQ(without, with);
}

TEST(FaultDifferentialTest, InactiveFaultSpecsAreEquivalentAcrossApps) {
  for (const char* app : {"mpeg", "web", "chess", "editor"}) {
    ExperimentConfig config;
    config.app = app;
    config.governor = "PAST-peg-peg-93-98";
    config.seed = 11;
    config.duration = SimTime::Seconds(2);

    config.faults = "";
    const std::string unset = Fingerprint(RunExperiment(config));
    config.faults = "none";
    const std::string none = Fingerprint(RunExperiment(config));
    // A seed alone sets no probabilities: still an inactive plan.
    config.faults = "seed=123";
    const std::string seed_only = Fingerprint(RunExperiment(config));

    EXPECT_EQ(unset, none) << app;
    EXPECT_EQ(unset, seed_only) << app;

    const ExperimentResult probe = RunExperiment(config);
    EXPECT_FALSE(probe.faults.enabled) << app;
    EXPECT_EQ(probe.faults.injected_total, 0u) << app;
    // No fault.* or invariant metrics may appear on the unfaulted path.
    EXPECT_EQ(probe.metrics.FindCounter("fault.injected_total"), nullptr) << app;
    EXPECT_EQ(probe.metrics.FindCounter("fault.invariant_checks"), nullptr) << app;
  }
}

}  // namespace
}  // namespace dcs
