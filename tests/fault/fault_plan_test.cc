// FaultPlan spec-grammar tests: accepted forms, left-to-right override
// order, storm preset, and every rejection path.

#include "src/fault/fault_plan.h"

#include <string>

#include <gtest/gtest.h>

namespace dcs {
namespace {

TEST(FaultPlanTest, DefaultIsInactive) {
  FaultPlan plan;
  EXPECT_FALSE(plan.Active());
  EXPECT_EQ(plan.seed, 1u);
  for (int c = 0; c < kNumFaultClasses; ++c) {
    EXPECT_EQ(plan.p(static_cast<FaultClass>(c)), 0.0);
  }
}

TEST(FaultPlanTest, EmptyAndNoneParseToInactive) {
  for (const char* spec : {"", "none", "NONE", "  none  "}) {
    FaultPlan plan;
    std::string error;
    ASSERT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << spec << ": " << error;
    EXPECT_FALSE(plan.Active()) << spec;
  }
}

TEST(FaultPlanTest, PerClassProbabilitiesAndSeed) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("tick-jitter=20%,daq-drop=0.05,seed=9", &plan));
  EXPECT_TRUE(plan.Active());
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_DOUBLE_EQ(plan.p(FaultClass::kTickJitter), 0.20);
  EXPECT_DOUBLE_EQ(plan.p(FaultClass::kDaqDrop), 0.05);
  EXPECT_EQ(plan.p(FaultClass::kClockFail), 0.0);
}

TEST(FaultPlanTest, EveryClassNameParses) {
  for (int c = 0; c < kNumFaultClasses; ++c) {
    const std::string spec = std::string(FaultClassName(static_cast<FaultClass>(c))) + "=1%";
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::Parse(spec, &plan)) << spec;
    EXPECT_DOUBLE_EQ(plan.p(static_cast<FaultClass>(c)), 0.01) << spec;
  }
}

TEST(FaultPlanTest, CaseAndWhitespaceInsensitive) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse(" Tick-Jitter = 5% , SEED = 4 ", &plan));
  EXPECT_DOUBLE_EQ(plan.p(FaultClass::kTickJitter), 0.05);
  EXPECT_EQ(plan.seed, 4u);
}

TEST(FaultPlanTest, StormPresetScalesWithIntensity) {
  const FaultPlan full = FaultPlan::Storm(1.0);
  const FaultPlan half = FaultPlan::Storm(0.5);
  EXPECT_TRUE(full.Active());
  for (int c = 0; c < kNumFaultClasses; ++c) {
    const auto cls = static_cast<FaultClass>(c);
    EXPECT_GT(full.p(cls), 0.0) << FaultClassName(cls);
    EXPECT_DOUBLE_EQ(half.p(cls), full.p(cls) * 0.5) << FaultClassName(cls);
  }
  EXPECT_FALSE(FaultPlan::Storm(0.0).Active());
}

TEST(FaultPlanTest, ItemsApplyLeftToRight) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("storm=0.5,brownout=0", &plan));
  EXPECT_EQ(plan.p(FaultClass::kBrownout), 0.0);
  EXPECT_GT(plan.p(FaultClass::kTickJitter), 0.0);

  // And the reverse order: storm wins.
  ASSERT_TRUE(FaultPlan::Parse("brownout=0,storm=0.5", &plan));
  EXPECT_GT(plan.p(FaultClass::kBrownout), 0.0);
}

TEST(FaultPlanTest, StormPreservesEarlierSeed) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("seed=42,storm=1", &plan));
  EXPECT_EQ(plan.seed, 42u);
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus-class=0.5",   // unknown class
      "tick-jitter",       // missing '='
      "tick-jitter=",      // missing value
      "tick-jitter=1.5",   // probability > 1
      "tick-jitter=150%",  // percentage > 100
      "tick-jitter=-0.1",  // negative
      "tick-jitter=abc",   // not a number
      "seed=abc",          // non-numeric seed
      "seed=-3",           // negative seed
      "storm=2",           // intensity > 1
      ",,",                // empty items
      "none,tick-jitter=1",  // "none" only stands alone
  };
  for (const char* spec : bad) {
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(FaultPlan::Parse(spec, &plan, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
    // A failed parse must leave the plan in its default (inactive) state.
    EXPECT_FALSE(plan.Active()) << spec;
    EXPECT_EQ(plan.seed, 1u) << spec;
  }
}

TEST(FaultPlanTest, DescribeRoundTrips) {
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("storm=0.7,clock-fail=2%,seed=19", &plan));
  FaultPlan reparsed;
  ASSERT_TRUE(FaultPlan::Parse(plan.Describe(), &reparsed));
  EXPECT_EQ(reparsed.seed, plan.seed);
  // Describe prints %g (6 significant digits), so allow a sub-ulp-of-%g slop.
  for (int c = 0; c < kNumFaultClasses; ++c) {
    const auto cls = static_cast<FaultClass>(c);
    EXPECT_NEAR(reparsed.p(cls), plan.p(cls), 1e-12) << FaultClassName(cls);
  }
}

}  // namespace
}  // namespace dcs
