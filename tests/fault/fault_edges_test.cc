// Workload/experiment edge cases plus the brownout-cancellation regression:
//   * unknown app names and malformed fault specs throw cleanly;
//   * an empty AppBundle runs (the kernel idles for the duration);
//   * the DeadlineMonitor keeps consistent accounts under injected tick
//     jitter;
//   * a superseding rail request cancels the armed mid-settle brownout
//     (the stale event used to fire after the rail was back at 1.5 V);
//   * a permanently failing clock keeps the kernel retrying with bounded
//     backoff, never wedging or violating invariants.

#include <stdexcept>

#include <gtest/gtest.h>

#include "src/exp/experiment.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariants.h"
#include "src/hw/itsy.h"
#include "src/sim/simulator.h"
#include "src/workload/apps.h"
#include "src/workload/deadline_monitor.h"

namespace dcs {
namespace {

TEST(FaultEdgesTest, UnknownAppThrowsThroughRunExperiment) {
  ExperimentConfig config;
  config.app = "quake";
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
}

TEST(FaultEdgesTest, MalformedFaultSpecThrows) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.duration = SimTime::Millis(100);
  config.faults = "tick-jitter=150%";
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
  config.faults = "gamma-ray=0.5";
  EXPECT_THROW(RunExperiment(config), std::invalid_argument);
}

TEST(FaultEdgesTest, EmptyBundleIdlesForTheDuration) {
  ExperimentConfig config;
  config.governor = "PAST-peg-peg-93-98";
  DeadlineMonitor deadlines;
  const ExperimentResult result = RunExperiment(config, AppBundle{}, deadlines);
  // bundle.duration is zero, so the run lasts the experiment's 2 s pad.
  EXPECT_EQ(result.duration, SimTime::Seconds(2));
  EXPECT_GT(result.quanta, 0u);
  EXPECT_GT(result.energy_joules, 0.0);  // idle still burns power
  EXPECT_EQ(result.deadline_events, 0);
  // Only scheduler bookkeeping runs: utilization is a sliver, not real work.
  EXPECT_LT(result.avg_utilization, 0.01);
}

TEST(FaultEdgesTest, EmptyBundleSurvivesAFaultStorm) {
  ExperimentConfig config;
  config.governor = "PAST-peg-peg-93-98-vs";
  config.faults = "storm=1,seed=5";
  DeadlineMonitor deadlines;
  const ExperimentResult result = RunExperiment(config, AppBundle{}, deadlines);
  EXPECT_TRUE(result.faults.enabled);
  EXPECT_GT(result.faults.injected_total, 0u);
  EXPECT_EQ(result.faults.invariant_violations, 0u) << result.faults.violations.front();
}

TEST(FaultEdgesTest, DeadlineMonitorStaysConsistentUnderTickJitter) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "deadline";
  config.seed = 3;
  config.duration = SimTime::Seconds(2);
  config.faults = "tick-jitter=1,tick-miss=0.1,seed=3";
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.deadline_events, 0);
  EXPECT_LE(result.deadline_misses, result.deadline_events);
  EXPECT_GE(result.worst_lateness, SimTime::Zero());
  EXPECT_GT(result.faults.injected.at("tick-jitter"), 0u);
  EXPECT_EQ(result.faults.invariant_violations, 0u)
      << result.faults.violations.front();
}

// --- Brownout cancellation regression (the satellite bugfix) ---------------

// Arms a certain brownout by requesting the low rail at a 1.23 V-safe step.
void ArmBrownout(Simulator& sim, Itsy& itsy, FaultInjector& injector) {
  itsy.BindFaults(&injector);
  itsy.SetClockStep(5);
  ASSERT_TRUE(itsy.SetVoltage(CoreVoltage::kLow));
  ASSERT_TRUE(itsy.brownout_pending());
  (void)sim;
}

TEST(FaultEdgesTest, BrownoutFiresWhenNotSuperseded) {
  Simulator sim;
  Itsy itsy(sim);
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("brownout=1", &plan));
  FaultInjector injector(plan, 1);
  ArmBrownout(sim, itsy, injector);
  sim.RunUntil(SimTime::Millis(1));
  EXPECT_EQ(itsy.brownouts(), 1);
  EXPECT_FALSE(itsy.brownout_pending());
  EXPECT_EQ(itsy.step(), 5 - FaultInjector::kBrownoutStepDrop);
}

TEST(FaultEdgesTest, RailRaiseCancelsArmedBrownout) {
  Simulator sim;
  Itsy itsy(sim);
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("brownout=1", &plan));
  FaultInjector injector(plan, 1);
  ArmBrownout(sim, itsy, injector);
  // The policy changes its mind before the settle midpoint: back to 1.5 V.
  ASSERT_TRUE(itsy.SetVoltage(CoreVoltage::kHigh));
  EXPECT_FALSE(itsy.brownout_pending());
  sim.RunUntil(SimTime::Millis(1));
  // The stale event must not fire: no forced step-down ever lands.
  EXPECT_EQ(itsy.brownouts(), 0);
  EXPECT_EQ(itsy.step(), 5);
}

TEST(FaultEdgesTest, UnsafeStepRequestCancelsArmedBrownout) {
  Simulator sim;
  Itsy itsy(sim);
  FaultPlan plan;
  ASSERT_TRUE(FaultPlan::Parse("brownout=1", &plan));
  FaultInjector injector(plan, 1);
  ArmBrownout(sim, itsy, injector);
  // A step above kMaxStepAtLowVoltage raises the rail implicitly; that too
  // supersedes the in-flight down-settle.
  itsy.SetClockStep(9);
  EXPECT_FALSE(itsy.brownout_pending());
  sim.RunUntil(SimTime::Millis(1));
  EXPECT_EQ(itsy.brownouts(), 0);
  EXPECT_EQ(itsy.step(), 9);
}

// --- Bounded retry under a permanently failing clock ------------------------

TEST(FaultEdgesTest, PermanentClockFailureRetriesBoundedly) {
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "PAST-peg-peg-93-98";
  config.seed = 2;
  config.duration = SimTime::Seconds(2);
  config.faults = "clock-fail=1,seed=2";
  const ExperimentResult result = RunExperiment(config);
  // Every transition fails: the step never leaves the initial (top) step...
  EXPECT_EQ(result.clock_changes, 0);
  EXPECT_GT(result.step_residency[kNumClockSteps - 1], 0.99);
  // ...but the kernel keeps retrying with backoff instead of giving up or
  // wedging, and the invariants hold throughout.
  EXPECT_GT(result.faults.transition_retries, 0u);
  EXPECT_GT(result.faults.injected.at("clock-fail"), 0u);
  EXPECT_EQ(result.faults.invariant_violations, 0u)
      << result.faults.violations.front();
}

}  // namespace
}  // namespace dcs
