// Property/stress suite: randomized fault plans against every registered
// governor spec and all four application bundles.
//
// Three properties, each the load-bearing guarantee of the fault subsystem:
//   1. Invariants hold — no storm intensity, governor or app combination
//      drives the simulated machine into an inconsistent state.
//   2. Reruns of the same seed are byte-identical (same fingerprint, same
//      injection counts).
//   3. The sweep engine's thread count is invisible: --threads=1 and
//      --threads=4 assemble identical result vectors even when every job is
//      under fault load.
//
// The fault plans are "randomized" the only way a deterministic suite can
// be: derived from a fixed-seed Rng, so a failure always reproduces.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/governor_registry.h"
#include "src/exp/experiment.h"
#include "src/exp/sweep.h"
#include "src/fault/fault_plan.h"
#include "src/sim/rng.h"
#include "tests/fault/fingerprint.h"

namespace dcs {
namespace {

constexpr const char* kApps[] = {"mpeg", "web", "chess", "editor"};

// One randomized fault spec per grid point, reproducible from the fixed
// suite seed.  Mixes full storms with single-class plans so both the "all
// fault classes interleaved" and the "one class isolated" regimes are hit.
// Single-class plans draw only from classes exercised on every run (ticks
// and DAQ samples always happen; clock/rail transitions depend on the
// governor, so a "none" run might legitimately never consult those).
std::string RandomFaultSpec(Rng& rng) {
  char spec[64];
  const std::uint64_t seed = static_cast<std::uint64_t>(rng.UniformInt(1, 1 << 20));
  if (rng.Bernoulli(0.5)) {
    std::snprintf(spec, sizeof(spec), "storm=%.2f,seed=%llu", rng.Uniform(0.2, 1.0),
                  static_cast<unsigned long long>(seed));
  } else {
    constexpr FaultClass kAlwaysDrawn[] = {FaultClass::kTickJitter, FaultClass::kTickMiss,
                                           FaultClass::kDaqDrop, FaultClass::kMemSpike};
    const FaultClass cls = kAlwaysDrawn[rng.UniformInt(0, 3)];
    std::snprintf(spec, sizeof(spec), "%s=%.2f,seed=%llu", FaultClassName(cls),
                  rng.Uniform(0.1, 0.8), static_cast<unsigned long long>(seed));
  }
  return spec;
}

std::vector<ExperimentConfig> StormGrid() {
  Rng rng(0xfa111751u);
  std::vector<ExperimentConfig> configs;
  int i = 0;
  // The full registry surface (AllGovernorSpecs), not a convenience subset.
  for (const std::string& governor : AllGovernorSpecs()) {
    ExperimentConfig config;
    config.app = kApps[i % (sizeof(kApps) / sizeof(kApps[0]))];
    config.governor = governor;
    config.seed = static_cast<std::uint64_t>(13 + i);
    config.duration = SimTime::Seconds(2);
    config.faults = RandomFaultSpec(rng);
    configs.push_back(config);
    ++i;
  }
  return configs;
}

std::vector<std::string> Fingerprints(const std::vector<ExperimentResult>& results) {
  std::vector<std::string> prints;
  prints.reserve(results.size());
  for (const ExperimentResult& r : results) {
    prints.push_back(Fingerprint(r));
  }
  return prints;
}

TEST(FaultStormTest, InvariantsHoldForEveryGovernorUnderRandomizedFaults) {
  const std::vector<ExperimentConfig> configs = StormGrid();
  SweepOptions options;
  options.threads = 4;
  const std::vector<ExperimentResult> results = RunSweep(configs, options);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FaultReport& f = results[i].faults;
    SCOPED_TRACE(configs[i].governor + std::string(" / ") + configs[i].app + " / " +
                 configs[i].faults);
    EXPECT_TRUE(f.enabled);
    EXPECT_GT(f.injected_total, 0u);
    EXPECT_GT(f.invariant_checks, 0u);
    EXPECT_EQ(f.invariant_violations, 0u)
        << (f.violations.empty() ? std::string("(no stored message)") : f.violations.front());
    // The run still produced a physically sensible result.
    EXPECT_GT(results[i].energy_joules, 0.0);
    EXPECT_GT(results[i].quanta, 0u);
  }
}

TEST(FaultStormTest, SameSeedRerunsAreByteIdentical) {
  // A slice of the grid is enough here: the property is per-run, and the
  // full grid already ran above.
  std::vector<ExperimentConfig> configs = StormGrid();
  configs.resize(6);
  const std::vector<std::string> first = Fingerprints(RunSweep(configs, {}));
  const std::vector<std::string> second = Fingerprints(RunSweep(configs, {}));
  EXPECT_EQ(first, second);
}

TEST(FaultStormTest, ThreadCountIsInvisibleUnderFaultLoad) {
  const std::vector<ExperimentConfig> configs = StormGrid();
  SweepOptions serial;
  serial.threads = 1;
  SweepOptions parallel;
  parallel.threads = 4;
  const std::vector<std::string> one = Fingerprints(RunSweep(configs, serial));
  const std::vector<std::string> four = Fingerprints(RunSweep(configs, parallel));
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i], four[i]) << configs[i].governor << " / " << configs[i].faults;
  }
}

}  // namespace
}  // namespace dcs
