// Byte-exact fingerprint of an ExperimentResult, shared by the fault test
// suite.  Two results with equal fingerprints agree on every number we
// report (hexfloat: no rounding slack) plus the full recorded series — the
// practical definition of "byte-identical run".

#ifndef TESTS_FAULT_FINGERPRINT_H_
#define TESTS_FAULT_FINGERPRINT_H_

#include <ios>
#include <sstream>
#include <string>

#include "src/exp/experiment.h"

namespace dcs {

inline std::string Fingerprint(const ExperimentResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.app << '|' << r.governor << '|' << r.duration.nanos() << '|' << r.energy_joules
     << '|' << r.exact_energy_joules << '|' << r.average_watts << '|' << r.avg_utilization
     << '|' << r.quanta << '|' << r.clock_changes << '|' << r.voltage_transitions << '|'
     << r.total_stall.nanos() << '|' << r.deadline_events << '|' << r.deadline_misses << '|'
     << r.worst_lateness.nanos() << '\n';
  for (const double share : r.step_residency) {
    os << share << ',';
  }
  os << '\n';
  for (const auto& [task, seconds] : r.task_cpu_seconds) {
    os << task << '=' << seconds << ';';
  }
  os << '\n';
  for (const char* series : {"utilization", "freq_mhz", "core_volts"}) {
    os << series << ':';
    const TraceSeries* s = r.sink.Find(series);
    if (s != nullptr) {
      for (const TracePoint& p : s->points()) {
        os << p.at.nanos() << '@' << p.value << ',';
      }
    }
    os << '\n';
  }
  os << "faults:" << r.faults.enabled << '|' << r.faults.plan << '|'
     << r.faults.injected_total << '|' << r.faults.transition_retries << '|'
     << r.faults.brownouts << '|' << r.faults.dropped_samples << '|'
     << r.faults.invariant_checks << '|' << r.faults.invariant_violations << '\n';
  for (const auto& [name, count] : r.faults.injected) {
    os << name << '=' << count << ';';
  }
  return os.str();
}

}  // namespace dcs

#endif  // TESTS_FAULT_FINGERPRINT_H_
