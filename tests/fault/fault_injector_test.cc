// FaultInjector determinism and stream-isolation tests.

#include "src/fault/fault_injector.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/time.h"

namespace dcs {
namespace {

const SimTime kStall = SimTime::FromMicrosF(200.0);
const SimTime kSettle = SimTime::FromMicrosF(250.0);
const SimTime kQuantum = SimTime::Millis(10);

FaultPlan MakePlan(const std::string& spec) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(FaultPlan::Parse(spec, &plan, &error)) << error;
  return plan;
}

// Records every decision the injector can make, in a fixed interleaving.
std::vector<std::int64_t> DecisionTrace(FaultInjector& injector, int draws) {
  std::vector<std::int64_t> trace;
  for (int i = 0; i < draws; ++i) {
    trace.push_back(injector.ClockChangeFails() ? 1 : 0);
    trace.push_back(injector.ClockStall(kStall).nanos());
    trace.push_back(injector.SettleTime(kSettle).nanos());
    trace.push_back(injector.BrownoutDuringSettle() ? 1 : 0);
    trace.push_back(injector.TickDelay(kQuantum).nanos());
    trace.push_back(static_cast<std::int64_t>(injector.QuantumMemSpikeFactor() * 1e6));
    trace.push_back(injector.DropSample() ? 1 : 0);
  }
  return trace;
}

TEST(FaultInjectorTest, ZeroPlanNeverPerturbsAnything) {
  FaultInjector injector(FaultPlan{}, 123);
  for (int i = 0; i < 256; ++i) {
    EXPECT_FALSE(injector.ClockChangeFails());
    EXPECT_EQ(injector.ClockStall(kStall), kStall);
    EXPECT_EQ(injector.SettleTime(kSettle), kSettle);
    EXPECT_FALSE(injector.BrownoutDuringSettle());
    EXPECT_EQ(injector.TickDelay(kQuantum), kQuantum);
    EXPECT_EQ(injector.QuantumMemSpikeFactor(), 1.0);
    EXPECT_FALSE(injector.DropSample());
  }
  EXPECT_EQ(injector.injected_total(), 0u);
}

TEST(FaultInjectorTest, SamePlanAndSeedReplaysIdentically) {
  const FaultPlan plan = FaultPlan::Storm(1.0);
  FaultInjector a(plan, 7);
  FaultInjector b(plan, 7);
  EXPECT_EQ(DecisionTrace(a, 512), DecisionTrace(b, 512));
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0u);
}

TEST(FaultInjectorTest, DifferentRunSeedsDiverge) {
  const FaultPlan plan = FaultPlan::Storm(1.0);
  FaultInjector a(plan, 7);
  FaultInjector b(plan, 8);
  EXPECT_NE(DecisionTrace(a, 512), DecisionTrace(b, 512));
}

TEST(FaultInjectorTest, DifferentPlanSeedsDiverge) {
  FaultInjector a(MakePlan("storm=1,seed=1"), 7);
  FaultInjector b(MakePlan("storm=1,seed=2"), 7);
  EXPECT_NE(DecisionTrace(a, 512), DecisionTrace(b, 512));
}

// The core guarantee behind "turning a knob doesn't reshuffle the run":
// changing one class's probability leaves every other class's decision
// sequence untouched.
TEST(FaultInjectorTest, StreamsAreIsolatedAcrossClasses) {
  FaultInjector jitter_only(MakePlan("tick-jitter=0.5,seed=3"), 11);
  FaultInjector jitter_plus(MakePlan("tick-jitter=0.5,daq-drop=0.5,clock-fail=0.5,seed=3"), 11);
  std::vector<std::int64_t> a;
  std::vector<std::int64_t> b;
  for (int i = 0; i < 512; ++i) {
    // Interleave with draws from the other classes: they must not bleed into
    // the tick-jitter stream.
    jitter_plus.DropSample();
    jitter_plus.ClockChangeFails();
    a.push_back(jitter_only.TickDelay(kQuantum).nanos());
    b.push_back(jitter_plus.TickDelay(kQuantum).nanos());
  }
  EXPECT_EQ(a, b);
}

TEST(FaultInjectorTest, MagnitudesMatchTheDocumentedConstants) {
  FaultInjector injector(MakePlan("clock-stretch=1,settle-overrun=1,tick-miss=1,mem-spike=1"), 5);
  EXPECT_EQ(injector.ClockStall(kStall), kStall * FaultInjector::kClockStretchFactor);
  EXPECT_EQ(injector.SettleTime(kSettle), kSettle * FaultInjector::kSettleOverrunFactor);
  // tick-miss=1 with no jitter: exactly one extra period, every time.
  EXPECT_EQ(injector.TickDelay(kQuantum), kQuantum + kQuantum);
  EXPECT_EQ(injector.QuantumMemSpikeFactor(), FaultInjector::kMemSpikeFactor);
}

TEST(FaultInjectorTest, TickJitterIsLateOnlyAndBounded) {
  FaultInjector injector(MakePlan("tick-jitter=1,seed=9"), 2);
  const SimTime cap = kQuantum + SimTime::FromMicrosF(FaultInjector::kTickJitterMaxUs);
  for (int i = 0; i < 1024; ++i) {
    const SimTime delay = injector.TickDelay(kQuantum);
    EXPECT_GE(delay, kQuantum);
    EXPECT_LE(delay, cap);
  }
  EXPECT_EQ(injector.injected(FaultClass::kTickJitter), 1024u);
}

TEST(FaultInjectorTest, CountsTriggersPerClass) {
  FaultInjector injector(MakePlan("daq-drop=1,clock-fail=0"), 4);
  for (int i = 0; i < 100; ++i) {
    injector.DropSample();
    injector.ClockChangeFails();
  }
  EXPECT_EQ(injector.injected(FaultClass::kDaqDrop), 100u);
  EXPECT_EQ(injector.injected(FaultClass::kClockFail), 0u);
  EXPECT_EQ(injector.injected_total(), 100u);
}

}  // namespace
}  // namespace dcs
