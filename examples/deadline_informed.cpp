// Deadline-informed scheduling walkthrough — the paper's conclusion, made
// runnable.
//
// The paper ends: "we feel that [our results] serve to stop us from
// attempting to devise clever heuristics ... Our immediate future work is to
// provide 'deadline' mechanisms in Linux."  This example runs the same MPEG
// clip three ways and prints the story:
//
//   1. the best oblivious heuristic (PAST-peg-peg-93/98) — safe, tiny savings;
//   2. the deadline-informed governor — the kernel finally knows how much
//      work is due when, and stretches it "as late as possible";
//   3. deadline-informed + voltage scaling — the V^2 payoff.

#include <cstdio>
#include <iostream>

#include "src/exp/ascii_plot.h"
#include "src/exp/experiment.h"
#include "src/exp/report.h"

int main() {
  using namespace dcs;

  PrintHeading(std::cout, "60 s of MPEG, three ways");
  TextTable table({"governor", "energy (J)", "saving vs 206.4", "frame misses",
                   "mean util", "time at <=162 MHz"});

  double baseline = 0.0;
  for (const char* spec :
       {"fixed-206.4", "PAST-peg-peg-93-98", "deadline", "deadline-vs"}) {
    ExperimentConfig config;
    config.app = "mpeg";
    config.governor = spec;
    config.seed = 42;
    const ExperimentResult result = RunExperiment(config);
    if (baseline == 0.0) {
      baseline = result.energy_joules;
    }
    double slow_share = 0.0;
    for (int step = 0; step <= 7; ++step) {
      slow_share += result.step_residency[static_cast<std::size_t>(step)];
    }
    table.AddRow({result.governor, TextTable::Fixed(result.energy_joules, 2),
                  TextTable::Percent(1.0 - result.energy_joules / baseline),
                  std::to_string(result.streams.count("video_frame")
                                     ? result.streams.at("video_frame").missed
                                     : 0),
                  TextTable::Percent(result.avg_utilization),
                  TextTable::Percent(slow_share)});
  }
  table.Print(std::cout);

  // Show the clock trace of the informed governor: instead of banging
  // between 59 and 206.4 like Figure 8, it hovers near the per-frame
  // feasible minimum.
  ExperimentConfig config;
  config.app = "mpeg";
  config.governor = "deadline-vs";
  config.seed = 42;
  config.duration = SimTime::Seconds(10);
  const ExperimentResult result = RunExperiment(config);
  const TraceSeries* freq = result.sink.Find("freq_mhz");
  if (freq != nullptr) {
    PlotOptions options;
    options.title = "Clock trace under deadline-vs (compare with Figure 8's 59/206 banging)";
    options.height = 12;
    options.width = 110;
    options.x_label = "time (s)";
    options.y_label = "MHz";
    options.y_min = 55.0;
    options.y_max = 210.0;
    AsciiPlot(std::cout, *freq, options);
  }

  std::cout << "\nThe lesson, twenty-five years on: the Itsy didn't need a cleverer\n"
               "heuristic — it needed the application to say what 'on time' meant.\n";
  return 0;
}
