// Governor playground: run any workload under any governor spec and inspect
// the outcome — the repository's main interactive tool.
//
// Usage:
//   governor_playground [app] [governor-spec] [seconds] [seed]
//
//   app:            mpeg | web | chess | editor        (default mpeg)
//   governor-spec:  see src/core/governor_registry.h   (default PAST-peg-peg-93-98)
//                   e.g. fixed-132.7@1.23, AVG9-one-one-50-70-vs, ondemand
//   seconds:        simulated duration                 (default: app's natural length)
//   seed:           workload jitter seed               (default 42)
//
// Examples:
//   ./governor_playground mpeg AVG9-peg-peg-93-98
//   ./governor_playground editor schedutil 70
//   ./governor_playground chess fixed-59.0 120 7

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "src/core/governor_registry.h"
#include "src/exp/artifacts.h"
#include "src/exp/ascii_plot.h"
#include "src/exp/experiment.h"
#include "src/exp/report.h"

int main(int argc, char** argv) {
  using namespace dcs;

  ExperimentConfig config;
  config.app = argc > 1 ? argv[1] : "mpeg";
  config.governor = argc > 2 ? argv[2] : "PAST-peg-peg-93-98";
  if (argc > 3) {
    config.duration = SimTime::FromSecondsF(std::atof(argv[3]));
  }
  config.seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 42;

  // Validate the spec up front so typos produce a friendly message.
  std::string error;
  auto probe = MakeGovernor(config.governor, &error);
  if (probe == nullptr && !error.empty()) {
    std::cerr << "bad governor spec '" << config.governor << "': " << error << "\n"
              << "examples: fixed-206.4  fixed-132.7@1.23  PAST-peg-peg-93-98\n"
              << "          AVG9-one-one-50-70-vs  WIN10-peg-peg-93-98  cycles4\n"
              << "          ondemand  schedutil  none\n";
    return 1;
  }

  const ExperimentResult result = RunExperiment(config);
  // Honour DCS_ARTIFACTS like the benches do.
  MaybeWriteArtifacts("playground_" + config.app + "_" + config.governor, result);

  PrintHeading(std::cout, "Run summary");
  TextTable summary({"metric", "value"});
  summary.AddRow({"app", result.app});
  summary.AddRow({"governor", result.governor});
  summary.AddRow({"duration", result.duration.ToString()});
  summary.AddRow({"energy (DAQ)", TextTable::Fixed(result.energy_joules, 2) + " J"});
  summary.AddRow({"energy (exact)", TextTable::Fixed(result.exact_energy_joules, 2) + " J"});
  summary.AddRow({"average power", TextTable::Fixed(result.average_watts, 3) + " W"});
  summary.AddRow({"mean utilization", TextTable::Percent(result.avg_utilization)});
  summary.AddRow({"clock changes", std::to_string(result.clock_changes)});
  summary.AddRow({"voltage transitions", std::to_string(result.voltage_transitions)});
  summary.AddRow({"switch stall total", result.total_stall.ToString()});
  summary.AddRow({"deadline events", std::to_string(result.deadline_events)});
  summary.AddRow({"deadline misses", std::to_string(result.deadline_misses)});
  summary.AddRow({"worst lateness", result.worst_lateness.ToString()});
  summary.Print(std::cout);

  PrintHeading(std::cout, "Per-stream deadlines");
  TextTable streams({"stream", "events", "missed", "worst lateness"});
  for (const auto& [name, stats] : result.streams) {
    streams.AddRow({name, std::to_string(stats.total), std::to_string(stats.missed),
                    stats.worst_lateness.ToString()});
  }
  streams.Print(std::cout);

  PrintHeading(std::cout, "Per-task CPU time");
  TextTable tasks({"task", "cpu seconds", "share of run"});
  for (const auto& [name, seconds] : result.task_cpu_seconds) {
    tasks.AddRow({name, TextTable::Fixed(seconds, 2),
                  TextTable::Percent(seconds / result.duration.ToSeconds())});
  }
  tasks.Print(std::cout);

  PrintHeading(std::cout, "Clock-step residency");
  TextTable residency({"step", "MHz", "share of wall time"});
  for (int step = 0; step < kNumClockSteps; ++step) {
    if (result.step_residency[static_cast<std::size_t>(step)] > 0.0005) {
      residency.AddRow({std::to_string(step),
                        TextTable::Fixed(ClockTable::FrequencyMhz(step), 1),
                        TextTable::Percent(result.step_residency[static_cast<std::size_t>(step)])});
    }
  }
  residency.Print(std::cout);

  const TraceSeries* util = result.sink.Find("utilization");
  if (util != nullptr && !util->empty()) {
    PlotOptions options;
    options.title = "Utilization per quantum";
    options.height = 12;
    options.width = 110;
    options.x_label = "time (s)";
    options.y_label = "utilization";
    options.y_min = 0.0;
    options.y_max = 1.0;
    AsciiPlot(std::cout, *util, options);
  }
  const TraceSeries* freq = result.sink.Find("freq_mhz");
  if (freq != nullptr && freq->size() > 1) {
    PlotOptions options;
    options.title = "Clock frequency";
    options.height = 10;
    options.width = 110;
    options.x_label = "time (s)";
    options.y_label = "MHz";
    options.y_min = 55.0;
    options.y_max = 210.0;
    AsciiPlot(std::cout, *freq, options);
  }
  return 0;
}
