// Trace record & replay: the paper's repeatability methodology.
//
// "To capture repeatable behavior for the interactive applications, we used
// a tracing mechanism that recorded timestamped input events and then
// allowed us to replay those events with millisecond accuracy. ... We
// measured multiple runs of each workload; in general, we found the 95%
// confidence interval of the energy to be less than 0.7% of the mean
// energy."
//
// This example records a Web browse input trace, saves it to CSV, reloads
// it, replays it five times with sub-millisecond replay jitter, and reports
// the energy confidence interval.

#include <iostream>
#include <sstream>

#include "src/daq/daq.h"
#include "src/daq/stats.h"
#include "src/exp/report.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"
#include "src/workload/java_vm.h"
#include "src/workload/web.h"

int main() {
  using namespace dcs;

  // 1. "Record" the browse session (scripted scenario builder + seed).
  const InputTrace master = MakeWebBrowseTrace(/*seed=*/2024);
  std::cout << "Recorded " << master.size() << " input events over "
            << master.Duration().ToString() << "\n";

  // 2. Save to CSV and load it back — byte-exact round trip.
  std::stringstream csv;
  master.WriteCsv(csv);
  const InputTrace loaded = InputTrace::ReadCsv(csv);
  std::cout << "CSV round trip: " << loaded.size() << " events ("
            << (loaded.events() == master.events() ? "identical" : "DIFFERENT") << ")\n";

  PrintHeading(std::cout, "First events of the trace");
  TextTable head({"time", "kind", "magnitude"});
  for (std::size_t i = 0; i < std::min<std::size_t>(6, loaded.size()); ++i) {
    const InputEvent& event = loaded.events()[i];
    head.AddRow({event.at.ToString(), event.kind, TextTable::Fixed(event.magnitude, 2)});
  }
  head.Print(std::cout);

  // 3. Replay five times with millisecond-accuracy jitter; measure energy
  //    with the DAQ through the GPIO trigger, exactly like the paper.
  PrintHeading(std::cout, "Five replays with sub-millisecond replay jitter");
  TextTable runs({"run", "energy (J)", "interactive misses"});
  Rng jitter_rng(99);
  std::vector<double> energies;
  for (int run = 0; run < 5; ++run) {
    Simulator sim;
    Itsy itsy(sim);
    KernelConfig kernel_config;
    kernel_config.rng_seed = 500 + static_cast<std::uint64_t>(run);
    Kernel kernel(sim, itsy, kernel_config);
    DeadlineMonitor deadlines;
    const InputTrace replay = loaded.WithReplayJitter(jitter_rng);
    kernel.AddTask(std::make_unique<WebWorkload>(replay, WebConfig{}, &deadlines));
    kernel.AddTask(std::make_unique<JavaPollWorkload>());
    kernel.Start();
    const SimTime end = loaded.Duration() + SimTime::Seconds(5);
    sim.RunUntil(end);

    DaqConfig daq_config;
    daq_config.seed = 7000 + static_cast<std::uint64_t>(run);
    Daq daq(daq_config);
    const double joules = daq.MeasureEnergyJoules(itsy.tape(), SimTime::Zero(), end);
    energies.push_back(joules);
    runs.AddRow({std::to_string(run + 1), TextTable::Fixed(joules, 2),
                 std::to_string(deadlines.Stats("interactive").missed)});
  }
  runs.Print(std::cout);

  const Summary summary = Summarize(energies);
  std::cout << "\nEnergy 95% CI: " << TextTable::Fixed(summary.ci_low(), 2) << " - "
            << TextTable::Fixed(summary.ci_high(), 2) << " J ("
            << TextTable::Fixed(summary.ci_percent(), 2) << "% of the mean; paper: <0.7%)\n"
            << "\"the runs were very repeatable, despite the possible variation that\n"
            "would arise from interactions between application threads, other\n"
            "processes and system daemons.\"\n";
  return 0;
}
