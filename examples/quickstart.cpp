// Quickstart: play 60 seconds of MPEG on a simulated Itsy under the paper's
// best policy (PAST, peg-peg, 93%/98%) and compare it against constant
// clock speeds — a miniature of the paper's Table 2.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "src/exp/experiment.h"
#include "src/exp/report.h"

int main() {
  using namespace dcs;

  std::cout << "itsy-dcs quickstart: MPEG playback under different clock policies\n";

  TextTable table({"policy", "energy (J)", "avg power (W)", "avg util", "clock changes",
                   "frame misses", "worst lateness"});

  for (const char* spec : {"fixed-206.4", "fixed-132.7", "fixed-132.7@1.23",
                           "PAST-peg-peg-93-98", "PAST-peg-peg-93-98-vs"}) {
    ExperimentConfig config;
    config.app = "mpeg";
    config.governor = spec;
    config.seed = 42;
    ExperimentResult result = RunExperiment(config);
    table.AddRow({result.governor, TextTable::Fixed(result.energy_joules, 2),
                  TextTable::Fixed(result.average_watts, 3),
                  TextTable::Percent(result.avg_utilization),
                  std::to_string(result.clock_changes),
                  std::to_string(result.streams["video_frame"].missed),
                  result.worst_lateness.ToString()});
  }

  table.Print(std::cout);
  std::cout << "\nThe headline result of the paper: the best implementable heuristic\n"
               "(PAST-peg-peg-93/98) avoids every deadline miss but saves only a\n"
               "small amount of energy compared to the optimal fixed speed.\n";
  return 0;
}
