// Battery planner: how long do two AAA cells last under a realistic daily
// usage mix, and how much does the clock policy change that?
//
// Combines the whole stack: each activity is simulated on the Itsy under the
// chosen governor to get its average system power, then the non-ideal
// battery model (rate-capacity + pulsed recovery) is drained through
// interleaved slices of the mix until empty.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/exp/experiment.h"
#include "src/exp/report.h"
#include "src/hw/battery.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/sim/simulator.h"

namespace {

struct Activity {
  const char* app;  // nullptr = idle system (napping at the governor's floor)
  double share;     // fraction of usage time
  const char* label;
};

// Average system power for an activity under a governor, from a simulation.
double ActivityWatts(const char* app, const std::string& governor) {
  using namespace dcs;
  if (app == nullptr) {
    // Idle system: a scaling governor idles at the bottom step, a fixed one
    // at its pinned setting.
    Simulator sim;
    ItsyConfig config;
    config.initial_step =
        governor.rfind("fixed-206", 0) == 0 ? ClockTable::MaxStep() : ClockTable::MinStep();
    Itsy itsy(sim, config);
    Kernel kernel(sim, itsy);
    kernel.Start();
    sim.RunUntil(SimTime::Seconds(5));
    return itsy.tape().AverageWatts(SimTime::Zero(), SimTime::Seconds(5));
  }
  ExperimentConfig config;
  config.app = app;
  config.governor = governor;
  config.seed = 12;
  config.duration = SimTime::Seconds(40);
  return RunExperiment(config).average_watts;
}

}  // namespace

int main() {
  using namespace dcs;

  const std::vector<Activity> mix = {
      {"mpeg", 0.15, "video playback"},
      {"web", 0.25, "web reading"},
      {"chess", 0.10, "chess"},
      {"editor", 0.10, "talking editor"},
      {nullptr, 0.40, "idle (screen on)"},
  };
  const char* governors[] = {"fixed-206.4", "fixed-132.7", "PAST-peg-peg-93-98",
                             "PAST-peg-peg-93-98-vs", "ondemand"};

  PrintHeading(std::cout, "Usage mix");
  TextTable mix_table({"activity", "share"});
  for (const Activity& activity : mix) {
    mix_table.AddRow({activity.label, TextTable::Percent(activity.share, 0)});
  }
  mix_table.Print(std::cout);

  PrintHeading(std::cout, "Battery life per governor (2x AAA alkaline, Peukert model)");
  TextTable result({"governor", "mix power (W)", "hours on one charge", "vs 206.4"});
  double baseline_hours = 0.0;
  for (const char* governor : governors) {
    std::vector<double> watts;
    double mix_watts = 0.0;
    for (const Activity& activity : mix) {
      watts.push_back(ActivityWatts(activity.app, governor));
      mix_watts += activity.share * watts.back();
    }
    // Drain the battery through interleaved 6-minute mix rounds so the
    // recovery model sees the alternation of heavy and light segments.
    Battery battery;
    double hours = 0.0;
    while (!battery.Empty() && hours < 48.0) {
      for (std::size_t i = 0; i < mix.size() && !battery.Empty(); ++i) {
        const double slice_hours = 0.1 * mix[i].share;
        battery.Drain(watts[i], SimTime::FromSecondsF(slice_hours * 3600.0));
        hours += slice_hours;
      }
    }
    if (baseline_hours == 0.0) {
      baseline_hours = hours;
    }
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%+.0f%%", 100.0 * (hours / baseline_hours - 1.0));
    result.AddRow({governor, TextTable::Fixed(mix_watts, 3), TextTable::Fixed(hours, 1),
                   ratio});
  }
  result.Print(std::cout);

  std::cout << "\nBecause the battery is non-ideal, every watt shaved at the top of the\n"
               "demand curve buys super-linear lifetime — the paper's section 2.1\n"
               "argument for why clock scheduling matters at all.\n";
  return 0;
}
