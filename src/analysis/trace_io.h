// Plain-text persistence for utilization traces.
//
// Weiser's and Govil's studies were trace-driven; this module lets our
// recorded per-quantum utilization traces round-trip through files so the
// oracle replays (bench/oracle_bounds) and external tools can share them.
// Format: one value per line, '#' comments allowed.

#ifndef SRC_ANALYSIS_TRACE_IO_H_
#define SRC_ANALYSIS_TRACE_IO_H_

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace dcs {

// Writes one value per line with a provenance comment header.
void WriteUtilizationTrace(std::ostream& os, std::span<const double> trace,
                           const std::string& comment = "");

// Reads a trace written by WriteUtilizationTrace (or any whitespace/line
// separated list of doubles; '#' starts a comment).  Values are clamped to
// [0, 1].  Malformed lines are skipped.
std::vector<double> ReadUtilizationTrace(std::istream& is);

// File convenience wrappers; return false / empty on I/O failure.
bool SaveUtilizationTrace(const std::string& path, std::span<const double> trace,
                          const std::string& comment = "");
std::vector<double> LoadUtilizationTrace(const std::string& path);

}  // namespace dcs

#endif  // SRC_ANALYSIS_TRACE_IO_H_
