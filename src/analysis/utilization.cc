#include "src/analysis/utilization.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dcs {

TraceSeries MovingAverageSeries(const TraceSeries& series, int window) {
  TraceSeries out(series.name() + "/ma");
  const auto& points = series.points();
  double sum = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    sum += points[i].value;
    if (i >= static_cast<std::size_t>(window)) {
      sum -= points[i - static_cast<std::size_t>(window)].value;
    }
    const std::size_t count = std::min(i + 1, static_cast<std::size_t>(window));
    out.Append(points[i].at, sum / static_cast<double>(count));
  }
  return out;
}

std::vector<double> SeriesValues(const TraceSeries& series) {
  std::vector<double> values;
  values.reserve(series.size());
  for (const TracePoint& p : series.points()) {
    values.push_back(p.value);
  }
  return values;
}

OscillationStats AnalyzeOscillation(std::span<const double> signal, std::size_t skip) {
  OscillationStats stats;
  if (signal.size() <= skip) {
    return stats;
  }
  const std::span<const double> tail = signal.subspan(skip);
  stats.min = tail[0];
  stats.max = tail[0];
  double sum = 0.0;
  for (const double x : tail) {
    stats.min = std::min(stats.min, x);
    stats.max = std::max(stats.max, x);
    sum += x;
  }
  stats.mean = sum / static_cast<double>(tail.size());
  stats.amplitude = stats.max - stats.min;

  // Autocorrelation peak on the mean-removed signal.  Small lags correlate
  // trivially (the signal resembles a shifted copy of itself), so the search
  // starts after the first zero crossing of the normalised autocorrelation.
  const std::size_t n = tail.size();
  if (n >= 8 && stats.amplitude > 1e-12) {
    std::vector<double> autocorr(n / 2 + 1, 0.0);
    for (std::size_t lag = 1; lag <= n / 2; ++lag) {
      double acc = 0.0;
      for (std::size_t i = 0; i + lag < n; ++i) {
        acc += (tail[i] - stats.mean) * (tail[i + lag] - stats.mean);
      }
      autocorr[lag] = acc / static_cast<double>(n - lag);
    }
    std::size_t first_dip = 1;
    while (first_dip <= n / 2 && autocorr[first_dip] > 0.0) {
      ++first_dip;
    }
    double best = 0.0;
    // Fall back to the full range when the autocorrelation never dips.
    const std::size_t search_from = first_dip <= n / 2 ? first_dip : 1;
    for (std::size_t lag = search_from; lag <= n / 2; ++lag) {
      best = std::max(best, autocorr[lag]);
    }
    // Every multiple of the true period peaks equally (up to estimation
    // noise); report the smallest lag within 5% of the best peak.
    std::size_t best_lag = 0;
    for (std::size_t lag = search_from; lag <= n / 2; ++lag) {
      if (autocorr[lag] >= 0.95 * best && best > 0.0) {
        best_lag = lag;
        break;
      }
    }
    stats.period = static_cast<int>(best_lag);
  }
  return stats;
}

bool SettlesWithin(std::span<const double> signal, double lo, double hi, std::size_t tail) {
  if (signal.size() < tail || tail == 0) {
    return false;
  }
  for (std::size_t i = signal.size() - tail; i < signal.size(); ++i) {
    if (signal[i] < lo || signal[i] > hi) {
      return false;
    }
  }
  return true;
}

}  // namespace dcs
