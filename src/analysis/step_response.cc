#include "src/analysis/step_response.h"

namespace dcs {

int RiseTimeQuanta(UtilizationPredictor& predictor, double threshold, int prime_quanta,
                   int limit) {
  predictor.Reset();
  for (int i = 0; i < prime_quanta; ++i) {
    predictor.Update(0.0);
  }
  for (int quanta = 1; quanta <= limit; ++quanta) {
    if (predictor.Update(1.0) > threshold) {
      return quanta;
    }
  }
  return limit;
}

int FallTimeQuanta(UtilizationPredictor& predictor, double threshold, int prime_quanta,
                   int limit) {
  predictor.Reset();
  for (int i = 0; i < prime_quanta; ++i) {
    predictor.Update(1.0);
  }
  for (int quanta = 1; quanta <= limit; ++quanta) {
    if (predictor.Update(0.0) < threshold) {
      return quanta;
    }
  }
  return limit;
}

}  // namespace dcs
