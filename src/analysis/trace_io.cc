#include "src/analysis/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace dcs {

void WriteUtilizationTrace(std::ostream& os, std::span<const double> trace,
                           const std::string& comment) {
  os << "# itsy-dcs utilization trace (" << trace.size() << " quanta)\n";
  if (!comment.empty()) {
    os << "# " << comment << "\n";
  }
  for (const double u : trace) {
    os << u << "\n";
  }
}

std::vector<double> ReadUtilizationTrace(std::istream& is) {
  std::vector<double> trace;
  std::string line;
  while (std::getline(is, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    std::istringstream fields(line);
    double value = 0.0;
    while (fields >> value) {
      trace.push_back(std::clamp(value, 0.0, 1.0));
    }
  }
  return trace;
}

bool SaveUtilizationTrace(const std::string& path, std::span<const double> trace,
                          const std::string& comment) {
  std::ofstream os(path);
  if (!os) {
    return false;
  }
  WriteUtilizationTrace(os, trace, comment);
  return static_cast<bool>(os);
}

std::vector<double> LoadUtilizationTrace(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    return {};
  }
  return ReadUtilizationTrace(is);
}

}  // namespace dcs
