// Step-response characterisation of utilization predictors.
//
// Table 1's practical content is a *rise time*: AVG9 takes 12 quanta
// (120 ms) to cross a 70% scale-up threshold from idle.  These helpers
// measure that for any predictor, plus the matching fall time, so sweeps can
// tabulate the lag/stability trade-off directly instead of eyeballing
// filtered traces.

#ifndef SRC_ANALYSIS_STEP_RESPONSE_H_
#define SRC_ANALYSIS_STEP_RESPONSE_H_

#include "src/core/predictor.h"

namespace dcs {

// Quanta of saturated input (u = 1) until the predictor's output first
// exceeds `threshold`, starting from a reset predictor primed with
// `prime_quanta` idle samples.  Returns `limit` if it never crosses.
int RiseTimeQuanta(UtilizationPredictor& predictor, double threshold,
                   int prime_quanta = 0, int limit = 10000);

// Quanta of idle input (u = 0) until the output first drops below
// `threshold`, starting from a predictor primed with `prime_quanta`
// saturated samples.  Returns `limit` if it never crosses.
int FallTimeQuanta(UtilizationPredictor& predictor, double threshold,
                   int prime_quanta = 0, int limit = 10000);

}  // namespace dcs

#endif  // SRC_ANALYSIS_STEP_RESPONSE_H_
