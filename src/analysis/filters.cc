#include "src/analysis/filters.h"

#include <cassert>
#include <cmath>

namespace dcs {

std::vector<double> AvgNFilter(std::span<const double> input, int n, double initial) {
  assert(n >= 0);
  std::vector<double> out;
  out.reserve(input.size());
  double w = initial;
  for (const double u : input) {
    w = (n * w + u) / (n + 1);
    out.push_back(w);
  }
  return out;
}

std::vector<double> SlidingAverageFilter(std::span<const double> input, int window) {
  assert(window >= 1);
  std::vector<double> out;
  out.reserve(input.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < input.size(); ++i) {
    sum += input[i];
    if (i >= static_cast<std::size_t>(window)) {
      sum -= input[i - static_cast<std::size_t>(window)];
    }
    const std::size_t count = std::min(i + 1, static_cast<std::size_t>(window));
    out.push_back(sum / static_cast<double>(count));
  }
  return out;
}

std::vector<double> AvgNKernel(int n, int length) {
  assert(n >= 0 && length >= 0);
  std::vector<double> kernel;
  kernel.reserve(static_cast<std::size_t>(length));
  const double base = static_cast<double>(n) / (n + 1);
  double w = 1.0 / (n + 1);
  for (int k = 0; k < length; ++k) {
    kernel.push_back(w);
    w *= base;
  }
  return kernel;
}

std::vector<double> ConvolveCausal(std::span<const double> signal,
                                   std::span<const double> kernel) {
  std::vector<double> out(signal.size(), 0.0);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    const std::size_t reach = std::min(i + 1, kernel.size());
    double acc = 0.0;
    for (std::size_t k = 0; k < reach; ++k) {
      acc += kernel[k] * signal[i - k];
    }
    out[i] = acc;
  }
  return out;
}

std::vector<double> DecayingExponential(double lambda, int length) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(length));
  for (int t = 0; t < length; ++t) {
    out.push_back(std::exp(-lambda * t));
  }
  return out;
}

}  // namespace dcs
