// Pure-function filters for the paper's section 5.3 analysis.
//
// AVG_N is a one-pole IIR filter: W_t = (N * W_{t-1} + U_{t-1}) / (N+1).
// Expanding the recursion shows W_t is the convolution of the input with a
// decaying exponential kernel:
//     W_t = sum_k (1/(N+1)) * (N/(N+1))^k * U_{t-1-k}
// which is why the Fourier-domain argument applies: the kernel's transform
// attenuates but never eliminates high frequencies, so a periodic input
// yields a periodic (oscillating) output.

#ifndef SRC_ANALYSIS_FILTERS_H_
#define SRC_ANALYSIS_FILTERS_H_

#include <span>
#include <vector>

namespace dcs {

// Runs AVG_N over `input` starting from weighted value `initial`; output[i]
// is W after consuming input[0..i].
std::vector<double> AvgNFilter(std::span<const double> input, int n, double initial = 0.0);

// Simple trailing mean over the last `window` samples (fewer at the start).
std::vector<double> SlidingAverageFilter(std::span<const double> input, int window);

// The explicit AVG_N convolution weights w_k = (1/(N+1)) * (N/(N+1))^k for
// k = 0..length-1 (most recent sample first).
std::vector<double> AvgNKernel(int n, int length);

// Full discrete convolution of `signal` with `kernel` (causal: output[i]
// uses signal[i], signal[i-1], ...).  Output has signal.size() samples.
std::vector<double> ConvolveCausal(std::span<const double> signal,
                                   std::span<const double> kernel);

// Samples of the continuous decaying exponential x(t) = e^{-lambda t} u(t)
// at unit spacing (Figure 6's time-domain kernel).
std::vector<double> DecayingExponential(double lambda, int length);

}  // namespace dcs

#endif  // SRC_ANALYSIS_FILTERS_H_
