#include "src/analysis/fourier.h"

#include <cassert>
#include <cmath>

namespace dcs {
namespace {

// In-place iterative Cooley-Tukey on a power-of-two-sized buffer.
void FftInPlace(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  assert((n & (n - 1)) == 0 && "FFT length must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) {
      j ^= bit;
    }
    j ^= bit;
    if (i < j) {
      std::swap(a[i], a[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = a[i + k];
        const std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) {
      x /= static_cast<double>(n);
    }
  }
}

}  // namespace

std::vector<std::complex<double>> Dft(std::span<const double> input) {
  const std::size_t n = input.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k) * static_cast<double>(t) /
                           static_cast<double>(n);
      acc += input[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

std::vector<std::complex<double>> Fft(std::span<const double> input) {
  std::vector<std::complex<double>> a(input.begin(), input.end());
  FftInPlace(a, /*inverse=*/false);
  return a;
}

std::vector<double> InverseFftReal(std::span<const std::complex<double>> input) {
  std::vector<std::complex<double>> a(input.begin(), input.end());
  FftInPlace(a, /*inverse=*/true);
  std::vector<double> out;
  out.reserve(a.size());
  for (const auto& x : a) {
    out.push_back(x.real());
  }
  return out;
}

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

double DecayingExpFtMagnitude(double lambda, double omega) {
  return 1.0 / std::sqrt(omega * omega + lambda * lambda);
}

std::vector<double> MagnitudeSpectrum(std::span<const double> input) {
  std::vector<double> padded(input.begin(), input.end());
  padded.resize(NextPowerOfTwo(std::max<std::size_t>(input.size(), 1)), 0.0);
  const auto spectrum = Fft(padded);
  const std::size_t half = spectrum.size() / 2;
  std::vector<double> out;
  out.reserve(half + 1);
  for (std::size_t k = 0; k <= half; ++k) {
    out.push_back(std::abs(spectrum[k]) / static_cast<double>(padded.size()));
  }
  return out;
}

}  // namespace dcs
