// Discrete and analytic Fourier machinery for the paper's stability
// argument (section 5.3, Figures 6 and 7).
//
// The paper treats processor load as a 0/1 signal, models AVG_N as
// convolution with a decaying exponential, and observes in the frequency
// domain that the exponential's transform X(w) = 1/(iw + lambda) only
// *attenuates* high frequencies — so a rectangular (periodic) load keeps
// oscillating after filtering, no matter the N.

#ifndef SRC_ANALYSIS_FOURIER_H_
#define SRC_ANALYSIS_FOURIER_H_

#include <complex>
#include <span>
#include <vector>

namespace dcs {

// O(n^2) reference DFT: X[k] = sum_t x[t] e^{-2 pi i k t / n}.
std::vector<std::complex<double>> Dft(std::span<const double> input);

// Iterative radix-2 FFT; input length must be a power of two.
std::vector<std::complex<double>> Fft(std::span<const double> input);

// Inverse FFT (length must be a power of two); returns the real parts.
std::vector<double> InverseFftReal(std::span<const std::complex<double>> input);

// Smallest power of two >= n (n >= 1).
std::size_t NextPowerOfTwo(std::size_t n);

// |X(w)| for the continuous transform of e^{-lambda t} u(t):
//     X(w) = 1 / (i w + lambda),  |X(w)| = 1 / sqrt(w^2 + lambda^2).
// This is exactly the curve of the paper's Figure 6.
double DecayingExpFtMagnitude(double lambda, double omega);

// Magnitude spectrum |X[k]| / n for k = 0..n/2 (one-sided).
std::vector<double> MagnitudeSpectrum(std::span<const double> input);

}  // namespace dcs

#endif  // SRC_ANALYSIS_FOURIER_H_
