// Utilization-trace post-processing for the Figure 3/4 plots and the
// oscillation analysis of section 5.3.

#ifndef SRC_ANALYSIS_UTILIZATION_H_
#define SRC_ANALYSIS_UTILIZATION_H_

#include <span>
#include <vector>

#include "src/sim/trace_sink.h"

namespace dcs {

// Trailing moving average over `window` consecutive samples of a recorded
// series (e.g. the kernel's per-10 ms utilization into a 100 ms view,
// window = 10).  Timestamps carry over from the underlying samples.
TraceSeries MovingAverageSeries(const TraceSeries& series, int window);

// Extracts just the values of a series.
std::vector<double> SeriesValues(const TraceSeries& series);

// Steady-state oscillation statistics of a filtered signal.
struct OscillationStats {
  double min = 0.0;
  double max = 0.0;
  double amplitude = 0.0;       // max - min
  double mean = 0.0;
  // Dominant period in samples (0 when no repeating structure is found),
  // estimated from the peak of the (biased) autocorrelation.
  int period = 0;
};

// Analyses `signal`, ignoring the first `skip` samples (filter warm-up).
OscillationStats AnalyzeOscillation(std::span<const double> signal, std::size_t skip = 0);

// True if the signal eventually stays inside [lo, hi] — i.e. a governor fed
// this weighted utilization would stop changing the clock.  Checks the last
// `tail` samples.
bool SettlesWithin(std::span<const double> signal, double lo, double hi, std::size_t tail);

}  // namespace dcs

#endif  // SRC_ANALYSIS_UTILIZATION_H_
