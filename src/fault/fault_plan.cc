#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dcs {
namespace {

// Storm preset probabilities at intensity 1.0.  Transition failures are kept
// rarer than timing noise, mirroring how often real SA-1100-class hardware
// misbehaves in each way.
constexpr std::array<double, kNumFaultClasses> kStormDefaults = {
    0.05,  // clock-fail
    0.10,  // clock-stretch
    0.10,  // settle-overrun
    0.02,  // brownout
    0.20,  // tick-jitter
    0.02,  // tick-miss
    0.05,  // daq-drop
    0.05,  // mem-spike
};

constexpr const char* kClassNames[kNumFaultClasses] = {
    "clock-fail", "clock-stretch", "settle-overrun", "brownout",
    "tick-jitter", "tick-miss",    "daq-drop",       "mem-spike",
};

// Lower-cases and strips whitespace: the grammar has no quoted tokens, so
// "  Tick-Jitter = 5% " and "tick-jitter=5%" are the same spec.
std::string Canonicalize(std::string s) {
  s.erase(std::remove_if(s.begin(), s.end(),
                         [](unsigned char c) { return std::isspace(c) != 0; }),
          s.end());
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

bool SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

// Parses "0.05" or "5%" into a probability in [0, 1].
bool ParseFraction(const std::string& s, double* out) {
  std::string body = s;
  bool percent = false;
  if (!body.empty() && body.back() == '%') {
    percent = true;
    body.pop_back();
  }
  if (body.empty()) {
    return false;
  }
  char* end = nullptr;
  double value = std::strtod(body.c_str(), &end);
  if (end != body.c_str() + body.size()) {
    return false;
  }
  if (percent) {
    value /= 100.0;
  }
  if (value < 0.0 || value > 1.0) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseSeed(const std::string& s, std::uint64_t* out) {
  // strtoull accepts a leading sign and silently wraps negatives; the
  // grammar wants plain unsigned digits only.
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s.front())) == 0) {
    return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return false;
  }
  *out = value;
  return true;
}

}  // namespace

const char* FaultClassName(FaultClass c) { return kClassNames[static_cast<int>(c)]; }

bool FaultPlan::Active() const {
  for (const double p : probability) {
    if (p > 0.0) {
      return true;
    }
  }
  return false;
}

FaultPlan FaultPlan::Storm(double intensity) {
  intensity = std::clamp(intensity, 0.0, 1.0);
  FaultPlan plan;
  for (int k = 0; k < kNumFaultClasses; ++k) {
    plan.probability[static_cast<std::size_t>(k)] =
        kStormDefaults[static_cast<std::size_t>(k)] * intensity;
  }
  return plan;
}

bool FaultPlan::Parse(const std::string& spec, FaultPlan* plan, std::string* error) {
  *plan = FaultPlan{};
  const std::string lower = Canonicalize(spec);
  if (lower.empty() || lower == "none") {
    return true;
  }
  std::size_t begin = 0;
  while (begin <= lower.size()) {
    const std::size_t end = lower.find(',', begin);
    const std::string item =
        lower.substr(begin, end == std::string::npos ? std::string::npos : end - begin);
    begin = end == std::string::npos ? lower.size() + 1 : end + 1;
    if (item.empty()) {
      *plan = FaultPlan{};
      return SetError(error, "empty item in fault spec '" + spec + "'");
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      *plan = FaultPlan{};
      return SetError(error, "expected key=value, got '" + item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      if (!ParseSeed(value, &plan->seed)) {
        *plan = FaultPlan{};
        return SetError(error, "bad seed '" + value + "' (expected an unsigned integer)");
      }
      continue;
    }
    if (key == "storm") {
      double intensity = 0.0;
      if (!ParseFraction(value, &intensity)) {
        *plan = FaultPlan{};
        return SetError(error, "bad storm intensity '" + value + "' (expected 0..1 or %)");
      }
      const std::uint64_t seed = plan->seed;
      *plan = Storm(intensity);
      plan->seed = seed;
      continue;
    }
    bool matched = false;
    for (int k = 0; k < kNumFaultClasses; ++k) {
      if (key != kClassNames[static_cast<std::size_t>(k)]) {
        continue;
      }
      double p = 0.0;
      if (!ParseFraction(value, &p)) {
        *plan = FaultPlan{};
        return SetError(error, "bad probability '" + value + "' for '" + key +
                                   "' (expected 0..1 or %)");
      }
      plan->probability[static_cast<std::size_t>(k)] = p;
      matched = true;
      break;
    }
    if (!matched) {
      *plan = FaultPlan{};
      return SetError(error, "unknown fault class '" + key + "'");
    }
  }
  return true;
}

std::string FaultPlan::Describe() const {
  std::string out = "seed=" + std::to_string(seed);
  for (int k = 0; k < kNumFaultClasses; ++k) {
    const double p = probability[static_cast<std::size_t>(k)];
    if (p <= 0.0) {
      continue;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), ",%s=%g", kClassNames[static_cast<std::size_t>(k)], p);
    out += buf;
  }
  return out;
}

}  // namespace dcs
