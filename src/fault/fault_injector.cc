#include "src/fault/fault_injector.h"

namespace dcs {

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t run_seed) : plan_(plan) {
  for (int k = 0; k < kNumFaultClasses; ++k) {
    // Golden-ratio mixing decorrelates the class streams from each other and
    // from the kernel/DAQ streams that already use the run seed.
    streams_[static_cast<std::size_t>(k)] =
        Rng(plan_.seed ^ (run_seed * 0x9e3779b97f4a7c15ULL) ^
            ((static_cast<std::uint64_t>(k) + 1) * 0xbf58476d1ce4e5b9ULL));
  }
}

bool FaultInjector::Draw(FaultClass c) {
  const auto k = static_cast<std::size_t>(static_cast<int>(c));
  const bool hit = streams_[k].Bernoulli(plan_.probability[k]);
  if (hit) {
    ++injected_[k];
  }
  return hit;
}

SimTime FaultInjector::ClockStall(SimTime nominal) {
  return Draw(FaultClass::kClockStretch) ? nominal * kClockStretchFactor : nominal;
}

SimTime FaultInjector::SettleTime(SimTime nominal) {
  return Draw(FaultClass::kSettleOverrun) ? nominal * kSettleOverrunFactor : nominal;
}

SimTime FaultInjector::TickDelay(SimTime nominal) {
  SimTime delay = nominal;
  if (Draw(FaultClass::kTickMiss)) {
    delay += nominal;
  }
  if (Draw(FaultClass::kTickJitter)) {
    // The interrupt only ever fires late (latency), never early; the jitter
    // magnitude comes from the same isolated stream as the trigger.
    delay += SimTime::FromMicrosF(
        streams_[static_cast<std::size_t>(static_cast<int>(FaultClass::kTickJitter))]
            .Uniform(0.0, kTickJitterMaxUs));
  }
  return delay;
}

double FaultInjector::QuantumMemSpikeFactor() {
  return Draw(FaultClass::kMemSpike) ? kMemSpikeFactor : 1.0;
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const std::uint64_t n : injected_) {
    total += n;
  }
  return total;
}

}  // namespace dcs
