// Deterministic fault-injection plans.
//
// The paper's negative result rests on hardware friction — the 200 us PLL
// relock, the 250 us rail down-settle, non-linear memory slowdown — yet the
// simulator's default path only ever exercises transitions that succeed on
// schedule.  A FaultPlan describes a seeded perturbation of that happy path:
// clock transitions that fail or take longer, regulator settles that overrun
// or brown out, timer ticks that jitter or go missing, DAQ samples that drop,
// and transient memory-latency spikes.  Experiments opt in with the
// `--faults=<spec>` flag; an absent or "none" spec leaves every consumer on
// the exact code path it runs today, byte for byte.
//
// Spec grammar (comma-separated, case-insensitive keys):
//
//   spec  := "none" | item ("," item)*
//   item  := "seed=" <uint64>
//          | "storm=" <frac>        -- preset: all classes at defaults x frac
//          | <class> "=" <frac>     -- per-class trigger probability
//   class := "clock-fail" | "clock-stretch" | "settle-overrun" | "brownout"
//          | "tick-jitter" | "tick-miss" | "daq-drop" | "mem-spike"
//   frac  := "0.05" | "5%"          -- probability in [0, 1]
//
// Items apply left to right, so "storm=0.5,brownout=0" starts from the storm
// preset and then disables brownouts.

#ifndef SRC_FAULT_FAULT_PLAN_H_
#define SRC_FAULT_FAULT_PLAN_H_

#include <array>
#include <cstdint>
#include <string>

namespace dcs {

// The injectable fault classes.  Each owns an isolated RNG stream inside the
// injector, so enabling one class never shifts the draws seen by another.
enum class FaultClass : int {
  kClockFail = 0,      // a clock transition pays its stall but the step sticks
  kClockStretch,       // the PLL relock takes kClockStretchFactor x longer
  kSettleOverrun,      // a rail down-settle takes kSettleOverrunFactor x longer
  kBrownout,           // mid-settle undershoot forces a clock step-down
  kTickJitter,         // the clock interrupt fires late (interrupt latency)
  kTickMiss,           // a timer tick is lost; the next fires a period later
  kDaqDrop,            // a DAQ sample is lost and must be interpolated
  kMemSpike,           // memory latency spikes for one quantum
};

inline constexpr int kNumFaultClasses = 8;

// Canonical spec key for a class ("clock-fail", ...).
const char* FaultClassName(FaultClass c);

struct FaultPlan {
  // Seeds the injector's per-class RNG streams (mixed with the experiment
  // seed, so repeated-run tables get independent fault sequences while the
  // same (spec, experiment seed) pair reproduces exactly).
  std::uint64_t seed = 1;
  // Per-class trigger probability, indexed by FaultClass.  All zero by
  // default: a default plan routed through the injector is a no-op.
  std::array<double, kNumFaultClasses> probability{};

  double p(FaultClass c) const { return probability[static_cast<int>(c)]; }
  void set_p(FaultClass c, double value) { probability[static_cast<int>(c)] = value; }

  // True when any class can trigger.
  bool Active() const;

  // Parses the grammar above into *plan.  "none" and "" parse to the default
  // (all-zero) plan.  On failure returns false and fills *error (if given)
  // with a human-readable reason; *plan is left default-initialised.
  static bool Parse(const std::string& spec, FaultPlan* plan, std::string* error = nullptr);

  // The "storm=<intensity>" preset: every class at its default probability
  // scaled by `intensity` (clamped to [0, 1]).
  static FaultPlan Storm(double intensity);

  // Canonical spec string round-tripping through Parse().
  std::string Describe() const;
};

}  // namespace dcs

#endif  // SRC_FAULT_FAULT_PLAN_H_
