// Cross-layer invariant checking for fault-injection runs.
//
// Fault plans deliberately push the simulator off its happy path — stuck
// clock steps, overrunning settles, brownout step-downs, jittered ticks.
// The InvariantChecker watches the properties that must survive all of it:
//
//   * simulated time is monotone;
//   * the selected clock step is always a valid clock-table index;
//   * a 1.23 V rail target never coexists with a step above the 1.23 V-safe
//     ceiling (the brownout/retry machinery must preserve rail safety);
//   * the run queue is consistent (unique pids, every queued task runnable
//     and live, the dispatched task never queued behind itself);
//   * busy/idle accounting is monotone and bounded by elapsed wall time;
//   * the power tape stays chronological;
//   * EnergyLedger attribution conserves energy against the tape integral.
//
// Check() is cheap (no allocation on the pass path) so experiments call it
// every quantum while a fault plan is active.  Violations are recorded, not
// thrown: a storm sweep reports all of them at the end.  The campaign
// journal reader (src/exp/journal.h) reuses this record-don't-throw idiom
// for structural problems in a resume journal.

#ifndef SRC_FAULT_INVARIANTS_H_
#define SRC_FAULT_INVARIANTS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/kernel/sched_log.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"

namespace dcs {

class InvariantChecker {
 public:
  // At most this many violation messages are stored (all are counted).
  static constexpr std::size_t kMaxStoredViolations = 32;
  // Relative tolerance for energy conservation, matching the ledger tests.
  static constexpr double kEnergyTolerance = 1e-9;

  InvariantChecker(const Simulator& sim, const Itsy& itsy, const Kernel& kernel)
      : sim_(sim), itsy_(itsy), kernel_(kernel) {}
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  // Runs every structural invariant once at the current sim time.
  void Check();

  // Verifies attributed + unattributed energy matches the tape integral over
  // [begin, end) to kEnergyTolerance (relative).  `sched` is a chronological
  // SchedLog snapshot.
  void CheckEnergyConservation(const std::vector<SchedLogEntry>& sched, SimTime begin,
                               SimTime end);

  std::uint64_t checks() const { return checks_; }
  std::uint64_t violation_count() const { return violation_count_; }
  const std::vector<std::string>& violations() const { return violations_; }

  // Human-readable summary (used by bench/fault_storm --report-out).
  void Report(std::ostream& os) const;

  // Device-snapshot support (src/sim/snapshot.h).  The watched components
  // are reference-bound at construction; only the checker's own history
  // serializes.  Violation strings allocate on load, but a clean run (the
  // fleet steady state) carries none.
  void SaveState(SnapshotWriter* w) const {
    w->U64(checks_);
    w->U64(violation_count_);
    w->U64(violations_.size());
    for (const std::string& v : violations_) {
      w->Span(v.data(), v.size());
    }
    w->Bool(has_last_);
    w->Time(last_now_);
    w->Time(last_busy_);
    w->Time(last_idle_);
    w->U64(last_tape_segments_);
    w->Time(last_tape_start_);
  }
  void LoadState(SnapshotReader* r) {
    checks_ = r->U64();
    violation_count_ = r->U64();
    const std::size_t n = static_cast<std::size_t>(r->U64());
    violations_.clear();
    char buf[512];
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t len = r->SpanInto(buf, sizeof(buf));
      violations_.emplace_back(buf, len);
    }
    has_last_ = r->Bool();
    last_now_ = r->Time();
    last_busy_ = r->Time();
    last_idle_ = r->Time();
    last_tape_segments_ = static_cast<std::size_t>(r->U64());
    last_tape_start_ = r->Time();
  }

 private:
  void Fail(const std::string& message);
  void CheckTime();
  void CheckClockAndRail();
  void CheckRunQueue();
  void CheckAccounting();
  void CheckTape();

  const Simulator& sim_;
  const Itsy& itsy_;
  const Kernel& kernel_;

  std::uint64_t checks_ = 0;
  std::uint64_t violation_count_ = 0;
  std::vector<std::string> violations_;

  bool has_last_ = false;
  SimTime last_now_;
  SimTime last_busy_;
  SimTime last_idle_;
  std::size_t last_tape_segments_ = 0;
  SimTime last_tape_start_;
};

}  // namespace dcs

#endif  // SRC_FAULT_INVARIANTS_H_
