// The seeded fault injector the hardware, kernel and DAQ layers consult.
//
// One injector serves one experiment.  Every fault class draws from its own
// RNG stream, so (a) a class with probability zero never perturbs anything —
// a zero plan routed through the injector is byte-identical to no injector at
// all — and (b) turning one class up or down never shifts the sequence
// another class sees.  All decisions are pure functions of (plan, run seed,
// call count), which is what keeps faulted sweeps bit-identical across
// reruns and `--threads` values.
//
// The injector only *decides*; the consumers own the mechanics:
//   * Itsy::SetClockStep asks ClockChangeFails()/ClockStall() and pays the
//     stall either way (a failed PLL relock still locks out the core);
//   * Itsy::SetVoltage asks SettleTime()/BrownoutDuringSettle() and arms the
//     settle/brownout events;
//   * Kernel::Tick asks TickDelay()/QuantumMemSpikeFactor();
//   * Daq::SamplePowerWatts asks DropSample() and interpolates the holes.

#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>

#include "src/fault/fault_plan.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace dcs {

class FaultInjector {
 public:
  // Fault magnitudes.  Probabilities live in the plan; magnitudes are fixed
  // model constants, documented in EXPERIMENTS.md.
  static constexpr int kClockStretchFactor = 4;    // 200 us -> 800 us relock
  static constexpr int kSettleOverrunFactor = 4;   // 250 us -> 1 ms settle
  static constexpr double kTickJitterMaxUs = 2000.0;  // late by up to 2 ms
  static constexpr double kMemSpikeFactor = 2.5;   // per-quantum slowdown
  static constexpr int kBrownoutStepDrop = 2;      // forced clock step-down

  // `run_seed` is the experiment seed; it is mixed into every stream so
  // repeated runs of the same plan see independent fault sequences.
  explicit FaultInjector(const FaultPlan& plan, std::uint64_t run_seed = 0);

  const FaultPlan& plan() const { return plan_; }

  // --- Clock transitions (Itsy::SetClockStep) -----------------------------
  // True when this transition fails: the stall is paid, the step sticks.
  bool ClockChangeFails() { return Draw(FaultClass::kClockFail); }
  // Possibly-stretched PLL relock stall for one transition attempt.
  SimTime ClockStall(SimTime nominal);

  // --- Voltage regulator (Itsy::SetVoltage) -------------------------------
  // Possibly-overrunning settle interval for one downward rail transition.
  SimTime SettleTime(SimTime nominal);
  // True when the rail undershoot browns the core out mid-settle, forcing a
  // kBrownoutStepDrop clock step-down.
  bool BrownoutDuringSettle() { return Draw(FaultClass::kBrownout); }

  // --- Kernel timer (Kernel::Tick) ----------------------------------------
  // Delay until the next clock interrupt: `nominal` plus a missed period
  // (tick-miss) and/or late-interrupt jitter in (0, kTickJitterMaxUs].
  SimTime TickDelay(SimTime nominal);
  // Memory-latency multiplier for the quantum now starting (1.0 = no spike).
  double QuantumMemSpikeFactor();

  // --- DAQ (Daq::SamplePowerWatts) ----------------------------------------
  // True when this sample is lost and must be interpolated.
  bool DropSample() { return Draw(FaultClass::kDaqDrop); }

  // --- Device snapshots (src/sim/snapshot.h) -------------------------------
  // Per-class stream positions and trigger counts; the plan itself is config
  // and must match on the restore target.
  void SaveState(SnapshotWriter* w) const {
    for (const Rng& rng : streams_) {
      rng.SaveState(w);
    }
    for (const std::uint64_t n : injected_) {
      w->U64(n);
    }
  }
  void LoadState(SnapshotReader* r) {
    for (Rng& rng : streams_) {
      rng.LoadState(r);
    }
    for (std::uint64_t& n : injected_) {
      n = r->U64();
    }
  }

  // --- Accounting ----------------------------------------------------------
  std::uint64_t injected(FaultClass c) const {
    return injected_[static_cast<std::size_t>(static_cast<int>(c))];
  }
  std::uint64_t injected_total() const;

 private:
  // One Bernoulli decision on the class's isolated stream; counts triggers.
  bool Draw(FaultClass c);

  FaultPlan plan_;
  std::array<Rng, kNumFaultClasses> streams_;
  std::array<std::uint64_t, kNumFaultClasses> injected_{};
};

}  // namespace dcs

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
