#include "src/fault/invariants.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "src/hw/clock_table.h"
#include "src/hw/voltage_regulator.h"
#include "src/kernel/run_queue.h"
#include "src/kernel/task.h"
#include "src/obs/energy_ledger.h"

namespace dcs {
namespace {

std::string TimeTag(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "[t=%.6fs] ", t.ToSeconds());
  return buf;
}

}  // namespace

void InvariantChecker::Fail(const std::string& message) {
  ++violation_count_;
  if (violations_.size() < kMaxStoredViolations) {
    violations_.push_back(TimeTag(sim_.Now()) + message);
  }
}

void InvariantChecker::Check() {
  ++checks_;
  CheckTime();
  CheckClockAndRail();
  CheckRunQueue();
  CheckAccounting();
  CheckTape();
  last_now_ = sim_.Now();
  last_busy_ = kernel_.total_busy();
  last_idle_ = kernel_.total_idle();
  has_last_ = true;
}

void InvariantChecker::CheckTime() {
  if (has_last_ && sim_.Now() < last_now_) {
    Fail("sim time went backwards (was " + std::to_string(last_now_.nanos()) + " ns, now " +
         std::to_string(sim_.Now().nanos()) + " ns)");
  }
}

void InvariantChecker::CheckClockAndRail() {
  const int step = itsy_.step();
  if (step < 0 || step >= kNumClockSteps) {
    Fail("clock step " + std::to_string(step) + " outside the clock table");
  }
  if (itsy_.voltage() == CoreVoltage::kLow && step > kMaxStepAtLowVoltage) {
    Fail("step " + std::to_string(step) + " selected while the rail targets 1.23 V (max safe " +
         std::to_string(kMaxStepAtLowVoltage) + ")");
  }
}

void InvariantChecker::CheckRunQueue() {
  const auto& tasks = kernel_.tasks();
  std::unordered_set<Pid> seen;
  for (const Pid pid : kernel_.run_queue().pids()) {
    if (!seen.insert(pid).second) {
      Fail("pid " + std::to_string(pid) + " queued twice");
    }
    const auto it = tasks.find(pid);
    if (it == tasks.end()) {
      Fail("queued pid " + std::to_string(pid) + " does not exist");
      continue;
    }
    if (it->second->state() != TaskState::kRunnable) {
      Fail("queued pid " + std::to_string(pid) + " is not runnable");
    }
  }
  const Task* current = kernel_.current_task();
  if (current != nullptr) {
    if (current->state() != TaskState::kRunnable) {
      Fail("dispatched pid " + std::to_string(current->pid()) + " is not runnable");
    }
    if (seen.count(current->pid()) != 0) {
      Fail("dispatched pid " + std::to_string(current->pid()) + " is also queued");
    }
  }
}

void InvariantChecker::CheckAccounting() {
  const SimTime busy = kernel_.total_busy();
  const SimTime idle = kernel_.total_idle();
  if (has_last_ && (busy < last_busy_ || idle < last_idle_)) {
    Fail("busy/idle accounting went backwards");
  }
  // busy + idle covers closed quanta plus prepaid dispatch gaps, so allow two
  // quanta of slack over elapsed wall time.
  const SimTime elapsed = sim_.Now() - kernel_.start_time();
  if (busy + idle > elapsed + kernel_.quantum() * 2) {
    Fail("accounted time " + std::to_string((busy + idle).nanos()) +
         " ns exceeds elapsed wall time " + std::to_string(elapsed.nanos()) + " ns");
  }
}

void InvariantChecker::CheckTape() {
  const auto& segments = itsy_.tape().segments();
  if (segments.empty()) {
    return;
  }
  if (segments.size() < last_tape_segments_) {
    Fail("power tape lost segments");
  }
  // Only the suffix appended since the previous check needs scanning.
  std::size_t begin = last_tape_segments_ > 0 ? last_tape_segments_ - 1 : 0;
  begin = std::min(begin, segments.size() - 1);
  SimTime prev = segments[begin].start;
  for (std::size_t i = begin + 1; i < segments.size(); ++i) {
    if (segments[i].start < prev) {
      Fail("power tape segment " + std::to_string(i) + " starts before its predecessor");
    }
    prev = segments[i].start;
  }
  if (segments.back().start > sim_.Now()) {
    Fail("power tape segment starts in the future");
  }
  if (last_tape_segments_ > 0 && segments[last_tape_segments_ - 1].start < last_tape_start_) {
    Fail("power tape rewrote history");
  }
  last_tape_segments_ = segments.size();
  last_tape_start_ = segments.back().start;
}

void InvariantChecker::CheckEnergyConservation(const std::vector<SchedLogEntry>& sched,
                                               SimTime begin, SimTime end) {
  ++checks_;
  const EnergyAttribution attr = EnergyLedger::Attribute(itsy_.tape(), sched, begin, end);
  const double recovered = attr.attributed_joules + attr.unattributed_joules;
  const double tolerance = kEnergyTolerance * std::max(1.0, std::fabs(attr.total_joules));
  if (std::fabs(recovered - attr.total_joules) > tolerance) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "energy not conserved: attributed %.12g J + unattributed %.12g J != total "
                  "%.12g J",
                  attr.attributed_joules, attr.unattributed_joules, attr.total_joules);
    Fail(buf);
  }
}

void InvariantChecker::Report(std::ostream& os) const {
  os << "invariant checks: " << checks_ << "\n";
  os << "violations: " << violation_count_ << "\n";
  for (const std::string& v : violations_) {
    os << "  " << v << "\n";
  }
  if (violation_count_ > violations_.size()) {
    os << "  ... " << (violation_count_ - violations_.size()) << " more suppressed\n";
  }
}

}  // namespace dcs
