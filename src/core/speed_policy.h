// Speed-setting policies — the "speed-setting" half of an interval scheduler.
//
// "We use three algorithms for scaling: one, double, and peg.  The one
// policy increments (or decrements) the clock value by one step.  The peg
// policy sets the clock to the highest (or lowest) value.  The double policy
// tries to double (or halve) the clock step.  Since the lowest clock step on
// the Itsy is zero, we increment the clock index value before doubling it.
// Separate policies may be used for scaling upwards and downwards."
// (paper section 2.2)

#ifndef SRC_CORE_SPEED_POLICY_H_
#define SRC_CORE_SPEED_POLICY_H_

#include <memory>
#include <string>

#include "src/hw/clock_table.h"

namespace dcs {

enum class ScaleDirection { kUp, kDown };

class SpeedPolicy {
 public:
  virtual ~SpeedPolicy() = default;

  // Short name for report tables: "one", "double", "peg".
  virtual const std::string& Name() const = 0;

  // Next clock step when scaling from `current` in `direction`.  The result
  // is clamped to [min_step, max_step].
  virtual int Next(int current, ScaleDirection direction, int min_step,
                   int max_step) const = 0;

  virtual std::unique_ptr<SpeedPolicy> Clone() const = 0;
};

// Increments / decrements by one clock step.
class OneStepPolicy final : public SpeedPolicy {
 public:
  const std::string& Name() const override { return name_; }
  int Next(int current, ScaleDirection direction, int min_step, int max_step) const override;
  std::unique_ptr<SpeedPolicy> Clone() const override {
    return std::make_unique<OneStepPolicy>();
  }

 private:
  std::string name_ = "one";
};

// Doubles (after incrementing, since step 0 would otherwise be absorbing) or
// halves the step index.
class DoubleStepPolicy final : public SpeedPolicy {
 public:
  const std::string& Name() const override { return name_; }
  int Next(int current, ScaleDirection direction, int min_step, int max_step) const override;
  std::unique_ptr<SpeedPolicy> Clone() const override {
    return std::make_unique<DoubleStepPolicy>();
  }

 private:
  std::string name_ = "double";
};

// Pegs the clock to the highest (up) or lowest (down) step.
class PegStepPolicy final : public SpeedPolicy {
 public:
  const std::string& Name() const override { return name_; }
  int Next(int current, ScaleDirection direction, int min_step, int max_step) const override;
  std::unique_ptr<SpeedPolicy> Clone() const override {
    return std::make_unique<PegStepPolicy>();
  }

 private:
  std::string name_ = "peg";
};

// Factory by name ("one" | "double" | "peg"); returns nullptr for unknown
// names.
std::unique_ptr<SpeedPolicy> MakeSpeedPolicy(const std::string& name);

}  // namespace dcs

#endif  // SRC_CORE_SPEED_POLICY_H_
