#include "src/core/martin_bound.h"

namespace dcs {

std::array<MartinCurvePoint, kNumClockSteps> ComputeMartinCurve(
    const PowerModel& power, const Battery& battery, const MemoryProfile& profile,
    const PeripheralState& peripherals) {
  std::array<MartinCurvePoint, kNumClockSteps> curve{};
  for (int step = 0; step < kNumClockSteps; ++step) {
    MartinCurvePoint& point = curve[static_cast<std::size_t>(step)];
    point.step = step;
    // 1.23 V is usable at the slow steps; Martin's argument assumes the
    // platform runs each speed at its cheapest legal voltage.
    const double volts = VoltageRegulator::StepAllowedAt(CoreVoltage::kLow, step)
                             ? VoltageVolts(CoreVoltage::kLow)
                             : VoltageVolts(CoreVoltage::kHigh);
    point.busy_watts = power.SystemWatts(ExecState::kBusy, step, volts, peripherals);
    point.lifetime_hours = battery.LifetimeHoursAtConstantPower(point.busy_watts);
    point.computations_per_discharge = MemoryModel::EffectiveBaseHz(step, profile) *
                                       point.lifetime_hours * 3600.0;
  }
  return curve;
}

int MartinLowerBoundStep(const PowerModel& power, const Battery& battery,
                         const MemoryProfile& profile,
                         const PeripheralState& peripherals) {
  const auto curve = ComputeMartinCurve(power, battery, profile, peripherals);
  int best = 0;
  for (int step = 1; step < kNumClockSteps; ++step) {
    if (curve[static_cast<std::size_t>(step)].computations_per_discharge >
        curve[static_cast<std::size_t>(best)].computations_per_discharge) {
      best = step;
    }
  }
  return best;
}

}  // namespace dcs
