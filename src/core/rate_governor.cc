#include "src/core/rate_governor.h"

#include <algorithm>
#include <cassert>

namespace dcs {

SaturationAwareGovernor::SaturationAwareGovernor(const RateGovernorConfig& config)
    : config_(config), name_("satrate" + std::to_string(config.window)) {
  assert(config_.window >= 1);
  assert(config_.headroom > 0.0);
}

std::optional<SpeedRequest> SaturationAwareGovernor::OnQuantum(
    const UtilizationSample& sample) {
  int step;
  if (sample.utilization >= config_.saturation_threshold) {
    // Demand is at least the full current rate — the average would
    // under-report it (Figure 5's ceiling).  Escape upward and flush the
    // window so stale slow-clock samples cannot drag the estimate down.
    step = std::min(sample.step + config_.escape_steps, config_.max_step);
    busy_mhz_.clear();
    sum_ = 0.0;
  } else {
    busy_mhz_.push_back(sample.utilization * ClockTable::FrequencyMhz(sample.step));
    sum_ += busy_mhz_.back();
    if (static_cast<int>(busy_mhz_.size()) > config_.window) {
      sum_ -= busy_mhz_.front();
      busy_mhz_.pop_front();
    }
    step = std::clamp(ClockTable::StepForAtLeastMhz(AverageBusyMhz() * config_.headroom),
                      config_.min_step, config_.max_step);
  }
  if (step == sample.step) {
    return std::nullopt;
  }
  SpeedRequest request;
  request.step = step;
  return request;
}

void SaturationAwareGovernor::Reset() {
  busy_mhz_.clear();
  sum_ = 0.0;
}

double SaturationAwareGovernor::AverageBusyMhz() const {
  if (busy_mhz_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(busy_mhz_.size());
}

}  // namespace dcs
