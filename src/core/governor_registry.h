// String-spec factory for governors, so benches, sweeps and the example CLI
// can name policies the way the paper does.
//
// Grammar (case-insensitive keywords):
//   "fixed-<mhz>"              e.g. "fixed-206.4"        (1.5 V)
//   "fixed-<mhz>@1.23"         e.g. "fixed-132.7@1.23"   (1.23 V rail)
//   "<pred>-<up>-<down>-<lo>-<hi>[-vs]"
//        pred: PAST | AVG<n> | WIN<n>
//        up/down: one | double | peg
//        lo/hi: scale-down / scale-up thresholds in percent
//        -vs: enable 1.23 V voltage scaling below 162.2 MHz
//        e.g. "PAST-peg-peg-93-98", "AVG9-one-one-50-70-vs"
//   "cycles<window>"           the naive Figure 5 policy, e.g. "cycles4"
//   "ondemand" | "schedutil"   modern baselines
//   "none"                     no policy (returns nullptr with no error)

#ifndef SRC_CORE_GOVERNOR_REGISTRY_H_
#define SRC_CORE_GOVERNOR_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/policy.h"

namespace dcs {

// Builds a governor from `spec`.  On failure returns nullptr and, if `error`
// is non-null, stores a human-readable reason.  The spec "none" returns
// nullptr with an empty error (meaning: run without a policy).
std::unique_ptr<ClockPolicy> MakeGovernor(const std::string& spec, std::string* error = nullptr);

// Specs of the policies highlighted by the paper, for sweep benches.
std::vector<std::string> PaperGovernorSpecs();

// The full 18-governor slate: every policy family the registry can build —
// fixed points, the PAST/AVG/WIN/LS/CYCLE/PEAK interval variants, cycle- and
// saturation-counters, the deadline pair, the Linux-style governors, flat
// utilization, and "none".  Shared by the fault-storm suite and the server
// SLO bench so "all governors" means the same thing everywhere.
std::vector<std::string> AllGovernorSpecs();

}  // namespace dcs

#endif  // SRC_CORE_GOVERNOR_REGISTRY_H_
