// String-spec factory for governors, so benches, sweeps and the example CLI
// can name policies the way the paper does.
//
// Grammar (case-insensitive keywords):
//   "fixed-<mhz>"              e.g. "fixed-206.4"        (1.5 V)
//   "fixed-<mhz>@1.23"         e.g. "fixed-132.7@1.23"   (1.23 V rail)
//   "<pred>-<up>-<down>-<lo>-<hi>[-vs]"
//        pred: PAST | AVG<n> | WIN<n>
//        up/down: one | double | peg
//        lo/hi: scale-down / scale-up thresholds in percent
//        -vs: enable 1.23 V voltage scaling below 162.2 MHz
//        e.g. "PAST-peg-peg-93-98", "AVG9-one-one-50-70-vs"
//   "cycles<window>"           the naive Figure 5 policy, e.g. "cycles4"
//   "ondemand" | "schedutil"   modern baselines
//   "pid[-<kp>-<ki>-<kd>][-vs]"  feedback governor on deadline slack +
//                              utilization error, e.g. "pid-0.5-0.4-0.05-vs"
//                              (default gains when omitted)
//   "adaptive[-<eta>][-vs]"    multiplicative-weights learner over a
//                              PAST/AVG/WIN expert pool, e.g. "adaptive-2.0"
//   "none"                     no policy (returns nullptr with no error)

#ifndef SRC_CORE_GOVERNOR_REGISTRY_H_
#define SRC_CORE_GOVERNOR_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/policy.h"

namespace dcs {

// Builds a governor from `spec`.  On failure returns nullptr and, if `error`
// is non-null, stores a human-readable reason.  The spec "none" returns
// nullptr with an empty error (meaning: run without a policy).
std::unique_ptr<ClockPolicy> MakeGovernor(const std::string& spec, std::string* error = nullptr);

// A governor plus its static dispatch record.  The registry is the one place
// that still knows each spec's concrete type, so it is where the devirtualised
// OnQuantum thunk (PolicyDispatch::For<Concrete>) gets built; the kernel then
// ticks through a plain function pointer instead of the vtable.  `dispatch`
// is non-owning: it aliases `governor` and is valid only while it lives.
struct GovernorHandle {
  std::unique_ptr<ClockPolicy> governor;
  PolicyDispatch dispatch;
};

// Like MakeGovernor, but also returns the static dispatch record for the
// concrete type the spec resolved to.  Failure and "none" behave as in
// MakeGovernor (null governor, null dispatch.policy).
GovernorHandle MakeGovernorDispatch(const std::string& spec, std::string* error = nullptr);

// Specs of the policies highlighted by the paper, for sweep benches.
std::vector<std::string> PaperGovernorSpecs();

// The full 20-governor slate: every policy family the registry can build —
// fixed points, the PAST/AVG/WIN/LS/CYCLE/PEAK interval variants, cycle- and
// saturation-counters, the deadline pair, the Linux-style governors, flat
// utilization, the feedback (PID) and adaptive learners, and "none".  Shared
// by the fault-storm suite, the server SLO bench and the competitive-ratio
// harness so "all governors" means the same thing everywhere.
std::vector<std::string> AllGovernorSpecs();

// One entry per constructor family the registry's grammar can reach, with an
// example spec that builds it.  The registry-completeness test cross-checks
// this table against AllGovernorSpecs(): registering a new governor family
// without representing it in the slate (or here) fails that test loudly.
struct GovernorFamily {
  std::string family;        // e.g. "interval-avg", "pid"
  std::string example_spec;  // a spec MakeGovernor accepts for this family
};
std::vector<GovernorFamily> GovernorFamilies();

// Classifies `spec` into the family its constructor branch belongs to
// (syntactic dispatch only — the spec may still fail detailed validation in
// MakeGovernor).  Returns "" for specs no branch claims.
std::string GovernorFamilyOf(const std::string& spec);

}  // namespace dcs

#endif  // SRC_CORE_GOVERNOR_REGISTRY_H_
