// Offline trace-replay oracles in the style of Weiser et al. (OSDI '94).
//
// Weiser's original evaluation replayed utilization traces through three
// algorithms: OPT (perfect hindsight — stretch all work across all idle
// time), FUTURE (peek one interval ahead) and PAST.  The paper under
// reproduction points out that OPT and FUTURE are unimplementable (they use
// future information) and that even Weiser's PAST is not implementable on a
// real kernel because it requires knowing how much *unfinished* work was
// pushed into the next interval — a real scheduler only observes that the
// CPU stayed busy to the end of the quantum.
//
// This module reproduces that replay framework so the repository can
// demonstrate the gap between trace-based oracle results and the
// implementable interval schedulers measured on the simulated Itsy.
//
// Model: the trace gives, per interval, the work w_t arriving in that
// interval, expressed as the fraction of an interval the work takes at full
// speed (w_t in [0, 1]).  A policy picks a relative speed s_t in
// [min_speed, 1].  Work left over (excess) carries into the next interval.
// Energy per interval is busy_time * s_t^2, the ideal quadratic
// (voltage-tracks-frequency) model Weiser and Govil assumed — the paper
// notes neither modelled idle power or switch costs, which is part of why
// their predicted savings did not materialise on real hardware.

#ifndef SRC_CORE_ORACLE_H_
#define SRC_CORE_ORACLE_H_

#include <span>
#include <vector>

#include "src/hw/power_model.h"

namespace dcs {

struct OracleResult {
  // Chosen relative speed per interval (fractions of full speed).
  std::vector<double> speeds;
  // Total energy in Weiser units (full-speed busy interval == 1).
  double energy = 0.0;
  // Energy of running the same trace at full speed (for savings ratios).
  double full_speed_energy = 0.0;
  // Sum of excess (carried-over) work across the trace; 0 for OPT.
  double total_excess = 0.0;
  // Fraction of intervals that ended with unfinished work.
  double missed_fraction = 0.0;

  double SavingsPercent() const {
    if (full_speed_energy <= 0.0) {
      return 0.0;
    }
    return 100.0 * (1.0 - energy / full_speed_energy);
  }
};

// OPT: a single constant speed that finishes all work exactly by the end of
// the trace (perfect stretching; per-interval deadlines ignored).
OracleResult RunOptOracle(std::span<const double> work, double min_speed);

// FUTURE: looks one interval ahead and picks the exact speed that finishes
// the carried-over plus arriving work within the interval (clamped).
OracleResult RunFutureOracle(std::span<const double> work, double min_speed);

// Weiser-style PAST: sets the next interval's speed to what would have
// finished the *previous* interval's work (arrivals plus carried excess) —
// information a real kernel does not have, which is the paper's point.
OracleResult RunWeiserPastOracle(std::span<const double> work, double min_speed);

// ---------------------------------------------------------------------------
// Offline optimal in physical units — the other side of the ledger.
//
// The Weiser oracles above replay abstract utilization traces under the ideal
// quadratic energy model.  The competitive-ratio harness needs a harder
// object: a *lower bound in joules* on what any schedule could have spent to
// execute the work a real simulated run performed, so that
// measured_energy / optimal_energy >= 1 holds for every governor by
// construction.  Two pieces:
//
//  * EnergyModel — the busy power the hardware can reach at each relative
//    speed, reduced to its lower convex hull over {(0, 0)} ∪ {(s_k, P_k −
//    P_idle)} with P_k the system busy watts at step k under the best legal
//    rail, and P_idle the cheapest nap state.  Mixing the hull's vertex
//    states time-shares any point on a chord, so the hull is exactly the
//    least above-idle energy rate achievable at a given average speed, and by
//    Jensen's inequality no real schedule beats it.  (The hull from the
//    origin is what makes "race to the most efficient step, then nap" come
//    out optimal when static power dominates — the paper's own observation.)
//
//  * RunOfflineOptimal — a Yao–Demers–Shenker-style minimum-energy schedule
//    (Li/Yao/Yuan compute the same object faster) for the per-interval work
//    trace: work recorded in interval t may be rescheduled anywhere in
//    [t, t + deadline_quanta).  With cumulative arrivals as the upper
//    obstacle and the deadline-shifted staircase as the lower obstacle, the
//    minimum of sum_t hull(c_t) over feasible cumulative profiles is the taut
//    string pulled through that corridor — the unique path minimising every
//    convex flow cost simultaneously, whose contact points are YDS's critical
//    intervals.  deadline_quanta = 1 degenerates to run-in-place (FUTURE),
//    deadline_quanta >= trace length to Weiser's single-speed OPT.
// ---------------------------------------------------------------------------

// Above-idle busy-power hull plus the idle floor.  Speeds are relative to
// the top step (ascending, in (0, 1]); watts_above_idle are the hull's vertex
// powers.  Vertices always start at the implicit origin (0 W at speed 0).
struct EnergyModel {
  std::vector<double> speeds;
  std::vector<double> watts_above_idle;
  double idle_watts = 0.0;

  // Least achievable above-idle watts while averaging `speed` (piecewise
  // linear hull evaluation; `speed` is clamped into [0, max vertex speed]).
  double AboveIdleWatts(double speed) const;
};

// Builds the hull for the Itsy: system busy watts per clock step at the best
// rail legal for that step, display on, audio off, above the cheapest nap
// state.  `params` must match the ItsyConfig of the runs being judged.
EnergyModel MakeItsyEnergyModel(const PowerModelParams& params = {});

struct OfflineOptimalResult {
  // Work executed per interval by the optimal schedule, full-speed seconds.
  std::vector<double> work;
  // Lower-bound energy: above_idle_joules + intervals * quantum * idle watts.
  double energy_joules = 0.0;
  double above_idle_joules = 0.0;
  // Fastest average interval speed the schedule needs (diagnostics).
  double peak_speed = 0.0;
};

// Computes the offline minimum-energy schedule for `work` (per-interval
// full-speed-equivalent busy seconds, each entry clamped to
// [0, interval_seconds]).  Work recorded in interval t must be executed
// within [t, t + deadline_quanta); all of it must be done by the end of the
// trace.  Throws std::invalid_argument on interval_seconds <= 0,
// deadline_quanta < 1 or an empty model hull.
OfflineOptimalResult RunOfflineOptimal(std::span<const double> work, double interval_seconds,
                                       int deadline_quanta, const EnergyModel& model);

}  // namespace dcs

#endif  // SRC_CORE_ORACLE_H_
