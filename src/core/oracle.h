// Offline trace-replay oracles in the style of Weiser et al. (OSDI '94).
//
// Weiser's original evaluation replayed utilization traces through three
// algorithms: OPT (perfect hindsight — stretch all work across all idle
// time), FUTURE (peek one interval ahead) and PAST.  The paper under
// reproduction points out that OPT and FUTURE are unimplementable (they use
// future information) and that even Weiser's PAST is not implementable on a
// real kernel because it requires knowing how much *unfinished* work was
// pushed into the next interval — a real scheduler only observes that the
// CPU stayed busy to the end of the quantum.
//
// This module reproduces that replay framework so the repository can
// demonstrate the gap between trace-based oracle results and the
// implementable interval schedulers measured on the simulated Itsy.
//
// Model: the trace gives, per interval, the work w_t arriving in that
// interval, expressed as the fraction of an interval the work takes at full
// speed (w_t in [0, 1]).  A policy picks a relative speed s_t in
// [min_speed, 1].  Work left over (excess) carries into the next interval.
// Energy per interval is busy_time * s_t^2, the ideal quadratic
// (voltage-tracks-frequency) model Weiser and Govil assumed — the paper
// notes neither modelled idle power or switch costs, which is part of why
// their predicted savings did not materialise on real hardware.

#ifndef SRC_CORE_ORACLE_H_
#define SRC_CORE_ORACLE_H_

#include <span>
#include <vector>

namespace dcs {

struct OracleResult {
  // Chosen relative speed per interval (fractions of full speed).
  std::vector<double> speeds;
  // Total energy in Weiser units (full-speed busy interval == 1).
  double energy = 0.0;
  // Energy of running the same trace at full speed (for savings ratios).
  double full_speed_energy = 0.0;
  // Sum of excess (carried-over) work across the trace; 0 for OPT.
  double total_excess = 0.0;
  // Fraction of intervals that ended with unfinished work.
  double missed_fraction = 0.0;

  double SavingsPercent() const {
    if (full_speed_energy <= 0.0) {
      return 0.0;
    }
    return 100.0 * (1.0 - energy / full_speed_energy);
  }
};

// OPT: a single constant speed that finishes all work exactly by the end of
// the trace (perfect stretching; per-interval deadlines ignored).
OracleResult RunOptOracle(std::span<const double> work, double min_speed);

// FUTURE: looks one interval ahead and picks the exact speed that finishes
// the carried-over plus arriving work within the interval (clamped).
OracleResult RunFutureOracle(std::span<const double> work, double min_speed);

// Weiser-style PAST: sets the next interval's speed to what would have
// finished the *previous* interval's work (arrivals plus carried excess) —
// information a real kernel does not have, which is the paper's point.
OracleResult RunWeiserPastOracle(std::span<const double> work, double min_speed);

}  // namespace dcs

#endif  // SRC_CORE_ORACLE_H_
