// A saturation-aware rate governor: the repaired version of Figure 5's
// naive busy-cycle-averaging policy.
//
// The paper's Figure 5(b) shows why averaging busy *cycles* fails: once the
// clock is slow and the CPU saturated, observed busy-MHz can never exceed
// the current frequency, so the policy can never justify speeding up — a
// feedback ceiling.  The repair is to treat a saturated quantum as
// "demand unknown, at least this much" and escape upward instead of
// trusting the average.  When no recent quantum saturated, the observed
// busy-MHz really is the demand, and the slowest step covering it (plus
// headroom) is chosen — automatically synthesising the per-interval rate
// requirement the paper wished applications would announce.

#ifndef SRC_CORE_RATE_GOVERNOR_H_
#define SRC_CORE_RATE_GOVERNOR_H_

#include <deque>
#include <string>

#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

struct RateGovernorConfig {
  // Averaging window in quanta.
  int window = 4;
  // Multiplier on the observed busy rate when picking a step.
  double headroom = 1.15;
  // A quantum busier than this counts as saturated.
  double saturation_threshold = 0.98;
  // On saturation: jump this many steps up (ClockTable::MaxStep() + 1 or
  // more means peg to the top).
  int escape_steps = 100;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
};

class SaturationAwareGovernor final : public ClockPolicy {
 public:
  explicit SaturationAwareGovernor(const RateGovernorConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  void SaveState(SnapshotWriter* w) const override {
    w->U64(busy_mhz_.size());
    for (const double v : busy_mhz_) {
      w->F64(v);
    }
    w->F64(sum_);
  }
  void LoadState(SnapshotReader* r) override {
    const std::size_t n = static_cast<std::size_t>(r->U64());
    busy_mhz_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      busy_mhz_.push_back(r->F64());
    }
    sum_ = r->F64();
  }

  double AverageBusyMhz() const;

 private:
  RateGovernorConfig config_;
  std::string name_;
  std::deque<double> busy_mhz_;
  double sum_ = 0.0;
};

}  // namespace dcs

#endif  // SRC_CORE_RATE_GOVERNOR_H_
