// The naive busy-cycle-averaging policy of the paper's Figure 5.
//
// "One simple policy would determine the number of 'busy' instructions
// during the previous N 10ms scheduling quanta and predict that activity in
// the next quanta would have the same percentage of busy cycles.  The clock
// speed would then be set to insure enough busy cycles.  This policy sounds
// simple, but it results in exceptionally poor responsiveness."
//
// We track, per quantum, the busy *megahertz-equivalents* (utilization times
// the clock frequency that was in effect) and average over the last N
// quanta, then pick the slowest step fast enough to cover that average.  The
// asymmetry the paper illustrates: when going idle, the averaged busy cycles
// collapse quickly because idle quanta contribute zeros; when speeding up,
// busy cycles can only grow as fast as the (still slow) clock permits, so
// the policy crawls upward — Figure 5(b).

#ifndef SRC_CORE_CYCLE_COUNT_GOVERNOR_H_
#define SRC_CORE_CYCLE_COUNT_GOVERNOR_H_

#include <deque>
#include <string>

#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

class CycleCountGovernor final : public ClockPolicy {
 public:
  // Averages busy cycles over the last `window` quanta (the paper's worked
  // example uses 4).  `headroom` multiplies the average before choosing a
  // step, so 1.0 targets exactly 100% utilization.
  explicit CycleCountGovernor(int window = 4, double headroom = 1.0);

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  void SaveState(SnapshotWriter* w) const override {
    w->U64(busy_mhz_.size());
    for (const double v : busy_mhz_) {
      w->F64(v);
    }
    w->F64(sum_);
  }
  void LoadState(SnapshotReader* r) override {
    const std::size_t n = static_cast<std::size_t>(r->U64());
    busy_mhz_.clear();
    for (std::size_t i = 0; i < n; ++i) {
      busy_mhz_.push_back(r->F64());
    }
    sum_ = r->F64();
  }

  // Average busy MHz over the current window (diagnostics; this is the
  // "Avg" annotation in Figure 5).
  double AverageBusyMhz() const;

 private:
  int window_;
  double headroom_;
  std::string name_;
  std::deque<double> busy_mhz_;
  double sum_ = 0.0;
};

}  // namespace dcs

#endif  // SRC_CORE_CYCLE_COUNT_GOVERNOR_H_
