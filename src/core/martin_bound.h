// Martin's battery-aware lower bound on clock frequency.
//
// The paper (section 3): "Martin [12] revised Weiser's PAST algorithm to
// account for the non-ideal properties of batteries and the non-linear
// relationship between system power and clock frequency.  Martin argues that
// the lower bound on clock frequency should be chosen such that the number
// of computations per battery lifetime is maximized."
//
// With a non-linear power curve (static residue) and a non-ideal battery
// (Peukert), running slower does not always buy more total computation: at
// the bottom steps the fixed draw dominates and computations-per-discharge
// *fall* again.  This module computes that curve and the argmax step, which
// governors can use as their min_step clamp.

#ifndef SRC_CORE_MARTIN_BOUND_H_
#define SRC_CORE_MARTIN_BOUND_H_

#include <array>

#include "src/hw/battery.h"
#include "src/hw/clock_table.h"
#include "src/hw/memory_model.h"
#include "src/hw/power_model.h"

namespace dcs {

struct MartinCurvePoint {
  int step = 0;
  // System power while continuously computing at this step, watts.
  double busy_watts = 0.0;
  // Battery lifetime at that draw, hours.
  double lifetime_hours = 0.0;
  // Effective base cycles per discharge (throughput x lifetime).
  double computations_per_discharge = 0.0;
};

// Evaluates computations-per-discharge for every clock step, for a workload
// with the given memory profile, on the given hardware models.
std::array<MartinCurvePoint, kNumClockSteps> ComputeMartinCurve(
    const PowerModel& power, const Battery& battery, const MemoryProfile& profile,
    const PeripheralState& peripherals);

// The step that maximises computations per discharge — Martin's recommended
// lower bound for clock scaling.
int MartinLowerBoundStep(const PowerModel& power, const Battery& battery,
                         const MemoryProfile& profile, const PeripheralState& peripherals);

}  // namespace dcs

#endif  // SRC_CORE_MARTIN_BOUND_H_
