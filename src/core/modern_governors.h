// Modern Linux cpufreq governors as extension baselines.
//
// The paper predates cpufreq, but its PAST/AVG_N interval schedulers are the
// direct ancestors of Linux's `ondemand` and `schedutil` governors.  We
// implement faithful simplifications of both so the benches can ask: would
// today's heuristics have fared better on the Itsy?
//
//   * OndemandGovernor — samples every `sampling_quanta`; if utilization
//     exceeds up_threshold it pegs to the maximum step (ondemand's signature
//     move), otherwise it picks the slowest frequency that would keep
//     utilization at up_threshold, i.e. f_next = f_cur * util / up_threshold.
//   * SchedutilGovernor — tracks per-quantum utilization scaled to current
//     capacity and applies util-clamping with the kernel's 1.25 headroom:
//     f_next = 1.25 * util_scaled * f_max, rate-limited.
//
// Both map continuous targets onto the SA-1100's 11 discrete steps with
// "lowest step that covers the target" semantics.

#ifndef SRC_CORE_MODERN_GOVERNORS_H_
#define SRC_CORE_MODERN_GOVERNORS_H_

#include <string>

#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

struct OndemandConfig {
  double up_threshold = 0.80;
  // Decisions are made every this many quanta (ondemand's sampling_rate).
  int sampling_quanta = 1;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
};

class OndemandGovernor final : public ClockPolicy {
 public:
  explicit OndemandGovernor(const OndemandConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  void SaveState(SnapshotWriter* w) const override {
    w->I64(quanta_since_decision_);
    w->F64(max_util_in_window_);
  }
  void LoadState(SnapshotReader* r) override {
    quanta_since_decision_ = static_cast<int>(r->I64());
    max_util_in_window_ = r->F64();
  }

 private:
  OndemandConfig config_;
  std::string name_;
  int quanta_since_decision_ = 0;
  double max_util_in_window_ = 0.0;
};

struct SchedutilConfig {
  // The kernel's "map util to 80% of capacity" headroom factor.
  double headroom = 1.25;
  // Minimum quanta between frequency increases/decreases (rate limit).
  int rate_limit_quanta = 1;
  // PELT-like exponential smoothing applied to raw utilization (0 = none).
  double smoothing = 0.5;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
};

class SchedutilGovernor final : public ClockPolicy {
 public:
  explicit SchedutilGovernor(const SchedutilConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  void SaveState(SnapshotWriter* w) const override {
    w->F64(scaled_util_);
    w->I64(quanta_since_change_);
  }
  void LoadState(SnapshotReader* r) override {
    scaled_util_ = r->F64();
    quanta_since_change_ = static_cast<int>(r->I64());
  }

  // Smoothed capacity-scaled utilization (fraction of f_max in use).
  double scaled_utilization() const { return scaled_util_; }

 private:
  SchedutilConfig config_;
  std::string name_;
  double scaled_util_ = 0.0;
  int quanta_since_change_ = 0;
};

}  // namespace dcs

#endif  // SRC_CORE_MODERN_GOVERNORS_H_
