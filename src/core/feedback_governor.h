// Feedback (PID) clock governor driven by utilization and deadline slack.
//
// The interval schedulers reproduced from the paper are open-loop: they map
// a utilization prediction straight to a speed and rediscover every quantum
// how wrong the prediction was.  This governor closes the loop in the style
// of energy-aware feedback scheduling (Xia et al., PAPERS.md): it regulates
// commanded relative speed with a discrete PID on the error between the
// speed the workload appears to need and the speed currently in effect.
//
// Required speed is the max of two observers:
//   * utilization path — demand d = u * s_actual (full-speed work rate seen
//     last quantum), required r_u = d / target_utilization.  A pegged
//     quantum (u ~ 1) censors demand — the classic interval-governor
//     ceiling — so r_u is boosted multiplicatively above the current speed
//     until utilization unpegs (saturation escape);
//   * deadline path — announced-work density at the top step from
//     Kernel::PendingDeadlines() (same slack arithmetic as the deadline
//     governor), divided by density_target.  Zero when nothing is announced.
//
// The PID runs in velocity form around the *hardware's actual* speed
//     sigma = s_actual + kp*(e - e1) + ki*e + kd*(e - 2*e1 + e2)
// so a transition stuck by fault injection re-enters the loop as error
// instead of compounding (self-correcting base), and the integral action
// lives in the accumulated speed itself.  Anti-windup is by clamping: while
// the command sits at a range limit and the error keeps pushing into it,
// the command is held at the limit (re-running the update there would let
// the kp/kd terms kick it off the floor each time the hardware catches up,
// a two-step limit cycle at idle).  The command is clamped
// to [min_step speed, 1] and mapped to the slowest table step at least that
// fast; -vs variants drop the rail whenever the chosen step allows it.

#ifndef SRC_CORE_FEEDBACK_GOVERNOR_H_
#define SRC_CORE_FEEDBACK_GOVERNOR_H_

#include <string>

#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

class Kernel;

struct FeedbackGovernorConfig {
  // PID gains on the speed error (dimensionless, per quantum).
  double kp = 0.5;
  double ki = 0.4;
  double kd = 0.05;
  // Utilization setpoint the loop regulates toward (headroom below 1.0
  // absorbs prediction error without pegging).
  double target_utilization = 0.85;
  // Slack-density level the deadline observer is allowed to fill.
  double density_target = 0.85;
  // Multiplicative speed escape applied while a quantum is pegged.
  double saturation_boost = 0.25;
  // Utilization at or above which the demand estimate is considered
  // censored and the escape kicks in.
  double saturation_threshold = 0.97;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
  // Drop the core rail to 1.23 V whenever the chosen step allows it.
  bool voltage_scaling = false;
};

class FeedbackGovernor final : public ClockPolicy {
 public:
  explicit FeedbackGovernor(const FeedbackGovernorConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  void OnInstall(Kernel& kernel) override { kernel_ = &kernel; }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  void SaveState(SnapshotWriter* w) const override {
    w->F64(error1_);
    w->F64(error2_);
    w->F64(last_command_);
    w->Bool(pinned_high_);
    w->Bool(pinned_low_);
  }
  void LoadState(SnapshotReader* r) override {
    error1_ = r->F64();
    error2_ = r->F64();
    last_command_ = r->F64();
    pinned_high_ = r->Bool();
    pinned_low_ = r->Bool();
  }

  // Last commanded relative speed, pre-quantization (diagnostics).
  double last_command() const { return last_command_; }

 private:
  // Required relative speed from announced deadlines (0 when none pending).
  double DeadlineSpeed(const UtilizationSample& sample) const;

  FeedbackGovernorConfig config_;
  std::string name_;
  Kernel* kernel_ = nullptr;
  double error1_ = 0.0;  // e_{t-1}
  double error2_ = 0.0;  // e_{t-2}
  double last_command_ = 1.0;
  bool pinned_high_ = false;
  bool pinned_low_ = false;
};

}  // namespace dcs

#endif  // SRC_CORE_FEEDBACK_GOVERNOR_H_
