#include "src/core/govil_policies.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace dcs {
namespace {

double Clamp01(double u) { return std::clamp(u, 0.0, 1.0); }

}  // namespace

// --- FLAT -------------------------------------------------------------------

FlatGovernor::FlatGovernor(const FlatGovernorConfig& config) : config_(config) {
  assert(config_.target > 0.0 && config_.target <= 1.0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "flat-%.0f", config_.target * 100.0);
  name_ = buf;
}

std::optional<SpeedRequest> FlatGovernor::OnQuantum(const UtilizationSample& sample) {
  // Demand in MHz-equivalents; pick the slowest step that would bring the
  // utilization back to the target.  A saturated quantum under-reports
  // demand, so treat it as "at least one step more than now".
  const double busy_mhz = sample.utilization * ClockTable::FrequencyMhz(sample.step);
  int step;
  if (sample.utilization >= 0.999) {
    step = std::min(sample.step + 1, config_.max_step);
  } else {
    step = std::clamp(ClockTable::StepForAtLeastMhz(busy_mhz / config_.target),
                      config_.min_step, config_.max_step);
  }
  if (step == sample.step) {
    return std::nullopt;
  }
  SpeedRequest request;
  request.step = step;
  return request;
}

// --- LONG_SHORT ---------------------------------------------------------------

LongShortPredictor::LongShortPredictor(int short_window, int long_window)
    : short_window_(short_window), long_window_(long_window) {
  assert(short_window >= 1 && long_window >= short_window);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "LS%d_%d", short_window_, long_window_);
  name_ = buf;
}

double LongShortPredictor::Update(double utilization) {
  history_.push_back(Clamp01(utilization));
  if (static_cast<int>(history_.size()) > long_window_) {
    history_.pop_front();
  }
  double short_sum = 0.0;
  const int short_n = std::min<int>(short_window_, static_cast<int>(history_.size()));
  for (int i = 0; i < short_n; ++i) {
    short_sum += history_[history_.size() - 1 - static_cast<std::size_t>(i)];
  }
  double long_sum = 0.0;
  for (const double u : history_) {
    long_sum += u;
  }
  const double short_avg = short_sum / short_n;
  const double long_avg = long_sum / static_cast<double>(history_.size());
  current_ = (3.0 * short_avg + long_avg) / 4.0;
  return current_;
}

void LongShortPredictor::Reset() {
  history_.clear();
  current_ = 0.0;
}

std::unique_ptr<UtilizationPredictor> LongShortPredictor::Clone() const {
  auto clone = std::make_unique<LongShortPredictor>(short_window_, long_window_);
  clone->history_ = history_;
  clone->current_ = current_;
  return clone;
}

// --- CYCLE ----------------------------------------------------------------------

CyclePredictor::CyclePredictor(int cycle_length, double tolerance)
    : cycle_length_(cycle_length), tolerance_(tolerance),
      name_("CYCLE" + std::to_string(cycle_length)) {
  assert(cycle_length >= 2);
}

double CyclePredictor::Update(double utilization) {
  history_.push_back(Clamp01(utilization));
  const std::size_t n = history_.size();
  const std::size_t len = static_cast<std::size_t>(cycle_length_);
  cycle_matched_ = false;
  if (n >= 2 * len) {
    // Compare the last cycle with the one before it.
    double err = 0.0;
    for (std::size_t i = 0; i < len; ++i) {
      err += std::abs(history_[n - 1 - i] - history_[n - 1 - i - len]);
    }
    if (err / static_cast<double>(len) <= tolerance_) {
      // Strong periodicity: predict what happened one cycle ago (the
      // element that followed the matching phase position).
      cycle_matched_ = true;
      current_ = history_[n - len];
      return current_;
    }
  }
  // Fallback: mean of the last cycle_length quanta.
  double sum = 0.0;
  const std::size_t take = std::min(n, len);
  for (std::size_t i = 0; i < take; ++i) {
    sum += history_[n - 1 - i];
  }
  current_ = sum / static_cast<double>(take);
  return current_;
}

void CyclePredictor::Reset() {
  history_.clear();
  current_ = 0.0;
  cycle_matched_ = false;
}

std::unique_ptr<UtilizationPredictor> CyclePredictor::Clone() const {
  auto clone = std::make_unique<CyclePredictor>(cycle_length_, tolerance_);
  clone->history_ = history_;
  clone->current_ = current_;
  clone->cycle_matched_ = cycle_matched_;
  return clone;
}

// --- PEAK ----------------------------------------------------------------------

PeakPredictor::PeakPredictor() : name_("PEAK") {}

double PeakPredictor::Update(double utilization) {
  const double u = Clamp01(utilization);
  if (!primed_) {
    primed_ = true;
    previous_ = u;
    current_ = u;
    return current_;
  }
  if (u > previous_) {
    // Rising edge: expect a narrow peak — predict a fall back to the
    // previous level rather than continued growth.
    current_ = previous_;
  } else if (u < previous_) {
    // Falling edge: expect the fall to continue by the same amount.
    current_ = Clamp01(u - (previous_ - u));
  } else {
    current_ = u;
  }
  previous_ = u;
  return current_;
}

void PeakPredictor::Reset() {
  previous_ = 0.0;
  current_ = 0.0;
  primed_ = false;
}

std::unique_ptr<UtilizationPredictor> PeakPredictor::Clone() const {
  auto clone = std::make_unique<PeakPredictor>();
  clone->previous_ = previous_;
  clone->current_ = current_;
  clone->primed_ = primed_;
  return clone;
}

}  // namespace dcs
