#include "src/core/replay_policy.h"

#include <algorithm>
#include <utility>

namespace dcs {

ScheduleReplayPolicy::ScheduleReplayPolicy(std::vector<int> steps)
    : steps_(std::move(steps)) {
  for (int& step : steps_) {
    step = ClockTable::Clamp(step);
  }
  name_ = "replay[" + std::to_string(steps_.size()) + "]";
}

std::optional<SpeedRequest> ScheduleReplayPolicy::OnQuantum(const UtilizationSample& sample) {
  if (steps_.empty()) {
    return std::nullopt;
  }
  const int step = steps_[std::min(next_, steps_.size() - 1)];
  if (next_ < steps_.size()) {
    ++next_;
  }
  if (step == sample.step) {
    return std::nullopt;
  }
  SpeedRequest request;
  request.step = step;
  return request;
}

std::vector<int> StepsFromRelativeSpeeds(const std::vector<double>& speeds) {
  std::vector<int> steps;
  steps.reserve(speeds.size());
  const double top = ClockTable::FrequencyMhz(ClockTable::MaxStep());
  for (const double speed : speeds) {
    steps.push_back(ClockTable::StepForAtLeastMhz(speed * top));
  }
  return steps;
}

}  // namespace dcs
