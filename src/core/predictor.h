// Utilization predictors — the "prediction" half of an interval scheduler.
//
// Weiser et al. split interval scheduling into *prediction* (estimate the
// next interval's utilization from past intervals) and *speed-setting*
// (choose a clock step given the prediction).  This file implements the
// predictors the paper evaluates:
//
//   * PAST    — the next interval will look exactly like the last one
//               (equivalently AVG_0);
//   * AVG_N   — exponential moving average with decay N:
//                   W_t = (N * W_{t-1} + U_{t-1}) / (N + 1)
//               (paper section 2.2; section 5.3 shows it cannot settle);
//   * sliding window — plain mean of the last `window` intervals (the paper
//               simulated this too and found it "would perform no better").

#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <deque>
#include <memory>
#include <string>

#include "src/sim/snapshot.h"

namespace dcs {

class UtilizationPredictor {
 public:
  virtual ~UtilizationPredictor() = default;

  // Short name for report tables, e.g. "PAST", "AVG9", "WIN10".
  virtual const std::string& Name() const = 0;

  // Feeds the utilization of the interval that just ended; returns the
  // predicted ("weighted") utilization for the next interval, in [0, 1].
  virtual double Update(double utilization) = 0;

  // Last prediction without feeding a new sample (0 before any Update).
  virtual double Current() const = 0;

  // Clears all history.
  virtual void Reset() = 0;

  // Deep copy, for sweeps that reuse a configured prototype.
  virtual std::unique_ptr<UtilizationPredictor> Clone() const = 0;

  // Device-snapshot support (src/sim/snapshot.h): mutable history only —
  // windows/decay constants are ctor-owned and must match the image.
  virtual void SaveState(SnapshotWriter* w) const { (void)w; }
  virtual void LoadState(SnapshotReader* r) { (void)r; }
};

// Serializes a deque/vector of doubles (predictor history windows).  Loads
// clear-then-push within the container's retained chunk storage, so device
// cycling with a same-shape window does not allocate in steady state.
template <typename Container>
void SaveSampleWindow(SnapshotWriter* w, const Container& c) {
  w->U64(c.size());
  for (const double v : c) {
    w->F64(v);
  }
}

template <typename Container>
void LoadSampleWindow(SnapshotReader* r, Container* c) {
  const std::size_t n = static_cast<std::size_t>(r->U64());
  c->clear();
  for (std::size_t i = 0; i < n; ++i) {
    c->push_back(r->F64());
  }
}

// PAST: prediction == previous interval's utilization.
class PastPredictor final : public UtilizationPredictor {
 public:
  PastPredictor();
  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return last_; }
  void Reset() override { last_ = 0.0; }
  std::unique_ptr<UtilizationPredictor> Clone() const override;
  void SaveState(SnapshotWriter* w) const override { w->F64(last_); }
  void LoadState(SnapshotReader* r) override { last_ = r->F64(); }

 private:
  std::string name_;
  double last_ = 0.0;
};

// AVG_N exponential moving average.  AVG_0 degenerates to PAST.
class AvgNPredictor final : public UtilizationPredictor {
 public:
  explicit AvgNPredictor(int n);
  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return weighted_; }
  void Reset() override { weighted_ = 0.0; }
  std::unique_ptr<UtilizationPredictor> Clone() const override;
  void SaveState(SnapshotWriter* w) const override { w->F64(weighted_); }
  void LoadState(SnapshotReader* r) override { weighted_ = r->F64(); }

  int n() const { return n_; }

 private:
  int n_;
  std::string name_;
  double weighted_ = 0.0;
};

// Plain mean of the last `window` utilizations.
class SlidingWindowPredictor final : public UtilizationPredictor {
 public:
  explicit SlidingWindowPredictor(int window);
  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override;
  void Reset() override;
  std::unique_ptr<UtilizationPredictor> Clone() const override;
  void SaveState(SnapshotWriter* w) const override {
    SaveSampleWindow(w, samples_);
    w->F64(sum_);
  }
  void LoadState(SnapshotReader* r) override {
    LoadSampleWindow(r, &samples_);
    sum_ = r->F64();
  }

  int window() const { return window_; }

 private:
  int window_;
  std::string name_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

}  // namespace dcs

#endif  // SRC_CORE_PREDICTOR_H_
