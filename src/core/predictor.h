// Utilization predictors — the "prediction" half of an interval scheduler.
//
// Weiser et al. split interval scheduling into *prediction* (estimate the
// next interval's utilization from past intervals) and *speed-setting*
// (choose a clock step given the prediction).  This file implements the
// predictors the paper evaluates:
//
//   * PAST    — the next interval will look exactly like the last one
//               (equivalently AVG_0);
//   * AVG_N   — exponential moving average with decay N:
//                   W_t = (N * W_{t-1} + U_{t-1}) / (N + 1)
//               (paper section 2.2; section 5.3 shows it cannot settle);
//   * sliding window — plain mean of the last `window` intervals (the paper
//               simulated this too and found it "would perform no better").

#ifndef SRC_CORE_PREDICTOR_H_
#define SRC_CORE_PREDICTOR_H_

#include <deque>
#include <memory>
#include <string>

namespace dcs {

class UtilizationPredictor {
 public:
  virtual ~UtilizationPredictor() = default;

  // Short name for report tables, e.g. "PAST", "AVG9", "WIN10".
  virtual const std::string& Name() const = 0;

  // Feeds the utilization of the interval that just ended; returns the
  // predicted ("weighted") utilization for the next interval, in [0, 1].
  virtual double Update(double utilization) = 0;

  // Last prediction without feeding a new sample (0 before any Update).
  virtual double Current() const = 0;

  // Clears all history.
  virtual void Reset() = 0;

  // Deep copy, for sweeps that reuse a configured prototype.
  virtual std::unique_ptr<UtilizationPredictor> Clone() const = 0;
};

// PAST: prediction == previous interval's utilization.
class PastPredictor final : public UtilizationPredictor {
 public:
  PastPredictor();
  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return last_; }
  void Reset() override { last_ = 0.0; }
  std::unique_ptr<UtilizationPredictor> Clone() const override;

 private:
  std::string name_;
  double last_ = 0.0;
};

// AVG_N exponential moving average.  AVG_0 degenerates to PAST.
class AvgNPredictor final : public UtilizationPredictor {
 public:
  explicit AvgNPredictor(int n);
  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return weighted_; }
  void Reset() override { weighted_ = 0.0; }
  std::unique_ptr<UtilizationPredictor> Clone() const override;

  int n() const { return n_; }

 private:
  int n_;
  std::string name_;
  double weighted_ = 0.0;
};

// Plain mean of the last `window` utilizations.
class SlidingWindowPredictor final : public UtilizationPredictor {
 public:
  explicit SlidingWindowPredictor(int window);
  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override;
  void Reset() override;
  std::unique_ptr<UtilizationPredictor> Clone() const override;

  int window() const { return window_; }

 private:
  int window_;
  std::string name_;
  std::deque<double> samples_;
  double sum_ = 0.0;
};

}  // namespace dcs

#endif  // SRC_CORE_PREDICTOR_H_
