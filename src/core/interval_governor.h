// The interval clock scheduler: predictor + hysteresis thresholds +
// independent up/down speed policies + optional voltage scaling.
//
// At every 10 ms quantum boundary the kernel feeds the ended quantum's
// utilization to the predictor; if the weighted utilization rises above the
// scale-up threshold the up speed policy picks a faster step, if it falls
// below the scale-down threshold the down policy picks a slower one
// (hysteresis band in between: no change).  Pering et al. used 50%/70%; the
// paper's best policy is PAST with peg-peg and a 93%/98% band, optionally
// dropping the core rail to 1.23 V whenever the chosen step is slow enough.

#ifndef SRC_CORE_INTERVAL_GOVERNOR_H_
#define SRC_CORE_INTERVAL_GOVERNOR_H_

#include <memory>
#include <string>

#include "src/core/predictor.h"
#include "src/core/speed_policy.h"
#include "src/kernel/policy.h"
#include "src/obs/metrics.h"

namespace dcs {

// Hysteresis band on the *predicted* utilization.
struct Thresholds {
  double scale_down = 0.50;  // below this, slow the clock
  double scale_up = 0.70;    // above this, speed it up

  bool Valid() const { return scale_down <= scale_up; }
};

struct IntervalGovernorConfig {
  Thresholds thresholds;
  // Clamp range for chosen steps.
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
  // When true, request the 1.23 V rail whenever the current step is at or
  // below voltage_scale_max_step, and 1.5 V otherwise (Table 2's "Voltage
  // Scaling @ 162.2 MHz" row).
  bool voltage_scaling = false;
  int voltage_scale_max_step = kMaxStepAtLowVoltage;
};

class IntervalGovernor final : public ClockPolicy {
 public:
  IntervalGovernor(std::unique_ptr<UtilizationPredictor> predictor,
                   std::unique_ptr<SpeedPolicy> up, std::unique_ptr<SpeedPolicy> down,
                   const IntervalGovernorConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  // Binds the governor.scale_ups / governor.scale_downs counters when the
  // hosting kernel has an observability registry attached.
  void OnInstall(Kernel& kernel) override;
  // Decisions are anchored on sample.step — the step the hardware actually
  // runs, not the one last requested — so a transition that failed under
  // fault injection simply re-enters the decision from reality next quantum;
  // an unsafe rail drop is refused by the hardware layer.
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  // Counter instruments are not serialized: they live in the (separately
  // snapshotted) metrics registry and re-resolve through OnInstall.
  void SaveState(SnapshotWriter* w) const override {
    predictor_->SaveState(w);
    w->I64(scale_ups_);
    w->I64(scale_downs_);
  }
  void LoadState(SnapshotReader* r) override {
    predictor_->LoadState(r);
    scale_ups_ = static_cast<int>(r->I64());
    scale_downs_ = static_cast<int>(r->I64());
  }

  // Introspection for tests and benches.
  double weighted_utilization() const { return predictor_->Current(); }
  const UtilizationPredictor& predictor() const { return *predictor_; }
  const IntervalGovernorConfig& config() const { return config_; }
  int scale_ups() const { return scale_ups_; }
  int scale_downs() const { return scale_downs_; }

 private:
  std::unique_ptr<UtilizationPredictor> predictor_;
  std::unique_ptr<SpeedPolicy> up_;
  std::unique_ptr<SpeedPolicy> down_;
  IntervalGovernorConfig config_;
  std::string name_;
  int scale_ups_ = 0;
  int scale_downs_ = 0;
  MetricsCounter* ctr_scale_ups_ = nullptr;
  MetricsCounter* ctr_scale_downs_ = nullptr;
};

// Convenience factory for the paper's named configurations, e.g.
// MakePastPegPeg(0.93, 0.98, /*voltage_scaling=*/false) — the "best policy"
// of section 5.4.
std::unique_ptr<IntervalGovernor> MakePastPegPeg(double scale_down, double scale_up,
                                                 bool voltage_scaling);

}  // namespace dcs

#endif  // SRC_CORE_INTERVAL_GOVERNOR_H_
