// Online-learning interval governor: multiplicative weights over predictors.
//
// The paper's interval schedulers each commit to one prediction horizon —
// PAST reacts instantly but thrashes, AVG_N smooths but lags (the section
// 5.3 "cannot settle" failure), and no single N suits both an MPEG decode
// and a bursty server trace.  Instead of picking N per workload by hand,
// this governor runs a small pool of expert predictors (PAST, AVG_N and
// sliding windows at several horizons) side by side and learns which to
// trust with the classic multiplicative-weights update:
//
//     loss_i = |prediction_i - utilization|          (per quantum, in [0,1])
//     w_i   <- w_i * exp(-eta * loss_i),  then renormalize
//
// The speed decision uses the weight-mixed prediction as the demand
// estimate: required speed = mix * s_actual / target_utilization, with the
// same pegged-quantum saturation escape as the feedback governor (a pegged
// quantum censors demand for every expert at once), mapped to the slowest
// covering table step.  A weight floor keeps every expert live so the pool
// can re-adapt when the workload's phase changes.  Pure arithmetic over the
// sample stream — no RNG — so runs are deterministic and replayable.

#ifndef SRC_CORE_ADAPTIVE_GOVERNOR_H_
#define SRC_CORE_ADAPTIVE_GOVERNOR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/predictor.h"
#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

struct AdaptiveGovernorConfig {
  // Multiplicative-weights learning rate.
  double eta = 2.0;
  // No expert's weight may fall below floor / pool_size (keeps dormant
  // experts recoverable after a workload phase change).
  double weight_floor = 0.02;
  // Utilization setpoint the mixed demand estimate is scaled against.
  double target_utilization = 0.85;
  // Pegged-quantum saturation escape (see FeedbackGovernor).
  double saturation_boost = 0.25;
  double saturation_threshold = 0.97;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
  // Drop the core rail to 1.23 V whenever the chosen step allows it.
  bool voltage_scaling = false;
};

class AdaptiveGovernor final : public ClockPolicy {
 public:
  explicit AdaptiveGovernor(const AdaptiveGovernorConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  void OnInstall(Kernel& /*kernel*/) override {}
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override;
  // Expert pool composition is ctor-fixed, so weights/predictions restore
  // positionally and each expert serializes its own history in order.
  void SaveState(SnapshotWriter* w) const override {
    for (const auto& expert : experts_) {
      expert->SaveState(w);
    }
    for (const double v : weights_) {
      w->F64(v);
    }
    for (const double v : predictions_) {
      w->F64(v);
    }
    w->F64(mixed_);
  }
  void LoadState(SnapshotReader* r) override {
    for (const auto& expert : experts_) {
      expert->LoadState(r);
    }
    for (double& v : weights_) {
      v = r->F64();
    }
    for (double& v : predictions_) {
      v = r->F64();
    }
    mixed_ = r->F64();
  }

  // Introspection for tests: expert names and their current weights.
  std::vector<std::string> ExpertNames() const;
  const std::vector<double>& weights() const { return weights_; }
  double mixed_prediction() const { return mixed_; }

 private:
  AdaptiveGovernorConfig config_;
  std::string name_;
  std::vector<std::unique_ptr<UtilizationPredictor>> experts_;
  std::vector<double> weights_;
  std::vector<double> predictions_;  // each expert's current prediction
  double mixed_ = 0.0;
};

}  // namespace dcs

#endif  // SRC_CORE_ADAPTIVE_GOVERNOR_H_
