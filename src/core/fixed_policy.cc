#include "src/core/fixed_policy.h"

#include <cstdio>

#include "src/hw/clock_table.h"

namespace dcs {

FixedPolicy::FixedPolicy(int step, CoreVoltage voltage)
    : step_(ClockTable::Clamp(step)), voltage_(voltage) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "fixed-%.1fMHz-%.2fV", ClockTable::FrequencyMhz(step_),
                VoltageVolts(voltage_));
  name_ = buf;
}

std::optional<SpeedRequest> FixedPolicy::OnQuantum(const UtilizationSample& sample) {
  if (applied_ && sample.step == step_ && sample.voltage == voltage_) {
    return std::nullopt;
  }
  applied_ = true;
  SpeedRequest request;
  if (sample.step != step_) {
    request.step = step_;
  }
  if (sample.voltage != voltage_) {
    request.voltage = voltage_;
  }
  if (request.Empty()) {
    return std::nullopt;
  }
  return request;
}

}  // namespace dcs
