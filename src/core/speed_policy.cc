#include "src/core/speed_policy.h"

#include <algorithm>

namespace dcs {
namespace {

int ClampTo(int step, int min_step, int max_step) {
  return std::clamp(step, min_step, max_step);
}

}  // namespace

int OneStepPolicy::Next(int current, ScaleDirection direction, int min_step,
                        int max_step) const {
  const int next = direction == ScaleDirection::kUp ? current + 1 : current - 1;
  return ClampTo(next, min_step, max_step);
}

int DoubleStepPolicy::Next(int current, ScaleDirection direction, int min_step,
                           int max_step) const {
  int next;
  if (direction == ScaleDirection::kUp) {
    // "Since the lowest clock step on the Itsy is zero, we increment the
    // clock index value before doubling it."
    next = (current + 1) * 2;
  } else {
    next = current / 2;
  }
  return ClampTo(next, min_step, max_step);
}

int PegStepPolicy::Next(int /*current*/, ScaleDirection direction, int min_step,
                        int max_step) const {
  return direction == ScaleDirection::kUp ? max_step : min_step;
}

std::unique_ptr<SpeedPolicy> MakeSpeedPolicy(const std::string& name) {
  if (name == "one") {
    return std::make_unique<OneStepPolicy>();
  }
  if (name == "double") {
    return std::make_unique<DoubleStepPolicy>();
  }
  if (name == "peg") {
    return std::make_unique<PegStepPolicy>();
  }
  return nullptr;
}

}  // namespace dcs
