// The remaining policies of Govil, Chan & Wasserman, "Comparing Algorithms
// for Dynamic Speed-Setting of a Low-Power CPU" (MobiCom '95) — the study
// the paper under reproduction cites as having "considered a large number of
// algorithms" on Weiser's traces.  Implemented here as *online* policies on
// the Itsy's discrete clock steps so they can be measured on the same
// applications:
//
//   * FLAT       — aim the CPU straight at a target utilization: pick the
//                  slowest step whose capacity keeps predicted utilization
//                  at the target (Govil's "Flat" smoothing).
//   * LONG_SHORT — predict with a 3:1 blend of a short recent window and a
//                  longer history window ("Long-short").
//   * CYCLE      — look for a cycle of length X in the utilization history
//                  and, if the last X quanta match the X before them well,
//                  predict the quantum one cycle back ("Cycle").
//   * PEAK       — expect narrow peaks: on a rising edge predict a fall, on
//                  a falling edge predict a further fall ("Peak").
//
// LONG_SHORT, CYCLE and PEAK are UtilizationPredictors and compose with the
// interval governor's thresholds and speed policies (registry specs
// "LS-...", "CYCLE<len>-...", "PEAK-...").  FLAT has its own speed-setting
// rule and is a ClockPolicy (spec "flat-<target%>").

#ifndef SRC_CORE_GOVIL_POLICIES_H_
#define SRC_CORE_GOVIL_POLICIES_H_

#include <deque>
#include <string>
#include <vector>

#include "src/core/predictor.h"
#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

// --- FLAT -------------------------------------------------------------------

struct FlatGovernorConfig {
  // Target utilization the clock is aimed at (Govil used smoothing toward a
  // constant; 0.7-0.8 behaves like a deadband-free ondemand).
  double target = 0.75;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
};

class FlatGovernor final : public ClockPolicy {
 public:
  explicit FlatGovernor(const FlatGovernorConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override {}

 private:
  FlatGovernorConfig config_;
  std::string name_;
};

// --- LONG_SHORT ---------------------------------------------------------------

class LongShortPredictor final : public UtilizationPredictor {
 public:
  // Govil's weighting: prediction = (3*short + long) / 4.
  LongShortPredictor(int short_window = 3, int long_window = 12);

  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return current_; }
  void Reset() override;
  std::unique_ptr<UtilizationPredictor> Clone() const override;
  void SaveState(SnapshotWriter* w) const override {
    SaveSampleWindow(w, history_);
    w->F64(current_);
  }
  void LoadState(SnapshotReader* r) override {
    LoadSampleWindow(r, &history_);
    current_ = r->F64();
  }

 private:
  int short_window_;
  int long_window_;
  std::string name_;
  std::deque<double> history_;
  double current_ = 0.0;
};

// --- CYCLE ----------------------------------------------------------------------

class CyclePredictor final : public UtilizationPredictor {
 public:
  // Looks for a cycle of exactly `cycle_length` quanta; falls back to a
  // sliding average of the last `cycle_length` quanta when the last two
  // periods disagree by more than `tolerance` on average.
  explicit CyclePredictor(int cycle_length = 10, double tolerance = 0.10);

  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return current_; }
  void Reset() override;
  std::unique_ptr<UtilizationPredictor> Clone() const override;

  void SaveState(SnapshotWriter* w) const override {
    SaveSampleWindow(w, history_);
    w->F64(current_);
    w->Bool(cycle_matched_);
  }
  void LoadState(SnapshotReader* r) override {
    LoadSampleWindow(r, &history_);
    current_ = r->F64();
    cycle_matched_ = r->Bool();
  }

  // True if the last prediction came from a matched cycle (diagnostics).
  bool cycle_matched() const { return cycle_matched_; }

 private:
  int cycle_length_;
  double tolerance_;
  std::string name_;
  std::vector<double> history_;
  double current_ = 0.0;
  bool cycle_matched_ = false;
};

// --- PEAK ----------------------------------------------------------------------

class PeakPredictor final : public UtilizationPredictor {
 public:
  PeakPredictor();

  const std::string& Name() const override { return name_; }
  double Update(double utilization) override;
  double Current() const override { return current_; }
  void Reset() override;
  std::unique_ptr<UtilizationPredictor> Clone() const override;
  void SaveState(SnapshotWriter* w) const override {
    w->F64(previous_);
    w->F64(current_);
    w->Bool(primed_);
  }
  void LoadState(SnapshotReader* r) override {
    previous_ = r->F64();
    current_ = r->F64();
    primed_ = r->Bool();
  }

 private:
  std::string name_;
  double previous_ = 0.0;
  double current_ = 0.0;
  bool primed_ = false;
};

}  // namespace dcs

#endif  // SRC_CORE_GOVIL_POLICIES_H_
