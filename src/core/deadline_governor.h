// Deadline-informed voltage scheduling — the paper's section 6 future work.
//
// "Our immediate future work is to provide 'deadline' mechanisms in Linux.
// These deadlines are not precisely the same mechanism needed in a true
// real-time O/S — in a RTOS, the application does not care if the deadline
// is reached early, while energy scheduling would prefer for the deadline to
// be met as late as possible."
//
// Workloads announce compute work with Action::ComputeBy(cycles, deadline);
// the kernel exposes the outstanding announcements.  At every quantum this
// governor picks the *slowest* clock step under which all announced work
// still meets its deadline, using an EDF-style density test:
//
//     sum_i  (remaining_i / rate_i(step)) / slack_i   <=   density_cap
//
// where rate_i is the task's effective throughput at `step` (memory model
// included) and slack_i the time left until its deadline.  density_cap < 1
// reserves headroom for unannounced background work (the Kaffe poll loop,
// kernel overhead, other tasks).  With no outstanding announcements the
// clock drops to the floor.

#ifndef SRC_CORE_DEADLINE_GOVERNOR_H_
#define SRC_CORE_DEADLINE_GOVERNOR_H_

#include <string>

#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

class Kernel;

struct DeadlineGovernorConfig {
  // Maximum EDF density before a faster step is required (headroom for
  // unannounced work).
  double density_cap = 0.85;
  int min_step = ClockTable::MinStep();
  int max_step = ClockTable::MaxStep();
  // Drop the core rail to 1.23 V whenever the chosen step allows it.
  bool voltage_scaling = false;
};

class DeadlineGovernor final : public ClockPolicy {
 public:
  explicit DeadlineGovernor(const DeadlineGovernorConfig& config = {});

  const char* Name() const override { return name_.c_str(); }
  void OnInstall(Kernel& kernel) override { kernel_ = &kernel; }
  // Re-solves the density test from sample.step (the hardware's real step)
  // every quantum, so a transition stuck by fault injection is re-requested
  // rather than assumed; jittered/late quanta only shrink the slacks fed to
  // the test, which the min_slack floor keeps finite.
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override {}
  // kernel_ is re-established by OnInstall on the restore target.
  void SaveState(SnapshotWriter* w) const override { w->I64(last_chosen_step_); }
  void LoadState(SnapshotReader* r) override {
    last_chosen_step_ = static_cast<int>(r->I64());
  }

  // The step the density test selected at the last quantum (diagnostics).
  int last_chosen_step() const { return last_chosen_step_; }

 private:
  DeadlineGovernorConfig config_;
  std::string name_;
  Kernel* kernel_ = nullptr;
  int last_chosen_step_ = 0;
};

}  // namespace dcs

#endif  // SRC_CORE_DEADLINE_GOVERNOR_H_
