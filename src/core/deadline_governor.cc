#include "src/core/deadline_governor.h"

#include <algorithm>
#include <cstdio>

#include "src/hw/memory_model.h"
#include "src/kernel/kernel.h"

namespace dcs {

DeadlineGovernor::DeadlineGovernor(const DeadlineGovernorConfig& config) : config_(config) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "deadline-%.0f", config_.density_cap * 100.0);
  name_ = buf;
  if (config_.voltage_scaling) {
    name_ += "-vs";
  }
  last_chosen_step_ = config_.min_step;
}

std::optional<SpeedRequest> DeadlineGovernor::OnQuantum(const UtilizationSample& sample) {
  if (kernel_ == nullptr) {
    return std::nullopt;
  }
  const auto pending = kernel_->PendingDeadlines();
  const SimTime now = sample.quantum_end;
  // Slacks shorter than one quantum cannot be reacted to any finer than a
  // quantum; flooring them avoids division blow-ups and requests the top
  // step for overdue work.
  const double min_slack = kernel_->quantum().ToSeconds();

  int chosen = config_.min_step;
  if (!pending.empty()) {
    chosen = config_.max_step;  // fallback when even the top step is too slow
    for (int step = config_.min_step; step <= config_.max_step; ++step) {
      double density = 0.0;
      for (const auto& item : pending) {
        const double slack =
            std::max((item.deadline - now).ToSeconds(), min_slack);
        const double rate = MemoryModel::EffectiveBaseHz(step, item.profile);
        density += item.remaining_cycles / rate / slack;
      }
      if (density <= config_.density_cap) {
        chosen = step;
        break;
      }
    }
  }
  last_chosen_step_ = chosen;

  SpeedRequest request;
  if (chosen != sample.step) {
    request.step = chosen;
  }
  if (config_.voltage_scaling) {
    const CoreVoltage wanted =
        chosen <= kMaxStepAtLowVoltage ? CoreVoltage::kLow : CoreVoltage::kHigh;
    if (wanted != sample.voltage) {
      request.voltage = wanted;
    }
  }
  if (request.Empty()) {
    return std::nullopt;
  }
  return request;
}

}  // namespace dcs
