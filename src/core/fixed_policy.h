// Constant-speed "policy": pins the clock (and optionally the rail) once and
// never touches it again.  Used for the Table 2 baseline rows
// ("Constant Speed @ 206.4 MHz, 1.5 Volts", etc.) and for per-step sweeps
// like Figure 9.

#ifndef SRC_CORE_FIXED_POLICY_H_
#define SRC_CORE_FIXED_POLICY_H_

#include <string>

#include "src/kernel/policy.h"

namespace dcs {

class FixedPolicy final : public ClockPolicy {
 public:
  FixedPolicy(int step, CoreVoltage voltage = CoreVoltage::kHigh);

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override { applied_ = false; }
  void SaveState(SnapshotWriter* w) const override { w->Bool(applied_); }
  void LoadState(SnapshotReader* r) override { applied_ = r->Bool(); }

  int step() const { return step_; }
  CoreVoltage voltage() const { return voltage_; }

 private:
  int step_;
  CoreVoltage voltage_;
  std::string name_;
  bool applied_ = false;
};

}  // namespace dcs

#endif  // SRC_CORE_FIXED_POLICY_H_
