#include "src/core/cycle_count_governor.h"

#include <cassert>

namespace dcs {

CycleCountGovernor::CycleCountGovernor(int window, double headroom)
    : window_(window), headroom_(headroom),
      name_("cycles" + std::to_string(window)) {
  assert(window >= 1);
  assert(headroom > 0.0);
}

std::optional<SpeedRequest> CycleCountGovernor::OnQuantum(const UtilizationSample& sample) {
  busy_mhz_.push_back(sample.utilization * ClockTable::FrequencyMhz(sample.step));
  sum_ += busy_mhz_.back();
  if (static_cast<int>(busy_mhz_.size()) > window_) {
    sum_ -= busy_mhz_.front();
    busy_mhz_.pop_front();
  }
  const int step = ClockTable::StepForAtLeastMhz(AverageBusyMhz() * headroom_);
  if (step == sample.step) {
    return std::nullopt;
  }
  SpeedRequest request;
  request.step = step;
  return request;
}

void CycleCountGovernor::Reset() {
  busy_mhz_.clear();
  sum_ = 0.0;
}

double CycleCountGovernor::AverageBusyMhz() const {
  if (busy_mhz_.empty()) {
    return 0.0;
  }
  // The paper's example divides by the window size even before the window
  // has filled (the trace starts from a known state), but dividing by the
  // sample count is the sane general behaviour.
  return sum_ / static_cast<double>(busy_mhz_.size());
}

}  // namespace dcs
