#include "src/core/modern_governors.h"

#include <algorithm>

namespace dcs {

OndemandGovernor::OndemandGovernor(const OndemandConfig& config)
    : config_(config), name_("ondemand") {}

std::optional<SpeedRequest> OndemandGovernor::OnQuantum(const UtilizationSample& sample) {
  max_util_in_window_ = std::max(max_util_in_window_, sample.utilization);
  if (++quanta_since_decision_ < config_.sampling_quanta) {
    return std::nullopt;
  }
  const double util = max_util_in_window_;
  quanta_since_decision_ = 0;
  max_util_in_window_ = 0.0;

  int step;
  if (util > config_.up_threshold) {
    // Signature ondemand behaviour: burst straight to the top.
    step = config_.max_step;
  } else {
    const double target_mhz =
        ClockTable::FrequencyMhz(sample.step) * util / config_.up_threshold;
    step = std::clamp(ClockTable::StepForAtLeastMhz(target_mhz), config_.min_step,
                      config_.max_step);
  }
  if (step == sample.step) {
    return std::nullopt;
  }
  SpeedRequest request;
  request.step = step;
  return request;
}

void OndemandGovernor::Reset() {
  quanta_since_decision_ = 0;
  max_util_in_window_ = 0.0;
}

SchedutilGovernor::SchedutilGovernor(const SchedutilConfig& config)
    : config_(config), name_("schedutil") {}

std::optional<SpeedRequest> SchedutilGovernor::OnQuantum(const UtilizationSample& sample) {
  // Scale utilization by current capacity so it is comparable across steps
  // (utilization of 1.0 at 59 MHz is ~0.29 of max capacity).
  const double capacity =
      ClockTable::FrequencyMhz(sample.step) / ClockTable::FrequencyMhz(config_.max_step);
  const double raw = sample.utilization * capacity;
  scaled_util_ = config_.smoothing * scaled_util_ + (1.0 - config_.smoothing) * raw;

  ++quanta_since_change_;
  if (quanta_since_change_ < config_.rate_limit_quanta) {
    return std::nullopt;
  }
  const double target_mhz =
      config_.headroom * scaled_util_ * ClockTable::FrequencyMhz(config_.max_step);
  const int step = std::clamp(ClockTable::StepForAtLeastMhz(target_mhz), config_.min_step,
                              config_.max_step);
  if (step == sample.step) {
    return std::nullopt;
  }
  quanta_since_change_ = 0;
  SpeedRequest request;
  request.step = step;
  return request;
}

void SchedutilGovernor::Reset() {
  scaled_util_ = 0.0;
  quanta_since_change_ = 0;
}

}  // namespace dcs
