#include "src/core/interval_governor.h"

#include <cassert>
#include <cstdio>
#include <utility>

#include "src/kernel/kernel.h"

namespace dcs {

IntervalGovernor::IntervalGovernor(std::unique_ptr<UtilizationPredictor> predictor,
                                   std::unique_ptr<SpeedPolicy> up,
                                   std::unique_ptr<SpeedPolicy> down,
                                   const IntervalGovernorConfig& config)
    : predictor_(std::move(predictor)), up_(std::move(up)), down_(std::move(down)),
      config_(config) {
  assert(predictor_ && up_ && down_);
  assert(config_.thresholds.Valid());
  char thresholds[64];
  std::snprintf(thresholds, sizeof(thresholds), "%.0f/%.0f",
                config_.thresholds.scale_down * 100.0, config_.thresholds.scale_up * 100.0);
  name_ = predictor_->Name() + "-" + up_->Name() + "-" + down_->Name() + "-" + thresholds;
  if (config_.voltage_scaling) {
    name_ += "-vs";
  }
}

void IntervalGovernor::OnInstall(Kernel& kernel) {
  MetricsRegistry* metrics = kernel.metrics();
  ctr_scale_ups_ = metrics != nullptr ? &metrics->Counter("governor.scale_ups") : nullptr;
  ctr_scale_downs_ = metrics != nullptr ? &metrics->Counter("governor.scale_downs") : nullptr;
}

std::optional<SpeedRequest> IntervalGovernor::OnQuantum(const UtilizationSample& sample) {
  const double weighted = predictor_->Update(sample.utilization);

  int step = sample.step;
  if (weighted > config_.thresholds.scale_up && step < config_.max_step) {
    step = up_->Next(step, ScaleDirection::kUp, config_.min_step, config_.max_step);
    ++scale_ups_;
    if (ctr_scale_ups_ != nullptr) {
      ctr_scale_ups_->Inc();
    }
  } else if (weighted < config_.thresholds.scale_down && step > config_.min_step) {
    step = down_->Next(step, ScaleDirection::kDown, config_.min_step, config_.max_step);
    ++scale_downs_;
    if (ctr_scale_downs_ != nullptr) {
      ctr_scale_downs_->Inc();
    }
  }

  SpeedRequest request;
  if (step != sample.step) {
    request.step = step;
  }
  if (config_.voltage_scaling) {
    const CoreVoltage wanted =
        step <= config_.voltage_scale_max_step ? CoreVoltage::kLow : CoreVoltage::kHigh;
    if (wanted != sample.voltage) {
      request.voltage = wanted;
    }
  }
  if (request.Empty()) {
    return std::nullopt;
  }
  return request;
}

void IntervalGovernor::Reset() {
  predictor_->Reset();
  scale_ups_ = 0;
  scale_downs_ = 0;
}

std::unique_ptr<IntervalGovernor> MakePastPegPeg(double scale_down, double scale_up,
                                                 bool voltage_scaling) {
  IntervalGovernorConfig config;
  config.thresholds = Thresholds{scale_down, scale_up};
  config.voltage_scaling = voltage_scaling;
  return std::make_unique<IntervalGovernor>(std::make_unique<PastPredictor>(),
                                            std::make_unique<PegStepPolicy>(),
                                            std::make_unique<PegStepPolicy>(), config);
}

}  // namespace dcs
