#include "src/core/adaptive_governor.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/hw/voltage_regulator.h"

namespace dcs {

AdaptiveGovernor::AdaptiveGovernor(const AdaptiveGovernorConfig& config) : config_(config) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "adaptive-%.1f", config_.eta);
  name_ = buf;
  if (config_.voltage_scaling) {
    name_ += "-vs";
  }
  // Horizons spanning instant reaction to heavy smoothing; the learner's job
  // is to move weight to whichever matches the workload's current phase.
  experts_.push_back(std::make_unique<PastPredictor>());
  experts_.push_back(std::make_unique<AvgNPredictor>(2));
  experts_.push_back(std::make_unique<AvgNPredictor>(6));
  experts_.push_back(std::make_unique<AvgNPredictor>(12));
  experts_.push_back(std::make_unique<SlidingWindowPredictor>(4));
  experts_.push_back(std::make_unique<SlidingWindowPredictor>(16));
  weights_.assign(experts_.size(), 1.0 / static_cast<double>(experts_.size()));
  predictions_.assign(experts_.size(), 0.0);
}

void AdaptiveGovernor::Reset() {
  for (auto& expert : experts_) {
    expert->Reset();
  }
  weights_.assign(experts_.size(), 1.0 / static_cast<double>(experts_.size()));
  predictions_.assign(experts_.size(), 0.0);
  mixed_ = 0.0;
}

std::vector<std::string> AdaptiveGovernor::ExpertNames() const {
  std::vector<std::string> names;
  names.reserve(experts_.size());
  for (const auto& expert : experts_) {
    names.push_back(expert->Name());
  }
  return names;
}

std::optional<SpeedRequest> AdaptiveGovernor::OnQuantum(const UtilizationSample& sample) {
  const double u = std::clamp(sample.utilization, 0.0, 1.0);

  // Score each expert's standing prediction against what actually happened,
  // then fold the sample in for the next round.
  double weight_sum = 0.0;
  for (std::size_t i = 0; i < experts_.size(); ++i) {
    const double loss = std::abs(predictions_[i] - u);
    weights_[i] *= std::exp(-config_.eta * loss);
    weight_sum += weights_[i];
  }
  const double floor = config_.weight_floor / static_cast<double>(experts_.size());
  weight_sum = 0.0;
  for (double& w : weights_) {
    // Renormalization happens through weight_sum below; the floor is applied
    // to the raw weights so a long losing streak cannot underflow an expert
    // out of the pool.
    w = std::max(w, floor);
    weight_sum += w;
  }
  mixed_ = 0.0;
  for (std::size_t i = 0; i < experts_.size(); ++i) {
    weights_[i] /= weight_sum;
    predictions_[i] = std::clamp(experts_[i]->Update(u), 0.0, 1.0);
    mixed_ += weights_[i] * predictions_[i];
  }

  // Demand estimate from the mixed prediction, with the same saturation
  // escape as the feedback governor (a pegged quantum censors demand).
  const double top_mhz = ClockTable::FrequencyMhz(config_.max_step);
  const double actual =
      ClockTable::FrequencyMhz(std::clamp(sample.step, config_.min_step, config_.max_step)) /
      top_mhz;
  double required = mixed_ * actual / config_.target_utilization;
  if (u >= config_.saturation_threshold) {
    required = std::max(required, actual * (1.0 + config_.saturation_boost));
  }
  required = std::clamp(required, 0.0, 1.0);

  const int chosen = std::clamp(ClockTable::StepForAtLeastMhz(required * top_mhz),
                                config_.min_step, config_.max_step);

  SpeedRequest request;
  if (chosen != sample.step) {
    request.step = chosen;
  }
  if (config_.voltage_scaling) {
    const CoreVoltage wanted =
        chosen <= kMaxStepAtLowVoltage ? CoreVoltage::kLow : CoreVoltage::kHigh;
    if (wanted != sample.voltage) {
      request.voltage = wanted;
    }
  }
  if (request.Empty()) {
    return std::nullopt;
  }
  return request;
}

}  // namespace dcs
