// Schedule replay: runs a pre-computed per-quantum speed schedule on the
// live system.
//
// This is the missing link between the trace-driven studies (Weiser, Govil)
// and the paper's empirical method: take the speed schedule an offline
// oracle chose for a *recorded* run, then replay it against a live run.  If
// the workload were perfectly repeatable the oracle schedule would be
// optimal; with real run-to-run jitter it under-provisions exactly where the
// oracle cut closest — quantifying why "the claims made by previous studies"
// were not "born out by experimentation".

#ifndef SRC_CORE_REPLAY_POLICY_H_
#define SRC_CORE_REPLAY_POLICY_H_

#include <string>
#include <vector>

#include "src/hw/clock_table.h"
#include "src/kernel/policy.h"

namespace dcs {

class ScheduleReplayPolicy final : public ClockPolicy {
 public:
  // `steps[i]` is the clock step to run during quantum i+1 (the first
  // decision happens at the end of quantum 0).  After the schedule runs
  // out, the policy holds the last step.
  explicit ScheduleReplayPolicy(std::vector<int> steps);

  const char* Name() const override { return name_.c_str(); }
  std::optional<SpeedRequest> OnQuantum(const UtilizationSample& sample) override;
  void Reset() override { next_ = 0; }
  void SaveState(SnapshotWriter* w) const override { w->U64(next_); }
  void LoadState(SnapshotReader* r) override {
    next_ = static_cast<std::size_t>(r->U64());
  }

  std::size_t schedule_length() const { return steps_.size(); }

 private:
  std::vector<int> steps_;
  std::string name_;
  std::size_t next_ = 0;
};

// Converts an oracle's relative-speed schedule (fractions of full speed, as
// produced by RunOptOracle / RunFutureOracle) into clock steps: the slowest
// step at least as fast as each requested speed.
std::vector<int> StepsFromRelativeSpeeds(const std::vector<double>& speeds);

}  // namespace dcs

#endif  // SRC_CORE_REPLAY_POLICY_H_
