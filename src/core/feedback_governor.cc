#include "src/core/feedback_governor.h"

#include <algorithm>
#include <cstdio>

#include "src/hw/memory_model.h"
#include "src/kernel/kernel.h"

namespace dcs {

FeedbackGovernor::FeedbackGovernor(const FeedbackGovernorConfig& config) : config_(config) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "pid-%.2f-%.2f-%.2f", config_.kp, config_.ki, config_.kd);
  name_ = buf;
  if (config_.voltage_scaling) {
    name_ += "-vs";
  }
}

void FeedbackGovernor::Reset() {
  error1_ = 0.0;
  error2_ = 0.0;
  last_command_ = 1.0;
  pinned_high_ = false;
  pinned_low_ = false;
}

double FeedbackGovernor::DeadlineSpeed(const UtilizationSample& sample) const {
  if (kernel_ == nullptr) {
    return 0.0;
  }
  const auto pending = kernel_->PendingDeadlines();
  if (pending.empty()) {
    return 0.0;
  }
  const SimTime now = sample.quantum_end;
  // Same floor as the deadline governor: slacks shorter than a quantum
  // cannot be reacted to any finer and would blow up the density.
  const double min_slack = kernel_->quantum().ToSeconds();
  double density = 0.0;
  for (const auto& item : pending) {
    const double slack = std::max((item.deadline - now).ToSeconds(), min_slack);
    const double rate = MemoryModel::EffectiveBaseHz(config_.max_step, item.profile);
    density += item.remaining_cycles / rate / slack;
  }
  return density / config_.density_target;
}

std::optional<SpeedRequest> FeedbackGovernor::OnQuantum(const UtilizationSample& sample) {
  const double top_mhz = ClockTable::FrequencyMhz(config_.max_step);
  const double floor_speed = ClockTable::FrequencyMhz(config_.min_step) / top_mhz;
  // Base the loop on the hardware's real speed: a transition stuck by fault
  // injection shows up as error next quantum instead of compounding.
  const double actual =
      ClockTable::FrequencyMhz(std::clamp(sample.step, config_.min_step, config_.max_step)) /
      top_mhz;

  // Utilization observer with saturation escape.
  double required = sample.utilization * actual / config_.target_utilization;
  if (sample.utilization >= config_.saturation_threshold) {
    required = std::max(required, actual * (1.0 + config_.saturation_boost));
  }
  // Deadline observer.
  required = std::max(required, DeadlineSpeed(sample));
  required = std::clamp(required, 0.0, 1.0);

  const double error = required - actual;
  // Anti-windup by clamping: while the command sits at a range limit and the
  // error keeps pushing into it, hold it there instead of re-running the
  // update.  Dropping only the ki term is not enough — once the hardware
  // follows the command down to the floor, the error shrinks and the
  // kp/kd terms kick the command back up, producing a two-step limit cycle
  // at idle (one clock change per quantum for nothing).
  const bool windup = (pinned_high_ && error > 0.0) || (pinned_low_ && error < 0.0);
  double command;
  if (windup) {
    command = pinned_high_ ? 1.0 : floor_speed;
  } else {
    command = actual + config_.kp * (error - error1_) + config_.ki * error +
              config_.kd * (error - 2.0 * error1_ + error2_);
  }
  error2_ = error1_;
  error1_ = error;

  pinned_high_ = command >= 1.0;
  pinned_low_ = command <= floor_speed;
  command = std::clamp(command, floor_speed, 1.0);
  last_command_ = command;

  // Slowest table step at least as fast as the command.
  const int chosen = std::clamp(ClockTable::StepForAtLeastMhz(command * top_mhz),
                                config_.min_step, config_.max_step);

  SpeedRequest request;
  if (chosen != sample.step) {
    request.step = chosen;
  }
  if (config_.voltage_scaling) {
    const CoreVoltage wanted =
        chosen <= kMaxStepAtLowVoltage ? CoreVoltage::kLow : CoreVoltage::kHigh;
    if (wanted != sample.voltage) {
      request.voltage = wanted;
    }
  }
  if (request.Empty()) {
    return std::nullopt;
  }
  return request;
}

}  // namespace dcs
