#include "src/core/predictor.h"

#include <algorithm>
#include <cassert>

namespace dcs {
namespace {

double ClampUtilization(double u) { return std::clamp(u, 0.0, 1.0); }

}  // namespace

PastPredictor::PastPredictor() : name_("PAST") {}

double PastPredictor::Update(double utilization) {
  last_ = ClampUtilization(utilization);
  return last_;
}

std::unique_ptr<UtilizationPredictor> PastPredictor::Clone() const {
  auto clone = std::make_unique<PastPredictor>();
  clone->last_ = last_;
  return clone;
}

AvgNPredictor::AvgNPredictor(int n) : n_(n), name_("AVG" + std::to_string(n)) {
  assert(n >= 0);
}

double AvgNPredictor::Update(double utilization) {
  weighted_ = (n_ * weighted_ + ClampUtilization(utilization)) / (n_ + 1);
  return weighted_;
}

std::unique_ptr<UtilizationPredictor> AvgNPredictor::Clone() const {
  auto clone = std::make_unique<AvgNPredictor>(n_);
  clone->weighted_ = weighted_;
  return clone;
}

SlidingWindowPredictor::SlidingWindowPredictor(int window)
    : window_(window), name_("WIN" + std::to_string(window)) {
  assert(window >= 1);
}

double SlidingWindowPredictor::Update(double utilization) {
  samples_.push_back(ClampUtilization(utilization));
  sum_ += samples_.back();
  if (static_cast<int>(samples_.size()) > window_) {
    sum_ -= samples_.front();
    samples_.pop_front();
  }
  return Current();
}

double SlidingWindowPredictor::Current() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return sum_ / static_cast<double>(samples_.size());
}

void SlidingWindowPredictor::Reset() {
  samples_.clear();
  sum_ = 0.0;
}

std::unique_ptr<UtilizationPredictor> SlidingWindowPredictor::Clone() const {
  auto clone = std::make_unique<SlidingWindowPredictor>(window_);
  clone->samples_ = samples_;
  clone->sum_ = sum_;
  return clone;
}

}  // namespace dcs
