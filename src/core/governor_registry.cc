#include "src/core/governor_registry.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "src/core/adaptive_governor.h"
#include "src/core/cycle_count_governor.h"
#include "src/core/deadline_governor.h"
#include "src/core/feedback_governor.h"
#include "src/core/fixed_policy.h"
#include "src/core/govil_policies.h"
#include "src/core/interval_governor.h"
#include "src/core/modern_governors.h"
#include "src/core/predictor.h"
#include "src/core/rate_governor.h"
#include "src/core/speed_policy.h"
#include "src/hw/clock_table.h"

namespace dcs {
namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= s.size()) {
    const std::size_t end = s.find(sep, begin);
    if (end == std::string::npos) {
      parts.push_back(s.substr(begin));
      break;
    }
    parts.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
  return parts;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInt(const std::string& s, int* out) {
  double d = 0.0;
  if (!ParseDouble(s, &d) || d != static_cast<int>(d)) {
    return false;
  }
  *out = static_cast<int>(d);
  return true;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
}

std::unique_ptr<UtilizationPredictor> MakePredictor(const std::string& token) {
  const std::string lower = Lower(token);
  if (lower == "past") {
    return std::make_unique<PastPredictor>();
  }
  int n = 0;
  if (lower.rfind("avg", 0) == 0 && ParseInt(lower.substr(3), &n) && n >= 0) {
    return std::make_unique<AvgNPredictor>(n);
  }
  if (lower.rfind("win", 0) == 0 && ParseInt(lower.substr(3), &n) && n >= 1) {
    return std::make_unique<SlidingWindowPredictor>(n);
  }
  // Govil et al.'s predictors.
  if (lower == "ls") {
    return std::make_unique<LongShortPredictor>();
  }
  if (lower == "peak") {
    return std::make_unique<PeakPredictor>();
  }
  if (lower.rfind("cycle", 0) == 0 && ParseInt(lower.substr(5), &n) && n >= 2) {
    return std::make_unique<CyclePredictor>(n);
  }
  return nullptr;
}

// Wraps a freshly built concrete governor in a GovernorHandle, capturing its
// static dispatch thunk while the concrete type is still visible.
template <typename P>
GovernorHandle Handle(std::unique_ptr<P> policy) {
  GovernorHandle handle;
  handle.dispatch = PolicyDispatch::For<P>(policy.get());
  handle.governor = std::move(policy);
  return handle;
}

std::unique_ptr<FixedPolicy> MakeFixed(const std::string& spec, std::string* error) {
  // "fixed-<mhz>" or "fixed-<mhz>@1.23".
  std::string body = spec.substr(6);
  CoreVoltage voltage = CoreVoltage::kHigh;
  const std::size_t at = body.find('@');
  if (at != std::string::npos) {
    const std::string volts = body.substr(at + 1);
    if (volts == "1.23") {
      voltage = CoreVoltage::kLow;
    } else if (volts != "1.5" && volts != "1.50") {
      SetError(error, "unknown voltage '" + volts + "' (expected 1.5 or 1.23)");
      return nullptr;
    }
    body = body.substr(0, at);
  }
  double mhz = 0.0;
  if (!ParseDouble(body, &mhz)) {
    SetError(error, "bad frequency in fixed spec '" + spec + "'");
    return nullptr;
  }
  const int step = ClockTable::NearestStep(mhz);
  if (!VoltageRegulator::StepAllowedAt(voltage, step)) {
    SetError(error, "frequency " + body + " MHz is unsafe at 1.23 V");
    return nullptr;
  }
  return std::make_unique<FixedPolicy>(step, voltage);
}

std::unique_ptr<IntervalGovernor> MakeInterval(const std::string& spec, std::string* error) {
  std::vector<std::string> parts = Split(spec, '-');
  bool voltage_scaling = false;
  if (!parts.empty() && Lower(parts.back()) == "vs") {
    voltage_scaling = true;
    parts.pop_back();
  }
  if (parts.size() != 5) {
    SetError(error, "expected <pred>-<up>-<down>-<lo>-<hi>[-vs], got '" + spec + "'");
    return nullptr;
  }
  auto predictor = MakePredictor(parts[0]);
  if (predictor == nullptr) {
    SetError(error, "unknown predictor '" + parts[0] + "'");
    return nullptr;
  }
  auto up = MakeSpeedPolicy(Lower(parts[1]));
  auto down = MakeSpeedPolicy(Lower(parts[2]));
  if (up == nullptr || down == nullptr) {
    SetError(error, "unknown speed policy in '" + spec + "' (one|double|peg)");
    return nullptr;
  }
  double lo = 0.0;
  double hi = 0.0;
  if (!ParseDouble(parts[3], &lo) || !ParseDouble(parts[4], &hi) || lo < 0.0 ||
      hi > 100.0 || lo > hi) {
    SetError(error, "bad thresholds in '" + spec + "' (need 0 <= lo <= hi <= 100)");
    return nullptr;
  }
  IntervalGovernorConfig config;
  config.thresholds = Thresholds{lo / 100.0, hi / 100.0};
  config.voltage_scaling = voltage_scaling;
  return std::make_unique<IntervalGovernor>(std::move(predictor), std::move(up),
                                            std::move(down), config);
}

}  // namespace

std::unique_ptr<ClockPolicy> MakeGovernor(const std::string& spec, std::string* error) {
  return MakeGovernorDispatch(spec, error).governor;
}

GovernorHandle MakeGovernorDispatch(const std::string& spec, std::string* error) {
  SetError(error, "");
  const std::string lower = Lower(spec);
  if (lower.empty() || lower == "none") {
    return {};
  }
  if (lower == "ondemand") {
    return Handle(std::make_unique<OndemandGovernor>());
  }
  if (lower == "schedutil") {
    return Handle(std::make_unique<SchedutilGovernor>());
  }
  if (lower.rfind("fixed-", 0) == 0) {
    auto fixed = MakeFixed(lower, error);
    return fixed != nullptr ? Handle(std::move(fixed)) : GovernorHandle{};
  }
  if (lower.rfind("cycles", 0) == 0) {
    int window = 0;
    if (!ParseInt(lower.substr(6), &window) || window < 1) {
      SetError(error, "bad window in '" + spec + "' (e.g. cycles4)");
      return {};
    }
    return Handle(std::make_unique<CycleCountGovernor>(window));
  }
  if (lower.rfind("flat-", 0) == 0) {
    double target = 0.0;
    if (!ParseDouble(lower.substr(5), &target) || target <= 0.0 || target > 100.0) {
      SetError(error, "bad target in '" + spec + "' (e.g. flat-75)");
      return {};
    }
    FlatGovernorConfig config;
    config.target = target / 100.0;
    return Handle(std::make_unique<FlatGovernor>(config));
  }
  if (lower.rfind("satrate", 0) == 0) {
    int window = 0;
    if (!ParseInt(lower.substr(7), &window) || window < 1) {
      SetError(error, "bad window in '" + spec + "' (e.g. satrate4)");
      return {};
    }
    RateGovernorConfig config;
    config.window = window;
    return Handle(std::make_unique<SaturationAwareGovernor>(config));
  }
  if (lower.rfind("deadline", 0) == 0) {
    // "deadline" | "deadline-<cap%>" | with optional "-vs" suffix.
    DeadlineGovernorConfig config;
    std::string body = lower.substr(8);
    if (body.size() >= 3 && body.substr(body.size() - 3) == "-vs") {
      config.voltage_scaling = true;
      body = body.substr(0, body.size() - 3);
    }
    if (!body.empty()) {
      double cap = 0.0;
      if (body[0] != '-' || !ParseDouble(body.substr(1), &cap) || cap <= 0.0 ||
          cap > 100.0) {
        SetError(error, "bad density cap in '" + spec + "' (e.g. deadline-85)");
        return {};
      }
      config.density_cap = cap / 100.0;
    }
    return Handle(std::make_unique<DeadlineGovernor>(config));
  }
  if (lower.rfind("pid", 0) == 0) {
    // "pid" | "pid-<kp>-<ki>-<kd>" | with optional "-vs" suffix.
    FeedbackGovernorConfig config;
    std::string body = lower.substr(3);
    if (body.size() >= 3 && body.substr(body.size() - 3) == "-vs") {
      config.voltage_scaling = true;
      body = body.substr(0, body.size() - 3);
    }
    if (!body.empty()) {
      bool ok = body[0] == '-';
      std::vector<std::string> gains;
      if (ok) {
        gains = Split(body.substr(1), '-');
        ok = gains.size() == 3 && ParseDouble(gains[0], &config.kp) &&
             ParseDouble(gains[1], &config.ki) && ParseDouble(gains[2], &config.kd) &&
             config.kp >= 0.0 && config.ki >= 0.0 && config.kd >= 0.0;
      }
      if (!ok) {
        SetError(error, "bad gains in '" + spec + "' (e.g. pid-0.5-0.4-0.05)");
        return {};
      }
    }
    return Handle(std::make_unique<FeedbackGovernor>(config));
  }
  if (lower.rfind("adaptive", 0) == 0) {
    // "adaptive" | "adaptive-<eta>" | with optional "-vs" suffix.
    AdaptiveGovernorConfig config;
    std::string body = lower.substr(8);
    if (body.size() >= 3 && body.substr(body.size() - 3) == "-vs") {
      config.voltage_scaling = true;
      body = body.substr(0, body.size() - 3);
    }
    if (!body.empty()) {
      if (body[0] != '-' || !ParseDouble(body.substr(1), &config.eta) || config.eta <= 0.0) {
        SetError(error, "bad learning rate in '" + spec + "' (e.g. adaptive-2.0)");
        return {};
      }
    }
    return Handle(std::make_unique<AdaptiveGovernor>(config));
  }
  auto interval = MakeInterval(spec, error);
  return interval != nullptr ? Handle(std::move(interval)) : GovernorHandle{};
}

std::vector<std::string> PaperGovernorSpecs() {
  return {
      "fixed-206.4",         "fixed-132.7",          "fixed-132.7@1.23",
      "PAST-peg-peg-93-98",  "PAST-peg-peg-93-98-vs", "PAST-one-one-50-70",
      "AVG3-one-one-50-70",  "AVG9-one-one-50-70",    "AVG9-peg-peg-50-70",
      "cycles4",             "ondemand",              "schedutil",
  };
}

std::vector<std::string> AllGovernorSpecs() {
  return {
      "none",
      "fixed-206.4",
      "fixed-132.7@1.23",
      "PAST-peg-peg-93-98",
      "PAST-peg-peg-93-98-vs",
      "AVG9-one-one-50-70",
      "WIN10-peg-peg-93-98",
      "PAST-double-double-50-70",
      "cycles4",
      "satrate4",
      "deadline",
      "deadline-vs",
      "ondemand",
      "schedutil",
      "flat-75",
      "LS-peg-peg-93-98",
      "CYCLE10-peg-peg-93-98",
      "PEAK-peg-peg-93-98",
      "pid-vs",
      "adaptive-vs",
  };
}

std::vector<GovernorFamily> GovernorFamilies() {
  return {
      {"none", "none"},
      {"fixed", "fixed-206.4"},
      {"cycles", "cycles4"},
      {"satrate", "satrate4"},
      {"deadline", "deadline"},
      {"ondemand", "ondemand"},
      {"schedutil", "schedutil"},
      {"flat", "flat-75"},
      {"pid", "pid-vs"},
      {"adaptive", "adaptive-vs"},
      {"interval-past", "PAST-peg-peg-93-98"},
      {"interval-avg", "AVG9-one-one-50-70"},
      {"interval-win", "WIN10-peg-peg-93-98"},
      {"interval-ls", "LS-peg-peg-93-98"},
      {"interval-cycle", "CYCLE10-peg-peg-93-98"},
      {"interval-peak", "PEAK-peg-peg-93-98"},
  };
}

std::string GovernorFamilyOf(const std::string& spec) {
  // Mirrors MakeGovernor's dispatch order exactly; a new constructor branch
  // there needs a matching branch here (and a GovernorFamilies() row) or the
  // registry-completeness test fails.
  const std::string lower = Lower(spec);
  if (lower.empty() || lower == "none") {
    return "none";
  }
  if (lower == "ondemand") {
    return "ondemand";
  }
  if (lower == "schedutil") {
    return "schedutil";
  }
  if (lower.rfind("fixed-", 0) == 0) {
    return "fixed";
  }
  if (lower.rfind("cycles", 0) == 0) {
    return "cycles";
  }
  if (lower.rfind("flat-", 0) == 0) {
    return "flat";
  }
  if (lower.rfind("satrate", 0) == 0) {
    return "satrate";
  }
  if (lower.rfind("deadline", 0) == 0) {
    return "deadline";
  }
  if (lower.rfind("pid", 0) == 0) {
    return "pid";
  }
  if (lower.rfind("adaptive", 0) == 0) {
    return "adaptive";
  }
  // Interval grammar: classify by the predictor token.
  const std::vector<std::string> parts = Split(lower, '-');
  if (parts.empty()) {
    return "";
  }
  const std::string& pred = parts[0];
  if (pred == "past") {
    return "interval-past";
  }
  if (pred == "ls") {
    return "interval-ls";
  }
  if (pred == "peak") {
    return "interval-peak";
  }
  int n = 0;
  if (pred.rfind("avg", 0) == 0 && ParseInt(pred.substr(3), &n)) {
    return "interval-avg";
  }
  if (pred.rfind("win", 0) == 0 && ParseInt(pred.substr(3), &n)) {
    return "interval-win";
  }
  if (pred.rfind("cycle", 0) == 0 && ParseInt(pred.substr(5), &n)) {
    return "interval-cycle";
  }
  return "";
}

}  // namespace dcs
