#include "src/core/oracle.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace dcs {
namespace {

constexpr double kEps = 1e-12;

double ClampSpeed(double s, double min_speed) { return std::clamp(s, min_speed, 1.0); }

// Replays `work` with per-interval speeds chosen by `pick(excess, index)`,
// filling in the common bookkeeping.
template <typename PickSpeed>
OracleResult Replay(std::span<const double> work, PickSpeed pick) {
  OracleResult result;
  result.speeds.reserve(work.size());
  double excess = 0.0;
  int missed = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double w = std::clamp(work[i], 0.0, 1.0);
    const double s = pick(excess, i);
    assert(s > 0.0 && s <= 1.0 + kEps);
    const double pending = excess + w;
    // At speed s the interval can absorb s units of full-speed work.
    const double done = std::min(pending, s);
    const double busy_time = done / s;  // fraction of the interval non-idle
    result.energy += busy_time * s * s;
    result.full_speed_energy += w;  // busy_time at s=1 is w, energy w * 1^2
    excess = pending - done;
    if (excess > kEps) {
      ++missed;
    }
    result.total_excess += excess;
    result.speeds.push_back(s);
  }
  result.missed_fraction =
      work.empty() ? 0.0 : static_cast<double>(missed) / static_cast<double>(work.size());
  return result;
}

}  // namespace

OracleResult RunOptOracle(std::span<const double> work, double min_speed) {
  double total = 0.0;
  for (const double w : work) {
    total += std::clamp(w, 0.0, 1.0);
  }
  const double constant =
      work.empty() ? min_speed
                   : ClampSpeed(total / static_cast<double>(work.size()), min_speed);
  return Replay(work, [constant](double /*excess*/, std::size_t /*i*/) { return constant; });
}

OracleResult RunFutureOracle(std::span<const double> work, double min_speed) {
  return Replay(work, [&work, min_speed](double excess, std::size_t i) {
    const double w = std::clamp(work[i], 0.0, 1.0);
    return ClampSpeed(excess + w, min_speed);
  });
}

OracleResult RunWeiserPastOracle(std::span<const double> work, double min_speed) {
  // Speed for interval i is what would have exactly covered interval i-1's
  // pending work; the first interval starts at full speed.
  double previous_pending = 1.0;
  return Replay(work, [&work, &previous_pending, min_speed](double excess, std::size_t i) {
    const double s = ClampSpeed(previous_pending, min_speed);
    previous_pending = excess + std::clamp(work[i], 0.0, 1.0);
    return s;
  });
}

}  // namespace dcs
