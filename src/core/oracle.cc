#include "src/core/oracle.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <deque>
#include <numeric>
#include <stdexcept>

#include "src/hw/power_model.h"

namespace dcs {
namespace {

constexpr double kEps = 1e-12;

double ClampSpeed(double s, double min_speed) { return std::clamp(s, min_speed, 1.0); }

// Replays `work` with per-interval speeds chosen by `pick(excess, index)`,
// filling in the common bookkeeping.
template <typename PickSpeed>
OracleResult Replay(std::span<const double> work, PickSpeed pick) {
  OracleResult result;
  result.speeds.reserve(work.size());
  double excess = 0.0;
  int missed = 0;
  for (std::size_t i = 0; i < work.size(); ++i) {
    const double w = std::clamp(work[i], 0.0, 1.0);
    const double s = pick(excess, i);
    assert(s > 0.0 && s <= 1.0 + kEps);
    const double pending = excess + w;
    // At speed s the interval can absorb s units of full-speed work.
    const double done = std::min(pending, s);
    const double busy_time = done / s;  // fraction of the interval non-idle
    result.energy += busy_time * s * s;
    result.full_speed_energy += w;  // busy_time at s=1 is w, energy w * 1^2
    excess = pending - done;
    if (excess > kEps) {
      ++missed;
    }
    result.total_excess += excess;
    result.speeds.push_back(s);
  }
  result.missed_fraction =
      work.empty() ? 0.0 : static_cast<double>(missed) / static_cast<double>(work.size());
  return result;
}

}  // namespace

OracleResult RunOptOracle(std::span<const double> work, double min_speed) {
  double total = 0.0;
  for (const double w : work) {
    total += std::clamp(w, 0.0, 1.0);
  }
  const double constant =
      work.empty() ? min_speed
                   : ClampSpeed(total / static_cast<double>(work.size()), min_speed);
  return Replay(work, [constant](double /*excess*/, std::size_t /*i*/) { return constant; });
}

OracleResult RunFutureOracle(std::span<const double> work, double min_speed) {
  return Replay(work, [&work, min_speed](double excess, std::size_t i) {
    const double w = std::clamp(work[i], 0.0, 1.0);
    return ClampSpeed(excess + w, min_speed);
  });
}

OracleResult RunWeiserPastOracle(std::span<const double> work, double min_speed) {
  // Speed for interval i is what would have exactly covered interval i-1's
  // pending work; the first interval starts at full speed.
  double previous_pending = 1.0;
  return Replay(work, [&work, &previous_pending, min_speed](double excess, std::size_t i) {
    const double s = ClampSpeed(previous_pending, min_speed);
    previous_pending = excess + std::clamp(work[i], 0.0, 1.0);
    return s;
  });
}

// --- Offline optimal ---------------------------------------------------------

double EnergyModel::AboveIdleWatts(double speed) const {
  if (speeds.empty()) {
    return 0.0;
  }
  double s = std::clamp(speed, 0.0, speeds.back());
  // Walk the hull segments from the implicit origin.
  double x0 = 0.0;
  double y0 = 0.0;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    if (s <= speeds[i] + kEps) {
      const double dx = speeds[i] - x0;
      if (dx <= kEps) {
        return watts_above_idle[i];
      }
      return y0 + (watts_above_idle[i] - y0) * (s - x0) / dx;
    }
    x0 = speeds[i];
    y0 = watts_above_idle[i];
  }
  return watts_above_idle.back();
}

EnergyModel MakeItsyEnergyModel(const PowerModelParams& params) {
  const PowerModel pm(params);
  // Peripheral assumption: display on, audio off — the app bundle never
  // blanks the display, and audio (MPEG playback) only ever *adds* power, so
  // this floor never overstates what a real run must spend.
  const PeripheralState periph;

  // Idle floor: the cheapest nap state over all steps and legal rails.  Busy
  // and stall states draw strictly more under the calibrated parameters, so
  // this is the least system power any instant of any schedule can draw.
  // Gathered into parallel arrays and batched through the power model
  // (SystemWattsBatch is per-element bit-identical to SystemWatts), then
  // min-reduced in the original visit order.
  EnergyModel model;
  std::array<int, 2 * kNumClockSteps + 1> nap_steps;
  std::array<double, 2 * kNumClockSteps + 1> nap_volts;
  std::size_t nap_n = 0;
  nap_steps[nap_n] = 0;
  nap_volts[nap_n++] = VoltageVolts(CoreVoltage::kLow);
  for (int step = 0; step < kNumClockSteps; ++step) {
    for (const CoreVoltage v : {CoreVoltage::kHigh, CoreVoltage::kLow}) {
      if (!VoltageRegulator::StepAllowedAt(v, step)) {
        continue;
      }
      nap_steps[nap_n] = step;
      nap_volts[nap_n++] = VoltageVolts(v);
    }
  }
  std::array<double, 2 * kNumClockSteps + 1> nap_watts;
  pm.SystemWattsBatch(ExecState::kNap, nap_steps.data(), nap_volts.data(), nap_n, periph,
                      nap_watts.data());
  model.idle_watts = nap_watts[0];
  for (std::size_t i = 1; i < nap_n; ++i) {
    model.idle_watts = std::min(model.idle_watts, nap_watts[i]);
  }

  // Achievable busy points: per step, the cheapest legal rail, above the
  // idle floor.  Steps are already in ascending frequency order.
  struct Pt {
    double s;
    double w;
  };
  std::vector<Pt> points;
  points.push_back({0.0, 0.0});  // napping: zero work at the idle floor
  const double top_mhz = ClockTable::FrequencyMhz(ClockTable::MaxStep());
  std::array<int, kNumClockSteps> busy_steps;
  std::array<double, kNumClockSteps> rail_high;
  std::array<double, kNumClockSteps> rail_low;
  for (int step = 0; step < kNumClockSteps; ++step) {
    busy_steps[static_cast<std::size_t>(step)] = step;
    rail_high[static_cast<std::size_t>(step)] = VoltageVolts(CoreVoltage::kHigh);
    rail_low[static_cast<std::size_t>(step)] = VoltageVolts(CoreVoltage::kLow);
  }
  std::array<double, kNumClockSteps> busy_high;
  std::array<double, kNumClockSteps> busy_low;
  pm.SystemWattsBatch(ExecState::kBusy, busy_steps.data(), rail_high.data(), kNumClockSteps,
                      periph, busy_high.data());
  pm.SystemWattsBatch(ExecState::kBusy, busy_steps.data(), rail_low.data(), kNumClockSteps,
                      periph, busy_low.data());
  for (int step = 0; step < kNumClockSteps; ++step) {
    double busy = busy_high[static_cast<std::size_t>(step)];
    if (VoltageRegulator::StepAllowedAt(CoreVoltage::kLow, step)) {
      busy = std::min(busy, busy_low[static_cast<std::size_t>(step)]);
    }
    points.push_back(
        {ClockTable::FrequencyMhz(step) / top_mhz, std::max(0.0, busy - model.idle_watts)});
  }

  // Lower convex hull (Andrew's monotone chain, points sorted by speed).
  // Vertices on or above a chord are dropped: time-sharing the chord's
  // endpoint states beats running at the dominated point.
  std::vector<Pt> hull;
  for (const Pt& p : points) {
    while (hull.size() >= 2) {
      const Pt& a = hull[hull.size() - 2];
      const Pt& b = hull[hull.size() - 1];
      const double cross = (b.s - a.s) * (p.w - a.w) - (b.w - a.w) * (p.s - a.s);
      if (cross <= 0.0) {
        hull.pop_back();
      } else {
        break;
      }
    }
    hull.push_back(p);
  }
  for (std::size_t i = 1; i < hull.size(); ++i) {  // skip the explicit origin
    model.speeds.push_back(hull[i].s);
    model.watts_above_idle.push_back(hull[i].w);
  }
  return model;
}

namespace {

// Taut string through the corridor lower[k] <= C(k) <= upper[k], k = 0..n,
// from (0, lower[0]) to (n, upper[n]) (callers pin lower[0] == upper[0] and
// lower[n] == upper[n]).  Returns the string's knot points.  Funnel
// algorithm: from the current apex we grow the greatest convex minorant of
// upcoming ceiling vertices and the least concave majorant of upcoming floor
// vertices; when the two first directions cross, the blocking boundary's
// vertex becomes a knot and the apex advances to it.
struct Knot {
  int x;
  double y;
};

double KnotSlope(const Knot& a, const Knot& b) {
  return (b.y - a.y) / static_cast<double>(b.x - a.x);
}

std::vector<Knot> TautString(std::span<const double> lower, std::span<const double> upper) {
  const int n = static_cast<int>(upper.size()) - 1;
  std::vector<Knot> knots;
  knots.push_back({0, upper[0]});
  if (n <= 0) {
    return knots;
  }
  Knot apex{0, upper[0]};
  std::deque<Knot> up;  // convex minorant of ceiling vertices past the apex
  std::deque<Knot> lo;  // concave majorant of floor vertices past the apex

  const auto advance_apex = [&](Knot to) {
    knots.push_back(to);
    apex = to;
  };

  for (int k = 1; k <= n; ++k) {
    // Ceiling vertex: convexify, then check whether the string is now pressed
    // onto the floor (ceiling's first direction dips below the floor's).
    const Knot uk{k, upper[static_cast<std::size_t>(k)]};
    while (!up.empty()) {
      const Knot& prev = up.size() >= 2 ? up[up.size() - 2] : apex;
      if (KnotSlope(prev, up.back()) >= KnotSlope(up.back(), uk)) {
        up.pop_back();
      } else {
        break;
      }
    }
    up.push_back(uk);
    while (!lo.empty() && KnotSlope(apex, up.front()) < KnotSlope(apex, lo.front())) {
      advance_apex(lo.front());
      lo.pop_front();
      while (up.size() >= 2 && KnotSlope(apex, up.front()) >= KnotSlope(up.front(), up[1])) {
        up.pop_front();
      }
    }

    // Floor vertex: concavify, then check whether the string is pressed onto
    // the ceiling.
    const Knot lk{k, lower[static_cast<std::size_t>(k)]};
    while (!lo.empty()) {
      const Knot& prev = lo.size() >= 2 ? lo[lo.size() - 2] : apex;
      if (KnotSlope(prev, lo.back()) <= KnotSlope(lo.back(), lk)) {
        lo.pop_back();
      } else {
        break;
      }
    }
    lo.push_back(lk);
    while (!up.empty() && KnotSlope(apex, lo.front()) > KnotSlope(apex, up.front())) {
      advance_apex(up.front());
      up.pop_front();
      while (lo.size() >= 2 && KnotSlope(apex, lo.front()) <= KnotSlope(lo.front(), lo[1])) {
        lo.pop_front();
      }
    }
  }

  // Both boundaries end pinned at (n, upper[n]); the crossing checks above
  // have advanced the apex until the straight run to the endpoint is taut
  // (any surviving chain vertices are collinear with it).
  if (knots.back().x != n) {
    knots.push_back({n, upper[static_cast<std::size_t>(n)]});
  }
  return knots;
}

}  // namespace

OfflineOptimalResult RunOfflineOptimal(std::span<const double> work, double interval_seconds,
                                       int deadline_quanta, const EnergyModel& model) {
  if (interval_seconds <= 0.0) {
    throw std::invalid_argument("RunOfflineOptimal: interval_seconds must be positive");
  }
  if (deadline_quanta < 1) {
    throw std::invalid_argument("RunOfflineOptimal: deadline_quanta must be >= 1");
  }
  if (model.speeds.empty() || model.speeds.size() != model.watts_above_idle.size()) {
    throw std::invalid_argument("RunOfflineOptimal: energy model hull is empty or malformed");
  }

  OfflineOptimalResult result;
  const std::size_t n = work.size();
  if (n == 0) {
    return result;
  }

  // Cumulative arrivals; entries clamped to what the top step can execute in
  // one interval (tick jitter can stretch a quantum — never let the recorded
  // trace demand more than full speed, which would poison the lower bound).
  std::vector<double> cum(n + 1, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    cum[t + 1] = cum[t] + std::clamp(work[t], 0.0, interval_seconds);
  }

  // Corridor: by index k the schedule may have executed at most the work that
  // has arrived (upper = cum[k]) and must have finished everything whose
  // deadline window [t, t + D) has closed (lower = cum[k - D + 1]); the final
  // index is pinned so all work completes within the trace.  The governor's
  // own schedule C = cum is feasible for every D >= 1, so the minimum here
  // never exceeds what the measured run actually did.
  std::vector<double> lower(n + 1, 0.0);
  for (std::size_t k = 0; k <= n; ++k) {
    lower[k] = k >= static_cast<std::size_t>(deadline_quanta)
                   ? cum[k - static_cast<std::size_t>(deadline_quanta) + 1]
                   : 0.0;
  }
  lower[n] = cum[n];

  const std::vector<Knot> knots = TautString(lower, cum);
  result.work.assign(n, 0.0);
  for (std::size_t i = 1; i < knots.size(); ++i) {
    const Knot& a = knots[i - 1];
    const Knot& b = knots[i];
    if (b.x <= a.x) {
      continue;
    }
    const double per_interval = std::clamp(KnotSlope(a, b), 0.0, interval_seconds);
    for (int t = a.x; t < b.x; ++t) {
      result.work[static_cast<std::size_t>(t)] = per_interval;
    }
  }

  // Belt and braces: the taut string minimises every convex interval cost,
  // but the recorded schedule itself is always feasible — if numerics ever
  // made the solver come out above it, fall back so the caller's ratio >= 1
  // guarantee holds by construction.
  const auto above_idle = [&](const std::vector<double>& per_interval_work) {
    double joules = 0.0;
    for (const double c : per_interval_work) {
      joules += interval_seconds * model.AboveIdleWatts(c / interval_seconds);
    }
    return joules;
  };
  result.above_idle_joules = above_idle(result.work);
  std::vector<double> replicated(work.begin(), work.end());
  for (double& c : replicated) {
    c = std::clamp(c, 0.0, interval_seconds);
  }
  const double replicated_joules = above_idle(replicated);
  if (replicated_joules < result.above_idle_joules) {
    result.above_idle_joules = replicated_joules;
    result.work = std::move(replicated);
  }

  result.energy_joules =
      result.above_idle_joules + static_cast<double>(n) * interval_seconds * model.idle_watts;
  for (const double c : result.work) {
    result.peak_speed = std::max(result.peak_speed, c / interval_seconds);
  }
  return result;
}

}  // namespace dcs
