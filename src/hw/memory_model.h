// EDO-DRAM timing model (paper Table 3) and the resulting non-linear
// relationship between clock frequency and application throughput.
//
// The Itsy's EDO DRAM has a fixed access latency in wall-clock terms, so the
// number of *CPU cycles* spent per memory access grows with clock frequency —
// and not smoothly, because the memory controller synchronises to the bus
// clock.  The paper measured (Table 3):
//
//   MHz    59.0 73.7 88.5 103.2 118.0 132.7 147.5 162.2 176.9 191.7 206.4
//   word     11   11   11    11    13    14    14    15    18    19    20
//   line     39   39   39    39    41    42    49    50    60    61    69
//
// The jump between 162.2 and 176.9 MHz (15->18 word cycles, 50->60 line
// cycles) is what produces the utilization plateau in the paper's Figure 9:
// raising the clock across that boundary barely raises effective throughput
// for memory-bound code.
//
// Workloads are characterised by a MemoryProfile: how many uncached word
// references and cache-line fills they issue per 1000 cycles of pure
// computation.  The model converts "base cycles" of work into wall time at a
// given clock step and back.

#ifndef SRC_HW_MEMORY_MODEL_H_
#define SRC_HW_MEMORY_MODEL_H_

#include <array>
#include <cstdint>

#include "src/hw/clock_table.h"
#include "src/sim/time.h"

namespace dcs {

// Memory behaviour of a workload, normalised per 1000 cycles of computation.
// A purely compute-bound loop has both rates at 0; the paper's large Java
// applications "exhibit more significant memory behavior".
struct MemoryProfile {
  double word_refs_per_kilocycle = 0.0;
  double line_fills_per_kilocycle = 0.0;

  bool operator==(const MemoryProfile&) const = default;
};

class MemoryModel {
 public:
  // Measured cycles for an individual uncached word read at `step`
  // (paper Table 3, first column).
  static int WordAccessCycles(int step);

  // Measured cycles for a full cache-line fill at `step` (Table 3, second
  // column).
  static int LineFillCycles(int step);

  // Total CPU cycles consumed per base cycle of computation for `profile` at
  // `step`; always >= 1.  This is the factor by which memory stalls inflate
  // execution time.
  static double MixFactor(int step, const MemoryProfile& profile);

  // Effective throughput in base cycles per second at `step`: frequency
  // divided by the mix factor.  Not monotone gains: between steps 7 and 8
  // (162.2 -> 176.9 MHz) the gain nearly vanishes for memory-heavy profiles.
  static double EffectiveBaseHz(int step, const MemoryProfile& profile);

  // Wall time to execute `base_cycles` of work at `step`.
  static SimTime WallTimeForWork(double base_cycles, int step, const MemoryProfile& profile);

  // Base cycles completed in `wall` time at `step` (inverse of
  // WallTimeForWork; non-negative).
  static double WorkCompletedIn(SimTime wall, int step, const MemoryProfile& profile);
};

}  // namespace dcs

#endif  // SRC_HW_MEMORY_MODEL_H_
