#include "src/hw/power_model.h"

namespace dcs {

double PowerModel::ProcessorWatts(ExecState state, int step, double volts) const {
  const double f_mhz = ClockTable::FrequencyMhz(step);
  const double v2f = volts * volts * f_mhz;
  switch (state) {
    case ExecState::kBusy:
      return (params_.core_dynamic_mw_per_v2mhz * v2f + params_.core_static_busy_mw) * 1e-3;
    case ExecState::kNap:
      return params_.nap_mw_per_v2mhz * v2f * 1e-3;
    case ExecState::kStalled:
      return params_.stall_mw * 1e-3;
  }
  return 0.0;
}

double PowerModel::SystemWatts(ExecState state, int step, double volts,
                               const PeripheralState& peripherals) const {
  double watts = ProcessorWatts(state, step, volts);
  watts += (peripherals.display_on ? params_.peripherals_mw
                                   : params_.peripherals_display_off_mw) *
           1e-3;
  watts += params_.peripherals_bus_mw_per_mhz * ClockTable::FrequencyMhz(step) * 1e-3;
  if (peripherals.audio_on) {
    watts += params_.audio_mw * 1e-3;
  }
  return watts;
}

}  // namespace dcs
