#include "src/hw/power_model.h"

namespace dcs {

double PowerModel::ProcessorWatts(ExecState state, int step, double volts) const {
  const double f_mhz = ClockTable::FrequencyMhz(step);
  const double v2f = volts * volts * f_mhz;
  switch (state) {
    case ExecState::kBusy:
      return (params_.core_dynamic_mw_per_v2mhz * v2f + params_.core_static_busy_mw) * 1e-3;
    case ExecState::kNap:
      return params_.nap_mw_per_v2mhz * v2f * 1e-3;
    case ExecState::kStalled:
      return params_.stall_mw * 1e-3;
  }
  return 0.0;
}

double PowerModel::SystemWatts(ExecState state, int step, double volts,
                               const PeripheralState& peripherals) const {
  double watts = ProcessorWatts(state, step, volts);
  watts += (peripherals.display_on ? params_.peripherals_mw
                                   : params_.peripherals_display_off_mw) *
           1e-3;
  watts += params_.peripherals_bus_mw_per_mhz * ClockTable::FrequencyMhz(step) * 1e-3;
  if (peripherals.audio_on) {
    watts += params_.audio_mw * 1e-3;
  }
  return watts;
}

void PowerModel::SystemWattsBatch(ExecState state, const int* steps, const double* volts,
                                  std::size_t n, const PeripheralState& peripherals,
                                  double* out) const {
  // Processor term.  Each case mirrors ProcessorWatts exactly — same
  // operations in the same association, so every lane rounds identically to
  // the scalar call.
  switch (state) {
    case ExecState::kBusy:
      for (std::size_t i = 0; i < n; ++i) {
        const double v2f = volts[i] * volts[i] * ClockTable::FrequencyMhz(steps[i]);
        out[i] = (params_.core_dynamic_mw_per_v2mhz * v2f + params_.core_static_busy_mw) * 1e-3;
      }
      break;
    case ExecState::kNap:
      for (std::size_t i = 0; i < n; ++i) {
        const double v2f = volts[i] * volts[i] * ClockTable::FrequencyMhz(steps[i]);
        out[i] = params_.nap_mw_per_v2mhz * v2f * 1e-3;
      }
      break;
    case ExecState::kStalled:
      for (std::size_t i = 0; i < n; ++i) {
        out[i] = params_.stall_mw * 1e-3;
      }
      break;
  }
  // System terms, added in SystemWatts's order (peripheral rail, bus clock,
  // audio) so the summation rounds the same way.
  const double periph_watts = (peripherals.display_on ? params_.peripherals_mw
                                                      : params_.peripherals_display_off_mw) *
                              1e-3;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] += periph_watts;
    out[i] += params_.peripherals_bus_mw_per_mhz * ClockTable::FrequencyMhz(steps[i]) * 1e-3;
  }
  if (peripherals.audio_on) {
    const double audio_watts = params_.audio_mw * 1e-3;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] += audio_watts;
    }
  }
}

}  // namespace dcs
