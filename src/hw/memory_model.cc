#include "src/hw/memory_model.h"

#include <cassert>

namespace dcs {
namespace {

// Paper Table 3, verbatim.
constexpr std::array<int, kNumClockSteps> kWordCycles = {11, 11, 11, 11, 13, 14,
                                                         14, 15, 18, 19, 20};
constexpr std::array<int, kNumClockSteps> kLineCycles = {39, 39, 39, 39, 41, 42,
                                                         49, 50, 60, 61, 69};

}  // namespace

int MemoryModel::WordAccessCycles(int step) {
  return kWordCycles[static_cast<std::size_t>(ClockTable::Clamp(step))];
}

int MemoryModel::LineFillCycles(int step) {
  return kLineCycles[static_cast<std::size_t>(ClockTable::Clamp(step))];
}

double MemoryModel::MixFactor(int step, const MemoryProfile& profile) {
  return 1.0 + profile.word_refs_per_kilocycle * WordAccessCycles(step) / 1000.0 +
         profile.line_fills_per_kilocycle * LineFillCycles(step) / 1000.0;
}

double MemoryModel::EffectiveBaseHz(int step, const MemoryProfile& profile) {
  return ClockTable::FrequencyHz(step) / MixFactor(step, profile);
}

SimTime MemoryModel::WallTimeForWork(double base_cycles, int step,
                                     const MemoryProfile& profile) {
  assert(base_cycles >= 0.0);
  return SimTime::FromSecondsF(base_cycles / EffectiveBaseHz(step, profile));
}

double MemoryModel::WorkCompletedIn(SimTime wall, int step, const MemoryProfile& profile) {
  if (wall <= SimTime::Zero()) {
    return 0.0;
  }
  return wall.ToSeconds() * EffectiveBaseHz(step, profile);
}

}  // namespace dcs
