// CMOS power model for the Itsy.
//
// Instantaneous system power is the sum of
//   * processor power — a dynamic CMOS term (alpha * V^2 * f) plus a
//     voltage/frequency-independent static residue (3.3 V pad drivers, clock
//     distribution, leakage).  The static residue is why the paper measured
//     only ~15% processor-power reduction from the 1.5 -> 1.23 V drop even
//     though pure V^2 scaling predicts 33%, and why power is non-linear in
//     frequency (Martin's observation, cited in the paper);
//   * nap power — in the idle task the SA-1100 stalls its pipeline but the
//     clock tree keeps toggling, so nap power still scales with V^2 * f;
//   * peripheral rail — LCD, touchscreen, DRAM refresh, serial; constant
//     3.3 V loads unaffected by core clock or voltage scaling (the paper's
//     explanation for why system-level savings are smaller than
//     processor-level savings);
//   * audio path — DAC/amplifier, only while a workload is playing sound.
//
// Defaults are calibrated against Table 2 of the paper (60 s of MPEG):
// ~86 J at 206.4 MHz/1.5 V, ~80 J at 132.7/1.5 V, ~74 J at 132.7/1.23 V.

#ifndef SRC_HW_POWER_MODEL_H_
#define SRC_HW_POWER_MODEL_H_

#include <cstddef>

#include "src/hw/clock_table.h"
#include "src/hw/voltage_regulator.h"

namespace dcs {

// What the processor core is doing; each state draws different power.
enum class ExecState {
  kBusy,     // executing instructions (includes application spin loops)
  kNap,      // idle task: pipeline stalled, clocks running
  kStalled,  // PLL relock during a clock change
};

struct PowerModelParams {
  // Dynamic CMOS coefficient in mW per (V^2 * MHz).
  double core_dynamic_mw_per_v2mhz = 1.086;
  // Static processor residue while busy (pads, clock tree, leakage), mW.
  double core_static_busy_mw = 286.0;
  // Nap-mode dynamic coefficient (clock tree only), mW per (V^2 * MHz).
  double nap_mw_per_v2mhz = 0.25;
  // Flat draw during the 200 us PLL relock stall, mW.
  double stall_mw = 150.0;
  // Peripheral rail with the display on, mW.
  double peripherals_mw = 620.0;
  // Additional draw while audio is playing, mW.
  double audio_mw = 124.0;
  // Peripheral rail with the display off (battery-lifetime experiments), mW.
  double peripherals_display_off_mw = 80.0;
  // Bus-clock-driven peripheral power (LCD DMA, DRAM interface) in mW per
  // MHz of core clock.  Zero in the Table 2 calibration; the battery
  // lifetime experiment (section 2.1) uses a configuration where this term
  // dominates, making idle power roughly proportional to clock frequency.
  double peripherals_bus_mw_per_mhz = 0.0;
};

// Peripheral activity toggled by workloads.
struct PeripheralState {
  bool display_on = true;
  bool audio_on = false;

  bool operator==(const PeripheralState&) const = default;
};

class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(const PowerModelParams& params) : params_(params) {}

  const PowerModelParams& params() const { return params_; }

  // Processor-only power in watts at `step`, rail voltage `volts`, in `state`.
  double ProcessorWatts(ExecState state, int step, double volts) const;

  // Whole-system power in watts.
  double SystemWatts(ExecState state, int step, double volts,
                     const PeripheralState& peripherals) const;

  // Batched SystemWatts over parallel arrays: out[i] = SystemWatts(state,
  // steps[i], volts[i], peripherals).  Each element evaluates the exact
  // scalar expression (same operations, same association, so the same
  // IEEE-754 result bit for bit); the state and peripheral selects are
  // hoisted out of the loop so the per-element body is a tight polynomial
  // the auto-vectoriser can chew on.  Used by the oracle's energy-model
  // table construction (src/core/oracle.cc).
  void SystemWattsBatch(ExecState state, const int* steps, const double* volts,
                        std::size_t n, const PeripheralState& peripherals,
                        double* out) const;

 private:
  PowerModelParams params_;
};

}  // namespace dcs

#endif  // SRC_HW_POWER_MODEL_H_
