// Core-voltage regulator model for the modified Itsy v1.5.
//
// Compaq WRL modified the study's Itsy units so the SA-1100 core rail can be
// switched between 1.5 V (specified) and 1.23 V (below spec but safe at
// moderate clock speeds).  The paper measured (section 5.4):
//   * dropping 1.5 -> 1.23 V takes ~250 us — the rail decays slowly because
//     of the external decoupling capacitors, briefly undershoots 1.23 V, then
//     settles;
//   * raising 1.23 -> 1.5 V is effectively instantaneous;
//   * 1.23 V is only safe up to 162.2 MHz (clock step 7).
//
// The regulator tracks the settling interval; the kernel must not raise the
// clock above the 1.23 V-safe ceiling until the rail reports 1.5 V stable.

#ifndef SRC_HW_VOLTAGE_REGULATOR_H_
#define SRC_HW_VOLTAGE_REGULATOR_H_

#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace dcs {

// The two selectable core voltages.
enum class CoreVoltage {
  kHigh,  // 1.5 V — manufacturer specification, required above 162.2 MHz.
  kLow,   // 1.23 V — below spec; safe at steps 0..7 (<= 162.2 MHz).
};

// Volts for a rail setting.
double VoltageVolts(CoreVoltage v);

// Highest clock step that is safe at 1.23 V (162.2 MHz).
inline constexpr int kMaxStepAtLowVoltage = 7;

// Measured settle time for a downward transition.
inline constexpr SimTime kVoltageDownSettle = SimTime::Micros(250);

class VoltageRegulator {
 public:
  // Starts at 1.5 V, stable.
  VoltageRegulator() = default;

  // The currently selected target rail.
  CoreVoltage target() const { return target_; }

  // True once the rail has settled on the target.  Downward transitions take
  // kVoltageDownSettle; upward transitions are instantaneous.
  bool IsStable(SimTime now) const { return now >= settle_until_; }

  // Instantaneous rail voltage.  During a downward settle the rail decays
  // exponentially from 1.5 V, undershoots slightly, then converges (this only
  // matters for the switch-overhead bench that plots the settle curve).
  double VoltsAt(SimTime now) const;

  // Requests a rail change; returns the time at which the rail is stable at
  // the new setting.  Re-requesting the current target is a no-op that
  // returns the existing settle time.  `down_settle` is the settle interval
  // for a downward transition (fault injection passes an overrunning one).
  SimTime Request(CoreVoltage v, SimTime now, SimTime down_settle = kVoltageDownSettle);

  // Number of transitions requested (excluding no-ops), for overhead
  // accounting.
  int transitions() const { return transitions_; }

  // True if running `step` at the *target* voltage is within spec.
  static bool StepAllowedAt(CoreVoltage v, int step);

  // Device-snapshot support (src/sim/snapshot.h).
  void SaveState(SnapshotWriter* w) const {
    w->U8(static_cast<std::uint8_t>(target_));
    w->Time(settle_until_);
    w->Time(transition_start_);
    w->U8(static_cast<std::uint8_t>(previous_));
    w->U32(static_cast<std::uint32_t>(transitions_));
  }
  void LoadState(SnapshotReader* r) {
    target_ = static_cast<CoreVoltage>(r->U8());
    settle_until_ = r->Time();
    transition_start_ = r->Time();
    previous_ = static_cast<CoreVoltage>(r->U8());
    transitions_ = static_cast<int>(r->U32());
  }

 private:
  CoreVoltage target_ = CoreVoltage::kHigh;
  SimTime settle_until_;        // rail stable at/after this time
  SimTime transition_start_;    // when the in-flight transition began
  CoreVoltage previous_ = CoreVoltage::kHigh;
  int transitions_ = 0;
};

}  // namespace dcs

#endif  // SRC_HW_VOLTAGE_REGULATOR_H_
