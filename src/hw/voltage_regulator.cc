#include "src/hw/voltage_regulator.h"

#include <cmath>

namespace dcs {

double VoltageVolts(CoreVoltage v) { return v == CoreVoltage::kHigh ? 1.50 : 1.23; }

bool VoltageRegulator::StepAllowedAt(CoreVoltage v, int step) {
  return v == CoreVoltage::kHigh || step <= kMaxStepAtLowVoltage;
}

SimTime VoltageRegulator::Request(CoreVoltage v, SimTime now, SimTime down_settle) {
  if (v == target_) {
    return settle_until_;
  }
  previous_ = target_;
  target_ = v;
  transition_start_ = now;
  ++transitions_;
  if (v == CoreVoltage::kHigh) {
    // Raising the rail was measured as effectively instantaneous.
    settle_until_ = now;
  } else {
    settle_until_ = now + down_settle;
  }
  return settle_until_;
}

double VoltageRegulator::VoltsAt(SimTime now) const {
  if (now >= settle_until_) {
    return VoltageVolts(target_);
  }
  // Mid-settle on a downward transition: exponential decay from the old rail
  // with a small undershoot before converging, as the paper observed ("the
  // voltage slowly reduces, drops below 1.23V and then rapidly settles").
  const double from = VoltageVolts(previous_);
  const double to = VoltageVolts(target_);
  // The decay curve is shaped by this transition's actual settle interval
  // (normally kVoltageDownSettle; longer under an injected overrun).
  const double span = (settle_until_ - transition_start_).ToSeconds();
  const double t = (now - transition_start_).ToSeconds();
  const double progress = t / span;  // in [0,1)
  // Decay with time constant span/6, plus an undershoot lobe peaking at ~80%
  // of the settle interval worth ~2% of the swing (the lobe dominates the
  // residual decay there, so the rail dips below the target before settling).
  const double decay = std::exp(-6.0 * progress);
  const double undershoot =
      0.02 * (from - to) * std::exp(-std::pow((progress - 0.8) / 0.12, 2.0));
  return to + (from - to) * decay - undershoot;
}

}  // namespace dcs
