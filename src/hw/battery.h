// Non-ideal battery model (paper section 2.1).
//
// Two effects matter for clock scheduling:
//   1. Rate-capacity (Peukert) effect — the energy a battery can deliver
//      drops as the discharge current rises.  The paper's illustration: two
//      AAA alkaline cells power an idle Itsy for ~2 h at 206 MHz but ~18 h at
//      59 MHz — a 9x lifetime gain for a 3.5x clock (and power) reduction.
//      We use the Peukert law t = Cp / I^k; fitting those endpoints gives
//      k = ln(9)/ln(3.5) ~= 1.754.
//   2. Pulsed-discharge recovery (Chiasserini & Rao, cited in the paper) —
//      interspersing high-demand bursts with long low-demand periods lets the
//      cell chemistry recover part of the rate-induced loss.  The paper notes
//      this matters less than (1) for pocket computers; we model it as a
//      recoverable-charge pool that refills during low-current periods.
//
// The model integrates depth-of-discharge over piecewise-constant current
// segments; lifetime experiments feed it the Itsy power trace divided by the
// supply voltage.

#ifndef SRC_HW_BATTERY_H_
#define SRC_HW_BATTERY_H_

#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace dcs {

struct BatteryParams {
  // Peukert capacity constant Cp in A^k * hours; with kPeukert below, chosen
  // so a 0.332 A drain (idle Itsy at 206 MHz) lasts 2.0 hours.
  double peukert_capacity = 0.2892;
  // Peukert exponent k (1 = ideal battery).
  double peukert_exponent = 1.754;
  // Reference current in amps: at exactly this current the Peukert penalty
  // equals 1 (drain is "nominal").  Currents below it are *less* taxing.
  double reference_current_a = 0.1;
  // Supply voltage for power -> current conversion (two cells in series under
  // load; the Itsy regulates from a single ~3.1 V supply).
  double supply_volts = 3.1;
  // Pulsed-discharge recovery: fraction of the Peukert *excess* loss (drain
  // beyond the ideal I*t) that is banked as recoverable.
  double recoverable_fraction = 0.25;
  // Rate at which the recoverable pool flows back into capacity during
  // low-current (< reference) periods, as a fraction of the pool per hour.
  double recovery_per_hour = 0.5;
};

class Battery {
 public:
  Battery() = default;
  explicit Battery(const BatteryParams& params) : params_(params) {}

  const BatteryParams& params() const { return params_; }

  // Integrates a constant-power segment of length `dt`.  Call with the
  // system power for each piecewise-constant interval of the power trace.
  void Drain(double watts, SimTime dt);

  // Fraction of usable charge consumed so far; >= 1 means empty.
  double DepthOfDischarge() const { return depth_; }
  bool Empty() const { return depth_ >= 1.0; }

  // Time of death: total drained time when depth first crossed 1.0 (linearly
  // interpolated within the crossing segment).  Feeds the fleet layer's
  // battery-death time curve.  Died() stays true even if recovery later
  // pulls the depth back under 1.0 — the device browned out regardless.
  bool Died() const { return died_; }
  SimTime DiedAt() const { return died_at_; }

  // Charge currently banked as recoverable, as a fraction of capacity.
  double RecoverablePool() const { return recoverable_; }

  // Predicted lifetime at a constant power draw (closed form, no recovery):
  // hours until empty.
  double LifetimeHoursAtConstantPower(double watts) const;

  // Resets to a full battery.
  void Reset();

  // Replaces the parameter set.  The fleet layer uses this at device-fork
  // time to apply per-device capacity jitter: the shared warmup charge state
  // (depth, recoverable pool — both capacity fractions) carries over, future
  // drain follows the device's own capacity.
  void SetParams(const BatteryParams& params) { params_ = params; }

  // Device-snapshot support (src/sim/snapshot.h).  Params are config and not
  // saved; SetParams above reapplies any per-device jitter after a load.
  void SaveState(SnapshotWriter* w) const {
    w->F64(depth_);
    w->F64(recoverable_);
    w->Time(life_);
    w->Bool(died_);
    w->Time(died_at_);
  }
  void LoadState(SnapshotReader* r) {
    depth_ = r->F64();
    recoverable_ = r->F64();
    life_ = r->Time();
    died_ = r->Bool();
    died_at_ = r->Time();
  }

 private:
  BatteryParams params_;
  double depth_ = 0.0;        // fraction of usable capacity consumed
  double recoverable_ = 0.0;  // fraction banked for recovery
  SimTime life_;              // total drained (simulated) time so far
  bool died_ = false;
  SimTime died_at_;
};

}  // namespace dcs

#endif  // SRC_HW_BATTERY_H_
