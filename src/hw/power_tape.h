// Piecewise-constant record of instantaneous system power.
//
// Every hardware state change (busy/nap/stall, clock step, voltage,
// peripheral activity) appends a segment.  The tape is the ground truth the
// DAQ samples from, and also supports exact energy integration so tests can
// verify the sampled estimate against the analytic value.
//
// Alongside the segments the tape keeps a cumulative-energy prefix array:
// prefix_[i] is the energy from the first segment's start to segment i's
// start, accumulated left-to-right in append order.  A windowed energy query
// then costs two binary searches plus O(1) arithmetic instead of a walk over
// every segment — and because the prefix is built with exactly the additions
// the old full scan performed, from-the-start windows (the tab2/ledger
// pattern) produce bitwise-identical joules.  Windows that open mid-segment
// fall back to a scan bounded to the overlapped segments, again with the
// original expressions, so those too are bitwise-unchanged.

#ifndef SRC_HW_POWER_TAPE_H_
#define SRC_HW_POWER_TAPE_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/sim/arena.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

// Feature probe for call sites (bench harness) that want the sequential
// cursor when present.
#define DCS_POWER_TAPE_HAS_CURSOR 1

namespace dcs {

class PowerTape {
 public:
  struct Segment {
    SimTime start;
    double watts = 0.0;
  };
  using SegmentVector = ArenaVector<Segment>;

  // Heap-backed tape (the default).  Binding an Arena routes segment and
  // prefix storage through it; copies of an arena-backed tape (ObsCapture)
  // are heap-backed automatically (see ArenaAllocator).
  PowerTape() = default;
  explicit PowerTape(Arena* arena)
      : segments_(ArenaAllocator<Segment>(arena)),
        prefix_(ArenaAllocator<double>(arena)) {}

  // Declares that from `now` onward the system draws `watts`.  Consecutive
  // equal-power segments are merged; `now` must be >= the last segment start.
  void Set(SimTime now, double watts);

  // Instantaneous power at `t` (0 before the first segment).
  double WattsAt(SimTime t) const;

  // Exact energy in joules over [begin, end), extending the last segment to
  // `end`.
  double EnergyJoules(SimTime begin, SimTime end) const;

  // Mean power over [begin, end).
  double AverageWatts(SimTime begin, SimTime end) const;

  const SegmentVector& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  // Device-snapshot support (src/sim/snapshot.h): the segment and prefix
  // arrays as raw POD spans — the bulk of a device image, and the part the
  // "contiguous image" clone path memcpys.  LoadState restores in place:
  // resizing within the reserved capacity never allocates, so a warmed fleet
  // worker reloads tapes heap-free.
  void SaveState(SnapshotWriter* w) const {
    w->U64(segments_.size());
    if (!segments_.empty()) {
      w->Bytes(segments_.data(), segments_.size() * sizeof(Segment));
      w->Bytes(prefix_.data(), prefix_.size() * sizeof(double));
    }
  }
  void LoadState(SnapshotReader* r) {
    const std::size_t n = static_cast<std::size_t>(r->U64());
    segments_.resize(n);
    prefix_.resize(n);
    if (n > 0) {
      r->Bytes(segments_.data(), n * sizeof(Segment));
      r->Bytes(prefix_.data(), n * sizeof(double));
    }
  }

  // Sequential reader: remembers the segment the previous lookup landed in,
  // so a non-decreasing stream of query times (the DAQ's sampling pattern)
  // costs amortised O(1) per read instead of a binary search each.  Reads
  // see segments appended to the tape after the cursor was created; a query
  // time earlier than the previous one is handled by falling back to a
  // binary search re-sync.
  class Cursor {
   public:
    explicit Cursor(const PowerTape& tape) : tape_(&tape) {}

    double WattsAt(SimTime t) {
      const SegmentVector& segs = tape_->segments();
      if (segs.empty() || t < segs.front().start) {
        return 0.0;
      }
      if (index_ >= segs.size()) {
        index_ = segs.size() - 1;
      }
      if (t < segs[index_].start) {
        // Query time went backwards: re-sync with a binary search.
        auto it = std::upper_bound(
            segs.begin(), segs.end(), t,
            [](SimTime x, const Segment& s) { return x < s.start; });
        index_ = static_cast<std::size_t>(it - segs.begin()) - 1;
        return segs[index_].watts;
      }
      while (index_ + 1 < segs.size() && segs[index_ + 1].start <= t) {
        ++index_;
      }
      return segs[index_].watts;
    }

    // Batched sequential gather: out[i] = WattsAt(times[i]) for `n`
    // non-decreasing query times, one amortised-O(1) advance per element.
    // The SoA companion to WattsAt — the DAQ fills a contiguous timestamp
    // array and reads a contiguous watts array back.
    void GatherWatts(const SimTime* times, std::size_t n, double* out) {
      const SegmentVector& segs = tape_->segments();
      const std::size_t count = segs.size();
      for (std::size_t i = 0; i < n; ++i) {
        const SimTime t = times[i];
        if (count == 0 || t < segs.front().start) {
          out[i] = 0.0;
          continue;
        }
        if (index_ >= count) {
          index_ = count - 1;
        }
        if (t < segs[index_].start) {
          auto it = std::upper_bound(
              segs.begin(), segs.end(), t,
              [](SimTime x, const Segment& s) { return x < s.start; });
          index_ = static_cast<std::size_t>(it - segs.begin()) - 1;
          out[i] = segs[index_].watts;
          continue;
        }
        while (index_ + 1 < count && segs[index_ + 1].start <= t) {
          ++index_;
        }
        out[i] = segs[index_].watts;
      }
    }

   private:
    const PowerTape* tape_;
    std::size_t index_ = 0;
  };

 private:
  SegmentVector segments_;
  // prefix_[i]: joules accumulated from segments_[0].start to
  // segments_[i].start (so prefix_[0] == 0).  Always segments_.size() long.
  ArenaVector<double> prefix_;
};

}  // namespace dcs

#endif  // SRC_HW_POWER_TAPE_H_
