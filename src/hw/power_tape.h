// Piecewise-constant record of instantaneous system power.
//
// Every hardware state change (busy/nap/stall, clock step, voltage,
// peripheral activity) appends a segment.  The tape is the ground truth the
// DAQ samples from, and also supports exact energy integration so tests can
// verify the sampled estimate against the analytic value.
//
// Alongside the segments the tape keeps a cumulative-energy prefix array:
// prefix_[i] is the energy from the first segment's start to segment i's
// start, accumulated left-to-right in append order.  A windowed energy query
// then costs two binary searches plus O(1) arithmetic instead of a walk over
// every segment — and because the prefix is built with exactly the additions
// the old full scan performed, from-the-start windows (the tab2/ledger
// pattern) produce bitwise-identical joules.  Windows that open mid-segment
// fall back to a scan bounded to the overlapped segments, again with the
// original expressions, so those too are bitwise-unchanged.

#ifndef SRC_HW_POWER_TAPE_H_
#define SRC_HW_POWER_TAPE_H_

#include <cstddef>
#include <vector>

#include "src/sim/time.h"

// Feature probe for call sites (bench harness) that want the sequential
// cursor when present.
#define DCS_POWER_TAPE_HAS_CURSOR 1

namespace dcs {

class PowerTape {
 public:
  struct Segment {
    SimTime start;
    double watts = 0.0;
  };

  // Declares that from `now` onward the system draws `watts`.  Consecutive
  // equal-power segments are merged; `now` must be >= the last segment start.
  void Set(SimTime now, double watts);

  // Instantaneous power at `t` (0 before the first segment).
  double WattsAt(SimTime t) const;

  // Exact energy in joules over [begin, end), extending the last segment to
  // `end`.
  double EnergyJoules(SimTime begin, SimTime end) const;

  // Mean power over [begin, end).
  double AverageWatts(SimTime begin, SimTime end) const;

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

  // Sequential reader: remembers the segment the previous lookup landed in,
  // so a non-decreasing stream of query times (the DAQ's sampling pattern)
  // costs amortised O(1) per read instead of a binary search each.  Reads
  // see segments appended to the tape after the cursor was created; a query
  // time earlier than the previous one is handled by falling back to a
  // binary search re-sync.
  class Cursor {
   public:
    explicit Cursor(const PowerTape& tape) : tape_(&tape) {}

    double WattsAt(SimTime t);

   private:
    const PowerTape* tape_;
    std::size_t index_ = 0;
  };

 private:
  std::vector<Segment> segments_;
  // prefix_[i]: joules accumulated from segments_[0].start to
  // segments_[i].start (so prefix_[0] == 0).  Always segments_.size() long.
  std::vector<double> prefix_;
};

}  // namespace dcs

#endif  // SRC_HW_POWER_TAPE_H_
