// Piecewise-constant record of instantaneous system power.
//
// Every hardware state change (busy/nap/stall, clock step, voltage,
// peripheral activity) appends a segment.  The tape is the ground truth the
// DAQ samples from, and also supports exact energy integration so tests can
// verify the sampled estimate against the analytic value.

#ifndef SRC_HW_POWER_TAPE_H_
#define SRC_HW_POWER_TAPE_H_

#include <vector>

#include "src/sim/time.h"

namespace dcs {

class PowerTape {
 public:
  struct Segment {
    SimTime start;
    double watts = 0.0;
  };

  // Declares that from `now` onward the system draws `watts`.  Consecutive
  // equal-power segments are merged; `now` must be >= the last segment start.
  void Set(SimTime now, double watts);

  // Instantaneous power at `t` (0 before the first segment).
  double WattsAt(SimTime t) const;

  // Exact energy in joules over [begin, end), extending the last segment to
  // `end`.
  double EnergyJoules(SimTime begin, SimTime end) const;

  // Mean power over [begin, end).
  double AverageWatts(SimTime begin, SimTime end) const;

  const std::vector<Segment>& segments() const { return segments_; }
  bool empty() const { return segments_.empty(); }

 private:
  std::vector<Segment> segments_;
};

}  // namespace dcs

#endif  // SRC_HW_POWER_TAPE_H_
