// The StrongARM SA-1100 clock step table.
//
// The SA-1100 core clock is generated from a 3.6864 MHz crystal through a
// PLL that supports 11 discrete multipliers: f_k = (16 + 4k) * 3.6864 MHz
// for k = 0..10, i.e. 59.0, 73.7, 88.5, 103.2, 118.0, 132.7, 147.5, 162.2,
// 176.9, 191.7 and 206.4 MHz — exactly the clock steps the paper lists.
// Changing steps stalls the processor for ~200 us while the PLL relocks
// (paper section 5.4), independent of the starting and target speeds.

#ifndef SRC_HW_CLOCK_TABLE_H_
#define SRC_HW_CLOCK_TABLE_H_

#include <array>

#include "src/sim/time.h"

namespace dcs {

// Number of discrete clock steps on the SA-1100.
inline constexpr int kNumClockSteps = 11;

// Crystal frequency feeding the PLL; also the timer granularity the paper's
// gettimeofday-based measurements rely on.
inline constexpr double kCrystalMhz = 3.6864;

// Measured PLL relock stall: the CPU executes nothing for this long on every
// clock change, regardless of endpoints (paper: ~200 us).
inline constexpr SimTime kClockSwitchStall = SimTime::Micros(200);

// Static facts about the clock steps.  All functions clamp/validate their
// step argument so governors can be sloppy about bounds.
class ClockTable {
 public:
  // Frequency of `step` in MHz; steps outside [0, kNumClockSteps) are
  // clamped.
  static double FrequencyMhz(int step);

  // Frequency in Hz.
  static double FrequencyHz(int step) { return FrequencyMhz(step) * 1e6; }

  // Clamps a step index into the valid range.
  static int Clamp(int step);

  // The lowest step whose frequency is >= mhz; returns the top step if no
  // step is fast enough.
  static int StepForAtLeastMhz(double mhz);

  // The step whose frequency is closest to mhz.
  static int NearestStep(double mhz);

  // All step frequencies, ascending.
  static const std::array<double, kNumClockSteps>& Frequencies();

  static constexpr int MinStep() { return 0; }
  static constexpr int MaxStep() { return kNumClockSteps - 1; }
};

}  // namespace dcs

#endif  // SRC_HW_CLOCK_TABLE_H_
