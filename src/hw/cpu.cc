#include "src/hw/cpu.h"

namespace dcs {

Cpu::Cpu(int initial_step, SimTime switch_stall)
    : step_(ClockTable::Clamp(initial_step)), switch_stall_(switch_stall) {}

SimTime Cpu::BeginClockChange(int new_step, SimTime now) {
  new_step = ClockTable::Clamp(new_step);
  if (new_step == step_) {
    return now;
  }
  step_ = new_step;
  state_ = ExecState::kStalled;
  stall_until_ = now + switch_stall_;
  ++clock_changes_;
  total_stall_ += switch_stall_;
  return stall_until_;
}

}  // namespace dcs
