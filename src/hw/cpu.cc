#include "src/hw/cpu.h"

namespace dcs {

Cpu::Cpu(int initial_step, SimTime switch_stall)
    : step_(ClockTable::Clamp(initial_step)), switch_stall_(switch_stall) {}

SimTime Cpu::BeginClockChange(int new_step, SimTime now) {
  return BeginClockChange(new_step, now, switch_stall_);
}

SimTime Cpu::BeginClockChange(int new_step, SimTime now, SimTime stall) {
  new_step = ClockTable::Clamp(new_step);
  if (new_step == step_) {
    return now;
  }
  step_ = new_step;
  state_ = ExecState::kStalled;
  stall_until_ = now + stall;
  ++clock_changes_;
  total_stall_ += stall;
  return stall_until_;
}

SimTime Cpu::ForceStall(SimTime stall, SimTime now) {
  state_ = ExecState::kStalled;
  stall_until_ = now + stall;
  total_stall_ += stall;
  return stall_until_;
}

}  // namespace dcs
