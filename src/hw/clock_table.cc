#include "src/hw/clock_table.h"

#include <cmath>

namespace dcs {
namespace {

constexpr std::array<double, kNumClockSteps> BuildFrequencies() {
  std::array<double, kNumClockSteps> f{};
  for (int k = 0; k < kNumClockSteps; ++k) {
    f[static_cast<std::size_t>(k)] = (16 + 4 * k) * kCrystalMhz;
  }
  return f;
}

constexpr std::array<double, kNumClockSteps> kFrequencies = BuildFrequencies();

}  // namespace

int ClockTable::Clamp(int step) {
  if (step < 0) {
    return 0;
  }
  if (step >= kNumClockSteps) {
    return kNumClockSteps - 1;
  }
  return step;
}

double ClockTable::FrequencyMhz(int step) {
  return kFrequencies[static_cast<std::size_t>(Clamp(step))];
}

int ClockTable::StepForAtLeastMhz(double mhz) {
  for (int k = 0; k < kNumClockSteps; ++k) {
    if (kFrequencies[static_cast<std::size_t>(k)] >= mhz) {
      return k;
    }
  }
  return kNumClockSteps - 1;
}

int ClockTable::NearestStep(double mhz) {
  int best = 0;
  double best_err = std::abs(kFrequencies[0] - mhz);
  for (int k = 1; k < kNumClockSteps; ++k) {
    const double err = std::abs(kFrequencies[static_cast<std::size_t>(k)] - mhz);
    if (err < best_err) {
      best_err = err;
      best = k;
    }
  }
  return best;
}

const std::array<double, kNumClockSteps>& ClockTable::Frequencies() { return kFrequencies; }

}  // namespace dcs
