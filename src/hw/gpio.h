// SA-1100 general-purpose I/O pins.
//
// The paper's measurement methodology toggles a GPIO pin when a workload
// starts and stops; the pin is wired to the DAQ's external trigger.  We model
// a small pin bank with edge observers so the DAQ can latch trigger times.

#ifndef SRC_HW_GPIO_H_
#define SRC_HW_GPIO_H_

#include <array>
#include <functional>
#include <vector>

#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace dcs {

inline constexpr int kNumGpioPins = 28;  // SA-1100 has 28 GPIO lines.

class Gpio {
 public:
  // Edge callback: (pin, time, new_level).
  using EdgeObserver = std::function<void(int pin, SimTime at, bool level)>;

  // Current level of `pin` (pins start low).
  bool Level(int pin) const;

  // Drives `pin` to `level` at time `at`; observers fire only on actual
  // transitions.
  void Write(int pin, bool level, SimTime at);

  // Inverts `pin`, the idiom the paper's trigger code uses.
  void Toggle(int pin, SimTime at);

  // Registers an observer for all pin transitions.
  void Observe(EdgeObserver observer);

  // Device-snapshot support (src/sim/snapshot.h).  Pin levels only;
  // observers are wiring, re-attached when the stack is built.
  void SaveState(SnapshotWriter* w) const {
    for (const bool level : levels_) {
      w->Bool(level);
    }
  }
  void LoadState(SnapshotReader* r) {
    for (bool& level : levels_) {
      level = r->Bool();
    }
  }

 private:
  std::array<bool, kNumGpioPins> levels_{};
  std::vector<EdgeObserver> observers_;
};

}  // namespace dcs

#endif  // SRC_HW_GPIO_H_
