// SA-1100 processor core state: clock step, execution state and the PLL
// relock stall that accompanies every clock change.

#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include "src/hw/clock_table.h"
#include "src/hw/power_model.h"
#include "src/sim/snapshot.h"
#include "src/sim/time.h"

namespace dcs {

class Cpu {
 public:
  // Starts at the top step (206.4 MHz), napping (nothing scheduled yet).
  // `switch_stall` overrides the measured 200 us PLL relock time (ablation
  // studies model faster or slower clock-change hardware).
  explicit Cpu(int initial_step = ClockTable::MaxStep(),
               SimTime switch_stall = kClockSwitchStall);

  int step() const { return step_; }
  double frequency_mhz() const { return ClockTable::FrequencyMhz(step_); }
  ExecState state() const { return state_; }

  // Initiates a clock change to `new_step` (clamped).  The core cannot
  // execute instructions until the returned time (now + 200 us); the caller
  // is responsible for putting the core back into kBusy/kNap afterwards.
  // Changing to the current step is a no-op returning `now`.
  SimTime BeginClockChange(int new_step, SimTime now);
  // Same, but with an explicit relock stall (fault injection stretches it).
  SimTime BeginClockChange(int new_step, SimTime now, SimTime stall);

  // Locks the core out for `stall` without changing the clock step: a failed
  // transition still pays the PLL relock.  Counted in total_stall() but not
  // in clock_changes() (no transition happened).
  SimTime ForceStall(SimTime stall, SimTime now);

  SimTime switch_stall() const { return switch_stall_; }

  // True while a clock change is still relocking at `now`.
  bool Stalled(SimTime now) const { return now < stall_until_; }
  SimTime stall_until() const { return stall_until_; }

  // Transitions between busy and nap.  Must not be called mid-stall (the
  // kernel waits for stall_until()).
  void SetState(ExecState state) { state_ = state; }

  // Diagnostics for the overhead accounting in section 5.4.
  int clock_changes() const { return clock_changes_; }
  SimTime total_stall() const { return total_stall_; }

  // Device-snapshot support (src/sim/snapshot.h).  switch_stall_ is config,
  // not state — a restored Cpu keeps the value it was constructed with.
  void SaveState(SnapshotWriter* w) const {
    w->U32(static_cast<std::uint32_t>(step_));
    w->U8(static_cast<std::uint8_t>(state_));
    w->Time(stall_until_);
    w->U32(static_cast<std::uint32_t>(clock_changes_));
    w->Time(total_stall_);
  }
  void LoadState(SnapshotReader* r) {
    step_ = static_cast<int>(r->U32());
    state_ = static_cast<ExecState>(r->U8());
    stall_until_ = r->Time();
    clock_changes_ = static_cast<int>(r->U32());
    total_stall_ = r->Time();
  }

 private:
  int step_;
  SimTime switch_stall_;
  ExecState state_ = ExecState::kNap;
  SimTime stall_until_;
  int clock_changes_ = 0;
  SimTime total_stall_;
};

}  // namespace dcs

#endif  // SRC_HW_CPU_H_
