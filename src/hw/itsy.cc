#include "src/hw/itsy.h"

#include <algorithm>

#include "src/fault/fault_injector.h"

namespace dcs {

Itsy::Itsy(Simulator& sim, const ItsyConfig& config, Arena* arena)
    : sim_(sim), power_model_(config.power),
      cpu_(config.initial_step, config.clock_switch_stall), tape_(arena) {
  if (config.initial_voltage == CoreVoltage::kLow) {
    regulator_.Request(CoreVoltage::kLow, sim_.Now());
  }
  if (config.battery) {
    battery_.emplace(*config.battery);
  }
  last_battery_update_ = sim_.Now();
  RefreshPower();
}

void Itsy::BindMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ctr_clock_changes_ = ctr_voltage_transitions_ = ctr_power_segments_ = nullptr;
    hist_switch_stall_us_ = nullptr;
    return;
  }
  ctr_clock_changes_ = &metrics->Counter("hw.clock_changes");
  ctr_voltage_transitions_ = &metrics->Counter("hw.voltage_transitions");
  ctr_power_segments_ = &metrics->Counter("hw.power_segments");
  hist_switch_stall_us_ = &metrics->Histogram("hw.clock_switch_stall_us");
}

SimTime Itsy::SetClockStep(int new_step) {
  new_step = ClockTable::Clamp(new_step);
  last_clock_change_failed_ = false;
  if (new_step == cpu_.step()) {
    return sim_.Now();
  }
  if (!VoltageRegulator::StepAllowedAt(regulator_.target(), new_step)) {
    // Raise the rail first; upward transitions are instantaneous.  This
    // supersedes any in-flight down-settle, so an armed brownout must die
    // with it.
    CancelBrownout();
    regulator_.Request(CoreVoltage::kHigh, sim_.Now());
  }
  SimTime stall_end;
  if (faults_ != nullptr && faults_->ClockChangeFails()) {
    // Failed transition: the PLL pays the (possibly stretched) relock
    // lockout but the divider sticks at the old step.
    last_clock_change_failed_ = true;
    stall_end = cpu_.ForceStall(faults_->ClockStall(cpu_.switch_stall()), sim_.Now());
  } else if (faults_ != nullptr) {
    stall_end =
        cpu_.BeginClockChange(new_step, sim_.Now(), faults_->ClockStall(cpu_.switch_stall()));
  } else {
    stall_end = cpu_.BeginClockChange(new_step, sim_.Now());
  }
  if (ctr_clock_changes_ != nullptr && !last_clock_change_failed_) {
    ctr_clock_changes_->Inc();
    hist_switch_stall_us_->Observe((stall_end - sim_.Now()).ToMicrosF());
  }
  RefreshPower();
  return stall_end;
}

bool Itsy::SetVoltage(CoreVoltage v) {
  if (!VoltageRegulator::StepAllowedAt(v, cpu_.step())) {
    return false;
  }
  if (v != regulator_.target()) {
    CancelBrownout();
    if (faults_ != nullptr && v == CoreVoltage::kLow) {
      const SimTime settle = faults_->SettleTime(kVoltageDownSettle);
      regulator_.Request(v, sim_.Now(), settle);
      if (faults_->BrownoutDuringSettle()) {
        // The rail undershoots hard enough mid-settle to brown the core out;
        // model it as a forced step-down halfway through the interval.
        brownout_at_ = sim_.Now() + settle / 2;
        brownout_event_ = sim_.At(brownout_at_, [this] { OnBrownout(); });
      }
    } else {
      regulator_.Request(v, sim_.Now());
    }
    if (ctr_voltage_transitions_ != nullptr) {
      ctr_voltage_transitions_->Inc();
    }
    RefreshPower();
  }
  return true;
}

void Itsy::CancelBrownout() {
  if (brownout_event_ != kInvalidEventId) {
    sim_.Cancel(brownout_event_);
    brownout_event_ = kInvalidEventId;
  }
}

void Itsy::OnBrownout() {
  brownout_event_ = kInvalidEventId;
  ++brownouts_;
  // The hardware dropped the divider on its own — no fail draw applies.  The
  // step lands kBrownoutStepDrop below the 1.23 V-safe position and the core
  // pays a normal relock.
  const int safe = std::min(cpu_.step(), kMaxStepAtLowVoltage);
  cpu_.BeginClockChange(safe - FaultInjector::kBrownoutStepDrop, sim_.Now());
  RefreshPower();
}

void Itsy::SetExecState(ExecState state) {
  if (state == cpu_.state()) {
    return;
  }
  cpu_.SetState(state);
  RefreshPower();
}

void Itsy::SetAudio(bool on) {
  if (peripherals_.audio_on == on) {
    return;
  }
  peripherals_.audio_on = on;
  RefreshPower();
}

void Itsy::SetDisplay(bool on) {
  if (peripherals_.display_on == on) {
    return;
  }
  peripherals_.display_on = on;
  RefreshPower();
}

double Itsy::CurrentSystemWatts() const {
  return power_model_.SystemWatts(cpu_.state(), cpu_.step(),
                                  VoltageVolts(regulator_.target()), peripherals_);
}

double Itsy::CurrentProcessorWatts() const {
  return power_model_.ProcessorWatts(cpu_.state(), cpu_.step(),
                                     VoltageVolts(regulator_.target()));
}

void Itsy::SyncBattery() {
  const SimTime now = sim_.Now();
  if (battery_) {
    battery_->Drain(tape_.WattsAt(last_battery_update_), now - last_battery_update_);
  }
  last_battery_update_ = now;
}

namespace {
constexpr std::uint32_t kItsyTag = 0x49545359u;  // "ITSY"
}  // namespace

void Itsy::SaveState(SnapshotWriter* w) const {
  w->Tag(kItsyTag);
  cpu_.SaveState(w);
  regulator_.SaveState(w);
  w->Bool(peripherals_.display_on);
  w->Bool(peripherals_.audio_on);
  tape_.SaveState(w);
  gpio_.SaveState(w);
  w->Bool(battery_.has_value());
  if (battery_) {
    battery_->SaveState(w);
  }
  w->Time(last_battery_update_);
  w->Bool(last_clock_change_failed_);
  w->U32(static_cast<std::uint32_t>(brownouts_));
  const bool brownout_armed = brownout_event_ != kInvalidEventId;
  w->Bool(brownout_armed);
  if (brownout_armed) {
    w->Time(brownout_at_);
    w->U64(sim_.EventSeq(brownout_event_));
  }
}

void Itsy::LoadState(SnapshotReader* r, RearmList* rearm) {
  // Drop whatever the previous occupant of this stack left armed.
  CancelBrownout();
  r->Tag(kItsyTag);
  cpu_.LoadState(r);
  regulator_.LoadState(r);
  peripherals_.display_on = r->Bool();
  peripherals_.audio_on = r->Bool();
  tape_.LoadState(r);
  gpio_.LoadState(r);
  const bool has_battery = r->Bool();
  if (has_battery && battery_) {
    battery_->LoadState(r);
  } else if (has_battery) {
    // Image was taken with a battery this stack lacks: consume the fields so
    // the reader stays aligned, and let the caller's ok() check flag misuse.
    Battery scratch;
    scratch.LoadState(r);
  }
  last_battery_update_ = r->Time();
  last_clock_change_failed_ = r->Bool();
  brownouts_ = static_cast<int>(r->U32());
  if (r->Bool()) {
    const SimTime at = r->Time();
    const std::uint64_t seq = r->U64();
    rearm->Add(seq, at,
               [](void* ctx, SimTime fire_at, std::int64_t) {
                 auto* self = static_cast<Itsy*>(ctx);
                 self->brownout_at_ = fire_at;
                 self->brownout_event_ = self->sim_.At(fire_at, [self] { self->OnBrownout(); });
               },
               this);
  }
}

void Itsy::RefreshPower() {
  // Drain the battery over the segment that just ended, at that segment's
  // power (the tape still holds the old value).
  SyncBattery();
  const std::size_t segments_before = tape_.segments().size();
  tape_.Set(sim_.Now(), CurrentSystemWatts());
  if (ctr_power_segments_ != nullptr && tape_.segments().size() > segments_before) {
    ctr_power_segments_->Inc();
  }
}

}  // namespace dcs
