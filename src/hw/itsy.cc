#include "src/hw/itsy.h"

namespace dcs {

Itsy::Itsy(Simulator& sim, const ItsyConfig& config)
    : sim_(sim), power_model_(config.power),
      cpu_(config.initial_step, config.clock_switch_stall) {
  if (config.initial_voltage == CoreVoltage::kLow) {
    regulator_.Request(CoreVoltage::kLow, sim_.Now());
  }
  if (config.battery) {
    battery_.emplace(*config.battery);
  }
  last_battery_update_ = sim_.Now();
  RefreshPower();
}

void Itsy::BindMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    ctr_clock_changes_ = ctr_voltage_transitions_ = ctr_power_segments_ = nullptr;
    hist_switch_stall_us_ = nullptr;
    return;
  }
  ctr_clock_changes_ = &metrics->Counter("hw.clock_changes");
  ctr_voltage_transitions_ = &metrics->Counter("hw.voltage_transitions");
  ctr_power_segments_ = &metrics->Counter("hw.power_segments");
  hist_switch_stall_us_ = &metrics->Histogram("hw.clock_switch_stall_us");
}

SimTime Itsy::SetClockStep(int new_step) {
  new_step = ClockTable::Clamp(new_step);
  if (new_step == cpu_.step()) {
    return sim_.Now();
  }
  if (!VoltageRegulator::StepAllowedAt(regulator_.target(), new_step)) {
    // Raise the rail first; upward transitions are instantaneous.
    regulator_.Request(CoreVoltage::kHigh, sim_.Now());
  }
  const SimTime stall_end = cpu_.BeginClockChange(new_step, sim_.Now());
  if (ctr_clock_changes_ != nullptr) {
    ctr_clock_changes_->Inc();
    hist_switch_stall_us_->Observe((stall_end - sim_.Now()).ToMicrosF());
  }
  RefreshPower();
  return stall_end;
}

bool Itsy::SetVoltage(CoreVoltage v) {
  if (!VoltageRegulator::StepAllowedAt(v, cpu_.step())) {
    return false;
  }
  if (v != regulator_.target()) {
    regulator_.Request(v, sim_.Now());
    if (ctr_voltage_transitions_ != nullptr) {
      ctr_voltage_transitions_->Inc();
    }
    RefreshPower();
  }
  return true;
}

void Itsy::SetExecState(ExecState state) {
  if (state == cpu_.state()) {
    return;
  }
  cpu_.SetState(state);
  RefreshPower();
}

void Itsy::SetAudio(bool on) {
  if (peripherals_.audio_on == on) {
    return;
  }
  peripherals_.audio_on = on;
  RefreshPower();
}

void Itsy::SetDisplay(bool on) {
  if (peripherals_.display_on == on) {
    return;
  }
  peripherals_.display_on = on;
  RefreshPower();
}

double Itsy::CurrentSystemWatts() const {
  return power_model_.SystemWatts(cpu_.state(), cpu_.step(),
                                  VoltageVolts(regulator_.target()), peripherals_);
}

double Itsy::CurrentProcessorWatts() const {
  return power_model_.ProcessorWatts(cpu_.state(), cpu_.step(),
                                     VoltageVolts(regulator_.target()));
}

void Itsy::SyncBattery() {
  const SimTime now = sim_.Now();
  if (battery_) {
    battery_->Drain(tape_.WattsAt(last_battery_update_), now - last_battery_update_);
  }
  last_battery_update_ = now;
}

void Itsy::RefreshPower() {
  // Drain the battery over the segment that just ended, at that segment's
  // power (the tape still holds the old value).
  SyncBattery();
  const std::size_t segments_before = tape_.segments().size();
  tape_.Set(sim_.Now(), CurrentSystemWatts());
  if (ctr_power_segments_ != nullptr && tape_.segments().size() > segments_before) {
    ctr_power_segments_->Inc();
  }
}

}  // namespace dcs
