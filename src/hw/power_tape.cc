#include "src/hw/power_tape.h"

#include <algorithm>
#include <cassert>

namespace dcs {

void PowerTape::Set(SimTime now, double watts) {
  assert((segments_.empty() || now >= segments_.back().start) &&
         "PowerTape segments must be time-ordered");
  if (!segments_.empty() && segments_.back().watts == watts) {
    return;
  }
  if (!segments_.empty() && segments_.back().start == now) {
    // Multiple state changes at the same instant collapse to the last one.
    segments_.back().watts = watts;
    // Collapsing can expose a merge with the (new) previous segment.
    if (segments_.size() >= 2 && segments_[segments_.size() - 2].watts == watts) {
      segments_.pop_back();
    }
    return;
  }
  segments_.push_back(Segment{now, watts});
}

double PowerTape::WattsAt(SimTime t) const {
  if (segments_.empty() || t < segments_.front().start) {
    return 0.0;
  }
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](SimTime x, const Segment& s) { return x < s.start; });
  return std::prev(it)->watts;
}

double PowerTape::EnergyJoules(SimTime begin, SimTime end) const {
  if (segments_.empty() || end <= begin) {
    return 0.0;
  }
  double joules = 0.0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const SimTime seg_begin = std::max(segments_[i].start, begin);
    const SimTime seg_end =
        std::min(i + 1 < segments_.size() ? segments_[i + 1].start : end, end);
    if (seg_end > seg_begin) {
      joules += segments_[i].watts * (seg_end - seg_begin).ToSeconds();
    }
  }
  return joules;
}

double PowerTape::AverageWatts(SimTime begin, SimTime end) const {
  if (end <= begin) {
    return 0.0;
  }
  return EnergyJoules(begin, end) / (end - begin).ToSeconds();
}

}  // namespace dcs
