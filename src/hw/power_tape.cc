#include "src/hw/power_tape.h"

#include <algorithm>
#include <cassert>

namespace dcs {

void PowerTape::Set(SimTime now, double watts) {
  assert((segments_.empty() || now >= segments_.back().start) &&
         "PowerTape segments must be time-ordered");
  if (!segments_.empty() && segments_.back().watts == watts) {
    return;
  }
  if (!segments_.empty() && segments_.back().start == now) {
    // Multiple state changes at the same instant collapse to the last one.
    // Only the still-open last segment changes, and prefix_ never includes
    // the open segment's contribution, so the prefix stays valid.
    segments_.back().watts = watts;
    // Collapsing can expose a merge with the (new) previous segment.
    if (segments_.size() >= 2 && segments_[segments_.size() - 2].watts == watts) {
      segments_.pop_back();
      prefix_.pop_back();
    }
    return;
  }
  // Appending closes the previous segment: fold its full contribution into
  // the prefix.  The expression mirrors the energy integration term exactly
  // (same subtraction, same ToSeconds, same multiply, added left-to-right)
  // so prefix-based queries are bitwise-identical to the old full scan.
  if (segments_.empty()) {
    prefix_.push_back(0.0);
  } else {
    const Segment& prev = segments_.back();
    prefix_.push_back(prefix_.back() + prev.watts * (now - prev.start).ToSeconds());
  }
  segments_.push_back(Segment{now, watts});
}

double PowerTape::WattsAt(SimTime t) const {
  if (segments_.empty() || t < segments_.front().start) {
    return 0.0;
  }
  auto it = std::upper_bound(segments_.begin(), segments_.end(), t,
                             [](SimTime x, const Segment& s) { return x < s.start; });
  return std::prev(it)->watts;
}

double PowerTape::EnergyJoules(SimTime begin, SimTime end) const {
  if (segments_.empty() || end <= begin) {
    return 0.0;
  }
  if (begin <= segments_.front().start) {
    if (end <= segments_.front().start) {
      return 0.0;
    }
    // The window covers every segment from the first: its energy is the
    // prefix up to the segment containing `end` plus that segment's partial
    // tail.  k is the last segment starting strictly before `end`.
    const auto it = std::lower_bound(
        segments_.begin(), segments_.end(), end,
        [](const Segment& s, SimTime x) { return s.start < x; });
    const std::size_t k = static_cast<std::size_t>(it - segments_.begin()) - 1;
    return prefix_[k] + segments_[k].watts * (end - segments_[k].start).ToSeconds();
  }
  // The window opens mid-tape: sum only the overlapped segments, starting at
  // the last segment whose start is <= begin.  Loop body identical to the
  // old full scan, so the result rounds identically.
  auto it = std::upper_bound(segments_.begin(), segments_.end(), begin,
                             [](SimTime x, const Segment& s) { return x < s.start; });
  double joules = 0.0;
  for (std::size_t i = static_cast<std::size_t>(it - segments_.begin()) - 1;
       i < segments_.size() && segments_[i].start < end; ++i) {
    const SimTime seg_begin = std::max(segments_[i].start, begin);
    const SimTime seg_end =
        std::min(i + 1 < segments_.size() ? segments_[i + 1].start : end, end);
    if (seg_end > seg_begin) {
      joules += segments_[i].watts * (seg_end - seg_begin).ToSeconds();
    }
  }
  return joules;
}

double PowerTape::AverageWatts(SimTime begin, SimTime end) const {
  if (end <= begin) {
    return 0.0;
  }
  return EnergyJoules(begin, end) / (end - begin).ToSeconds();
}

}  // namespace dcs
