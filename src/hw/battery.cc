#include "src/hw/battery.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dcs {

void Battery::Drain(double watts, SimTime dt) {
  if (dt <= SimTime::Zero() || watts < 0.0) {
    return;
  }
  const SimTime life_before = life_;
  const double depth_before = depth_;
  life_ = life_ + dt;
  const double hours = dt.ToSeconds() / 3600.0;
  const double amps = watts / params_.supply_volts;
  if (amps <= 0.0) {
    // Pure rest: recovery only.
    const double recovered = std::min(recoverable_, recoverable_ * params_.recovery_per_hour * hours);
    recoverable_ -= recovered;
    depth_ = std::max(0.0, depth_ - recovered);
    return;
  }
  // Peukert drain: depth accrues at I^k / Cp per hour.
  const double peukert_rate = std::pow(amps, params_.peukert_exponent) / params_.peukert_capacity;
  // The "ideal" drain an effect-free battery would see at the same current,
  // expressed against the capacity available at the reference current.
  const double ideal_rate =
      amps * std::pow(params_.reference_current_a, params_.peukert_exponent - 1.0) /
      params_.peukert_capacity;
  depth_ += peukert_rate * hours;
  if (!died_ && depth_ >= 1.0) {
    died_ = true;
    // Linear interpolation of the crossing point within this segment.
    const double rise = depth_ - depth_before;
    const double frac = rise > 0.0 ? std::clamp((1.0 - depth_before) / rise, 0.0, 1.0) : 1.0;
    died_at_ = life_before + SimTime::FromSecondsF(dt.ToSeconds() * frac);
  }
  if (peukert_rate > ideal_rate) {
    // High-rate segment: bank part of the excess loss as recoverable.
    recoverable_ += params_.recoverable_fraction * (peukert_rate - ideal_rate) * hours;
  } else {
    // Low-rate segment: the chemistry recovers part of the banked loss.
    const double recovered =
        std::min(recoverable_, recoverable_ * params_.recovery_per_hour * hours);
    recoverable_ -= recovered;
    depth_ = std::max(0.0, depth_ - recovered);
  }
}

double Battery::LifetimeHoursAtConstantPower(double watts) const {
  if (watts <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double amps = watts / params_.supply_volts;
  return params_.peukert_capacity / std::pow(amps, params_.peukert_exponent);
}

void Battery::Reset() {
  depth_ = 0.0;
  recoverable_ = 0.0;
  life_ = SimTime::Zero();
  died_ = false;
  died_at_ = SimTime::Zero();
}

}  // namespace dcs
