// The Itsy pocket computer: composition of the SA-1100 core, voltage
// regulator, power model, power tape, GPIO bank and (optionally) a battery.
//
// The kernel and workloads mutate hardware state exclusively through this
// class, which keeps the power tape consistent: every state change appends a
// piecewise-constant power segment that the DAQ later samples.

#ifndef SRC_HW_ITSY_H_
#define SRC_HW_ITSY_H_

#include <optional>

#include "src/hw/battery.h"
#include "src/hw/cpu.h"
#include "src/hw/gpio.h"
#include "src/hw/power_model.h"
#include "src/hw/power_tape.h"
#include "src/hw/voltage_regulator.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"

namespace dcs {

class FaultInjector;

struct ItsyConfig {
  PowerModelParams power;
  int initial_step = ClockTable::MaxStep();
  // PLL relock stall per clock change (ablation knob; measured: 200 us).
  SimTime clock_switch_stall = kClockSwitchStall;
  CoreVoltage initial_voltage = CoreVoltage::kHigh;
  // When set, every power segment also drains this battery model.
  std::optional<BatteryParams> battery;
};

class Itsy {
 public:
  // `arena`, when bound, backs the power tape's per-run segment storage; it
  // must outlive the Itsy.  ObsCapture copies of the tape are heap-backed
  // regardless (see ArenaAllocator).
  Itsy(Simulator& sim, const ItsyConfig& config = {}, Arena* arena = nullptr);
  Itsy(const Itsy&) = delete;
  Itsy& operator=(const Itsy&) = delete;

  // --- Clock and voltage -------------------------------------------------
  int step() const { return cpu_.step(); }
  double frequency_mhz() const { return cpu_.frequency_mhz(); }
  CoreVoltage voltage() const { return regulator_.target(); }

  // Initiates a clock change; the CPU stalls until the returned time.  If
  // `new_step` is unsafe at the current rail, the rail is raised first
  // (instantaneous).  Asking for the current step is a no-op.  Under fault
  // injection the transition may fail: the stall is still paid but the step
  // sticks, and last_clock_change_failed() reports it so the kernel can
  // retry with backoff.
  SimTime SetClockStep(int new_step);
  bool last_clock_change_failed() const { return last_clock_change_failed_; }

  // Requests a rail change.  Refused (returns false) when the current step is
  // too fast for the requested rail.
  bool SetVoltage(CoreVoltage v);

  // --- Execution state (driven by the kernel) ----------------------------
  ExecState exec_state() const { return cpu_.state(); }
  void SetExecState(ExecState state);
  bool Stalled() const { return cpu_.Stalled(sim_.Now()); }
  SimTime stall_until() const { return cpu_.stall_until(); }

  // --- Peripherals (driven by workloads) ----------------------------------
  void SetAudio(bool on);
  void SetDisplay(bool on);
  const PeripheralState& peripherals() const { return peripherals_; }

  // --- Power --------------------------------------------------------------
  double CurrentSystemWatts() const;
  double CurrentProcessorWatts() const;
  const PowerTape& tape() const { return tape_; }
  const PowerModel& power_model() const { return power_model_; }

  // --- Components ---------------------------------------------------------
  // Integrates battery drain up to the current time.  Drain is otherwise
  // integrated lazily at each power-state change; call this before reading
  // DepthOfDischarge() after a long constant-power stretch.
  void SyncBattery();

  Gpio& gpio() { return gpio_; }
  const Cpu& cpu() const { return cpu_; }
  const VoltageRegulator& regulator() const { return regulator_; }
  Battery* battery() { return battery_ ? &*battery_ : nullptr; }
  Simulator& sim() { return sim_; }

  // Overhead accounting (section 5.4).
  int clock_changes() const { return cpu_.clock_changes(); }
  SimTime total_stall() const { return cpu_.total_stall(); }
  int voltage_transitions() const { return regulator_.transitions(); }

  // Binds the observability registry (non-owning; null unbinds).  Hardware
  // state changes then feed hw.* counters and the relock-stall histogram.
  void BindMetrics(MetricsRegistry* metrics);

  // Binds the fault injector (non-owning; null unbinds).  Unbound, every
  // path above is byte-identical to the pre-fault simulator.
  void BindFaults(FaultInjector* faults) { faults_ = faults; }

  // Fault diagnostics: brownout-forced step-downs so far, and whether a
  // brownout event is still armed for the in-flight down-settle.
  int brownouts() const { return brownouts_; }
  bool brownout_pending() const { return brownout_event_ != kInvalidEventId; }

  // Device-snapshot support (src/sim/snapshot.h): component state, battery
  // charge, peripheral levels, and the armed brownout event (absolute fire
  // time + original queue sequence, re-armed through `rearm`).  LoadState
  // first cancels any brownout left over from the device previously occupying
  // this stack, so fleet workers can reload in place.
  void SaveState(SnapshotWriter* w) const;
  void LoadState(SnapshotReader* r, RearmList* rearm);

  // Restore protocol step 1 (see snapshot.h): cancels the armed brownout
  // event so the device harness can empty the queue before RestoreClock.
  void CancelPendingEvents() { CancelBrownout(); }

 private:
  // Re-derives the instantaneous power and appends it to the tape; also
  // integrates the battery over the segment that just ended.
  void RefreshPower();

  // A superseding rail request aborts the armed mid-settle brownout; without
  // this the stale event would fire after the rail is back at 1.5 V and
  // wrongly drop the clock step.
  void CancelBrownout();
  void OnBrownout();

  Simulator& sim_;
  PowerModel power_model_;
  Cpu cpu_;
  VoltageRegulator regulator_;
  PeripheralState peripherals_;
  PowerTape tape_;
  Gpio gpio_;
  std::optional<Battery> battery_;
  SimTime last_battery_update_;

  FaultInjector* faults_ = nullptr;
  bool last_clock_change_failed_ = false;
  int brownouts_ = 0;
  EventId brownout_event_ = kInvalidEventId;
  // Absolute fire time of the armed brownout, recorded so a snapshot can
  // re-arm it (the event id alone does not reveal its deadline).
  SimTime brownout_at_;

  // Observability instruments (all null until BindMetrics).
  MetricsCounter* ctr_clock_changes_ = nullptr;
  MetricsCounter* ctr_voltage_transitions_ = nullptr;
  MetricsCounter* ctr_power_segments_ = nullptr;
  LogHistogram* hist_switch_stall_us_ = nullptr;
};

}  // namespace dcs

#endif  // SRC_HW_ITSY_H_
