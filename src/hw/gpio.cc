#include "src/hw/gpio.h"

#include <cassert>

namespace dcs {

bool Gpio::Level(int pin) const {
  assert(pin >= 0 && pin < kNumGpioPins);
  return levels_[static_cast<std::size_t>(pin)];
}

void Gpio::Write(int pin, bool level, SimTime at) {
  assert(pin >= 0 && pin < kNumGpioPins);
  if (levels_[static_cast<std::size_t>(pin)] == level) {
    return;
  }
  levels_[static_cast<std::size_t>(pin)] = level;
  for (const EdgeObserver& observer : observers_) {
    observer(pin, at, level);
  }
}

void Gpio::Toggle(int pin, SimTime at) { Write(pin, !Level(pin), at); }

void Gpio::Observe(EdgeObserver observer) { observers_.push_back(std::move(observer)); }

}  // namespace dcs
