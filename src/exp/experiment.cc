#include "src/exp/experiment.h"

#include <utility>

#include "src/exp/device_sim.h"

namespace dcs {

// Both entry points are thin wrappers over DeviceSim (src/exp/device_sim.h),
// which is the old RunExperiment body split at its phase boundaries so fleet
// workers can snapshot/restore mid-run.  Run() preserves the original
// statement order exactly; the golden suite holds the results byte-identical.

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  DeviceSim device(config);
  return device.Run();
}

ExperimentResult RunExperiment(const ExperimentConfig& config, AppBundle bundle,
                               DeadlineMonitor& deadlines) {
  DeviceSim device(config, std::move(bundle), &deadlines);
  return device.Run();
}

}  // namespace dcs
