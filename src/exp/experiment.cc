#include "src/exp/experiment.h"

#include <cassert>
#include <functional>
#include <stdexcept>
#include <utility>

#include "src/core/governor_registry.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariants.h"
#include "src/sim/simulator.h"

namespace dcs {

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  DeadlineMonitor deadlines;
  AppBundle bundle;
  if (config.app == "mpeg" && config.mpeg.has_value()) {
    bundle = MakeMpegApp(*config.mpeg, &deadlines, config.seed);
  } else if (config.app == "server" && config.server.has_value()) {
    bundle = MakeServerApp(*config.server, &deadlines, config.seed);
  } else {
    bundle = MakeApp(config.app, &deadlines, config.seed);
  }
  return RunExperiment(config, std::move(bundle), deadlines);
}

ExperimentResult RunExperiment(const ExperimentConfig& config, AppBundle bundle,
                               DeadlineMonitor& deadlines) {
  Simulator sim(config.arena);
  sim.BindCancel(config.cancel);
  Itsy itsy(sim, config.itsy, config.arena);
  KernelConfig kernel_config = config.kernel;
  // The experiment seed drives every stochastic element: per-task workload
  // jitter (via the kernel's forked RNG streams) and the DAQ noise below.
  kernel_config.rng_seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  Kernel kernel(sim, itsy, kernel_config, config.arena);

  // Bind the observability registry before the policy is installed so
  // governors can pick up their instruments in OnInstall.
  MetricsRegistry metrics;
  kernel.BindMetrics(&metrics);
  itsy.BindMetrics(&metrics);

  std::string error;
  GovernorHandle governor = MakeGovernorDispatch(config.governor, &error);
  if (governor.governor == nullptr && !error.empty()) {
    // An assert would vanish under NDEBUG and the run would silently proceed
    // without a policy; throwing lets the sweep engine fail just this job.
    throw std::invalid_argument("invalid governor spec '" + config.governor + "': " + error);
  }
  if (governor.governor != nullptr) {
    if (config.legacy_policy_dispatch) {
      kernel.InstallPolicy(governor.governor.get());
    } else {
      kernel.InstallPolicy(governor.dispatch);
    }
  }

  FaultPlan fault_plan;
  std::string fault_error;
  if (!FaultPlan::Parse(config.faults, &fault_plan, &fault_error)) {
    throw std::invalid_argument("invalid fault spec '" + config.faults + "': " + fault_error);
  }
  // The injector (and the invariant checker riding along) only exists for an
  // active plan: an inactive one must leave the event sequence — and thus the
  // sim.events_* metrics — untouched.
  std::optional<FaultInjector> injector;
  std::optional<InvariantChecker> checker;
  // Re-arms the checker sweep every quantum.  Queued events hold copies that
  // re-arm through the reference to this local — which outlives the
  // simulation loop below — rather than through a self-referential
  // shared_ptr, whose ownership cycle leaked one closure per faulted run.
  std::function<void()> check_tick;
  if (fault_plan.Active()) {
    injector.emplace(fault_plan, config.seed);
    itsy.BindFaults(&*injector);
    kernel.BindFaults(&*injector);
    checker.emplace(sim, itsy, kernel);
    check_tick = [&sim, &check_tick, &checker, quantum = kernel_config.quantum] {
      checker->Check();
      sim.After(quantum, check_tick);
    };
    sim.After(kernel_config.quantum, check_tick);
  }

  for (auto& task : bundle.tasks) {
    kernel.AddTask(std::move(task));
  }

  const SimTime duration = config.duration.value_or(bundle.duration + SimTime::Seconds(2));
  // The measurement window is GPIO-triggered exactly like the paper's rig.
  constexpr int kTriggerPin = 5;
  GpioTrigger trigger(kTriggerPin);
  trigger.Attach(itsy.gpio());
  itsy.gpio().Toggle(kTriggerPin, sim.Now());

  // Pre-size the per-quantum trace series so the tick path never reallocates.
  if (kernel_config.quantum.nanos() > 0) {
    kernel.ReserveTraces(
        static_cast<std::size_t>(duration.nanos() / kernel_config.quantum.nanos()));
  }
  kernel.Start();
  sim.RunUntil(duration);
  if (sim.CancelRequested()) {
    // The watchdog pulled the token mid-run: everything below would report a
    // half-simulated experiment as if it finished.  Fail the job instead.
    throw CancelledError("experiment cancelled at simulated " + sim.Now().ToString() +
                         " of " + duration.ToString());
  }
  itsy.gpio().Toggle(kTriggerPin, sim.Now());
  itsy.SyncBattery();

  ExperimentResult result;
  result.app = bundle.name;
  result.governor = governor.governor != nullptr ? governor.governor->Name() : "none";
  result.duration = duration;

  assert(trigger.windows().size() == 1);
  const auto [begin, end] = trigger.windows().front();
  DaqConfig daq_config = config.daq;
  daq_config.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  Daq daq(daq_config, config.arena);
  if (injector) {
    daq.BindFaults(&*injector);
  }
  const std::span<const double> samples = daq.SampleWindow(itsy.tape(), begin, end);
  result.energy_joules = daq.EnergyJoules(samples);
  result.exact_energy_joules = itsy.tape().EnergyJoules(begin, end);
  result.average_watts = daq.AverageWatts(samples);

  result.quanta = kernel.quanta_elapsed();
  const TraceSeries* util = kernel.sink().Find("utilization");
  if (util != nullptr && !util->empty()) {
    double sum = 0.0;
    for (const TracePoint& p : util->points()) {
      sum += p.value;
    }
    result.avg_utilization = sum / static_cast<double>(util->size());
  }
  result.clock_changes = itsy.clock_changes();
  result.voltage_transitions = itsy.voltage_transitions();
  result.total_stall = itsy.total_stall();
  const auto& residency = kernel.step_residency();
  const double total_s = duration.ToSeconds();
  for (int k = 0; k < kNumClockSteps; ++k) {
    result.step_residency[static_cast<std::size_t>(k)] =
        total_s > 0.0 ? residency[static_cast<std::size_t>(k)].ToSeconds() / total_s : 0.0;
  }

  for (Pid pid = 1; Task* task = kernel.FindTask(pid); ++pid) {
    result.task_cpu_seconds.emplace(std::to_string(pid) + ":" + task->name(),
                                    task->cpu_time().ToSeconds());
  }

  result.deadline_events = deadlines.TotalEvents();
  result.deadline_misses = deadlines.TotalMissed();
  result.worst_lateness = deadlines.WorstLateness();
  result.worst_overrun = deadlines.WorstOverrun();
  for (const std::string& stream : deadlines.Streams()) {
    result.streams.emplace(stream, deadlines.Stats(stream));
    // Streams with response-time tracking (ReportRequest) surface their
    // latency distribution through the metrics pipeline, so --metrics-out
    // carries p50/p95/p99/p999 without per-request artifacts.
    const DeadlineMonitor::StreamStats& stats = result.streams.at(stream);
    if (stats.latency_us.count() > 0) {
      metrics.Histogram("latency_us." + stream).MergeFrom(stats.latency_us);
    }
    // Admission-gate outcomes, per stream.  Only touched when the gate
    // actually rejected something, so admission-free runs (every pre-existing
    // bench) render byte-identical metrics reports.
    if (stats.rejected > 0) {
      metrics.Gauge("admission.reject_pct." + stream).Set(stats.RejectRate() * 100.0);
      if (stats.shed > 0) {
        metrics.Gauge("admission.shed_pct." + stream)
            .Set(static_cast<double>(stats.shed) /
                 static_cast<double>(stats.total + stats.rejected) * 100.0);
      }
    }
  }
  const std::int64_t total_rejected = deadlines.TotalRejected();
  if (total_rejected > 0) {
    metrics.Counter("exp.rejected_requests").Inc(static_cast<std::uint64_t>(total_rejected));
    metrics.Counter("exp.shed_requests").Inc(static_cast<std::uint64_t>(deadlines.TotalShed()));
    // Energy-ledger attribution of the rejected work: it consumed zero
    // joules (conservation over executed work is untouched), so what the
    // gate bought is the *avoided* burn — the rejected full-speed-equivalent
    // microseconds priced at busy top-step/1.5 V processor power.
    const MetricsGauge* rejected_work = metrics.FindGauge("admission.rejected_work_fs_us");
    if (rejected_work != nullptr) {
      const double watts = itsy.power_model().ProcessorWatts(
          ExecState::kBusy, ClockTable::MaxStep(),
          VoltageVolts(CoreVoltage::kHigh));
      metrics.Gauge("admission.rejected_energy_est_joules")
          .Set(rejected_work->value() * 1e-6 * watts);
    }
  }

  // Experiment- and simulator-level readings into the registry (simulated
  // state only — never wall-clock — to keep reports thread-count invariant).
  metrics.Gauge("exp.energy_joules").Set(result.energy_joules);
  metrics.Gauge("exp.exact_energy_joules").Set(result.exact_energy_joules);
  metrics.Gauge("exp.average_watts").Set(result.average_watts);
  metrics.Gauge("exp.avg_utilization").Set(result.avg_utilization);
  metrics.Counter("exp.deadline_events").Inc(static_cast<std::uint64_t>(result.deadline_events));
  metrics.Counter("exp.deadline_misses").Inc(static_cast<std::uint64_t>(result.deadline_misses));
  metrics.Gauge("exp.worst_lateness_us").Set(result.worst_lateness.ToMicrosF());
  metrics.Gauge("exp.total_stall_us").Set(result.total_stall.ToMicrosF());
  metrics.Counter("sim.events_executed").Inc(sim.events_executed());
  metrics.Counter("sim.events_cancelled").Inc(sim.events_cancelled());

  if (config.capture_obs) {
    result.obs.captured = true;
    result.obs.window_begin = begin;
    result.obs.window_end = end;
    result.obs.sched = kernel.sched_log().Snapshot();
    result.obs.power = itsy.tape();
    result.obs.task_names.emplace(kIdlePid, "idle");
    for (Pid pid = 1; Task* task = kernel.FindTask(pid); ++pid) {
      result.obs.task_names.emplace(pid, task->name());
    }
    result.obs.energy = EnergyLedger::Attribute(result.obs.power, result.obs.sched, begin, end);
    for (const auto& [pid, joules] : result.obs.energy.joules_by_pid) {
      metrics.Gauge("energy.pid." + std::to_string(pid) + "." +
                    result.obs.task_names[pid] + "_joules")
          .Set(joules);
    }
  }

  if (checker) {
    // One final structural sweep at end time, plus energy conservation over
    // the measurement window.
    checker->Check();
    checker->CheckEnergyConservation(kernel.sched_log().Snapshot(), begin, end);

    FaultReport& report = result.faults;
    report.enabled = true;
    report.plan = fault_plan.Describe();
    for (int k = 0; k < kNumFaultClasses; ++k) {
      const auto c = static_cast<FaultClass>(k);
      if (injector->injected(c) > 0) {
        report.injected.emplace(FaultClassName(c), injector->injected(c));
      }
    }
    report.injected_total = injector->injected_total();
    report.transition_retries = kernel.transition_retries();
    report.brownouts = itsy.brownouts();
    report.dropped_samples = daq.dropped_samples();
    report.invariant_checks = checker->checks();
    report.invariant_violations = checker->violation_count();
    report.violations = checker->violations();

    metrics.Counter("fault.injected_total").Inc(report.injected_total);
    metrics.Counter("fault.transition_retries").Inc(report.transition_retries);
    metrics.Counter("fault.brownouts").Inc(static_cast<std::uint64_t>(report.brownouts));
    metrics.Counter("fault.daq_dropped_samples").Inc(report.dropped_samples);
    metrics.Counter("fault.invariant_checks").Inc(report.invariant_checks);
    metrics.Counter("fault.invariant_violations").Inc(report.invariant_violations);
  }

  result.sink = std::move(kernel.sink());
  // Unbind before the registry moves into the result: the kernel's and the
  // Itsy's cached instrument handles would otherwise dangle.
  kernel.BindMetrics(nullptr);
  itsy.BindMetrics(nullptr);
  result.metrics = std::move(metrics);
  return result;
}

}  // namespace dcs
