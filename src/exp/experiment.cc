#include "src/exp/experiment.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "src/core/governor_registry.h"
#include "src/sim/simulator.h"

namespace dcs {

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  Simulator sim;
  Itsy itsy(sim, config.itsy);
  KernelConfig kernel_config = config.kernel;
  // The experiment seed drives every stochastic element: per-task workload
  // jitter (via the kernel's forked RNG streams) and the DAQ noise below.
  kernel_config.rng_seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  Kernel kernel(sim, itsy, kernel_config);

  std::string error;
  std::unique_ptr<ClockPolicy> governor = MakeGovernor(config.governor, &error);
  if (governor == nullptr && !error.empty()) {
    // An assert would vanish under NDEBUG and the run would silently proceed
    // without a policy; throwing lets the sweep engine fail just this job.
    throw std::invalid_argument("invalid governor spec '" + config.governor + "': " + error);
  }
  if (governor != nullptr) {
    kernel.InstallPolicy(governor.get());
  }

  DeadlineMonitor deadlines;
  AppBundle bundle = config.app == "mpeg" && config.mpeg.has_value()
                         ? MakeMpegApp(*config.mpeg, &deadlines, config.seed)
                         : MakeApp(config.app, &deadlines, config.seed);
  for (auto& task : bundle.tasks) {
    kernel.AddTask(std::move(task));
  }

  const SimTime duration = config.duration.value_or(bundle.duration + SimTime::Seconds(2));
  // The measurement window is GPIO-triggered exactly like the paper's rig.
  constexpr int kTriggerPin = 5;
  GpioTrigger trigger(kTriggerPin);
  trigger.Attach(itsy.gpio());
  itsy.gpio().Toggle(kTriggerPin, sim.Now());

  kernel.Start();
  sim.RunUntil(duration);
  itsy.gpio().Toggle(kTriggerPin, sim.Now());
  itsy.SyncBattery();

  ExperimentResult result;
  result.app = bundle.name;
  result.governor = governor != nullptr ? governor->Name() : "none";
  result.duration = duration;

  assert(trigger.windows().size() == 1);
  const auto [begin, end] = trigger.windows().front();
  DaqConfig daq_config = config.daq;
  daq_config.seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  Daq daq(daq_config);
  const std::vector<double> samples = daq.SamplePowerWatts(itsy.tape(), begin, end);
  result.energy_joules = daq.EnergyJoules(samples);
  result.exact_energy_joules = itsy.tape().EnergyJoules(begin, end);
  result.average_watts = daq.AverageWatts(samples);

  result.quanta = kernel.quanta_elapsed();
  const TraceSeries* util = kernel.sink().Find("utilization");
  if (util != nullptr && !util->empty()) {
    double sum = 0.0;
    for (const TracePoint& p : util->points()) {
      sum += p.value;
    }
    result.avg_utilization = sum / static_cast<double>(util->size());
  }
  result.clock_changes = itsy.clock_changes();
  result.voltage_transitions = itsy.voltage_transitions();
  result.total_stall = itsy.total_stall();
  const auto& residency = kernel.step_residency();
  const double total_s = duration.ToSeconds();
  for (int k = 0; k < kNumClockSteps; ++k) {
    result.step_residency[static_cast<std::size_t>(k)] =
        total_s > 0.0 ? residency[static_cast<std::size_t>(k)].ToSeconds() / total_s : 0.0;
  }

  for (Pid pid = 1; Task* task = kernel.FindTask(pid); ++pid) {
    result.task_cpu_seconds.emplace(std::to_string(pid) + ":" + task->name(),
                                    task->cpu_time().ToSeconds());
  }

  result.deadline_events = deadlines.TotalEvents();
  result.deadline_misses = deadlines.TotalMissed();
  result.worst_lateness = deadlines.WorstLateness();
  for (const std::string& stream : deadlines.Streams()) {
    result.streams.emplace(stream, deadlines.Stats(stream));
  }

  result.sink = std::move(kernel.sink());
  return result;
}

}  // namespace dcs
