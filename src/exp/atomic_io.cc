#include "src/exp/atomic_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace dcs {
namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void SetError(std::string* error, const std::string& path, const char* op) {
  if (error != nullptr) {
    *error = std::string(op) + " '" + path + "'" +
             (errno != 0 ? std::string(": ") + std::strerror(errno) : std::string());
  }
}

}  // namespace

std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildCrcTable();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& write, std::string* error,
                     const AtomicWriteOptions& options) {
  std::ostringstream rendered;
  write(rendered);
  if (!rendered) {
    errno = 0;
    SetError(error, path, "render content for");
    return false;
  }
  return AtomicWriteFile(path, rendered.str(), error, options);
}

bool AtomicWriteFile(const std::string& path, const std::string& content,
                     std::string* error, const AtomicWriteOptions& options) {
  std::string payload = content;
  if (options.trailing_crc) {
    char trailer[32];
    std::snprintf(trailer, sizeof(trailer), "# crc32=%08X\n", Crc32(payload));
    payload += trailer;
  }

  const std::string tmp = path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetError(error, tmp, "create temp file");
    return false;
  }
  std::size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      SetError(error, tmp, "write");
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: otherwise a crash shortly after could publish a
  // file whose data blocks never reached the disk — exactly the torn state
  // the temp+rename dance exists to prevent.
  if (::fsync(fd) != 0) {
    SetError(error, tmp, "fsync");
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    SetError(error, tmp, "close");
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, path, "rename into");
    ::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool VerifyTrailingCrc(const std::string& content) {
  // Trailer: "# crc32=XXXXXXXX\n", 17 bytes.
  constexpr std::size_t kTrailerLen = 17;
  if (content.size() < kTrailerLen || content.back() != '\n' ||
      content.compare(content.size() - kTrailerLen, 8, "# crc32=") != 0) {
    return false;
  }
  const std::size_t body_len = content.size() - kTrailerLen;
  const std::string hex = content.substr(body_len + 8, 8);
  char* end = nullptr;
  const unsigned long parsed = std::strtoul(hex.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') {
    return false;
  }
  return static_cast<std::uint32_t>(parsed) == Crc32(content.data(), body_len);
}

}  // namespace dcs
