// One end-to-end experiment: an application bundle running on a simulated
// Itsy under a governor, measured by the DAQ — the unit every bench and
// example is built from.

#ifndef SRC_EXP_EXPERIMENT_H_
#define SRC_EXP_EXPERIMENT_H_

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/daq/daq.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/obs/energy_ledger.h"
#include "src/obs/metrics.h"
#include "src/workload/apps.h"
#include "src/workload/deadline_monitor.h"
#include "src/workload/server.h"

namespace dcs {

struct ExperimentConfig {
  // Application name ("mpeg" | "web" | "chess" | "editor" | "server").
  std::string app = "mpeg";
  // Governor spec (see governor_registry.h); "none" runs at the initial
  // clock step with no policy installed.
  std::string governor = "none";
  std::uint64_t seed = 1;
  // Override the app's natural duration (e.g. to truncate for plots).
  std::optional<SimTime> duration;
  // Custom MPEG configuration (only consulted when app == "mpeg").
  std::optional<MpegConfig> mpeg;
  // Custom server scenario (only consulted when app == "server").
  std::optional<ServerConfig> server;
  ItsyConfig itsy;
  KernelConfig kernel;
  DaqConfig daq;
  // Fault-injection spec (see fault_plan.h for the grammar).  "" or "none"
  // runs the exact pre-fault code path, byte for byte; anything else binds a
  // seeded FaultInjector to the hardware, kernel and DAQ and runs the
  // InvariantChecker every quantum.
  std::string faults;
  // When true, the result carries the raw observability capture (scheduler
  // log, power tape, energy attribution) needed to export a Chrome trace.
  // Off by default: the capture copies the full tape and log.
  bool capture_obs = false;
  // Cooperative cancellation token (non-owning; may be null).  When another
  // thread sets it, the simulator's event loop exits between events and
  // RunExperiment throws CancelledError instead of returning a partial
  // result.  Set by the campaign watchdog (--job-timeout); excluded from the
  // config fingerprint, since it changes how a job is run, not what it
  // computes.
  const std::atomic<bool>* cancel = nullptr;
  // Per-run bump arena for transient simulation state (non-owning; may be
  // null).  Sweep workers bind their arena here and Reset() it between
  // jobs, making the steady-state job cycle allocation-free.  Like `cancel`,
  // this changes how a job runs, not what it computes: results are
  // byte-identical with or without an arena, and the field is excluded from
  // the config fingerprint.
  Arena* arena = nullptr;
  // Use the legacy virtual-call policy dispatch instead of the static
  // dispatch thunk built by the governor registry.  The two paths are
  // byte-identical (tests/hotpath/dispatch_equivalence_test.cc); the flag
  // exists so the differential suite can drive both through RunExperiment.
  bool legacy_policy_dispatch = false;
};

// Raw per-run capture for trace export and energy attribution, filled only
// when ExperimentConfig::capture_obs is set.  Everything here derives from
// the deterministic simulation, so captures (and anything rendered from
// them) are identical across sweep thread counts.
struct ObsCapture {
  bool captured = false;
  // The GPIO-triggered measurement window.
  SimTime window_begin;
  SimTime window_end;
  // Chronological scheduler activity (SchedLog::Snapshot()).
  std::vector<SchedLogEntry> sched;
  // Ground-truth piecewise-constant system power.
  PowerTape power;
  // Task names keyed by pid (kIdlePid -> "idle").
  std::map<Pid, std::string> task_names;
  // Joules per task / per clock step over the window.
  EnergyAttribution energy;
};

// Fault-injection outcome for one run; `enabled` is false (and everything
// else zero) unless the config carried an active fault plan.
struct FaultReport {
  bool enabled = false;
  // Canonical plan spec (FaultPlan::Describe()).
  std::string plan;
  // Injections that actually triggered, keyed by class name (zero entries
  // omitted), and their sum.
  std::map<std::string, std::uint64_t> injected;
  std::uint64_t injected_total = 0;
  // Consumer-side recovery counters.
  std::uint64_t transition_retries = 0;
  int brownouts = 0;
  std::uint64_t dropped_samples = 0;
  // InvariantChecker outcome: checks performed, violations found (with the
  // first stored messages).
  std::uint64_t invariant_checks = 0;
  std::uint64_t invariant_violations = 0;
  std::vector<std::string> violations;
};

struct ExperimentResult {
  std::string app;
  std::string governor;
  SimTime duration;

  // Energy over the run, through the DAQ pipeline (what the paper reports)
  // and exactly from the power tape (ground truth the DAQ approximates).
  double energy_joules = 0.0;
  double exact_energy_joules = 0.0;
  double average_watts = 0.0;

  // Scheduling statistics.
  double avg_utilization = 0.0;
  std::uint64_t quanta = 0;
  int clock_changes = 0;
  int voltage_transitions = 0;
  SimTime total_stall;
  // Fraction of wall time spent at each clock step.
  std::array<double, kNumClockSteps> step_residency{};

  // CPU seconds consumed by each task, keyed "pid:name".
  std::map<std::string, double> task_cpu_seconds;

  // Deadline outcome.  worst_lateness is measured past `deadline +
  // tolerance` (zero whenever deadline_misses is zero); worst_overrun is
  // measured past the bare deadline, so it stays a margin-erosion signal for
  // runs whose events land inside the tolerance window.
  std::int64_t deadline_events = 0;
  std::int64_t deadline_misses = 0;
  SimTime worst_lateness;
  SimTime worst_overrun;
  std::map<std::string, DeadlineMonitor::StreamStats> streams;

  // Recorded series ("utilization", "freq_mhz", "core_volts") for plotting.
  TraceSink sink;

  // Kernel/hardware/governor instruments for this run (always collected;
  // wall-clock free, so deterministic across thread counts).
  MetricsRegistry metrics;

  // Raw capture for Chrome trace export (see ExperimentConfig::capture_obs).
  ObsCapture obs;

  // Fault-injection outcome (FaultReport::enabled false on unfaulted runs).
  FaultReport faults;

  bool MetAllDeadlines() const { return deadline_misses == 0; }
};

// Runs one experiment.  Throws std::invalid_argument on an invalid governor
// spec, an invalid fault spec, or an unknown app name; under the sweep
// engine that fails the offending job while the rest of the grid completes.
ExperimentResult RunExperiment(const ExperimentConfig& config);

// Same, but with a caller-built application bundle (`config.app` / `.mpeg`
// are ignored).  The bundle may be empty: the kernel then idles for the
// configured duration.  `deadlines` is the monitor the bundle's workloads
// report to and must outlive the call.
ExperimentResult RunExperiment(const ExperimentConfig& config, AppBundle bundle,
                               DeadlineMonitor& deadlines);

}  // namespace dcs

#endif  // SRC_EXP_EXPERIMENT_H_
