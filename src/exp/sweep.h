// Deterministic parallel experiment engine.
//
// Every bench and the repeated-run harness fan independent `RunExperiment`
// calls over a grid of configurations; each call owns its Simulator, Itsy,
// Kernel and DAQ, so the jobs share nothing and can run on any thread.  The
// SweepRunner exploits that: a fixed-size pool of workers pulls jobs off a
// shared index and writes each result into the slot matching the job's
// position in the input vector.  Because a job's output depends only on its
// config (the whole stack is seeded-deterministic), the assembled result
// vector is bit-identical for --threads=1 and --threads=N; only wall-clock
// time changes.
//
// A job that throws fails alone: its slot records the error text and the
// remaining jobs still run.

#ifndef SRC_EXP_SWEEP_H_
#define SRC_EXP_SWEEP_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/exp/experiment.h"

namespace dcs {

struct SweepOptions {
  // Worker threads; 0 means std::thread::hardware_concurrency() (at least 1).
  int threads = 0;
  // When true, a progress line (jobs done, wall seconds, simulated-seconds
  // per wall-second throughput) is rewritten on stderr as jobs finish.
  // Progress goes to stderr precisely so that table output on stdout stays
  // byte-identical across thread counts.
  bool progress = false;
  // --trace-out=FILE: write a merged Chrome trace_event JSON of every run
  // (one trace process per experiment; open in Perfetto / chrome://tracing).
  std::string trace_out;
  // --metrics-out=FILE: write the aggregated metrics registry as JSON.
  std::string metrics_out;
  // --faults=SPEC: fault-injection spec forwarded to every experiment in the
  // grid (see fault_plan.h for the grammar; "" / "none" injects nothing).
  std::string faults;

  // Whether the experiments must capture raw observability data
  // (ExperimentConfig::capture_obs) for the requested outputs.
  bool WantsObsCapture() const { return !trace_out.empty(); }
  bool WantsObsExport() const { return !trace_out.empty() || !metrics_out.empty(); }
};

// Outcome of one job.  Exactly one of `result` / `error` is meaningful.
struct SweepJobResult {
  std::optional<ExperimentResult> result;
  std::string error;

  bool ok() const { return result.has_value(); }
};

// Aggregate engine statistics for the last Run() call.
struct SweepMetrics {
  int jobs = 0;
  int failed = 0;
  int threads = 0;
  double wall_seconds = 0.0;
  // Sum of simulated durations across jobs, and the resulting throughput in
  // simulated seconds per wall second (the engine's figure of merit).
  double simulated_seconds = 0.0;
  double sim_seconds_per_second = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  // Runs every config as one job; result i corresponds to configs[i]
  // regardless of which worker executed it or in what order jobs finished.
  std::vector<SweepJobResult> Run(const std::vector<ExperimentConfig>& configs);

  // Metrics for the most recent Run().
  const SweepMetrics& metrics() const { return metrics_; }

  // Resolved worker count (options.threads, or the hardware default).
  int threads() const;

 private:
  SweepOptions options_;
  SweepMetrics metrics_;
};

// Convenience wrapper: runs the grid and unwraps the results, rethrowing the
// first job error as std::runtime_error.  For benches whose configs are known
// good, this keeps call sites as simple as the old serial loops.
std::vector<ExperimentResult> RunSweep(const std::vector<ExperimentConfig>& configs,
                                       const SweepOptions& options = {});

// Parses "--threads=N" / "--threads N", "--progress", "--trace-out=FILE",
// "--metrics-out=FILE" and "--faults=SPEC" from a bench's argv, returning the
// corresponding options.  Unrecognised arguments are ignored so benches can
// layer their own flags.
SweepOptions SweepOptionsFromArgs(int argc, char** argv);

}  // namespace dcs

#endif  // SRC_EXP_SWEEP_H_
