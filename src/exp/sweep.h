// Deterministic parallel experiment engine.
//
// Every bench and the repeated-run harness fan independent `RunExperiment`
// calls over a grid of configurations; each call owns its Simulator, Itsy,
// Kernel and DAQ, so the jobs share nothing and can run on any thread.  The
// SweepRunner exploits that: a fixed-size pool of workers pulls jobs off a
// shared index and writes each result into the slot matching the job's
// position in the input vector.  Because a job's output depends only on its
// config (the whole stack is seeded-deterministic), the assembled result
// vector is bit-identical for --threads=1 and --threads=N; only wall-clock
// time changes.
//
// A job that throws fails alone: its slot records the error text and the
// remaining jobs still run.

#ifndef SRC_EXP_SWEEP_H_
#define SRC_EXP_SWEEP_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/exp/experiment.h"

namespace dcs {

// Campaign-resilience knobs (see campaign.h for the runner).  Parsed from
// the same argv as the sweep flags, so every sweep bench accepts them.
struct CampaignOptions {
  // --resume=FILE: append-only CRC32-framed journal (journal.h).  Completed
  // slots recorded there are replayed byte-identically instead of re-run; a
  // journal written for a different config grid never matches (fingerprint
  // check) and forces a fresh run.
  std::string resume;
  // --job-timeout=SECS: wall-clock watchdog per job attempt.  On expiry the
  // job's simulator loop is cooperatively cancelled and the attempt counts
  // as a failure (retried, then quarantined).  0 disables the watchdog.
  double job_timeout = 0.0;
  // --max-retries=N: failed/timed-out jobs are retried up to N times with
  // bounded exponential backoff before being quarantined.  Invalid configs
  // (bad governor/fault spec) are permanent failures and skip retries.
  int max_retries = 2;
  // First retry delay; doubles per retry (the Kernel transition-retry shape).
  double retry_backoff_ms = 25.0;
  // --quarantine-out=FILE: machine-readable JSON report of quarantined
  // configs.  Defaults to "<resume>.quarantine.json" when --resume is set.
  std::string quarantine_out;

  bool Enabled() const {
    return !resume.empty() || job_timeout > 0.0 || !quarantine_out.empty();
  }
  std::string QuarantinePath() const {
    if (!quarantine_out.empty()) {
      return quarantine_out;
    }
    return resume.empty() ? std::string() : resume + ".quarantine.json";
  }
};

struct SweepOptions {
  // Worker threads; 0 means std::thread::hardware_concurrency() (at least 1).
  int threads = 0;
  // When true, a progress line (jobs done, wall seconds, simulated-seconds
  // per wall-second throughput) is rewritten on stderr as jobs finish.
  // Progress goes to stderr precisely so that table output on stdout stays
  // byte-identical across thread counts.
  bool progress = false;
  // --trace-out=FILE: write a merged Chrome trace_event JSON of every run
  // (one trace process per experiment; open in Perfetto / chrome://tracing).
  std::string trace_out;
  // --metrics-out=FILE: write the aggregated metrics registry as JSON.
  std::string metrics_out;
  // --faults=SPEC: fault-injection spec forwarded to every experiment in the
  // grid (see fault_plan.h for the grammar; "" / "none" injects nothing).
  std::string faults;
  // Campaign-resilience flags (--resume / --job-timeout / --max-retries /
  // --quarantine-out).  When any is set, RunSweep routes the grid through
  // the CampaignRunner instead of a bare SweepRunner.
  CampaignOptions campaign;

  // Whether the experiments must capture raw observability data
  // (ExperimentConfig::capture_obs) for the requested outputs.
  bool WantsObsCapture() const { return !trace_out.empty(); }
  bool WantsObsExport() const { return !trace_out.empty() || !metrics_out.empty(); }
};

// Outcome of one job.  Exactly one of `result` / `error` is meaningful.
struct SweepJobResult {
  std::optional<ExperimentResult> result;
  std::string error;

  bool ok() const { return result.has_value(); }
};

// Per-job interception points for the campaign layer (campaign.h).  Both
// callbacks run on worker threads; `index` is the job's position in the
// config vector handed to Run().
struct SweepJobHooks {
  // Replaces the default RunExperiment call for each job.  Exceptions it
  // lets escape are captured into the slot's error like the default path.
  std::function<SweepJobResult(const ExperimentConfig&, int index)> execute;
  // Observes each finished slot in completion order (not slot order), after
  // the slot is written.  Must be internally synchronized.
  std::function<void(int index, const SweepJobResult&)> on_result;
};

// Aggregate engine statistics for the last Run() call.
struct SweepMetrics {
  int jobs = 0;
  int failed = 0;
  int threads = 0;
  double wall_seconds = 0.0;
  // Sum of simulated durations across jobs, and the resulting throughput in
  // simulated seconds per wall second (the engine's figure of merit).
  double simulated_seconds = 0.0;
  double sim_seconds_per_second = 0.0;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  // Runs every config as one job; result i corresponds to configs[i]
  // regardless of which worker executed it or in what order jobs finished.
  std::vector<SweepJobResult> Run(const std::vector<ExperimentConfig>& configs);
  std::vector<SweepJobResult> Run(const std::vector<ExperimentConfig>& configs,
                                  const SweepJobHooks& hooks);

  // Metrics for the most recent Run().
  const SweepMetrics& metrics() const { return metrics_; }

  // Resolved worker count (options.threads, or the hardware default).
  int threads() const;

 private:
  SweepOptions options_;
  SweepMetrics metrics_;
};

// Convenience wrapper: runs the grid and unwraps the results, rethrowing the
// first job error as std::runtime_error.  For benches whose configs are known
// good, this keeps call sites as simple as the old serial loops.  When
// options.campaign.Enabled(), the grid runs under the CampaignRunner: the
// journal replays finished slots, the watchdog bounds each job, and failures
// land in the quarantine report (the throw then names it).
std::vector<ExperimentResult> RunSweep(const std::vector<ExperimentConfig>& configs,
                                       const SweepOptions& options = {});

// Registers the shared sweep/campaign flags ("--threads", "--progress",
// "--trace-out", "--metrics-out", "--faults", "--resume", "--job-timeout",
// "--max-retries", "--quarantine-out") on `flags`, writing into *options.
// Benches with their own flags call this, add theirs, and parse the whole
// argv with one strict FlagSet so duplicates and typos fail loudly.
class FlagSet;
void RegisterSweepFlags(FlagSet& flags, SweepOptions* options);

// Parses the shared sweep/campaign flags from a bench's argv, returning the
// corresponding options.  Unrecognised arguments are still ignored (so
// benches that have not migrated to a full FlagSet can layer their own
// parsing on top), but malformed or duplicated sweep flags now print the
// error and exit(2) instead of resolving by atoi-garbage or last-write-wins.
SweepOptions SweepOptionsFromArgs(int argc, char** argv);

}  // namespace dcs

#endif  // SRC_EXP_SWEEP_H_
