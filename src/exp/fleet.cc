#include "src/exp/fleet.h"

#include <charconv>
#include <cmath>
#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/exp/atomic_io.h"
#include "src/exp/device_sim.h"
#include "src/sim/rng.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"

namespace dcs {
namespace {

// 128-bit accumulator for the squared-energy sum (1e6 devices at ~1e7 uJ
// each squared overflows 64 bits).  GCC/Clang builtin; split across two u64
// counters for the journal.
__extension__ typedef unsigned __int128 U128;

// splitmix64 finalizer: seed derivation for cells and jitter streams.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Jitter stream tags (arbitrary constants, fixed forever for determinism).
constexpr std::uint64_t kBatteryJitterTag = 0xba77e21fULL;

// Shortest round-trip decimal rendering, matching the other JSON emitters.
std::string FormatDouble(double v) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  return std::string(buf, res.ptr);
}

// Exact per-shard aggregate.  Every field is integer-valued (histograms
// observe pre-rounded integers), so folding shards is associative and
// commutative — the basis of the byte-identity contract.
struct ShardAggregate {
  std::uint64_t devices = 0;
  std::uint64_t energy_uj = 0;
  U128 energy_uj_sq = 0;
  std::uint64_t deadline_events = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t deadline_rejected = 0;
  std::uint64_t deadline_shed = 0;
  std::uint64_t battery_deaths = 0;
  std::uint64_t quanta = 0;
  std::uint64_t clock_changes = 0;
  LogHistogram device_energy_uj;
  LogHistogram battery_death_s;

  void ExportTo(MetricsRegistry* m) const {
    m->Counter("fleet.devices").Inc(devices);
    m->Counter("fleet.energy_uj").Inc(energy_uj);
    m->Counter("fleet.energy_uj_sq_hi").Inc(static_cast<std::uint64_t>(energy_uj_sq >> 64));
    m->Counter("fleet.energy_uj_sq_lo").Inc(static_cast<std::uint64_t>(energy_uj_sq));
    m->Counter("fleet.deadline_events").Inc(deadline_events);
    m->Counter("fleet.deadline_misses").Inc(deadline_misses);
    m->Counter("fleet.deadline_rejected").Inc(deadline_rejected);
    m->Counter("fleet.deadline_shed").Inc(deadline_shed);
    m->Counter("fleet.battery_deaths").Inc(battery_deaths);
    m->Counter("fleet.quanta").Inc(quanta);
    m->Counter("fleet.clock_changes").Inc(clock_changes);
    m->Histogram("fleet.device_energy_uj").MergeFrom(device_energy_uj);
    m->Histogram("fleet.battery_death_s").MergeFrom(battery_death_s);
  }
};

std::uint64_t CounterOf(const MetricsRegistry& m, const std::string& name) {
  const MetricsCounter* c = m.FindCounter(name);
  return c == nullptr ? 0 : c->value();
}

// Pairwise tree reduction of the shard registries.  Integer aggregates make
// any merge order exact; the tree shape keeps the fold O(log n) deep and
// mirrors how a distributed reducer would combine shard files.
void MergeRange(const std::vector<const MetricsRegistry*>& shards, std::size_t lo,
                std::size_t hi, MetricsRegistry* out) {
  if (hi - lo == 1) {
    out->MergeFrom(*shards[lo]);
    return;
  }
  const std::size_t mid = lo + (hi - lo) / 2;
  MetricsRegistry left;
  MetricsRegistry right;
  MergeRange(shards, lo, mid, &left);
  MergeRange(shards, mid, hi, &right);
  out->MergeFrom(left);
  out->MergeFrom(right);
}

}  // namespace

FleetRunner::FleetRunner(FleetSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {}

void FleetRunner::Plan() {
  cells_.clear();
  shards_.clear();
  if (spec_.devices == 0) {
    throw std::invalid_argument("fleet: devices must be > 0");
  }
  if (spec_.shard_devices == 0) {
    throw std::invalid_argument("fleet: shard_devices must be > 0");
  }
  if (!(spec_.warmup < spec_.duration)) {
    throw std::invalid_argument("fleet: warmup must be < duration");
  }
  if (spec_.jitter.arrival_variants < 1) {
    throw std::invalid_argument("fleet: arrival_variants must be >= 1");
  }

  std::vector<FleetAppMix> apps = spec_.apps;
  if (apps.empty()) {
    apps.push_back({spec_.base.app, 1.0});
  }
  double total_weight = 0.0;
  for (const FleetAppMix& mix : apps) {
    if (!(mix.weight > 0.0)) {
      throw std::invalid_argument("fleet: app weights must be > 0");
    }
    total_weight += mix.weight;
  }

  // Apportion devices to apps by cumulative-boundary rounding: app k owns
  // [floor(N * W_{k-1} / W), floor(N * W_k / W)).  Deterministic, sums to N,
  // and independent of the shard size.
  const double n = static_cast<double>(spec_.devices);
  double cum_weight = 0.0;
  std::uint64_t block_begin = 0;
  for (const FleetAppMix& mix : apps) {
    cum_weight += mix.weight;
    const std::uint64_t block_end =
        static_cast<std::uint64_t>(std::floor(n * (cum_weight / total_weight)));
    const std::uint64_t block = block_end - block_begin;
    // Arrival-rate variants quantize only server cells (the arrival schedule
    // is part of the warmup image, so rate jitter cannot be per-device).
    const int variants =
        mix.app == "server" && spec_.jitter.arrival_rate > 0.0 ? spec_.jitter.arrival_variants : 1;
    std::uint64_t variant_begin = block_begin;
    for (int v = 0; v < variants; ++v) {
      const std::uint64_t variant_end =
          block_begin + (block * static_cast<std::uint64_t>(v + 1)) /
                            static_cast<std::uint64_t>(variants);
      FleetCell cell;
      cell.app = mix.app;
      // Bin-center factors spread over (1 - j, 1 + j); exactly 1 for V = 1.
      cell.rate_scale =
          variants == 1 ? 1.0
                        : 1.0 + spec_.jitter.arrival_rate *
                                    ((2.0 * v + 1.0) / static_cast<double>(variants) - 1.0);
      cell.first_device = variant_begin;
      cell.count = variant_end - variant_begin;
      cell.cell_seed = Mix(spec_.seed ^ Mix(static_cast<std::uint64_t>(cells_.size()) + 1));
      cells_.push_back(cell);
      variant_begin = variant_end;
    }
    block_begin = block_end;
  }

  for (std::size_t c = 0; c < cells_.size(); ++c) {
    const FleetCell& cell = cells_[c];
    for (std::uint64_t off = 0; off < cell.count; off += spec_.shard_devices) {
      FleetShard shard;
      shard.cell = static_cast<int>(c);
      shard.first_device = cell.first_device + off;
      shard.count = std::min(spec_.shard_devices, cell.count - off);
      shards_.push_back(shard);
    }
  }

  // Shard-config seeds: a fleet-identity mix (seed, horizon, warmup, jitter)
  // plus the shard's first device id.  Unique per shard — device blocks are
  // disjoint — and different fleets get different grid fingerprints, so a
  // journal written for one fleet can never replay into another.
  std::uint64_t identity = Mix(spec_.seed);
  identity = Mix(identity ^ static_cast<std::uint64_t>(spec_.warmup.nanos()));
  identity = Mix(identity ^ static_cast<std::uint64_t>(spec_.duration.nanos()));
  identity = Mix(identity ^ static_cast<std::uint64_t>(spec_.jitter.battery_capacity * 1e9));
  identity = Mix(identity ^ static_cast<std::uint64_t>(spec_.jitter.arrival_rate * 1e9));
  seed_base_ = identity;
  shard_by_seed_.clear();
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shard_by_seed_.emplace(seed_base_ + shards_[s].first_device, s);
  }
}

ExperimentConfig FleetRunner::ShardConfig(const FleetShard& shard) const {
  const FleetCell& cell = cells_[static_cast<std::size_t>(shard.cell)];
  ExperimentConfig config = spec_.base;
  config.app = cell.app;
  config.duration = spec_.duration;
  config.seed = seed_base_ + shard.first_device;
  if (cell.app == "server") {
    if (!config.server.has_value()) {
      config.server.emplace();
    }
    config.server->rate_rps *= cell.rate_scale;
    // Arrivals span the whole horizon; the spec duration is the authority.
    config.server->duration = spec_.duration;
  }
  return config;
}

ExperimentResult FleetRunner::RunShard(const ExperimentConfig& config) const {
  const auto it = shard_by_seed_.find(config.seed);
  if (it == shard_by_seed_.end()) {
    throw std::invalid_argument("fleet: config does not key a planned shard");
  }
  const FleetShard& shard = shards_[it->second];
  const FleetCell& cell = cells_[static_cast<std::size_t>(shard.cell)];

  // The cell's device stack: seeded by the cell (never the shard), so every
  // shard of a cell warms up into the identical image and device
  // trajectories cannot depend on the shard layout.
  ExperimentConfig dev_config = ShardConfig(shard);
  dev_config.seed = cell.cell_seed;
  dev_config.cancel = config.cancel;
  dev_config.arena = config.arena;

  DeviceSim dev(dev_config);
  dev.Start();
  dev.RunUntil(spec_.warmup);
  if (dev.sim().CancelRequested()) {
    throw CancelledError("fleet shard cancelled during warmup");
  }
  SnapshotWriter image;
  dev.SaveState(&image);

  const Rng battery_jitter_base(Mix(spec_.seed ^ kBatteryJitterTag));
  const bool jitter_battery =
      spec_.jitter.battery_capacity > 0.0 && dev_config.itsy.battery.has_value();

  ShardAggregate agg;
  std::string per_device_rows;
  const bool want_rows = !spec_.per_device_out.empty();

  for (std::uint64_t d = 0; d < shard.count; ++d) {
    const std::uint64_t device_id = shard.first_device + d;
    SnapshotReader reader(image);
    dev.LoadState(&reader);
    if (!reader.ok()) {
      throw std::runtime_error("fleet: device image failed to restore");
    }
    // Divergence: a pure function of (image, global device id).
    dev.kernel().ForkRngs(device_id);
    if (jitter_battery) {
      Rng jitter_rng = battery_jitter_base.Fork(device_id);
      const double j = spec_.jitter.battery_capacity;
      BatteryParams params = *dev_config.itsy.battery;
      params.peukert_capacity *= 1.0 + jitter_rng.Uniform(-j, j);
      dev.itsy().battery()->SetParams(params);
    }

    dev.RunUntil(dev.duration());
    if (dev.sim().CancelRequested()) {
      throw CancelledError("fleet shard cancelled");
    }
    dev.itsy().SyncBattery();

    // Round real-valued samples to integers exactly once, at the device
    // level; everything downstream is exact integer arithmetic.
    const double energy_j =
        dev.itsy().tape().EnergyJoules(SimTime::Zero(), dev.sim().Now());
    const std::uint64_t energy_uj =
        static_cast<std::uint64_t>(std::llround(energy_j * 1e6));

    agg.devices += 1;
    agg.energy_uj += energy_uj;
    agg.energy_uj_sq += static_cast<U128>(energy_uj) * static_cast<U128>(energy_uj);
    agg.device_energy_uj.Observe(static_cast<double>(energy_uj));
    agg.deadline_events += static_cast<std::uint64_t>(dev.deadlines().TotalEvents());
    agg.deadline_misses += static_cast<std::uint64_t>(dev.deadlines().TotalMissed());
    agg.deadline_rejected += static_cast<std::uint64_t>(dev.deadlines().TotalRejected());
    agg.deadline_shed += static_cast<std::uint64_t>(dev.deadlines().TotalShed());
    agg.quanta += dev.kernel().quanta_elapsed();
    agg.clock_changes += static_cast<std::uint64_t>(dev.itsy().clock_changes());

    std::uint64_t died_at_s = 0;
    bool died = false;
    if (const Battery* battery = dev.itsy().battery(); battery != nullptr && battery->Died()) {
      died = true;
      died_at_s = static_cast<std::uint64_t>(std::llround(battery->DiedAt().ToSeconds()));
      agg.battery_deaths += 1;
      agg.battery_death_s.Observe(static_cast<double>(died_at_s));
    }

    if (want_rows) {
      per_device_rows += std::to_string(device_id);
      per_device_rows += ',';
      per_device_rows += cell.app;
      per_device_rows += ',';
      per_device_rows += std::to_string(energy_uj);
      per_device_rows += ',';
      per_device_rows += std::to_string(dev.deadlines().TotalEvents());
      per_device_rows += ',';
      per_device_rows += std::to_string(dev.deadlines().TotalMissed());
      per_device_rows += ',';
      per_device_rows += died ? std::to_string(died_at_s) : std::string("-");
      per_device_rows += '\n';
    }
  }

  if (want_rows) {
    const std::string path = spec_.per_device_out + ".shard" +
                             std::to_string(shard.first_device) + ".csv";
    std::string error;
    if (!AtomicWriteFile(path,
                         "device_id,app,energy_uj,deadline_events,deadline_misses,died_at_s\n" +
                             per_device_rows,
                         &error)) {
      throw std::runtime_error("fleet: per-device artifact write failed: " + error);
    }
  }

  // One result per shard — the journal unit.  The aggregate rides the
  // metrics registry (journal.h persists it in full); the scalar fields are
  // a human-readable summary of the same numbers.
  ExperimentResult result;
  result.app = cell.app;
  result.governor = config.governor;
  result.duration = spec_.duration;
  result.energy_joules = static_cast<double>(agg.energy_uj) * 1e-6;
  result.exact_energy_joules = result.energy_joules;
  agg.ExportTo(&result.metrics);
  return result;
}

FleetReport FleetRunner::Run() {
  Plan();

  std::vector<ExperimentConfig> grid;
  grid.reserve(shards_.size());
  for (const FleetShard& shard : shards_) {
    grid.push_back(ShardConfig(shard));
  }

  CampaignRunner runner(options_);
  runner.SetJobFunction([this](const ExperimentConfig& config) { return RunShard(config); });
  const std::vector<SweepJobResult> results = runner.Run(grid);
  campaign_report_ = runner.report();

  FleetReport report;
  report.shards = shards_.size();
  report.replayed_shards = static_cast<std::uint64_t>(campaign_report_.replayed);
  report.executed_shards = static_cast<std::uint64_t>(campaign_report_.executed);

  std::vector<const MetricsRegistry*> shard_metrics;
  shard_metrics.reserve(results.size());
  for (std::size_t s = 0; s < results.size(); ++s) {
    if (results[s].ok()) {
      shard_metrics.push_back(&results[s].result->metrics);
    } else {
      report.failed_shards += 1;
      report.missing_devices += shards_[s].count;
    }
  }
  if (!shard_metrics.empty()) {
    MergeRange(shard_metrics, 0, shard_metrics.size(), &report.merged);
  }

  report.devices = CounterOf(report.merged, "fleet.devices");
  report.deadline_events = CounterOf(report.merged, "fleet.deadline_events");
  report.deadline_misses = CounterOf(report.merged, "fleet.deadline_misses");
  report.deadline_rejected = CounterOf(report.merged, "fleet.deadline_rejected");
  report.deadline_shed = CounterOf(report.merged, "fleet.deadline_shed");
  report.battery_deaths = CounterOf(report.merged, "fleet.battery_deaths");
  report.quanta = CounterOf(report.merged, "fleet.quanta");
  report.clock_changes = CounterOf(report.merged, "fleet.clock_changes");

  if (report.devices > 0) {
    const double n = static_cast<double>(report.devices);
    const double sum_uj = static_cast<double>(CounterOf(report.merged, "fleet.energy_uj"));
    const U128 sq = (static_cast<U128>(CounterOf(report.merged, "fleet.energy_uj_sq_hi")) << 64) |
                    static_cast<U128>(CounterOf(report.merged, "fleet.energy_uj_sq_lo"));
    const double mean_uj = sum_uj / n;
    const double mean_sq_uj = static_cast<double>(sq) / n;
    const double var_uj = mean_sq_uj - mean_uj * mean_uj;
    report.energy_mean_j = mean_uj * 1e-6;
    report.energy_stddev_j = var_uj > 0.0 ? std::sqrt(var_uj) * 1e-6 : 0.0;
    report.death_fraction = static_cast<double>(report.battery_deaths) / n;
  }
  if (report.deadline_events > 0) {
    report.miss_rate = static_cast<double>(report.deadline_misses) /
                       static_cast<double>(report.deadline_events);
  }
  if (const LogHistogram* deaths = report.merged.FindHistogram("fleet.battery_death_s");
      deaths != nullptr && deaths->count() > 0) {
    report.death_time_p50_s = deaths->ApproxQuantile(0.5);
    report.death_time_p95_s = deaths->ApproxQuantile(0.95);
  }
  return report;
}

std::string RenderFleetJson(const FleetReport& report) {
  // Deliberately excludes the shard layout (shard count, replay/execute
  // split): the rendered report is the fleet *result*, which the byte-
  // identity contract holds fixed across shard sizes and thread counts.
  std::ostringstream os;
  os << "{\"fleet\":{";
  os << "\"devices\":" << report.devices;
  os << ",\"missing_devices\":" << report.missing_devices;
  os << ",\"energy_mean_j\":" << FormatDouble(report.energy_mean_j);
  os << ",\"energy_stddev_j\":" << FormatDouble(report.energy_stddev_j);
  os << ",\"deadline_events\":" << report.deadline_events;
  os << ",\"deadline_misses\":" << report.deadline_misses;
  os << ",\"deadline_rejected\":" << report.deadline_rejected;
  os << ",\"deadline_shed\":" << report.deadline_shed;
  os << ",\"miss_rate\":" << FormatDouble(report.miss_rate);
  os << ",\"battery_deaths\":" << report.battery_deaths;
  os << ",\"death_fraction\":" << FormatDouble(report.death_fraction);
  os << ",\"death_time_p50_s\":" << FormatDouble(report.death_time_p50_s);
  os << ",\"death_time_p95_s\":" << FormatDouble(report.death_time_p95_s);
  os << ",\"quanta\":" << report.quanta;
  os << ",\"clock_changes\":" << report.clock_changes;
  os << "},\"metrics\":";
  report.merged.WriteJson(os);
  os << "}";
  return os.str();
}

}  // namespace dcs
