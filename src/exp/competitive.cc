#include "src/exp/competitive.h"

#include <algorithm>
#include <cstdio>

namespace dcs {

std::vector<double> WorkTraceFromResult(const ExperimentResult& result) {
  const TraceSeries* series = result.sink.Find("work_fs_us");
  if (series == nullptr) {
    return {};
  }
  std::vector<double> work;
  work.reserve(series->size());
  for (const TracePoint& point : series->points()) {
    work.push_back(std::max(0.0, point.value) * 1e-6);
  }
  return work;
}

CompetitiveScore ScoreCompetitive(const ExperimentResult& result, int deadline_quanta,
                                  const EnergyModel& model, double quantum_seconds) {
  CompetitiveScore score;
  score.run_joules = result.exact_energy_joules;
  const std::vector<double> work = WorkTraceFromResult(result);
  if (work.empty()) {
    return score;
  }
  const OfflineOptimalResult opt =
      RunOfflineOptimal(work, quantum_seconds, deadline_quanta, model);
  score.optimal_joules = opt.energy_joules;
  score.opt_peak_speed = opt.peak_speed;
  for (const double w : work) {
    score.total_work_seconds += std::clamp(w, 0.0, quantum_seconds);
  }
  if (score.optimal_joules > 0.0) {
    score.ratio = score.run_joules / score.optimal_joules;
  }
  return score;
}

void StampCompetitiveMetrics(ExperimentResult& result, int deadline_quanta,
                             const CompetitiveScore& score) {
  char name[48];
  std::snprintf(name, sizeof(name), "ratio.d%d", deadline_quanta);
  result.metrics.Gauge(name).Set(score.ratio);
  std::snprintf(name, sizeof(name), "ratio.d%d.opt_joules", deadline_quanta);
  result.metrics.Gauge(name).Set(score.optimal_joules);
  std::snprintf(name, sizeof(name), "ratio.d%d.opt_peak_speed", deadline_quanta);
  result.metrics.Gauge(name).Set(score.opt_peak_speed);
}

}  // namespace dcs
