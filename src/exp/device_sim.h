// One simulated device as a long-lived, snapshottable object.
//
// RunExperiment() historically built the whole stack (simulator, Itsy,
// kernel, governor, fault machinery, measurement rig) as locals, ran to
// completion and tore everything down — fine for one run, hopeless for a
// fleet of a million devices that share a warmup prefix.  DeviceSim is that
// same body split at its natural phase boundaries:
//
//     DeviceSim dev(config);     // build the stack (allocates)
//     dev.Start();               // arm the kernel, open the GPIO window
//     dev.RunUntil(t);           // advance simulated time (quiescent after)
//     dev.SaveState(&w);         // snapshot the complete device image
//     dev.LoadState(&r);         // rewind/fork from an image, in place
//     dev.Finish();              // measure + build the ExperimentResult
//
// Run() stitches the phases back together and is what RunExperiment() now
// wraps — statement for statement the old body, so results are byte-
// identical (the golden suite holds this).
//
// Snapshots follow the src/sim/snapshot.h contract: save only at quiescent
// points (immediately after RunUntil returns), restore onto a stack built
// from the *same* ExperimentConfig.  LoadState cancels whatever the previous
// occupant left pending, rewinds the clock, restores every component and
// re-arms pending events in original order — so one DeviceSim instance can
// cycle through thousands of fleet devices with no steady-state allocation
// (tests/hotpath/alloc_steadystate_test.cc locks the cycle down).
//
// Finish() is destructive (it moves the trace sink and metrics registry into
// the result) and may be called once; fleet workers that only need aggregate
// statistics skip it and read the components directly instead.

#ifndef SRC_EXP_DEVICE_SIM_H_
#define SRC_EXP_DEVICE_SIM_H_

#include <functional>
#include <optional>
#include <string>

#include "src/core/governor_registry.h"
#include "src/daq/daq.h"
#include "src/exp/experiment.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/fault/invariants.h"
#include "src/hw/itsy.h"
#include "src/kernel/kernel.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/snapshot.h"
#include "src/workload/apps.h"
#include "src/workload/deadline_monitor.h"

namespace dcs {

class DeviceSim {
 public:
  // The paper's measurement-window trigger wire.
  static constexpr int kTriggerPin = 5;

  // Builds the device from `config`, constructing the application bundle the
  // way RunExperiment(config) did (app/mpeg/server selection) with an owned
  // deadline monitor.  Throws std::invalid_argument on a bad governor, fault
  // or app spec.
  explicit DeviceSim(const ExperimentConfig& config);

  // Same, with a caller-built bundle reporting to an external monitor
  // (`deadlines` must outlive the DeviceSim).  `config.app` / `.mpeg` /
  // `.server` are ignored.
  DeviceSim(const ExperimentConfig& config, AppBundle bundle, DeadlineMonitor* deadlines);

  DeviceSim(const DeviceSim&) = delete;
  DeviceSim& operator=(const DeviceSim&) = delete;

  // Arms the kernel (clock interrupt + first dispatch).  Call once on a
  // freshly built device; restored devices resume already-started.
  void Start();

  // Advances simulated time; the device is quiescent when this returns.
  void RunUntil(SimTime t) { sim_.RunUntil(t); }

  // Closes the measurement window, runs the DAQ pipeline and assembles the
  // ExperimentResult — the second half of the old RunExperiment body.
  // Destructive (moves the sink and metrics into the result); call at most
  // once, and don't snapshot afterwards.  Throws CancelledError when the
  // cancellation token was pulled mid-run.
  ExperimentResult Finish();

  // Start + RunUntil(duration()) + Finish: the full RunExperiment sequence.
  ExperimentResult Run();

  // --- Device snapshots ----------------------------------------------------
  // Complete device image at a quiescent point: simulator clock, hardware,
  // kernel (tasks, workloads, pending events), governor, fault machinery,
  // measurement trigger, deadline monitor and metrics registry.
  void SaveState(SnapshotWriter* w) const;
  // Restores in place: cancels pending events, rewinds the clock, loads
  // every component (metrics last — workload re-binds touch gauges) and
  // re-arms pending events in original-sequence order.  The target must be
  // built from the same config as the image's source; reader ok() reports
  // image/stack mismatches.
  void LoadState(SnapshotReader* r);

  // --- Accessors (fleet aggregation, tests) --------------------------------
  SimTime duration() const { return duration_; }
  Simulator& sim() { return sim_; }
  Itsy& itsy() { return itsy_; }
  Kernel& kernel() { return kernel_; }
  MetricsRegistry& metrics() { return metrics_; }
  DeadlineMonitor& deadlines() { return *deadlines_; }
  const std::string& app_name() const { return app_name_; }
  ClockPolicy* governor() { return governor_.governor.get(); }

 private:
  DeviceSim(const ExperimentConfig& config, AppBundle bundle, DeadlineMonitor* deadlines,
            bool own_deadlines);

  // Invariant sweep for faulted runs: checks, then re-arms itself one
  // quantum later (the old RunExperiment check_tick closure).
  void CheckTick();
  void ArmCheckTick();

  ExperimentConfig config_;
  std::optional<DeadlineMonitor> own_deadlines_;
  DeadlineMonitor* deadlines_;
  std::string app_name_;
  SimTime app_duration_;
  // Keeps the bundle's cross-task shared state (e.g. the MPEG A/V sync
  // tracker) alive for the device's lifetime.
  std::shared_ptr<void> shared_state_;
  Simulator sim_;
  Itsy itsy_;
  KernelConfig kernel_config_;
  Kernel kernel_;
  MetricsRegistry metrics_;
  GovernorHandle governor_;
  FaultPlan fault_plan_;
  std::optional<FaultInjector> injector_;
  std::optional<InvariantChecker> checker_;
  SimTime next_check_at_;
  EventId check_event_ = kInvalidEventId;
  GpioTrigger trigger_;
  SimTime duration_;
};

}  // namespace dcs

#endif  // SRC_EXP_DEVICE_SIM_H_
