#include "src/exp/obs_export.h"

#include <cstdio>

#include "src/exp/atomic_io.h"
#include "src/hw/clock_table.h"

namespace dcs {
namespace {

// Power counter tracks are downsampled past this many points — a 60 s MPEG
// run's tape holds hundreds of thousands of segments, far denser than any
// viewer renders usefully.
constexpr std::size_t kMaxPowerCounterPoints = 20000;

std::string TaskThreadName(const ObsCapture& obs, Pid pid) {
  const auto it = obs.task_names.find(pid);
  if (it != obs.task_names.end()) {
    return std::to_string(pid) + ":" + it->second;
  }
  return "pid " + std::to_string(pid);
}

void AppendSchedulerSlices(ChromeTraceWriter& writer, int chrome_pid, const ObsCapture& obs) {
  for (const auto& [pid, name] : obs.task_names) {
    writer.SetThreadName(chrome_pid, pid, pid == kIdlePid ? "idle" : TaskThreadName(obs, pid));
    writer.SetThreadSortIndex(chrome_pid, pid, pid);
  }
  const std::vector<SchedLogEntry>& sched = obs.sched;
  for (std::size_t k = 0; k < sched.size(); ++k) {
    const SimTime start = SimTime::Micros(sched[k].time_us);
    const SimTime end =
        k + 1 < sched.size() ? SimTime::Micros(sched[k + 1].time_us) : obs.window_end;
    if (end <= start) {
      continue;
    }
    writer.AddComplete(chrome_pid, sched[k].pid, TaskThreadName(obs, sched[k].pid), start,
                       end - start, "sched");
  }
}

void AppendSeriesCounter(ChromeTraceWriter& writer, int chrome_pid, const TraceSink& sink,
                         const std::string& series_name, const std::string& counter_name) {
  const TraceSeries* series = sink.Find(series_name);
  if (series == nullptr) {
    return;
  }
  for (const TracePoint& p : series->points()) {
    writer.AddCounter(chrome_pid, counter_name, p.at, p.value);
  }
}

void AppendGovernorMarkers(ChromeTraceWriter& writer, int chrome_pid, const TraceSink& sink) {
  const TraceSeries* freq = sink.Find("freq_mhz");
  if (freq != nullptr) {
    for (std::size_t i = 1; i < freq->points().size(); ++i) {
      char label[48];
      std::snprintf(label, sizeof(label), "clock -> %.1f MHz", freq->points()[i].value);
      writer.AddInstant(chrome_pid, kIdlePid, label, freq->points()[i].at, "governor");
    }
  }
  const TraceSeries* volts = sink.Find("core_volts");
  if (volts != nullptr) {
    for (std::size_t i = 1; i < volts->points().size(); ++i) {
      char label[48];
      std::snprintf(label, sizeof(label), "rail -> %.2f V", volts->points()[i].value);
      writer.AddInstant(chrome_pid, kIdlePid, label, volts->points()[i].at, "governor");
    }
  }
}

void AppendPowerCounter(ChromeTraceWriter& writer, int chrome_pid, const ObsCapture& obs) {
  const PowerTape::SegmentVector& segments = obs.power.segments();
  if (segments.empty()) {
    return;
  }
  if (segments.size() <= kMaxPowerCounterPoints) {
    for (const PowerTape::Segment& s : segments) {
      writer.AddCounter(chrome_pid, "power_w", s.start, s.watts);
    }
    return;
  }
  // Uniform sample-and-hold resampling over the window.
  const SimTime span = obs.window_end - obs.window_begin;
  for (std::size_t i = 0; i < kMaxPowerCounterPoints; ++i) {
    const SimTime at =
        obs.window_begin + SimTime::Nanos(span.nanos() * static_cast<std::int64_t>(i) /
                                          static_cast<std::int64_t>(kMaxPowerCounterPoints));
    writer.AddCounter(chrome_pid, "power_w", at, obs.power.WattsAt(at));
  }
}

}  // namespace

std::string ExperimentLabel(const ExperimentResult& result) {
  return result.app + "/" + result.governor;
}

void AppendExperimentTrace(ChromeTraceWriter& writer, int chrome_pid,
                           const ExperimentResult& result) {
  writer.SetProcessName(chrome_pid, ExperimentLabel(result));
  writer.SetProcessSortIndex(chrome_pid, chrome_pid);
  if (result.obs.captured) {
    AppendSchedulerSlices(writer, chrome_pid, result.obs);
    AppendPowerCounter(writer, chrome_pid, result.obs);
  }
  AppendSeriesCounter(writer, chrome_pid, result.sink, "utilization", "utilization");
  AppendSeriesCounter(writer, chrome_pid, result.sink, "freq_mhz", "freq_mhz");
  AppendSeriesCounter(writer, chrome_pid, result.sink, "core_volts", "core_volts");
  AppendGovernorMarkers(writer, chrome_pid, result.sink);
}

void WriteChromeTrace(const std::vector<ExperimentResult>& results, std::ostream& os) {
  ChromeTraceWriter writer;
  for (std::size_t i = 0; i < results.size(); ++i) {
    AppendExperimentTrace(writer, static_cast<int>(i) + 1, results[i]);
  }
  writer.Write(os);
}

MetricsRegistry AggregateMetrics(const std::vector<ExperimentResult>& results) {
  MetricsRegistry aggregate;
  aggregate.Counter("sweep.jobs").Inc(results.size());
  for (const ExperimentResult& result : results) {
    aggregate.MergeFrom(result.metrics);
  }
  return aggregate;
}

bool ExportObsArtifacts(const SweepOptions& options,
                        const std::vector<ExperimentResult>& results, std::string* error) {
  // Both outputs publish atomically: a kill mid-export (or a full disk)
  // leaves the previous trace/metrics file intact, never a torn JSON a
  // viewer would choke on.
  if (!options.trace_out.empty() &&
      !AtomicWriteFile(
          options.trace_out, [&](std::ostream& os) { WriteChromeTrace(results, os); }, error)) {
    return false;
  }
  if (!options.metrics_out.empty() &&
      !AtomicWriteFile(
          options.metrics_out,
          [&](std::ostream& os) {
            AggregateMetrics(results).WriteJson(os);
            os << "\n";
          },
          error)) {
    return false;
  }
  return true;
}

}  // namespace dcs
