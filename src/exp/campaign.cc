#include "src/exp/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/exp/atomic_io.h"
#include "src/obs/metrics.h"
#include "src/sim/arena.h"
#include "src/sim/simulator.h"

namespace dcs {
namespace {

std::string FingerprintHex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

void Note(const std::string& message) {
  std::fprintf(stderr, "[campaign] %s\n", message.c_str());
}

}  // namespace

CampaignRunner::CampaignRunner(SweepOptions options) : options_(std::move(options)) {}

SweepJobResult CampaignRunner::RunJobWithWatchdog(const ExperimentConfig& config,
                                                  std::uint32_t* attempts,
                                                  bool* quarantined) {
  const CampaignOptions& campaign = options_.campaign;
  const int max_attempts = campaign.max_retries + 1;
  SweepJobResult slot;
  *quarantined = false;

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    *attempts = static_cast<std::uint32_t>(attempt) + 1;
    if (attempt > 0) {
      // Bounded exponential backoff before each retry — the same 2^k shape
      // as Kernel::RetryTransition, in wall milliseconds instead of quanta.
      const double backoff_ms = campaign.retry_backoff_ms * static_cast<double>(1 << (attempt - 1));
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(backoff_ms));
    }

    std::atomic<bool> cancel{false};
    std::mutex mutex;
    std::condition_variable cv;
    bool finished = false;
    std::thread watchdog;
    ExperimentConfig job = config;
    if (campaign.job_timeout > 0.0) {
      job.cancel = &cancel;
      watchdog = std::thread([&] {
        std::unique_lock<std::mutex> lock(mutex);
        const auto budget = std::chrono::duration<double>(campaign.job_timeout);
        if (!cv.wait_for(lock, budget, [&] { return finished; })) {
          cancel.store(true, std::memory_order_relaxed);
        }
      });
    }

    // Worker-local arena, reused across every job and retry this thread
    // runs (campaign workers are long-lived sweep threads).  Reset before
    // the run, not after, so a thrown attempt — whose arena-bound state has
    // already unwound — still recycles its blocks.
    static thread_local Arena arena;
    arena.Reset();
    job.arena = &arena;

    bool permanent = false;
    slot = SweepJobResult{};
    try {
      slot.result = job_fn_ ? job_fn_(job) : RunExperiment(job);
    } catch (const CancelledError& e) {
      slot.error = "watchdog timeout after " + std::to_string(campaign.job_timeout) +
                   "s: " + e.what();
    } catch (const std::invalid_argument& e) {
      // A config the harness rejects fails the same way every time; retrying
      // it only burns wall clock.
      slot.error = e.what();
      permanent = true;
    } catch (const std::exception& e) {
      slot.error = e.what();
    } catch (...) {
      slot.error = "unknown exception";
    }

    if (watchdog.joinable()) {
      {
        const std::lock_guard<std::mutex> lock(mutex);
        finished = true;
      }
      cv.notify_all();
      watchdog.join();
    }

    if (slot.ok() || permanent) {
      break;
    }
  }

  if (!slot.ok()) {
    *quarantined = true;
  }
  return slot;
}

std::vector<SweepJobResult> CampaignRunner::Run(const std::vector<ExperimentConfig>& configs) {
  const CampaignOptions& campaign = options_.campaign;
  const std::uint32_t job_count = static_cast<std::uint32_t>(configs.size());
  const std::uint64_t grid_fp = GridFingerprint(configs);
  std::vector<std::uint64_t> config_fps(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    config_fps[i] = ConfigFingerprint(configs[i]);
  }

  report_ = CampaignReport{};
  report_.jobs = static_cast<int>(job_count);
  sweep_metrics_ = SweepMetrics{};
  std::vector<SweepJobResult> results(configs.size());
  std::vector<char> done(configs.size(), 0);
  std::vector<std::uint32_t> attempts(configs.size(), 0);
  std::vector<char> quarantined(configs.size(), 0);

  // An ObsCapture (full power tape + scheduler log) is deliberately not
  // journaled; a grid that wants captures runs unjournaled.
  bool journaling = !campaign.resume.empty();
  for (const ExperimentConfig& config : configs) {
    if (config.capture_obs && journaling) {
      journaling = false;
      Note("grid requests capture_obs; journaling to '" + campaign.resume + "' disabled");
    }
  }

  // --- Replay ---------------------------------------------------------------
  std::unique_ptr<JournalWriter> journal;
  if (journaling) {
    report_.journal_path = campaign.resume;
    const JournalReadResult prior = ReadJournal(campaign.resume);
    for (const std::string& violation : prior.violations) {
      Note("journal '" + campaign.resume + "': " + violation);
    }
    if (prior.truncated) {
      Note("journal '" + campaign.resume + "' has a torn tail (killed mid-append); "
           "dropping it and resuming from the last complete record");
    }
    if (prior.readable) {
      const std::vector<const JournalRecord*> records =
          prior.MatchingRecords(grid_fp, job_count);
      for (const JournalRecord* record : records) {
        const std::size_t slot = record->slot;
        if (done[slot] != 0 || config_fps[slot] != record->config_fingerprint) {
          continue;
        }
        if (record->ok) {
          results[slot].result = record->result;
        } else {
          results[slot].error = record->error;
        }
        done[slot] = 1;
        attempts[slot] = record->attempts;
        quarantined[slot] = record->quarantined ? 1 : 0;
        ++report_.replayed;
      }
      report_.resumed = !records.empty();
      if (!records.empty()) {
        Note("resuming campaign " + FingerprintHex(grid_fp) + ": " +
             std::to_string(report_.replayed) + "/" + std::to_string(job_count) +
             " jobs replayed from '" + campaign.resume + "'");
      } else {
        report_.journal_mismatch = !prior.segments.empty();
        if (report_.journal_mismatch) {
          Note("journal '" + campaign.resume + "' matches no segment of campaign " +
               FingerprintHex(grid_fp) + " (different grid?); running fresh");
        }
      }
      std::string io_error;
      journal = JournalWriter::Append(campaign.resume, prior.valid_bytes, &io_error);
      if (journal == nullptr) {
        throw std::runtime_error("cannot append to " + io_error);
      }
    } else {
      std::string io_error;
      journal = JournalWriter::Create(campaign.resume, &io_error);
      if (journal == nullptr) {
        throw std::runtime_error("cannot " + io_error);
      }
    }
  }

  // --- Execute the remainder ------------------------------------------------
  std::vector<int> pending;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (done[i] == 0) {
      pending.push_back(static_cast<int>(i));
    }
  }
  report_.executed = static_cast<int>(pending.size());

  if (!pending.empty()) {
    if (journal != nullptr) {
      JournalHeader header;
      header.grid_fingerprint = grid_fp;
      header.jobs = job_count;
      header.label = configs.front().app + " x" + std::to_string(job_count);
      std::string io_error;
      if (!journal->AppendHeader(header, &io_error)) {
        throw std::runtime_error("cannot " + io_error);
      }
    }

    std::vector<ExperimentConfig> sub;
    sub.reserve(pending.size());
    for (const int slot : pending) {
      sub.push_back(configs[static_cast<std::size_t>(slot)]);
    }

    std::mutex journal_mutex;
    bool journal_failed = false;
    SweepJobHooks hooks;
    hooks.execute = [&](const ExperimentConfig& config, int sub_index) {
      const std::size_t slot = static_cast<std::size_t>(pending[static_cast<std::size_t>(sub_index)]);
      bool was_quarantined = false;
      SweepJobResult result =
          RunJobWithWatchdog(config, &attempts[slot], &was_quarantined);
      quarantined[slot] = was_quarantined ? 1 : 0;
      return result;
    };
    if (journal != nullptr) {
      hooks.on_result = [&](int sub_index, const SweepJobResult& slot_result) {
        const std::size_t slot = static_cast<std::size_t>(pending[static_cast<std::size_t>(sub_index)]);
        JournalRecord record;
        record.slot = static_cast<std::uint32_t>(slot);
        record.config_fingerprint = config_fps[slot];
        record.ok = slot_result.ok();
        record.quarantined = quarantined[slot] != 0;
        record.attempts = attempts[slot];
        record.error = slot_result.error;
        if (slot_result.ok()) {
          record.result = *slot_result.result;
        }
        const std::lock_guard<std::mutex> lock(journal_mutex);
        if (journal_failed) {
          return;
        }
        std::string io_error;
        if (!journal->AppendRecord(record, &io_error)) {
          // Persistence degrades, the campaign itself keeps running: losing
          // the checkpoint must never lose the computation.
          journal_failed = true;
          Note("cannot " + io_error + "; continuing without checkpointing");
        }
      };
    }

    SweepOptions sub_options = options_;
    sub_options.campaign = CampaignOptions{};  // no recursion
    SweepRunner engine(sub_options);
    std::vector<SweepJobResult> sub_results = engine.Run(sub, hooks);
    sweep_metrics_ = engine.metrics();
    for (std::size_t k = 0; k < sub_results.size(); ++k) {
      results[static_cast<std::size_t>(pending[k])] = std::move(sub_results[k]);
    }
    // Retries counted from per-slot attempts after the join — each slot is
    // written by exactly one worker, so no shared counter is needed.
    for (const int slot : pending) {
      const std::uint32_t a = attempts[static_cast<std::size_t>(slot)];
      if (a > 1) {
        report_.retries += a - 1;
      }
    }
  }

  // --- Quarantine report ----------------------------------------------------
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (quarantined[i] == 0) {
      continue;
    }
    QuarantineEntry entry;
    entry.slot = static_cast<int>(i);
    entry.app = configs[i].app;
    entry.governor = configs[i].governor;
    entry.seed = configs[i].seed;
    entry.config_fingerprint = config_fps[i];
    entry.attempts = static_cast<int>(attempts[i]);
    entry.error = results[i].error;
    report_.quarantined.push_back(std::move(entry));
  }
  const std::string quarantine_path = campaign.QuarantinePath();
  if (!quarantine_path.empty()) {
    report_.quarantine_path = quarantine_path;
    std::string io_error;
    if (!AtomicWriteFile(quarantine_path,
                         RenderQuarantineJson(grid_fp, static_cast<int>(job_count),
                                              report_.quarantined),
                         &io_error)) {
      throw std::runtime_error("cannot write quarantine report: " + io_error);
    }
    if (!report_.quarantined.empty()) {
      Note(std::to_string(report_.quarantined.size()) + " config(s) quarantined; see " +
           quarantine_path);
    }
  }
  return results;
}

std::string RenderQuarantineJson(std::uint64_t grid_fingerprint, int jobs,
                                 const std::vector<QuarantineEntry>& entries) {
  std::ostringstream os;
  os << "{\"campaign\":\"" << FingerprintHex(grid_fingerprint) << "\",\"jobs\":" << jobs
     << ",\"quarantined\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const QuarantineEntry& e = entries[i];
    os << (i == 0 ? "" : ",") << "{\"slot\":" << e.slot << ",\"app\":\""
       << JsonEscape(e.app) << "\",\"governor\":\"" << JsonEscape(e.governor)
       << "\",\"seed\":" << e.seed << ",\"fingerprint\":\""
       << FingerprintHex(e.config_fingerprint) << "\",\"attempts\":" << e.attempts
       << ",\"error\":\"" << JsonEscape(e.error) << "\"}";
  }
  os << "]}\n";
  return os.str();
}

}  // namespace dcs
