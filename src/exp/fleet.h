// Fleet-scale campaigns: a million simulated devices on one box.
//
// A fleet is N devices that share a handful of *cells* — (app, governor,
// quantized config variant) combinations — but diverge per device through
// seeded jitter.  Simulating each device from t=0 wastes almost all of the
// work on re-running identical warmups, and materializing a result struct
// per device wastes almost all of the memory.  The fleet layer fixes both:
//
//   * Snapshot/clone forking.  Each shard job builds ONE DeviceSim for its
//     cell, runs it to the warmup point, snapshots the complete device image
//     (src/exp/device_sim.h), then cycles: LoadState the image, apply the
//     device's divergence (Kernel::ForkRngs(device_id) plus battery-capacity
//     jitter via Battery::SetParams), run to the horizon, fold the device
//     into the shard aggregate.  The restore path is allocation-free in
//     steady state (tests/hotpath/alloc_steadystate_test.cc), so a worker
//     clones devices at memcpy speed instead of event-loop speed.
//
//   * Sharded execution over the campaign layer.  The fleet spec expands
//     lazily into shards of `shard_devices` contiguous device ids; each
//     shard is one CampaignRunner job (via CampaignRunner::SetJobFunction),
//     so shards get the watchdog, bounded retry + quarantine, and the
//     CRC-framed resume journal for free.  Per-device results are never
//     materialized — a shard returns one ExperimentResult whose metrics
//     registry carries the shard aggregate, which is exactly what the
//     journal persists.
//
//   * Exact streaming statistics.  Shard aggregates are integer-valued all
//     the way down: device energy is rounded once to microjoules, times to
//     integer values, and every histogram observation is an integer-valued
//     double (integer sums below 2^53 add exactly in any order).  Squared
//     energy uses a 128-bit sum split across two u64 counters.  Merging is
//     therefore associative and commutative, so the fleet report is
//     byte-identical across --threads, shard sizes and merge order
//     (tests/exp/fleet_merge_test.cc holds the property).
//
// Determinism contract: device `i`'s trajectory is a pure function of
// (cell image, global device id) — never of the shard layout.  Cell warmup
// seeds derive from the fleet seed and cell index; per-device divergence
// derives from Rng::Fork(device_id) off fleet-level streams.

#ifndef SRC_EXP_FLEET_H_
#define SRC_EXP_FLEET_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/exp/campaign.h"
#include "src/exp/experiment.h"
#include "src/exp/sweep.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace dcs {

// Per-device divergence distributions, all seeded off the fleet seed.
struct FleetJitter {
  // Half-width of a uniform relative jitter on the battery's Peukert
  // capacity: device capacity = nominal * (1 + U[-j, +j)).  Applied per
  // device at fork time through Battery::SetParams (charge state is a
  // capacity fraction, so the shared warmup image carries over).
  double battery_capacity = 0.0;
  // Arrival-rate jitter for server cells, quantized into `arrival_variants`
  // cells whose rate_rps is scaled by factors spread uniformly over
  // (1 - j, 1 + j).  Quantized rather than per-device because the arrival
  // schedule is part of the warmup image.
  double arrival_rate = 0.0;
  int arrival_variants = 1;
};

// One app in the fleet's application mix; devices are apportioned by weight.
struct FleetAppMix {
  std::string app;
  double weight = 1.0;
};

struct FleetSpec {
  // Total devices across the whole fleet.
  std::uint64_t devices = 1000;
  // Devices per shard (= per campaign job / journal record).  Smaller shards
  // resume at finer granularity; larger shards amortize the warmup better.
  std::uint64_t shard_devices = 256;
  // Master seed: cell warmups and per-device jitter all derive from it.
  std::uint64_t seed = 1;
  // Application mix (empty: base.app with weight 1).
  std::vector<FleetAppMix> apps;
  // Everything else about a device: governor, itsy/kernel/daq config,
  // faults.  `base.app`, `.seed` and `.duration` are overridden per cell;
  // `.server->rate_rps` is scaled for arrival variants.
  ExperimentConfig base;
  // Snapshot point: the shared prefix every device in a cell rides through
  // the image instead of re-simulating.  Zero snapshots right after Start().
  SimTime warmup;
  // Per-device horizon (must exceed warmup).
  SimTime duration = SimTime::Seconds(20);
  FleetJitter jitter;
  // When nonempty, each executed shard also writes per-device rows to
  // "<prefix>.shard<k>.csv" (device_id, app, energy_uj, deadline totals,
  // death time).  Off by default — a million-device fleet wants aggregates,
  // not a million files of artifacts.  Replayed (journal-resumed) shards do
  // not rewrite their files.
  std::string per_device_out;
};

// One cell: a contiguous block of device ids sharing an exact warmup image.
struct FleetCell {
  std::string app;
  double rate_scale = 1.0;   // arrival-variant factor (server cells)
  std::uint64_t first_device = 0;
  std::uint64_t count = 0;
  std::uint64_t cell_seed = 0;  // warmup seed (pure function of fleet seed + cell index)
};

// One shard: a contiguous slice of one cell, executed as one campaign job.
struct FleetShard {
  int cell = 0;
  std::uint64_t first_device = 0;
  std::uint64_t count = 0;
};

// Fleet outcome: exact integer aggregates plus derived summary statistics.
struct FleetReport {
  std::uint64_t devices = 0;   // devices actually aggregated
  std::uint64_t shards = 0;
  std::uint64_t replayed_shards = 0;
  std::uint64_t executed_shards = 0;
  std::uint64_t failed_shards = 0;    // quarantined; their devices are missing
  std::uint64_t missing_devices = 0;

  // Energy per device, derived from the exact microjoule sums.
  double energy_mean_j = 0.0;
  double energy_stddev_j = 0.0;

  std::uint64_t deadline_events = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t deadline_rejected = 0;
  std::uint64_t deadline_shed = 0;
  double miss_rate = 0.0;

  std::uint64_t battery_deaths = 0;
  double death_fraction = 0.0;
  // Battery-death time curve quantiles (seconds; 0 when nobody died).
  double death_time_p50_s = 0.0;
  double death_time_p95_s = 0.0;

  std::uint64_t quanta = 0;
  std::uint64_t clock_changes = 0;

  // The merged fleet.* instruments (counters + histograms; see fleet.cc for
  // the schema), for callers that want the full curves.
  MetricsRegistry merged;
};

// Deterministic JSON rendering of a report (byte-identical across thread
// counts and shard sizes for the same spec — the fleet_scale bench and the
// CI resume check compare these bytes directly).
std::string RenderFleetJson(const FleetReport& report);

class FleetRunner {
 public:
  // `options.campaign` controls resume/watchdog/retry exactly as for a
  // config-grid campaign; `options.threads` is the worker count.
  FleetRunner(FleetSpec spec, SweepOptions options);

  // Expands the spec into cells and shards (cheap; no simulation).  Exposed
  // for tests; Run() calls it implicitly.
  void Plan();
  const std::vector<FleetCell>& cells() const { return cells_; }
  const std::vector<FleetShard>& shards() const { return shards_; }

  // Runs (or resumes) the fleet and folds every shard aggregate into the
  // report.  Throws std::invalid_argument on an unusable spec.
  FleetReport Run();

  // Underlying campaign outcome of the last Run().
  const CampaignReport& campaign_report() const { return campaign_report_; }

  // The body of one shard job: warm up the cell, then clone/run/aggregate
  // each device in the shard.  Exposed for the differential tests; `config`
  // must be a shard config produced by Plan() (its seed keys the shard).
  ExperimentResult RunShard(const ExperimentConfig& config) const;

 private:
  // The campaign grid config for shard s (seed = first device id keys the
  // shard; the rest mirrors the cell so journal fingerprints track the spec).
  ExperimentConfig ShardConfig(const FleetShard& shard) const;

  FleetSpec spec_;
  SweepOptions options_;
  std::vector<FleetCell> cells_;
  std::vector<FleetShard> shards_;
  // Fleet-identity mix: shard s's grid config carries seed_base_ +
  // first_device, which keys the shard back out of the config in RunShard.
  std::uint64_t seed_base_ = 0;
  std::map<std::uint64_t, std::size_t> shard_by_seed_;
  CampaignReport campaign_report_;
};

}  // namespace dcs

#endif  // SRC_EXP_FLEET_H_
