#include "src/exp/flags.h"

#include <cassert>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dcs {
namespace {

// Full-string numeric parses: "4abc" and "" are errors, unlike atoi/atof.
bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || v < INT_MIN || v > INT_MAX) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (Flag& flag : flags_) {
    if (flag.name == name) {
      return &flag;
    }
  }
  return nullptr;
}

void FlagSet::String(const std::string& name, std::string* target) {
  assert(Find(name) == nullptr && "flag registered twice");
  flags_.push_back(Flag{name, Kind::kString, target, -1, {}});
}

void FlagSet::Int(const std::string& name, int* target) {
  assert(Find(name) == nullptr && "flag registered twice");
  flags_.push_back(Flag{name, Kind::kInt, target, -1, {}});
}

void FlagSet::Double(const std::string& name, double* target) {
  assert(Find(name) == nullptr && "flag registered twice");
  flags_.push_back(Flag{name, Kind::kDouble, target, -1, {}});
}

void FlagSet::Switch(const std::string& name, bool* target) {
  assert(Find(name) == nullptr && "flag registered twice");
  flags_.push_back(Flag{name, Kind::kSwitch, target, -1, {}});
}

void FlagSet::Alias(const std::string& alias, const std::string& name) {
  assert(Find(alias) == nullptr && "alias spelling already registered");
  Flag* primary = Find(name);
  assert(primary != nullptr && "alias of an unregistered flag");
  Flag copy = *primary;
  copy.name = alias;
  copy.alias_of = static_cast<int>(primary - flags_.data());
  flags_.push_back(copy);
}

bool FlagSet::Fail(std::string* error, const std::string& message) {
  if (error != nullptr) {
    *error = message;
  }
  return false;
}

bool FlagSet::Parse(int argc, char** argv, std::string* error, bool allow_unknown) {
  for (Flag& flag : flags_) {
    flag.seen_as.clear();
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      if (!allow_unknown) {
        return Fail(error, "unexpected argument '" + arg + "'");
      }
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? eq : eq - 2);
    Flag* flag = Find(name);
    if (flag == nullptr) {
      if (!allow_unknown) {
        return Fail(error, "unknown flag '--" + name + "'");
      }
      continue;
    }
    // Duplicate / alias-conflict detection keys on the canonical flag so
    // "--out" after "--report-out" is caught even though the spellings differ.
    Flag* canonical =
        flag->alias_of >= 0 ? &flags_[static_cast<std::size_t>(flag->alias_of)] : flag;
    if (!canonical->seen_as.empty()) {
      const std::string prior = canonical->seen_as;
      if (prior == name) {
        return Fail(error, "duplicate flag '--" + name + "'");
      }
      return Fail(error, "'--" + name + "' conflicts with '--" + prior + "'");
    }
    canonical->seen_as = name;

    if (flag->kind == Kind::kSwitch) {
      if (eq != std::string::npos) {
        return Fail(error, "'--" + name + "' takes no value");
      }
      *static_cast<bool*>(flag->target) = true;
      continue;
    }
    std::string value;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      return Fail(error, "'--" + name + "' needs a value");
    }
    switch (flag->kind) {
      case Kind::kString:
        *static_cast<std::string*>(flag->target) = value;
        break;
      case Kind::kInt:
        if (!ParseInt(value, static_cast<int*>(flag->target))) {
          return Fail(error, "'--" + name + "' needs an integer, got '" + value + "'");
        }
        break;
      case Kind::kDouble:
        if (!ParseDouble(value, static_cast<double*>(flag->target))) {
          return Fail(error, "'--" + name + "' needs a number, got '" + value + "'");
        }
        break;
      case Kind::kSwitch:
        break;  // handled above
    }
  }
  return true;
}

void FlagSet::ParseOrExit(int argc, char** argv, bool allow_unknown) {
  std::string error;
  if (Parse(argc, argv, &error, allow_unknown)) {
    return;
  }
  std::fprintf(stderr, "error: %s\nflags:", error.c_str());
  for (const Flag& flag : flags_) {
    std::fprintf(stderr, " --%s", flag.name.c_str());
  }
  std::fputc('\n', stderr);
  std::exit(2);
}

}  // namespace dcs
