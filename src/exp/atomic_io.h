// Crash-safe file output for campaign artifacts.
//
// Every result/report/artifact writer in the harness funnels through
// AtomicWriteFile: content is rendered in memory, written to a
// pid-disambiguated temp file next to the destination, fsync'd, and renamed
// into place.  A process killed at any instant therefore leaves either the
// previous file or the new one — never a torn prefix — and a failed write
// (full disk, missing directory, stream error) removes the temp file and
// surfaces the failing path instead of returning success over a partial
// directory.
//
// Text reports can additionally carry a trailing "# crc32=XXXXXXXX" comment
// over the preceding bytes, so a consumer (or VerifyTrailingCrc) can prove a
// copied/archived report was not truncated in transit.  The same CRC32
// (IEEE 802.3, the zlib polynomial) frames every campaign journal record
// (see journal.h).

#ifndef SRC_EXP_ATOMIC_IO_H_
#define SRC_EXP_ATOMIC_IO_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace dcs {

// CRC32 (reflected, polynomial 0xEDB88320) of `len` bytes, continuing from
// `seed` (pass a previous return value to checksum in chunks; 0 to start).
std::uint32_t Crc32(const void* data, std::size_t len, std::uint32_t seed = 0);
inline std::uint32_t Crc32(const std::string& s, std::uint32_t seed = 0) {
  return Crc32(s.data(), s.size(), seed);
}

struct AtomicWriteOptions {
  // Append "# crc32=XXXXXXXX\n" over everything the writer produced.  Meant
  // for line-oriented text reports; leave off for JSON consumed by external
  // viewers (atomic rename alone already rules out torn files).
  bool trailing_crc = false;
};

// Renders `write(os)` into memory, then publishes it at `path` via temp file
// + fsync + rename.  Returns false — removing any temp file and leaving a
// pre-existing `path` untouched — if the writer reports a stream error or
// any filesystem step fails; `*error` (when non-null) then names the failing
// path and operation.
bool AtomicWriteFile(const std::string& path,
                     const std::function<void(std::ostream&)>& write,
                     std::string* error = nullptr,
                     const AtomicWriteOptions& options = {});

// Convenience overload for pre-rendered content.
bool AtomicWriteFile(const std::string& path, const std::string& content,
                     std::string* error = nullptr,
                     const AtomicWriteOptions& options = {});

// Checks a trailing-CRC report: the last line must be "# crc32=XXXXXXXX" and
// match the CRC32 of every byte before it.  Returns false on a missing or
// mismatched trailer.
bool VerifyTrailingCrc(const std::string& content);

}  // namespace dcs

#endif  // SRC_EXP_ATOMIC_IO_H_
