#include "src/exp/ascii_plot.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace dcs {

void AsciiPlot(std::ostream& os, std::span<const double> x, std::span<const double> y,
               const PlotOptions& options) {
  if (x.empty() || y.empty() || x.size() != y.size()) {
    os << "(no data)\n";
    return;
  }
  double y_lo = options.y_min.value_or(*std::min_element(y.begin(), y.end()));
  double y_hi = options.y_max.value_or(*std::max_element(y.begin(), y.end()));
  if (y_hi - y_lo < 1e-12) {
    y_hi = y_lo + 1.0;
  }
  const double x_lo = x.front();
  const double x_hi = std::max(x.back(), x_lo + 1e-12);

  const int w = std::clamp(options.width, 10, 200);
  const int h = std::clamp(options.height, 4, 100);
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));
  for (std::size_t i = 0; i < x.size(); ++i) {
    const int col = static_cast<int>(std::lround((x[i] - x_lo) / (x_hi - x_lo) * (w - 1)));
    double v = std::clamp(y[i], y_lo, y_hi);
    const int row = static_cast<int>(std::lround((v - y_lo) / (y_hi - y_lo) * (h - 1)));
    grid[static_cast<std::size_t>(h - 1 - row)][static_cast<std::size_t>(col)] = '*';
  }

  if (!options.title.empty()) {
    os << options.title << "\n";
  }
  char label[256];
  for (int r = 0; r < h; ++r) {
    if (r == 0) {
      std::snprintf(label, sizeof(label), "%10.3f |", y_hi);
    } else if (r == h - 1) {
      std::snprintf(label, sizeof(label), "%10.3f |", y_lo);
    } else {
      std::snprintf(label, sizeof(label), "%10s |", "");
    }
    os << label << grid[static_cast<std::size_t>(r)] << "\n";
  }
  os << std::string(11, ' ') << '+' << std::string(static_cast<std::size_t>(w), '-') << "\n";
  std::snprintf(label, sizeof(label), "%10s  %-12.4g", "", x_lo);
  os << label;
  std::snprintf(label, sizeof(label), "%*.4g", w - 12, x_hi);
  os << label << "\n";
  os << std::string(12, ' ') << options.x_label << " (y: " << options.y_label << ")\n";
}

void AsciiPlot(std::ostream& os, std::span<const double> y, const PlotOptions& options) {
  std::vector<double> x(y.size());
  std::iota(x.begin(), x.end(), 0.0);
  AsciiPlot(os, x, y, options);
}

void AsciiPlot(std::ostream& os, const TraceSeries& series, const PlotOptions& options) {
  std::vector<double> x;
  std::vector<double> y;
  x.reserve(series.size());
  y.reserve(series.size());
  for (const TracePoint& p : series.points()) {
    x.push_back(p.at.ToSeconds());
    y.push_back(p.value);
  }
  AsciiPlot(os, x, y, options);
}

}  // namespace dcs
