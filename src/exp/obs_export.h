// Bridges experiment results to the observability exporters: merges the
// per-run captures (scheduler log, power tape, recorded series, energy
// attribution) into one Chrome trace_event JSON, and aggregates the per-run
// metrics registries into one report.
//
// Both outputs are rendered purely from simulated state, so for a given
// config grid they are byte-identical regardless of --threads.

#ifndef SRC_EXP_OBS_EXPORT_H_
#define SRC_EXP_OBS_EXPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/exp/experiment.h"
#include "src/exp/sweep.h"
#include "src/obs/chrome_trace.h"

namespace dcs {

// "app/governor" label used for trace process names.
std::string ExperimentLabel(const ExperimentResult& result);

// Appends one experiment as trace process `chrome_pid`: scheduler slices per
// task thread, utilization/frequency/voltage/power counter tracks, and
// governor decision markers.  Requires result.obs.captured for the scheduler
// and power tracks; series counters render regardless.
void AppendExperimentTrace(ChromeTraceWriter& writer, int chrome_pid,
                           const ExperimentResult& result);

// One merged trace: process i+1 is results[i].
void WriteChromeTrace(const std::vector<ExperimentResult>& results, std::ostream& os);

// Aggregate of every run's registry (counters/histograms sum, gauges
// average) plus a sweep.jobs counter.
MetricsRegistry AggregateMetrics(const std::vector<ExperimentResult>& results);

// Writes options.trace_out / options.metrics_out if set.  Returns false and
// fills *error (when non-null) on the first I/O failure; a no-op success
// when neither flag is set.
bool ExportObsArtifacts(const SweepOptions& options,
                        const std::vector<ExperimentResult>& results,
                        std::string* error = nullptr);

}  // namespace dcs

#endif  // SRC_EXP_OBS_EXPORT_H_
