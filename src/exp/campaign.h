// Campaign-resilience layer over the sweep engine.
//
// A campaign is a sweep that survives its own harness: the process being
// SIGKILLed mid-run, a single config hanging its simulator, a job crashing
// on one grid point.  The CampaignRunner wraps SweepRunner with three
// mechanisms, all optional and off by default:
//
//   * Checkpoint/resume (--resume=FILE): every finished job is appended to a
//     CRC32-framed journal (journal.h) with an fsync before the next job's
//     result can land.  A re-invoked bench with the same grid replays the
//     journaled slots byte-identically — same energy numbers, same series,
//     same metrics JSON — and only runs the remainder.  A journal written
//     for a different grid fails the fingerprint check and is never replayed.
//
//   * Per-job watchdog (--job-timeout=SECS): each attempt gets a wall-clock
//     budget, enforced through the cooperative cancellation token threaded
//     into the job's Simulator event loop.  A runaway job is cancelled
//     between events and counted as a failed attempt.
//
//   * Bounded retry + quarantine (--max-retries=N): failed attempts are
//     retried with exponential backoff (the same 2^k shape as the Kernel's
//     clock-transition retry); a config that exhausts its retries is
//     quarantined — recorded in a machine-readable quarantine.json and in
//     the journal — while every other job still runs to completion.
//     Invalid configs (unknown governor, bad fault spec) are deterministic
//     failures and go straight to quarantine without burning retries.
//
// Determinism contract: replayed slots are byte-identical to freshly
// computed ones, so a campaign killed and resumed any number of times
// produces the same stdout/report bytes as an uninterrupted run (enforced
// end-to-end by bench/campaign_soak).  All campaign diagnostics go to
// stderr.
//
// Journaling is skipped (with a stderr note) when the grid requests raw
// observability captures: an ObsCapture holds the full power tape and
// scheduler log, which the journal deliberately does not persist.

#ifndef SRC_EXP_CAMPAIGN_H_
#define SRC_EXP_CAMPAIGN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/exp/journal.h"
#include "src/exp/sweep.h"

namespace dcs {

// One quarantined config, as written to the quarantine report.
struct QuarantineEntry {
  int slot = 0;
  std::string app;
  std::string governor;
  std::uint64_t seed = 0;
  std::uint64_t config_fingerprint = 0;
  int attempts = 0;
  std::string error;
};

// Outcome summary of CampaignRunner::Run.
struct CampaignReport {
  int jobs = 0;
  // Slots satisfied from the journal without running anything.
  int replayed = 0;
  // Slots actually executed this invocation.
  int executed = 0;
  // Retry attempts across all jobs (beyond each job's first attempt).
  std::uint64_t retries = 0;
  // Jobs that exhausted their retries this run, plus quarantined slots
  // replayed from the journal.
  std::vector<QuarantineEntry> quarantined;
  // True when a matching journal contributed at least one replayed slot.
  bool resumed = false;
  // True when a journal file existed but matched a different grid.
  bool journal_mismatch = false;
  // Where the journal / quarantine report live ("" when not written).
  std::string journal_path;
  std::string quarantine_path;
};

class CampaignRunner {
 public:
  // Replacement for RunExperiment as the body of one job.  The function must
  // be a pure function of the config (minus the excluded cancel/arena
  // fields): journal replay hands back previously recorded results without
  // re-invoking it, so a non-deterministic body would break the resume
  // byte-identity contract.  Jobs still get the watchdog cancel token and
  // the worker arena through the config, and retries/quarantine behave
  // exactly as with RunExperiment.  The fleet layer uses this to make one
  // "job" simulate a whole shard of devices (src/exp/fleet.h).
  using JobFn = std::function<ExperimentResult(const ExperimentConfig&)>;

  explicit CampaignRunner(SweepOptions options);

  // Installs `fn` as the job body (default: RunExperiment).
  void SetJobFunction(JobFn fn) { job_fn_ = std::move(fn); }

  // Runs (or resumes) the campaign.  Slot i always corresponds to
  // configs[i]; quarantined slots come back with ok() == false and the error
  // of their final attempt.  Throws only on an unusable journal path or an
  // unwritable quarantine report — never on job failures.
  std::vector<SweepJobResult> Run(const std::vector<ExperimentConfig>& configs);

  const CampaignReport& report() const { return report_; }
  // Engine metrics for the jobs actually executed (replayed slots cost no
  // wall clock and are excluded).
  const SweepMetrics& sweep_metrics() const { return sweep_metrics_; }

 private:
  SweepJobResult RunJobWithWatchdog(const ExperimentConfig& config, std::uint32_t* attempts,
                                    bool* quarantined);

  SweepOptions options_;
  JobFn job_fn_;
  CampaignReport report_;
  SweepMetrics sweep_metrics_;
};

// Renders the quarantine report ({"campaign": ..., "quarantined": [...]})
// used by --quarantine-out; exposed for tests.
std::string RenderQuarantineJson(std::uint64_t grid_fingerprint, int jobs,
                                 const std::vector<QuarantineEntry>& entries);

}  // namespace dcs

#endif  // SRC_EXP_CAMPAIGN_H_
