// Repeated-run harness: re-runs an experiment with varied seeds and reports
// Student-t 95% confidence intervals, like the paper's Table 2 rows.

#ifndef SRC_EXP_REPEAT_H_
#define SRC_EXP_REPEAT_H_

#include <vector>

#include "src/daq/stats.h"
#include "src/exp/experiment.h"
#include "src/exp/sweep.h"

namespace dcs {

struct RepeatedResult {
  std::vector<ExperimentResult> runs;
  // Energy across runs (DAQ-measured).
  Summary energy;
  // Deadline misses summed across runs.
  std::int64_t total_deadline_misses = 0;
  std::int64_t total_deadline_events = 0;
  SimTime worst_lateness;
  double mean_utilization = 0.0;
  double mean_clock_changes = 0.0;

  bool MetAllDeadlines() const { return total_deadline_misses == 0; }
};

// Runs `config` `repetitions` times with seeds config.seed, config.seed+1,
// ..., fanning the runs across the SweepRunner's worker pool.  `runs` is
// ordered by repetition index and every field of the result is bit-identical
// for any `options.threads` value.
RepeatedResult RunRepeated(ExperimentConfig config, int repetitions,
                           const SweepOptions& options = {});

}  // namespace dcs

#endif  // SRC_EXP_REPEAT_H_
