// Terminal line plots so the figure benches can render the paper's figures
// directly into their stdout (and the corresponding CSVs can be re-plotted
// elsewhere).

#ifndef SRC_EXP_ASCII_PLOT_H_
#define SRC_EXP_ASCII_PLOT_H_

#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "src/sim/trace_sink.h"

namespace dcs {

struct PlotOptions {
  int width = 100;
  int height = 20;
  std::string title;
  std::string x_label = "x";
  std::string y_label = "y";
  // Fixed y-range; auto-scaled when unset.
  std::optional<double> y_min;
  std::optional<double> y_max;
};

// Plots y[i] against x[i]; x must be non-decreasing.
void AsciiPlot(std::ostream& os, std::span<const double> x, std::span<const double> y,
               const PlotOptions& options);

// Plots y[i] against its index.
void AsciiPlot(std::ostream& os, std::span<const double> y, const PlotOptions& options);

// Plots a recorded series against time in seconds.
void AsciiPlot(std::ostream& os, const TraceSeries& series, const PlotOptions& options);

}  // namespace dcs

#endif  // SRC_EXP_ASCII_PLOT_H_
