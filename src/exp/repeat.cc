#include "src/exp/repeat.h"

#include <algorithm>

#include "src/exp/sweep.h"
#include "src/sim/rng.h"

namespace dcs {

RepeatedResult RunRepeated(ExperimentConfig config, int repetitions,
                           const SweepOptions& options) {
  RepeatedResult result;
  if (repetitions <= 0) {
    result.energy = Summarize({});
    return result;
  }
  // Each repetition is an independent job; the engine's slot-indexed results
  // keep run i at index i, so aggregation below is identical to the old
  // serial loop for any thread count.  Repetition seeds come from the
  // splitmix-style Fork substream family, not seed+i: consecutive base seeds
  // used to alias each other's repetition streams (seed 100 repetition 1 ==
  // seed 101 repetition 0), which correlated adjacent grid points.
  const Rng seeder(config.seed);
  std::vector<ExperimentConfig> configs;
  configs.reserve(static_cast<std::size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    configs.push_back(config);
    configs.back().seed = seeder.Fork(static_cast<std::uint64_t>(i)).Next();
  }
  result.runs = RunSweep(configs, options);

  std::vector<double> energies;
  energies.reserve(result.runs.size());
  for (const ExperimentResult& run : result.runs) {
    energies.push_back(run.energy_joules);
    result.total_deadline_misses += run.deadline_misses;
    result.total_deadline_events += run.deadline_events;
    result.worst_lateness = std::max(result.worst_lateness, run.worst_lateness);
    result.mean_utilization += run.avg_utilization;
    result.mean_clock_changes += run.clock_changes;
  }
  result.mean_utilization /= repetitions;
  result.mean_clock_changes /= repetitions;
  result.energy = Summarize(energies);
  return result;
}

}  // namespace dcs
