#include "src/exp/repeat.h"

#include <algorithm>

namespace dcs {

RepeatedResult RunRepeated(ExperimentConfig config, int repetitions) {
  RepeatedResult result;
  std::vector<double> energies;
  energies.reserve(static_cast<std::size_t>(repetitions));
  const std::uint64_t base_seed = config.seed;
  for (int i = 0; i < repetitions; ++i) {
    config.seed = base_seed + static_cast<std::uint64_t>(i);
    ExperimentResult run = RunExperiment(config);
    energies.push_back(run.energy_joules);
    result.total_deadline_misses += run.deadline_misses;
    result.total_deadline_events += run.deadline_events;
    result.worst_lateness = std::max(result.worst_lateness, run.worst_lateness);
    result.mean_utilization += run.avg_utilization;
    result.mean_clock_changes += run.clock_changes;
    result.runs.push_back(std::move(run));
  }
  if (repetitions > 0) {
    result.mean_utilization /= repetitions;
    result.mean_clock_changes /= repetitions;
  }
  result.energy = Summarize(energies);
  return result;
}

}  // namespace dcs
