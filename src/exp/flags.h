// Centralized command-line flag parsing for the bench binaries.
//
// Historically every sweep bench hand-rolled a strncmp loop over argv, which
// made malformed invocations succeed silently: a flag passed twice resolved
// by last-write-wins, `--threads=abc` parsed as 0 via atoi, a typo like
// `--thread=4` was ignored outright, and two spellings writing the same
// option (`--out` vs `--report-out`) overwrote each other without a word.
// FlagSet makes the full argv surface of a bench declarative and loud: every
// registered flag knows its type, duplicates and alias conflicts are
// detected by name, numbers must parse in full, and (in strict mode) any
// unknown `--flag` is an error instead of a no-op.

#ifndef SRC_EXP_FLAGS_H_
#define SRC_EXP_FLAGS_H_

#include <string>
#include <vector>

namespace dcs {

class FlagSet {
 public:
  // Registration.  `name` is the long name without the leading dashes
  // ("threads" for --threads).  The target keeps its current value as the
  // default and is only written when the flag appears.
  void String(const std::string& name, std::string* target);
  void Int(const std::string& name, int* target);
  void Double(const std::string& name, double* target);
  // A valueless switch: `--progress` sets *target to true; `--progress=x`
  // is a parse error.
  void Switch(const std::string& name, bool* target);

  // Registers `alias` as an alternate spelling of the already-registered
  // `name`.  Passing both spellings (or either one twice) is a conflict
  // error naming both, so e.g. `--out` and `--report-out` can share a
  // target without last-write-wins.
  void Alias(const std::string& alias, const std::string& name);

  // Parses argv.  Flags accept "--name=value" or "--name value" (switches
  // take no value).  Returns false and fills *error (when non-null) on the
  // first problem: a duplicate or alias-conflicting occurrence, a missing
  // value, an unparsable or out-of-range number, or — unless `allow_unknown`
  // — an argument that is not a registered flag.  With `allow_unknown` set,
  // unregistered arguments are skipped so another parser can layer on top.
  bool Parse(int argc, char** argv, std::string* error, bool allow_unknown = false);

  // Parse-or-die wrapper for bench main(): prints the error plus the list of
  // registered flags to stderr and exits with status 2 on bad usage.
  void ParseOrExit(int argc, char** argv, bool allow_unknown = false);

 private:
  enum class Kind { kString, kInt, kDouble, kSwitch };

  struct Flag {
    std::string name;   // canonical spelling
    Kind kind = Kind::kString;
    void* target = nullptr;
    // Index of the canonical flag this one aliases (-1 for a primary flag).
    int alias_of = -1;
    // The spelling the flag (or one of its aliases) was first seen under;
    // empty until then.  Duplicate detection keys on the canonical flag, so
    // "--out" followed by "--report-out" still collides.
    std::string seen_as;
  };

  Flag* Find(const std::string& name);
  bool Fail(std::string* error, const std::string& message);

  std::vector<Flag> flags_;
};

}  // namespace dcs

#endif  // SRC_EXP_FLAGS_H_
