#include "src/exp/device_sim.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace dcs {

namespace {

constexpr std::uint32_t kDeviceTag = 0x44455649u;  // "DEVI"

// The experiment seed drives every stochastic element: per-task workload
// jitter (via the kernel's forked RNG streams) and the DAQ noise in
// Finish().
KernelConfig SeededKernelConfig(const ExperimentConfig& config) {
  KernelConfig kernel_config = config.kernel;
  kernel_config.rng_seed ^= config.seed * 0x9e3779b97f4a7c15ULL;
  return kernel_config;
}

AppBundle MakeBundle(const ExperimentConfig& config, DeadlineMonitor* deadlines) {
  if (config.app == "mpeg" && config.mpeg.has_value()) {
    return MakeMpegApp(*config.mpeg, deadlines, config.seed);
  }
  if (config.app == "server" && config.server.has_value()) {
    return MakeServerApp(*config.server, deadlines, config.seed);
  }
  return MakeApp(config.app, deadlines, config.seed);
}

}  // namespace

DeviceSim::DeviceSim(const ExperimentConfig& config)
    : DeviceSim(config, AppBundle{}, nullptr, /*own_deadlines=*/true) {}

DeviceSim::DeviceSim(const ExperimentConfig& config, AppBundle bundle,
                     DeadlineMonitor* deadlines)
    : DeviceSim(config, std::move(bundle), deadlines, /*own_deadlines=*/false) {}

DeviceSim::DeviceSim(const ExperimentConfig& config, AppBundle bundle,
                     DeadlineMonitor* deadlines, bool own_deadlines)
    : config_(config),
      own_deadlines_(own_deadlines ? std::optional<DeadlineMonitor>(std::in_place)
                                   : std::nullopt),
      deadlines_(own_deadlines ? &*own_deadlines_ : deadlines),
      sim_(config_.arena),
      itsy_(sim_, config_.itsy, config_.arena),
      kernel_config_(SeededKernelConfig(config_)),
      kernel_(sim_, itsy_, kernel_config_, config_.arena),
      trigger_(kTriggerPin) {
  if (own_deadlines) {
    bundle = MakeBundle(config_, deadlines_);
  }
  app_name_ = bundle.name;
  app_duration_ = bundle.duration;
  shared_state_ = std::move(bundle.shared_state);

  sim_.BindCancel(config_.cancel);

  // Bind the observability registry before the policy is installed so
  // governors can pick up their instruments in OnInstall.
  kernel_.BindMetrics(&metrics_);
  itsy_.BindMetrics(&metrics_);

  std::string error;
  governor_ = MakeGovernorDispatch(config_.governor, &error);
  if (governor_.governor == nullptr && !error.empty()) {
    // An assert would vanish under NDEBUG and the run would silently proceed
    // without a policy; throwing lets the sweep engine fail just this job.
    throw std::invalid_argument("invalid governor spec '" + config_.governor +
                                "': " + error);
  }
  if (governor_.governor != nullptr) {
    if (config_.legacy_policy_dispatch) {
      kernel_.InstallPolicy(governor_.governor.get());
    } else {
      kernel_.InstallPolicy(governor_.dispatch);
    }
  }

  std::string fault_error;
  if (!FaultPlan::Parse(config_.faults, &fault_plan_, &fault_error)) {
    throw std::invalid_argument("invalid fault spec '" + config_.faults +
                                "': " + fault_error);
  }
  // The injector (and the invariant checker riding along) only exists for an
  // active plan: an inactive one must leave the event sequence — and thus the
  // sim.events_* metrics — untouched.
  if (fault_plan_.Active()) {
    injector_.emplace(fault_plan_, config_.seed);
    itsy_.BindFaults(&*injector_);
    kernel_.BindFaults(&*injector_);
    checker_.emplace(sim_, itsy_, kernel_);
    ArmCheckTick();
  }

  for (auto& task : bundle.tasks) {
    kernel_.AddTask(std::move(task));
  }

  duration_ = config_.duration.value_or(app_duration_ + SimTime::Seconds(2));
  // The measurement window is GPIO-triggered exactly like the paper's rig.
  trigger_.Attach(itsy_.gpio());
  itsy_.gpio().Toggle(kTriggerPin, sim_.Now());

  // Pre-size the per-quantum trace series so the tick path never reallocates.
  if (kernel_config_.quantum.nanos() > 0) {
    kernel_.ReserveTraces(
        static_cast<std::size_t>(duration_.nanos() / kernel_config_.quantum.nanos()));
  }
}

void DeviceSim::Start() { kernel_.Start(); }

void DeviceSim::CheckTick() {
  check_event_ = kInvalidEventId;
  checker_->Check();
  ArmCheckTick();
}

void DeviceSim::ArmCheckTick() {
  next_check_at_ = sim_.Now() + kernel_config_.quantum;
  check_event_ = sim_.At(next_check_at_, [this] { CheckTick(); });
}

ExperimentResult DeviceSim::Run() {
  Start();
  RunUntil(duration_);
  return Finish();
}

ExperimentResult DeviceSim::Finish() {
  if (sim_.CancelRequested()) {
    // The watchdog pulled the token mid-run: everything below would report a
    // half-simulated experiment as if it finished.  Fail the job instead.
    throw CancelledError("experiment cancelled at simulated " + sim_.Now().ToString() +
                         " of " + duration_.ToString());
  }
  itsy_.gpio().Toggle(kTriggerPin, sim_.Now());
  itsy_.SyncBattery();

  ExperimentResult result;
  result.app = app_name_;
  result.governor = governor_.governor != nullptr ? governor_.governor->Name() : "none";
  result.duration = duration_;

  assert(trigger_.windows().size() == 1);
  const auto [begin, end] = trigger_.windows().front();
  DaqConfig daq_config = config_.daq;
  daq_config.seed ^= config_.seed * 0x9e3779b97f4a7c15ULL;
  Daq daq(daq_config, config_.arena);
  if (injector_) {
    daq.BindFaults(&*injector_);
  }
  const std::span<const double> samples = daq.SampleWindow(itsy_.tape(), begin, end);
  result.energy_joules = daq.EnergyJoules(samples);
  result.exact_energy_joules = itsy_.tape().EnergyJoules(begin, end);
  result.average_watts = daq.AverageWatts(samples);

  result.quanta = kernel_.quanta_elapsed();
  const TraceSeries* util = kernel_.sink().Find("utilization");
  if (util != nullptr && !util->empty()) {
    double sum = 0.0;
    for (const TracePoint& p : util->points()) {
      sum += p.value;
    }
    result.avg_utilization = sum / static_cast<double>(util->size());
  }
  result.clock_changes = itsy_.clock_changes();
  result.voltage_transitions = itsy_.voltage_transitions();
  result.total_stall = itsy_.total_stall();
  const auto& residency = kernel_.step_residency();
  const double total_s = duration_.ToSeconds();
  for (int k = 0; k < kNumClockSteps; ++k) {
    result.step_residency[static_cast<std::size_t>(k)] =
        total_s > 0.0 ? residency[static_cast<std::size_t>(k)].ToSeconds() / total_s : 0.0;
  }

  for (Pid pid = 1; Task* task = kernel_.FindTask(pid); ++pid) {
    result.task_cpu_seconds.emplace(std::to_string(pid) + ":" + task->name(),
                                    task->cpu_time().ToSeconds());
  }

  DeadlineMonitor& deadlines = *deadlines_;
  result.deadline_events = deadlines.TotalEvents();
  result.deadline_misses = deadlines.TotalMissed();
  result.worst_lateness = deadlines.WorstLateness();
  result.worst_overrun = deadlines.WorstOverrun();
  for (const std::string& stream : deadlines.Streams()) {
    result.streams.emplace(stream, deadlines.Stats(stream));
    // Streams with response-time tracking (ReportRequest) surface their
    // latency distribution through the metrics pipeline, so --metrics-out
    // carries p50/p95/p99/p999 without per-request artifacts.
    const DeadlineMonitor::StreamStats& stats = result.streams.at(stream);
    if (stats.latency_us.count() > 0) {
      metrics_.Histogram("latency_us." + stream).MergeFrom(stats.latency_us);
    }
    // Admission-gate outcomes, per stream.  Only touched when the gate
    // actually rejected something, so admission-free runs (every pre-existing
    // bench) render byte-identical metrics reports.
    if (stats.rejected > 0) {
      metrics_.Gauge("admission.reject_pct." + stream).Set(stats.RejectRate() * 100.0);
      if (stats.shed > 0) {
        metrics_.Gauge("admission.shed_pct." + stream)
            .Set(static_cast<double>(stats.shed) /
                 static_cast<double>(stats.total + stats.rejected) * 100.0);
      }
    }
  }
  const std::int64_t total_rejected = deadlines.TotalRejected();
  if (total_rejected > 0) {
    metrics_.Counter("exp.rejected_requests").Inc(static_cast<std::uint64_t>(total_rejected));
    metrics_.Counter("exp.shed_requests").Inc(static_cast<std::uint64_t>(deadlines.TotalShed()));
    // Energy-ledger attribution of the rejected work: it consumed zero
    // joules (conservation over executed work is untouched), so what the
    // gate bought is the *avoided* burn — the rejected full-speed-equivalent
    // microseconds priced at busy top-step/1.5 V processor power.
    const MetricsGauge* rejected_work = metrics_.FindGauge("admission.rejected_work_fs_us");
    if (rejected_work != nullptr) {
      const double watts = itsy_.power_model().ProcessorWatts(
          ExecState::kBusy, ClockTable::MaxStep(),
          VoltageVolts(CoreVoltage::kHigh));
      metrics_.Gauge("admission.rejected_energy_est_joules")
          .Set(rejected_work->value() * 1e-6 * watts);
    }
  }

  // Experiment- and simulator-level readings into the registry (simulated
  // state only — never wall-clock — to keep reports thread-count invariant).
  metrics_.Gauge("exp.energy_joules").Set(result.energy_joules);
  metrics_.Gauge("exp.exact_energy_joules").Set(result.exact_energy_joules);
  metrics_.Gauge("exp.average_watts").Set(result.average_watts);
  metrics_.Gauge("exp.avg_utilization").Set(result.avg_utilization);
  metrics_.Counter("exp.deadline_events").Inc(static_cast<std::uint64_t>(result.deadline_events));
  metrics_.Counter("exp.deadline_misses").Inc(static_cast<std::uint64_t>(result.deadline_misses));
  metrics_.Gauge("exp.worst_lateness_us").Set(result.worst_lateness.ToMicrosF());
  metrics_.Gauge("exp.total_stall_us").Set(result.total_stall.ToMicrosF());
  metrics_.Counter("sim.events_executed").Inc(sim_.events_executed());
  metrics_.Counter("sim.events_cancelled").Inc(sim_.events_cancelled());

  if (config_.capture_obs) {
    result.obs.captured = true;
    result.obs.window_begin = begin;
    result.obs.window_end = end;
    result.obs.sched = kernel_.sched_log().Snapshot();
    result.obs.power = itsy_.tape();
    result.obs.task_names.emplace(kIdlePid, "idle");
    for (Pid pid = 1; Task* task = kernel_.FindTask(pid); ++pid) {
      result.obs.task_names.emplace(pid, task->name());
    }
    result.obs.energy = EnergyLedger::Attribute(result.obs.power, result.obs.sched, begin, end);
    for (const auto& [pid, joules] : result.obs.energy.joules_by_pid) {
      metrics_.Gauge("energy.pid." + std::to_string(pid) + "." +
                     result.obs.task_names[pid] + "_joules")
          .Set(joules);
    }
  }

  if (checker_) {
    // One final structural sweep at end time, plus energy conservation over
    // the measurement window.
    checker_->Check();
    checker_->CheckEnergyConservation(kernel_.sched_log().Snapshot(), begin, end);

    FaultReport& report = result.faults;
    report.enabled = true;
    report.plan = fault_plan_.Describe();
    for (int k = 0; k < kNumFaultClasses; ++k) {
      const auto c = static_cast<FaultClass>(k);
      if (injector_->injected(c) > 0) {
        report.injected.emplace(FaultClassName(c), injector_->injected(c));
      }
    }
    report.injected_total = injector_->injected_total();
    report.transition_retries = kernel_.transition_retries();
    report.brownouts = itsy_.brownouts();
    report.dropped_samples = daq.dropped_samples();
    report.invariant_checks = checker_->checks();
    report.invariant_violations = checker_->violation_count();
    report.violations = checker_->violations();

    metrics_.Counter("fault.injected_total").Inc(report.injected_total);
    metrics_.Counter("fault.transition_retries").Inc(report.transition_retries);
    metrics_.Counter("fault.brownouts").Inc(static_cast<std::uint64_t>(report.brownouts));
    metrics_.Counter("fault.daq_dropped_samples").Inc(report.dropped_samples);
    metrics_.Counter("fault.invariant_checks").Inc(report.invariant_checks);
    metrics_.Counter("fault.invariant_violations").Inc(report.invariant_violations);
  }

  result.sink = std::move(kernel_.sink());
  // Unbind before the registry moves into the result: the kernel's and the
  // Itsy's cached instrument handles would otherwise dangle.
  kernel_.BindMetrics(nullptr);
  itsy_.BindMetrics(nullptr);
  result.metrics = std::move(metrics_);
  return result;
}

void DeviceSim::SaveState(SnapshotWriter* w) const {
  w->Tag(kDeviceTag);
  w->Time(sim_.Now());
  w->U64(sim_.events_executed());
  w->U64(sim_.events_cancelled());
  itsy_.SaveState(w);
  kernel_.SaveState(w);
  if (governor_.governor != nullptr) {
    governor_.governor->SaveState(w);
  }
  w->Bool(injector_.has_value());
  if (injector_) {
    injector_->SaveState(w);
    checker_->SaveState(w);
    const bool check_armed = check_event_ != kInvalidEventId;
    w->Bool(check_armed);
    if (check_armed) {
      w->Time(next_check_at_);
      w->U64(sim_.EventSeq(check_event_));
    }
  }
  trigger_.SaveState(w);
  deadlines_->SaveState(w);
  metrics_.SaveState(w);
}

void DeviceSim::LoadState(SnapshotReader* r) {
  // Protocol step 1: empty the queue of whatever the previous occupant (the
  // fresh build, or the device that just finished on this stack) left armed.
  kernel_.CancelPendingEvents();
  itsy_.CancelPendingEvents();
  if (check_event_ != kInvalidEventId) {
    sim_.Cancel(check_event_);
    check_event_ = kInvalidEventId;
  }

  r->Tag(kDeviceTag);
  const SimTime now = r->Time();
  const std::uint64_t executed = r->U64();
  const std::uint64_t cancelled = r->U64();
  sim_.RestoreClock(now, executed, cancelled);

  RearmList rearm;
  itsy_.LoadState(r, &rearm);
  kernel_.LoadState(r, &rearm);
  if (governor_.governor != nullptr) {
    governor_.governor->LoadState(r);
  }
  const bool faulted = r->Bool();
  if (faulted != injector_.has_value()) {
    r->Fail();
    return;
  }
  if (injector_) {
    injector_->LoadState(r);
    checker_->LoadState(r);
    if (r->Bool()) {
      next_check_at_ = r->Time();
      rearm.Add(r->U64(), next_check_at_,
                [](void* ctx, SimTime at, std::int64_t /*aux*/) {
                  auto* self = static_cast<DeviceSim*>(ctx);
                  self->check_event_ = self->sim_.At(at, [self] { self->CheckTick(); });
                },
                this);
    }
  }
  trigger_.LoadState(r);
  deadlines_->LoadState(r);
  // Registry last: Kernel::LoadState re-binds workload instruments (the
  // server admission gate Set()s its gauges there), so restoring the
  // registry afterwards makes the final gauge values exactly the image's.
  metrics_.LoadState(r);

  rearm.FireInOrder();
}

}  // namespace dcs
