// Append-only, CRC32-framed campaign journal.
//
// A campaign (see campaign.h) persists every finished job here so a
// re-invoked bench with --resume=FILE replays completed slots byte-identically
// and only runs the remainder.  The format is built for exactly one failure
// mode: the writing process dies mid-append (SIGKILL, OOM, power).  Frames
// are self-checking, so the reader accepts the longest valid prefix and
// reports the torn tail; the writer truncates that tail before appending.
//
// On-disk layout — a sequence of frames, each:
//
//   u32  magic        'DCSJ' (0x4A534344 little-endian)
//   u32  payload_len
//   u32  crc32(payload)     IEEE 802.3, see atomic_io.h
//   u8[payload_len]         payload, first byte = frame type
//
// Frame types:
//   kHeaderFrame:  version, grid fingerprint, job count, free-form label.
//                  One per campaign run; a journal holds several segments
//                  when one bench process runs several grids (e.g. Table 2's
//                  five RunRepeated rows) or a campaign is resumed.
//   kRecordFrame:  slot index, per-config fingerprint, attempts, outcome
//                  (ok / error / quarantined) and, for successes, the full
//                  serialized ExperimentResult.
//
// Fingerprints are FNV-1a 64 over a canonical serialization of the
// ExperimentConfig, so a journal written for a different grid (or an edited
// config) never silently replays into the wrong campaign.
//
// Reading follows the InvariantChecker's record-don't-throw idiom
// (src/fault/invariants.h): structural problems — record before any header,
// duplicate slot, slot out of range, version mismatch — are collected as
// violation strings on the result while the valid frames are still returned.
//
// Values are serialized in the host's native byte order: a journal is a
// crash-resume artifact for the machine that wrote it, not an interchange
// format.

#ifndef SRC_EXP_JOURNAL_H_
#define SRC_EXP_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/exp/experiment.h"

namespace dcs {

// --- Byte-stream primitives -------------------------------------------------

class ByteWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U32(std::uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(std::uint64_t v) { Raw(&v, sizeof(v)); }
  void I64(std::int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Time(SimTime t) { I64(t.nanos()); }
  void Str(const std::string& s) {
    U32(static_cast<std::uint32_t>(s.size()));
    out_.append(s);
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  void Raw(const void* p, std::size_t n) {
    out_.append(static_cast<const char*>(p), n);
  }
  std::string out_;
};

// Reader over a byte string.  Running past the end (or an oversized string
// length) latches ok() false and returns zero values; callers check ok()
// once at the end instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(const std::string& data) : data_(data) {}

  std::uint8_t U8();
  std::uint32_t U32();
  std::uint64_t U64();
  std::int64_t I64();
  double F64();
  SimTime Time() { return SimTime::Nanos(I64()); }
  std::string Str();

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool Take(void* p, std::size_t n);

  const std::string& data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Config fingerprints ----------------------------------------------------

// FNV-1a 64 over a canonical serialization of every simulation-relevant
// config field (not the cancel token or capture flag — those change how a
// job is run, not what it computes).
std::uint64_t ConfigFingerprint(const ExperimentConfig& config);

// Fingerprint of a whole grid: order-sensitive combination of every config's
// fingerprint plus the grid size.
std::uint64_t GridFingerprint(const std::vector<ExperimentConfig>& configs);

// --- Result serialization ---------------------------------------------------

// Serializes every ExperimentResult field a bench or exporter can read —
// scalars, step residency, task CPU seconds, deadline streams, every
// recorded series, the full metrics registry and the fault report — except
// the raw ObsCapture (power tape + scheduler log), which is orders of
// magnitude larger than everything else; campaigns therefore don't journal
// runs that request capture_obs.
void SerializeResult(const ExperimentResult& result, ByteWriter* out);

// Inverse of SerializeResult.  Returns false (result unspecified) on a
// malformed payload.
bool DeserializeResult(ByteReader* in, ExperimentResult* result);

// --- Journal frames ---------------------------------------------------------

inline constexpr std::uint32_t kJournalMagic = 0x4A534344u;  // "DCSJ"
// v2: per-stream latency histograms in StreamStats; server app in the config
// fingerprint.  Version-mismatched segments are ignored wholesale, so a v1
// journal forces a fresh run instead of replaying shape-incompatible records.
// v3: admission-control counters (StreamStats::rejected/shed) and the
// server scenario's stream classes + admission policy in the fingerprint.
inline constexpr std::uint32_t kJournalVersion = 3;

struct JournalHeader {
  std::uint32_t version = kJournalVersion;
  std::uint64_t grid_fingerprint = 0;
  std::uint32_t jobs = 0;
  std::string label;
};

struct JournalRecord {
  std::uint32_t slot = 0;
  std::uint64_t config_fingerprint = 0;
  bool ok = false;
  bool quarantined = false;
  std::uint32_t attempts = 1;
  std::string error;          // meaningful when !ok
  ExperimentResult result;    // meaningful when ok
};

// One header and the records appended under it.
struct JournalSegment {
  JournalHeader header;
  std::vector<JournalRecord> records;
};

struct JournalReadResult {
  // False when the file doesn't exist or no complete valid frame parses.
  bool readable = false;
  std::vector<JournalSegment> segments;
  // Byte offset of the end of the last valid frame; a writer appending to
  // this journal must truncate to here first.
  std::uint64_t valid_bytes = 0;
  // True when trailing bytes after valid_bytes were dropped (torn append).
  bool truncated = false;
  // InvariantChecker-style structural findings (recorded, not thrown).
  std::vector<std::string> violations;

  // Records from every segment whose header matches (fingerprint + jobs).
  std::vector<const JournalRecord*> MatchingRecords(std::uint64_t grid_fingerprint,
                                                    std::uint32_t jobs) const;
};

// Parses the journal at `path`.  Never throws: unreadable or torn journals
// come back with readable=false / truncated=true and violations describing
// what was dropped.
JournalReadResult ReadJournal(const std::string& path);

// Appender.  All writes are frame-at-a-time with an fsync after each, so a
// kill between appends loses at most the frame being written — which the
// reader then drops as a torn tail.
class JournalWriter {
 public:
  // Creates (or truncates) `path`.  Returns null and fills *error on I/O
  // failure.
  static std::unique_ptr<JournalWriter> Create(const std::string& path,
                                               std::string* error);
  // Opens `path` for appending, first truncating it to `valid_bytes` (from
  // ReadJournal) so a torn tail is never buried under new frames.
  static std::unique_ptr<JournalWriter> Append(const std::string& path,
                                               std::uint64_t valid_bytes,
                                               std::string* error);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  bool AppendHeader(const JournalHeader& header, std::string* error);
  bool AppendRecord(const JournalRecord& record, std::string* error);

 private:
  explicit JournalWriter(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  bool AppendFrame(const std::string& payload, std::string* error);

  int fd_ = -1;
  std::string path_;
};

}  // namespace dcs

#endif  // SRC_EXP_JOURNAL_H_
