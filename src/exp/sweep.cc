#include "src/exp/sweep.h"

#include "src/exp/campaign.h"
#include "src/exp/flags.h"
#include "src/sim/arena.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace dcs {
namespace {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

int SweepRunner::threads() const {
  return options_.threads > 0 ? options_.threads : HardwareThreads();
}

std::vector<SweepJobResult> SweepRunner::Run(const std::vector<ExperimentConfig>& configs) {
  return Run(configs, SweepJobHooks{});
}

std::vector<SweepJobResult> SweepRunner::Run(const std::vector<ExperimentConfig>& configs,
                                             const SweepJobHooks& hooks) {
  const int job_count = static_cast<int>(configs.size());
  std::vector<SweepJobResult> results(configs.size());
  // Reset up front so an empty grid never reports the previous call's
  // wall-clock or failure counts (regression-tested).
  metrics_ = SweepMetrics{};
  metrics_.jobs = job_count;
  metrics_.threads = std::min(threads(), std::max(job_count, 1));
  if (job_count == 0) {
    return results;
  }

  const auto wall_begin = std::chrono::steady_clock::now();
  // Workers claim the next unstarted job; the slot a job writes is fixed by
  // its index, so the schedule (who ran what, in which order) never shows in
  // the output.
  std::atomic<int> next_job{0};
  std::atomic<int> done{0};
  std::mutex progress_mutex;

  auto report_progress = [&](int completed) {
    if (!options_.progress) {
      return;
    }
    const std::lock_guard<std::mutex> lock(progress_mutex);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();
    std::fprintf(stderr, "\r[sweep] %d/%d jobs, %.1fs elapsed", completed, job_count, elapsed);
    if (completed == job_count) {
      std::fputc('\n', stderr);
    }
    std::fflush(stderr);
  };

  auto worker = [&] {
    // One bump arena per worker, reused across its jobs: block allocation
    // happens on the first job, after which the per-job simulation state
    // (event queue, sched log, power tape, DAQ samples) recycles the same
    // memory — the steady-state job cycle is allocation-free.
    Arena arena;
    for (;;) {
      const int i = next_job.fetch_add(1, std::memory_order_relaxed);
      if (i >= job_count) {
        return;
      }
      SweepJobResult& slot = results[static_cast<std::size_t>(i)];
      try {
        if (hooks.execute) {
          slot = hooks.execute(configs[static_cast<std::size_t>(i)], i);
        } else {
          ExperimentConfig job = configs[static_cast<std::size_t>(i)];
          job.arena = &arena;
          // Rewind before (not after) the run: a job that threw has already
          // unwound its arena-bound state, so the next job can still recycle
          // the blocks it touched.
          arena.Reset();
          slot.result = RunExperiment(job);
        }
      } catch (const std::exception& e) {
        slot.error = e.what();
      } catch (...) {
        slot.error = "unknown exception";
      }
      if (slot.error.empty() && !slot.result.has_value()) {
        slot.error = "job produced no result";
      }
      if (hooks.on_result) {
        hooks.on_result(i, slot);
      }
      report_progress(done.fetch_add(1, std::memory_order_relaxed) + 1);
    }
  };

  const int workers = metrics_.threads;
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }

  metrics_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();
  for (const SweepJobResult& r : results) {
    if (r.ok()) {
      metrics_.simulated_seconds += r.result->duration.ToSeconds();
    } else {
      ++metrics_.failed;
    }
  }
  if (metrics_.wall_seconds > 0.0) {
    metrics_.sim_seconds_per_second = metrics_.simulated_seconds / metrics_.wall_seconds;
  }
  if (options_.progress) {
    std::fprintf(stderr,
                 "[sweep] %d jobs (%d failed) on %d threads in %.2fs — %.1f simulated s/s\n",
                 metrics_.jobs, metrics_.failed, metrics_.threads, metrics_.wall_seconds,
                 metrics_.sim_seconds_per_second);
  }
  return results;
}

std::vector<ExperimentResult> RunSweep(const std::vector<ExperimentConfig>& configs,
                                       const SweepOptions& options) {
  std::vector<SweepJobResult> jobs;
  std::string quarantine_note;
  if (options.campaign.Enabled()) {
    CampaignRunner runner(options);
    jobs = runner.Run(configs);
    if (!runner.report().quarantine_path.empty()) {
      quarantine_note = " (quarantine report: " + runner.report().quarantine_path + ")";
    }
  } else {
    SweepRunner runner(options);
    jobs = runner.Run(configs);
  }
  std::vector<ExperimentResult> results;
  results.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!jobs[i].ok()) {
      throw std::runtime_error("sweep job " + std::to_string(i) + " failed: " +
                               jobs[i].error + quarantine_note);
    }
    results.push_back(std::move(*jobs[i].result));
  }
  return results;
}

void RegisterSweepFlags(FlagSet& flags, SweepOptions* options) {
  flags.Int("threads", &options->threads);
  flags.Switch("progress", &options->progress);
  flags.String("trace-out", &options->trace_out);
  flags.String("metrics-out", &options->metrics_out);
  flags.String("faults", &options->faults);
  flags.String("resume", &options->campaign.resume);
  flags.Double("job-timeout", &options->campaign.job_timeout);
  flags.Int("max-retries", &options->campaign.max_retries);
  flags.String("quarantine-out", &options->campaign.quarantine_out);
}

SweepOptions SweepOptionsFromArgs(int argc, char** argv) {
  SweepOptions options;
  FlagSet flags;
  RegisterSweepFlags(flags, &options);
  flags.ParseOrExit(argc, argv, /*allow_unknown=*/true);
  if (options.threads < 0) {
    options.threads = 0;
  }
  if (options.campaign.job_timeout < 0.0) {
    options.campaign.job_timeout = 0.0;
  }
  if (options.campaign.max_retries < 0) {
    options.campaign.max_retries = 0;
  }
  return options;
}

}  // namespace dcs
