#include "src/exp/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/exp/atomic_io.h"

namespace dcs {
namespace {

constexpr std::uint8_t kHeaderFrame = 1;
constexpr std::uint8_t kRecordFrame = 2;

// Guards against absurd lengths from corrupt size fields before any
// allocation happens.
constexpr std::uint32_t kMaxPayload = 256u << 20;  // 256 MiB
constexpr std::uint32_t kMaxString = 64u << 20;

void SetIoError(std::string* error, const std::string& path, const char* op) {
  if (error != nullptr) {
    *error = std::string(op) + " journal '" + path + "'" +
             (errno != 0 ? std::string(": ") + std::strerror(errno) : std::string());
  }
}

}  // namespace

// --- ByteReader -------------------------------------------------------------

bool ByteReader::Take(void* p, std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(p, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::U8() {
  std::uint8_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::uint32_t ByteReader::U32() {
  std::uint32_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::uint64_t ByteReader::U64() {
  std::uint64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

std::int64_t ByteReader::I64() {
  std::int64_t v = 0;
  Take(&v, sizeof(v));
  return v;
}

double ByteReader::F64() {
  double v = 0.0;
  Take(&v, sizeof(v));
  return v;
}

std::string ByteReader::Str() {
  const std::uint32_t len = U32();
  if (!ok_ || len > kMaxString || data_.size() - pos_ < len) {
    ok_ = false;
    return std::string();
  }
  std::string s(data_, pos_, len);
  pos_ += len;
  return s;
}

// --- Fingerprints -----------------------------------------------------------

namespace {

class Fnv1a {
 public:
  void Bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      hash_ ^= b[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  void U64(std::uint64_t v) { Bytes(&v, sizeof(v)); }
  void I64(std::int64_t v) { Bytes(&v, sizeof(v)); }
  void I32(std::int32_t v) { Bytes(&v, sizeof(v)); }
  void F64(double v) { Bytes(&v, sizeof(v)); }
  void Time(SimTime t) { I64(t.nanos()); }
  void Str(const std::string& s) {
    U64(s.size());
    Bytes(s.data(), s.size());
  }

  std::uint64_t hash() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

void HashMemoryProfile(Fnv1a& h, const MemoryProfile& p) {
  h.F64(p.word_refs_per_kilocycle);
  h.F64(p.line_fills_per_kilocycle);
}

}  // namespace

std::uint64_t ConfigFingerprint(const ExperimentConfig& c) {
  Fnv1a h;
  h.Str(c.app);
  h.Str(c.governor);
  h.U64(c.seed);
  h.I64(c.duration.has_value() ? c.duration->nanos() : std::int64_t{-1});
  h.Str(c.faults);

  h.I32(c.mpeg.has_value() ? 1 : 0);
  if (c.mpeg.has_value()) {
    const MpegConfig& m = *c.mpeg;
    h.F64(m.fps);
    h.Time(m.duration);
    h.F64(m.mean_decode_ms_at_top);
    h.I32(m.gop_length);
    h.F64(m.i_factor);
    h.F64(m.p_factor);
    h.F64(m.b_factor);
    h.F64(m.jitter_stddev);
    h.Time(m.spin_threshold);
    h.I32(static_cast<std::int32_t>(m.pacing));
    h.I32(m.elastic ? 1 : 0);
    HashMemoryProfile(h, m.video_profile);
    HashMemoryProfile(h, m.audio_profile);
    h.Time(m.frame_tolerance);
    h.Time(m.audio_period);
    h.F64(m.audio_refill_ms_at_top);
    h.Time(m.av_sync_tolerance);
  }

  h.I32(c.server.has_value() ? 1 : 0);
  if (c.server.has_value()) {
    const ServerConfig& s = *c.server;
    h.I32(static_cast<std::int32_t>(s.arrivals));
    h.F64(s.rate_rps);
    h.Time(s.duration);
    h.Time(s.slo);
    h.F64(s.service_ms_at_top);
    h.F64(s.max_service_factor);
    HashMemoryProfile(h, s.profile);
    h.F64(s.burst_rate_factor);
    h.Time(s.calm_dwell_mean);
    h.Time(s.burst_dwell_mean);
    h.I32(s.onoff_sources);
    h.F64(s.pareto_shape);
    h.Time(s.pareto_on_min);
    h.Time(s.pareto_off_min);
    h.U64(s.streams.size());
    for (const ServerStreamClass& cls : s.streams) {
      h.Str(cls.name);
      h.F64(cls.value);
      h.F64(cls.weight);
    }
    const AdmissionConfig& a = s.admission;
    h.I32(static_cast<std::int32_t>(a.policy));
    h.F64(a.utilization_bound);
    h.F64(a.target_violation_rate);
    h.F64(a.decrease_factor);
    h.F64(a.increase_step);
    h.F64(a.min_bound);
    h.F64(a.max_bound);
    h.I32(a.feedback_window);
    h.F64(a.demand_ewma_weight);
    h.F64(a.speed_ewma_weight);
    h.F64(a.battery_shed_dod);
    h.Time(a.brownout_shed_hold);
    h.F64(a.degraded_bound_factor);
  }

  const ItsyConfig& i = c.itsy;
  h.F64(i.power.core_dynamic_mw_per_v2mhz);
  h.F64(i.power.core_static_busy_mw);
  h.F64(i.power.nap_mw_per_v2mhz);
  h.F64(i.power.stall_mw);
  h.F64(i.power.peripherals_mw);
  h.F64(i.power.audio_mw);
  h.F64(i.power.peripherals_display_off_mw);
  h.F64(i.power.peripherals_bus_mw_per_mhz);
  h.I32(i.initial_step);
  h.Time(i.clock_switch_stall);
  h.I32(static_cast<std::int32_t>(i.initial_voltage));
  h.I32(i.battery.has_value() ? 1 : 0);
  if (i.battery.has_value()) {
    h.F64(i.battery->peukert_capacity);
    h.F64(i.battery->peukert_exponent);
    h.F64(i.battery->reference_current_a);
    h.F64(i.battery->supply_volts);
    h.F64(i.battery->recoverable_fraction);
    h.F64(i.battery->recovery_per_hour);
  }

  const KernelConfig& k = c.kernel;
  h.Time(k.quantum);
  h.Time(k.tick_overhead);
  h.Time(k.yield_cost);
  h.U64(k.sched_log_capacity);
  h.U64(k.rng_seed);

  const DaqConfig& d = c.daq;
  h.F64(d.sample_hz);
  h.F64(d.shunt_ohms);
  h.F64(d.supply_volts);
  h.F64(d.shunt_range_volts);
  h.F64(d.supply_range_volts);
  h.I32(d.adc_bits);
  h.F64(d.noise_lsb);
  h.U64(d.seed);

  return h.hash();
}

std::uint64_t GridFingerprint(const std::vector<ExperimentConfig>& configs) {
  Fnv1a h;
  h.U64(configs.size());
  for (const ExperimentConfig& c : configs) {
    h.U64(ConfigFingerprint(c));
  }
  return h.hash();
}

// --- Result serialization ---------------------------------------------------

namespace {

void SerializeHistogram(const LogHistogram& hist, ByteWriter* out) {
  out->U64(hist.count());
  out->F64(hist.sum());
  out->F64(hist.min());
  out->F64(hist.max());
  std::uint32_t nonzero = 0;
  for (const std::uint64_t b : hist.buckets()) {
    nonzero += b != 0 ? 1 : 0;
  }
  out->U32(nonzero);
  for (int b = 0; b < LogHistogram::kBuckets; ++b) {
    if (hist.buckets()[static_cast<std::size_t>(b)] != 0) {
      out->U32(static_cast<std::uint32_t>(b));
      out->U64(hist.buckets()[static_cast<std::size_t>(b)]);
    }
  }
}

bool DeserializeHistogram(ByteReader* in, LogHistogram* hist) {
  const std::uint64_t count = in->U64();
  const double sum = in->F64();
  const double min = in->F64();
  const double max = in->F64();
  std::array<std::uint64_t, LogHistogram::kBuckets> buckets{};
  const std::uint32_t nonzero = in->U32();
  for (std::uint32_t b = 0; b < nonzero && in->ok(); ++b) {
    const std::uint32_t idx = in->U32();
    const std::uint64_t value = in->U64();
    if (idx >= static_cast<std::uint32_t>(LogHistogram::kBuckets)) {
      return false;
    }
    buckets[idx] = value;
  }
  hist->Restore(buckets, count, sum, min, max);
  return in->ok();
}

void SerializeMetrics(const MetricsRegistry& m, ByteWriter* out) {
  out->U32(static_cast<std::uint32_t>(m.counters().size()));
  for (const auto& [name, counter] : m.counters()) {
    out->Str(name);
    out->U64(counter.value());
  }
  out->U32(static_cast<std::uint32_t>(m.gauges().size()));
  for (const auto& [name, gauge] : m.gauges()) {
    out->Str(name);
    out->F64(gauge.sum());
    out->U64(gauge.samples());
  }
  out->U32(static_cast<std::uint32_t>(m.histograms().size()));
  for (const auto& [name, hist] : m.histograms()) {
    out->Str(name);
    SerializeHistogram(hist, out);
  }
}

bool DeserializeMetrics(ByteReader* in, MetricsRegistry* m) {
  const std::uint32_t counters = in->U32();
  for (std::uint32_t i = 0; i < counters && in->ok(); ++i) {
    const std::string name = in->Str();
    m->Counter(name).Inc(in->U64());
  }
  const std::uint32_t gauges = in->U32();
  for (std::uint32_t i = 0; i < gauges && in->ok(); ++i) {
    const std::string name = in->Str();
    const double sum = in->F64();
    const std::uint64_t samples = in->U64();
    m->Gauge(name).Restore(sum, samples);
  }
  const std::uint32_t histograms = in->U32();
  for (std::uint32_t i = 0; i < histograms && in->ok(); ++i) {
    const std::string name = in->Str();
    if (!DeserializeHistogram(in, &m->Histogram(name))) {
      return false;
    }
  }
  return in->ok();
}

void SerializeSink(const TraceSink& sink, ByteWriter* out) {
  const std::vector<std::string> names = sink.Names();
  out->U32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) {
    const TraceSeries* series = sink.Find(name);
    out->Str(name);
    out->U32(series != nullptr ? static_cast<std::uint32_t>(series->size()) : 0);
    if (series != nullptr) {
      for (const TracePoint& p : series->points()) {
        out->Time(p.at);
        out->F64(p.value);
      }
    }
  }
}

bool DeserializeSink(ByteReader* in, TraceSink* sink) {
  const std::uint32_t names = in->U32();
  for (std::uint32_t i = 0; i < names && in->ok(); ++i) {
    const std::string name = in->Str();
    const std::uint32_t points = in->U32();
    if (!in->ok()) {
      return false;
    }
    TraceSeries& series = sink->Series(name);
    for (std::uint32_t p = 0; p < points && in->ok(); ++p) {
      const SimTime at = in->Time();
      const double value = in->F64();
      if (in->ok()) {
        series.Append(at, value);
      }
    }
  }
  return in->ok();
}

}  // namespace

void SerializeResult(const ExperimentResult& r, ByteWriter* out) {
  out->Str(r.app);
  out->Str(r.governor);
  out->Time(r.duration);
  out->F64(r.energy_joules);
  out->F64(r.exact_energy_joules);
  out->F64(r.average_watts);
  out->F64(r.avg_utilization);
  out->U64(r.quanta);
  out->I64(r.clock_changes);
  out->I64(r.voltage_transitions);
  out->Time(r.total_stall);
  for (const double share : r.step_residency) {
    out->F64(share);
  }
  out->U32(static_cast<std::uint32_t>(r.task_cpu_seconds.size()));
  for (const auto& [task, seconds] : r.task_cpu_seconds) {
    out->Str(task);
    out->F64(seconds);
  }
  out->I64(r.deadline_events);
  out->I64(r.deadline_misses);
  out->Time(r.worst_lateness);
  out->Time(r.worst_overrun);
  out->U32(static_cast<std::uint32_t>(r.streams.size()));
  for (const auto& [stream, stats] : r.streams) {
    out->Str(stream);
    out->I64(stats.total);
    out->I64(stats.missed);
    out->Time(stats.worst_lateness);
    out->Time(stats.total_lateness);
    out->Time(stats.worst_overrun);
    out->I64(stats.rejected);
    out->I64(stats.shed);
    SerializeHistogram(stats.latency_us, out);
  }
  SerializeSink(r.sink, out);
  SerializeMetrics(r.metrics, out);

  const FaultReport& f = r.faults;
  out->U8(f.enabled ? 1 : 0);
  out->Str(f.plan);
  out->U32(static_cast<std::uint32_t>(f.injected.size()));
  for (const auto& [name, count] : f.injected) {
    out->Str(name);
    out->U64(count);
  }
  out->U64(f.injected_total);
  out->U64(f.transition_retries);
  out->I64(f.brownouts);
  out->U64(f.dropped_samples);
  out->U64(f.invariant_checks);
  out->U64(f.invariant_violations);
  out->U32(static_cast<std::uint32_t>(f.violations.size()));
  for (const std::string& v : f.violations) {
    out->Str(v);
  }
}

bool DeserializeResult(ByteReader* in, ExperimentResult* r) {
  r->app = in->Str();
  r->governor = in->Str();
  r->duration = in->Time();
  r->energy_joules = in->F64();
  r->exact_energy_joules = in->F64();
  r->average_watts = in->F64();
  r->avg_utilization = in->F64();
  r->quanta = in->U64();
  r->clock_changes = static_cast<int>(in->I64());
  r->voltage_transitions = static_cast<int>(in->I64());
  r->total_stall = in->Time();
  for (double& share : r->step_residency) {
    share = in->F64();
  }
  const std::uint32_t tasks = in->U32();
  for (std::uint32_t i = 0; i < tasks && in->ok(); ++i) {
    const std::string task = in->Str();
    const double seconds = in->F64();
    r->task_cpu_seconds.emplace(task, seconds);
  }
  r->deadline_events = in->I64();
  r->deadline_misses = in->I64();
  r->worst_lateness = in->Time();
  r->worst_overrun = in->Time();
  const std::uint32_t streams = in->U32();
  for (std::uint32_t i = 0; i < streams && in->ok(); ++i) {
    const std::string stream = in->Str();
    DeadlineMonitor::StreamStats stats;
    stats.total = in->I64();
    stats.missed = in->I64();
    stats.worst_lateness = in->Time();
    stats.total_lateness = in->Time();
    stats.worst_overrun = in->Time();
    stats.rejected = in->I64();
    stats.shed = in->I64();
    if (!DeserializeHistogram(in, &stats.latency_us)) {
      return false;
    }
    r->streams.emplace(stream, stats);
  }
  if (!DeserializeSink(in, &r->sink) || !DeserializeMetrics(in, &r->metrics)) {
    return false;
  }

  FaultReport& f = r->faults;
  f.enabled = in->U8() != 0;
  f.plan = in->Str();
  const std::uint32_t injected = in->U32();
  for (std::uint32_t i = 0; i < injected && in->ok(); ++i) {
    const std::string name = in->Str();
    const std::uint64_t count = in->U64();
    f.injected.emplace(name, count);
  }
  f.injected_total = in->U64();
  f.transition_retries = in->U64();
  f.brownouts = static_cast<int>(in->I64());
  f.dropped_samples = in->U64();
  f.invariant_checks = in->U64();
  f.invariant_violations = in->U64();
  const std::uint32_t violations = in->U32();
  for (std::uint32_t i = 0; i < violations && in->ok(); ++i) {
    f.violations.push_back(in->Str());
  }
  return in->ok() && in->AtEnd();
}

// --- Journal reading --------------------------------------------------------

namespace {

std::string EncodeHeader(const JournalHeader& h) {
  ByteWriter w;
  w.U8(kHeaderFrame);
  w.U32(h.version);
  w.U64(h.grid_fingerprint);
  w.U32(h.jobs);
  w.Str(h.label);
  return w.Take();
}

std::string EncodeRecord(const JournalRecord& r) {
  ByteWriter w;
  w.U8(kRecordFrame);
  w.U32(r.slot);
  w.U64(r.config_fingerprint);
  w.U8(r.ok ? 1 : 0);
  w.U8(r.quarantined ? 1 : 0);
  w.U32(r.attempts);
  w.Str(r.error);
  if (r.ok) {
    ByteWriter payload;
    SerializeResult(r.result, &payload);
    w.Str(payload.Take());
  }
  return w.Take();
}

}  // namespace

std::vector<const JournalRecord*> JournalReadResult::MatchingRecords(
    std::uint64_t grid_fingerprint, std::uint32_t jobs) const {
  std::vector<const JournalRecord*> out;
  for (const JournalSegment& segment : segments) {
    if (segment.header.grid_fingerprint != grid_fingerprint || segment.header.jobs != jobs) {
      continue;
    }
    for (const JournalRecord& record : segment.records) {
      out.push_back(&record);
    }
  }
  return out;
}

JournalReadResult ReadJournal(const std::string& path) {
  JournalReadResult out;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return out;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string data = buffer.str();

  std::size_t pos = 0;
  std::size_t frame_index = 0;
  while (pos < data.size()) {
    // Frame prologue: magic, length, crc.
    if (data.size() - pos < 12) {
      out.truncated = true;
      break;
    }
    std::uint32_t magic = 0;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&magic, data.data() + pos, 4);
    std::memcpy(&len, data.data() + pos + 4, 4);
    std::memcpy(&crc, data.data() + pos + 8, 4);
    if (magic != kJournalMagic || len == 0 || len > kMaxPayload) {
      out.truncated = true;
      out.violations.push_back("frame " + std::to_string(frame_index) +
                               ": bad magic or length; dropping tail");
      break;
    }
    if (data.size() - pos - 12 < len) {
      out.truncated = true;  // torn append: the frame never finished
      break;
    }
    const std::string payload(data, pos + 12, len);
    if (Crc32(payload) != crc) {
      out.truncated = true;
      out.violations.push_back("frame " + std::to_string(frame_index) +
                               ": crc mismatch; dropping tail");
      break;
    }

    ByteReader reader(payload);
    const std::uint8_t type = reader.U8();
    if (type == kHeaderFrame) {
      JournalSegment segment;
      segment.header.version = reader.U32();
      segment.header.grid_fingerprint = reader.U64();
      segment.header.jobs = reader.U32();
      segment.header.label = reader.Str();
      if (!reader.ok() || !reader.AtEnd()) {
        out.truncated = true;
        out.violations.push_back("frame " + std::to_string(frame_index) +
                                 ": malformed header; dropping tail");
        break;
      }
      if (segment.header.version != kJournalVersion) {
        // A future-format segment is skipped wholesale: its records are
        // recorded as a violation, never replayed.
        out.violations.push_back("frame " + std::to_string(frame_index) + ": version " +
                                 std::to_string(segment.header.version) +
                                 " != " + std::to_string(kJournalVersion) +
                                 "; segment ignored");
        segment.header.jobs = 0;  // poisons MatchingRecords for this segment
      }
      out.segments.push_back(std::move(segment));
    } else if (type == kRecordFrame) {
      if (out.segments.empty()) {
        out.violations.push_back("frame " + std::to_string(frame_index) +
                                 ": record before any header; ignored");
      } else {
        JournalSegment& segment = out.segments.back();
        JournalRecord record;
        record.slot = reader.U32();
        record.config_fingerprint = reader.U64();
        record.ok = reader.U8() != 0;
        record.quarantined = reader.U8() != 0;
        record.attempts = reader.U32();
        record.error = reader.Str();
        bool valid = reader.ok();
        if (valid && record.ok) {
          const std::string result_bytes = reader.Str();
          ByteReader result_reader(result_bytes);
          valid = reader.ok() && DeserializeResult(&result_reader, &record.result);
        }
        if (!valid) {
          out.violations.push_back("frame " + std::to_string(frame_index) +
                                   ": malformed record; ignored");
        } else if (record.slot >= segment.header.jobs) {
          out.violations.push_back("frame " + std::to_string(frame_index) + ": slot " +
                                   std::to_string(record.slot) + " out of range (" +
                                   std::to_string(segment.header.jobs) + " jobs); ignored");
        } else {
          bool duplicate = false;
          for (const JournalRecord& prior : segment.records) {
            duplicate = duplicate || prior.slot == record.slot;
          }
          if (duplicate) {
            out.violations.push_back("frame " + std::to_string(frame_index) +
                                     ": duplicate slot " + std::to_string(record.slot) +
                                     "; first record wins");
          } else {
            segment.records.push_back(std::move(record));
          }
        }
      }
    } else {
      out.violations.push_back("frame " + std::to_string(frame_index) +
                               ": unknown frame type " + std::to_string(type) + "; ignored");
    }

    pos += 12 + len;
    out.valid_bytes = pos;
    out.readable = true;
    ++frame_index;
  }
  if (pos < data.size()) {
    out.truncated = true;
  }
  return out;
}

// --- JournalWriter ----------------------------------------------------------

std::unique_ptr<JournalWriter> JournalWriter::Create(const std::string& path,
                                                     std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    SetIoError(error, path, "create");
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd, path));
}

std::unique_ptr<JournalWriter> JournalWriter::Append(const std::string& path,
                                                     std::uint64_t valid_bytes,
                                                     std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) {
    SetIoError(error, path, "open");
    return nullptr;
  }
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0 ||
      ::lseek(fd, 0, SEEK_END) < 0) {
    SetIoError(error, path, "truncate torn tail of");
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<JournalWriter>(new JournalWriter(fd, path));
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool JournalWriter::AppendFrame(const std::string& payload, std::string* error) {
  ByteWriter frame;
  frame.U32(kJournalMagic);
  frame.U32(static_cast<std::uint32_t>(payload.size()));
  frame.U32(Crc32(payload));
  const std::string head = frame.Take();

  for (const std::string* part : {&head, &payload}) {
    std::size_t written = 0;
    while (written < part->size()) {
      const ssize_t n = ::write(fd_, part->data() + written, part->size() - written);
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        SetIoError(error, path_, "append to");
        return false;
      }
      written += static_cast<std::size_t>(n);
    }
  }
  if (::fsync(fd_) != 0) {
    SetIoError(error, path_, "fsync");
    return false;
  }
  return true;
}

bool JournalWriter::AppendHeader(const JournalHeader& header, std::string* error) {
  return AppendFrame(EncodeHeader(header), error);
}

bool JournalWriter::AppendRecord(const JournalRecord& record, std::string* error) {
  return AppendFrame(EncodeRecord(record), error);
}

}  // namespace dcs
