// Competitive-ratio plumbing: scores a finished experiment against the
// offline minimum-energy schedule for the work it actually executed.
//
// The kernel records "work_fs_us" — full-speed-equivalent busy microseconds
// per quantum, excluding tick/yield/stall overhead (kernel.h).  Replaying
// that trace through RunOfflineOptimal (oracle.h) yields a lower bound in
// joules on any schedule that executes the same work under a deadline window
// of D quanta; the run's power-tape ground truth divided by the bound is its
// competitive ratio.  Because the run's own schedule is feasible for every
// D >= 1 and the bound's energy rate under-approximates the hardware at
// every speed, ratio >= 1.0 holds for every governor by construction — the
// harness test enforces it.
//
// The deadline window is a pure post-processing axis: one run is scored
// against several windows without re-running anything.

#ifndef SRC_EXP_COMPETITIVE_H_
#define SRC_EXP_COMPETITIVE_H_

#include <vector>

#include "src/core/oracle.h"
#include "src/exp/experiment.h"

namespace dcs {

// Per-quantum full-speed work in seconds from the result's "work_fs_us"
// series; empty if the run recorded no quanta.
std::vector<double> WorkTraceFromResult(const ExperimentResult& result);

struct CompetitiveScore {
  double run_joules = 0.0;      // power-tape ground truth for the run
  double optimal_joules = 0.0;  // offline lower bound for the same work
  double ratio = 1.0;           // run / optimal (1.0 when the bound is 0)
  double total_work_seconds = 0.0;
  double opt_peak_speed = 0.0;  // fastest interval speed the bound needs
};

// Scores `result` against the offline optimum under a deadline window of
// `deadline_quanta`.  `model` must be built from the same PowerModelParams
// the run used, and `quantum_seconds` from the same KernelConfig.
CompetitiveScore ScoreCompetitive(const ExperimentResult& result, int deadline_quanta,
                                  const EnergyModel& model, double quantum_seconds);

// Stamps a score into the result's metrics registry as gauges
// ("ratio.d<D>", "ratio.d<D>.opt_joules", "ratio.d<D>.opt_peak_speed"), so
// --metrics-out artifacts carry the ratios.
void StampCompetitiveMetrics(ExperimentResult& result, int deadline_quanta,
                             const CompetitiveScore& score);

}  // namespace dcs

#endif  // SRC_EXP_COMPETITIVE_H_
