#include "src/exp/report.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace dcs {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size() && "row width must match headers");
  rows_.push_back(std::move(cells));
}

std::string TextTable::Fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string TextTable::Percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

void TextTable::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+-" : "-+-") << std::string(widths[c], '-');
    }
    os << "-+\n";
  };
  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

void TextTable::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        os << ",";
      }
      os << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    print_row(row);
  }
}

void PrintHeading(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n\n";
}

}  // namespace dcs
